package verc3_test

// The benchmark harness: one benchmark per row of the paper's Table I, one
// for the Figure 2 worked example, and ablation benchmarks for the design
// choices DESIGN.md calls out (pruning pattern style, symmetry reduction,
// search order).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Notes on scale: benchmarks default to 2 caches so the whole suite runs in
// minutes. The MSI-large naive row evaluates 102,102,525 candidates when run
// to completion (the paper's C++ took 8.8 hours); the benchmark samples
// -table1.naive.max dispatches and reports per-candidate cost, from which
// cmd/verc3-table1 extrapolates. Custom metrics: evaluated (model-checker
// dispatches), patterns (pruning patterns), solutions, and states/op.

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/msi"
	"verc3/internal/mutex"
	"verc3/internal/network"
	"verc3/internal/statespace"
	"verc3/internal/symmetry"
	"verc3/internal/toy"
	"verc3/internal/ts"
	"verc3/internal/visited"
	"verc3/internal/zoo"
)

var (
	benchCaches   = flag.Int("table1.caches", 2, "cache count for Table I benchmarks")
	benchWorkers  = flag.Int("table1.workers", 4, "worker count for parallel Table I rows")
	benchNaiveMax = flag.Int64("table1.naive.max", 20000, "dispatch cap for the MSI-large naive row (0 = full)")
)

// synthBench runs one synthesis configuration per iteration and reports the
// paper's Table I columns as metrics.
func synthBench(b *testing.B, variant msi.Variant, cfg core.Config) {
	b.Helper()
	var last *core.Result
	for i := 0; i < b.N; i++ {
		sys := msi.New(msi.Config{Caches: *benchCaches, Variant: variant})
		res, err := core.Synthesize(sys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Stats.Evaluated), "evaluated")
	b.ReportMetric(float64(last.Stats.Patterns), "patterns")
	b.ReportMetric(float64(len(last.Solutions)), "solutions")
	b.ReportMetric(float64(last.Stats.TotalVisitedStates), "states")
}

// --- Table I rows (experiments E1–E6) ---

// BenchmarkTable1SmallNaive is row 1: MSI-small, 1 thread, no pruning
// (231,525 candidates, all evaluated). Paper: 64.5s, 4 solutions.
func BenchmarkTable1SmallNaive(b *testing.B) {
	if testing.Short() {
		b.Skip("full naive enumeration; run without -short")
	}
	synthBench(b, msi.Small, core.Config{Mode: core.ModeNaive, MC: mc.Options{Symmetry: true}})
}

// BenchmarkTable1SmallPrune1T is row 2: MSI-small, 1 thread, pruning.
// Paper: 1,179,648 candidates, 743 patterns, 855 evaluated, 1.8s.
func BenchmarkTable1SmallPrune1T(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
}

// BenchmarkTable1SmallPrune4T is row 3: MSI-small, 4 threads, pruning.
// Paper: 825 evaluated, 1.2s. (Speedup requires >1 CPU; see EXPERIMENTS.md.)
func BenchmarkTable1SmallPrune4T(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, Workers: *benchWorkers, MC: mc.Options{Symmetry: true}})
}

// BenchmarkTable1LargeNaive is row 4: MSI-large, 1 thread, no pruning.
// Paper: 102,102,525 candidates, 31,573.5s. Sampled here (see -table1.naive.max);
// sec/op divided by `evaluated` gives per-candidate cost for extrapolation.
func BenchmarkTable1LargeNaive(b *testing.B) {
	if testing.Short() {
		b.Skip("naive enumeration sample; run without -short")
	}
	synthBench(b, msi.Large, core.Config{Mode: core.ModeNaive, MC: mc.Options{Symmetry: true}, MaxEvaluations: *benchNaiveMax})
}

// BenchmarkTable1LargePrune1T is row 5: MSI-large, 1 thread, pruning.
// Paper: 1,207,959,552 candidates, 34,928 patterns, 170,108 evaluated, 739.7s.
func BenchmarkTable1LargePrune1T(b *testing.B) {
	if testing.Short() {
		b.Skip("~40s per iteration; run without -short")
	}
	synthBench(b, msi.Large, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
}

// BenchmarkTable1LargePrune4T is row 6: MSI-large, 4 threads, pruning.
// Paper: 170,087 evaluated, 295.7s.
func BenchmarkTable1LargePrune4T(b *testing.B) {
	if testing.Short() {
		b.Skip("~40s per iteration; run without -short")
	}
	synthBench(b, msi.Large, core.Config{Mode: core.ModePrune, Workers: *benchWorkers, MC: mc.Options{Symmetry: true}})
}

// --- Figure 2 (experiment E7) ---

// BenchmarkFig2Prune reproduces the worked example: 10 candidates evaluated.
func BenchmarkFig2Prune(b *testing.B) {
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(toy.Figure2(), core.Config{Mode: core.ModePrune})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Stats.Evaluated), "evaluated")
}

// BenchmarkFig2Naive is the 24-candidate (nominal) baseline.
func BenchmarkFig2Naive(b *testing.B) {
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(toy.Figure2(), core.Config{Mode: core.ModeNaive})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Stats.Evaluated), "evaluated")
}

// --- Ablations (experiment E9) ---

// BenchmarkAblationPruneFullVector vs BenchmarkAblationPruneTraceGeneralized:
// the paper's full-vector patterns against our Ct-generalized extension.
func BenchmarkAblationPruneFullVector(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, PruneStyle: core.PruneFullVector, MC: mc.Options{Symmetry: true}})
}

// BenchmarkAblationPruneTraceGeneralized binds only the holes on the error
// trace, pruning strictly more candidates per pattern.
func BenchmarkAblationPruneTraceGeneralized(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, PruneStyle: core.PruneTraceGeneralized, MC: mc.Options{Symmetry: true}})
}

// BenchmarkAblationSymmetryOn/Off: scalarset reduction inside the synthesis
// loop (§II argues explicit-state synthesis makes this easy).
func BenchmarkAblationSymmetryOn(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
}

// BenchmarkAblationSymmetryOff disables canonicalization.
func BenchmarkAblationSymmetryOff(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: false}})
}

// BenchmarkAblationSearchBFS/DFS: BFS yields minimal traces (maximally
// general patterns); DFS is the ablation.
func BenchmarkAblationSearchBFS(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true, Order: mc.BFS}})
}

// BenchmarkAblationSearchDFS uses depth-first exploration in the embedded
// model checker. With full-vector patterns the whole enumerated prefix is
// bound regardless of which trace was found, so DFS costs little here.
func BenchmarkAblationSearchDFS(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true, Order: mc.DFS}})
}

// BenchmarkAblationSearchDFSTraceGen is where trace minimality actually
// matters: trace-generalized patterns bind exactly the holes on the found
// error trace, so DFS's longer traces yield less general patterns than the
// BFS numbers in BenchmarkAblationPruneTraceGeneralized.
func BenchmarkAblationSearchDFSTraceGen(b *testing.B) {
	synthBench(b, msi.Small, core.Config{Mode: core.ModePrune, PruneStyle: core.PruneTraceGeneralized, MC: mc.Options{Symmetry: true, Order: mc.DFS}})
}

// --- Model-checker microbenchmarks ---

// BenchmarkMCCompleteMSI measures raw verification throughput on the
// complete protocol (the synthesis inner loop's unit of work).
func BenchmarkMCCompleteMSI(b *testing.B) {
	sys := msi.New(msi.Config{Caches: *benchCaches, Variant: msi.Complete})
	var states int
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{Symmetry: true})
		if err != nil {
			b.Fatal(err)
		}
		states = res.Stats.VisitedStates
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkMCCompleteMSINoSymmetry is the unreduced baseline.
func BenchmarkMCCompleteMSINoSymmetry(b *testing.B) {
	sys := msi.New(msi.Config{Caches: *benchCaches, Variant: msi.Complete})
	var states int
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		states = res.Stats.VisitedStates
	}
	b.ReportMetric(float64(states), "states")
}

// --- Exploration-driver ablation (experiment E10) ---
//
// Sequential vs parallel state-space exploration on the complete MSI
// protocol, the model checker's unit of work at verification scale. The
// parallel rows need GOMAXPROCS > 1 to show wall-clock speedup; on one
// core they measure the (small) coordination overhead of the sharded
// visited set and the level-synchronous frontier.

// parallelWorkers returns the worker count for the parallel benchmark
// rows: every available core, but at least 2 so the parallel driver is
// actually selected (Workers <= 1 falls back to sequential) and a
// single-core run measures its coordination overhead rather than silently
// re-running the sequential baseline.
func parallelWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 2 {
		return n
	}
	return 2
}

// exploreBench model-checks the complete protocol once per iteration.
func exploreBench(b *testing.B, caches, workers int) {
	b.Helper()
	sys := msi.New(msi.Config{Caches: caches, Variant: msi.Complete})
	var states int
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{Symmetry: true, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != mc.Success {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		states = res.Stats.VisitedStates
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkExploreMSI3Sequential is the 3-cache baseline (1,097 states).
func BenchmarkExploreMSI3Sequential(b *testing.B) { exploreBench(b, 3, 1) }

// BenchmarkExploreMSI3Parallel uses every available core.
func BenchmarkExploreMSI3Parallel(b *testing.B) { exploreBench(b, 3, parallelWorkers()) }

// BenchmarkExploreMSI4Sequential is the largest MSI configuration the
// suite explores (4 caches, 5,440 canonical states, 24 permutations per
// canonicalization — heavy per-state work, the regime where intra-check
// parallelism pays).
func BenchmarkExploreMSI4Sequential(b *testing.B) {
	if testing.Short() {
		b.Skip("~2s per iteration; run without -short")
	}
	exploreBench(b, 4, 1)
}

// BenchmarkExploreMSI4Parallel is the headline sequential-vs-parallel
// comparison: on an N-core machine it should approach N× over
// BenchmarkExploreMSI4Sequential because canonicalization dominates and
// parallelizes embarrassingly.
func BenchmarkExploreMSI4Parallel(b *testing.B) {
	if testing.Short() {
		b.Skip("~2s per iteration; run without -short")
	}
	exploreBench(b, 4, parallelWorkers())
}

// --- Trace-optional memory ablation (experiment E11) ---
//
// The same complete-protocol exploration with the parent-linked trace
// store on versus off. With RecordTrace off the checker retains only the
// 8-byte fingerprint per state plus the transient frontier — no per-state
// node entries — which is the configuration every synthesis dispatch runs
// in. retainedB/state is the structural estimate from Result.Space;
// allocs/op (via -benchmem) shows the per-state trace-node allocation
// disappearing.

// traceBench explores the complete MSI protocol once per iteration with
// the given trace setting.
func traceBench(b *testing.B, record bool) {
	b.Helper()
	sys := msi.New(msi.Config{Caches: *benchCaches, Variant: msi.Complete})
	b.ReportAllocs()
	var last *mc.Result
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{Symmetry: true, RecordTrace: record})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != mc.Success {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		last = res
	}
	b.ReportMetric(float64(last.Space.BytesRetained)/float64(last.Space.States), "retainedB/state")
	b.ReportMetric(float64(last.Space.PeakFrontier), "peak-frontier")
	b.ReportMetric(float64(last.Space.TraceNodes), "trace-nodes")
}

// BenchmarkExploreMSITraceOn pays the O(states) trace store for replayable
// counterexamples.
func BenchmarkExploreMSITraceOn(b *testing.B) { traceBench(b, true) }

// BenchmarkExploreMSITraceOff is the fingerprint-only regime (the
// synthesis default): trace-nodes must report 0.
func BenchmarkExploreMSITraceOff(b *testing.B) { traceBench(b, false) }

// --- Visited-set keying: string keys vs 64-bit fingerprints ---
//
// The seed checker deduplicated states in a map[string]struct{}, retaining
// every canonical key; both drivers now store only statespace.Fingerprint.
// These benchmarks isolate that allocation win on MSI-shaped keys.

// benchKeys synthesizes canonical-key-shaped strings (the MSI key layout:
// per-cache controller state plus directory and network contents).
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("c0:%d/acks%d|c1:%d|c2:%d|dir:{o=%d s=%03b}|net=[Data@%d,Inv@%d]",
			i%7, i%3, (i/7)%7, (i/49)%7, i%4, i%8, i%11, i%13)
	}
	return keys
}

// BenchmarkVisitedKeyString is the seed scheme: the map retains every key
// string (one allocation per state, plus the string bytes held live for
// the whole exploration).
func BenchmarkVisitedKeyString(b *testing.B) {
	keys := benchKeys(1 << 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		visited := make(map[string]struct{}, 1024)
		for _, k := range keys {
			// Simulate the checker receiving a freshly built canonical key.
			visited[string(append([]byte(nil), k...))] = struct{}{}
		}
	}
}

// BenchmarkVisitedKeyFingerprint is the current scheme shared by both
// exploration drivers: hash, store 8 bytes, drop the key.
func BenchmarkVisitedKeyFingerprint(b *testing.B) {
	keys := benchKeys(1 << 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		visited := make(map[statespace.Fingerprint]struct{}, 1024)
		for _, k := range keys {
			visited[statespace.OfString(string(append([]byte(nil), k...)))] = struct{}{}
		}
	}
}

// --- Visited-set backend ablation (experiments E12, E13) ---
//
// The pluggable storage layer (internal/visited) on the zoo's stress
// entry: the complete 4-cache MSI protocol, unreduced (105,752 states) so
// the visited set rather than canonicalization dominates. visitedB/state
// is each backend's measured in-RAM footprint per state; bitstate runs
// against a fixed 16 MiB budget and reports its omission-probability
// estimate; spill runs against a deliberately tiny 256 KiB in-RAM tier —
// well below the ~846 KiB of fingerprints — so most of the set lives in
// sorted run files (spilledB/state) and the rows price the exactness-
// under-bounded-RAM trade against bitstate's lossy fixed budget (E13).
// The CI workflow uploads all BenchmarkVisited* rows in the benchstat
// artifact.

// visitedBench explores the stress entry once per iteration on the given
// backend and driver.
func visitedBench(b *testing.B, kind visited.Kind, workers int) {
	b.Helper()
	sys, err := zoo.Get("msi-complete-4", zoo.Params{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var last *mc.Result
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{
			Workers:    workers,
			Visited:    kind,
			BitstateMB: 16,
			SpillMem:   256 << 10,
			SpillDir:   b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != mc.Success {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		last = res
	}
	b.ReportMetric(float64(last.Space.States), "states")
	b.ReportMetric(float64(last.Space.VisitedBytes)/float64(last.Space.States), "visitedB/state")
	if !last.Exact {
		b.ReportMetric(last.Space.OmissionProb, "p(omit)")
	}
	if last.Space.SpilledBytes > 0 {
		b.ReportMetric(float64(last.Space.SpilledBytes)/float64(last.Space.States), "spilledB/state")
	}
}

func BenchmarkVisitedMap(b *testing.B)      { visitedBench(b, visited.Map, 1) }
func BenchmarkVisitedFlat(b *testing.B)     { visitedBench(b, visited.Flat, 1) }
func BenchmarkVisitedBitstate(b *testing.B) { visitedBench(b, visited.Bitstate, 1) }
func BenchmarkVisitedSpill(b *testing.B)    { visitedBench(b, visited.Spill, 1) }

func BenchmarkVisitedMapParallel(b *testing.B)  { visitedBench(b, visited.Map, parallelWorkers()) }
func BenchmarkVisitedFlatParallel(b *testing.B) { visitedBench(b, visited.Flat, parallelWorkers()) }
func BenchmarkVisitedBitstateParallel(b *testing.B) {
	visitedBench(b, visited.Bitstate, parallelWorkers())
}
func BenchmarkVisitedSpillParallel(b *testing.B) { visitedBench(b, visited.Spill, parallelWorkers()) }

// --- Canonical fingerprinting (experiment E14) ---
//
// The keying pipeline in isolation and end to end: formatted Key() strings
// hashed with OfString (the pre-E14 scheme, kept behind Options.StringKeys)
// against ts.KeyAppender binary encodings hashed straight off a reusable
// buffer with OfBytes. BenchmarkCanonicalize* additionally covers the
// symmetry canonicalizer, whose scratch-state rework (one pooled permuted
// clone + two key buffers instead of N!−1 deep clones and strings per
// state) is the headline win: BenchmarkCanonicalize must report 0
// allocs/op. All rows land in the CI benchstat artifact via -benchmem.

// fingerprintBenchState builds a mid-transaction 4-cache MSI state with
// in-flight messages — representative per-state keying work.
func fingerprintBenchState() *msi.State {
	return &msi.State{
		Caches: []msi.Cache{
			{St: msi.CacheM, Data: 1},
			{St: msi.CacheISD},
			{St: msi.CacheS, Data: 1},
			{St: msi.CacheIMAD, Acks: 1},
		},
		Dir: msi.Dir{St: msi.DirMS, Owner: 0, Pending: 1, Sharers: 0b0100, Mem: 1},
		Net: network.New(
			network.Msg{Type: msi.MsgFwdGetS, Src: 4, Dst: 0, Req: 1, Val: 0},
			network.Msg{Type: msi.MsgData, Src: 4, Dst: 3, Req: -1, Cnt: 1, Val: 1},
			network.Msg{Type: msi.MsgInv, Src: 4, Dst: 2, Req: 3, Val: 0},
		),
		Ghost: 1,
	}
}

var fingerprintSink statespace.Fingerprint

// BenchmarkFingerprintString is the legacy keying unit: format the key
// string, hash it, drop it (one-plus allocations per state).
func BenchmarkFingerprintString(b *testing.B) {
	s := fingerprintBenchState()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fingerprintSink = statespace.OfString(s.Key())
	}
}

// BenchmarkFingerprintAppend is the binary keying unit: append the
// encoding into a reused buffer, hash it in place (zero allocations).
func BenchmarkFingerprintAppend(b *testing.B) {
	s := fingerprintBenchState()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.AppendKey(buf[:0])
		fingerprintSink = statespace.OfBytes(buf)
	}
}

// BenchmarkCanonicalizeString canonicalizes over the 24 permutations of
// the 4-cache state through the string path: a deep clone plus a formatted
// key per non-identity permutation.
func BenchmarkCanonicalizeString(b *testing.B) {
	s := fingerprintBenchState()
	canon := symmetry.NewCanonicalizer(len(s.Caches))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fingerprintSink = statespace.OfString(canon.Key(s))
	}
}

// BenchmarkCanonicalize is the scratch-state path: the same 24
// permutations through one pooled reusable clone and two key buffers.
// The acceptance bar is 0 allocs/op.
func BenchmarkCanonicalize(b *testing.B) {
	s := fingerprintBenchState()
	canon := symmetry.NewCanonicalizer(len(s.Caches))
	canon.Fingerprint(s) // warm the pooled scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fingerprintSink = canon.Fingerprint(s)
	}
}

// keyingBench explores the complete MSI protocol once per iteration under
// the given keying path and symmetry setting (the E14 end-to-end rows).
func keyingBench(b *testing.B, stringKeys, sym bool) {
	b.Helper()
	sys := msi.New(msi.Config{Caches: *benchCaches, Variant: msi.Complete})
	b.ReportAllocs()
	var last *mc.Result
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{Symmetry: sym, StringKeys: stringKeys})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != mc.Success {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		last = res
	}
	b.ReportMetric(float64(last.Space.States), "states")
}

func BenchmarkKeyingAppendSymOn(b *testing.B)  { keyingBench(b, false, true) }
func BenchmarkKeyingStringSymOn(b *testing.B)  { keyingBench(b, true, true) }
func BenchmarkKeyingAppendSymOff(b *testing.B) { keyingBench(b, false, false) }
func BenchmarkKeyingStringSymOff(b *testing.B) { keyingBench(b, true, false) }

// BenchmarkSynthPeterson covers the second domain end to end.
func BenchmarkSynthPeterson(b *testing.B) {
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(mutex.New(true), core.Config{Mode: core.ModePrune})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Stats.Evaluated), "evaluated")
}

// --- Successor lifecycle ablation (experiment E15) ---
//
// The pooled-clone recycling and allocation-free enumeration protocol
// (ts.Recycler / ts.StateCopier / ts.TransitionAppender) on the complete
// 3-cache MSI exploration, in the synthesis configuration (symmetry on,
// traceless, flat backend). Options.NoRecycle and Options.FreshTransitions
// switch each half off independently; allocs/op across the four rows is the
// ablation table in EXPERIMENTS.md E15. All rows land in the CI benchstat
// artifact via -benchmem.

// lifecycleBench explores the complete 3-cache protocol once per iteration
// under the given lifecycle knobs.
func lifecycleBench(b *testing.B, noRecycle, freshTrs bool) {
	b.Helper()
	sys := msi.New(msi.Config{Caches: 3, Variant: msi.Complete})
	b.ReportAllocs()
	var last *mc.Result
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{
			Symmetry:         true,
			NoRecycle:        noRecycle,
			FreshTransitions: freshTrs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != mc.Success {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		last = res
	}
	b.ReportMetric(float64(last.Space.States), "states")
	if last.Space.PoolHits+last.Space.PoolMisses > 0 {
		b.ReportMetric(100*float64(last.Space.PoolHits)/
			float64(last.Space.PoolHits+last.Space.PoolMisses), "pool-hit-%")
	}
}

// BenchmarkLifecycleFull is the shipping configuration: recycling on,
// appender enumeration on.
func BenchmarkLifecycleFull(b *testing.B) { lifecycleBench(b, false, false) }

// BenchmarkLifecycleNoRecycle keeps appender enumeration but clones every
// successor fresh (the recycling half of the ablation).
func BenchmarkLifecycleNoRecycle(b *testing.B) { lifecycleBench(b, true, false) }

// BenchmarkLifecycleFreshEnum keeps recycling but enumerates through the
// legacy Transitions path (per-expansion slice + formatted names).
func BenchmarkLifecycleFreshEnum(b *testing.B) { lifecycleBench(b, false, true) }

// BenchmarkLifecycleOff disables both: the PR 5 baseline.
func BenchmarkLifecycleOff(b *testing.B) { lifecycleBench(b, true, true) }

// --- Liveness checking (experiment E16) ---
//
// The nested-DFS accepting-cycle search on top of the safety pass. The
// product space is states × monitor locations × fairness copies, so
// blue+red product states against VisitedStates prices the liveness
// premium directly. Token-ring is the passing row (every accepting seed's
// red search comes up empty); MSI is the failing row (no network fairness
// is declared, so the first accepting seed closes a lasso and the search
// stops early — expected verdict: failure). Both rows land in the CI
// benchstat artifact via -benchmem.

// livenessBench explores the system once per iteration with the liveness
// pass on and pins the expected verdict.
func livenessBench(b *testing.B, sys ts.System, want mc.Verdict) {
	b.Helper()
	b.ReportAllocs()
	var last *mc.Result
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, mc.Options{Symmetry: true, Liveness: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != want {
			b.Fatalf("verdict = %v, want %v", res.Verdict, want)
		}
		last = res
	}
	b.ReportMetric(float64(last.Stats.VisitedStates), "states")
	b.ReportMetric(float64(last.Space.LiveStates), "blue")
	b.ReportMetric(float64(last.Space.RedStates), "red")
}

// BenchmarkLivenessTokenRing runs the full search to success: N leads-to
// goals, each with N weak-fairness constraints (N+1 Choueka copies).
func BenchmarkLivenessTokenRing(b *testing.B) {
	sys, err := zoo.Get("token-ring", zoo.Params{})
	if err != nil {
		b.Fatal(err)
	}
	livenessBench(b, sys, mc.Success)
}

// BenchmarkLivenessMSI finds the true-positive starvation lasso in the
// complete protocol (a write stuck behind undelivered network messages).
func BenchmarkLivenessMSI(b *testing.B) {
	livenessBench(b, msi.New(msi.Config{Caches: *benchCaches, Variant: msi.Complete}), mc.Failure)
}
