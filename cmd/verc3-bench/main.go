// Command verc3-bench runs the headline exploration benchmarks in-process
// (via testing.Benchmark) and writes the results as machine-readable JSON,
// so CI can archive per-commit performance without parsing `go test -bench`
// text output. Each entry records ns/op, B/op, allocs/op, the derived
// states/sec throughput of the complete-MSI exploration that benchmark
// runs, and an "obs" block with the telemetry view of one instrumented
// run (collector states/sec, peak frontier, successor-pool hit rate).
//
// The rows are the E15 successor-lifecycle ablation (recycling ×
// enumeration path), the sequential/parallel driver pair, and the E16
// liveness pair (nested DFS after the safety pass; the MSI liveness row's
// expected verdict is failure — the protocol declares no network fairness,
// so a starvation lasso exists by design) — the numbers DESIGN.md and
// EXPERIMENTS.md quote.
//
// Usage:
//
//	verc3-bench [-o BENCH_explore.json] [-caches 3]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/msi"
	"verc3/internal/obs"
)

// result is one benchmark's JSON entry.
type result struct {
	NsPerOp      float64 `json:"ns/op"`
	BytesPerOp   int64   `json:"B/op"`
	AllocsPerOp  int64   `json:"allocs/op"`
	States       int     `json:"states"`
	StatesPerSec float64 `json:"states/sec"`
	Obs          obsRow  `json:"obs"`
}

// obsRow carries the telemetry view of one row: figures derived from the
// final obs.Snapshot and timeline of a single instrumented run, taken
// after the timed iterations so the collector never perturbs ns/op.
type obsRow struct {
	// StatesPerSec is the collector's own rate (final states counter over
	// collector elapsed time) — it prices one cold run, where the ns/op
	// figure above averages warm iterations.
	StatesPerSec float64 `json:"states/sec"`
	// PeakFrontier is the largest frontier gauge any level-boundary
	// timeline mark observed.
	PeakFrontier uint64 `json:"peak_frontier"`
	// PoolHitRate is successor-pool hits/(hits+misses); 0 when the run
	// never touched the pool (NoRecycle rows).
	PoolHitRate float64 `json:"pool_hit_rate"`
}

// output is the whole BENCH_explore.json document.
type output struct {
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Caches     int               `json:"caches"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// exploreOnce model-checks the complete MSI protocol, pins the row's
// expected verdict, and returns the state count — safety states plus, for
// liveness rows, the blue and red NDFS product states, so states/sec
// prices the whole search that row actually ran. The caller owns sys and
// reuses it across iterations, so the successor pool and name tables stay
// warm — the same regime as the synthesis inner loop.
func exploreOnce(sys *msi.System, opt mc.Options, want mc.Verdict) (int, error) {
	res, err := mc.Check(sys, opt)
	if err != nil {
		return 0, err
	}
	if res.Verdict != want {
		return 0, fmt.Errorf("verdict = %v, want %v", res.Verdict, want)
	}
	return res.Stats.VisitedStates + res.Space.LiveStates + res.Space.RedStates, nil
}

func main() {
	var (
		out    = flag.String("o", "BENCH_explore.json", "output file (\"-\" = stdout)")
		caches = flag.Int("caches", 3, "MSI cache count for every benchmark")
	)
	flag.Parse()

	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		// Keep the parallel row the parallel driver even on one core, same
		// as the root suite's parallelWorkers.
		parallel = 2
	}
	rows := []struct {
		name string
		opt  mc.Options
		want mc.Verdict
	}{
		{"LifecycleFull", mc.Options{Symmetry: true}, mc.Success},
		{"LifecycleNoRecycle", mc.Options{Symmetry: true, NoRecycle: true}, mc.Success},
		{"LifecycleFreshEnum", mc.Options{Symmetry: true, FreshTransitions: true}, mc.Success},
		{"LifecycleOff", mc.Options{Symmetry: true, NoRecycle: true, FreshTransitions: true}, mc.Success},
		{"ExploreSequential", mc.Options{Symmetry: true}, mc.Success},
		{"ExploreParallel", mc.Options{Symmetry: true, Workers: parallel}, mc.Success},
		{"Liveness", mc.Options{Symmetry: true, Liveness: true}, mc.Failure},
	}

	doc := output{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Caches:     *caches,
		Benchmarks: make(map[string]result, len(rows)),
	}
	for _, r := range rows {
		sys := msi.New(msi.Config{Caches: *caches, Variant: msi.Complete})
		states, err := exploreOnce(sys, r.opt, r.want)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verc3-bench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		opt, want := r.opt, r.want
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exploreOnce(sys, opt, want); err != nil {
					b.Fatal(err)
				}
			}
		})
		// One instrumented run after the timed loop: the collector's final
		// snapshot and timeline yield the row's telemetry figures without
		// the timed iterations ever paying for them.
		col := obs.New()
		opt.Obs = col
		if _, err := exploreOnce(sys, opt, want); err != nil {
			fmt.Fprintf(os.Stderr, "verc3-bench: %s (instrumented): %v\n", r.name, err)
			os.Exit(1)
		}
		snap := col.Snapshot()
		peak := uint64(0)
		for _, s := range col.Timeline() {
			if f := s.Gauges[obs.GFrontier]; f > peak {
				peak = f
			}
		}
		hitRate := 0.0
		if h, m := snap.Gauges[obs.GPoolHits], snap.Gauges[obs.GPoolMisses]; h+m > 0 {
			hitRate = float64(h) / float64(h+m)
		}
		ns := float64(br.NsPerOp())
		doc.Benchmarks[r.name] = result{
			NsPerOp:      ns,
			BytesPerOp:   br.AllocedBytesPerOp(),
			AllocsPerOp:  br.AllocsPerOp(),
			States:       states,
			StatesPerSec: float64(states) / (ns / 1e9),
			Obs: obsRow{
				StatesPerSec: float64(snap.Counters[obs.CStates]) / (float64(snap.ElapsedNS) / 1e9),
				PeakFrontier: peak,
				PoolHitRate:  hitRate,
			},
		}
		fmt.Fprintf(os.Stderr, "%-20s %12.0f ns/op %10d B/op %8d allocs/op %10.0f states/sec\n",
			r.name, ns, br.AllocedBytesPerOp(), br.AllocsPerOp(), float64(states)/(ns/1e9))
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-bench:", err)
		os.Exit(1)
	}
}
