// Command verc3-fig2 regenerates the paper's Figure 2 worked example: it
// synthesizes the 4-hole chain system with candidate pruning and prints the
// run-by-run table (candidate evaluated, verdict, pruning pattern inserted,
// holes discovered), then compares against the naive enumeration count.
//
// Usage:
//
//	verc3-fig2 [-visited flat|map|spill] [-bitstate-mb N] [-spill-mem-mb N]
//	           [-spill-dir DIR] [-timeout D] [-progress] [-metrics-addr ADDR]
//	           [-report FILE] [-cpuprofile FILE] [-memprofile FILE] [-stats]
//
// The workload is fixed (the paper's chain system), so the shared -spec
// flag is refused with a pointer to verc3-verify/verc3-synth.
//
// The run-by-run table streams to stdout as candidates are evaluated;
// the telemetry flags cover both the pruning and the naive run, and
// -report aggregates their counters into one report.
package main

import (
	"flag"
	"fmt"
	"os"

	"verc3/internal/cliutil"
	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/toy"
)

func main() {
	cf := cliutil.RegisterCommon()
	flag.Parse()

	if err := cf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		os.Exit(2)
	}
	cliutil.RefuseSpec("verc3-fig2", "the fixed Figure 2 workload", cf)

	backend, err := cf.Backend()
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		os.Exit(2)
	}

	tel, exit, err := cf.Start("verc3-fig2", "toy-fig2")
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		exit(2)
	}

	g := toy.Figure2()

	fmt.Println("Figure 2 worked example: 4 holes; hole 1 has actions {A,B,C}, holes 2-4 {A,B}.")
	fmt.Println()
	fmt.Printf("%4s  %-28s  %-8s  %-9s  %s\n", "Run", "Candidate", "Verdict", "Patterns", "Holes")

	run := 0
	lastPatterns := 0
	var events []core.Event
	var mcOpt mc.Options
	cf.ApplyMC(&mcOpt, backend)
	ctx, stop := cf.Context("verc3-fig2")
	res, err := core.SynthesizeCtx(ctx, g, core.Config{
		Mode: core.ModePrune,
		MC:   mcOpt,
		Obs:  tel.Collector(),
		OnEvaluate: func(ev core.Event) {
			run++
			mark := ""
			if ev.Patterns > lastPatterns {
				mark = fmt.Sprintf("+%d", ev.Patterns-lastPatterns)
			}
			lastPatterns = ev.Patterns
			fmt.Printf("%4d  %-28s  %-8s  %-9s  %d\n", run, describe(ev.Assign, ev.Holes), ev.Verdict, mark, ev.Holes)
			events = append(events, ev)
		},
	})
	if err != nil {
		tel.Finish(nil)
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		exit(2)
	}

	naive, err := core.SynthesizeCtx(ctx, g, core.Config{Mode: core.ModeNaive, MC: mcOpt, Obs: tel.Collector()})
	stop()
	if err != nil {
		tel.Finish(nil)
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		exit(2)
	}
	aborted := res.Stats.Aborted || naive.Stats.Aborted
	abortCause := res.Stats.AbortCause
	if abortCause == "" {
		abortCause = naive.Stats.AbortCause
	}

	// The run table above streamed straight to stdout; only the trailing
	// summary stages through the telemetry Status buffer, so it flushes
	// after the -progress line clears and still lands below the table.
	out := tel.Status()
	fmt.Fprintln(out)
	fmt.Fprintf(out, "pruning:  %d candidates evaluated, %d pruning patterns, %d solution(s)\n",
		res.Stats.Evaluated, res.Stats.Patterns, len(res.Solutions))
	for i := range res.Solutions {
		fmt.Fprintf(out, "  solution: %s\n", res.Describe(i))
	}
	fmt.Fprintf(out, "naive:    %d of the nominal %d candidates evaluated\n",
		naive.Stats.Evaluated, naive.Stats.CandidateSpace)
	if cf.Stats {
		fmt.Fprintf(out, "space (pruning): %s\n", res.Stats.Space)
		fmt.Fprintf(out, "space (naive):   %s\n", naive.Stats.Space)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "Paper (Fig. 2): 10 runs with pruning versus 24 naive candidates.")
	agg := res.Stats.Space
	agg.Merge(naive.Stats.Space)
	verdict := "completed"
	code := 0
	if aborted {
		fmt.Fprintf(out, "\nABORTED: %s (counts above cover the completed prefix)\n", abortCause)
		verdict, code = "aborted", 3
	}
	if err := tel.Finish(&cliutil.RunSummary{
		Verdict: verdict, Exact: true, Space: agg,
		Aborted: aborted, AbortCause: abortCause,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		if code == 0 {
			code = 2
		}
	}
	exit(code)
}

// describe renders a candidate in the paper's ⟨1@A, 2@?⟩ notation; holes
// discovered but beyond the bound prefix print as wildcards.
func describe(assign []int, holes int) string {
	if holes == 0 {
		return "⟨⟩"
	}
	acts := [][]string{{"A", "B", "C"}, {"A", "B"}, {"A", "B"}, {"A", "B"}}
	s := "⟨"
	for i := 0; i < holes && i < len(acts); i++ {
		if i > 0 {
			s += ", "
		}
		if i < len(assign) {
			s += fmt.Sprintf("%d@%s", i+1, acts[i][assign[i]])
		} else {
			s += fmt.Sprintf("%d@?", i+1)
		}
	}
	return s + "⟩"
}
