// Command verc3-fig2 regenerates the paper's Figure 2 worked example: it
// synthesizes the 4-hole chain system with candidate pruning and prints the
// run-by-run table (candidate evaluated, verdict, pruning pattern inserted,
// holes discovered), then compares against the naive enumeration count.
//
// Usage:
//
//	verc3-fig2 [-visited flat|map|spill] [-bitstate-mb N] [-spill-mem-mb N]
//	           [-spill-dir DIR] [-progress] [-metrics-addr ADDR] [-report FILE]
//	           [-cpuprofile FILE] [-memprofile FILE] [-stats]
//
// The run-by-run table streams to stdout as candidates are evaluated;
// the telemetry flags cover both the pruning and the naive run, and
// -report aggregates their counters into one report.
package main

import (
	"flag"
	"fmt"
	"os"

	"verc3/internal/cliutil"
	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/visited"
)

func main() {
	stats := flag.Bool("stats", false, "print the aggregated exploration memory profile of both runs")
	visitedF := flag.String("visited", "flat", "visited-set backend for dispatches: flat, map, or spill — all exact (bitstate is lossy and refused for synthesis)")
	bitstateM := flag.Int("bitstate-mb", 0, "bitstate bit-array budget in MiB (synthesis refuses bitstate; flag kept uniform with verc3-verify)")
	spillMB := flag.Int("spill-mem-mb", 0, "spill backend's per-dispatch in-RAM tier budget in MiB (0 = default 64; -visited spill only)")
	spillDir := flag.String("spill-dir", "", "parent directory for spill run files (\"\" = OS temp dir; -visited spill only)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	progress, metricsAddr, report := cliutil.TelemetryFlags()
	flag.Parse()

	if err := cliutil.FirstNegative(
		cliutil.IntFlag{Name: "-bitstate-mb", Value: int64(*bitstateM)},
		cliutil.IntFlag{Name: "-spill-mem-mb", Value: int64(*spillMB)},
	); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		os.Exit(2)
	}

	backend, err := visited.ParseKind(*visitedF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		os.Exit(2)
	}

	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		os.Exit(2)
	}
	exit := cliutil.ProfiledExit("verc3-fig2", stopProf)
	tel, err := cliutil.StartTelemetry(cliutil.TelemetryOptions{
		Tool:        "verc3-fig2",
		System:      "toy-fig2",
		Progress:    *progress,
		MetricsAddr: *metricsAddr,
		ReportPath:  *report,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		exit(2)
	}

	g := toy.Figure2()

	fmt.Println("Figure 2 worked example: 4 holes; hole 1 has actions {A,B,C}, holes 2-4 {A,B}.")
	fmt.Println()
	fmt.Printf("%4s  %-28s  %-8s  %-9s  %s\n", "Run", "Candidate", "Verdict", "Patterns", "Holes")

	run := 0
	lastPatterns := 0
	var events []core.Event
	mcOpt := mc.Options{
		MemStats:   *stats,
		Visited:    backend,
		BitstateMB: *bitstateM,
		SpillMem:   int64(*spillMB) << 20,
		SpillDir:   *spillDir,
		// Phase labels only when profiling (see verc3-verify).
		ProfileLabels: *cpuProf != "",
	}
	res, err := core.Synthesize(g, core.Config{
		Mode: core.ModePrune,
		MC:   mcOpt,
		Obs:  tel.Collector(),
		OnEvaluate: func(ev core.Event) {
			run++
			mark := ""
			if ev.Patterns > lastPatterns {
				mark = fmt.Sprintf("+%d", ev.Patterns-lastPatterns)
			}
			lastPatterns = ev.Patterns
			fmt.Printf("%4d  %-28s  %-8s  %-9s  %d\n", run, describe(ev.Assign, ev.Holes), ev.Verdict, mark, ev.Holes)
			events = append(events, ev)
		},
	})
	if err != nil {
		tel.Finish(nil)
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		exit(2)
	}

	naive, err := core.Synthesize(g, core.Config{Mode: core.ModeNaive, MC: mcOpt, Obs: tel.Collector()})
	if err != nil {
		tel.Finish(nil)
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		exit(2)
	}

	// The run table above streamed straight to stdout; only the trailing
	// summary stages through the telemetry Status buffer, so it flushes
	// after the -progress line clears and still lands below the table.
	out := tel.Status()
	fmt.Fprintln(out)
	fmt.Fprintf(out, "pruning:  %d candidates evaluated, %d pruning patterns, %d solution(s)\n",
		res.Stats.Evaluated, res.Stats.Patterns, len(res.Solutions))
	for i := range res.Solutions {
		fmt.Fprintf(out, "  solution: %s\n", res.Describe(i))
	}
	fmt.Fprintf(out, "naive:    %d of the nominal %d candidates evaluated\n",
		naive.Stats.Evaluated, naive.Stats.CandidateSpace)
	if *stats {
		fmt.Fprintf(out, "space (pruning): %s\n", res.Stats.Space)
		fmt.Fprintf(out, "space (naive):   %s\n", naive.Stats.Space)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "Paper (Fig. 2): 10 runs with pruning versus 24 naive candidates.")
	agg := res.Stats.Space
	agg.Merge(naive.Stats.Space)
	code := 0
	if err := tel.Finish(&cliutil.RunSummary{Verdict: "completed", Exact: true, Space: agg}); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-fig2:", err)
		code = 2
	}
	exit(code)
}

// describe renders a candidate in the paper's ⟨1@A, 2@?⟩ notation; holes
// discovered but beyond the bound prefix print as wildcards.
func describe(assign []int, holes int) string {
	if holes == 0 {
		return "⟨⟩"
	}
	acts := [][]string{{"A", "B", "C"}, {"A", "B"}, {"A", "B"}, {"A", "B"}}
	s := "⟨"
	for i := 0; i < holes && i < len(acts); i++ {
		if i > 0 {
			s += ", "
		}
		if i < len(assign) {
			s += fmt.Sprintf("%d@%s", i+1, acts[i][assign[i]])
		} else {
			s += fmt.Sprintf("%d@?", i+1)
		}
	}
	return s + "⟩"
}
