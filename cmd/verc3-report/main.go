// Command verc3-report validates and summarizes the machine-readable
// run reports the other binaries write under -report. It is the
// consumer side of the report schema: CI uses -validate to fail the
// build when a report stops round-tripping, and the default mode
// renders a quick human digest of a saved run.
//
// Usage:
//
//	verc3-report report.json...           summarize each report
//	verc3-report -validate report.json... schema-check only (quiet)
//
// Both report schema versions validate: version 1 (pre-abort) and
// version 2, whose abort/resume fields (aborted, abort_cause, resumed)
// the summary surfaces when present.
//
// Exit status is 0 when every report parses and validates, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"verc3/internal/obs"
)

func main() {
	validate := flag.Bool("validate", false, "validate only: no output on success, exit 1 on any invalid report")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "verc3-report: no report files given")
		os.Exit(2)
	}
	code := 0
	for i, path := range flag.Args() {
		r, err := obs.ReadReport(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verc3-report:", err)
			code = 1
			continue
		}
		if *validate {
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		summarize(path, r)
	}
	os.Exit(code)
}

func summarize(path string, r *obs.Report) {
	elapsed := time.Duration(r.ElapsedNS)
	fmt.Printf("%s: %s", path, r.Tool)
	if r.System != "" {
		fmt.Printf(" -system %s", r.System)
	}
	fmt.Printf(" (%s %s/%s, GOMAXPROCS=%d, %s)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS, r.Start.Format(time.RFC3339))
	fmt.Printf("  verdict:  %s (exact=%v) in %v\n", r.Verdict, r.Exact, elapsed.Round(time.Millisecond))
	if r.Aborted {
		fmt.Printf("  aborted:  %s\n", r.AbortCause)
	}
	if r.Resumed {
		fmt.Printf("  resumed:  true (run seeded from a checkpoint; counts include the prefix)\n")
	}
	states := r.Final.Counters[obs.CStates]
	rate := 0.0
	if r.ElapsedNS > 0 {
		rate = float64(states) / (float64(r.ElapsedNS) / 1e9)
	}
	fmt.Printf("  explored: %d states, %d transitions, %d duplicates (%.0f states/s)\n",
		states, r.Final.Counters[obs.CTransitions], r.Final.Counters[obs.CDuplicates], rate)
	if ev := r.Final.Counters[obs.CEvaluated]; ev > 0 {
		fmt.Printf("  synth:    %d evaluated, %d skipped, %d solutions in %d rounds\n",
			ev, r.Final.Counters[obs.CSkipped], r.Final.Counters[obs.CSolutions],
			r.Final.Gauges[obs.GRound])
	}
	fmt.Printf("  timeline: %d snapshots, %d events (%d dropped)\n",
		len(r.Timeline), len(r.Events), r.EventsDropped)
	if len(r.Phases) > 0 {
		names := make([]string, 0, len(r.Phases))
		for name := range r.Phases {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("  phases (sampled):\n")
		for _, name := range names {
			hs := r.Phases[name]
			fmt.Printf("    %-12s %9d obs, mean %v\n",
				name, hs.Count, time.Duration(hs.MeanNS()).Round(10*time.Nanosecond))
		}
	}
}
