// Command verc3-synth runs the synthesis procedure on a built-in skeleton
// — or a sketch loaded from a verc3_model_v1 JSON spec file — and prints
// the discovered holes, search statistics and every correctly verified
// candidate.
//
// Usage:
//
//	verc3-synth -system msi-small [-caches 2] [-mode prune|naive]
//	            [-workers 4] [-mc-workers 1] [-style full|trace] [-max-eval N]
//	            [-liveness] [-visited flat|map|spill] [-spill-mem-mb N]
//	            [-spill-dir DIR] [-timeout D] [-progress] [-metrics-addr ADDR]
//	            [-report FILE] [-cpuprofile FILE] [-memprofile FILE]
//	            [-stats] [-v]
//	verc3-synth -spec examples/specs/mutex-sketch.json [...]
//
// -timeout bounds the search's wall-clock time; SIGINT/SIGTERM cancel it
// the same way. The search winds down cooperatively: in-flight candidate
// checks abort, the partial statistics print with an ABORTED note, exit
// code is 3, and profiles and -report still flush. A candidate whose
// model code panics is contained — it is recorded as a failed candidate
// (never generalized into a pruning pattern) and the search continues.
//
// -spec loads the sketch from a JSON model spec (see internal/spec): its
// choose holes are discovered and bound through the same engine as
// compiled-in skeletons. A spec without holes is accepted too — the
// search space is the single empty candidate, so the run degenerates to
// one verification.
//
// -progress renders a live status line on stderr (rounds, candidates
// evaluated/skipped, pruning patterns, aggregate exploration rate);
// -metrics-addr serves the same telemetry over HTTP and -report writes
// a machine-readable run report, including the structured round and
// solution events, at exit.
//
// With -liveness, every candidate dispatch additionally runs the nested-DFS
// accepting-cycle search, so candidates that are safe but starve a liveness
// goal are pruned too; winners are re-verified under the same option.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"verc3/internal/cliutil"
	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/ts"
	"verc3/internal/zoo"
)

func main() {
	var (
		system    = flag.String("system", "msi-small", "skeleton to synthesize ("+strings.Join(zoo.Names(), ", ")+")")
		caches    = flag.Int("caches", 0, "MSI cache count (0 = default 3)")
		mode      = flag.String("mode", "prune", "synthesis mode: prune or naive")
		style     = flag.String("style", "full", "pruning pattern style: full (paper) or trace (generalized)")
		workers   = flag.Int("workers", 1, "parallel synthesis workers (cross-candidate)")
		mcWorkers = flag.Int("mc-workers", 1, "intra-check exploration workers per dispatch")
		symmetry  = flag.Bool("symmetry", true, "enable symmetry reduction in the model checker")
		liveness  = flag.Bool("liveness", false, "check declared liveness goals (nested DFS) on every candidate dispatch")
		maxEval   = flag.Int64("max-eval", 0, "stop after N model-checker dispatches (0 = run to completion)")
		verbose   = flag.Bool("v", false, "log rounds and solutions as they are found")
	)
	cf := cliutil.RegisterCommon()
	flag.Parse()

	if err := cf.Validate(
		cliutil.IntFlag{Name: "-caches", Value: int64(*caches)},
		cliutil.IntFlag{Name: "-workers", Value: int64(*workers)},
		cliutil.IntFlag{Name: "-mc-workers", Value: int64(*mcWorkers)},
		cliutil.IntFlag{Name: "-max-eval", Value: *maxEval},
	); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-synth:", err)
		os.Exit(2)
	}

	backend, err := cf.Backend()
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-synth:", err)
		os.Exit(2)
	}
	var sys ts.System
	name := *system
	if m, err := cf.LoadSpec(); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-synth:", err)
		os.Exit(2)
	} else if m != nil {
		sys, name = m.System(), m.Name()
	} else {
		sys, err = zoo.Get(*system, zoo.Params{Caches: *caches})
		if err != nil {
			fmt.Fprintln(os.Stderr, "verc3-synth:", err)
			os.Exit(2)
		}
	}
	cfg := core.Config{
		Workers:   *workers,
		MCWorkers: *mcWorkers,
		MC: mc.Options{
			Symmetry: *symmetry,
			Liveness: *liveness,
		},
		MaxEvaluations: *maxEval,
	}
	cf.ApplyMC(&cfg.MC, backend)
	switch *mode {
	case "prune":
		cfg.Mode = core.ModePrune
	case "naive":
		cfg.Mode = core.ModeNaive
	default:
		fmt.Fprintf(os.Stderr, "verc3-synth: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	switch *style {
	case "full":
		cfg.PruneStyle = core.PruneFullVector
	case "trace":
		cfg.PruneStyle = core.PruneTraceGeneralized
	default:
		fmt.Fprintf(os.Stderr, "verc3-synth: unknown -style %q\n", *style)
		os.Exit(2)
	}
	tel, exit, err := cf.Start("verc3-synth", name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-synth:", err)
		exit(2)
	}
	cfg.Obs = tel.Collector()
	if *verbose {
		// Route round/solution logs through the telemetry writer: they land
		// on stderr and never tear the -progress status line (the old
		// stdout Printf interleaved with summary and sampler output).
		cfg.Log = func(f string, a ...any) { tel.Logf("· "+f, a...) }
	}

	ctx, stop := cf.Context("verc3-synth")
	start := time.Now()
	res, err := core.SynthesizeCtx(ctx, sys, cfg)
	stop()
	if err != nil {
		tel.Finish(nil)
		fmt.Fprintln(os.Stderr, "verc3-synth:", err)
		exit(2)
	}
	st := res.Stats
	out := tel.Status()
	fmt.Fprintf(out, "system:           %s\n", sys.Name())
	fmt.Fprintf(out, "mode:             %s (%s, %d workers)\n", cfg.Mode, cfg.PruneStyle, cfg.Workers)
	fmt.Fprintf(out, "holes:            %d\n", st.Holes)
	for i, n := range res.HoleNames {
		fmt.Fprintf(out, "  %2d. %-24s {%s}\n", i+1, n, strings.Join(res.HoleActions[i], ", "))
	}
	fmt.Fprintf(out, "candidates:       %d\n", st.CandidateSpace)
	fmt.Fprintf(out, "evaluated:        %d\n", st.Evaluated)
	fmt.Fprintf(out, "pruned (skipped): %d\n", st.Skipped)
	fmt.Fprintf(out, "pruning patterns: %d\n", st.Patterns)
	fmt.Fprintf(out, "verdicts:         %d success / %d failure / %d unknown\n", st.Successes, st.Failures, st.Unknowns)
	if st.Panicked > 0 {
		fmt.Fprintf(out, "panicked:         %d (contained model-code panics; counted as failures, never generalized into pruning patterns)\n", st.Panicked)
	}
	fmt.Fprintf(out, "rounds:           %d\n", st.Rounds)
	if st.Aborted {
		fmt.Fprintf(out, "ABORTED: %s (search cut short; counts above cover the completed prefix)\n", st.AbortCause)
	}
	if st.Truncated {
		fmt.Fprintf(out, "NOTE: truncated by -max-eval=%d\n", *maxEval)
	}
	fmt.Fprintf(out, "elapsed:          %v\n", time.Since(start).Round(time.Millisecond))
	if cf.Stats {
		fmt.Fprintf(out, "space:            %s\n", st.Space)
	}
	fmt.Fprintf(out, "solutions:        %d\n", len(res.Solutions))
	for i, sol := range res.Solutions {
		mark := ""
		if sol.Reverified {
			mark = ", reverified"
		}
		fmt.Fprintf(out, "  #%d (%d states%s): %s\n", i+1, sol.VisitedStates, mark, res.Describe(i))
	}
	verdict := "solutions"
	if len(res.Solutions) == 0 {
		verdict = "no-solutions"
	}
	code := 0
	if len(res.Solutions) == 0 && !st.Truncated && !st.Aborted {
		code = 1
	}
	if st.Aborted {
		code = 3
	}
	if err := tel.Finish(&cliutil.RunSummary{
		Verdict: verdict, Exact: true, Space: st.Space,
		Aborted: st.Aborted, AbortCause: st.AbortCause,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-synth:", err)
		if code == 0 {
			code = 2
		}
	}
	exit(code)
}
