// Command verc3-table1 regenerates Table I of the paper: the MSI coherence
// protocol case study, six configurations crossing problem size (MSI-small,
// MSI-large) with synthesis strategy (naive enumeration, candidate pruning
// 1 thread, candidate pruning 4 threads).
//
// The full MSI-large naive run evaluates 102,102,525 candidates (8.8 hours
// for the paper's C++ on an i7; far longer here), so by default it is
// truncated after -naive-large-max dispatches and the total time is
// extrapolated from the measured per-candidate cost; pass -full to run it
// to completion.
//
// Usage:
//
//	verc3-table1 [-caches 2] [-workers 4] [-mc-workers 1] [-naive-large-max 20000]
//	             [-full] [-skip-naive] [-visited flat|map|spill]
//	             [-spill-mem-mb N] [-spill-dir DIR] [-timeout D] [-stats]
//	             [-progress] [-metrics-addr ADDR] [-report FILE]
//	             [-cpuprofile FILE] [-memprofile FILE]
//
// -timeout (or SIGINT/SIGTERM) bounds the whole table regeneration: the
// in-flight row aborts cooperatively, remaining rows are skipped, the
// rows that did finish still print, and the exit code is 3.
//
// The workload is fixed (the paper's MSI sketches), so the shared -spec
// flag is refused with a pointer to verc3-verify/verc3-synth.
//
// The telemetry flags aggregate across all six configurations: -progress
// shows the live cross-row exploration rate, and -report records one
// report whose counters and Space profile sum every row's dispatches.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"verc3/internal/cliutil"
	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/msi"
	"verc3/internal/statespace"
)

type row struct {
	name      string
	variant   msi.Variant
	mode      core.Mode
	workers   int
	truncate  int64 // 0 = full run
	res       *core.Result
	elapsed   time.Duration
	extrapol  time.Duration // estimated full time when truncated
	fullSpace uint64        // naive candidate space for extrapolation
}

func main() {
	var (
		caches     = flag.Int("caches", 2, "MSI cache count")
		workers    = flag.Int("workers", 4, "worker count for the parallel rows")
		mcWorkers  = flag.Int("mc-workers", 1, "intra-check exploration workers per model-checker dispatch")
		naiveLgMax = flag.Int64("naive-large-max", 20000, "dispatch cap for the MSI-large naive row")
		full       = flag.Bool("full", false, "run every configuration to completion (MSI-large naive: days)")
		skipNaive  = flag.Bool("skip-naive", false, "skip both naive rows entirely")
	)
	cf := cliutil.RegisterCommon()
	flag.Parse()

	if err := cf.Validate(
		cliutil.IntFlag{Name: "-caches", Value: int64(*caches)},
		cliutil.IntFlag{Name: "-workers", Value: int64(*workers)},
		cliutil.IntFlag{Name: "-mc-workers", Value: int64(*mcWorkers)},
		cliutil.IntFlag{Name: "-naive-large-max", Value: *naiveLgMax},
	); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-table1:", err)
		os.Exit(2)
	}
	cliutil.RefuseSpec("verc3-table1", "the paper's Table I MSI case study", cf)

	backend, err := cf.Backend()
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-table1:", err)
		os.Exit(2)
	}

	tel, exit, err := cf.Start("verc3-table1", "msi")
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-table1:", err)
		exit(2)
	}

	rows := []*row{
		{name: "MSI-small 1 thread, no pruning", variant: msi.Small, mode: core.ModeNaive, workers: 1},
		{name: "MSI-small 1 thread, pruning", variant: msi.Small, mode: core.ModePrune, workers: 1},
		{name: fmt.Sprintf("MSI-small %d threads, pruning", *workers), variant: msi.Small, mode: core.ModePrune, workers: *workers},
		{name: "MSI-large 1 thread, no pruning", variant: msi.Large, mode: core.ModeNaive, workers: 1, truncate: *naiveLgMax},
		{name: "MSI-large 1 thread, pruning", variant: msi.Large, mode: core.ModePrune, workers: 1},
		{name: fmt.Sprintf("MSI-large %d threads, pruning", *workers), variant: msi.Large, mode: core.ModePrune, workers: *workers},
	}
	if *full {
		rows[3].truncate = 0
	}

	ctx, stop := cf.Context("verc3-table1")
	var aggSpace statespace.Stats
	aborted := false
	abortCause := ""
	for _, r := range rows {
		if *skipNaive && r.mode == core.ModeNaive {
			continue
		}
		sys := msi.New(msi.Config{Caches: *caches, Variant: r.variant})
		tel.Logf("running %-34s ...", r.name)
		start := time.Now()
		mcOpt := mc.Options{Symmetry: true}
		cf.ApplyMC(&mcOpt, backend)
		res, err := core.SynthesizeCtx(ctx, sys, core.Config{
			Mode:           r.mode,
			Workers:        r.workers,
			MCWorkers:      *mcWorkers,
			Obs:            tel.Collector(),
			MC:             mcOpt,
			MaxEvaluations: r.truncate,
		})
		if err != nil {
			tel.Finish(nil)
			fmt.Fprintln(os.Stderr, "error:", err)
			exit(2)
		}
		r.res = res
		r.elapsed = time.Since(start)
		aggSpace.Merge(res.Stats.Space)
		if res.Stats.Aborted {
			aborted, abortCause = true, res.Stats.AbortCause
			tel.Logf("  %-34s aborted: %s; skipping remaining rows", r.name, abortCause)
			break
		}
		if res.Stats.Truncated {
			perCand := r.elapsed / time.Duration(res.Stats.Evaluated)
			r.fullSpace = res.Stats.CandidateSpace
			r.extrapol = perCand * time.Duration(r.fullSpace)
		}
		tel.Logf("  %-34s %v", r.name, r.elapsed.Round(time.Millisecond))
	}
	stop()

	out := tel.Status()
	fmt.Fprintf(out, "\nTable I (regenerated; caches=%d, GOMAXPROCS-bound parallelism)\n\n", *caches)
	fmt.Fprintf(out, "%-34s %6s %14s %18s %12s %10s %14s\n",
		"Configuration", "Holes", "Candidates", "Pruning Patterns", "Evaluated", "Solutions", "Exec. Time")
	for _, r := range rows {
		if r.res == nil {
			continue
		}
		st := r.res.Stats
		pat := "N/A"
		if r.mode == core.ModePrune {
			pat = fmt.Sprint(st.Patterns)
		}
		tm := r.elapsed.Round(10 * time.Millisecond).String()
		ev := fmt.Sprint(st.Evaluated)
		if st.Truncated {
			tm = fmt.Sprintf("~%v (extrapolated)", r.extrapol.Round(time.Minute))
			ev = fmt.Sprintf("%d (sampled; full=%d)", st.Evaluated, r.fullSpace)
		}
		if st.Aborted {
			tm = fmt.Sprintf("%v (aborted)", r.elapsed.Round(10*time.Millisecond))
		}
		fmt.Fprintf(out, "%-34s %6d %14d %18s %12s %10d %14s\n",
			r.name, st.Holes, st.CandidateSpace, pat, ev, len(r.res.Solutions), tm)
	}
	if cf.Stats {
		fmt.Fprintln(out)
		for _, r := range rows {
			if r.res == nil {
				continue
			}
			fmt.Fprintf(out, "space %-28s %s\n", r.name+":", r.res.Stats.Space)
		}
	}

	// Derived headline metrics, mirroring §III's discussion. Aborted rows
	// carry partial times that would skew every ratio, so they opt out.
	done := func(r *row) bool { return r.res != nil && !r.res.Stats.Aborted }
	speedup := func(naive, prune *row) {
		if !done(naive) || !done(prune) {
			return
		}
		nt := naive.elapsed
		if naive.res.Stats.Truncated {
			nt = naive.extrapol
		}
		nEval := float64(naive.res.Stats.CandidateSpace)
		if !naive.res.Stats.Truncated {
			nEval = float64(naive.res.Stats.Evaluated)
		}
		red := 100 * (1 - float64(prune.res.Stats.Evaluated)/nEval)
		qual := ""
		if naive.res.Stats.Truncated {
			qual = " (naive time extrapolated)"
		}
		fmt.Fprintf(out, "\n%s: evaluated-candidate reduction %.2f%%, speedup %.1fx%s (paper: 99.6%%/35.8x small, 99.8%%/42.7x large)\n",
			prune.name, red, float64(nt)/float64(prune.elapsed), qual)
	}
	speedup(rows[0], rows[1])
	speedup(rows[3], rows[4])
	if done(rows[1]) && done(rows[2]) {
		fmt.Fprintf(out, "parallel small: %.2fx over 1-thread pruning (paper: 1.5x; needs >1 CPU to materialize)\n",
			float64(rows[1].elapsed)/float64(rows[2].elapsed))
	}
	if done(rows[4]) && done(rows[5]) {
		fmt.Fprintf(out, "parallel large: %.2fx over 1-thread pruning (paper: 2.5x; needs >1 CPU to materialize)\n",
			float64(rows[4].elapsed)/float64(rows[5].elapsed))
	}
	verdict := "completed"
	code := 0
	if aborted {
		fmt.Fprintf(out, "\nABORTED: %s (rows after the break were skipped)\n", abortCause)
		verdict, code = "aborted", 3
	}
	if err := tel.Finish(&cliutil.RunSummary{
		Verdict: verdict, Exact: true, Space: aggSpace,
		Aborted: aborted, AbortCause: abortCause,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-table1:", err)
		if code == 0 {
			code = 2
		}
	}
	exit(code)
}
