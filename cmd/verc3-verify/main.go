// Command verc3-verify model-checks a built-in system and reports the
// verdict, exploration statistics and — on failure — a minimal
// counterexample trace. Synthesis sketches (systems with unassigned holes)
// are refused with a pointer to verc3-synth.
//
// Usage:
//
//	verc3-verify -system msi-complete [-caches 3] [-symmetry=false] [-states]
//	             [-liveness] [-dfs] [-workers N] [-shard-bits B] [-no-trace]
//	             [-no-recycle] [-stats] [-visited flat|map|bitstate|spill]
//	             [-bitstate-mb N] [-spill-mem-mb N] [-spill-dir DIR]
//	             [-progress] [-metrics-addr ADDR] [-report FILE]
//	             [-cpuprofile FILE] [-memprofile FILE]
//
// -progress renders a live status line on stderr (states/sec, depth,
// frontier, visited memory, cap %), -metrics-addr serves the same
// telemetry over HTTP (/metrics Prometheus text, /metrics.json), and
// -report writes a versioned machine-readable run report at exit
// (validate or summarize it with verc3-report).
//
// With -liveness, systems declaring liveness goals additionally run the
// nested-DFS accepting-cycle search after the safety pass; violations
// render as lasso counterexamples (stem + cycle). Liveness needs an exact
// visited backend, so -liveness -visited bitstate is refused.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"verc3/internal/cliutil"
	"verc3/internal/mc"
	"verc3/internal/trace"
	"verc3/internal/visited"
	"verc3/internal/zoo"
)

func main() {
	var (
		system    = flag.String("system", "msi-complete", "system to verify ("+strings.Join(zoo.Names(), ", ")+")")
		caches    = flag.Int("caches", 0, "MSI cache count (0 = default 3)")
		symmetry  = flag.Bool("symmetry", true, "enable scalarset symmetry reduction")
		liveness  = flag.Bool("liveness", false, "after the safety pass, check declared liveness goals with nested DFS (needs an exact visited backend)")
		states    = flag.Bool("states", false, "print states along the counterexample trace")
		dfs       = flag.Bool("dfs", false, "use depth-first search (traces not minimal)")
		maxSt     = flag.Int("max-states", 0, "state cap (0 = unlimited)")
		workers   = flag.Int("workers", 1, "parallel exploration workers (0 = GOMAXPROCS, <=1 = sequential)")
		shardBits = flag.Int("shard-bits", 0, "log2 shards of the parallel visited set (0 = default)")
		noTrace   = flag.Bool("no-trace", false, "skip trace recording (fingerprint-only memory; failures carry no counterexample)")
		noRecycle = flag.Bool("no-recycle", false, "disable successor recycling (fresh clone per transition; ablation knob)")
		stats     = flag.Bool("stats", false, "print the exploration memory profile (peak frontier, trace store, allocations)")
		visitedF  = flag.String("visited", "flat", "visited-set backend: flat (open addressing), map, bitstate (lossy, fixed memory), or spill (exact, RAM-bounded, overflows to disk)")
		bitstateM = flag.Int("bitstate-mb", 0, "bitstate bit-array budget in MiB (0 = default 64; -visited bitstate only)")
		spillMB   = flag.Int("spill-mem-mb", 0, "spill backend's in-RAM tier budget in MiB (0 = default 64; -visited spill only)")
		spillDir  = flag.String("spill-dir", "", "parent directory for spill run files (\"\" = OS temp dir; -visited spill only)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	)
	progress, metricsAddr, report := cliutil.TelemetryFlags()
	flag.Parse()

	if err := cliutil.FirstNegative(
		cliutil.IntFlag{Name: "-caches", Value: int64(*caches)},
		cliutil.IntFlag{Name: "-max-states", Value: int64(*maxSt)},
		cliutil.IntFlag{Name: "-workers", Value: int64(*workers)},
		cliutil.IntFlag{Name: "-shard-bits", Value: int64(*shardBits)},
		cliutil.IntFlag{Name: "-bitstate-mb", Value: int64(*bitstateM)},
		cliutil.IntFlag{Name: "-spill-mem-mb", Value: int64(*spillMB)},
	); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	}

	backend, err := visited.ParseKind(*visitedF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	}

	if *liveness && backend == visited.Bitstate {
		fmt.Fprintf(os.Stderr,
			"verc3-verify: -liveness cannot run on the bitstate backend: nested DFS relies on\n"+
				"exact membership answers, and bitstate hashing may drop states (a false \"seen\"\n"+
				"would silently close a cycle that does not exist). Use an exact backend:\n\n"+
				"\tverc3-verify -system %s -liveness -visited flat|map|spill\n", *system)
		os.Exit(2)
	}

	if zoo.IsSketch(*system) {
		fmt.Fprintf(os.Stderr,
			"verc3-verify: system %q is a synthesis sketch: its transitions contain unassigned holes,\n"+
				"which plain model checking cannot resolve. Complete it with the synthesis tool instead:\n\n"+
				"\tverc3-synth -system %s\n", *system, *system)
		os.Exit(2)
	}
	sys, err := zoo.Get(*system, zoo.Params{Caches: *caches})
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	}
	exit := cliutil.ProfiledExit("verc3-verify", stopProf)
	tel, err := cliutil.StartTelemetry(cliutil.TelemetryOptions{
		Tool:        "verc3-verify",
		System:      *system,
		Progress:    *progress,
		MetricsAddr: *metricsAddr,
		ReportPath:  *report,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		exit(2)
	}
	opt := mc.Options{
		Obs:         tel.Collector(),
		Symmetry:    *symmetry,
		RecordTrace: !*noTrace,
		MaxStates:   *maxSt,
		Workers:     *workers,
		ShardBits:   *shardBits,
		MemStats:    *stats,
		NoRecycle:   *noRecycle,
		// Label driver phases (enumerate/fire/key/insert) only when a CPU
		// profile is being taken; the labels cost a goroutine-label store
		// per phase switch.
		ProfileLabels: *cpuProf != "",
		Liveness:      *liveness,
		Visited:       backend,
		BitstateMB:    *bitstateM,
		SpillMem:      int64(*spillMB) << 20,
		SpillDir:      *spillDir,
	}
	if *dfs {
		opt.Order = mc.DFS
	}
	start := time.Now()
	res, err := mc.Check(sys, opt)
	if err != nil {
		tel.Finish(nil)
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		exit(2)
	}
	// The whole human-readable summary stages into the telemetry Status
	// buffer and lands in one flush inside Finish, after the -progress
	// status line is gone — no interleaving with sampler repaints.
	st := tel.Status()
	fmt.Fprintf(st, "system:      %s\n", sys.Name())
	fmt.Fprintf(st, "verdict:     %s\n", res.Verdict)
	fmt.Fprintf(st, "states:      %d\n", res.Stats.VisitedStates)
	fmt.Fprintf(st, "transitions: %d\n", res.Stats.FiredTransitions)
	fmt.Fprintf(st, "max depth:   %d\n", res.Stats.MaxDepth)
	if *liveness {
		fmt.Fprintf(st, "ndfs:        %d blue + %d red product states\n", res.Space.LiveStates, res.Space.RedStates)
	}
	fmt.Fprintf(st, "elapsed:     %v\n", time.Since(start).Round(time.Millisecond))
	if !res.Exact {
		fmt.Fprintf(st, "exact:       false (bitstate storage; p(state omitted) ~ %.2g — counts are lower bounds)\n",
			res.Space.OmissionProb)
	}
	if *stats {
		fmt.Fprintf(st, "space:       %s\n", res.Space)
	}
	code := 0
	if res.Verdict == mc.Failure {
		fmt.Fprintln(st)
		fmt.Fprint(st, trace.Format(res.Failure, trace.Options{ShowStates: *states}))
		code = 1
	}
	if err := tel.Finish(&cliutil.RunSummary{
		Verdict: res.Verdict.String(), Exact: res.Exact, Space: res.Space,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		if code == 0 {
			code = 2
		}
	}
	exit(code)
}
