// Command verc3-verify model-checks a built-in system — or one loaded from
// a verc3_model_v1 JSON spec file — and reports the verdict, exploration
// statistics and, on failure, a minimal counterexample trace. Synthesis
// sketches (systems with unassigned holes) are refused with a pointer to
// verc3-synth.
//
// Usage:
//
//	verc3-verify -system msi-complete [-caches 3] [-symmetry=false] [-states]
//	             [-liveness] [-dfs] [-workers N] [-shard-bits B] [-no-trace]
//	             [-no-recycle] [-stats] [-visited flat|map|bitstate|spill]
//	             [-bitstate-mb N] [-spill-mem-mb N] [-spill-dir DIR]
//	             [-timeout D] [-checkpoint-dir DIR] [-resume] [-checkpoint-every D]
//	             [-progress] [-metrics-addr ADDR] [-report FILE]
//	             [-cpuprofile FILE] [-memprofile FILE]
//	verc3-verify -spec examples/specs/tokenring.json [-liveness] [...]
//
// -timeout bounds the run's wall-clock time; SIGINT/SIGTERM cancel it the
// same way. Either path winds the run down cooperatively: the verdict is
// "aborted" (exit code 3), partial statistics are printed, and profiles,
// -report and spill cleanup still happen. A second signal exits
// immediately.
//
// -checkpoint-dir snapshots the run at BFS level boundaries (atomically
// committed; at most one checkpoint is kept) and -resume seeds the run
// from the newest snapshot, reproducing the uninterrupted run's verdict
// and counts bit-identically. Saves are throttled so checkpointing costs
// at most ~5% of wall-clock; -checkpoint-every overrides the spacing
// (negative = every boundary). Checkpointing requires BFS order, an exact
// visited backend and -no-trace.
//
// -spec loads the system from a JSON model spec (see internal/spec and the
// committed examples under examples/specs/) instead of the compiled-in
// zoo; every other flag works the same.
//
// -progress renders a live status line on stderr (states/sec, depth,
// frontier, visited memory, cap %), -metrics-addr serves the same
// telemetry over HTTP (/metrics Prometheus text, /metrics.json), and
// -report writes a versioned machine-readable run report at exit
// (validate or summarize it with verc3-report).
//
// With -liveness, systems declaring liveness goals additionally run the
// nested-DFS accepting-cycle search after the safety pass; violations
// render as lasso counterexamples (stem + cycle). Liveness needs an exact
// visited backend, so -liveness -visited bitstate is refused.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"verc3/internal/cliutil"
	"verc3/internal/mc"
	"verc3/internal/trace"
	"verc3/internal/ts"
	"verc3/internal/visited"
	"verc3/internal/zoo"
)

func main() {
	var (
		system    = flag.String("system", "msi-complete", "system to verify ("+strings.Join(zoo.Names(), ", ")+")")
		caches    = flag.Int("caches", 0, "MSI cache count (0 = default 3)")
		symmetry  = flag.Bool("symmetry", true, "enable scalarset symmetry reduction")
		liveness  = flag.Bool("liveness", false, "after the safety pass, check declared liveness goals with nested DFS (needs an exact visited backend)")
		states    = flag.Bool("states", false, "print states along the counterexample trace")
		dfs       = flag.Bool("dfs", false, "use depth-first search (traces not minimal)")
		maxSt     = flag.Int("max-states", 0, "state cap (0 = unlimited)")
		workers   = flag.Int("workers", 1, "parallel exploration workers (0 = GOMAXPROCS, <=1 = sequential)")
		shardBits = flag.Int("shard-bits", 0, "log2 shards of the parallel visited set (0 = default)")
		noTrace   = flag.Bool("no-trace", false, "skip trace recording (fingerprint-only memory; failures carry no counterexample)")
		noRecycle = flag.Bool("no-recycle", false, "disable successor recycling (fresh clone per transition; ablation knob)")
	)
	cf := cliutil.RegisterCommon()
	ck := cliutil.RegisterCheckpoint()
	flag.Parse()

	if err := cf.Validate(
		cliutil.IntFlag{Name: "-caches", Value: int64(*caches)},
		cliutil.IntFlag{Name: "-max-states", Value: int64(*maxSt)},
		cliutil.IntFlag{Name: "-workers", Value: int64(*workers)},
		cliutil.IntFlag{Name: "-shard-bits", Value: int64(*shardBits)},
	); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	}
	if err := ck.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	}
	if ck.Dir != "" && !*noTrace {
		fmt.Fprintln(os.Stderr,
			"verc3-verify: -checkpoint-dir requires -no-trace: checkpoints snapshot only\n"+
				"fingerprints and the frontier, so trace parent chains cannot survive a resume.")
		os.Exit(2)
	}

	backend, err := cf.Backend()
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	}

	if *liveness && backend == visited.Bitstate {
		fmt.Fprintf(os.Stderr,
			"verc3-verify: -liveness cannot run on the bitstate backend: nested DFS relies on\n"+
				"exact membership answers, and bitstate hashing may drop states (a false \"seen\"\n"+
				"would silently close a cycle that does not exist). Use an exact backend:\n\n"+
				"\tverc3-verify -system %s -liveness -visited flat|map|spill\n", *system)
		os.Exit(2)
	}

	var sys ts.System
	name := *system
	if m, err := cf.LoadSpec(); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		os.Exit(2)
	} else if m != nil {
		if m.Sketch() {
			fmt.Fprintf(os.Stderr,
				"verc3-verify: spec %q is a synthesis sketch: its rules contain unassigned choose\n"+
					"holes, which plain model checking cannot resolve. Complete it with the synthesis\n"+
					"tool instead:\n\n"+
					"\tverc3-synth -spec %s\n", m.Name(), cf.Spec)
			os.Exit(2)
		}
		sys, name = m.System(), m.Name()
	} else {
		if zoo.IsSketch(*system) {
			fmt.Fprintf(os.Stderr,
				"verc3-verify: system %q is a synthesis sketch: its transitions contain unassigned holes,\n"+
					"which plain model checking cannot resolve. Complete it with the synthesis tool instead:\n\n"+
					"\tverc3-synth -system %s\n", *system, *system)
			os.Exit(2)
		}
		sys, err = zoo.Get(*system, zoo.Params{Caches: *caches})
		if err != nil {
			fmt.Fprintln(os.Stderr, "verc3-verify:", err)
			os.Exit(2)
		}
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	tel, exit, err := cf.Start("verc3-verify", name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		exit(2)
	}
	opt := mc.Options{
		Obs:         tel.Collector(),
		Symmetry:    *symmetry,
		RecordTrace: !*noTrace,
		MaxStates:   *maxSt,
		Workers:     *workers,
		ShardBits:   *shardBits,
		NoRecycle:   *noRecycle,
		Liveness:    *liveness,
	}
	cf.ApplyMC(&opt, backend)
	ck.ApplyMC(&opt)
	if *dfs {
		opt.Order = mc.DFS
	}
	ctx, stop := cf.Context("verc3-verify")
	start := time.Now()
	res, err := mc.CheckCtx(ctx, sys, opt)
	stop()
	if err != nil {
		tel.Finish(nil)
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		exit(2)
	}
	// The whole human-readable summary stages into the telemetry Status
	// buffer and lands in one flush inside Finish, after the -progress
	// status line is gone — no interleaving with sampler repaints.
	st := tel.Status()
	fmt.Fprintf(st, "system:      %s\n", sys.Name())
	fmt.Fprintf(st, "verdict:     %s\n", res.Verdict)
	abortCause := ""
	if res.Abort != nil {
		abortCause = res.Abort.Cause.Error()
		fmt.Fprintf(st, "abort cause: %s\n", abortCause)
		if res.Abort.Panic && res.Abort.StateKey != "" {
			fmt.Fprintf(st, "panic state: %s\n", res.Abort.StateKey)
		}
	}
	if res.Resumed {
		fmt.Fprintf(st, "resumed:     true (seeded from checkpoint; counts include the checkpointed prefix)\n")
	}
	fmt.Fprintf(st, "states:      %d\n", res.Stats.VisitedStates)
	fmt.Fprintf(st, "transitions: %d\n", res.Stats.FiredTransitions)
	fmt.Fprintf(st, "max depth:   %d\n", res.Stats.MaxDepth)
	if *liveness {
		fmt.Fprintf(st, "ndfs:        %d blue + %d red product states\n", res.Space.LiveStates, res.Space.RedStates)
	}
	fmt.Fprintf(st, "elapsed:     %v\n", time.Since(start).Round(time.Millisecond))
	if !res.Exact {
		fmt.Fprintf(st, "exact:       false (bitstate storage; p(state omitted) ~ %.2g — counts are lower bounds)\n",
			res.Space.OmissionProb)
	}
	if cf.Stats {
		fmt.Fprintf(st, "space:       %s\n", res.Space)
	}
	code := 0
	if res.Verdict == mc.Failure {
		fmt.Fprintln(st)
		fmt.Fprint(st, trace.Format(res.Failure, trace.Options{ShowStates: *states}))
		code = 1
	}
	if res.Verdict == mc.Aborted {
		code = 3
		if res.Abort.Panic && res.Abort.Stack != "" {
			// The contained panic's stack goes to stderr, not the summary:
			// it is diagnostic output, like any other crash report.
			fmt.Fprintf(os.Stderr, "verc3-verify: model panic at state %q:\n%s", res.Abort.StateKey, res.Abort.Stack)
		}
	}
	if err := tel.Finish(&cliutil.RunSummary{
		Verdict: res.Verdict.String(), Exact: res.Exact, Space: res.Space,
		Aborted: res.Verdict == mc.Aborted, AbortCause: abortCause, Resumed: res.Resumed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "verc3-verify:", err)
		if code == 0 {
			code = 2
		}
	}
	exit(code)
}
