// Package verc3 is a Go reproduction of "VerC3: A Library for Explicit
// State Synthesis of Concurrent Systems" (Elver, Banks, Jackson &
// Nagarajan, DATE 2018).
//
// The library lives under internal/: the guarded-command modelling layer
// (internal/ts) with its lightweight frontend DSL (internal/dsl), the
// embedded explicit-state model checker (internal/mc) on top of the
// state-space exploration substrate — 64-bit state fingerprints, a sharded
// visited set and a level-parallel BFS frontier (internal/statespace) —
// with scalarset symmetry reduction (internal/symmetry), the synthesis
// engine with lazy hole discovery and candidate pruning (internal/core),
// the unordered interconnect substrate (internal/network), the case
// studies (internal/msi, internal/mutex, internal/tokenring,
// internal/toy), counterexample rendering (internal/trace) and the named
// system registry (internal/zoo). Command-line tools are under cmd/ and
// runnable examples under examples/.
//
// The benchmark harness in bench_test.go regenerates every table and figure
// of the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package verc3
