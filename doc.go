// Package verc3 is a Go reproduction of "VerC3: A Library for Explicit
// State Synthesis of Concurrent Systems" (Elver, Banks, Jackson &
// Nagarajan, DATE 2018), grown into a parallel, memory-lean synthesis and
// model-checking engine.
//
// # Layering
//
// The library lives under internal/, lowest layer first:
//
//   - internal/ts and internal/dsl — the guarded-command modelling layer: a
//     Murphi-like embedded DSL in which systems describe initial states,
//     enabled transitions, invariants, reachability goals, liveness goals
//     with weak-fairness constraints (ts.LivenessReporter /
//     ts.FairnessReporter) and synthesis holes (ts.Env.Choose). States key themselves twice over: the
//     mandatory human-readable Key() string (traces, fallback) and the
//     optional ts.KeyAppender binary encoding appended into caller-owned
//     buffers, which is what the exploration hot path hashes.
//   - internal/statespace — the exploration substrate: 64-bit FNV-1a state
//     fingerprints (OfString / allocation-free OfBytes / incremental
//     Hasher), a ring-buffer frontier queue, a level-synchronous parallel
//     work distributor that hands each expansion a stable worker index for
//     per-worker scratch, the optional parent-linked trace store, and the
//     Stats memory profile.
//   - internal/visited — pluggable visited-set storage behind one Store
//     interface: Go maps (lock-striped shards), a Robin Hood
//     open-addressing fingerprint table (the default, 15/16 load cap), a
//     disk-spilling two-level store (exact with bounded RAM: the flat
//     tier overflows to sorted runs merged at BFS level boundaries), and
//     a SPIN-style bitstate tier with a fixed memory budget and a
//     reported omission-probability estimate.
//   - internal/symmetry — scalarset canonicalization (goroutine-safe), used
//     for symmetry reduction of states implementing ts.Permutable. The
//     Fingerprint hot path minimizes binary encodings over pooled
//     scratch — one reusable permuted clone (ts.InPlacePermuter) plus two
//     key buffers — at zero steady-state allocations; the string Key path
//     remains for traces and the keying ablation.
//   - internal/faultfs — the filesystem seam under the spill backend and
//     the checkpoint writer: a small FS/File interface over the real OS,
//     a deterministic fault injector for tests (planned errors, short
//     writes, transient glitches per operation), and the shared
//     transient-retry policy (capped backoff; hard faults never retried).
//   - internal/mc — the embedded explicit-state model checker: sequential
//     (deterministic, minimal BFS counterexamples) and level-parallel BFS
//     drivers over the shared fingerprint keying scheme with per-worker
//     keyer scratch, three-valued verdicts, deadlock and goal checking,
//     plus an opt-in nested-DFS liveness pass (mc.Options.Liveness) that
//     checks declared ts.LivenessGoal properties under weak fairness and
//     reports violations as lasso counterexamples (stem + cycle).
//     Runs are cancellable (mc.CheckCtx), contain model-code panics as
//     diagnosable Aborted verdicts, and can checkpoint at BFS level
//     boundaries and resume bit-identically (Options.CheckpointDir).
//   - internal/core — the paper's contribution: synthesis by lazy hole
//     discovery and candidate pruning, with cross-candidate and intra-check
//     parallelism sharing one budget (core.SplitParallelism).
//   - internal/spec — the data frontend: versioned verc3_model_v1 JSON
//     model specs (typed variables, guarded-command rulesets in a small
//     validated expression language, invariants, goals, liveness and
//     fairness declarations, choose holes) loaded with path-carrying
//     validation errors and compiled onto the dsl Builder, so spec
//     systems inherit recycling, appender enumeration, allocation-free
//     binary keying and symmetry. Committed examples under
//     examples/specs/ are pinned equivalent to their hand-written twins.
//   - internal/msi, internal/mutex, internal/tokenring, internal/toy — the
//     case studies — over internal/network, the unordered interconnect;
//     internal/trace renders counterexamples; internal/zoo is the named
//     system registry (with sketch metadata and runtime registration for
//     loaded specs) behind the command-line tools.
//
// Command-line tools are under cmd/ (verc3-verify, verc3-synth,
// verc3-table1, verc3-fig2; their shared flag block lives in
// cliutil.CommonFlags: -spec loads the system from a JSON model spec
// (verc3-verify refuses sketch specs, pointing at verc3-synth; the
// fixed-workload tools refuse the flag entirely), -stats prints the
// memory profile, -visited flat|map|bitstate|spill selects the
// visited-set backend, sized with -bitstate-mb / -spill-mem-mb /
// -spill-dir, -timeout puts a wall-clock deadline on the run (expiry —
// like SIGINT/SIGTERM — cancels cooperatively: partial stats, profiles
// and -report still flush, exit code 3), verc3-verify's -checkpoint-dir
// / -resume / -checkpoint-every snapshot and resume long runs, and
// -cpuprofile / -memprofile write pprof profiles —
// which also turns on per-phase goroutine labels (mc-phase =
// enumerate/fire/key/insert) so profiles split the exploration loop by
// phase; negative sizing or parallelism values are rejected up front
// rather than silently clamped) and runnable demos under examples/.
// cmd/verc3-bench runs the headline exploration benchmarks in-process
// and writes BENCH_explore.json for CI archival.
//
// # Trace-optional exploration
//
// Exploration is memory-lean by default: the frontier carries (state,
// depth, usage-mask) values directly and releases each state once
// expanded, so a run without mc.Options.RecordTrace retains only the
// 8-byte fingerprint per visited state — the regime every synthesis
// dispatch runs in. Turning RecordTrace on allocates a parent-linked trace
// node per state, buying replayable (and, sequentially, minimal)
// counterexamples for O(states) memory. mc.Result.Space reports which
// price was paid (states, peak frontier, trace nodes, bytes retained);
// the synthesis engine aggregates it per run and re-checks every reported
// solution with traces on, so fingerprint collisions during the traceless
// search cannot survive into the results unnoticed.
//
// # Visited-set backends
//
// Where the fingerprints live is pluggable (mc.Options.Visited): the exact
// backends — flat open addressing (default), Go maps, and the
// disk-spilling two-level store, which keeps RAM near a fixed tier budget
// while the bulk of the set lives in sorted run files — are
// interchangeable bit-for-bit and differ only in measured bytes per state
// and where those bytes live, while the bitstate tier caps memory at a
// fixed budget and reports Result.Exact=false with a quantified omission
// probability. Expansion ownership is exact everywhere: even under
// bitstate, racing parallel inserts of one fingerprint have exactly one
// winner (a single-CAS completion rule), so reported state and transition
// counts are exact for the space explored. Synthesis dispatches require
// an exact backend and the final re-verification always runs on one.
//
// # Zero-allocation keying
//
// Keying is the work done for every offered successor, visited or not, so
// it is the exploration hot path's hot path. The binary pipeline never
// materializes a per-state encoding: AppendKey writes into reusable
// per-worker buffers, OfBytes hashes them in place, and under symmetry
// the canonicalizer's pooled scratch state absorbs the N!-1 permutations
// (294.9 -> 23.7 mallocs/state and ~10x wall-clock on msi-complete with
// symmetry on; allocations that remain are the model's own successor
// clones). mc.Options.StringKeys forces the legacy formatted-string path
// for differential tests and the E14 ablation.
//
// # Successor lifecycle
//
// The allocations keying left behind were the successors themselves:
// Fire deep-clones the source once per offered transition, and most
// clones die as visited-set duplicates microseconds later. Systems that
// implement ts.Recycler draw Fire clones from a sync.Pool of recycled
// states (overwritten in place via ts.StateCopier.CopyFrom, with
// owned-storage semantics so pooled states never alias live ones), and
// both drivers return dead states to the pool: every rejected duplicate,
// plus — traceless — each expanded state once its transitions have
// fired. States that reach trace nodes, counterexamples or the frontier
// escape the pool forever. ts.TransitionAppender pairs with this:
// enumeration appends into per-worker buffers with names precomputed at
// construction. Together: 23.7 -> 5.1 mallocs/state on msi-complete
// (pinned <= 10 by regression test; mc.Options.NoRecycle and
// FreshTransitions are the ablation knobs, and -stats reports
// pool hit/miss/recycled counts).
//
// # Liveness checking
//
// Safety exploration answers "nothing bad is reachable"; the liveness
// pass (mc.Options.Liveness) answers "something good eventually happens".
// Systems declare ts.LivenessGoal properties — eventually-always (FG P)
// and leads-to (G(P -> F Q)) — optionally under weak fairness; the
// checker negates each goal into a Büchi monitor, products it with the
// system (fairness via Choueka counter copies) and runs a nested DFS
// (blue search for accepting states, red search for cycles through them)
// over the same fingerprint/visited/recycling substrate as the safety
// pass. Violations surface as lasso counterexamples: a stem into a cycle
// that repeats forever, rendered by internal/trace with cycle markers and
// replay-validated in the differential tests. Because nested DFS needs
// exact "seen before" answers, the lossy bitstate backend is refused
// (mc.ErrLivenessInexact); a liveness failure prunes synthesis candidates
// exactly like a safety failure. Token-ring and Peterson pass their
// goals; the complete MSI protocol is a pinned true positive (no network
// fairness is declared, so a writer can starve behind undelivered
// messages), and the msi-fair zoo entry is the same protocol plus
// per-channel delivery fairness, under which that lasso is excluded as
// unfair and the same goals pass.
//
// # Failure model
//
// Runs that cannot finish still report honestly. Cancellation (context
// deadline, -timeout, SIGINT/SIGTERM) is cooperative — polled at level
// boundaries and every 1024 expansions — and returns the Aborted verdict
// with true partial statistics and the cancel cause; a definite property
// violation found first outranks it, and an aborted run never claims
// goal or liveness results for states it did not visit. Panics in model
// code are recovered in both drivers and surface as an Aborted verdict
// carrying the offending state's key and the stack; in synthesis a
// panicking candidate is counted as a failed candidate (Stats.Panicked)
// — never a pruning pattern — and the search continues. BFS runs with
// mc.Options.CheckpointDir snapshot visited + frontier + statistics at
// level boundaries (atomic rename commit, at most one snapshot kept,
// save frequency throttled to ~5% overhead) and Resume restores them
// bit-identically, across drivers and backends. All spill and
// checkpoint I/O goes through the internal/faultfs seam: transient
// faults retry with capped backoff, hard faults go sticky and surface
// instead of corrupting the run. See DESIGN.md "Failure model".
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation plus this repo's ablations (parallel
// drivers, visited-set keying and backends, trace on/off memory, the
// keying pipeline); see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package verc3
