// Package verc3 is a Go reproduction of "VerC3: A Library for Explicit
// State Synthesis of Concurrent Systems" (Elver, Banks, Jackson &
// Nagarajan, DATE 2018).
//
// The library lives under internal/: the guarded-command modelling DSL
// (internal/ts), the embedded explicit-state model checker with symmetry
// reduction (internal/mc, internal/symmetry), the synthesis engine with
// lazy hole discovery and candidate pruning (internal/core), the unordered
// interconnect substrate (internal/network), and the case studies
// (internal/msi, internal/mutex, internal/toy). Command-line tools are
// under cmd/ and runnable examples under examples/.
//
// The benchmark harness in bench_test.go regenerates every table and figure
// of the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package verc3
