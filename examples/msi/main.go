// MSI example: the paper's case study end to end. Verifies the complete
// directory-based MSI protocol, then synthesizes the MSI-small skeleton
// (8 holes: 2 directory transient rules × 3 action types + 1 cache transient
// rule × 2 action types) and prints the solutions, demonstrating that the
// hand-written transient-state actions are re-derived automatically.
//
// Run with:
//
//	go run ./examples/msi [-caches 2] [-large] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/msi"
)

func main() {
	caches := flag.Int("caches", 2, "number of cache controllers")
	large := flag.Bool("large", false, "synthesize MSI-large (12 holes) instead of MSI-small (8)")
	workers := flag.Int("workers", 1, "parallel synthesis workers")
	flag.Parse()

	// 1. The complete protocol is correct: SWMR, data-value coherence,
	//    deadlock freedom, handshake well-formedness, and all stable states
	//    reachable.
	complete := msi.New(msi.Config{Caches: *caches, Variant: msi.Complete})
	res, err := mc.Check(complete, mc.Options{Symmetry: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%d caches): verdict=%s, %d states, %d transitions\n",
		complete.Name(), *caches, res.Verdict, res.Stats.VisitedStates, res.Stats.FiredTransitions)

	// 2. Blank out the transient-state actions and synthesize them back.
	variant := msi.Small
	if *large {
		variant = msi.Large
	}
	skeleton := msi.New(msi.Config{Caches: *caches, Variant: variant})
	start := time.Now()
	out, err := core.Synthesize(skeleton, core.Config{
		Mode:    core.ModePrune,
		Workers: *workers,
		MC:      mc.Options{Symmetry: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: %d holes, candidate space %d\n", skeleton.Name(), out.Stats.Holes, out.Stats.CandidateSpace)
	fmt.Printf("evaluated %d candidates (%d pruned via %d patterns) in %v\n",
		out.Stats.Evaluated, out.Stats.Skipped, out.Stats.Patterns, time.Since(start).Round(time.Millisecond))
	fmt.Printf("solutions: %d\n", len(out.Solutions))
	for i, sol := range out.Solutions {
		fmt.Printf("  #%d (%d states): %s\n", i+1, sol.VisitedStates, out.Describe(i))
	}
	fmt.Println("\nAll solutions agree on the load-bearing actions; they differ only in")
	fmt.Println("vacuous choices (invalidating an empty sharer set), which is exactly the")
	fmt.Println("behaviourally-equivalent solution grouping §III describes.")
}
