// Mutex example: synthesizing the missing actions of Peterson's algorithm.
//
// The sketch knows the control skeleton (raise flag → write turn → spin →
// critical section → exit) but not which value to write into turn, whether
// to lower the flag on exit, or where to go after the critical section. The
// synthesizer recovers Peterson's exact choices from the mutual-exclusion
// invariant, deadlock detection, and two reachability goals; every wrong
// choice is shown with the property that kills it.
//
// Run with:
//
//	go run ./examples/mutex
package main

import (
	"fmt"
	"log"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/mutex"
	"verc3/internal/trace"
	"verc3/internal/ts"
)

func main() {
	// Verify the textbook algorithm first.
	res, err := mc.Check(mutex.New(false), mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Peterson (complete): verdict=%s, %d states\n\n", res.Verdict, res.Stats.VisitedStates)

	// Synthesize the sketch, narrating every candidate evaluation.
	fmt.Println("synthesizing the sketch (3 holes, 2 actions each):")
	out, err := core.Synthesize(mutex.New(true), core.Config{
		Mode: core.ModePrune,
		OnEvaluate: func(ev core.Event) {
			fmt.Printf("  candidate %-12s → %s\n", fmt.Sprint(ev.Assign), ev.Verdict)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d holes discovered: %v\n", out.Stats.Holes, out.HoleNames)
	fmt.Printf("%d of %d candidates evaluated; %d solution(s)\n",
		out.Stats.Evaluated, out.Stats.CandidateSpace, len(out.Solutions))
	for i := range out.Solutions {
		fmt.Printf("  solution: %s\n", out.Describe(i))
	}

	// Show what goes wrong with the classic mistake: turn := me.
	fmt.Println("\nwhy turn:=me is wrong — the minimal counterexample:")
	bad := core.FixedChooser{"turn-write": "me", "exit-flag": "clear", "after-crit": "Idle"}
	r, err := mc.Check(mutex.New(true), mc.Options{Env: ts.NewEnv(bad), RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	if r.Verdict == mc.Failure {
		fmt.Print(trace.Format(r.Failure, trace.Options{ShowStates: true}))
	} else {
		fmt.Println("unexpectedly verified:", r.Verdict)
	}
}
