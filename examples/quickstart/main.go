// Quickstart: define a tiny transition system with synthesis holes, verify
// it, and synthesize the holes — the complete VerC3 workflow in one file.
//
// The system is a two-phase commit toy: a coordinator asks two workers to
// prepare, then must decide commit or abort. Two actions are left as holes:
// what to decide when every worker voted yes, and what to decide when any
// worker voted no. The correctness specification (atomicity invariants plus
// a "commits actually happen" goal) admits exactly one completion.
//
// The same sketch is then rebuilt as data — a verc3_model_v1 JSON model
// spec (internal/spec) — and synthesized again, without any Go modelling
// code. Specs are what the command-line tools load with -spec:
//
//	verc3-verify -spec examples/specs/tokenring.json -liveness
//	verc3-synth  -spec examples/specs/mutex-sketch.json
//
// (sketch specs are refused by verc3-verify, which points at verc3-synth;
// the committed examples under examples/specs/ are pinned byte-for-byte
// equivalent to their hand-written zoo twins by TestSpecEquivalence).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/spec"
	"verc3/internal/ts"
)

// phase is the coordinator's protocol phase.
type phase int8

const (
	collecting phase = iota // gathering votes
	committed
	aborted
)

// state is the global state: the coordinator phase and each worker's vote
// (-1 undecided, 0 no, 1 yes) and outcome.
type state struct {
	Phase   phase
	Votes   [2]int8
	Applied [2]bool // worker applied the commit
}

func (s *state) Key() string {
	return fmt.Sprintf("%d|%d,%d|%v,%v", s.Phase, s.Votes[0], s.Votes[1], s.Applied[0], s.Applied[1])
}

func (s *state) Clone() ts.State { cp := *s; return &cp }

// system implements ts.System. sketch selects holes vs. the fixed solution.
type system struct{ sketch bool }

func (sys *system) Name() string { return "two-phase-commit" }

func (sys *system) Initial() []ts.State {
	return []ts.State{&state{Votes: [2]int8{-1, -1}}}
}

// decideActions is the designer-provided action library for both holes.
var decideActions = []string{"commit", "abort"}

func (sys *system) Transitions(s ts.State) []ts.Transition {
	st := s.(*state)
	var trs []ts.Transition

	// Workers vote (nondeterministically yes or no).
	for w := 0; w < 2; w++ {
		w := w
		if st.Phase == collecting && st.Votes[w] == -1 {
			for _, vote := range []int8{0, 1} {
				vote := vote
				trs = append(trs, ts.Transition{
					Name: fmt.Sprintf("worker %d votes %d", w, vote),
					Fire: func(*ts.Env) (ts.State, error) {
						ns := st.Clone().(*state)
						ns.Votes[w] = vote
						return ns, nil
					},
				})
			}
		}
	}

	// Coordinator decides once all votes are in. The decision in each case
	// is a synthesis hole.
	if st.Phase == collecting && st.Votes[0] != -1 && st.Votes[1] != -1 {
		allYes := st.Votes[0] == 1 && st.Votes[1] == 1
		hole, correct := "decide-on-any-no", 1 // abort
		if allYes {
			hole, correct = "decide-on-all-yes", 0 // commit
		}
		trs = append(trs, ts.Transition{
			Name: "coordinator decides (" + hole + ")",
			Fire: func(env *ts.Env) (ts.State, error) {
				act := correct
				if sys.sketch {
					var err error
					if act, err = env.Choose(hole, decideActions); err != nil {
						return nil, err
					}
				}
				ns := st.Clone().(*state)
				if act == 0 {
					ns.Phase = committed
					ns.Applied = [2]bool{true, true}
				} else {
					ns.Phase = aborted
				}
				return ns, nil
			},
		})
	}
	return trs
}

func (sys *system) Invariants() []ts.Invariant {
	return []ts.Invariant{
		{Name: "commit-needs-unanimous-yes", Holds: func(s ts.State) bool {
			st := s.(*state)
			return st.Phase != committed || (st.Votes[0] == 1 && st.Votes[1] == 1)
		}},
		{Name: "apply-only-on-commit", Holds: func(s ts.State) bool {
			st := s.(*state)
			return st.Phase == committed || (!st.Applied[0] && !st.Applied[1])
		}},
	}
}

// Goals: a degenerate always-abort coordinator is safe but useless; require
// that a commit is reachable.
func (sys *system) Goals() []ts.ReachGoal {
	return []ts.ReachGoal{{
		Name:  "some-commit-happens",
		Holds: func(s ts.State) bool { return s.(*state).Phase == committed },
	}}
}

// Quiescent: decided states are terminal by design, not deadlocks.
func (sys *system) Quiescent(s ts.State) bool {
	return s.(*state).Phase != collecting
}

// specDoc is the same two-phase-commit sketch as a verc3_model_v1 model
// spec: variables are typed declarations, rules are guarded commands in
// the spec expression language, and the two coordinator decisions are
// `choose` holes. Saved to a file, this is exactly what
// `verc3-synth -spec file.json` loads.
const specDoc = `{
  "format": "verc3_model_v1",
  "name": "two-phase-commit-spec",
  "processes": 2,
  "vars": [
    {"name": "ph", "type": "enum", "values": ["Collecting", "Committed", "Aborted"]},
    {"name": "vote", "type": "int", "min": -1, "max": 1, "init": "-1", "array": true},
    {"name": "applied", "type": "bool", "array": true}
  ],
  "rules": [
    {"name": "worker %d votes yes", "per_process": true,
     "guard": "ph == Collecting && vote[i] == -1", "action": ["vote[i] = 1"]},
    {"name": "worker %d votes no", "per_process": true,
     "guard": "ph == Collecting && vote[i] == -1", "action": ["vote[i] = 0"]},
    {"name": "coordinator decides (all yes)",
     "guard": "ph == Collecting && vote[0] == 1 && vote[1] == 1",
     "action": [{"choose": "decide-on-all-yes", "among": [
       {"name": "commit", "do": ["ph = Committed", "applied[0] = true", "applied[1] = true"]},
       {"name": "abort", "do": ["ph = Aborted"]}]}]},
    {"name": "coordinator decides (any no)",
     "guard": "ph == Collecting && vote[0] != -1 && vote[1] != -1 && (vote[0] == 0 || vote[1] == 0)",
     "action": [{"choose": "decide-on-any-no", "among": [
       {"name": "commit", "do": ["ph = Committed", "applied[0] = true", "applied[1] = true"]},
       {"name": "abort", "do": ["ph = Aborted"]}]}]}
  ],
  "invariants": [
    {"name": "commit-needs-unanimous-yes", "expr": "ph != Committed || (vote[0] == 1 && vote[1] == 1)"},
    {"name": "apply-only-on-commit", "expr": "ph == Committed || (!applied[0] && !applied[1])"}
  ],
  "goals": [
    {"name": "some-commit-happens", "expr": "ph == Committed"}
  ],
  "quiescent": "ph != Collecting"
}`

func main() {
	// Step 1: verify the complete (hole-free) protocol.
	res, err := mc.Check(&system{sketch: false}, mc.Options{RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete model: verdict=%s states=%d\n", res.Verdict, res.Stats.VisitedStates)

	// Step 2: synthesize the sketch.
	out, err := core.Synthesize(&system{sketch: true}, core.Config{Mode: core.ModePrune})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: %d holes, %d/%d candidates evaluated, %d solution(s)\n",
		out.Stats.Holes, out.Stats.Evaluated, out.Stats.CandidateSpace, len(out.Solutions))
	for i := range out.Solutions {
		fmt.Printf("  solution: %s\n", out.Describe(i))
	}

	// Step 3: the same sketch as data. spec.Parse validates the document
	// (errors carry the JSON path of the offender) and compiles it onto
	// the same substrate the hand-written system runs on; the compiled
	// sketch synthesizes through the identical engine.
	m, err := spec.Parse([]byte(specDoc))
	if err != nil {
		log.Fatal(err)
	}
	specOut, err := core.Synthesize(m.System(), core.Config{Mode: core.ModePrune})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec-loaded sketch %q: %d holes, %d solution(s)\n",
		m.Name(), specOut.Stats.Holes, len(specOut.Solutions))
	for i := range specOut.Solutions {
		fmt.Printf("  solution: %s\n", specOut.Describe(i))
	}
}
