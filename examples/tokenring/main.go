// Token-ring example: a model written in the lightweight frontend DSL
// (internal/dsl, the paper's future-work item), with two synthesized
// actions. The model itself lives in internal/tokenring so the zoo, the
// cross-driver exploration tests and the command-line tools can reuse it;
// see that package for the protocol description.
//
// Run with:
//
//	go run ./examples/tokenring
package main

import (
	"fmt"
	"log"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/tokenring"
)

func main() {
	res, err := mc.Check(tokenring.New(false), mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete ring: verdict=%s, %d states\n", res.Verdict, res.Stats.VisitedStates)

	out, err := core.Synthesize(tokenring.New(true), core.Config{Mode: core.ModePrune})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: %d holes, %d/%d candidates evaluated, %d solutions\n",
		out.Stats.Holes, out.Stats.Evaluated, out.Stats.CandidateSpace, len(out.Solutions))
	for i := range out.Solutions {
		fmt.Printf("  solution: %s\n", out.Describe(i))
	}
	fmt.Println("\nBoth ring directions satisfy the specification — the synthesizer finds")
	fmt.Println("exactly these two; \"keep\" variants fail the per-process liveness goals.")
}
