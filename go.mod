module verc3

go 1.24
