// Package cliutil holds small helpers shared by the cmd/ binaries: flag
// validation and the -cpuprofile/-memprofile pprof plumbing, so perf work
// profiles the real tools instead of guessing from microbenchmarks.
package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// IntFlag names one integer flag value for validation. Value is int64 so
// one type covers flag.Int and flag.Int64 flags alike (callers wrap int
// values with a plain conversion).
type IntFlag struct {
	Name  string
	Value int64
}

// FirstNegative returns a friendly error for the first flag holding a
// negative value, or nil if none does. The cmd/ tools run it right after
// flag.Parse: sizing and parallelism flags use 0 as "pick the default",
// and negative values used to be silently clamped to the same defaults
// deep in the libraries — accepting `-workers -4` as if nothing were
// wrong. Rejecting them up front keeps typos from masquerading as
// configuration.
func FirstNegative(flags ...IntFlag) error {
	for _, f := range flags {
		if f.Value < 0 {
			return fmt.Errorf("flag %s: negative value %d (use 0 to select the default)", f.Name, f.Value)
		}
	}
	return nil
}

// ProfiledExit wraps os.Exit for a binary that called StartProfiles: the
// returned function flushes the profiles (os.Exit skips defers), reporting
// any flush failure on stderr under the tool's name and promoting a
// would-be-success exit to code 2 so a silently truncated profile cannot
// look like a clean run.
func ProfiledExit(tool string, stop func() error) func(code int) {
	return func(code int) {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
			if code == 0 {
				code = 2
			}
		}
		os.Exit(code)
	}
}

// StartProfiles wires the -cpuprofile/-memprofile flags every cmd/ binary
// exposes: it starts a CPU profile into cpuPath and arranges a heap
// profile into memPath, either or both of which may be empty ("off").
//
// The returned stop function must run before the process exits — including
// the os.Exit paths, which skip defers — to flush the CPU profile and take
// the heap snapshot (after a GC, so the profile shows live retention
// rather than garbage). stop is idempotent and never nil. The profiles are
// written with runtime/pprof and read with `go tool pprof`.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpu *os.File
	if cpuPath != "" {
		cpu, err = os.Create(cpuPath)
		if err != nil {
			return func() error { return nil }, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return func() error { return nil }, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		var first error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				first = fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("-memprofile: %w", err)
				}
				return first
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("-memprofile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("-memprofile: %w", err)
			}
		}
		return first
	}, nil
}
