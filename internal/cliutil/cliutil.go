// Package cliutil holds small helpers shared by the cmd/ binaries.
package cliutil

import "fmt"

// IntFlag names one integer flag value for validation. Value is int64 so
// one type covers flag.Int and flag.Int64 flags alike (callers wrap int
// values with a plain conversion).
type IntFlag struct {
	Name  string
	Value int64
}

// FirstNegative returns a friendly error for the first flag holding a
// negative value, or nil if none does. The cmd/ tools run it right after
// flag.Parse: sizing and parallelism flags use 0 as "pick the default",
// and negative values used to be silently clamped to the same defaults
// deep in the libraries — accepting `-workers -4` as if nothing were
// wrong. Rejecting them up front keeps typos from masquerading as
// configuration.
func FirstNegative(flags ...IntFlag) error {
	for _, f := range flags {
		if f.Value < 0 {
			return fmt.Errorf("flag %s: negative value %d (use 0 to select the default)", f.Name, f.Value)
		}
	}
	return nil
}
