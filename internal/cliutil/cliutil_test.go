package cliutil

import (
	"strings"
	"testing"
)

// TestFirstNegative covers the validation the cmd/ binaries share: zero
// and positive values pass (0 means "default"), the first negative flag —
// and only the first — is reported by name with its offending value.
func TestFirstNegative(t *testing.T) {
	if err := FirstNegative(); err != nil {
		t.Errorf("no flags: %v", err)
	}
	if err := FirstNegative(
		IntFlag{"-workers", 0},
		IntFlag{"-shard-bits", 8},
		IntFlag{"-bitstate-mb", 64},
	); err != nil {
		t.Errorf("all valid: %v", err)
	}
	err := FirstNegative(
		IntFlag{"-workers", 4},
		IntFlag{"-shard-bits", -1},
		IntFlag{"-bitstate-mb", -3},
	)
	if err == nil {
		t.Fatal("negative -shard-bits accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "-shard-bits") || !strings.Contains(msg, "-1") {
		t.Errorf("error does not name the first offender: %q", msg)
	}
	if strings.Contains(msg, "-bitstate-mb") {
		t.Errorf("error names a later flag: %q", msg)
	}
	if !strings.Contains(msg, "default") {
		t.Errorf("error does not point at the 0-means-default convention: %q", msg)
	}
}
