package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFirstNegative covers the validation the cmd/ binaries share: zero
// and positive values pass (0 means "default"), the first negative flag —
// and only the first — is reported by name with its offending value.
func TestFirstNegative(t *testing.T) {
	if err := FirstNegative(); err != nil {
		t.Errorf("no flags: %v", err)
	}
	if err := FirstNegative(
		IntFlag{"-workers", 0},
		IntFlag{"-shard-bits", 8},
		IntFlag{"-bitstate-mb", 64},
	); err != nil {
		t.Errorf("all valid: %v", err)
	}
	err := FirstNegative(
		IntFlag{"-workers", 4},
		IntFlag{"-shard-bits", -1},
		IntFlag{"-bitstate-mb", -3},
	)
	if err == nil {
		t.Fatal("negative -shard-bits accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "-shard-bits") || !strings.Contains(msg, "-1") {
		t.Errorf("error does not name the first offender: %q", msg)
	}
	if strings.Contains(msg, "-bitstate-mb") {
		t.Errorf("error names a later flag: %q", msg)
	}
	if !strings.Contains(msg, "default") {
		t.Errorf("error does not point at the 0-means-default convention: %q", msg)
	}
}

// TestStartProfilesWritesBoth checks the -cpuprofile/-memprofile plumbing
// end to end: both files exist and are non-empty after stop, and stop is
// idempotent.
func TestStartProfilesWritesBoth(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	var sink []byte
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 100)...)
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	if err := stop(); err != nil {
		t.Errorf("second stop: %v", err)
	}
}

// TestStartProfilesOff checks that empty paths mean "off": no files, no
// error, stop is a no-op.
func TestStartProfilesOff(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartProfilesBadPath checks an uncreatable CPU-profile path is
// reported up front (the binaries exit 2 on it) rather than at stop time.
func TestStartProfilesBadPath(t *testing.T) {
	_, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), "")
	if err == nil {
		t.Fatal("uncreatable -cpuprofile path accepted")
	}
	if !strings.Contains(err.Error(), "-cpuprofile") {
		t.Errorf("error does not name the flag: %v", err)
	}
}
