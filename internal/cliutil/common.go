package cliutil

import (
	"flag"
	"fmt"
	"os"

	"verc3/internal/mc"
	"verc3/internal/spec"
	"verc3/internal/visited"
)

// CommonFlags is the flag block every cmd/ binary shares: spec loading,
// the visited-set backend and its sizing, memory statistics, pprof
// profiles, and the telemetry trio. The binaries used to copy-paste these
// declarations; now a new shared flag (like -spec) lands once, here, and
// the help strings cannot drift apart. Binary-specific flags (-system,
// -workers, synthesis modes, ...) stay in the binaries.
type CommonFlags struct {
	Spec        string // -spec: load the system from a JSON model spec
	Stats       bool   // -stats
	Visited     string // -visited (parse with Backend)
	BitstateMB  int    // -bitstate-mb
	SpillMemMB  int    // -spill-mem-mb
	SpillDir    string // -spill-dir
	CPUProfile  string // -cpuprofile
	MemProfile  string // -memprofile
	Progress    bool   // -progress
	MetricsAddr string // -metrics-addr
	Report      string // -report
}

// RegisterCommon declares the shared flags on the default FlagSet and
// returns the struct their parsed values land in. Call it alongside the
// binary's own flag declarations, before flag.Parse.
func RegisterCommon() *CommonFlags {
	c := &CommonFlags{}
	flag.StringVar(&c.Spec, "spec", "", "load the system from a verc3_model_v1 JSON model spec file instead of the compiled-in zoo")
	flag.BoolVar(&c.Stats, "stats", false, "print the exploration memory profile (peak frontier, trace store, allocations)")
	flag.StringVar(&c.Visited, "visited", "flat", "visited-set backend: flat (open addressing), map, bitstate (lossy, fixed memory; the synthesis tools refuse it), or spill (exact, RAM-bounded, overflows to disk)")
	flag.IntVar(&c.BitstateMB, "bitstate-mb", 0, "bitstate bit-array budget in MiB (0 = default 64; -visited bitstate only)")
	flag.IntVar(&c.SpillMemMB, "spill-mem-mb", 0, "spill backend's in-RAM tier budget in MiB (0 = default 64; -visited spill only)")
	flag.StringVar(&c.SpillDir, "spill-dir", "", "parent directory for spill run files (\"\" = OS temp dir; -visited spill only)")
	flag.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	flag.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	flag.BoolVar(&c.Progress, "progress", false, "render a live status line on stderr (EWMA states/sec, depth, frontier, memory)")
	flag.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve read-only metrics over HTTP on this address (/metrics Prometheus text, /metrics.json)")
	flag.StringVar(&c.Report, "report", "", "write a machine-readable JSON run report to this file at exit")
	return c
}

// Validate rejects negative values in the shared sizing flags and in any
// binary-specific extras, which are checked first so errors surface in
// the binary's historical flag order.
func (c *CommonFlags) Validate(extra ...IntFlag) error {
	return FirstNegative(append(extra,
		IntFlag{Name: "-bitstate-mb", Value: int64(c.BitstateMB)},
		IntFlag{Name: "-spill-mem-mb", Value: int64(c.SpillMemMB)},
	)...)
}

// Backend parses the -visited flag.
func (c *CommonFlags) Backend() (visited.Kind, error) {
	return visited.ParseKind(c.Visited)
}

// ApplyMC fills the model-checker options derived from the common block:
// backend selection and sizing, memory statistics, and driver phase
// labels (only when a CPU profile is being taken — the labels cost a
// goroutine-label store per phase switch).
func (c *CommonFlags) ApplyMC(opt *mc.Options, backend visited.Kind) {
	opt.MemStats = c.Stats
	opt.Visited = backend
	opt.BitstateMB = c.BitstateMB
	opt.SpillMem = int64(c.SpillMemMB) << 20
	opt.SpillDir = c.SpillDir
	opt.ProfileLabels = c.CPUProfile != ""
}

// LoadSpec loads and compiles the -spec file. It returns (nil, nil) when
// the flag is off; what to do with the model — refuse sketches, bind
// holes — is the binary's decision.
func (c *CommonFlags) LoadSpec() (*spec.Model, error) {
	if c.Spec == "" {
		return nil, nil
	}
	return spec.LoadFile(c.Spec)
}

// RefuseSpec exits with a friendly error when -spec was passed to a
// fixed-workload tool (verc3-fig2, verc3-table1): the message points
// sketch specs at verc3-synth and complete specs at verc3-verify, the
// same redirect verc3-verify itself gives for sketches. workload names
// what the tool regenerates ("the fixed Figure 2 workload"). A no-op
// when -spec is off.
func RefuseSpec(tool, workload string, c *CommonFlags) {
	if c.Spec == "" {
		return
	}
	target := "verc3-verify"
	if m, err := spec.LoadFile(c.Spec); err == nil && m.Sketch() {
		target = "verc3-synth"
	}
	fmt.Fprintf(os.Stderr,
		"%s: this tool regenerates %s and takes no -spec.\nRun the spec model through the general tools instead:\n\n\t%s -spec %s\n",
		tool, workload, target, c.Spec)
	os.Exit(2)
}

// Start bundles the startup sequence every binary repeats: pprof
// profiles, the profiled exit wrapper, and telemetry. The returned exit
// function is valid even on error — callers report the error under their
// own name and call exit(2), which still flushes whatever was started.
func (c *CommonFlags) Start(tool, system string) (*Telemetry, func(code int), error) {
	stopProf, err := StartProfiles(c.CPUProfile, c.MemProfile)
	if err != nil {
		return nil, func(code int) { os.Exit(code) }, err
	}
	exit := ProfiledExit(tool, stopProf)
	tel, err := StartTelemetry(TelemetryOptions{
		Tool:        tool,
		System:      system,
		Progress:    c.Progress,
		MetricsAddr: c.MetricsAddr,
		ReportPath:  c.Report,
	})
	if err != nil {
		return nil, exit, err
	}
	return tel, exit, nil
}
