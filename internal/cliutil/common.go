package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"verc3/internal/mc"
	"verc3/internal/spec"
	"verc3/internal/visited"
)

// CommonFlags is the flag block every cmd/ binary shares: spec loading,
// the visited-set backend and its sizing, memory statistics, pprof
// profiles, and the telemetry trio. The binaries used to copy-paste these
// declarations; now a new shared flag (like -spec) lands once, here, and
// the help strings cannot drift apart. Binary-specific flags (-system,
// -workers, synthesis modes, ...) stay in the binaries.
type CommonFlags struct {
	Spec        string // -spec: load the system from a JSON model spec
	Stats       bool   // -stats
	Visited     string // -visited (parse with Backend)
	BitstateMB  int    // -bitstate-mb
	SpillMemMB  int    // -spill-mem-mb
	SpillDir    string // -spill-dir
	CPUProfile  string // -cpuprofile
	MemProfile  string // -memprofile
	Progress    bool   // -progress
	MetricsAddr string // -metrics-addr
	Report      string // -report
	// Timeout is -timeout: the run's wall-clock deadline (0 = none). The
	// deadline cancels cooperatively — the checker stops at the next poll
	// with an Aborted verdict, partial statistics intact — rather than
	// killing the process.
	Timeout time.Duration
}

// RegisterCommon declares the shared flags on the default FlagSet and
// returns the struct their parsed values land in. Call it alongside the
// binary's own flag declarations, before flag.Parse.
func RegisterCommon() *CommonFlags {
	c := &CommonFlags{}
	flag.StringVar(&c.Spec, "spec", "", "load the system from a verc3_model_v1 JSON model spec file instead of the compiled-in zoo")
	flag.BoolVar(&c.Stats, "stats", false, "print the exploration memory profile (peak frontier, trace store, allocations)")
	flag.StringVar(&c.Visited, "visited", "flat", "visited-set backend: flat (open addressing), map, bitstate (lossy, fixed memory; the synthesis tools refuse it), or spill (exact, RAM-bounded, overflows to disk)")
	flag.IntVar(&c.BitstateMB, "bitstate-mb", 0, "bitstate bit-array budget in MiB (0 = default 64; -visited bitstate only)")
	flag.IntVar(&c.SpillMemMB, "spill-mem-mb", 0, "spill backend's in-RAM tier budget in MiB (0 = default 64; -visited spill only)")
	flag.StringVar(&c.SpillDir, "spill-dir", "", "parent directory for spill run files (\"\" = OS temp dir; -visited spill only)")
	flag.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	flag.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	flag.BoolVar(&c.Progress, "progress", false, "render a live status line on stderr (EWMA states/sec, depth, frontier, memory)")
	flag.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve read-only metrics over HTTP on this address (/metrics Prometheus text, /metrics.json)")
	flag.StringVar(&c.Report, "report", "", "write a machine-readable JSON run report to this file at exit")
	flag.DurationVar(&c.Timeout, "timeout", 0, "wall-clock deadline for the run (e.g. 90s, 5m; 0 = none); on expiry the run aborts cooperatively, keeping partial stats, profiles and -report")
	return c
}

// Validate rejects negative values in the shared sizing flags and in any
// binary-specific extras, which are checked first so errors surface in
// the binary's historical flag order.
func (c *CommonFlags) Validate(extra ...IntFlag) error {
	if err := FirstNegative(append(extra,
		IntFlag{Name: "-bitstate-mb", Value: int64(c.BitstateMB)},
		IntFlag{Name: "-spill-mem-mb", Value: int64(c.SpillMemMB)},
	)...); err != nil {
		return err
	}
	if c.Timeout < 0 {
		return fmt.Errorf("flag -timeout: negative duration %v (use 0 for no deadline)", c.Timeout)
	}
	return nil
}

// Context builds the run's root context from the shared flags and the
// process signals: bounded by -timeout when set, and cancelled with a
// descriptive cause on the first SIGINT/SIGTERM so the run winds down
// cooperatively — the checker aborts at its next poll, spill run
// directories are cleaned up, and profiles and -report still flush on the
// normal exit path. A second signal exits immediately with code 130 (the
// escape hatch when the first cancel is not being honoured). The returned
// stop function releases the signal handler and the deadline timer; call
// it once the run returns.
func (c *CommonFlags) Context(tool string) (context.Context, func()) {
	base, cancel := context.WithCancelCause(context.Background())
	ctx := context.Context(base)
	stopTimeout := context.CancelFunc(func() {})
	if c.Timeout > 0 {
		ctx, stopTimeout = context.WithTimeoutCause(ctx, c.Timeout,
			fmt.Errorf("-timeout %v elapsed", c.Timeout))
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "%s: received %v; aborting cooperatively (again to exit immediately)\n", tool, s)
		cancel(fmt.Errorf("received %v", s))
		if s, ok = <-sig; ok {
			fmt.Fprintf(os.Stderr, "%s: received second %v; exiting\n", tool, s)
			os.Exit(130)
		}
	}()
	return ctx, func() {
		signal.Stop(sig)
		close(sig)
		stopTimeout()
		cancel(nil)
	}
}

// CheckpointFlags is the flag block of the binaries that support
// level-boundary checkpoint/resume (verc3-verify today).
type CheckpointFlags struct {
	Dir    string        // -checkpoint-dir
	Resume bool          // -resume
	Every  time.Duration // -checkpoint-every
}

// RegisterCheckpoint declares the checkpoint flags on the default FlagSet.
func RegisterCheckpoint() *CheckpointFlags {
	c := &CheckpointFlags{}
	flag.StringVar(&c.Dir, "checkpoint-dir", "", "snapshot the run into this directory at BFS level boundaries (atomic commit; at most one checkpoint is kept). Requires BFS order, an exact visited backend, and -trace off")
	flag.BoolVar(&c.Resume, "resume", false, "seed the run from the newest checkpoint under -checkpoint-dir instead of the initial states (fresh start when none exists)")
	flag.DurationVar(&c.Every, "checkpoint-every", 0, "minimum spacing between checkpoint saves (0 = adaptive: at least 250ms and 20x the previous save's cost, bounding overhead near 5%; negative = save at every level boundary)")
	return c
}

// Validate refuses -resume without a checkpoint directory to resume from.
func (c *CheckpointFlags) Validate() error {
	if c.Resume && c.Dir == "" {
		return fmt.Errorf("flag -resume: requires -checkpoint-dir (nowhere to resume from)")
	}
	return nil
}

// ApplyMC fills the model-checker checkpoint options.
func (c *CheckpointFlags) ApplyMC(opt *mc.Options) {
	opt.CheckpointDir = c.Dir
	opt.Resume = c.Resume
	opt.CheckpointEvery = c.Every
}

// Backend parses the -visited flag.
func (c *CommonFlags) Backend() (visited.Kind, error) {
	return visited.ParseKind(c.Visited)
}

// ApplyMC fills the model-checker options derived from the common block:
// backend selection and sizing, memory statistics, and driver phase
// labels (only when a CPU profile is being taken — the labels cost a
// goroutine-label store per phase switch).
func (c *CommonFlags) ApplyMC(opt *mc.Options, backend visited.Kind) {
	opt.MemStats = c.Stats
	opt.Visited = backend
	opt.BitstateMB = c.BitstateMB
	opt.SpillMem = int64(c.SpillMemMB) << 20
	opt.SpillDir = c.SpillDir
	opt.ProfileLabels = c.CPUProfile != ""
}

// LoadSpec loads and compiles the -spec file. It returns (nil, nil) when
// the flag is off; what to do with the model — refuse sketches, bind
// holes — is the binary's decision.
func (c *CommonFlags) LoadSpec() (*spec.Model, error) {
	if c.Spec == "" {
		return nil, nil
	}
	return spec.LoadFile(c.Spec)
}

// RefuseSpec exits with a friendly error when -spec was passed to a
// fixed-workload tool (verc3-fig2, verc3-table1): the message points
// sketch specs at verc3-synth and complete specs at verc3-verify, the
// same redirect verc3-verify itself gives for sketches. workload names
// what the tool regenerates ("the fixed Figure 2 workload"). A no-op
// when -spec is off.
func RefuseSpec(tool, workload string, c *CommonFlags) {
	if c.Spec == "" {
		return
	}
	target := "verc3-verify"
	if m, err := spec.LoadFile(c.Spec); err == nil && m.Sketch() {
		target = "verc3-synth"
	}
	fmt.Fprintf(os.Stderr,
		"%s: this tool regenerates %s and takes no -spec.\nRun the spec model through the general tools instead:\n\n\t%s -spec %s\n",
		tool, workload, target, c.Spec)
	os.Exit(2)
}

// Start bundles the startup sequence every binary repeats: pprof
// profiles, the profiled exit wrapper, and telemetry. The returned exit
// function is valid even on error — callers report the error under their
// own name and call exit(2), which still flushes whatever was started.
func (c *CommonFlags) Start(tool, system string) (*Telemetry, func(code int), error) {
	stopProf, err := StartProfiles(c.CPUProfile, c.MemProfile)
	if err != nil {
		return nil, func(code int) { os.Exit(code) }, err
	}
	exit := ProfiledExit(tool, stopProf)
	tel, err := StartTelemetry(TelemetryOptions{
		Tool:        tool,
		System:      system,
		Progress:    c.Progress,
		MetricsAddr: c.MetricsAddr,
		ReportPath:  c.Report,
	})
	if err != nil {
		return nil, exit, err
	}
	return tel, exit, nil
}
