package cliutil

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"verc3/internal/mc"
)

// TestTimeoutValidation: negative -timeout is a usage error; zero and
// positive pass.
func TestTimeoutValidation(t *testing.T) {
	for _, d := range []time.Duration{0, time.Second, time.Hour} {
		c := &CommonFlags{Timeout: d}
		if err := c.Validate(); err != nil {
			t.Errorf("Timeout=%v: %v", d, err)
		}
	}
	c := &CommonFlags{Timeout: -time.Second}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "-timeout") {
		t.Fatalf("negative timeout: err = %v, want -timeout usage error", err)
	}
}

// TestCheckpointFlagsValidation: -resume without -checkpoint-dir has
// nowhere to resume from and must be refused.
func TestCheckpointFlagsValidation(t *testing.T) {
	for _, c := range []CheckpointFlags{{}, {Dir: "d"}, {Dir: "d", Resume: true}} {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	c := CheckpointFlags{Resume: true}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("bare -resume: err = %v, want -checkpoint-dir refusal", err)
	}
}

// TestCheckpointFlagsApplyMC checks the flag pair lands in the checker
// options verbatim.
func TestCheckpointFlagsApplyMC(t *testing.T) {
	var opt mc.Options
	(&CheckpointFlags{Dir: "/ckpts", Resume: true, Every: -1}).ApplyMC(&opt)
	if opt.CheckpointDir != "/ckpts" || !opt.Resume || opt.CheckpointEvery != -1 {
		t.Fatalf("ApplyMC gave %+v", opt)
	}
}

// TestContextTimeout: -timeout puts a deadline with a descriptive cause on
// the run context; without it the context has no deadline. Either way the
// stop function must release cleanly and at most cancel with a nil cause.
func TestContextTimeout(t *testing.T) {
	c := &CommonFlags{Timeout: 20 * time.Millisecond}
	ctx, stop := c.Context("test-tool")
	defer stop()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("no deadline with -timeout set")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if cause := context.Cause(ctx); cause == nil || !strings.Contains(cause.Error(), "-timeout") {
		t.Errorf("cause = %v, want the -timeout explanation", cause)
	}

	c = &CommonFlags{}
	ctx, stop = c.Context("test-tool")
	if _, ok := ctx.Deadline(); ok {
		t.Error("deadline without -timeout")
	}
	stop()
	// After stop the context winds down with context.Canceled, never a
	// misleading cause.
	<-ctx.Done()
	if cause := context.Cause(ctx); !errors.Is(cause, context.Canceled) {
		t.Errorf("cause after stop = %v, want plain Canceled", cause)
	}
}

// TestRunSummaryAbortFieldsReachReport: Finish must fold the abort/resume
// outcome into the version-2 report.
func TestRunSummaryAbortFieldsReachReport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.json"
	tel, err := StartTelemetry(TelemetryOptions{Tool: "t", System: "s", ReportPath: path, Out: discard{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.Finish(&RunSummary{Verdict: "aborted", Aborted: true, AbortCause: "received interrupt", Resumed: true}); err != nil {
		t.Fatal(err)
	}
	if !tel.report.Aborted || tel.report.AbortCause != "received interrupt" || !tel.report.Resumed {
		t.Fatalf("report = %+v, abort fields did not land", tel.report)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
