package cliutil

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"verc3/internal/obs"
	"verc3/internal/statespace"
)

// TelemetryOptions configures StartTelemetry from the three telemetry
// flags every cmd/ binary exposes (-progress, -metrics-addr, -report).
type TelemetryOptions struct {
	Tool        string // binary name, for log prefixes and the report
	System      string // system under test ("" for multi-system tools)
	Progress    bool   // -progress: live status line on stderr
	MetricsAddr string // -metrics-addr: read-only HTTP endpoint ("" = off)
	ReportPath  string // -report: end-of-run JSON report path ("" = off)
	// Out overrides the summary destination (default os.Stdout); tests
	// point it at a buffer.
	Out io.Writer
}

// RunSummary carries the run outcome Finish folds into the -report file.
type RunSummary struct {
	Verdict string
	Exact   bool
	// Aborted marks a run cut short (cancel, timeout, contained panic);
	// AbortCause carries the rendered cause. Resumed marks a run seeded
	// from a checkpoint. All three land in the version-2 report schema.
	Aborted    bool
	AbortCause string
	Resumed    bool
	Space      statespace.Stats
}

// Telemetry owns a binary's live-observability machinery: the shared
// obs.Collector (nil when every telemetry flag is off, so the hot paths
// pay nothing), the stderr progress renderer and its sampler, the
// -metrics-addr HTTP server, the pending -report, and the single
// buffered Status writer through which the binary's human-readable
// summary flows.
//
// The Status writer is the fix for the old interleaving bug: tools used
// to fmt.Printf summary fragments while background goroutines (sampler
// repaints, synthesis logs) were still writing, tearing lines on a TTY.
// Now all summary output is staged in one buffer and flushed exactly
// once, inside Finish, after the sampler has stopped and the status
// line is erased.
type Telemetry struct {
	opt     TelemetryOptions
	col     *obs.Collector
	prog    *obs.Progress
	sampler *obs.Sampler
	srv     *http.Server
	addr    string
	status  *bufio.Writer
	report  *obs.Report
	done    bool
}

// StartTelemetry wires the telemetry flags. Call it after flag.Parse
// (the -report Options map is captured via flag.VisitAll). The returned
// Telemetry is never nil; with all three features off it degrades to
// just the buffered Status writer and a nil Collector.
func StartTelemetry(opt TelemetryOptions) (*Telemetry, error) {
	if opt.Out == nil {
		opt.Out = os.Stdout
	}
	t := &Telemetry{opt: opt, status: bufio.NewWriter(opt.Out)}
	if !opt.Progress && opt.MetricsAddr == "" && opt.ReportPath == "" {
		return t, nil
	}
	t.col = obs.New()
	if opt.ReportPath != "" {
		t.report = obs.NewReport(opt.Tool, opt.System)
		t.report.Options = make(map[string]string)
		flag.VisitAll(func(f *flag.Flag) { t.report.Options[f.Name] = f.Value.String() })
	}
	if opt.Progress {
		t.prog = obs.NewProgress(os.Stderr)
	}
	// The sampler feeds both the status line and the report timeline;
	// a bare -metrics-addr needs neither (scrapes snapshot on demand).
	if opt.Progress || opt.ReportPath != "" {
		var onSample func(prev, cur obs.Snapshot)
		if t.prog != nil {
			onSample = t.prog.Sample
		}
		t.sampler = t.col.StartSampler(obs.DefaultSampleInterval, onSample)
	}
	if opt.MetricsAddr != "" {
		ln, err := net.Listen("tcp", opt.MetricsAddr)
		if err != nil {
			t.sampler.Stop()
			return nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		t.srv = &http.Server{Handler: obs.MetricsHandler(t.col)}
		t.addr = ln.Addr().String()
		go t.srv.Serve(ln)
		t.Logf("%s: serving metrics on http://%s/metrics", opt.Tool, t.addr)
	}
	return t, nil
}

// Collector returns the run's collector — nil when telemetry is off,
// which every consumer (mc.Options.Obs, core.Config.Obs) accepts at
// zero cost.
func (t *Telemetry) Collector() *obs.Collector { return t.col }

// Addr returns the metrics server's resolved listen address ("" when
// -metrics-addr is off) — the bound port, even for ":0" requests.
func (t *Telemetry) Addr() string { return t.addr }

// Status returns the buffered summary writer. Everything written here
// appears atomically when Finish flushes it; nothing before.
func (t *Telemetry) Status() io.Writer { return t.status }

// Logf writes an immediate log line to stderr without tearing the
// -progress status line (which is erased first and repainted on the
// next sample).
func (t *Telemetry) Logf(format string, args ...any) {
	if t.prog != nil {
		t.prog.Logf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// Finish tears the telemetry down in output-safe order — stop the
// sampler, erase the status line, close the metrics server, flush the
// staged summary — and then, when sum is non-nil and -report was
// requested, writes the run report. A nil sum (error paths) performs
// teardown and flush only, since a report without a verdict would fail
// validation anyway. Finish is idempotent.
func (t *Telemetry) Finish(sum *RunSummary) error {
	if t.done {
		return nil
	}
	t.done = true
	t.sampler.Stop()
	if t.prog != nil {
		t.prog.Clear()
	}
	if t.srv != nil {
		t.srv.Close()
	}
	var first error
	if err := t.status.Flush(); err != nil {
		first = fmt.Errorf("flushing summary: %w", err)
	}
	if sum != nil && t.report != nil {
		t.report.Verdict = sum.Verdict
		t.report.Exact = sum.Exact
		t.report.Aborted = sum.Aborted
		t.report.AbortCause = sum.AbortCause
		t.report.Resumed = sum.Resumed
		t.report.Space = sum.Space
		t.report.Finish(t.col)
		if err := t.report.Write(t.opt.ReportPath); err != nil && first == nil {
			first = fmt.Errorf("-report: %w", err)
		}
	}
	return first
}
