package cliutil

import (
	"bytes"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"verc3/internal/obs"
)

// TestTelemetryOff pins the zero-cost contract: with every telemetry
// flag off there is no collector, no sampler, no server — only the
// buffered Status writer, which holds its content until Finish.
func TestTelemetryOff(t *testing.T) {
	var out bytes.Buffer
	tel, err := StartTelemetry(TelemetryOptions{Tool: "test", Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if tel.Collector() != nil {
		t.Error("telemetry off, but a collector was allocated")
	}
	if tel.Addr() != "" {
		t.Errorf("telemetry off, but metrics bound to %q", tel.Addr())
	}
	io.WriteString(tel.Status(), "summary line\n")
	if out.Len() != 0 {
		t.Errorf("summary escaped before Finish: %q", out.String())
	}
	if err := tel.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "summary line\n" {
		t.Errorf("flushed summary %q", got)
	}
	// Idempotent: a second Finish is a no-op, not a double flush.
	io.WriteString(tel.Status(), "late\n")
	if err := tel.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "summary line\n" {
		t.Errorf("second Finish changed output to %q", got)
	}
}

// TestTelemetryReport drives the -report path end to end: counters flow
// through the shared collector, Finish writes the file, and ReadReport
// round-trips it through schema validation with the run's verdict and
// the effective flag set.
func TestTelemetryReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	tel, err := StartTelemetry(TelemetryOptions{
		Tool: "cliutil-test", System: "unit", ReportPath: path, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := tel.Collector()
	if col == nil {
		t.Fatal("-report set but no collector")
	}
	col.Count(obs.CStates, 42)
	col.MarkTimeline()
	if err := tel.Finish(&RunSummary{Verdict: "success", Exact: true}); err != nil {
		t.Fatal(err)
	}
	r, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tool != "cliutil-test" || r.System != "unit" || r.Verdict != "success" || !r.Exact {
		t.Errorf("report identity: %+v", r)
	}
	if r.Final.Counters[obs.CStates] != 42 {
		t.Errorf("final states = %d, want 42", r.Final.Counters[obs.CStates])
	}
	if len(r.Options) == 0 {
		t.Error("report captured no flag options")
	}
}

// TestTelemetryMetricsInFlight scrapes the -metrics-addr endpoint while
// the run is still live: every counter family must already be present
// (zero or not) so dashboards see a stable schema from the first scrape.
func TestTelemetryMetricsInFlight(t *testing.T) {
	tel, err := StartTelemetry(TelemetryOptions{
		Tool: "cliutil-test", MetricsAddr: "127.0.0.1:0", Out: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Finish(nil)
	tel.Collector().Count(obs.CStates, 7)
	resp, err := http.Get("http://" + tel.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"verc3_states_total 7",
		"verc3_transitions_total 0",
		"verc3_elapsed_seconds",
		"verc3_phase_seconds_count",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	if err := tel.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + tel.Addr() + "/metrics"); err == nil {
		t.Error("metrics server still serving after Finish")
	}
}
