package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/obs"
	"verc3/internal/toy"
	"verc3/internal/ts"
)

// bomb is a one-hole sketch whose "bug" action runs model code that
// panics: action 0 ("ok") steps to a quiescent good state, action 1
// ("bug") blows up mid-Fire. The search must contain the panic, record
// that candidate as failed, and still deliver the "ok" solution.
type bomb struct{}

type bombState string

func (s bombState) Key() string     { return string(s) }
func (s bombState) Clone() ts.State { return s }

func (bomb) Name() string        { return "bomb" }
func (bomb) Initial() []ts.State { return []ts.State{bombState("init")} }
func (bomb) Transitions(s ts.State) []ts.Transition {
	if s.(bombState) != "init" {
		return nil
	}
	return []ts.Transition{{Name: "h", Fire: func(env *ts.Env) (ts.State, error) {
		a, err := env.Choose("h", []string{"ok", "bug"})
		if err != nil {
			return nil, err
		}
		if a == 1 {
			panic("injected model bug")
		}
		return bombState("done"), nil
	}}}
}
func (bomb) Invariants() []ts.Invariant { return nil }
func (bomb) Quiescent(ts.State) bool    { return true }

// TestCandidatePanicContained: a panicking candidate is a failed
// candidate — tallied in Panicked, never generalized into a pruning
// pattern — and the search runs to completion with the sound candidate
// as its solution.
func TestCandidatePanicContained(t *testing.T) {
	for _, mode := range []core.Mode{core.ModePrune, core.ModeNaive} {
		t.Run(mode.String(), func(t *testing.T) {
			col := obs.New()
			res, err := core.Synthesize(bomb{}, core.Config{Mode: mode, Obs: col})
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if st.Panicked != 1 {
				t.Errorf("Panicked = %d, want 1", st.Panicked)
			}
			if st.Failures != 1 {
				t.Errorf("Failures = %d, want 1 (the panicking candidate)", st.Failures)
			}
			if st.Aborted || st.Truncated {
				t.Errorf("Aborted/Truncated = %v/%v; a contained panic must not stop the search", st.Aborted, st.Truncated)
			}
			if st.Patterns != 0 {
				t.Errorf("Patterns = %d; a panic must never become a pruning pattern", st.Patterns)
			}
			if len(res.Solutions) != 1 || res.Solutions[0].Assign[0] != 0 {
				t.Fatalf("Solutions = %+v, want exactly the \"ok\" candidate", res.Solutions)
			}
			if !res.Solutions[0].Reverified {
				t.Error("surviving solution not re-verified")
			}
			events, _ := col.Events()
			var sawPanic bool
			for _, ev := range events {
				if ev.Kind == obs.EventCandidatePanic {
					sawPanic = true
					if !strings.Contains(ev.Cause, "injected model bug") {
						t.Errorf("panic event cause = %q, want the panic value", ev.Cause)
					}
				}
			}
			if !sawPanic {
				t.Error("no EventCandidatePanic in the event log")
			}
		})
	}
}

// TestSynthesizePreCancelled: a context dead before the search starts
// aborts the run with the cancel cause, no solutions, and no error —
// the partial Result is the report.
func TestSynthesizePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("cut short"))
	res, err := core.SynthesizeCtx(ctx, toy.Figure2(), core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if !st.Aborted || !strings.Contains(st.AbortCause, "cut short") {
		t.Fatalf("Aborted = %v cause %q, want the cancel cause", st.Aborted, st.AbortCause)
	}
	if st.Truncated {
		t.Error("Truncated set; cancellation must report Aborted instead")
	}
	if len(res.Solutions) != 0 {
		t.Errorf("Solutions = %+v after a dead context", res.Solutions)
	}
	// Only the initial discovery dispatch can have been admitted before
	// the abort was noticed.
	if st.Evaluated > 1 {
		t.Errorf("Evaluated = %d after a dead context", st.Evaluated)
	}
}

// TestSynthesizeCancelMidSearch cancels from the OnEvaluate callback
// after the first dispatch: the run stops early with partial tallies
// and the abort lands in the event log.
func TestSynthesizeCancelMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	col := obs.New()
	res, err := core.SynthesizeCtx(ctx, toy.Figure2(), core.Config{
		Mode: core.ModePrune,
		Obs:  col,
		OnEvaluate: func(core.Event) {
			cancel(errors.New("enough candidates"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if !st.Aborted || !strings.Contains(st.AbortCause, "enough candidates") {
		t.Fatalf("Aborted = %v cause %q, want mid-search cancel", st.Aborted, st.AbortCause)
	}
	// Figure 2 needs 10 dispatches under pruning; cancelling after the
	// first must cut that short.
	if st.Evaluated < 1 || st.Evaluated >= 10 {
		t.Errorf("Evaluated = %d, want a strict partial prefix of the search", st.Evaluated)
	}
	events, _ := col.Events()
	var sawAbort bool
	for _, ev := range events {
		if ev.Kind == obs.EventAbort && strings.Contains(ev.Cause, "enough candidates") {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Error("no EventAbort in the event log")
	}
}

// TestSynthesizeRejectsPerRunMCOptions: checkpointing and the checker's
// own obs hook are per-run concerns the engine manages itself; smuggling
// them in through Config.MC is a configuration error.
func TestSynthesizeRejectsPerRunMCOptions(t *testing.T) {
	cases := []struct {
		name string
		mc   mc.Options
		want string
	}{
		{"checkpoint-dir", mc.Options{CheckpointDir: "d"}, "per-run"},
		{"resume", mc.Options{Resume: true}, "per-run"},
		{"mc-obs", mc.Options{Obs: obs.New()}, "Config.Obs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := core.Synthesize(toy.Figure2(), core.Config{MC: tc.mc})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
