package core_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/msi"
	"verc3/internal/toy"
)

// TestSplitParallelism pins the budget-splitting policy: cross-candidate
// workers fill first, the remainder becomes intra-check exploration
// workers, and the product never exceeds the budget.
func TestSplitParallelism(t *testing.T) {
	cases := []struct {
		budget, pending            int
		wantWorkers, wantMCWorkers int
	}{
		{budget: 8, pending: 100, wantWorkers: 8, wantMCWorkers: 1},
		{budget: 8, pending: 8, wantWorkers: 8, wantMCWorkers: 1},
		{budget: 8, pending: 2, wantWorkers: 2, wantMCWorkers: 4},
		{budget: 8, pending: 1, wantWorkers: 1, wantMCWorkers: 8},
		{budget: 8, pending: 3, wantWorkers: 3, wantMCWorkers: 2},
		{budget: 1, pending: 100, wantWorkers: 1, wantMCWorkers: 1},
		{budget: 0, pending: 0, wantWorkers: 1, wantMCWorkers: 1},
	}
	for _, c := range cases {
		w, m := core.SplitParallelism(c.budget, c.pending)
		if w != c.wantWorkers || m != c.wantMCWorkers {
			t.Errorf("SplitParallelism(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.pending, w, m, c.wantWorkers, c.wantMCWorkers)
		}
		if c.budget > 0 && w*m > c.budget {
			t.Errorf("SplitParallelism(%d, %d): product %d exceeds budget", c.budget, c.pending, w*m)
		}
	}
}

// TestMCWorkersRejectedOnMCOptions checks the engine owns the model
// checker's worker knob.
func TestMCWorkersRejectedOnMCOptions(t *testing.T) {
	_, err := core.Synthesize(toy.Figure2(), core.Config{MC: mc.Options{Workers: 4}})
	if err == nil || !strings.Contains(err.Error(), "MCWorkers") {
		t.Fatalf("err = %v, want MC.Workers rejection pointing at Config.MCWorkers", err)
	}
}

// canonicalSolutions renders a result's solutions in an order- and
// hole-index-independent form: with MCWorkers > 1 holes may be discovered
// in a scheduling-dependent order inside a run, so assignment vectors are
// only comparable after mapping indices back to hole/action names.
func canonicalSolutions(res *core.Result) []string {
	out := make([]string, 0, len(res.Solutions))
	for _, sol := range res.Solutions {
		parts := make([]string, 0, len(sol.Assign))
		for i, a := range sol.Assign {
			if a == core.Wildcard {
				parts = append(parts, res.HoleNames[i]+"@?")
				continue
			}
			parts = append(parts, res.HoleNames[i]+"@"+res.HoleActions[i][a])
		}
		sort.Strings(parts)
		parts = append(parts, fmt.Sprintf("states=%d", sol.VisitedStates))
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

// TestMCWorkersMatchesSequentialSynthesis checks intra-check parallelism is
// invisible to the synthesis outcome: the same solutions (compared by hole
// name, since discovery order may differ) with the same verifying state
// counts as the all-sequential run.
func TestMCWorkersMatchesSequentialSynthesis(t *testing.T) {
	run := func(mcWorkers int) *core.Result {
		sys := msi.New(msi.Config{Caches: 2, Variant: msi.Small})
		res, err := core.Synthesize(sys, core.Config{
			Mode:      core.ModePrune,
			MCWorkers: mcWorkers,
			MC:        mc.Options{Symmetry: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := canonicalSolutions(run(1))
	par := canonicalSolutions(run(4))
	if len(base) != len(par) {
		t.Fatalf("solutions: %d vs %d\nseq: %v\npar: %v", len(base), len(par), base, par)
	}
	for i := range base {
		if base[i] != par[i] {
			t.Errorf("solution %d differs:\nseq: %s\npar: %s", i, base[i], par[i])
		}
	}
}
