package core

import (
	"verc3/internal/ts"
)

// runChooser resolves holes for one model-checking run. It implements
// ts.Chooser (hole resolution) and mc.UsageTracker (per-firing usage masks
// for trace-generalized pruning).
//
// assign is the candidate configuration vector for this run, indexed by hole
// discovery index; holes with index >= len(assign) were discovered after the
// candidate was drawn (or during this very run) and take the default action:
// the wildcard under ModePrune, action 0 under ModeNaive.
type runChooser struct {
	reg    *registry
	assign []int
	naive  bool

	fireMask uint64 // holes consulted since last ResetUsage
	runMask  uint64 // holes consulted at any point in the run
	overflow bool   // a hole with index >= 64 was consulted
}

// Choose implements ts.Chooser.
func (rc *runChooser) Choose(hole string, actions []string) (int, error) {
	h, err := rc.reg.discover(hole, actions)
	if err != nil {
		return 0, err
	}
	if h.index < 64 {
		rc.fireMask |= 1 << uint(h.index)
		rc.runMask |= 1 << uint(h.index)
	} else {
		rc.overflow = true
	}
	if h.index < len(rc.assign) {
		a := rc.assign[h.index]
		if a == Wildcard {
			return 0, ts.ErrWildcard
		}
		if a < 0 || a >= len(h.actions) {
			panic("core: assignment out of range for hole " + hole)
		}
		return a, nil
	}
	// Hole discovered after this candidate was drawn.
	if rc.naive {
		return 0, nil // lazy discovery: continue with the default action
	}
	return 0, ts.ErrWildcard
}

// ResetUsage implements mc.UsageTracker.
func (rc *runChooser) ResetUsage() { rc.fireMask = 0 }

// Usage implements mc.UsageTracker.
func (rc *runChooser) Usage() uint64 {
	if rc.overflow {
		// Too many holes for exact masks: saturate so callers fall back to
		// full-vector pruning (always sound).
		return ^uint64(0)
	}
	return rc.fireMask
}
