package core

import (
	"sync/atomic"

	"verc3/internal/ts"
)

// runChooser resolves holes for one model-checking run. It implements
// ts.Chooser (hole resolution) and mc.UsageTracker (per-firing usage masks
// for trace-generalized pruning).
//
// assign is the candidate configuration vector for this run, indexed by hole
// discovery index; holes with index >= len(assign) were discovered after the
// candidate was drawn (or during this very run) and take the default action:
// the wildcard under ModePrune, action 0 under ModeNaive.
//
// Choose may be called concurrently: with Config.MCWorkers > 1 the embedded
// model checker fires transitions from several exploration workers against
// this one chooser, so the usage masks are atomics. The bracketed
// ResetUsage/Usage protocol is only meaningful when firings are sequential —
// which the model checker guarantees by falling back to its sequential
// driver whenever a UsageTracker is installed.
type runChooser struct {
	reg    *registry
	assign []int
	naive  bool

	fireMask atomic.Uint64 // holes consulted since last ResetUsage
	overflow atomic.Bool   // a hole with index >= 64 was consulted
}

// Choose implements ts.Chooser.
func (rc *runChooser) Choose(hole string, actions []string) (int, error) {
	h, err := rc.reg.discover(hole, actions)
	if err != nil {
		return 0, err
	}
	if h.index < 64 {
		rc.fireMask.Or(uint64(1) << uint(h.index))
	} else {
		rc.overflow.Store(true)
	}
	if h.index < len(rc.assign) {
		a := rc.assign[h.index]
		if a == Wildcard {
			return 0, ts.ErrWildcard
		}
		if a < 0 || a >= len(h.actions) {
			panic("core: assignment out of range for hole " + hole)
		}
		return a, nil
	}
	// Hole discovered after this candidate was drawn.
	if rc.naive {
		return 0, nil // lazy discovery: continue with the default action
	}
	return 0, ts.ErrWildcard
}

// ResetUsage implements mc.UsageTracker.
func (rc *runChooser) ResetUsage() { rc.fireMask.Store(0) }

// Usage implements mc.UsageTracker.
func (rc *runChooser) Usage() uint64 {
	if rc.overflow.Load() {
		// Too many holes for exact masks: saturate so callers fall back to
		// full-vector pruning (always sound).
		return ^uint64(0)
	}
	return rc.fireMask.Load()
}
