package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"verc3/internal/mc"
	"verc3/internal/obs"
	"verc3/internal/statespace"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

// Mode selects the synthesis strategy.
type Mode int

const (
	// ModePrune is the paper's contribution: wildcard defaults plus the
	// candidate-pruning lookup table.
	ModePrune Mode = iota
	// ModeNaive is the baseline enumeration: newly discovered holes take a
	// concrete default action (index 0) so the model checker always runs to
	// completion, and every combination of discovered hole actions is
	// dispatched.
	ModeNaive
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeNaive {
		return "naive"
	}
	return "prune"
}

// PruneStyle selects how failing candidates become pruning patterns.
type PruneStyle int

const (
	// PruneFullVector inserts the entire enumerated candidate configuration
	// (bound prefix; trailing wildcards stripped), exactly as the paper
	// describes ("the current candidate (including known wildcards) is
	// entered into the lookup-table").
	PruneFullVector PruneStyle = iota
	// PruneTraceGeneralized binds only the holes actually consulted on the
	// minimal error trace (the paper's executed subset Ct), wildcarding the
	// rest. Strictly more pruning; an extension benchmarked in the ablation.
	PruneTraceGeneralized
)

// String returns the prune-style name.
func (p PruneStyle) String() string {
	if p == PruneTraceGeneralized {
		return "trace-generalized"
	}
	return "full-vector"
}

// Config configures Synthesize.
type Config struct {
	// Mode selects pruning (default) or the naive baseline.
	Mode Mode
	// PruneStyle selects the pattern-generalization policy (ModePrune only).
	PruneStyle PruneStyle
	// Workers is the number of parallel synthesis workers (default 1):
	// cross-candidate parallelism, one model-checker run per candidate.
	// ModeNaive is inherently sequential (its candidate vector grows during
	// enumeration) and requires Workers <= 1.
	Workers int
	// MCWorkers is the number of intra-check exploration workers handed to
	// the embedded model checker per dispatch (0 or 1 = sequential). The
	// engine's total parallelism budget is Workers×MCWorkers, and budget
	// flows in one direction only: once MCWorkers > 1 opts into
	// intra-check parallelism, dispatches that cannot use cross-candidate
	// parallelism (the initial hole-discovery run of ModePrune, rounds
	// with fewer candidates than Workers) are given the idle share of the
	// budget as extra intra-check workers (see SplitParallelism), but
	// MCWorkers never adds cross-candidate workers beyond Workers —
	// Workers=1 keeps its deterministic dispatch order, and MCWorkers<=1
	// keeps every dispatch on the sequential driver.
	// Cross-candidate parallelism is embarrassingly parallel and should
	// get the budget first; intra-check parallelism is the lever when
	// individual state spaces are large. With MCWorkers > 1, holes may be
	// discovered in a scheduling-dependent order inside a run, so hole
	// indices (and Solution.Assign vectors) are only stable up to
	// renaming; compare solutions by hole name. Note
	// PruneTraceGeneralized installs a usage tracker, which forces each
	// check back to the sequential driver.
	MCWorkers int
	// MC carries the base model-checker options (symmetry, state caps,
	// deadlock checking, search order, MemStats for Stats.Space allocation
	// counters, visited-set backend). Env, Usage, RecordTrace and Workers
	// are managed by the engine and must be left zero (set Config.MCWorkers
	// for intra-check parallelism; trace recording is off during the search
	// and on for the final per-solution re-verification).
	//
	// MC.Liveness extends every dispatch with the nested-DFS liveness
	// phase: candidates whose completions admit an accepting lasso fail
	// on the new axis and are pruned like any other failure. A lasso
	// found under a partial assignment fired only concretely resolved
	// holes (wildcard branches are dropped, and dropping edges cannot
	// create cycles), so it persists under every extension — liveness
	// failures carry an all-ones UsageMask and are never
	// trace-generalized. Re-verification runs with the same option, so a
	// winner is re-confirmed on the liveness axis too.
	//
	// MC.Visited must be an exact backend: synthesis dispatches run on the
	// flat table by default (the zero value); the disk-spilling tier is
	// equally acceptable (exact, just RAM-bounded), while the lossy
	// bitstate backend is rejected — an omitted state flips verdicts in
	// both directions (a missed violation is caught by re-verification,
	// but a spuriously unreached goal would insert an unsound pruning
	// pattern that silently prunes correct candidates).
	MC mc.Options
	// MaxEvaluations, when positive, stops synthesis after that many
	// model-checker dispatches (Stats.Truncated is set). Used to run scaled
	// versions of experiments whose full runs take hours.
	MaxEvaluations int64
	// Log, when non-nil, receives progress lines. It is the string adapter
	// over the structured event stream: every emitted event carries a
	// rendered Text line, and Log receives exactly that line — so legacy
	// consumers keep working unchanged while Events/Obs consumers get the
	// typed fields.
	Log func(format string, args ...any)
	// Events, when non-nil, receives every structured progress event
	// (round starts, solutions, re-verification drops; see obs.Event).
	// With Workers > 1 solution events arrive concurrently; the callback
	// must be safe.
	Events func(obs.Event)
	// Obs, when non-nil, aggregates live telemetry for the whole synthesis
	// run: every model-checker dispatch publishes its exploration counters
	// into this collector (the engine threads it through MC — leave
	// MC.Obs zero), the engine counts evaluated/skipped/solutions and
	// publishes round/hole/pattern gauges, and progress events land in the
	// collector's event log. One collector spans all dispatches, so
	// counters accumulate across candidates and gauges are last-writer-
	// wins under concurrent dispatches.
	Obs *obs.Collector
	// OnEvaluate, when non-nil, receives an Event after every model-checker
	// dispatch. With Workers > 1 events arrive concurrently (the callback
	// must be safe) and pattern/hole counts reflect a racy snapshot; with
	// one worker the stream is the exact evaluation order, which is how the
	// paper's Figure 2 run table is regenerated.
	OnEvaluate func(Event)
}

// Event describes one candidate evaluation (see Config.OnEvaluate).
type Event struct {
	// Assign is the candidate configuration that was dispatched (indexed by
	// hole discovery order; holes discovered during this very run are not
	// included — compare Holes).
	Assign []int
	// Verdict is the model checker's three-valued result.
	Verdict mc.Verdict
	// Holes is the number of holes discovered so far (after this run).
	Holes int
	// Patterns is the pruning-pattern count after this run.
	Patterns int
	// VisitedStates is the number of states this run explored.
	VisitedStates int
}

// Solution is one correctly verified candidate.
type Solution struct {
	// Assign maps hole index (discovery order) to action index.
	Assign []int
	// VisitedStates is the number of states the verifying run explored. The
	// paper uses this to group behaviourally equivalent solutions.
	VisitedStates int
	// Reverified reports that the final re-check with trace recording on
	// (see Synthesize) confirmed the solution. Synthesis dispatches run
	// traceless for memory, deduplicating by 64-bit fingerprints; the
	// trace-on re-check makes a fingerprint collision during the search
	// unable to smuggle a wrong candidate into the results — candidates
	// whose re-check fails are dropped from Solutions, so the flag is true
	// on every returned solution and exists as the attestation of that
	// pass.
	Reverified bool
}

// Stats aggregates a synthesis run.
type Stats struct {
	// Holes is the number of holes discovered.
	Holes int
	// CandidateSpace is the nominal candidate count: the product of action
	// counts over discovered holes, including the wildcard action in
	// ModePrune (Table I "Candidates" column). Saturates at MaxUint64.
	CandidateSpace uint64
	// Evaluated counts candidates dispatched to the model checker
	// (Table I "Evaluated").
	Evaluated int64
	// Skipped counts concrete candidates ruled out by pruning patterns
	// without model checking.
	Skipped int64
	// Patterns is the number of pruning patterns inserted
	// (Table I "Pruning Patterns").
	Patterns int
	// Successes, Failures, Unknowns count per-verdict dispatches.
	Successes, Failures, Unknowns int64
	// TotalVisitedStates sums visited states over all dispatches.
	TotalVisitedStates int64
	// Rounds is the number of prefix-expansion rounds (ModePrune).
	Rounds int
	// Truncated reports that MaxEvaluations stopped the run early
	// (cancellation sets Aborted instead).
	Truncated bool
	// Panicked counts candidate dispatches stopped by a contained
	// model-code panic. Each is recorded as a failed candidate — but never
	// becomes a pruning pattern, since a panic is a defect of the model
	// code rather than a property violation — and the search continues.
	Panicked int64
	// Aborted reports that the synthesis run was cancelled (SynthesizeCtx's
	// context) before the search completed; AbortCause carries the rendered
	// cancel cause. The returned Result holds the partial tallies, and
	// every listed solution is still re-verified.
	Aborted    bool
	AbortCause string
	// Elapsed is the wall-clock synthesis time.
	Elapsed time.Duration
	// Space aggregates the exploration memory profiles of all model-checker
	// dispatches: States/Transitions/TraceNodes and the allocation counters
	// sum over dispatches, while PeakFrontier and BytesRetained report the
	// largest single dispatch — a per-dispatch peak, not a process
	// high-water mark (with Workers > 1, concurrent dispatches' footprints
	// coexist and the allocation counters also overlap; see
	// statespace.Stats). Synthesis runs traceless, so TraceNodes counts
	// only the final per-solution re-verification runs.
	Space statespace.Stats
}

// Result is the outcome of Synthesize.
type Result struct {
	// Solutions lists the correctly verified candidates, sorted by
	// assignment. Empty if the skeleton has no solution (or the model is
	// inherently faulty).
	Solutions []Solution
	// HoleNames and HoleActions describe the discovered holes in discovery
	// order.
	HoleNames   []string
	HoleActions [][]string
	Stats       Stats
}

// Describe renders solution i in the paper's ⟨hole@action⟩ notation.
func (r *Result) Describe(i int) string {
	holes := make([]*holeInfo, len(r.HoleNames))
	for j := range holes {
		holes[j] = &holeInfo{name: r.HoleNames[j], actions: r.HoleActions[j], index: j}
	}
	return formatAssign(r.Solutions[i].Assign, holes)
}

type engine struct {
	sys      ts.System
	cfg      Config // MCWorkers/Workers normalized to >= 1 by Synthesize
	ctx      context.Context
	reg      *registry
	patterns *patternTable

	evaluated  atomic.Int64
	skipped    atomic.Int64
	successes  atomic.Int64
	failures   atomic.Int64
	unknowns   atomic.Int64
	totalSeen  atomic.Int64
	panicked   atomic.Int64
	stop       atomic.Bool // MaxEvaluations reached, or the run cancelled
	aborted    atomic.Bool
	abortCause atomic.Pointer[string]
	fatal      atomic.Pointer[errBox]
	solMu      sync.Mutex
	solutions  map[string]Solution
	spaceMu    sync.Mutex
	space      statespace.Stats // merged per-dispatch memory profiles
	traceGen   bool
	checkCount atomic.Int64 // dispatch admission counter for MaxEvaluations
	lastK      int          // prefix size of the previous round (-1 before any)
}

type errBox struct{ err error }

// Synthesize completes the holes of the skeleton system sys.
//
// sys must be stateless: Transitions and all guards/actions may be invoked
// concurrently (from Workers goroutines) and must derive successors only by
// cloning, never by mutating shared structures.
//
// Every model-checker dispatch of the search runs with trace recording off:
// pruning needs only verdicts and usage masks, so candidates explore in the
// fingerprint-only memory regime (no per-state node records). After the
// search, each surviving solution is re-checked once with RecordTrace on —
// exercising the counterexample machinery and confirming the verdict with
// full per-state bookkeeping — and marked Solution.Reverified on success.
//
// Synthesize is SynthesizeCtx with a background context: never cancelled,
// no deadline.
func Synthesize(sys ts.System, cfg Config) (*Result, error) {
	return SynthesizeCtx(context.Background(), sys, cfg)
}

// SynthesizeCtx is Synthesize under a context: every model-checker
// dispatch runs with ctx, so a deadline or cancel stops the search
// cooperatively. A cancelled run is not an error — it returns the partial
// Result with Stats.Aborted set and the cancel cause in Stats.AbortCause;
// solutions found before the cancel are still re-verified (those whose
// re-check the cancel also cut short are dropped, preserving the
// every-returned-solution-is-reverified guarantee). A candidate whose
// model code panics does not stop the search at all: the dispatch is
// contained by the checker, tallied in Stats.Panicked, recorded as a
// failed candidate, and enumeration continues.
func SynthesizeCtx(ctx context.Context, sys ts.System, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Mode == ModeNaive && cfg.Workers > 1 {
		return nil, fmt.Errorf("core: ModeNaive is sequential; got Workers=%d", cfg.Workers)
	}
	if cfg.MC.Env != nil || cfg.MC.Usage != nil || cfg.MC.RecordTrace {
		return nil, fmt.Errorf("core: Config.MC must not set Env, Usage or RecordTrace")
	}
	if cfg.MC.Workers != 0 {
		return nil, fmt.Errorf("core: Config.MC.Workers is managed by the engine; set Config.MCWorkers")
	}
	if cfg.MC.CheckpointDir != "" || cfg.MC.Resume {
		return nil, fmt.Errorf("core: Config.MC must not set CheckpointDir or Resume; checkpointing is per-run, not per-dispatch")
	}
	if cfg.MC.Obs != nil {
		return nil, fmt.Errorf("core: Config.MC.Obs is managed by the engine; set Config.Obs")
	}
	if !cfg.MC.Visited.Exact() {
		return nil, fmt.Errorf("core: visited backend %q is lossy; synthesis dispatches need an exact backend (flat, map, or spill)", cfg.MC.Visited)
	}
	if cfg.MCWorkers <= 0 {
		cfg.MCWorkers = 1
	}
	// Thread the collector into every dispatch: the drivers stream their
	// exploration counters into it while the engine publishes the
	// synthesis-level counters and gauges around them.
	cfg.MC.Obs = cfg.Obs
	e := &engine{
		sys:       sys,
		cfg:       cfg,
		ctx:       ctx,
		reg:       newRegistry(),
		patterns:  newPatternTable(),
		solutions: make(map[string]Solution),
		traceGen:  cfg.Mode == ModePrune && cfg.PruneStyle == PruneTraceGeneralized,
	}
	start := time.Now()
	var err error
	var rounds int
	if cfg.Mode == ModeNaive {
		err = e.runNaive()
	} else {
		rounds, err = e.runPrune()
	}
	if err != nil {
		return nil, err
	}
	if eb := e.fatal.Load(); eb != nil {
		return nil, eb.err
	}
	e.reverify()
	if eb := e.fatal.Load(); eb != nil {
		return nil, eb.err
	}
	return e.result(rounds, time.Since(start)), nil
}

// reverify re-checks every recorded solution with trace recording on (see
// Synthesize). Re-checks are not synthesis dispatches: they do not count
// against MaxEvaluations, are invisible to OnEvaluate, and leave Evaluated
// and the verdict counters untouched; their memory profiles do merge into
// Stats.Space (they are where TraceNodes come from). A solution whose
// re-check does not come back Success is removed from the results — the
// traceless search was fooled (a fingerprint collision merged states under
// this candidate), and the documented guarantee is that such a candidate
// cannot survive into Result.Solutions. Re-verification always runs on an
// exact visited backend, whatever backed the search — Synthesize rejects
// lossy dispatch backends today, and this pins the invariant even if that
// changes.
func (e *engine) reverify() {
	e.solMu.Lock()
	defer e.solMu.Unlock()
	for key, sol := range e.solutions {
		rc := &runChooser{reg: e.reg, assign: sol.Assign, naive: e.cfg.Mode == ModeNaive}
		opt := e.cfg.MC
		opt.Env = ts.NewEnv(rc)
		opt.RecordTrace = true
		if !opt.Visited.Exact() {
			opt.Visited = visited.Flat
		}
		res, err := mc.CheckCtx(e.ctx, e.sys, opt)
		if err != nil {
			e.fatal.CompareAndSwap(nil, &errBox{err: err})
			return
		}
		e.mergeSpace(res.Space)
		if res.Verdict == mc.Success {
			sol.Reverified = true
			e.solutions[key] = sol
			continue
		}
		// Anything other than Success drops the solution — including an
		// aborted re-check: a cancelled one leaves the candidate unconfirmed
		// (the returned-solutions-are-reverified guarantee wins over keeping
		// it), and a panicking one just disproved its own model code.
		if res.Verdict == mc.Aborted && res.Abort != nil {
			if res.Abort.Panic {
				e.panicked.Add(1)
			} else {
				e.noteAbort(res.Abort)
			}
		}
		delete(e.solutions, key)
		if e.observing() {
			desc := formatAssign(sol.Assign, e.reg.holes())
			e.emit(obs.Event{
				Kind:     obs.EventSolutionDropped,
				Solution: desc,
				Text:     fmt.Sprintf("dropping solution %s: trace-on re-verification returned %v", desc, res.Verdict),
			})
		}
	}
}

// noteAbort records the first cancellation (later ones — racing workers
// observing the same cancel — are dropped) and emits the abort event.
func (e *engine) noteAbort(ab *mc.AbortInfo) {
	cause := context.Canceled.Error()
	if ab != nil && ab.Cause != nil {
		cause = ab.Cause.Error()
	}
	if e.aborted.CompareAndSwap(false, true) {
		e.abortCause.Store(&cause)
		if e.observing() {
			e.emit(obs.Event{
				Kind:  obs.EventAbort,
				Cause: cause,
				Text:  "synthesis aborted: " + cause,
			})
		}
	}
}

// mergeSpace folds one dispatch's memory profile into the aggregate.
func (e *engine) mergeSpace(s statespace.Stats) {
	e.spaceMu.Lock()
	e.space.Merge(s)
	e.spaceMu.Unlock()
}

// observing reports whether any progress consumer is attached. Event
// construction renders a human-readable Text line; call sites guard on
// this so an unobserved run never pays the formatting.
func (e *engine) observing() bool {
	return e.cfg.Log != nil || e.cfg.Events != nil || e.cfg.Obs != nil
}

// emit fans one structured progress event out to every attached consumer:
// the collector's event log, the typed Events callback, and the legacy
// Log adapter (which receives the event's rendered Text line verbatim).
// With a collector attached the event is stamped on its clock, so the
// callback and the retained log carry the same timestamp.
func (e *engine) emit(ev obs.Event) {
	if ev.ElapsedNS == 0 {
		ev.ElapsedNS = e.cfg.Obs.Elapsed().Nanoseconds()
	}
	if e.cfg.Obs != nil {
		e.cfg.Obs.Event(ev)
	}
	if e.cfg.Events != nil {
		e.cfg.Events(ev)
	}
	if e.cfg.Log != nil {
		e.cfg.Log("%s", ev.Text)
	}
}

// admit reserves one evaluation slot, honouring MaxEvaluations.
func (e *engine) admit() bool {
	if e.cfg.MaxEvaluations <= 0 {
		return true
	}
	if e.checkCount.Add(1) > e.cfg.MaxEvaluations {
		e.stop.Store(true)
		return false
	}
	return true
}

// dispatch model-checks one candidate configuration with mcWorkers
// intra-check exploration workers (the chooser is safe for concurrent
// firings; see runChooser).
func (e *engine) dispatch(assign []int, mcWorkers int) {
	rc := &runChooser{reg: e.reg, assign: assign, naive: e.cfg.Mode == ModeNaive}
	opt := e.cfg.MC
	opt.Env = ts.NewEnv(rc)
	opt.Workers = mcWorkers
	if e.traceGen {
		// Usage tracking needs sequentially bracketed firings; the model
		// checker would fall back anyway, but be explicit.
		opt.Usage = rc
		opt.Workers = 1
	}
	res, err := mc.CheckCtx(e.ctx, e.sys, opt)
	if err != nil {
		e.fatal.CompareAndSwap(nil, &errBox{err: err})
		e.stop.Store(true)
		return
	}
	e.evaluated.Add(1)
	e.cfg.Obs.Count(obs.CEvaluated, 1)
	e.totalSeen.Add(int64(res.Stats.VisitedStates))
	e.mergeSpace(res.Space)
	switch res.Verdict {
	case mc.Success:
		e.successes.Add(1)
		if n := e.reg.count(); rc.naive && len(assign) < n {
			// Holes discovered during this very run executed with the
			// default action (index 0); the verified candidate includes
			// those bindings. (Under ModePrune such holes would have
			// wildcard-aborted, making Success impossible, so no padding
			// is needed there.)
			padded := make([]int, n)
			copy(padded, assign)
			assign = padded
		}
		e.recordSolution(assign, res.Stats.VisitedStates)
	case mc.Failure:
		e.failures.Add(1)
		if e.cfg.Mode == ModePrune {
			e.insertPattern(assign, res.Failure)
		}
	case mc.Unknown:
		e.unknowns.Add(1)
	case mc.Aborted:
		if res.Abort != nil && res.Abort.Panic {
			// A panicking candidate is a failed candidate, but never a
			// pruning pattern: the panic is a defect of the model code, not
			// a property violation, and generalizing it could prune sound
			// candidates. The search continues.
			e.panicked.Add(1)
			e.failures.Add(1)
			if e.observing() {
				desc := formatAssign(assign, e.reg.holes())
				e.emit(obs.Event{
					Kind:     obs.EventCandidatePanic,
					Solution: desc,
					State:    res.Abort.StateKey,
					Cause:    res.Abort.Cause.Error(),
					Text:     fmt.Sprintf("candidate %s panicked at state %q: %v", desc, res.Abort.StateKey, res.Abort.Cause),
				})
			}
		} else {
			// Cancelled (deadline, signal): stop the whole search.
			e.noteAbort(res.Abort)
			e.stop.Store(true)
		}
	}
	if e.cfg.Obs != nil {
		e.cfg.Obs.SetGauge(obs.GHoles, uint64(e.reg.count()))
		e.cfg.Obs.SetGauge(obs.GPatterns, uint64(e.patterns.Len()))
	}
	if e.cfg.OnEvaluate != nil {
		e.cfg.OnEvaluate(Event{
			Assign:        append([]int(nil), assign...),
			Verdict:       res.Verdict,
			Holes:         e.reg.count(),
			Patterns:      e.patterns.Len(),
			VisitedStates: res.Stats.VisitedStates,
		})
	}
}

func (e *engine) recordSolution(assign []int, visited int) {
	sol := Solution{Assign: append([]int(nil), assign...), VisitedStates: visited}
	key := fmt.Sprint(sol.Assign)
	e.solMu.Lock()
	if _, dup := e.solutions[key]; !dup {
		e.solutions[key] = sol
		e.cfg.Obs.Count(obs.CSolutions, 1)
		if e.observing() {
			desc := formatAssign(sol.Assign, e.reg.holes())
			e.emit(obs.Event{
				Kind:     obs.EventSolution,
				Solution: desc,
				States:   visited,
				Text:     fmt.Sprintf("solution %s (%d states)", desc, visited),
			})
		}
	}
	e.solMu.Unlock()
}

// insertPattern memoizes a candidate failure.
func (e *engine) insertPattern(assign []int, f *mc.FailureInfo) {
	pat := append([]int(nil), assign...)
	if e.traceGen && f.UsageMask != ^uint64(0) {
		for i := range pat {
			if i < 64 && f.UsageMask&(1<<uint(i)) == 0 {
				pat[i] = Wildcard
			}
		}
	}
	e.patterns.Insert(pat)
}

// runNaive is the baseline: enumerate the full product of discovered hole
// actions, growing the candidate vector as holes are discovered (appended
// least-significant with the same default, index 0, the run itself used).
func (e *engine) runNaive() error {
	var assign []int
	for {
		if !e.admit() {
			return nil
		}
		e.dispatch(assign, e.cfg.MCWorkers)
		if e.stop.Load() {
			return nil
		}
		holes := e.reg.holes()
		for len(assign) < len(holes) {
			assign = append(assign, 0)
		}
		if len(assign) == 0 {
			return nil // complete model: single run
		}
		if !incr(assign, radices(holes, len(assign))) {
			return nil
		}
	}
}

// runPrune is the paper's synthesis procedure: an initial empty-candidate
// run discovers the first holes; then rounds of exhaustive enumeration over
// the non-wildcard prefix, with the prefix expanding to cover newly
// discovered holes only after the current prefix is exhausted ("once a hole
// has been used as a non-wildcard, it cannot be a wildcard again").
func (e *engine) runPrune() (rounds int, err error) {
	if e.admit() {
		// The empty candidate is a single dispatch with no cross-candidate
		// work to parallelize; when the caller opted into intra-check
		// parallelism the whole Workers×MCWorkers budget goes to it.
		mcw := 1
		if e.cfg.MCWorkers > 1 {
			_, mcw = SplitParallelism(e.cfg.Workers*e.cfg.MCWorkers, 1)
		}
		e.dispatch(nil, mcw)
	}
	e.lastK = -1
	for !e.stop.Load() {
		k := e.reg.count()
		if k == e.lastK {
			break // no new holes discovered in the last round
		}
		if k == 0 {
			break // complete model (or inherently faulty): nothing to enumerate
		}
		holes := e.reg.holes()
		sizes := radices(holes, k)
		e.lastK = k
		rounds++
		e.cfg.Obs.SetGauge(obs.GRound, uint64(rounds))
		e.cfg.Obs.SetGauge(obs.GCandidates, spaceSize(sizes))
		if e.observing() {
			e.emit(obs.Event{
				Kind:       obs.EventRound,
				Round:      rounds,
				Holes:      k,
				Patterns:   e.patterns.Len(),
				Candidates: spaceSize(sizes),
				Text: fmt.Sprintf("round %d: enumerating %d holes (%d combinations, %d patterns)",
					rounds, k, spaceSize(sizes), e.patterns.Len()),
			})
		}
		e.enumerateRound(sizes)
	}
	return rounds, nil
}

// enumerateRound exhausts all combinations over the prefix sizes, splitting
// the Workers×MCWorkers budget between cross-candidate workers and
// per-dispatch exploration workers (see SplitParallelism).
func (e *engine) enumerateRound(sizes []int) {
	total := spaceSize(sizes)
	if total >= math.MaxUint64/2 {
		// The candidate space does not fit in index arithmetic (spaceSize
		// saturates and stride products would wrap). Fall back to the
		// index-free odometer: such spaces are only traversable at all
		// because pruning skips almost everything, so the lost parallel
		// chunking is irrelevant next to correctness.
		e.enumerateOdometer(sizes, e.cfg.MCWorkers)
		return
	}
	// Budget flows one way only, and only for callers that opted into
	// intra-check parallelism (MCWorkers > 1): idle cross-candidate slots
	// (rounds with fewer candidates than Workers) become intra-check
	// workers, but MCWorkers budget never inflates the cross-candidate
	// pool — Workers=1 keeps the deterministic dispatch order that
	// OnEvaluate and the Figure 2 regeneration rely on, and MCWorkers<=1
	// keeps every dispatch on the sequential driver as documented.
	workers, mcw := e.cfg.Workers, 1
	if uint64(workers) > total {
		workers = int(total)
	}
	if e.cfg.MCWorkers > 1 {
		workers, mcw = SplitParallelism(e.cfg.Workers*e.cfg.MCWorkers, workers)
	}
	if workers <= 1 {
		e.enumerateRange(0, total, sizes, mcw)
		return
	}
	var cursor atomic.Uint64
	chunk := total / uint64(workers*16)
	if chunk == 0 {
		chunk = 1
	}
	if chunk > 65536 {
		chunk = 65536
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !e.stop.Load() {
				hi := cursor.Add(chunk)
				lo := hi - chunk
				if lo >= total {
					return
				}
				if hi > total {
					hi = total
				}
				e.enumerateRange(lo, hi, sizes, mcw)
			}
		}()
	}
	wg.Wait()
}

// SplitParallelism splits a total core budget between cross-candidate
// synthesis workers and per-dispatch model-checker exploration workers.
// Cross-candidate parallelism is embarrassingly parallel (independent
// model-checker runs) and is filled first; only when the pending candidate
// count cannot occupy the budget does the remainder flow to intra-check
// exploration. The returned pair satisfies workers*mcWorkers <= budget,
// workers >= 1, mcWorkers >= 1.
func SplitParallelism(budget, pendingCandidates int) (workers, mcWorkers int) {
	if budget < 1 {
		budget = 1
	}
	if pendingCandidates < 1 {
		pendingCandidates = 1
	}
	workers = budget
	if workers > pendingCandidates {
		workers = pendingCandidates
	}
	return workers, budget / workers
}

// enumerateOdometer walks the whole prefix space without numeric indices,
// skipping pruned subtrees by direct digit advancement. Sequential; used
// only when the space size overflows uint64.
func (e *engine) enumerateOdometer(sizes []int, mcWorkers int) {
	assign := make([]int, len(sizes))
	for !e.stop.Load() {
		if matched, d := e.patterns.Match(assign); matched {
			e.skipped.Add(1) // subtree sizes are uncountable here; count events
			e.cfg.Obs.Count(obs.CSkipped, 1)
			if d < 0 {
				return // empty pattern: everything is pruned
			}
			if !advanceAt(assign, sizes, d) {
				return
			}
			continue
		}
		if !e.admit() {
			return
		}
		e.dispatch(assign, mcWorkers)
		if !incr(assign, sizes) {
			return
		}
	}
}

// enumerateRange evaluates candidate indices [lo, hi), skipping pruned
// subtrees.
func (e *engine) enumerateRange(lo, hi uint64, sizes []int, mcWorkers int) {
	assign := make([]int, len(sizes))
	for idx := lo; idx < hi && !e.stop.Load(); {
		decode(idx, sizes, assign)
		if matched, d := e.patterns.Match(assign); matched {
			next := subtreeEnd(idx, sizes, d)
			if next > hi {
				next = hi
			}
			e.skipped.Add(int64(next - idx))
			e.cfg.Obs.Count(obs.CSkipped, next-idx)
			idx = next
			continue
		}
		if !e.admit() {
			return
		}
		e.dispatch(assign, mcWorkers)
		idx++
	}
}

func (e *engine) result(rounds int, elapsed time.Duration) *Result {
	holes := e.reg.holes()
	r := &Result{
		HoleNames:   make([]string, len(holes)),
		HoleActions: make([][]string, len(holes)),
	}
	for i, h := range holes {
		r.HoleNames[i] = h.name
		r.HoleActions[i] = append([]string(nil), h.actions...)
	}
	for _, s := range e.solutions {
		r.Solutions = append(r.Solutions, s)
	}
	sort.Slice(r.Solutions, func(i, j int) bool {
		a, b := r.Solutions[i].Assign, r.Solutions[j].Assign
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	space := spaceSize(radices(holes, len(holes)))
	if e.cfg.Mode == ModePrune {
		space = spaceSizePlusWildcard(holes)
	}
	r.Stats = Stats{
		Holes:              len(holes),
		CandidateSpace:     space,
		Evaluated:          e.evaluated.Load(),
		Skipped:            e.skipped.Load(),
		Patterns:           e.patterns.Len(),
		Successes:          e.successes.Load(),
		Failures:           e.failures.Load(),
		Unknowns:           e.unknowns.Load(),
		TotalVisitedStates: e.totalSeen.Load(),
		Rounds:             rounds,
		Truncated:          e.stop.Load() && e.fatal.Load() == nil && !e.aborted.Load() && e.cfg.MaxEvaluations > 0,
		Panicked:           e.panicked.Load(),
		Aborted:            e.aborted.Load(),
		Elapsed:            elapsed,
		Space:              e.space,
	}
	if p := e.abortCause.Load(); p != nil {
		r.Stats.AbortCause = *p
	}
	return r
}
