package core_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

// TestOnEvaluateSequentialOrder: with one worker the event stream is the
// exact evaluation order, candidates never repeat, and counters match.
func TestOnEvaluateSequentialOrder(t *testing.T) {
	var events []core.Event
	res, err := core.Synthesize(toy.Figure2(), core.Config{
		Mode:       core.ModePrune,
		OnEvaluate: func(ev core.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != res.Stats.Evaluated {
		t.Fatalf("events = %d, evaluated = %d", len(events), res.Stats.Evaluated)
	}
	seen := map[string]bool{}
	var succ, fail, unk int64
	for _, ev := range events {
		k := strings.Trim(strings.Join(strings.Fields(
			strings.ReplaceAll(strings.Trim(string(rune(len(ev.Assign)))+" ", " "), "\x00", "")), ","), " ")
		_ = k // candidate identity below
		key := ""
		for _, a := range ev.Assign {
			key += string(rune('0' + a))
		}
		key += ":" + string(rune('0'+len(ev.Assign)))
		if seen[key] {
			t.Errorf("candidate %v evaluated twice", ev.Assign)
		}
		seen[key] = true
		switch ev.Verdict {
		case mc.Success:
			succ++
		case mc.Failure:
			fail++
		case mc.Unknown:
			unk++
		}
	}
	if succ != res.Stats.Successes || fail != res.Stats.Failures || unk != res.Stats.Unknowns {
		t.Errorf("verdict counters drift: events %d/%d/%d vs stats %d/%d/%d",
			succ, fail, unk, res.Stats.Successes, res.Stats.Failures, res.Stats.Unknowns)
	}
	// Holes and patterns are monotone along the stream.
	for i := 1; i < len(events); i++ {
		if events[i].Holes < events[i-1].Holes || events[i].Patterns < events[i-1].Patterns {
			t.Fatalf("non-monotone discovery at event %d", i)
		}
	}
}

// TestOnEvaluateParallelSafe: concurrent events with a mutex-protected
// callback; total must match.
func TestOnEvaluateParallelSafe(t *testing.T) {
	var mu sync.Mutex
	count := 0
	res, err := core.Synthesize(toy.Chain(6, 3), core.Config{
		Mode:    core.ModePrune,
		Workers: 4,
		OnEvaluate: func(core.Event) {
			mu.Lock()
			count++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(count) != res.Stats.Evaluated {
		t.Errorf("events %d vs evaluated %d", count, res.Stats.Evaluated)
	}
}

// TestMaxEvaluationsParallel: the cap holds under concurrency.
func TestMaxEvaluationsParallel(t *testing.T) {
	res, err := core.Synthesize(toy.Chain(8, 3), core.Config{
		Mode: core.ModePrune, Workers: 4, MaxEvaluations: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluated > 7 {
		t.Errorf("evaluated %d > cap 7", res.Stats.Evaluated)
	}
	if !res.Stats.Truncated {
		t.Error("Truncated not set")
	}
}

// TestMCStateCapDuringSynthesis: per-run caps downgrade runs to unknown;
// synthesis completes without false solutions.
func TestMCStateCapDuringSynthesis(t *testing.T) {
	res, err := core.Synthesize(toy.Chain(4, 2), core.Config{
		Mode: core.ModePrune,
		MC:   mc.Options{MaxStates: 2}, // every run gets capped
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("capped runs must not produce solutions; got %d", len(res.Solutions))
	}
	if res.Stats.Unknowns == 0 {
		t.Error("expected unknown verdicts from capped runs")
	}
}

// hostileSystem redeclares a hole with a different arity mid-search: the
// engine must surface a hard error, not mislabel candidates.
type hostileSystem struct{ toy.Graph }

func (h *hostileSystem) Transitions(s ts.State) []ts.Transition {
	return []ts.Transition{{
		Name: "bad",
		Fire: func(env *ts.Env) (ts.State, error) {
			k := s.Key()
			acts := []string{"a", "b"}
			if k != "n0" {
				acts = []string{"a"}
			}
			if _, err := env.Choose("h", acts); err != nil {
				return nil, err
			}
			return s.Clone(), nil
		},
	}}
}

// AppendTransitions keeps the override effective: the embedded toy.Graph
// implements ts.TransitionAppender, and the checker prefers that path, so a
// wrapper overriding Transitions must override the appender too (see the
// ts.TransitionAppender docs).
func (h *hostileSystem) AppendTransitions(dst []ts.Transition, s ts.State) []ts.Transition {
	return append(dst, h.Transitions(s)...)
}

func TestInconsistentHoleArityFails(t *testing.T) {
	h := &hostileSystem{Graph: toy.Graph{
		SysName: "hostile", Init: []int{0, 1},
		Nodes: []toy.Node{{}, {}},
	}}
	_, err := core.Synthesize(h, core.Config{Mode: core.ModePrune})
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Fatalf("err = %v, want redeclaration error", err)
	}
}

// TestManyHolesBeyondMaskWidth: >64 holes must still synthesize correctly
// (usage masks saturate; trace-generalized falls back to full-vector).
func TestManyHolesBeyondMaskWidth(t *testing.T) {
	g := toy.Chain(70, 2)
	for _, style := range []core.PruneStyle{core.PruneFullVector, core.PruneTraceGeneralized} {
		res, err := core.Synthesize(g, core.Config{Mode: core.ModePrune, PruneStyle: style})
		if err != nil {
			t.Fatalf("style %v: %v", style, err)
		}
		if len(res.Solutions) != 1 {
			t.Fatalf("style %v: %d solutions, want 1", style, len(res.Solutions))
		}
		if res.Stats.Holes != 70 {
			t.Errorf("style %v: holes = %d", style, res.Stats.Holes)
		}
	}
}

// TestDeterministicSequentialRuns: same config twice gives identical stats
// and solutions (no map-iteration nondeterminism leaking out).
func TestDeterministicSequentialRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := toy.Random(rng, 5)
	a, err := core.Synthesize(g, core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Synthesize(g, core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Evaluated != b.Stats.Evaluated || a.Stats.Patterns != b.Stats.Patterns ||
		len(a.Solutions) != len(b.Solutions) {
		t.Errorf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestSolutionAssignCopied: mutating a returned solution must not corrupt
// engine internals (defensive copying).
func TestSolutionAssignCopied(t *testing.T) {
	res, err := core.Synthesize(toy.Figure2(), core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	res.Solutions[0].Assign[0] = 99
	if d := res.Describe(0); !strings.Contains(d, "!") {
		// Describe renders out-of-range as "!"; the point is no panic and
		// no aliasing with HoleActions.
		t.Logf("describe after mutation: %s", d)
	}
}

// TestBitstateRejectedForSynthesis pins the exactness requirement of the
// synthesis loop: the lossy bitstate visited backend is refused outright,
// because an omitted state can surface as a spuriously unreached goal and
// insert an unsound pruning pattern. Exact backends — flat, map, and the
// disk-spilling tier, which bounds RAM without giving up exactness — all
// work and agree. (Figure2 dispatches explore ≤5 states, below even the
// floor budget's flush threshold, so this covers spill's acceptance and
// RAM-tier path; the disk-resident path is exercised by the
// internal/visited suite and TestSpillStressBoundedRAM.)
func TestBitstateRejectedForSynthesis(t *testing.T) {
	_, err := core.Synthesize(toy.Figure2(), core.Config{
		Mode: core.ModePrune,
		MC:   mc.Options{Visited: visited.Bitstate},
	})
	if err == nil || !strings.Contains(err.Error(), "lossy") {
		t.Fatalf("bitstate dispatch backend: err = %v, want lossy-backend rejection", err)
	}

	var counts []int64
	for _, kind := range []visited.Kind{visited.Flat, visited.Map, visited.Spill} {
		res, err := core.Synthesize(toy.Figure2(), core.Config{
			Mode: core.ModePrune,
			MC:   mc.Options{Visited: kind, SpillMem: 1, SpillDir: t.TempDir()},
		})
		if err != nil {
			t.Fatalf("visited=%v: %v", kind, err)
		}
		if len(res.Solutions) != 1 || !res.Solutions[0].Reverified {
			t.Fatalf("visited=%v: solutions = %+v", kind, res.Solutions)
		}
		counts = append(counts, res.Stats.Evaluated)
	}
	for _, n := range counts[1:] {
		if n != counts[0] {
			t.Errorf("evaluated: %d vs flat's %d — exact backends must search identically", n, counts[0])
		}
	}
}
