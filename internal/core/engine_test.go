package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/toy"
)

// TestFigure2Pruning reproduces the paper's Figure 2 worked example: with
// candidate pruning only 10 candidates are evaluated, versus 24 with naive
// enumeration, and exactly one solution exists: ⟨1@B, 2@A, 3@B, 4@B⟩.
func TestFigure2Pruning(t *testing.T) {
	g := toy.Figure2()
	res, err := core.Synthesize(g, core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Stats.Evaluated, int64(10); got != want {
		t.Errorf("evaluated = %d, want %d (paper Fig. 2)", got, want)
	}
	if got, want := res.Stats.Holes, 4; got != want {
		t.Errorf("holes = %d, want %d", got, want)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d, want 1: %+v", len(res.Solutions), res.Solutions)
	}
	want := []int{1, 0, 1, 1} // B, A, B, B
	got := res.Solutions[0].Assign
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("solution = %v (%s), want %v", got, res.Describe(0), want)
		}
	}
	// The paper's run table inserts 5 pruning patterns (runs 2, 4, 6, 7, 9).
	if got, want := res.Stats.Patterns, 5; got != want {
		t.Errorf("patterns = %d, want %d", got, want)
	}
	// Nominal candidate space with wildcards: 4·3·3·3 = 108.
	if got, want := res.Stats.CandidateSpace, uint64(108); got != want {
		t.Errorf("candidate space = %d, want %d", got, want)
	}
}

// TestFigure2Naive checks the naive baseline on Figure 2. The paper's "24
// candidates would have been evaluated" is the nominal 3·2·2·2 product,
// which we report as CandidateSpace; our naive baseline retains lazy hole
// discovery (holes never reached under already-enumerated prefixes are not
// re-enumerated), so it dispatches 16 of the 24. On the MSI case study all
// holes are discovered in the first run and the two notions coincide.
func TestFigure2Naive(t *testing.T) {
	g := toy.Figure2()
	res, err := core.Synthesize(g, core.Config{Mode: core.ModeNaive})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Stats.Evaluated, int64(16); got != want {
		t.Errorf("evaluated = %d, want %d", got, want)
	}
	if got, want := res.Stats.CandidateSpace, uint64(24); got != want {
		t.Errorf("candidate space = %d, want %d (paper's naive count)", got, want)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d, want 1", len(res.Solutions))
	}
}

// TestFigure2Parallel checks that parallel pruning synthesis finds the same
// solution set.
func TestFigure2Parallel(t *testing.T) {
	g := toy.Figure2()
	res, err := core.Synthesize(g, core.Config{Mode: core.ModePrune, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0].Assign[0] != 1 {
		t.Fatalf("parallel solutions = %+v, want the unique ⟨B,A,B,B⟩", res.Solutions)
	}
}

// bruteForce computes the ground-truth success set of a toy graph by
// enumerating every total assignment of the graph's holes and simulating
// reachability directly (no model checker, no pruning): a candidate succeeds
// iff no bad node is reachable and all goal nodes are reachable.
func bruteForce(g *toy.Graph) (holes []string, arity map[string]int, successes []map[string]int) {
	arity = map[string]int{}
	for _, n := range g.Nodes {
		if n.Hole != "" {
			if _, ok := arity[n.Hole]; !ok {
				holes = append(holes, n.Hole)
			}
			arity[n.Hole] = len(n.Acts)
		}
	}
	assign := map[string]int{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(holes) {
			if simulate(g, assign) {
				cp := map[string]int{}
				for k, v := range assign {
					cp[k] = v
				}
				successes = append(successes, cp)
			}
			return
		}
		for a := 0; a < arity[holes[i]]; a++ {
			assign[holes[i]] = a
			rec(i + 1)
		}
	}
	rec(0)
	return holes, arity, successes
}

// simulate runs plain reachability for one total assignment.
func simulate(g *toy.Graph, assign map[string]int) bool {
	seen := make([]bool, len(g.Nodes))
	stack := append([]int(nil), g.Init...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		n := &g.Nodes[v]
		if n.Bad {
			return false
		}
		if n.Hole != "" {
			stack = append(stack, n.To[assign[n.Hole]])
		}
		stack = append(stack, n.Plain...)
	}
	for i := range g.Nodes {
		if g.Nodes[i].Goal && !seen[i] {
			return false
		}
	}
	return true
}

// checkAgainstBruteForce verifies soundness and completeness of a synthesis
// result against ground truth:
//
//   - soundness: every total assignment consistent with a reported solution
//     is a ground-truth success;
//   - completeness: every ground-truth success is consistent with some
//     reported solution.
func checkAgainstBruteForce(t *testing.T, g *toy.Graph, res *core.Result, label string) {
	t.Helper()
	holes, arity, successes := bruteForce(g)

	consistent := func(total map[string]int, sol core.Solution) bool {
		for i, a := range sol.Assign {
			if a == core.Wildcard {
				continue
			}
			if total[res.HoleNames[i]] != a {
				return false
			}
		}
		return true
	}

	// Completeness.
	for _, suc := range successes {
		found := false
		for _, sol := range res.Solutions {
			if consistent(suc, sol) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: ground-truth success %v not covered by any reported solution", label, suc)
		}
	}

	// Soundness: enumerate all totals consistent with each solution.
	total := map[string]int{}
	var rec func(i int, sol core.Solution) bool
	rec = func(i int, sol core.Solution) bool {
		if i == len(holes) {
			return simulate(g, total)
		}
		h := holes[i]
		fixed := -1
		for j, name := range res.HoleNames {
			if name == h && j < len(sol.Assign) && sol.Assign[j] != core.Wildcard {
				fixed = sol.Assign[j]
				break
			}
		}
		if fixed >= 0 {
			total[h] = fixed
			return rec(i+1, sol)
		}
		for a := 0; a < arity[h]; a++ {
			total[h] = a
			if !rec(i+1, sol) {
				return false
			}
		}
		return true
	}
	for si, sol := range res.Solutions {
		if !rec(0, sol) {
			t.Errorf("%s: reported solution %d (%s) has a failing completion", label, si, res.Describe(si))
		}
	}
}

// TestRandomSystemsAgainstBruteForce is the core property test: on seeded
// random systems, pruned (sequential and parallel, both prune styles) and
// naive synthesis must all agree exactly with brute-force ground truth.
func TestRandomSystemsAgainstBruteForce(t *testing.T) {
	configs := []core.Config{
		{Mode: core.ModeNaive},
		{Mode: core.ModePrune},
		{Mode: core.ModePrune, PruneStyle: core.PruneTraceGeneralized},
		{Mode: core.ModePrune, Workers: 4},
		{Mode: core.ModePrune, PruneStyle: core.PruneTraceGeneralized, Workers: 4},
	}
	n := 60
	if testing.Short() {
		n = 15
	}
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := toy.Random(rng, 2+rng.Intn(5))
		for _, cfg := range configs {
			label := fmt.Sprintf("seed=%d mode=%v style=%v workers=%d", seed, cfg.Mode, cfg.PruneStyle, cfg.Workers)
			res, err := core.Synthesize(g, cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			checkAgainstBruteForce(t, g, res, label)
		}
	}
}

// TestPruningWinsOnFailureHeavyChains checks the headline claim on its
// natural domain: in failure-heavy problems (one viable action per hole, as
// in faulty distributed protocols, where a few transitions suffice to reach
// an error), pruning evaluates exponentially fewer candidates than naive
// enumeration. Pruning costs O(holes·arity) runs; naive costs arity^holes.
func TestPruningWinsOnFailureHeavyChains(t *testing.T) {
	for _, tc := range []struct{ holes, arity int }{
		{4, 2}, {4, 3}, {6, 2}, {6, 3}, {8, 2},
	} {
		g := toy.Chain(tc.holes, tc.arity)
		naive, err := core.Synthesize(g, core.Config{Mode: core.ModeNaive})
		if err != nil {
			t.Fatal(err)
		}
		prune, err := core.Synthesize(g, core.Config{Mode: core.ModePrune})
		if err != nil {
			t.Fatal(err)
		}
		// Lazy discovery makes even the naive baseline linear on chains
		// (holes appear one at a time): 1 empty run + (arity-1) failures
		// per hole + the final success per hole boundary.
		wantNaive := int64(1 + tc.holes*(tc.arity-1))
		if naive.Stats.Evaluated != wantNaive {
			t.Errorf("chain %dx%d: naive evaluated %d, want %d", tc.holes, tc.arity, naive.Stats.Evaluated, wantNaive)
		}
		// The nominal space is the full product the paper's naive scheme
		// counts.
		wantSpace := uint64(1)
		for i := 0; i < tc.holes; i++ {
			wantSpace *= uint64(tc.arity)
		}
		if naive.Stats.CandidateSpace != wantSpace {
			t.Errorf("chain %dx%d: naive space %d, want %d", tc.holes, tc.arity, naive.Stats.CandidateSpace, wantSpace)
		}
		// Pruning: the initial empty run, then per round at most `arity`
		// new evaluations (failed prefixes are pattern-pruned).
		bound := int64(1 + tc.holes*tc.arity)
		if prune.Stats.Evaluated > bound {
			t.Errorf("chain %dx%d: prune evaluated %d > bound %d", tc.holes, tc.arity, prune.Stats.Evaluated, bound)
		}
		if len(naive.Solutions) != 1 || len(prune.Solutions) != 1 {
			t.Errorf("chain %dx%d: solutions naive=%d prune=%d, want 1/1", tc.holes, tc.arity, len(naive.Solutions), len(prune.Solutions))
		}
	}
}

// TestTruncation checks MaxEvaluations stops synthesis and flags the result.
func TestTruncation(t *testing.T) {
	g := toy.Figure2()
	res, err := core.Synthesize(g, core.Config{Mode: core.ModeNaive, MaxEvaluations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Error("expected Truncated")
	}
	if res.Stats.Evaluated > 5 {
		t.Errorf("evaluated %d > cap 5", res.Stats.Evaluated)
	}
}

// TestNaiveRejectsWorkers checks the naive/parallel validation.
func TestNaiveRejectsWorkers(t *testing.T) {
	_, err := core.Synthesize(toy.Figure2(), core.Config{Mode: core.ModeNaive, Workers: 2})
	if err == nil {
		t.Fatal("want error for naive+workers")
	}
}

// TestConfigRejectsManagedMCFields checks Env/Usage/RecordTrace are refused.
func TestConfigRejectsManagedMCFields(t *testing.T) {
	_, err := core.Synthesize(toy.Figure2(), core.Config{MC: mc.Options{RecordTrace: true}})
	if err == nil {
		t.Fatal("want error for RecordTrace in Config.MC")
	}
}

// TestInherentlyFaultySkeleton: a skeleton whose empty candidate already
// fails has no solutions and stops quickly.
func TestInherentlyFaultySkeleton(t *testing.T) {
	g := &toy.Graph{
		SysName: "faulty",
		Init:    []int{0},
		Nodes: []toy.Node{
			{Plain: []int{1}},
			{Bad: true},
		},
	}
	res, err := core.Synthesize(g, core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("solutions = %d, want 0", len(res.Solutions))
	}
	if res.Stats.Evaluated != 1 {
		t.Errorf("evaluated = %d, want 1", res.Stats.Evaluated)
	}
}

// TestCompleteModel: a hole-free correct model yields one (empty) solution.
func TestCompleteModel(t *testing.T) {
	g := &toy.Graph{
		SysName: "complete",
		Init:    []int{0},
		Nodes: []toy.Node{
			{Plain: []int{1}},
			{},
		},
	}
	for _, mode := range []core.Mode{core.ModePrune, core.ModeNaive} {
		res, err := core.Synthesize(g, core.Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Solutions) != 1 || len(res.Solutions[0].Assign) != 0 {
			t.Errorf("mode %v: want one empty solution, got %+v", mode, res.Solutions)
		}
	}
}
