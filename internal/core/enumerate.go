package core

import "math"

// The enumerator treats a candidate configuration as a mixed-radix number
// over the prefix of non-wildcard holes, with the first-discovered hole as
// the most significant digit. This matches the paper's worked example
// (Fig. 2): hole 1 advances slowest, newly discovered holes are appended as
// least-significant digits.

// radices returns the per-hole action counts for the first k discovered
// holes.
func radices(holes []*holeInfo, k int) []int {
	sizes := make([]int, k)
	for i := 0; i < k; i++ {
		sizes[i] = len(holes[i].actions)
	}
	return sizes
}

// spaceSize returns the product of sizes, saturating at math.MaxUint64.
func spaceSize(sizes []int) uint64 {
	total := uint64(1)
	for _, s := range sizes {
		if s == 0 {
			return 0
		}
		us := uint64(s)
		if total > math.MaxUint64/us {
			return math.MaxUint64
		}
		total *= us
	}
	return total
}

// spaceSizePlusWildcard returns the product of (size+1) over all holes: the
// nominal candidate space including the wildcard action, which is what the
// paper's Table I reports in the "Candidates" column for pruning runs.
func spaceSizePlusWildcard(holes []*holeInfo) uint64 {
	sizes := make([]int, len(holes))
	for i, h := range holes {
		sizes[i] = len(h.actions) + 1
	}
	return spaceSize(sizes)
}

// decode writes the mixed-radix digits of idx into assign (len(sizes)
// digits, most significant first).
func decode(idx uint64, sizes []int, assign []int) {
	for i := len(sizes) - 1; i >= 0; i-- {
		s := uint64(sizes[i])
		assign[i] = int(idx % s)
		idx /= s
	}
}

// stride returns the size of the subtree below digit position d: the number
// of consecutive indices sharing digits 0..d. For d == -1 (a match at the
// root, i.e. an empty pattern) the stride is the whole space.
func stride(sizes []int, d int) uint64 {
	st := uint64(1)
	for i := d + 1; i < len(sizes); i++ {
		st *= uint64(sizes[i])
	}
	return st
}

// subtreeEnd returns the first index after idx whose digit at position d
// differs, i.e. the end of the pruned subtree when a pattern match became
// certain at digit d.
func subtreeEnd(idx uint64, sizes []int, d int) uint64 {
	st := stride(sizes, d)
	return (idx/st + 1) * st
}

// incr advances assign (mixed-radix, least-significant digit last) by one.
// It reports false when the odometer wraps (enumeration complete). sizes
// must have the same length as assign.
func incr(assign []int, sizes []int) bool {
	return advanceAt(assign, sizes, len(assign)-1)
}

// advanceAt zeroes the digits below position d and increments at d (with
// carry towards more significant digits): the odometer equivalent of
// subtreeEnd, usable when the candidate space does not fit in a uint64. It
// reports false when the odometer wraps.
func advanceAt(assign []int, sizes []int, d int) bool {
	for i := d + 1; i < len(assign); i++ {
		assign[i] = 0
	}
	for i := d; i >= 0; i-- {
		assign[i]++
		if assign[i] < sizes[i] {
			return true
		}
		assign[i] = 0
	}
	return false
}
