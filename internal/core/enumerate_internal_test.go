package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeIncrAgree: decoding consecutive indices equals repeated
// odometer increments (hole 0 most significant, as in Figure 2).
func TestDecodeIncrAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(4)
		}
		total := spaceSize(sizes)
		odo := make([]int, n)
		dec := make([]int, n)
		for idx := uint64(0); idx < total; idx++ {
			decode(idx, sizes, dec)
			for i := range odo {
				if odo[i] != dec[i] {
					return false
				}
			}
			if !incr(odo, sizes) && idx != total-1 {
				return false // wrapped early
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSubtreeEnd checks skip arithmetic: the next index after a match at
// depth d is the first one whose digits 0..d differ.
func TestSubtreeEnd(t *testing.T) {
	sizes := []int{3, 2, 4}
	// idx 13 = (1, 1, 1); subtree at depth 1 covers (1,1,*): ends at 16.
	if got := subtreeEnd(13, sizes, 1); got != 16 {
		t.Errorf("subtreeEnd(13, d=1) = %d, want 16", got)
	}
	// depth 0: (1,*,*) ends at 16 too (1*8..2*8).
	if got := subtreeEnd(13, sizes, 0); got != 16 {
		t.Errorf("subtreeEnd(13, d=0) = %d, want 16", got)
	}
	// depth -1 (root match): everything is pruned.
	if got := subtreeEnd(13, sizes, -1); got != 24 {
		t.Errorf("subtreeEnd(13, d=-1) = %d, want 24", got)
	}
	// depth 2 (deepest digit): stride 1.
	if got := subtreeEnd(13, sizes, 2); got != 14 {
		t.Errorf("subtreeEnd(13, d=2) = %d, want 14", got)
	}
}

// TestSubtreeEndProperty: every index in [idx, subtreeEnd) shares digits
// 0..d with idx, and subtreeEnd itself does not.
func TestSubtreeEndProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(3)
		}
		total := spaceSize(sizes)
		idx := uint64(rng.Int63n(int64(total)))
		d := rng.Intn(n)
		end := subtreeEnd(idx, sizes, d)
		base := make([]int, n)
		decode(idx, sizes, base)
		cur := make([]int, n)
		for j := idx; j < end && j < total; j++ {
			decode(j, sizes, cur)
			for i := 0; i <= d; i++ {
				if cur[i] != base[i] {
					return false
				}
			}
		}
		if end < total {
			decode(end, sizes, cur)
			same := true
			for i := 0; i <= d; i++ {
				if cur[i] != base[i] {
					same = false
				}
			}
			if same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceSizeSaturation checks overflow saturates rather than wrapping.
func TestSpaceSizeSaturation(t *testing.T) {
	sizes := make([]int, 20)
	for i := range sizes {
		sizes[i] = 1 << 10
	}
	if got := spaceSize(sizes); got != math.MaxUint64 {
		t.Errorf("spaceSize = %d, want saturation", got)
	}
	if got := spaceSize([]int{3, 0, 5}); got != 0 {
		t.Errorf("spaceSize with empty dimension = %d, want 0", got)
	}
	if got := spaceSize(nil); got != 1 {
		t.Errorf("spaceSize(nil) = %d, want 1 (empty product)", got)
	}
}

// TestSpacePlusWildcard pins the paper's Table I candidate arithmetic:
// MSI-small 192²·32 and MSI-large 192²·32³.
func TestSpacePlusWildcard(t *testing.T) {
	mk := func(sizes ...int) []*holeInfo {
		hs := make([]*holeInfo, len(sizes))
		for i, s := range sizes {
			hs[i] = &holeInfo{actions: make([]string, s)}
		}
		return hs
	}
	// MSI-small: 2 dir rules (5,7,3) + 1 cache rule (3,7).
	small := mk(5, 7, 3, 5, 7, 3, 3, 7)
	if got := spaceSizePlusWildcard(small); got != 1179648 {
		t.Errorf("small wildcard space = %d, want 1179648", got)
	}
	if got := spaceSize(radices(small, len(small))); got != 231525 {
		t.Errorf("small naive space = %d, want 231525", got)
	}
	// MSI-large: + 2 cache rules.
	large := mk(5, 7, 3, 5, 7, 3, 3, 7, 3, 7, 3, 7)
	if got := spaceSizePlusWildcard(large); got != 1207959552 {
		t.Errorf("large wildcard space = %d, want 1207959552", got)
	}
	if got := spaceSize(radices(large, len(large))); got != 102102525 {
		t.Errorf("large naive space = %d, want 102102525", got)
	}
}
