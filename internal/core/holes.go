// Package core implements the paper's primary contribution: explicit-state
// synthesis of concurrent systems with lazy hole discovery and candidate
// pruning.
//
// Given a protocol skeleton (a ts.System whose transition actions call
// Env.Choose at each hole) and, per hole, a designer-provided library of
// candidate actions, the engine enumerates candidate configurations — one
// action per hole — and dispatches each completed candidate to the embedded
// explicit-state model checker (internal/mc). Holes are discovered lazily,
// in the order the model checker first reaches them, so holes unreachable
// under a given skeleton never enter the search space.
//
// With pruning enabled (the paper's key optimization), undiscovered and
// not-yet-enumerated holes carry a wildcard default action that aborts the
// execution branch reaching them; a run that fails therefore owes its
// minimal error trace only to the bound holes, and the failing candidate
// configuration becomes a pruning pattern that rules out every extension
// without further model checking.
//
// Synthesis dispatches run the model checker traceless (RecordTrace off):
// pruning needs only verdicts and per-firing hole-usage masks, never the
// counterexample states themselves, so each of the (potentially millions
// of) runs explores in the fingerprint-only memory regime. After the
// search, every surviving solution is re-checked once with trace recording
// on and marked Solution.Reverified — the full-bookkeeping confirmation
// that a 64-bit fingerprint collision during the search did not merge
// states under a wrong candidate. Stats.Space aggregates the memory
// profiles of all dispatches.
//
// Parallelism is budgeted as Workers×MCWorkers (see Config and
// SplitParallelism): cross-candidate workers each run independent
// model-checker dispatches and fill first; intra-check exploration workers
// (the checker's own Options.Workers) absorb the idle share when a round
// has fewer candidates than workers.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Wildcard is the assignment value denoting the wildcard ("?") action.
const Wildcard = -1

// holeInfo describes one discovered hole.
type holeInfo struct {
	name    string
	actions []string
	index   int // discovery order, 0-based
}

// registrySnapshot is an immutable view of the discovered holes; the common
// case (looking up an already-discovered hole) reads it without locking, as
// the paper's parallel-synthesis section prescribes.
type registrySnapshot struct {
	byName map[string]*holeInfo
	order  []*holeInfo
}

// registry is the shared, thread-safe hole registry ("global candidate
// vector" in the paper: it registers newly discovered holes during parallel
// evaluation; enumeration ranges are derived from it between rounds).
type registry struct {
	snap atomic.Pointer[registrySnapshot]
	mu   sync.Mutex // serializes discovery (copy-on-write publish)
}

func newRegistry() *registry {
	r := &registry{}
	r.snap.Store(&registrySnapshot{byName: map[string]*holeInfo{}})
	return r
}

// lookup returns the hole by name, or nil. Lock-free.
func (r *registry) lookup(name string) *holeInfo {
	return r.snap.Load().byName[name]
}

// discover registers a hole on first encounter and returns it. Concurrent
// discoveries of the same hole converge on one entry. The action list is
// validated against prior discoveries: a hole's arity is fixed by the model.
func (r *registry) discover(name string, actions []string) (*holeInfo, error) {
	if h := r.lookup(name); h != nil {
		if len(h.actions) != len(actions) {
			return nil, fmt.Errorf("core: hole %q redeclared with %d actions (was %d)", name, len(actions), len(h.actions))
		}
		return h, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	if h, ok := old.byName[name]; ok { // raced with another discoverer
		if len(h.actions) != len(actions) {
			return nil, fmt.Errorf("core: hole %q redeclared with %d actions (was %d)", name, len(actions), len(h.actions))
		}
		return h, nil
	}
	if len(actions) == 0 {
		return nil, fmt.Errorf("core: hole %q declared with no actions", name)
	}
	h := &holeInfo{name: name, actions: append([]string(nil), actions...), index: len(old.order)}
	nb := make(map[string]*holeInfo, len(old.byName)+1)
	for k, v := range old.byName {
		nb[k] = v
	}
	nb[name] = h
	no := make([]*holeInfo, len(old.order), len(old.order)+1)
	copy(no, old.order)
	no = append(no, h)
	r.snap.Store(&registrySnapshot{byName: nb, order: no})
	return h, nil
}

// holes returns the current discovery-ordered hole list (immutable snapshot).
func (r *registry) holes() []*holeInfo { return r.snap.Load().order }

// count returns the number of discovered holes.
func (r *registry) count() int { return len(r.snap.Load().order) }
