package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryDiscoveryOrder checks holes index in first-seen order and
// lookups return the same instance.
func TestRegistryDiscoveryOrder(t *testing.T) {
	r := newRegistry()
	a, err := r.discover("a", []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.discover("b", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if a.index != 0 || b.index != 1 {
		t.Errorf("indices = %d, %d", a.index, b.index)
	}
	again, err := r.discover("a", []string{"x", "y"})
	if err != nil || again != a {
		t.Errorf("rediscovery returned %p (%v), want %p", again, err, a)
	}
	if r.lookup("a") != a || r.lookup("zz") != nil {
		t.Error("lookup misbehaves")
	}
	if r.count() != 2 {
		t.Errorf("count = %d", r.count())
	}
}

// TestRegistryArityValidation: a hole's arity is fixed at first discovery.
func TestRegistryArityValidation(t *testing.T) {
	r := newRegistry()
	if _, err := r.discover("a", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.discover("a", []string{"x"}); err == nil {
		t.Error("want arity error")
	}
	if _, err := r.discover("b", nil); err == nil {
		t.Error("want empty-actions error")
	}
}

// TestRegistryConcurrentDiscovery hammers the copy-on-write publish path:
// many goroutines racing to discover overlapping hole sets must converge on
// one entry per name with dense, unique indices. Run with -race.
func TestRegistryConcurrentDiscovery(t *testing.T) {
	r := newRegistry()
	const goroutines = 16
	const holes = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < holes; i++ {
				name := fmt.Sprintf("h%d", (i+g)%holes)
				h, err := r.discover(name, []string{"a", "b"})
				if err != nil {
					errs <- err
					return
				}
				if got := r.lookup(name); got != h {
					errs <- fmt.Errorf("lookup(%s) returned different instance", name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.count() != holes {
		t.Fatalf("count = %d, want %d", r.count(), holes)
	}
	seen := map[int]bool{}
	for _, h := range r.holes() {
		if seen[h.index] {
			t.Fatalf("duplicate index %d", h.index)
		}
		seen[h.index] = true
		if h.index < 0 || h.index >= holes {
			t.Fatalf("index %d out of range", h.index)
		}
	}
}

// TestRunChooserUsageMask checks fire/run mask accounting and the overflow
// saturation contract.
func TestRunChooserUsageMask(t *testing.T) {
	r := newRegistry()
	rc := &runChooser{reg: r, assign: []int{0, 1}}
	if _, err := r.discover("a", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.discover("b", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	rc.ResetUsage()
	if _, err := rc.Choose("b", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if rc.Usage() != 0b10 {
		t.Errorf("usage = %b, want 10", rc.Usage())
	}
	rc.ResetUsage()
	if rc.Usage() != 0 {
		t.Error("reset did not clear")
	}
	rc.overflow.Store(true)
	if rc.Usage() != ^uint64(0) {
		t.Error("overflow must saturate")
	}
}

// TestRunChooserWildcardPaths checks assigned, wildcard-assigned and
// undiscovered holes resolve per mode.
func TestRunChooserWildcardPaths(t *testing.T) {
	r := newRegistry()
	rc := &runChooser{reg: r, assign: []int{1, Wildcard}}
	if got, err := rc.Choose("a", []string{"x", "y"}); err != nil || got != 1 {
		t.Errorf("assigned: %d, %v", got, err)
	}
	if _, err := rc.Choose("b", []string{"x"}); err == nil {
		t.Error("wildcard-assigned hole must abort")
	}
	if _, err := rc.Choose("c", []string{"x"}); err == nil {
		t.Error("undiscovered hole must abort in prune mode")
	}
	naive := &runChooser{reg: newRegistry(), naive: true}
	if got, err := naive.Choose("fresh", []string{"x", "y"}); err != nil || got != 0 {
		t.Errorf("naive fresh hole: %d, %v (want default 0)", got, err)
	}
}
