package core_test

import (
	"testing"

	"verc3/internal/core"
	"verc3/internal/dsl"
	"verc3/internal/mc"
	"verc3/internal/ts"
)

// hstate is a one-byte holder state for the liveness-pruning sketch.
type hstate struct{ h int8 }

func (s *hstate) Key() string               { return string(rune('0' + s.h)) }
func (s *hstate) Clone() ts.State           { cp := *s; return &cp }
func (s *hstate) CopyFrom(src ts.State)     { *s = *src.(*hstate) }
func (s *hstate) AppendKey(d []byte) []byte { return append(d, byte(s.h)) }

// holderSketch is a two-process token sketch whose single hole decides
// whether the holder passes the token on or keeps it. Both completions are
// safe (no invariant, no deadlock, no reach goal distinguishes them); only
// the liveness goal "the other process eventually holds" separates them —
// "keep" spins on a self-loop lasso that never hands the token over.
func holderSketch() ts.System {
	b := dsl.NewBuilder[*hstate]("holder-sketch", &hstate{})
	b.Rule("move", nil, func(s *hstate, env *ts.Env) error {
		a, err := env.Choose("after-hold", []string{"pass", "keep"})
		if err != nil {
			return err
		}
		if a == 0 {
			s.h = 1 - s.h
		}
		return nil
	})
	b.LeadsTo("p1-eventually-holds", false,
		func(*hstate) bool { return true },
		func(s *hstate) bool { return s.h == 1 })
	return b.System()
}

// TestSynthesisPrunesOnLiveness pins the liveness verdict axis through the
// synthesis engine: a candidate rejected by nothing BUT a liveness lasso
// must be pruned when Config.MC.Liveness is on, and must (wrongly, by
// design) survive when it is off. The winner's re-verification runs with
// the same liveness option, so a fingerprint-collision lasso could not
// sneak a starving candidate through.
func TestSynthesisPrunesOnLiveness(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNaive, core.ModePrune} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			// Without the liveness axis both completions verify clean.
			res, err := core.Synthesize(holderSketch(), core.Config{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Solutions) != 2 {
				t.Fatalf("without liveness: %d solutions, want 2 (both completions are safe)", len(res.Solutions))
			}

			// With it, only "pass" survives; "keep" fails on the lasso.
			res, err = core.Synthesize(holderSketch(), core.Config{
				Mode: mode,
				MC:   mc.Options{Liveness: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Solutions) != 1 {
				t.Fatalf("with liveness: %d solutions, want only pass", len(res.Solutions))
			}
			sol := res.Solutions[0]
			if len(sol.Assign) != 1 || sol.Assign[0] != 0 {
				t.Fatalf("surviving assignment %v, want [0] (pass)", sol.Assign)
			}
			if !sol.Reverified {
				t.Fatal("winner not reverified")
			}
			if res.Stats.Failures == 0 {
				t.Fatal("the keep candidate should have failed, not vanished")
			}
		})
	}
}
