package core_test

import (
	"strings"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/obs"
	"verc3/internal/toy"
)

// TestSynthesisEvents pins the structured progress stream on the Figure 2
// worked example: every round and the unique solution arrive as typed
// events, the legacy Log adapter receives exactly each event's rendered
// Text line, and the collector's synthesis counters and gauges agree with
// the run's Stats.
func TestSynthesisEvents(t *testing.T) {
	col := obs.New()
	var events []obs.Event
	var logged []string
	res, err := core.Synthesize(toy.Figure2(), core.Config{
		Mode: core.ModePrune,
		Obs:  col,
		Events: func(ev obs.Event) {
			events = append(events, ev)
		},
		Log: func(format string, args ...any) {
			if format != "%s" || len(args) != 1 {
				t.Errorf("Log adapter called with format %q and %d args, want verbatim Text", format, len(args))
				return
			}
			logged = append(logged, args[0].(string))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(logged) {
		t.Fatalf("%d events but %d log lines", len(events), len(logged))
	}
	rounds, solutions := 0, 0
	for i, ev := range events {
		if ev.Text != logged[i] {
			t.Errorf("event %d Text %q, log line %q", i, ev.Text, logged[i])
		}
		if ev.ElapsedNS <= 0 {
			t.Errorf("event %d has no elapsed stamp", i)
		}
		switch ev.Kind {
		case obs.EventRound:
			rounds++
			if ev.Round != rounds {
				t.Errorf("round event %d numbered %d", rounds, ev.Round)
			}
			if ev.Holes == 0 || ev.Candidates == 0 {
				t.Errorf("round event missing fields: %+v", ev)
			}
		case obs.EventSolution:
			solutions++
			if !strings.Contains(ev.Text, ev.Solution) {
				t.Errorf("solution event Text %q does not carry Solution %q", ev.Text, ev.Solution)
			}
			if ev.States == 0 {
				t.Errorf("solution event has no state count: %+v", ev)
			}
		}
	}
	if rounds != res.Stats.Rounds {
		t.Errorf("%d round events, stats say %d rounds", rounds, res.Stats.Rounds)
	}
	if solutions != 1 {
		t.Errorf("%d solution events, want 1", solutions)
	}

	s := col.Snapshot()
	if got, want := s.Counters[obs.CEvaluated], uint64(res.Stats.Evaluated); got != want {
		t.Errorf("evaluated counter %d, stats %d", got, want)
	}
	if got, want := s.Counters[obs.CSkipped], uint64(res.Stats.Skipped); got != want {
		t.Errorf("skipped counter %d, stats %d", got, want)
	}
	if got, want := s.Counters[obs.CSolutions], uint64(len(res.Solutions)); got != want {
		t.Errorf("solutions counter %d, want %d", got, want)
	}
	if s.Counters[obs.CStates] == 0 {
		t.Error("no exploration states flowed into the synthesis collector")
	}
	if got, want := s.Gauges[obs.GHoles], uint64(res.Stats.Holes); got != want {
		t.Errorf("holes gauge %d, stats %d", got, want)
	}
	if got, want := s.Gauges[obs.GPatterns], uint64(res.Stats.Patterns); got != want {
		t.Errorf("patterns gauge %d, stats %d", got, want)
	}
	if got, want := s.Gauges[obs.GRound], uint64(res.Stats.Rounds); got != want {
		t.Errorf("round gauge %d, stats %d", got, want)
	}
	evs, dropped := col.Events()
	if dropped != 0 || len(evs) != len(events) {
		t.Errorf("collector retained %d events (%d dropped), callback saw %d", len(evs), dropped, len(events))
	}
}

// TestSynthesisRejectsMCObs pins the managed-field contract: the collector
// goes in Config.Obs, never Config.MC.Obs.
func TestSynthesisRejectsMCObs(t *testing.T) {
	_, err := core.Synthesize(toy.Figure2(), core.Config{
		MC: mc.Options{Obs: obs.New()},
	})
	if err == nil || !strings.Contains(err.Error(), "MC.Obs") {
		t.Fatalf("err = %v, want MC.Obs rejection", err)
	}
}
