package core

import (
	"strings"
	"sync"
)

// patternTable is the dynamic-programming lookup table of candidate pruning
// patterns. A pattern is a partial assignment of holes to actions; any
// candidate that agrees with a pattern on all of its bound positions is
// certain to fail with the same (minimal) error trace and is skipped without
// model checking.
//
// Patterns are stored in a trie over hole positions 0,1,2,… where each edge
// is either a concrete action index or a wildcard. Full-vector pruning (the
// paper's scheme) inserts the failing candidate's enumerated prefix with its
// trailing wildcards stripped, yielding pure prefix patterns;
// trace-generalized pruning (our extension, licensed by the paper's own
// Ct ⊆ C lemma) may leave interior wildcards.
//
// The table is shared between synthesis workers: the paper notes that each
// thread can use another thread's freshly registered patterns as soon as
// they become available, which is why single- and multi-threaded runs
// evaluate slightly different candidate counts.
type patternTable struct {
	mu   sync.RWMutex
	root *patNode
	n    int // number of patterns inserted
}

type patNode struct {
	terminal bool
	wild     *patNode
	kids     map[int]*patNode
}

func newPatternTable() *patternTable {
	return &patternTable{root: &patNode{}}
}

// Len returns the number of patterns inserted.
func (t *patternTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// Insert adds a pattern. assign is indexed by hole position; Wildcard
// entries are unconstrained. Trailing wildcards are stripped (they carry no
// constraint). Inserting a fully-wildcard pattern would prune everything and
// indicates an inherently faulty skeleton; it is stored as such and Match
// will then return true for every candidate, which the engine surfaces as
// "skeleton has no solutions".
func (t *patternTable) Insert(assign []int) {
	end := len(assign)
	for end > 0 && assign[end-1] == Wildcard {
		end--
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	node := t.root
	for i := 0; i < end; i++ {
		if node.terminal {
			return // an existing, more general pattern subsumes this one
		}
		a := assign[i]
		var next *patNode
		if a == Wildcard {
			if node.wild == nil {
				node.wild = &patNode{}
			}
			next = node.wild
		} else {
			if node.kids == nil {
				node.kids = make(map[int]*patNode)
			}
			next = node.kids[a]
			if next == nil {
				next = &patNode{}
				node.kids[a] = next
			}
		}
		node = next
	}
	if !node.terminal {
		node.terminal = true
		t.n++
	}
}

// Match reports whether the candidate assignment (Wildcard entries allowed;
// they only match pattern wildcards) matches any stored pattern, and if so
// the depth after which the match became certain. Candidates agreeing with a
// pattern on all bound positions are matched; matchDepth is the index of the
// last bound position examined (so the enumerator can skip the whole subtree
// below it). For a zero-length (root) match, matchDepth is -1.
func (t *patternTable) Match(assign []int) (matched bool, matchDepth int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return matchRec(t.root, assign, 0, -1)
}

// matchRec walks the trie; last is the index of the deepest concrete
// position bound by the pattern path taken so far.
func matchRec(n *patNode, assign []int, i, last int) (bool, int) {
	if n.terminal {
		return true, last
	}
	if i >= len(assign) {
		return false, 0
	}
	a := assign[i]
	if a != Wildcard {
		if n.kids != nil {
			if k := n.kids[a]; k != nil {
				if ok, d := matchRec(k, assign, i+1, i); ok {
					return true, d
				}
			}
		}
	}
	if n.wild != nil {
		// A pattern wildcard matches any candidate value (including a
		// candidate wildcard: the pattern's failure trace did not consult
		// this hole, so the candidate's value there is irrelevant).
		if ok, d := matchRec(n.wild, assign, i+1, last); ok {
			return true, d
		}
	}
	return false, 0
}

// formatAssign renders an assignment for logs and tests, in the paper's
// ⟨1@A, 2@?⟩ notation (holes are 1-based in the paper's figures).
func formatAssign(assign []int, holes []*holeInfo) string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, a := range assign {
		if i > 0 {
			b.WriteString(", ")
		}
		name := ""
		if i < len(holes) {
			name = holes[i].name
		}
		b.WriteString(name)
		b.WriteString("@")
		if a == Wildcard {
			b.WriteString("?")
		} else if i < len(holes) && a < len(holes[i].actions) {
			b.WriteString(holes[i].actions[a])
		} else {
			b.WriteString("!")
		}
	}
	b.WriteString("⟩")
	return b.String()
}
