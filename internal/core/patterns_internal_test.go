package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPatternInsertMatchBasics covers exact, prefix and wildcard matching.
func TestPatternInsertMatchBasics(t *testing.T) {
	tbl := newPatternTable()
	tbl.Insert([]int{1, 0}) // binds holes 0,1

	check := func(assign []int, want bool) {
		t.Helper()
		got, _ := tbl.Match(assign)
		if got != want {
			t.Errorf("Match(%v) = %v, want %v", assign, got, want)
		}
	}
	check([]int{1, 0}, true)
	check([]int{1, 0, 5}, true)      // extension still matches
	check([]int{1, 1}, false)        // differs at bound position
	check([]int{0, 0}, false)        //
	check([]int{1}, false)           // shorter than the pattern's bound prefix
	check([]int{1, Wildcard}, false) // candidate wildcard vs bound position
}

// TestPatternTrailingWildcardsStripped checks ⟨1@C, 2@?⟩ behaves as ⟨1@C⟩.
func TestPatternTrailingWildcardsStripped(t *testing.T) {
	tbl := newPatternTable()
	tbl.Insert([]int{2, Wildcard, Wildcard})
	if ok, d := tbl.Match([]int{2, 7, 9}); !ok || d != 0 {
		t.Errorf("Match = %v at depth %d, want true at 0", ok, d)
	}
	if ok, _ := tbl.Match([]int{1, 7, 9}); ok {
		t.Error("unexpected match")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

// TestPatternInteriorWildcard covers trace-generalized patterns.
func TestPatternInteriorWildcard(t *testing.T) {
	tbl := newPatternTable()
	tbl.Insert([]int{Wildcard, 3}) // only hole 1 is bound
	if ok, d := tbl.Match([]int{9, 3}); !ok || d != 1 {
		t.Errorf("Match = %v at %d, want true at 1", ok, d)
	}
	// A candidate with hole 0 still wildcard also matches: the pattern
	// does not constrain hole 0.
	if ok, _ := tbl.Match([]int{Wildcard, 3}); !ok {
		t.Error("candidate wildcard should pass a pattern wildcard")
	}
	if ok, _ := tbl.Match([]int{9, 4}); ok {
		t.Error("unexpected match")
	}
}

// TestPatternSubsumption: inserting a more specific pattern after a general
// one is a no-op.
func TestPatternSubsumption(t *testing.T) {
	tbl := newPatternTable()
	tbl.Insert([]int{1})
	tbl.Insert([]int{1, 2, 3}) // subsumed
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1 (subsumed insert)", tbl.Len())
	}
}

// TestEmptyPatternPrunesEverything: an inherently faulty skeleton's empty
// candidate becomes the match-all pattern.
func TestEmptyPatternPrunesEverything(t *testing.T) {
	tbl := newPatternTable()
	tbl.Insert([]int{Wildcard, Wildcard})
	if ok, d := tbl.Match([]int{4, 2}); !ok || d != -1 {
		t.Errorf("Match = %v at %d, want true at -1 (root)", ok, d)
	}
}

// TestMatchDepthDrivesSubtreeSkip checks the reported depth is the deepest
// bound position, which the enumerator uses to size its skip stride.
func TestMatchDepthDrivesSubtreeSkip(t *testing.T) {
	tbl := newPatternTable()
	tbl.Insert([]int{0, Wildcard, 5})
	if ok, d := tbl.Match([]int{0, 9, 5, 1}); !ok || d != 2 {
		t.Errorf("Match = %v at %d, want true at 2", ok, d)
	}
}

// TestPatternSoundnessProperty is the key pruning-soundness check at the
// data-structure level: any inserted pattern matches exactly the candidates
// that agree on its bound positions.
func TestPatternSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		arity := 2 + rng.Intn(3)
		tbl := newPatternTable()
		var pats [][]int
		for p := 0; p < 1+rng.Intn(6); p++ {
			pat := make([]int, 1+rng.Intn(n))
			bound := false
			for i := range pat {
				if rng.Intn(3) == 0 {
					pat[i] = Wildcard
				} else {
					pat[i] = rng.Intn(arity)
					bound = true
				}
			}
			if !bound {
				continue // skip match-all patterns in this property
			}
			tbl.Insert(pat)
			pats = append(pats, pat)
		}
		// Reference matcher.
		ref := func(assign []int) bool {
			for _, pat := range pats {
				ok := true
				for i, v := range pat {
					if v == Wildcard {
						continue
					}
					if i >= len(assign) || assign[i] != v {
						ok = false
						break
					}
				}
				if ok {
					return true
				}
			}
			return false
		}
		for trial := 0; trial < 50; trial++ {
			assign := make([]int, n)
			for i := range assign {
				assign[i] = rng.Intn(arity)
			}
			got, _ := tbl.Match(assign)
			if got != ref(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFormatAssign pins the ⟨…⟩ rendering.
func TestFormatAssign(t *testing.T) {
	holes := []*holeInfo{
		{name: "h0", actions: []string{"A", "B"}},
		{name: "h1", actions: []string{"X"}},
	}
	got := formatAssign([]int{1, Wildcard}, holes)
	if got != "⟨h0@B, h1@?⟩" {
		t.Errorf("formatAssign = %q", got)
	}
}
