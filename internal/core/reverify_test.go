package core_test

// Tests for the traceless-search + trace-on-reverify split and the
// aggregated exploration memory profile (Stats.Space).

import (
	"testing"

	"verc3/internal/core"
	"verc3/internal/toy"
)

// TestSolutionsReverified checks both modes re-verify every reported
// solution with trace recording on: the flag is set, and the trace nodes
// those re-checks retain show up in the aggregated profile — while the
// search itself contributes none.
func TestSolutionsReverified(t *testing.T) {
	for _, mode := range []core.Mode{core.ModePrune, core.ModeNaive} {
		res, err := core.Synthesize(toy.Figure2(), core.Config{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Solutions) != 1 {
			t.Fatalf("%v: %d solutions, want 1", mode, len(res.Solutions))
		}
		if !res.Solutions[0].Reverified {
			t.Errorf("%v: solution not marked reverified", mode)
		}
		if res.Stats.Space.TraceNodes == 0 {
			t.Errorf("%v: no trace nodes in aggregate — reverification did not run with traces on", mode)
		}
		if res.Stats.Space.States == 0 || res.Stats.Space.Transitions == 0 {
			t.Errorf("%v: empty space profile %+v", mode, res.Stats.Space)
		}
	}
}

// TestSpaceAggregatesAcrossDispatches checks the per-dispatch profiles sum:
// the aggregate state count must equal TotalVisitedStates plus the states
// of the per-solution re-verification runs.
func TestSpaceAggregatesAcrossDispatches(t *testing.T) {
	res, err := core.Synthesize(toy.Figure2(), core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Stats.Space.States) <= res.Stats.TotalVisitedStates {
		t.Errorf("Space.States = %d, want > TotalVisitedStates = %d (reverify runs must be included)",
			res.Stats.Space.States, res.Stats.TotalVisitedStates)
	}
	if res.Stats.Space.PeakFrontier == 0 {
		t.Errorf("PeakFrontier = 0, want the largest single dispatch's high-water mark")
	}
}
