package core

import (
	"fmt"

	"verc3/internal/mc"
	"verc3/internal/ts"
)

// FixedChooser resolves every hole to a fixed, named action. It lets a
// designer (or a test) model-check one specific candidate outside the
// synthesis loop — e.g. to re-verify a reported solution with trace
// recording enabled, or to dissect why a particular completion fails.
//
// Holes missing from the map resolve to the wildcard, so a partial
// assignment checks the candidate "as far as it is specified".
type FixedChooser map[string]string

// Choose implements ts.Chooser.
func (f FixedChooser) Choose(hole string, actions []string) (int, error) {
	want, ok := f[hole]
	if !ok {
		return 0, ts.ErrWildcard
	}
	for i, a := range actions {
		if a == want {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: hole %q has no action named %q (have %v)", hole, want, actions)
}

// Assignment renders a synthesis solution as a hole-name → action-name map,
// suitable for FixedChooser.
func (r *Result) Assignment(i int) FixedChooser {
	sol := r.Solutions[i]
	out := FixedChooser{}
	for j, a := range sol.Assign {
		if a == Wildcard {
			continue
		}
		out[r.HoleNames[j]] = r.HoleActions[j][a]
	}
	return out
}

// VerifySolution re-checks solution i of a synthesis result against the
// skeleton with the given model-checker options (typically RecordTrace for
// a designer-facing report). The verdict must be Success for a genuine
// solution; anything else indicates a harness misuse (e.g. different
// options reveal a cap) and is returned for inspection rather than hidden.
func VerifySolution(sys ts.System, r *Result, i int, opt mc.Options) (*mc.Result, error) {
	if i < 0 || i >= len(r.Solutions) {
		return nil, fmt.Errorf("core: solution index %d out of range (%d solutions)", i, len(r.Solutions))
	}
	opt.Env = ts.NewEnv(r.Assignment(i))
	return mc.Check(sys, opt)
}
