package core_test

import (
	"strings"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/ts"
)

// TestVerifySolutionRoundTrip: every reported solution re-verifies as
// success through the public API.
func TestVerifySolutionRoundTrip(t *testing.T) {
	g := toy.Figure2()
	res, err := core.Synthesize(g, core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Solutions {
		out, err := core.VerifySolution(g, res, i, mc.Options{RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if out.Verdict != mc.Success {
			t.Errorf("solution %d re-verifies as %v", i, out.Verdict)
		}
	}
	if _, err := core.VerifySolution(g, res, 99, mc.Options{}); err == nil {
		t.Error("want range error")
	}
}

// TestFixedChooserSemantics covers named resolution, partial assignments
// (wildcard), and unknown action names.
func TestFixedChooserSemantics(t *testing.T) {
	fc := core.FixedChooser{"h": "B"}
	if i, err := fc.Choose("h", []string{"A", "B"}); err != nil || i != 1 {
		t.Errorf("Choose = %d, %v", i, err)
	}
	if _, err := fc.Choose("missing", []string{"A"}); err != ts.ErrWildcard {
		t.Errorf("missing hole: err = %v, want ErrWildcard", err)
	}
	if _, err := fc.Choose("h", []string{"X", "Y"}); err == nil || !strings.Contains(err.Error(), "no action named") {
		t.Errorf("bad action name: err = %v", err)
	}
}

// TestAssignmentExport checks the solution → map rendering.
func TestAssignmentExport(t *testing.T) {
	g := toy.Figure2()
	res, err := core.Synthesize(g, core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignment(0)
	want := map[string]string{"1": "B", "2": "A", "3": "B", "4": "B"}
	for h, act := range want {
		if a[h] != act {
			t.Errorf("assignment[%s] = %s, want %s", h, a[h], act)
		}
	}
}
