// Package dsl is a lightweight, Murphi-flavoured frontend over internal/ts
// — the "more ergonomic frontend DSL" the paper lists as future work.
//
// Instead of implementing the five-method ts.System interface by hand, a
// model declares guarded rules, rulesets (rules replicated over a parameter
// range, like Murphi's `ruleset i: cid do … end`), invariants and goals on a
// Builder. Rule actions mutate a typed clone of the state in place — the
// builder handles cloning, so the usual "Clone then cast then mutate then
// return" boilerplate disappears:
//
//	b := dsl.NewBuilder[*myState]("my-system", initial)
//	b.RuleSet(n, "p%d: request", // one rule per process
//	    func(s *myState, i int) bool { return s.PC[i] == Idle },
//	    func(s *myState, i int, env *ts.Env) error { s.PC[i] = Want; return nil })
//	b.Invariant("mutex", func(s *myState) bool { … })
//	sys := b.System()
//
// Holes work exactly as in raw ts models: call env.Choose inside an action
// and return its error (wildcard aborts propagate through).
//
// The builder never wraps states — the S values a model mutates are exactly
// the ts.States the checker sees — so every optional state capability passes
// straight through: a state type that implements ts.KeyAppender keeps the
// allocation-free binary fingerprinting path, and one that implements
// ts.Permutable / ts.InPlacePermuter keeps (scratch-state) symmetry
// reduction, with no declaration on the Builder (internal/tokenring's ring
// implements KeyAppender this way).
package dsl

import (
	"fmt"

	"verc3/internal/ts"
)

// Mutable is the state contract for the builder: a ts.State whose Clone
// returns the same concrete type (enforced at rule-firing time).
type Mutable interface {
	ts.State
}

// Builder accumulates rules and properties, then freezes into a ts.System.
type Builder[S Mutable] struct {
	name    string
	initial []ts.State
	rules   []rule[S]
	invs    []ts.Invariant
	goals   []ts.ReachGoal
	quiet   func(S) bool
}

type rule[S Mutable] struct {
	name   func(s S) []string // instance names for enabled instances
	expand func(s S) []ts.Transition
}

// NewBuilder starts a system with one or more initial states.
func NewBuilder[S Mutable](name string, initial ...S) *Builder[S] {
	if len(initial) == 0 {
		panic("dsl: need at least one initial state")
	}
	b := &Builder[S]{name: name}
	for _, s := range initial {
		b.initial = append(b.initial, s)
	}
	return b
}

// clone copies s and asserts the concrete type survives Clone.
func clone[S Mutable](s S) S {
	c, ok := s.Clone().(S)
	if !ok {
		panic(fmt.Sprintf("dsl: %T.Clone() did not return %T", s, s))
	}
	return c
}

// Rule adds a guarded command: when guard(s) holds, the action may fire on a
// clone of s. A nil guard is always enabled.
func (b *Builder[S]) Rule(name string, guard func(S) bool, action func(S, *ts.Env) error) *Builder[S] {
	b.rules = append(b.rules, rule[S]{
		expand: func(s S) []ts.Transition {
			if guard != nil && !guard(s) {
				return nil
			}
			return []ts.Transition{{
				Name: name,
				Fire: func(env *ts.Env) (ts.State, error) {
					ns := clone(s)
					if err := action(ns, env); err != nil {
						return nil, err
					}
					return ns, nil
				},
			}}
		},
	})
	return b
}

// RuleSet adds one rule instance per parameter i in [0, n) — Murphi's
// ruleset. The name is a fmt pattern receiving i.
func (b *Builder[S]) RuleSet(n int, name string, guard func(S, int) bool, action func(S, int, *ts.Env) error) *Builder[S] {
	b.rules = append(b.rules, rule[S]{
		expand: func(s S) []ts.Transition {
			var out []ts.Transition
			for i := 0; i < n; i++ {
				if guard != nil && !guard(s, i) {
					continue
				}
				i := i
				out = append(out, ts.Transition{
					Name: fmt.Sprintf(name, i),
					Fire: func(env *ts.Env) (ts.State, error) {
						ns := clone(s)
						if err := action(ns, i, env); err != nil {
							return nil, err
						}
						return ns, nil
					},
				})
			}
			return out
		},
	})
	return b
}

// Choice adds a rule that fires once per alternative in [0, k) — a
// nondeterministic environment action (e.g. "deliver any pending message").
// enabled(s) returns the live alternatives.
func (b *Builder[S]) Choice(name string, enabled func(S) []int, action func(S, int, *ts.Env) error) *Builder[S] {
	b.rules = append(b.rules, rule[S]{
		expand: func(s S) []ts.Transition {
			var out []ts.Transition
			for _, alt := range enabled(s) {
				alt := alt
				out = append(out, ts.Transition{
					Name: fmt.Sprintf(name, alt),
					Fire: func(env *ts.Env) (ts.State, error) {
						ns := clone(s)
						if err := action(ns, alt, env); err != nil {
							return nil, err
						}
						return ns, nil
					},
				})
			}
			return out
		},
	})
	return b
}

// Invariant adds a safety property.
func (b *Builder[S]) Invariant(name string, holds func(S) bool) *Builder[S] {
	b.invs = append(b.invs, ts.Invariant{Name: name, Holds: func(s ts.State) bool { return holds(s.(S)) }})
	return b
}

// Goal adds a reachability goal ("some reachable state satisfies this").
func (b *Builder[S]) Goal(name string, holds func(S) bool) *Builder[S] {
	b.goals = append(b.goals, ts.ReachGoal{Name: name, Holds: func(s ts.State) bool { return holds(s.(S)) }})
	return b
}

// Quiescent marks states where having no enabled rule is acceptable rather
// than a deadlock.
func (b *Builder[S]) Quiescent(pred func(S) bool) *Builder[S] {
	b.quiet = pred
	return b
}

// System freezes the builder into a ts.System (safe for concurrent use; the
// builder must not be modified afterwards).
func (b *Builder[S]) System() ts.System {
	return &built[S]{b: b}
}

type built[S Mutable] struct{ b *Builder[S] }

// Name implements ts.System.
func (x *built[S]) Name() string { return x.b.name }

// Initial implements ts.System.
func (x *built[S]) Initial() []ts.State { return x.b.initial }

// Transitions implements ts.System.
func (x *built[S]) Transitions(s ts.State) []ts.Transition {
	st := s.(S)
	var out []ts.Transition
	for _, r := range x.b.rules {
		out = append(out, r.expand(st)...)
	}
	return out
}

// Invariants implements ts.System.
func (x *built[S]) Invariants() []ts.Invariant { return x.b.invs }

// Goals implements ts.GoalReporter.
func (x *built[S]) Goals() []ts.ReachGoal { return x.b.goals }

// Quiescent implements ts.QuiescentReporter.
func (x *built[S]) Quiescent(s ts.State) bool {
	if x.b.quiet == nil {
		return false
	}
	return x.b.quiet(s.(S))
}
