// Package dsl is a lightweight, Murphi-flavoured frontend over internal/ts
// — the "more ergonomic frontend DSL" the paper lists as future work.
//
// Instead of implementing the five-method ts.System interface by hand, a
// model declares guarded rules, rulesets (rules replicated over a parameter
// range, like Murphi's `ruleset i: cid do … end`), invariants, reach goals,
// liveness goals (EventuallyAlways / LeadsTo, with Fair weak-fairness
// declarations) on a Builder. Rule actions mutate a typed clone of the state in place — the
// builder handles cloning, so the usual "Clone then cast then mutate then
// return" boilerplate disappears:
//
//	b := dsl.NewBuilder[*myState]("my-system", initial)
//	b.RuleSet(n, "p%d: request", // one rule per process
//	    func(s *myState, i int) bool { return s.PC[i] == Idle },
//	    func(s *myState, i int, env *ts.Env) error { s.PC[i] = Want; return nil })
//	b.Invariant("mutex", func(s *myState) bool { … })
//	sys := b.System()
//
// Holes work exactly as in raw ts models: call env.Choose inside an action
// and return its error (wildcard aborts propagate through).
//
// The builder never wraps states — the S values a model mutates are exactly
// the ts.States the checker sees — so every optional state capability passes
// straight through: a state type that implements ts.KeyAppender keeps the
// allocation-free binary fingerprinting path, and one that implements
// ts.Permutable / ts.InPlacePermuter keeps (scratch-state) symmetry
// reduction, with no declaration on the Builder (internal/tokenring's ring
// implements KeyAppender this way).
//
// The successor lifecycle passes through the same way: when S implements
// ts.StateCopier, built systems implement ts.Recycler — rule actions fire on
// clones drawn from a pool of recycled states — and ts.PoolReporter; when it
// does not, Recycle quietly drops states and every clone is fresh. Built
// systems always implement ts.TransitionAppender; Rule and RuleSet names are
// formatted once at registration, while Choice names are formatted per
// expansion (the alternative set is data-dependent and unbounded).
package dsl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"verc3/internal/ts"
)

// Mutable is the state contract for the builder: a ts.State whose Clone
// returns the same concrete type (enforced at rule-firing time).
type Mutable interface {
	ts.State
}

// Builder accumulates rules and properties, then freezes into a ts.System.
type Builder[S Mutable] struct {
	name    string
	initial []ts.State
	rules   []rule[S]
	invs    []ts.Invariant
	goals   []ts.ReachGoal
	live    []ts.LivenessGoal
	fair    []ts.Fairness
	quiet   func(S) bool

	// Successor pool, used only when S implements ts.StateCopier (poolable).
	poolable bool
	pool     sync.Pool
	hits     atomic.Uint64
	misses   atomic.Uint64
}

type rule[S Mutable] struct {
	appendTo func(dst []ts.Transition, s S) []ts.Transition
}

// NewBuilder starts a system with one or more initial states.
func NewBuilder[S Mutable](name string, initial ...S) *Builder[S] {
	if len(initial) == 0 {
		panic("dsl: need at least one initial state")
	}
	b := &Builder[S]{name: name}
	var zero S
	_, b.poolable = any(zero).(ts.StateCopier)
	for _, s := range initial {
		b.initial = append(b.initial, s)
	}
	return b
}

// clone copies s for a firing rule, reusing recycled storage when S supports
// the CopyFrom reuse path, and asserts the concrete type survives Clone.
func (b *Builder[S]) clone(s S) S {
	if b.poolable {
		if v := b.pool.Get(); v != nil {
			ns := v.(S)
			any(ns).(ts.StateCopier).CopyFrom(s)
			b.hits.Add(1)
			return ns
		}
		b.misses.Add(1)
	}
	c, ok := s.Clone().(S)
	if !ok {
		panic(fmt.Sprintf("dsl: %T.Clone() did not return %T", s, s))
	}
	return c
}

// recycle returns an aborted branch's clone to the pool.
func (b *Builder[S]) recycle(s S) {
	if b.poolable {
		b.pool.Put(s)
	}
}

// Rule adds a guarded command: when guard(s) holds, the action may fire on a
// clone of s. A nil guard is always enabled.
func (b *Builder[S]) Rule(name string, guard func(S) bool, action func(S, *ts.Env) error) *Builder[S] {
	b.rules = append(b.rules, rule[S]{
		appendTo: func(dst []ts.Transition, s S) []ts.Transition {
			if guard != nil && !guard(s) {
				return dst
			}
			return append(dst, ts.Transition{
				Name: name,
				Fire: func(env *ts.Env) (ts.State, error) {
					ns := b.clone(s)
					if err := action(ns, env); err != nil {
						b.recycle(ns)
						return nil, err
					}
					return ns, nil
				},
			})
		},
	})
	return b
}

// RuleSet adds one rule instance per parameter i in [0, n) — Murphi's
// ruleset. The name is a fmt pattern receiving i; instance names are
// formatted once here, not per expansion.
func (b *Builder[S]) RuleSet(n int, name string, guard func(S, int) bool, action func(S, int, *ts.Env) error) *Builder[S] {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf(name, i)
	}
	b.rules = append(b.rules, rule[S]{
		appendTo: func(dst []ts.Transition, s S) []ts.Transition {
			for i := 0; i < n; i++ {
				if guard != nil && !guard(s, i) {
					continue
				}
				i := i
				dst = append(dst, ts.Transition{
					Name: names[i],
					Fire: func(env *ts.Env) (ts.State, error) {
						ns := b.clone(s)
						if err := action(ns, i, env); err != nil {
							b.recycle(ns)
							return nil, err
						}
						return ns, nil
					},
				})
			}
			return dst
		},
	})
	return b
}

// Choice adds a rule that fires once per alternative in [0, k) — a
// nondeterministic environment action (e.g. "deliver any pending message").
// enabled(s) returns the live alternatives.
func (b *Builder[S]) Choice(name string, enabled func(S) []int, action func(S, int, *ts.Env) error) *Builder[S] {
	b.rules = append(b.rules, rule[S]{
		appendTo: func(dst []ts.Transition, s S) []ts.Transition {
			// Alternatives are data-dependent, so the name is formatted per
			// enabled instance — the one Sprintf the builder cannot hoist.
			for _, alt := range enabled(s) {
				alt := alt
				dst = append(dst, ts.Transition{
					Name: fmt.Sprintf(name, alt),
					Fire: func(env *ts.Env) (ts.State, error) {
						ns := b.clone(s)
						if err := action(ns, alt, env); err != nil {
							b.recycle(ns)
							return nil, err
						}
						return ns, nil
					},
				})
			}
			return dst
		},
	})
	return b
}

// Invariant adds a safety property.
func (b *Builder[S]) Invariant(name string, holds func(S) bool) *Builder[S] {
	b.invs = append(b.invs, ts.Invariant{Name: name, Holds: func(s ts.State) bool { return holds(s.(S)) }})
	return b
}

// Goal adds a reachability goal ("some reachable state satisfies this").
func (b *Builder[S]) Goal(name string, holds func(S) bool) *Builder[S] {
	b.goals = append(b.goals, ts.ReachGoal{Name: name, Holds: func(s ts.State) bool { return holds(s.(S)) }})
	return b
}

// EventuallyAlways adds the liveness goal FG p — "from some point on, p
// holds forever" — checked by the nested-DFS driver under mc.Options
// Liveness. With fair set, only weakly fair executions (see Fair) count as
// counterexamples.
func (b *Builder[S]) EventuallyAlways(name string, fair bool, p func(S) bool) *Builder[S] {
	b.live = append(b.live, ts.LivenessGoal{
		Name: name,
		Kind: ts.EventuallyAlways,
		Fair: fair,
		P:    func(s ts.State) bool { return p(s.(S)) },
	})
	return b
}

// LeadsTo adds the liveness goal G(p → F q) — "whenever p holds, q
// eventually holds" — checked by the nested-DFS driver. With fair set, only
// weakly fair executions count as counterexamples.
func (b *Builder[S]) LeadsTo(name string, fair bool, p, q func(S) bool) *Builder[S] {
	b.live = append(b.live, ts.LivenessGoal{
		Name: name,
		Kind: ts.LeadsTo,
		Fair: fair,
		P:    func(s ts.State) bool { return p(s.(S)) },
		Q:    func(s ts.State) bool { return q(s.(S)) },
	})
	return b
}

// Fair declares a weak-fairness requirement: executions that keep the
// requirement continuously enabled without ever taking one of its
// transitions are excluded from Fair liveness goals. taken receives a fired
// transition's name.
func (b *Builder[S]) Fair(name string, enabled func(S) bool, taken func(rule string) bool) *Builder[S] {
	b.fair = append(b.fair, ts.Fairness{
		Name:    name,
		Enabled: func(s ts.State) bool { return enabled(s.(S)) },
		Taken:   taken,
	})
	return b
}

// Quiescent marks states where having no enabled rule is acceptable rather
// than a deadlock.
func (b *Builder[S]) Quiescent(pred func(S) bool) *Builder[S] {
	b.quiet = pred
	return b
}

// System freezes the builder into a ts.System (safe for concurrent use; the
// builder must not be modified afterwards).
func (b *Builder[S]) System() ts.System {
	return &built[S]{b: b}
}

type built[S Mutable] struct{ b *Builder[S] }

// Name implements ts.System.
func (x *built[S]) Name() string { return x.b.name }

// Initial implements ts.System. It clones the builder's canonical initial
// states: a checker may Recycle an expanded initial state (traceless mode),
// and handing out the builder's own copies would let pooled reuse mutate
// them between runs.
func (x *built[S]) Initial() []ts.State {
	out := make([]ts.State, len(x.b.initial))
	for i, s := range x.b.initial {
		out[i] = s.Clone()
	}
	return out
}

// Transitions implements ts.System.
func (x *built[S]) Transitions(s ts.State) []ts.Transition {
	return x.AppendTransitions(nil, s)
}

// AppendTransitions implements ts.TransitionAppender.
func (x *built[S]) AppendTransitions(dst []ts.Transition, s ts.State) []ts.Transition {
	st := s.(S)
	for _, r := range x.b.rules {
		dst = r.appendTo(dst, st)
	}
	return dst
}

// Recycle implements ts.Recycler: a no-op unless S implements
// ts.StateCopier, in which case s seeds a future rule-firing clone.
func (x *built[S]) Recycle(s ts.State) {
	if !x.b.poolable {
		return
	}
	if st, ok := s.(S); ok {
		x.b.pool.Put(st)
	}
}

// PoolStats implements ts.PoolReporter.
func (x *built[S]) PoolStats() (hits, misses uint64) {
	return x.b.hits.Load(), x.b.misses.Load()
}

// Invariants implements ts.System.
func (x *built[S]) Invariants() []ts.Invariant { return x.b.invs }

// Goals implements ts.GoalReporter.
func (x *built[S]) Goals() []ts.ReachGoal { return x.b.goals }

// LivenessGoals implements ts.LivenessReporter.
func (x *built[S]) LivenessGoals() []ts.LivenessGoal { return x.b.live }

// WeakFairness implements ts.FairnessReporter.
func (x *built[S]) WeakFairness() []ts.Fairness { return x.b.fair }

// Quiescent implements ts.QuiescentReporter.
func (x *built[S]) Quiescent(s ts.State) bool {
	if x.b.quiet == nil {
		return false
	}
	return x.b.quiet(s.(S))
}
