package dsl_test

import (
	"fmt"
	"testing"

	"verc3/internal/core"
	"verc3/internal/dsl"
	"verc3/internal/mc"
	"verc3/internal/ts"
)

// counter is a minimal mutable state for builder tests.
type counter struct {
	V    int
	Done bool
}

func (c *counter) Key() string     { return fmt.Sprintf("%d/%v", c.V, c.Done) }
func (c *counter) Clone() ts.State { cp := *c; return &cp }

// TestRuleGuardAndAction checks guard gating and in-place mutation on a
// clone.
func TestRuleGuardAndAction(t *testing.T) {
	b := dsl.NewBuilder[*counter]("count", &counter{})
	b.Rule("inc", func(s *counter) bool { return s.V < 3 },
		func(s *counter, _ *ts.Env) error { s.V++; return nil })
	b.Rule("finish", func(s *counter) bool { return s.V == 3 },
		func(s *counter, _ *ts.Env) error { s.Done = true; return nil })
	b.Invariant("bounded", func(s *counter) bool { return s.V <= 3 })
	b.Goal("finished", func(s *counter) bool { return s.Done })
	b.Quiescent(func(s *counter) bool { return s.Done })
	sys := b.System()

	res, err := mc.Check(sys, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict %v (%+v)", res.Verdict, res.Failure)
	}
	if res.Stats.VisitedStates != 5 { // V=0..3 plus Done
		t.Errorf("states = %d, want 5", res.Stats.VisitedStates)
	}
}

// TestRuleSetExpansion checks per-parameter instances and names.
func TestRuleSetExpansion(t *testing.T) {
	b := dsl.NewBuilder[*counter]("rs", &counter{})
	b.RuleSet(3, "bump%d", func(s *counter, i int) bool { return i != 1 },
		func(s *counter, i int, _ *ts.Env) error { s.V += i; return nil })
	sys := b.System()
	trs := sys.Transitions(sys.Initial()[0])
	if len(trs) != 2 {
		t.Fatalf("instances = %d, want 2 (guard filters i=1)", len(trs))
	}
	if trs[0].Name != "bump0" || trs[1].Name != "bump2" {
		t.Errorf("names = %s, %s", trs[0].Name, trs[1].Name)
	}
	next, err := trs[1].Fire(nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.(*counter).V != 2 {
		t.Errorf("V = %d, want 2", next.(*counter).V)
	}
}

// TestChoiceExpansion checks nondeterministic alternatives.
func TestChoiceExpansion(t *testing.T) {
	b := dsl.NewBuilder[*counter]("ch", &counter{})
	b.Choice("set%d", func(s *counter) []int {
		if s.V != 0 {
			return nil
		}
		return []int{1, 2, 3}
	}, func(s *counter, alt int, _ *ts.Env) error { s.V = alt; return nil })
	sys := b.System()
	trs := sys.Transitions(sys.Initial()[0])
	if len(trs) != 3 {
		t.Fatalf("alternatives = %d, want 3", len(trs))
	}
}

// TestHolesThroughDSL runs a full synthesis through a builder-made system:
// a hole decides the increment; only +2 reaches exactly 4 (the goal) without
// tripping the ≤4 invariant... both +1 and +2 can reach 4; +3 overshoots
// (3 then 6 violates). The point is wildcard propagation and solution flow.
func TestHolesThroughDSL(t *testing.T) {
	build := func() ts.System {
		b := dsl.NewBuilder[*counter]("holes", &counter{})
		b.Rule("step", func(s *counter) bool { return !s.Done && s.V < 4 },
			func(s *counter, env *ts.Env) error {
				a, err := env.Choose("inc-by", []string{"+1", "+2", "+3"})
				if err != nil {
					return err
				}
				s.V += a + 1
				return nil
			})
		b.Rule("stop", func(s *counter) bool { return s.V == 4 },
			func(s *counter, _ *ts.Env) error { s.Done = true; return nil })
		b.Invariant("max4", func(s *counter) bool { return s.V <= 4 })
		b.Goal("reached4", func(s *counter) bool { return s.Done })
		b.Quiescent(func(s *counter) bool { return s.Done })
		return b.System()
	}
	res, err := core.Synthesize(build(), core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %d (%v), want 2 (+1 and +2)", len(res.Solutions), res.Solutions)
	}
	got := map[string]bool{}
	for i := range res.Solutions {
		got[res.HoleActions[0][res.Solutions[i].Assign[0]]] = true
	}
	if !got["+1"] || !got["+2"] || got["+3"] {
		t.Errorf("solution actions = %v, want {+1,+2}", got)
	}
}

// TestBuilderPanics: misuse is loud.
func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for no initial states")
		}
	}()
	dsl.NewBuilder[*counter]("bad")
}
