// Package faultfs puts an injectable filesystem seam under the pieces of
// verc3 that touch disk: the Spill visited backend's run files and the
// checkpoint writer. Production code talks to the FS interface; the OS
// implementation is a thin passthrough to the os package, and the
// Injector wraps any FS to deterministically fail the Nth operation,
// truncate writes, or report ENOSPC — the substrate for the fault-injection
// test tables and the crash-resume harness.
//
// The seam distinguishes transient faults (worth retrying with capped
// backoff — see Retry) from hard faults (sticky: the caller surfaces them
// and stops touching the file). An injected error wrapped in Transient
// unwraps to its cause, so errors.Is sees through the marker.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"syscall"
	"time"
)

// File is the subset of *os.File the spill and checkpoint writers need.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Name() string
}

// FS abstracts the filesystem operations under the disk-backed stores.
// All paths are interpreted as the os package would.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	MkdirTemp(dir, pattern string) (string, error)
	MkdirAll(path string, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OS is the real filesystem. A nil FS everywhere defaults to it.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error)              { return os.Create(name) }
func (osFS) Open(name string) (File, error)                { return os.Open(name) }
func (osFS) MkdirTemp(dir, pattern string) (string, error) { return os.MkdirTemp(dir, pattern) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error  { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                      { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                   { return os.RemoveAll(path) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)    { return os.ReadDir(name) }

// Or returns f, or OS when f is nil — the one-liner every consumer uses
// to default its FS field.
func Or(f FS) FS {
	if f == nil {
		return OS
	}
	return f
}

// transientError marks an error as retryable. Unwrap exposes the cause so
// errors.Is(err, syscall.EAGAIN) and friends still work.
type transientError struct{ err error }

func (t *transientError) Error() string { return "transient: " + t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err as retryable for IsTransient/Retry.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is worth retrying: explicitly marked via
// Transient, or one of the OS conditions that clear on their own (EINTR,
// EAGAIN). ENOSPC and short writes are NOT transient — retrying a full
// disk busy-loops — so they stay sticky with the caller.
func IsTransient(err error) bool {
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// Retry runs op, retrying transient failures with capped exponential
// backoff (1ms, 2ms, 4ms, ... capped at 50ms; at most attempts tries).
// The first non-transient error — or the last transient one once the
// budget is exhausted — is returned as-is, so it stays inspectable.
// onRetry, when non-nil, observes every retried failure (telemetry hook).
func Retry(attempts int, onRetry func(attempt int, err error), op func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	backoff := time.Millisecond
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		if onRetry != nil {
			onRetry(i+1, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 50*time.Millisecond {
			backoff = 50 * time.Millisecond
		}
	}
	return err
}

// DefaultRetries is the attempt budget the spill and checkpoint writers
// pass to Retry for idempotent operations.
const DefaultRetries = 4

// Op names the filesystem operation an Injector fault report refers to.
type Op string

const (
	OpCreate    Op = "create"
	OpOpen      Op = "open"
	OpMkdirTemp Op = "mkdirtemp"
	OpMkdirAll  Op = "mkdirall"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpRemoveAll Op = "removeall"
	OpReadDir   Op = "readdir"
	OpWrite     Op = "write"
	OpReadAt    Op = "readat"
	OpClose     Op = "close"
	OpSync      Op = "sync"
)

// Fault describes one injected failure: after Skip fault-eligible
// operations succeed, the next one fails with Err. ShortWrite instead
// truncates that write to half its length (returning io.ErrShortWrite),
// exercising partial-write continuation paths. When Transient is set the
// injected error is marked retryable and the injector lets the operation
// succeed once Repeat additional attempts have failed — modelling a
// glitch that clears.
type Fault struct {
	Skip       int   // number of eligible ops to let through first
	Err        error // error to inject (defaults to ErrInjected)
	ShortWrite bool  // truncate the write instead of failing outright
	Transient  bool  // mark the injected error retryable
	Repeat     int   // extra times a transient fault re-fires (default 0: fails once)
	Only       Op    // restrict injection to this op kind ("" = any)
}

// ErrInjected is the default injected error.
var ErrInjected = errors.New("injected fault")

// ErrNoSpace is ENOSPC dressed as the full-disk error the tables inject.
var ErrNoSpace = fmt.Errorf("write: %w", syscall.ENOSPC)

// Injector wraps an FS and fails operations per a Fault plan. It is safe
// for concurrent use; the op counter is global across files, so "fail op
// N" is meaningful for deterministic single-threaded workloads (the test
// tables) and "fail the next op" for concurrent ones.
type Injector struct {
	Under FS

	mu    sync.Mutex
	fault *Fault
	ops   int // eligible operations observed
	fired int // times the current fault has fired
	log   []Op
}

// NewInjector wraps under (nil = OS).
func NewInjector(under FS) *Injector {
	return &Injector{Under: Or(under)}
}

// Plan arms the injector with a fault (nil disarms) and resets the
// counters.
func (in *Injector) Plan(f *Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = f
	in.ops = 0
	in.fired = 0
}

// Ops returns the number of fault-eligible operations observed since the
// last Plan. Run a clean workload first to size per-index fault tables.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Log returns the op kinds observed since the last Plan, in order.
func (in *Injector) Log() []Op {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Op(nil), in.log...)
}

// check records one operation of kind op and returns the error to inject,
// or nil to let it through.
func (in *Injector) check(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.log = append(in.log, op)
	f := in.fault
	if f != nil && f.Only != "" && f.Only != op {
		return nil
	}
	n := in.ops
	in.ops++
	if f == nil || n < f.Skip {
		return nil
	}
	if f.Transient && in.fired > f.Repeat {
		return nil // glitch cleared
	}
	in.fired++
	err := f.Err
	if err == nil {
		err = ErrInjected
	}
	if f.Transient {
		err = Transient(err)
	}
	return err
}

// shortWrite reports whether the current op should be truncated instead
// of failed; only meaningful right after check returned non-nil.
func (in *Injector) shortWriteArmed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fault != nil && in.fault.ShortWrite
}

func (in *Injector) Create(name string) (File, error) {
	if err := in.check(OpCreate); err != nil {
		return nil, err
	}
	f, err := in.Under.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err := in.check(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.Under.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) MkdirTemp(dir, pattern string) (string, error) {
	if err := in.check(OpMkdirTemp); err != nil {
		return "", err
	}
	return in.Under.MkdirTemp(dir, pattern)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err := in.check(OpMkdirAll); err != nil {
		return err
	}
	return in.Under.MkdirAll(path, perm)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.check(OpRename); err != nil {
		return err
	}
	return in.Under.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.check(OpRemove); err != nil {
		return err
	}
	return in.Under.Remove(name)
}

func (in *Injector) RemoveAll(path string) error {
	if err := in.check(OpRemoveAll); err != nil {
		return err
	}
	return in.Under.RemoveAll(path)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := in.check(OpReadDir); err != nil {
		return nil, err
	}
	return in.Under.ReadDir(name)
}

type injFile struct {
	in *Injector
	f  File
}

func (jf *injFile) Write(p []byte) (int, error) {
	if err := jf.in.check(OpWrite); err != nil {
		if jf.in.shortWriteArmed() {
			if len(p) <= 1 {
				// A one-byte write cannot be short; let it through so
				// truncate-every-write plans still make progress.
				return jf.f.Write(p)
			}
			// Deliver half the bytes, then report the short write the way
			// a real truncated write(2) surfaces through io helpers.
			n, werr := jf.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, io.ErrShortWrite
		}
		return 0, err
	}
	return jf.f.Write(p)
}

func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	if err := jf.in.check(OpReadAt); err != nil {
		return 0, err
	}
	return jf.f.ReadAt(p, off)
}

func (jf *injFile) Close() error {
	if err := jf.in.check(OpClose); err != nil {
		jf.f.Close() // release the descriptor regardless
		return err
	}
	return jf.f.Close()
}

func (jf *injFile) Sync() error {
	if err := jf.in.check(OpSync); err != nil {
		return err
	}
	return jf.f.Sync()
}

func (jf *injFile) Name() string { return jf.f.Name() }

// WriteFull writes all of p through f, continuing after short writes the
// way io.Writer contracts normally guarantee but injected faults violate
// on purpose. Transient errors are retried via Retry; anything else is
// returned with the byte offset it struck at.
func WriteFull(f File, p []byte, onRetry func(attempt int, err error)) error {
	for len(p) > 0 {
		var n int
		err := Retry(DefaultRetries, onRetry, func() error {
			var werr error
			n, werr = f.Write(p)
			if n > 0 && werr == io.ErrShortWrite {
				return nil // progress made; loop continues with the rest
			}
			return werr
		})
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		p = p[n:]
	}
	return nil
}
