package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "x.bin")
	f, err := OS.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OS.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	g.Close()
	if err := OS.Remove(name); err != nil {
		t.Fatal(err)
	}
	if Or(nil) != OS {
		t.Fatal("Or(nil) != OS")
	}
}

func TestInjectorFailsNthOp(t *testing.T) {
	dir := t.TempDir()
	// Workload: create, write, write, sync, close = 5 eligible ops.
	workload := func(in *Injector) error {
		f, err := in.Create(filepath.Join(dir, "w.bin"))
		if err != nil {
			return err
		}
		defer os.Remove(f.Name())
		for i := 0; i < 2; i++ {
			if _, err := f.Write([]byte("abcdefgh")); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	in := NewInjector(nil)
	in.Plan(nil)
	if err := workload(in); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := in.Ops()
	if total != 5 {
		t.Fatalf("expected 5 eligible ops, counted %d (%v)", total, in.Log())
	}
	// Every op index must surface the injected error to the caller.
	for i := 0; i < total; i++ {
		in.Plan(&Fault{Skip: i})
		err := workload(in)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: expected injected error, got %v", i, err)
		}
	}
}

func TestInjectorENOSPC(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Plan(&Fault{Skip: 1, Err: ErrNoSpace, Only: OpWrite})
	f, err := in.Create(filepath.Join(dir, "e.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	_, err = f.Write([]byte("boom"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("expected ENOSPC, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("ENOSPC must not be transient")
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Plan(&Fault{Only: OpWrite, ShortWrite: true})
	f, err := in.Create(filepath.Join(dir, "s.bin"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("12345678"))
	if err != io.ErrShortWrite {
		t.Fatalf("expected ErrShortWrite, got n=%d err=%v", n, err)
	}
	if n != 4 {
		t.Fatalf("short write delivered %d bytes, want 4", n)
	}
	f.Close()
}

func TestWriteFullContinuesShortWrites(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	// Truncate every write: WriteFull must still land every byte by
	// resuming after each short write.
	in.Plan(&Fault{Only: OpWrite, ShortWrite: true, Transient: true, Repeat: 1 << 30})
	name := filepath.Join(dir, "full.bin")
	f, err := in.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fox jumps over the lazy dog")
	if err := WriteFull(f, payload, nil); err != nil {
		t.Fatalf("WriteFull: %v", err)
	}
	in.Plan(nil)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("WriteFull wrote %q, want %q", got, payload)
	}
}

func TestRetryTransient(t *testing.T) {
	calls, retries := 0, 0
	err := Retry(4, func(attempt int, err error) { retries++ }, func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("glitch"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3/2", calls, retries)
	}

	// Hard errors return immediately, unretried.
	calls = 0
	hard := errors.New("hard")
	if err := Retry(4, nil, func() error { calls++; return hard }); err != hard {
		t.Fatalf("hard error not surfaced: %v", err)
	}
	if calls != 1 {
		t.Fatalf("hard error retried %d times", calls)
	}

	// A transient error that never clears surfaces after the budget.
	calls = 0
	err = Retry(3, nil, func() error { calls++; return Transient(hard) })
	if !errors.Is(err, hard) || calls != 3 {
		t.Fatalf("exhausted retry: err=%v calls=%d", err, calls)
	}
}

func TestInjectorTransientClears(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Plan(&Fault{Only: OpWrite, Transient: true, Repeat: 1}) // fails twice, then clears
	f, err := in.Create(filepath.Join(dir, "t.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var retried int
	err = Retry(DefaultRetries, func(int, error) { retried++ }, func() error {
		_, werr := f.Write([]byte("x"))
		return werr
	})
	if err != nil {
		t.Fatalf("transient fault should clear under retry: %v", err)
	}
	if retried != 2 {
		t.Fatalf("retried %d times, want 2", retried)
	}
}

func TestIsTransientOSConditions(t *testing.T) {
	if !IsTransient(syscall.EINTR) || !IsTransient(syscall.EAGAIN) {
		t.Fatal("EINTR/EAGAIN must be transient")
	}
	if IsTransient(errors.New("other")) {
		t.Fatal("arbitrary errors must not be transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil must not be transient")
	}
}
