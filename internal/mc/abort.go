// Cancellation and panic containment for both exploration drivers.
//
// A run can be cut short in two ways. Cooperative cancellation: the
// context threaded through CheckCtx is polled at every BFS level boundary
// and every cancelPollStride expansions (per worker under the parallel
// driver), so a -timeout deadline or a SIGINT-driven cancel stops the
// search within a bounded amount of work. Panic containment: a panic out
// of model code (Transitions, Fire, an invariant, Key) is recovered at
// the driver boundary instead of crashing the process. Either way the run
// returns normally — error-free — with Verdict == Aborted and a non-nil
// Result.Abort describing why, carrying whatever partial statistics the
// exploration accumulated (states, transitions, depth, the full Space
// profile). Reachability goals are deliberately NOT judged on an aborted
// run: "goal never witnessed" is only meaningful over the complete space,
// so an abort can never manufacture a spurious goal failure.
package mc

import (
	"context"
	"fmt"
	"runtime/debug"

	"verc3/internal/ts"
)

// AbortInfo describes why a run returned Verdict == Aborted.
type AbortInfo struct {
	// Cause is the cancel cause (context.Cause: the -timeout deadline, the
	// signal handler's cause, or plain context.Canceled) or, for panics,
	// the recovered value wrapped with its provenance.
	Cause error
	// Panic reports that the abort came from a recovered model-code panic
	// rather than cooperative cancellation.
	Panic bool
	// StateKey is the rendered key of the state whose expansion panicked
	// ("" for cancellation aborts, or when rendering the key itself
	// panicked).
	StateKey string
	// Stack is the panicking goroutine's stack trace (panic aborts only).
	Stack string
}

// cancelPollStride is the cooperative cancellation cadence: each worker
// checks its context once per this many expansions, in addition to the
// unconditional check at every BFS level boundary. At typical expansion
// rates this bounds cancellation latency to well under a millisecond
// while keeping the poll amortized to a fraction of a branch per state.
const cancelPollStride = 1024

// cancelAbort captures a cancelled context as an AbortInfo.
func cancelAbort(ctx context.Context) *AbortInfo {
	return &AbortInfo{Cause: context.Cause(ctx)}
}

// panicAbort converts a recovered panic value into an AbortInfo, rendering
// the offending state's key defensively (the state may be the very thing
// that is broken) and capturing the panicking goroutine's stack. It must
// be called from the deferred recover itself, while the panicking frames
// are still on the stack.
func panicAbort(p any, s ts.State) *AbortInfo {
	return &AbortInfo{
		Cause:    fmt.Errorf("mc: model panic: %v", p),
		Panic:    true,
		StateKey: safeKey(s),
		Stack:    string(debug.Stack()),
	}
}

// safeKey renders s.Key() but survives a nil state and a Key() that
// panics — the state being rendered is the one whose expansion just blew
// up, so nothing about it can be trusted.
func safeKey(s ts.State) (key string) {
	if s == nil {
		return ""
	}
	defer func() {
		if recover() != nil {
			key = "<state key unavailable: Key() panicked>"
		}
	}()
	return s.Key()
}
