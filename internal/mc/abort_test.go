package mc_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"verc3/internal/dsl"
	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/ts"
)

// chain is a parametric linear system 0 → 1 → … → n-1 whose Transitions
// calls an optional hook — the tests' window into "model code is running
// now" — and can be armed to panic at a chosen state.
type chain struct {
	n       int
	panicAt int // state value whose Transitions panics (-1 = never)
	hook    func(v int)
}

type chainState int

func (s chainState) Key() string     { return fmt.Sprintf("c%d", int(s)) }
func (s chainState) Clone() ts.State { return s }

func newChain(n int) *chain { return &chain{n: n, panicAt: -1} }

func (c *chain) Name() string        { return "chain" }
func (c *chain) Initial() []ts.State { return []ts.State{chainState(0)} }
func (c *chain) Transitions(s ts.State) []ts.Transition {
	v := int(s.(chainState))
	if c.hook != nil {
		c.hook(v)
	}
	if v == c.panicAt {
		panic(fmt.Sprintf("model bug at %d", v))
	}
	if v+1 >= c.n {
		return nil
	}
	return []ts.Transition{{Name: "step", Fire: func(*ts.Env) (ts.State, error) {
		return chainState(v + 1), nil
	}}}
}
func (c *chain) Invariants() []ts.Invariant { return nil }
func (c *chain) Quiescent(ts.State) bool    { return true }

// drivers runs the subtest under both exploration drivers.
func drivers(t *testing.T, f func(t *testing.T, workers int)) {
	t.Helper()
	t.Run("sequential", func(t *testing.T) { f(t, 1) })
	t.Run("parallel", func(t *testing.T) { f(t, 4) })
}

// TestPreCancelledContextAborts: a context that is dead before the run
// starts must abort before any expansion, under both drivers, with the
// cancel cause surfaced.
func TestPreCancelledContextAborts(t *testing.T) {
	drivers(t, func(t *testing.T, workers int) {
		ctx, cancel := context.WithCancelCause(context.Background())
		cancel(errors.New("pre-cancelled"))
		res, err := mc.CheckCtx(ctx, newChain(100000), mc.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Aborted || res.Abort == nil {
			t.Fatalf("verdict = %v, abort = %+v, want aborted", res.Verdict, res.Abort)
		}
		if res.Abort.Panic || !strings.Contains(res.Abort.Cause.Error(), "pre-cancelled") {
			t.Errorf("abort = %+v, want non-panic with the cancel cause", res.Abort)
		}
		if res.Stats.FiredTransitions != 0 {
			t.Errorf("fired %d transitions after a dead context", res.Stats.FiredTransitions)
		}
	})
}

// TestCancelMidRunKeepsPartialStats: cancelling from inside model code
// stops the run within the poll bound and preserves the partial counters.
func TestCancelMidRunKeepsPartialStats(t *testing.T) {
	drivers(t, func(t *testing.T, workers int) {
		ctx, cancel := context.WithCancelCause(context.Background())
		sys := newChain(100000)
		sys.hook = func(v int) {
			if v == 100 {
				cancel(errors.New("deep enough"))
			}
		}
		res, err := mc.CheckCtx(ctx, sys, mc.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Aborted {
			t.Fatalf("verdict = %v, want aborted", res.Verdict)
		}
		if !strings.Contains(res.Abort.Cause.Error(), "deep enough") {
			t.Errorf("cause = %v", res.Abort.Cause)
		}
		if n := res.Stats.VisitedStates; n < 100 || n >= 100000 {
			t.Errorf("visited = %d, want partial progress (≥100, < full space)", n)
		}
	})
}

// TestDeadlineAborts: a context deadline surfaces as DeadlineExceeded via
// context.Cause.
func TestDeadlineAborts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	sys := newChain(1 << 30)
	sys.hook = func(int) { time.Sleep(50 * time.Microsecond) }
	res, err := mc.CheckCtx(ctx, sys, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Aborted {
		t.Fatalf("verdict = %v, want aborted", res.Verdict)
	}
	if !errors.Is(res.Abort.Cause, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want DeadlineExceeded", res.Abort.Cause)
	}
}

// TestPanicContainment: a panic out of model code must not crash the
// process; it aborts the run carrying the offending state's key and a
// stack trace, under both drivers.
func TestPanicContainment(t *testing.T) {
	drivers(t, func(t *testing.T, workers int) {
		sys := newChain(1000)
		sys.panicAt = 50
		res, err := mc.CheckCtx(context.Background(), sys, mc.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Aborted || res.Abort == nil || !res.Abort.Panic {
			t.Fatalf("verdict = %v, abort = %+v, want panic abort", res.Verdict, res.Abort)
		}
		if res.Abort.StateKey != "c50" {
			t.Errorf("state key = %q, want c50", res.Abort.StateKey)
		}
		if !strings.Contains(res.Abort.Cause.Error(), "model bug at 50") {
			t.Errorf("cause = %v", res.Abort.Cause)
		}
		if res.Abort.Stack == "" {
			t.Error("panic abort carries no stack trace")
		}
	})
}

// TestFailureOutranksCancellation: an invariant violation found before the
// abort is the more informative verdict and must win, under both drivers.
func TestFailureOutranksCancellation(t *testing.T) {
	drivers(t, func(t *testing.T, workers int) {
		ctx, cancel := context.WithCancelCause(context.Background())
		cancel(errors.New("too late"))
		// A bad initial state: the failure is recorded during admission,
		// before the first cancellation poll can abort.
		g := &toy.Graph{SysName: "badinit", Init: []int{0}, Nodes: []toy.Node{{Bad: true}}}
		res, err := mc.CheckCtx(ctx, g, mc.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure {
			t.Fatalf("verdict = %v, want failure (outranks abort)", res.Verdict)
		}
		if res.Abort != nil {
			t.Errorf("failure result carries abort info %+v", res.Abort)
		}
	})
}

// TestAbortSkipsGoalVerdict: "goal never witnessed" is only meaningful
// over the complete space, so an aborted run must not report a goal
// failure.
func TestAbortSkipsGoalVerdict(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("cut short"))
	g := &toy.Graph{SysName: "goal-abort", Init: []int{0}, Nodes: []toy.Node{
		{Plain: []int{1}}, {}, {Goal: true}, // node 2 unreachable
	}}
	res, err := mc.CheckCtx(ctx, g, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Aborted {
		t.Fatalf("verdict = %v, want aborted (not a spurious goal failure)", res.Verdict)
	}
}

// TestAbortSkipsLiveness: an aborted safety pass must not run the NDFS
// phase (whose verdict over a partial visited set would be meaningless).
func TestAbortSkipsLiveness(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("cut short"))
	res, err := mc.CheckCtx(ctx, fairToy(false), mc.Options{Liveness: true, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Aborted {
		t.Fatalf("verdict = %v, want aborted (liveness skipped)", res.Verdict)
	}
	if res.Space.LiveStates != 0 {
		t.Errorf("NDFS explored %d product states after an aborted safety pass", res.Space.LiveStates)
	}
}

// bigLive builds a long safe chain with an unsatisfiable leads-to goal, big
// enough that the NDFS phase crosses several cancellation-poll strides.
// armPanic makes the goal's premise predicate panic partway instead.
type bigLiveState struct{ v int32 }

func (s *bigLiveState) Key() string           { return fmt.Sprintf("%d", s.v) }
func (s *bigLiveState) Clone() ts.State       { cp := *s; return &cp }
func (s *bigLiveState) CopyFrom(src ts.State) { *s = *src.(*bigLiveState) }
func (s *bigLiveState) AppendKey(d []byte) []byte {
	return append(d, byte(s.v), byte(s.v>>8), byte(s.v>>16))
}

func bigLive(n int32, onPremise func(v int32)) ts.System {
	b := dsl.NewBuilder[*bigLiveState]("big-live", &bigLiveState{})
	b.Rule("inc", func(s *bigLiveState) bool { return s.v < n }, func(s *bigLiveState, _ *ts.Env) error { s.v++; return nil })
	b.Rule("loop", func(s *bigLiveState) bool { return s.v == n }, func(*bigLiveState, *ts.Env) error { return nil })
	b.LeadsTo("never-reached", false,
		func(s *bigLiveState) bool {
			if onPremise != nil {
				onPremise(s.v)
			}
			return false
		},
		func(*bigLiveState) bool { return false })
	return b.System()
}

// TestCancelDuringLiveness: cancellation raised while the NDFS phase is
// running aborts it at the next poll instead of finishing the search.
func TestCancelDuringLiveness(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	var calls atomic.Int64
	sys := bigLive(5000, func(int32) {
		if calls.Add(1) == 10 {
			cancel(errors.New("mid-liveness"))
		}
	})
	res, err := mc.CheckCtx(ctx, sys, mc.Options{Liveness: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Aborted {
		t.Fatalf("verdict = %v, want aborted", res.Verdict)
	}
	if !strings.Contains(res.Abort.Cause.Error(), "mid-liveness") {
		t.Errorf("cause = %v", res.Abort.Cause)
	}
}

// TestPanicDuringLiveness: a panic out of a goal predicate is contained
// like any other model-code panic, with the product state's key rendered.
func TestPanicDuringLiveness(t *testing.T) {
	sys := bigLive(100, func(v int32) {
		if v == 7 {
			panic("predicate bug")
		}
	})
	res, err := mc.CheckCtx(context.Background(), sys, mc.Options{Liveness: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Aborted || !res.Abort.Panic {
		t.Fatalf("verdict = %v, abort = %+v, want panic abort", res.Verdict, res.Abort)
	}
	if !strings.Contains(res.Abort.Cause.Error(), "predicate bug") {
		t.Errorf("cause = %v", res.Abort.Cause)
	}
}

// TestAbortedVerdictString pins the display name used in reports.
func TestAbortedVerdictString(t *testing.T) {
	if got := mc.Aborted.String(); got != "aborted" {
		t.Errorf("Aborted.String() = %q, want aborted", got)
	}
}

// TestCancellationStorm hammers cancellation timing under both drivers:
// the cancel lands at a different point of the run each iteration, and
// every outcome must be a clean Success or Aborted — never an error, a
// deadlock, or a torn result. Run under -race this doubles as the data
// race check on the abort publication paths.
func TestCancellationStorm(t *testing.T) {
	drivers(t, func(t *testing.T, workers int) {
		// Cancelled parallel levels must not strand workers: whatever the
		// storm below does, the goroutine count has to come back down.
		before := runtime.NumGoroutine()
		defer func() {
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if after := runtime.NumGoroutine(); after > before {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutines leaked: %d before, %d after\n%s",
					before, after, buf[:runtime.Stack(buf, true)])
			}
		}()
		for i := 0; i < 12; i++ {
			ctx, cancel := context.WithCancelCause(context.Background())
			var n atomic.Int64
			trigger := int64(1 + i*700) // sweeps from "immediately" past several poll strides
			sys := newChain(8000)
			sys.hook = func(int) {
				if n.Add(1) == trigger {
					cancel(errors.New("storm"))
				}
			}
			res, err := mc.CheckCtx(ctx, sys, mc.Options{Workers: workers})
			if err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
			if res.Verdict != mc.Success && res.Verdict != mc.Aborted {
				t.Fatalf("iter %d: verdict = %v", i, res.Verdict)
			}
			if res.Verdict == mc.Aborted && res.Abort == nil {
				t.Fatalf("iter %d: aborted without abort info", i)
			}
			cancel(nil)
		}
	})
}
