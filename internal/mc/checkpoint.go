// Level-boundary checkpoint/resume.
//
// With Options.CheckpointDir set, both BFS drivers snapshot the run at
// BFS level boundaries — the one point where the exploration state is
// small and closed: the visited set is a bag of fingerprints, the
// frontier is exactly the next level's states, and no state is "half
// expanded". Boundaries are save *opportunities*, not obligations: the
// throttle (Options.CheckpointEvery; due()) spaces saves by at least
// max(250ms, 20× the previous save's cost), so checkpointing costs at
// most ~5% of wall-clock however large the snapshots grow (E18). A
// checkpoint is a directory
//
//	<CheckpointDir>/ckpt-d<DDDDDDDD>/
//	    visited.bin   8-byte little-endian fingerprints (unordered)
//	    frontier.bin  concatenated ts.KeyAppender state encodings
//	    meta.json     identity + statistics (ckptMeta)
//
// written under a dot-prefixed temp name and committed by a single
// atomic rename after every file is synced — a reader (or a resuming
// run) can never observe a torn checkpoint, and a crash mid-write leaves
// only a .tmp- directory that the next checkpoint sweeps away. After a
// commit, older checkpoints are removed; at most one committed snapshot
// plus one in-flight temp exist at any time.
//
// Resume (Options.Resume) loads the newest committed checkpoint: every
// fingerprint is re-admitted through TryInsert (idempotent, so the spill
// backend's speculative duplicates collapse), the frontier is decoded
// through the system's ts.KeyDecoder, and the run statistics are
// restored — after which exploration proceeds exactly as if it had never
// stopped. The crash-resume harness pins verdict, state, transition and
// depth counts bit-identical between interrupted and uninterrupted runs,
// across drivers and across the flat and spill backends.
//
// All checkpoint I/O goes through the faultfs seam (Options.FS):
// transient faults are retried with capped backoff (surfaced as
// obs.EventIORetry), hard faults propagate as errors.
package mc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"verc3/internal/faultfs"
	"verc3/internal/obs"
	"verc3/internal/statespace"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

const (
	// ckptVersion is the on-disk checkpoint schema version.
	ckptVersion = 1
	// ckptPrefix names committed checkpoint directories (suffix: zero-padded
	// frontier depth, so lexicographic order is depth order).
	ckptPrefix = "ckpt-d"
	// ckptTmpPrefix marks in-flight (uncommitted) checkpoint directories.
	ckptTmpPrefix = ".tmp-"
	// ckptBufSize is the writer/reader chunk size (a multiple of 8 so
	// fingerprint records never straddle a read on the happy path).
	ckptBufSize = 64 << 10
)

// ckptMeta is the checkpoint's meta.json: the identity block (a resume
// refuses a checkpoint whose keying-relevant options differ — the
// fingerprints would not be comparable) plus the run statistics restored
// on resume. Worker count and driver are deliberately NOT identity: both
// drivers share the keying scheme, so a checkpoint taken by one resumes
// under the other.
type ckptMeta struct {
	Version    int    `json:"version"`
	System     string `json:"system"`
	Symmetry   bool   `json:"symmetry"`
	StringKeys bool   `json:"string_keys"`
	Backend    string `json:"backend"`

	// Depth is the BFS depth of every frontier state in the snapshot.
	Depth          int    `json:"depth"`
	Fired          int    `json:"fired"`
	WildcardAborts int    `json:"wildcard_aborts"`
	MaxDepth       int    `json:"max_depth"`
	WildcardHit    bool   `json:"wildcard_hit"`
	GoalHit        []bool `json:"goal_hit,omitempty"`
	PeakFrontier   int    `json:"peak_frontier"`
	FrontierLen    int    `json:"frontier_len"`
	VisitedLen     int    `json:"visited_len"`
}

// checkpointer writes and loads level-boundary checkpoints for one run.
type checkpointer struct {
	fs    faultfs.FS
	dir   string
	dec   ts.KeyDecoder
	dump  visited.Dumper
	o     *obs.Collector
	meta0 ckptMeta // identity template; save/load copy and compare it

	// Save throttle (see Options.CheckpointEvery): every is the minimum
	// spacing (<0 = every boundary, 0 = the ckptMinEvery default),
	// lastSave/lastCost track the previous save so its cost can scale the
	// next gap.
	every    time.Duration
	lastSave time.Time
	lastCost time.Duration

	buf    []byte    // write batching scratch
	enc    []byte    // per-state AppendKey scratch
	loaded *ckptMeta // meta of the checkpoint load() restored, if any
}

const (
	// ckptMinEvery is the default minimum spacing between saves.
	ckptMinEvery = 250 * time.Millisecond
	// ckptCostFactor scales the previous save's duration into the minimum
	// gap before the next one: a save costing c delays the next save by at
	// least ckptCostFactor×c, capping checkpoint overhead near
	// 1/ckptCostFactor (~5%) of wall-clock however large snapshots get.
	ckptCostFactor = 20
)

// due reports whether a level boundary should actually save now.
func (cp *checkpointer) due() bool {
	if cp.every < 0 {
		return true
	}
	gap := cp.every
	if gap == 0 {
		gap = ckptMinEvery
	}
	if scaled := cp.lastCost * ckptCostFactor; scaled > gap {
		gap = scaled
	}
	return time.Since(cp.lastSave) >= gap
}

// newCheckpointer validates the run's checkpoint eligibility and builds
// the writer; (nil, nil) when checkpointing is off. The gates exist
// because a checkpoint must round-trip: states need a binary encoding
// (ts.KeyAppender) the system can decode back (ts.KeyDecoder), the store
// must be able to enumerate its fingerprints losslessly (visited.Dumper —
// bitstate cannot), level boundaries must exist (BFS), and the snapshot
// cannot carry what it does not contain (trace parent chains, usage
// masks).
func newCheckpointer(sys ts.System, opt Options, store visited.Store) (*checkpointer, error) {
	if opt.CheckpointDir == "" {
		return nil, nil
	}
	if opt.Order != BFS {
		return nil, fmt.Errorf("mc: checkpointing requires BFS order (checkpoints are level-boundary snapshots)")
	}
	if opt.RecordTrace {
		return nil, fmt.Errorf("mc: checkpointing is incompatible with trace recording (parent chains are not snapshotted)")
	}
	if opt.Usage != nil {
		return nil, fmt.Errorf("mc: checkpointing is incompatible with usage tracking (masks are not snapshotted)")
	}
	if !opt.Visited.Exact() {
		return nil, fmt.Errorf("mc: checkpointing requires an exact visited backend, not %q", opt.Visited)
	}
	dump, ok := store.(visited.Dumper)
	if !ok {
		return nil, fmt.Errorf("mc: visited backend %q cannot enumerate fingerprints for checkpointing", opt.Visited)
	}
	dec, ok := sys.(ts.KeyDecoder)
	if !ok {
		return nil, fmt.Errorf("mc: system %q does not implement ts.KeyDecoder; cannot checkpoint its frontier", sys.Name())
	}
	if inits := sys.Initial(); len(inits) > 0 {
		if _, ok := inits[0].(ts.KeyAppender); !ok {
			return nil, fmt.Errorf("mc: system %q states lack ts.KeyAppender binary encodings; cannot checkpoint", sys.Name())
		}
	}
	cp := &checkpointer{
		fs:       faultfs.Or(opt.FS),
		dir:      opt.CheckpointDir,
		dec:      dec,
		dump:     dump,
		o:        opt.Obs,
		every:    opt.CheckpointEvery,
		lastSave: time.Now(),
		meta0: ckptMeta{
			Version:    ckptVersion,
			System:     sys.Name(),
			Symmetry:   opt.Symmetry,
			StringKeys: opt.StringKeys,
			Backend:    opt.Visited.String(),
		},
	}
	if err := cp.retry(faultfs.OpMkdirAll, func() error { return cp.fs.MkdirAll(cp.dir, 0o755) }); err != nil {
		return nil, fmt.Errorf("mc: checkpoint dir %s: %w", cp.dir, err)
	}
	return cp, nil
}

// ioRetryHook adapts a collector into the visited/faultfs retry callback,
// surfacing every retried transient I/O failure as a structured event.
func ioRetryHook(o *obs.Collector) func(op string, attempt int, err error) {
	if o == nil {
		return nil
	}
	return func(op string, attempt int, err error) {
		o.Event(obs.Event{
			Kind:  obs.EventIORetry,
			Op:    op,
			Round: attempt,
			Cause: err.Error(),
			Text:  fmt.Sprintf("io retry %d (%s): %v", attempt, op, err),
		})
	}
}

func (cp *checkpointer) retryHook(op faultfs.Op) func(attempt int, err error) {
	h := ioRetryHook(cp.o)
	if h == nil {
		return nil
	}
	return func(attempt int, err error) { h(string(op), attempt, err) }
}

func (cp *checkpointer) retry(op faultfs.Op, f func() error) error {
	return faultfs.Retry(faultfs.DefaultRetries, cp.retryHook(op), f)
}

// --- Writing -----------------------------------------------------------

// save writes one checkpoint and commits it atomically. meta must be a
// copy of meta0 with the run fields filled in; frontier yields the
// snapshot's frontier states in their resume order.
func (cp *checkpointer) save(meta ckptMeta, frontier func(yield func(ts.State) error) error) error {
	start := time.Now()
	defer func() {
		// Feed the throttle even on a failed save: a struggling disk is the
		// last place to retry immediately.
		cp.lastSave = time.Now()
		cp.lastCost = cp.lastSave.Sub(start)
	}()
	name := fmt.Sprintf("%s%08d", ckptPrefix, meta.Depth)
	tmp := filepath.Join(cp.dir, ckptTmpPrefix+name)
	final := filepath.Join(cp.dir, name)
	cp.fs.RemoveAll(tmp) // leftover of a crashed attempt; best-effort
	if err := cp.retry(faultfs.OpMkdirAll, func() error { return cp.fs.MkdirAll(tmp, 0o755) }); err != nil {
		return fmt.Errorf("mc: checkpoint %s: %w", tmp, err)
	}
	err := cp.writeFile(filepath.Join(tmp, "visited.bin"), func(emit func([]byte) error) error {
		var rec [8]byte
		return cp.dump.DumpFingerprints(func(fp statespace.Fingerprint) error {
			binary.LittleEndian.PutUint64(rec[:], uint64(fp))
			return emit(rec[:])
		})
	})
	if err == nil {
		err = cp.writeFile(filepath.Join(tmp, "frontier.bin"), func(emit func([]byte) error) error {
			return frontier(func(s ts.State) error {
				a, ok := s.(ts.KeyAppender)
				if !ok {
					return fmt.Errorf("frontier state %q lacks ts.KeyAppender", safeKey(s))
				}
				cp.enc = a.AppendKey(cp.enc[:0])
				return emit(cp.enc)
			})
		})
	}
	if err == nil {
		// meta.json is written last inside the temp dir: its presence marks
		// the payload files complete even before the rename (the rename is
		// still the only commit point readers trust).
		var mb []byte
		if mb, err = json.MarshalIndent(&meta, "", "  "); err == nil {
			mb = append(mb, '\n')
			err = cp.writeFile(filepath.Join(tmp, "meta.json"), func(emit func([]byte) error) error {
				return emit(mb)
			})
		}
	}
	if err != nil {
		cp.fs.RemoveAll(tmp)
		return fmt.Errorf("mc: checkpoint %s: %w", tmp, err)
	}
	cp.fs.RemoveAll(final) // a re-run over an old dir may collide; replace
	if err := cp.retry(faultfs.OpRename, func() error { return cp.fs.Rename(tmp, final) }); err != nil {
		cp.fs.RemoveAll(tmp)
		return fmt.Errorf("mc: checkpoint commit %s: %w", final, err)
	}
	cp.sweep(name)
	cp.o.Event(obs.Event{
		Kind:   obs.EventCheckpoint,
		Depth:  meta.Depth,
		States: meta.VisitedLen,
		Text: fmt.Sprintf("checkpoint d=%d committed (%d states, %d frontier)",
			meta.Depth, meta.VisitedLen, meta.FrontierLen),
	})
	return nil
}

// writeFile streams fill's emitted byte runs into a freshly created file,
// batching into ckptBufSize writes, syncing before close. Writes go
// through faultfs.WriteFull: short writes are continued, transient
// faults retried.
func (cp *checkpointer) writeFile(name string, fill func(emit func([]byte) error) error) error {
	var f faultfs.File
	if err := cp.retry(faultfs.OpCreate, func() error {
		var cerr error
		f, cerr = cp.fs.Create(name)
		return cerr
	}); err != nil {
		return err
	}
	buf := cp.buf[:0]
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		werr := faultfs.WriteFull(f, buf, cp.retryHook(faultfs.OpWrite))
		buf = buf[:0]
		return werr
	}
	err := fill(func(p []byte) error {
		buf = append(buf, p...)
		if len(buf) >= ckptBufSize {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err == nil {
		err = cp.retry(faultfs.OpSync, f.Sync)
	}
	cerr := f.Close()
	cp.buf = buf[:0]
	if err != nil {
		return err
	}
	return cerr
}

// sweep removes every checkpoint directory other than keep, and any stale
// temp directories. Best-effort: a failed removal costs disk, never
// correctness.
func (cp *checkpointer) sweep(keep string) {
	entries, err := cp.fs.ReadDir(cp.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		if n == keep {
			continue
		}
		if strings.HasPrefix(n, ckptPrefix) || strings.HasPrefix(n, ckptTmpPrefix) {
			cp.fs.RemoveAll(filepath.Join(cp.dir, n))
		}
	}
}

// --- Loading -----------------------------------------------------------

// latest locates the newest committed checkpoint and validates its
// identity against this run's options. ("", nil, nil) when none exists —
// a fresh start, not an error; a checkpoint that exists but cannot be
// read or does not match is an error, never silently ignored.
func (cp *checkpointer) latest() (string, *ckptMeta, error) {
	entries, err := cp.fs.ReadDir(cp.dir)
	if err != nil {
		return "", nil, fmt.Errorf("mc: checkpoint dir %s: %w", cp.dir, err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ckptPrefix) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", nil, nil
	}
	sort.Strings(names)
	path := filepath.Join(cp.dir, names[len(names)-1])
	mb, err := cp.readFile(filepath.Join(path, "meta.json"))
	if err != nil {
		return "", nil, fmt.Errorf("mc: checkpoint %s: %w", path, err)
	}
	var meta ckptMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return "", nil, fmt.Errorf("mc: checkpoint %s: meta: %w", path, err)
	}
	if meta.Version != ckptVersion {
		return "", nil, fmt.Errorf("mc: checkpoint %s: version %d, want %d", path, meta.Version, ckptVersion)
	}
	if meta.System != cp.meta0.System || meta.Symmetry != cp.meta0.Symmetry ||
		meta.StringKeys != cp.meta0.StringKeys || meta.Backend != cp.meta0.Backend {
		return "", nil, fmt.Errorf(
			"mc: checkpoint %s was taken for system=%s symmetry=%v stringkeys=%v backend=%s; this run is system=%s symmetry=%v stringkeys=%v backend=%s",
			path, meta.System, meta.Symmetry, meta.StringKeys, meta.Backend,
			cp.meta0.System, cp.meta0.Symmetry, cp.meta0.StringKeys, cp.meta0.Backend)
	}
	return path, &meta, nil
}

// load restores the newest committed checkpoint into store and returns
// its meta and decoded frontier states; (nil, nil, nil) when none exists.
func (cp *checkpointer) load(store visited.Store) (*ckptMeta, []ts.State, error) {
	path, meta, err := cp.latest()
	if err != nil || meta == nil {
		return meta, nil, err
	}
	n := 0
	err = cp.eachFingerprint(filepath.Join(path, "visited.bin"), func(fp uint64) error {
		store.TryInsert(statespace.Fingerprint(fp))
		n++
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("mc: checkpoint %s: %w", path, err)
	}
	if got := store.Len(); got != meta.VisitedLen {
		return nil, nil, fmt.Errorf("mc: checkpoint %s: visited.bin restored %d distinct states (from %d records), meta says %d",
			path, got, n, meta.VisitedLen)
	}
	fb, err := cp.readFile(filepath.Join(path, "frontier.bin"))
	if err != nil {
		return nil, nil, fmt.Errorf("mc: checkpoint %s: %w", path, err)
	}
	states := make([]ts.State, 0, meta.FrontierLen)
	for len(fb) > 0 {
		s, rest, derr := cp.dec.DecodeKey(fb)
		if derr != nil {
			return nil, nil, fmt.Errorf("mc: checkpoint %s: frontier state %d: %w", path, len(states), derr)
		}
		states = append(states, s)
		fb = rest
	}
	if len(states) != meta.FrontierLen {
		return nil, nil, fmt.Errorf("mc: checkpoint %s: frontier.bin holds %d states, meta says %d",
			path, len(states), meta.FrontierLen)
	}
	cp.loaded = meta
	cp.o.Event(obs.Event{
		Kind:   obs.EventResume,
		Depth:  meta.Depth,
		States: meta.VisitedLen,
		Text: fmt.Sprintf("resumed from checkpoint d=%d (%d states, %d frontier)",
			meta.Depth, meta.VisitedLen, meta.FrontierLen),
	})
	return meta, states, nil
}

// readFile reads a whole (small: meta, one frontier level) file through
// the seam with transient-retry on every chunk.
func (cp *checkpointer) readFile(name string) ([]byte, error) {
	f, err := cp.openFile(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	chunk := make([]byte, ckptBufSize)
	var off int64
	for {
		n, eof, err := cp.readAt(f, chunk, off)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk[:n]...)
		off += int64(n)
		if eof || n == 0 {
			return out, nil
		}
	}
}

// eachFingerprint streams visited.bin without materializing it: spilled
// runs can dwarf RAM, and the resume path must not undo the spill
// backend's memory bound.
func (cp *checkpointer) eachFingerprint(name string, yield func(fp uint64) error) error {
	f, err := cp.openFile(name)
	if err != nil {
		return err
	}
	defer f.Close()
	chunk := make([]byte, ckptBufSize)
	buf := make([]byte, 0, ckptBufSize+8)
	var off int64
	for {
		n, eof, err := cp.readAt(f, chunk, off)
		if err != nil {
			return err
		}
		off += int64(n)
		buf = append(buf, chunk[:n]...)
		i := 0
		for ; i+8 <= len(buf); i += 8 {
			if err := yield(binary.LittleEndian.Uint64(buf[i:])); err != nil {
				return err
			}
		}
		buf = append(buf[:0], buf[i:]...)
		if eof || n == 0 {
			if len(buf) != 0 {
				return fmt.Errorf("visited.bin: %d trailing bytes (truncated record)", len(buf))
			}
			return nil
		}
	}
}

func (cp *checkpointer) openFile(name string) (faultfs.File, error) {
	var f faultfs.File
	err := cp.retry(faultfs.OpOpen, func() error {
		var oerr error
		f, oerr = cp.fs.Open(name)
		return oerr
	})
	return f, err
}

// readAt is one retried chunk read; eof reports end-of-file (not an
// error: the loop drains the final partial chunk first).
func (cp *checkpointer) readAt(f faultfs.File, p []byte, off int64) (n int, eof bool, err error) {
	err = cp.retry(faultfs.OpReadAt, func() error {
		var rerr error
		n, rerr = f.ReadAt(p, off)
		if rerr == io.EOF {
			eof = true
			return nil
		}
		return rerr
	})
	return n, eof, err
}

// --- Driver glue -------------------------------------------------------

// resumeSeq seeds the sequential driver from the newest checkpoint; false
// when resume is off or no checkpoint exists (fresh start).
func (c *checker) resumeSeq() (bool, error) {
	if c.ckpt == nil || !c.opt.Resume {
		return false, nil
	}
	meta, states, err := c.ckpt.load(c.visited)
	if err != nil || meta == nil {
		return false, err
	}
	c.admitted = c.visited.Len()
	c.res.Stats.FiredTransitions = meta.Fired
	c.res.Stats.WildcardAborts = meta.WildcardAborts
	c.res.Stats.MaxDepth = meta.MaxDepth
	c.res.WildcardHit = meta.WildcardHit
	for i := range c.goalHit {
		if i < len(meta.GoalHit) {
			c.goalHit[i] = meta.GoalHit[i]
		}
	}
	c.resumePeak = meta.PeakFrontier
	for _, s := range states {
		c.frontier.PushBack(item{state: s, depth: meta.Depth})
	}
	return true, nil
}

// resumeDepth is the restored frontier's depth — the resumed loop's level
// watermark, so the next boundary fires at meta.Depth+1 exactly as it
// would have in the uninterrupted run.
func (c *checker) resumeDepth() int { return c.ckpt.loaded.Depth }

// checkpointSeq snapshots the sequential driver at a level boundary. The
// popped item — the new level's first state, already off the queue — is
// saved first so the resumed queue pops it first too.
func (c *checker) checkpointSeq(popped item) error {
	if c.ckpt == nil || !c.ckpt.due() {
		return nil
	}
	meta := c.ckpt.meta0
	meta.Depth = popped.depth
	meta.Fired = c.res.Stats.FiredTransitions
	meta.WildcardAborts = c.res.Stats.WildcardAborts
	meta.MaxDepth = c.res.Stats.MaxDepth
	meta.WildcardHit = c.res.WildcardHit
	meta.GoalHit = append([]bool(nil), c.goalHit...)
	meta.PeakFrontier = max(c.frontier.Peak(), c.resumePeak)
	meta.FrontierLen = 1 + c.frontier.Len()
	meta.VisitedLen = c.visited.Len()
	return c.ckpt.save(meta, func(yield func(ts.State) error) error {
		if err := yield(popped.state); err != nil {
			return err
		}
		return c.frontier.Each(func(it item) error { return yield(it.state) })
	})
}

// resumePar seeds the parallel driver from the newest checkpoint,
// returning the restored frontier (nil for a fresh start) and its depth.
func (c *pchecker) resumePar() (int, []pitem, error) {
	if c.ckpt == nil || !c.opt.Resume {
		return 0, nil, nil
	}
	meta, states, err := c.ckpt.load(c.visited)
	if err != nil || meta == nil {
		return 0, nil, err
	}
	if c.opt.MaxStates > 0 {
		c.admitted.Store(int64(c.visited.Len()))
	}
	c.fired.Store(int64(meta.Fired))
	c.aborts.Store(int64(meta.WildcardAborts))
	c.maxDepth.Store(int64(meta.MaxDepth))
	c.wildcard.Store(meta.WildcardHit)
	for i := range c.goalHit {
		if i < len(meta.GoalHit) && meta.GoalHit[i] {
			c.goalHit[i].Store(true)
		}
	}
	c.peak = meta.PeakFrontier
	items := make([]pitem, len(states))
	for i, s := range states {
		items[i] = pitem{state: s, depth: meta.Depth}
	}
	return meta.Depth, items, nil
}

// checkpointPar snapshots the parallel driver between levels: next is the
// freshly completed frontier, all at the given depth. An empty next is
// skipped — the run is about to finish, and a zero-frontier checkpoint
// buys nothing.
func (c *pchecker) checkpointPar(depth int, next []pitem) error {
	if c.ckpt == nil || len(next) == 0 || !c.ckpt.due() {
		return nil
	}
	meta := c.ckpt.meta0
	meta.Depth = depth
	meta.Fired = int(c.fired.Load())
	meta.WildcardAborts = int(c.aborts.Load())
	meta.MaxDepth = int(c.maxDepth.Load())
	meta.WildcardHit = c.wildcard.Load()
	meta.GoalHit = make([]bool, len(c.goalHit))
	for i := range c.goalHit {
		meta.GoalHit[i] = c.goalHit[i].Load()
	}
	meta.PeakFrontier = c.peak
	meta.FrontierLen = len(next)
	meta.VisitedLen = c.visited.Len()
	return c.ckpt.save(meta, func(yield func(ts.State) error) error {
		for i := range next {
			if err := yield(next[i].state); err != nil {
				return err
			}
		}
		return nil
	})
}
