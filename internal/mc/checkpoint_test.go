package mc_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"verc3/internal/faultfs"
	"verc3/internal/mc"
	"verc3/internal/msi"
	"verc3/internal/obs"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

// cpState / cpSys: a binary tree 0 → {1,2}, v → {2v+1, 2v+2} up to n
// states, with the binary key encodings checkpointing requires and a
// hook for killing the run from inside model code. Level k holds 2^k
// states, so a mid-run kill lands inside a level of real width — the
// interesting case for frontier snapshots.
type cpState int32

func (s cpState) Key() string     { return fmt.Sprintf("s%d", int32(s)) }
func (s cpState) Clone() ts.State { return s }
func (s cpState) AppendKey(d []byte) []byte {
	return append(d, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
}

type cpSys struct {
	name string
	n    int32
	hook func()
}

func (c *cpSys) Name() string        { return c.name }
func (c *cpSys) Initial() []ts.State { return []ts.State{cpState(0)} }
func (c *cpSys) Transitions(s ts.State) []ts.Transition {
	if c.hook != nil {
		c.hook()
	}
	v := int32(s.(cpState))
	var out []ts.Transition
	for _, ch := range [2]int32{2*v + 1, 2*v + 2} {
		if ch < c.n {
			ch := ch
			out = append(out, ts.Transition{Name: "child", Fire: func(*ts.Env) (ts.State, error) {
				return cpState(ch), nil
			}})
		}
	}
	return out
}
func (c *cpSys) Invariants() []ts.Invariant { return nil }
func (c *cpSys) Quiescent(ts.State) bool    { return true }
func (c *cpSys) DecodeKey(data []byte) (ts.State, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("cptree: truncated key: %d bytes", len(data))
	}
	v := int32(data[0]) | int32(data[1])<<8 | int32(data[2])<<16 | int32(data[3])<<24
	return cpState(v), data[4:], nil
}

const cpTreeN = 4095 // full tree: depth 11, widest level 2048

// ckptConfig crosses the two exact backends that matter (flat in-RAM,
// spill with a budget small enough to actually hit disk) with both
// drivers.
type ckptConfig struct {
	name    string
	workers int
	backend visited.Kind
}

func ckptConfigs() []ckptConfig {
	return []ckptConfig{
		{"flat-seq", 1, visited.Flat},
		{"flat-par", 4, visited.Flat},
		{"spill-seq", 1, visited.Spill},
		{"spill-par", 4, visited.Spill},
	}
}

func (c ckptConfig) options(t *testing.T) mc.Options {
	opt := mc.Options{Workers: c.workers, Visited: c.backend}
	if c.backend == visited.Spill {
		opt.SpillMem = 8 << 10 // a few KiB: forces real spill runs on cpTreeN states
		opt.SpillDir = t.TempDir()
	}
	return opt
}

// assertSameRun compares the four counts the resume contract promises
// bit-identical.
func assertSameRun(t *testing.T, label string, got, want *mc.Result) {
	t.Helper()
	if got.Verdict != want.Verdict {
		t.Errorf("%s: verdict = %v, want %v", label, got.Verdict, want.Verdict)
	}
	if got.Stats.VisitedStates != want.Stats.VisitedStates {
		t.Errorf("%s: states = %d, want %d", label, got.Stats.VisitedStates, want.Stats.VisitedStates)
	}
	if got.Stats.FiredTransitions != want.Stats.FiredTransitions {
		t.Errorf("%s: transitions = %d, want %d", label, got.Stats.FiredTransitions, want.Stats.FiredTransitions)
	}
	if got.Stats.MaxDepth != want.Stats.MaxDepth {
		t.Errorf("%s: depth = %d, want %d", label, got.Stats.MaxDepth, want.Stats.MaxDepth)
	}
}

// TestCheckpointResumeBitIdentical is the kill-and-resume harness: for
// each backend × driver configuration, kill the run at several points —
// before the first checkpoint, mid-tree, near the end — then resume and
// demand the uninterrupted run's verdict and counts exactly.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, cfg := range ckptConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			baseline, err := mc.Check(&cpSys{name: "cptree", n: cpTreeN}, cfg.options(t))
			if err != nil {
				t.Fatal(err)
			}
			if baseline.Verdict != mc.Success || baseline.Stats.VisitedStates != cpTreeN {
				t.Fatalf("baseline: %v, %d states", baseline.Verdict, baseline.Stats.VisitedStates)
			}
			for _, kill := range []int64{1, 200, 1000, 3000} {
				dir := t.TempDir()

				ctx, cancel := context.WithCancelCause(context.Background())
				var n atomic.Int64
				killed := &cpSys{name: "cptree", n: cpTreeN, hook: func() {
					if n.Add(1) == kill {
						cancel(errors.New("killed by harness"))
					}
				}}
				opt := cfg.options(t)
				opt.CheckpointDir = dir
				opt.CheckpointEvery = -1
				res, err := mc.CheckCtx(ctx, killed, opt)
				cancel(nil)
				if err != nil {
					t.Fatalf("kill@%d: %v", kill, err)
				}
				if res.Verdict != mc.Aborted {
					t.Fatalf("kill@%d: verdict = %v, want aborted", kill, res.Verdict)
				}
				assertOneCheckpointAtMost(t, dir)

				opt = cfg.options(t)
				opt.CheckpointDir = dir
				opt.CheckpointEvery = -1
				opt.Resume = true
				resumed, err := mc.Check(&cpSys{name: "cptree", n: cpTreeN}, opt)
				if err != nil {
					t.Fatalf("resume@%d: %v", kill, err)
				}
				assertSameRun(t, fmt.Sprintf("resume@%d", kill), resumed, baseline)
				if kill >= 1000 && !resumed.Resumed {
					t.Errorf("resume@%d: Resumed = false after a mid-tree kill", kill)
				}
			}
		})
	}
}

// assertOneCheckpointAtMost: the sweep keeps at most one committed
// checkpoint and never leaves a torn tmp dir behind.
func assertOneCheckpointAtMost(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "ckpt-d"):
			ckpts++
		case strings.HasPrefix(e.Name(), ".tmp-"):
			t.Errorf("stale tmp dir %q left behind", e.Name())
		default:
			t.Errorf("unexpected entry %q in checkpoint dir", e.Name())
		}
	}
	if ckpts > 1 {
		t.Errorf("%d committed checkpoints, want at most 1", ckpts)
	}
}

// TestCheckpointCrossDriverResume: the drivers are deliberately not part
// of the checkpoint identity — a run killed under one driver must resume
// under the other with identical counts (both dedupe by the same
// canonical-key fingerprint).
func TestCheckpointCrossDriverResume(t *testing.T) {
	baseline, err := mc.Check(&cpSys{name: "cptree", n: cpTreeN}, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dirn := range []struct {
		name                 string
		killWith, resumeWith int
	}{
		{"seq-to-par", 1, 4},
		{"par-to-seq", 4, 1},
	} {
		t.Run(dirn.name, func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancelCause(context.Background())
			var n atomic.Int64
			killed := &cpSys{name: "cptree", n: cpTreeN, hook: func() {
				if n.Add(1) == 1200 {
					cancel(errors.New("killed by harness"))
				}
			}}
			res, err := mc.CheckCtx(ctx, killed, mc.Options{Workers: dirn.killWith, CheckpointDir: dir, CheckpointEvery: -1})
			cancel(nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != mc.Aborted {
				t.Fatalf("verdict = %v, want aborted", res.Verdict)
			}
			resumed, err := mc.Check(&cpSys{name: "cptree", n: cpTreeN},
				mc.Options{Workers: dirn.resumeWith, CheckpointDir: dir, CheckpointEvery: -1, Resume: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, dirn.name, resumed, baseline)
		})
	}
}

// TestCheckpointIdentityMismatch: a checkpoint written by one system must
// refuse to seed a different one — silently mixing fingerprint sets would
// produce garbage verdicts.
func TestCheckpointIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancelCause(context.Background())
	var n atomic.Int64
	killed := &cpSys{name: "cptree-a", n: cpTreeN, hook: func() {
		if n.Add(1) == 1000 {
			cancel(errors.New("killed by harness"))
		}
	}}
	if _, err := mc.CheckCtx(ctx, killed, mc.Options{CheckpointDir: dir, CheckpointEvery: -1}); err != nil {
		t.Fatal(err)
	}
	cancel(nil)
	_, err := mc.Check(&cpSys{name: "cptree-b", n: cpTreeN},
		mc.Options{CheckpointDir: dir, CheckpointEvery: -1, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "cptree-a") {
		t.Fatalf("err = %v, want identity mismatch naming the checkpoint's system", err)
	}
}

// TestCheckpointGating pins the refusals: every configuration the
// snapshot format cannot represent must be an upfront error, not a
// silently wrong checkpoint.
func TestCheckpointGating(t *testing.T) {
	sys := func() *cpSys { return &cpSys{name: "cptree", n: 63} }
	for _, tc := range []struct {
		name string
		opt  mc.Options
		want string
	}{
		{"trace", mc.Options{CheckpointDir: "x", CheckpointEvery: -1, RecordTrace: true}, "trace"},
		{"dfs", mc.Options{CheckpointDir: "x", CheckpointEvery: -1, Order: mc.DFS}, "BFS"},
		{"bitstate", mc.Options{CheckpointDir: "x", CheckpointEvery: -1, Visited: visited.Bitstate}, "exact"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := mc.Check(sys(), tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	t.Run("no-decoder", func(t *testing.T) {
		// chain states have no binary encodings at all.
		_, err := mc.Check(newChain(10), mc.Options{CheckpointDir: t.TempDir(), CheckpointEvery: -1})
		if err == nil || !strings.Contains(err.Error(), "KeyDecoder") {
			t.Fatalf("err = %v, want KeyDecoder refusal", err)
		}
	})
}

// TestCheckpointTransientFaultRetried: a transient write glitch during a
// checkpoint save must be retried to success — the run completes, and the
// retries are visible as io-retry telemetry events.
func TestCheckpointTransientFaultRetried(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	inj.Plan(&faultfs.Fault{Transient: true, Only: faultfs.OpWrite, Skip: 2, Repeat: 1})
	col := obs.New()
	res, err := mc.Check(&cpSys{name: "cptree", n: cpTreeN},
		mc.Options{CheckpointDir: t.TempDir(), CheckpointEvery: -1, FS: inj, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success || res.Stats.VisitedStates != cpTreeN {
		t.Fatalf("got %v, %d states", res.Verdict, res.Stats.VisitedStates)
	}
	events, _ := col.Events()
	retries, checkpoints := 0, 0
	for _, e := range events {
		switch e.Kind {
		case obs.EventIORetry:
			retries++
		case obs.EventCheckpoint:
			checkpoints++
		}
	}
	if retries == 0 {
		t.Error("no io-retry events for a retried transient fault")
	}
	if checkpoints == 0 {
		t.Error("no checkpoint events on a checkpointed run")
	}
}

// TestCheckpointHardFaultKeepsLastGood: a hard I/O failure mid-save must
// surface as a run error, must not leave a torn tmp directory behind, and
// must leave the previous committed checkpoint resumable.
func TestCheckpointHardFaultKeepsLastGood(t *testing.T) {
	baseline, err := mc.Check(&cpSys{name: "cptree", n: cpTreeN}, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Phase 1: kill a clean checkpointed run mid-tree so dir holds one
	// committed checkpoint.
	ctx, cancel := context.WithCancelCause(context.Background())
	var n atomic.Int64
	killed := &cpSys{name: "cptree", n: cpTreeN, hook: func() {
		if n.Add(1) == 300 {
			cancel(errors.New("killed by harness"))
		}
	}}
	if _, err := mc.CheckCtx(ctx, killed, mc.Options{CheckpointDir: dir, CheckpointEvery: -1}); err != nil {
		t.Fatal(err)
	}
	cancel(nil)
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one committed checkpoint, got %v (%v)", ents, err)
	}
	good := ents[0].Name()

	// Phase 2: resume with the disk failing hard on the first checkpoint
	// write. The resume load itself reads fine; the next save must error
	// out of Check without corrupting the directory.
	inj := faultfs.NewInjector(nil)
	inj.Plan(&faultfs.Fault{Err: faultfs.ErrNoSpace, Only: faultfs.OpWrite})
	_, err = mc.Check(&cpSys{name: "cptree", n: cpTreeN},
		mc.Options{CheckpointDir: dir, CheckpointEvery: -1, Resume: true, FS: inj})
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v, want checkpoint save failure", err)
	}
	assertOneCheckpointAtMost(t, dir)
	ents, err = os.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != good {
		t.Fatalf("last good checkpoint %q not preserved: %v (%v)", good, ents, err)
	}

	// Phase 3: with the disk healthy again, the surviving checkpoint still
	// resumes to the uninterrupted run's exact counts.
	resumed, err := mc.Check(&cpSys{name: "cptree", n: cpTreeN},
		mc.Options{CheckpointDir: dir, CheckpointEvery: -1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "resume-after-hard-fault", resumed, baseline)
	if !resumed.Resumed {
		t.Error("Resumed = false after resuming from the surviving checkpoint")
	}
}

// FuzzCheckpointRoundTrip fuzzes the checkpoint frontier decoder on the
// paper's MSI system: DecodeKey must never panic on hostile bytes, and
// whatever it does accept must re-encode to exactly the bytes it
// consumed — the property resume correctness rests on.
func FuzzCheckpointRoundTrip(f *testing.F) {
	sys := msi.New(msi.Config{Caches: 3})
	var frontier []ts.State
	for _, s := range sys.Initial() {
		f.Add(s.(ts.KeyAppender).AppendKey(nil))
		frontier = append(frontier, s)
	}
	// Seed a couple of non-initial states too.
	for depth := 0; depth < 2 && len(frontier) > 0; depth++ {
		var next []ts.State
		for _, s := range frontier {
			for _, tr := range sys.Transitions(s) {
				ns, err := tr.Fire(nil)
				if err != nil {
					continue
				}
				f.Add(ns.(ts.KeyAppender).AppendKey(nil))
				next = append(next, ns)
			}
		}
		frontier = next
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rest, err := sys.DecodeKey(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder grew the input: %d leftover of %d", len(rest), len(data))
		}
		// The decoder tolerates non-canonical input (redundant varints,
		// out-of-order network messages get re-canonicalized), so raw
		// hostile bytes need not re-encode identically. What resume
		// correctness rests on is that the canonical form — what AppendKey
		// writes into checkpoint files — is a fixed point: encode ∘ decode
		// on it must be the identity, bit for bit.
		enc := s.(ts.KeyAppender).AppendKey(nil)
		s2, rest2, err := sys.DecodeKey(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v (% x)", err, enc)
		}
		if len(rest2) != 0 {
			t.Fatalf("canonical encoding not fully consumed: %d bytes left", len(rest2))
		}
		if enc2 := s2.(ts.KeyAppender).AppendKey(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\nfirst  %x\nsecond %x", enc, enc2)
		}
		if s.Key() != s2.Key() {
			t.Fatalf("round-trip changed the state: %q vs %q", s.Key(), s2.Key())
		}
	})
}
