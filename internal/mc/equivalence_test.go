package mc_test

// Cross-driver, cross-configuration equivalence tests for the
// trace-optional exploration representation. The CI workflow runs
// everything matching TestZooEquivalence as a dedicated job step.

import (
	"fmt"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/trace"
	"verc3/internal/ts"
	"verc3/internal/visited"
	"verc3/internal/zoo"
)

// TestZooEquivalenceTraceOnOff is the headline invariance check for the
// trace-optional refactor: for every registered system, every combination
// of driver (1 and 8 workers) and RecordTrace on/off must report the same
// verdict and the same exploration statistics — the trace store is
// bookkeeping only and must never influence the search. Sketch systems are
// explored under an all-wildcard environment (every hole aborts its
// branch), which still explores a deterministic sub-space.
func TestZooEquivalenceTraceOnOff(t *testing.T) {
	for _, name := range zoo.Names() {
		t.Run(name, func(t *testing.T) {
			type combo struct {
				workers int
				record  bool
			}
			var base *mc.Result
			for _, cb := range []combo{{1, false}, {1, true}, {8, false}, {8, true}} {
				sys, err := zoo.Get(name, zoo.Params{Caches: 2})
				if err != nil {
					t.Fatal(err)
				}
				res, err := mc.Check(sys, mc.Options{
					Symmetry:    true,
					Env:         ts.NewEnv(wildcardChooser{}), // complete models never call Choose
					Workers:     cb.workers,
					RecordTrace: cb.record,
				})
				if err != nil {
					t.Fatalf("workers=%d record=%v: %v", cb.workers, cb.record, err)
				}
				if !cb.record && res.Space.TraceNodes != 0 {
					t.Errorf("workers=%d: %d trace nodes allocated with RecordTrace off", cb.workers, res.Space.TraceNodes)
				}
				if cb.record && res.Space.TraceNodes != res.Stats.VisitedStates {
					t.Errorf("workers=%d: %d trace nodes for %d states with RecordTrace on",
						cb.workers, res.Space.TraceNodes, res.Stats.VisitedStates)
				}
				if res.Space.States != res.Stats.VisitedStates {
					t.Errorf("workers=%d record=%v: Space.States=%d vs VisitedStates=%d",
						cb.workers, cb.record, res.Space.States, res.Stats.VisitedStates)
				}
				if base == nil {
					base = res
					continue
				}
				if res.Verdict != base.Verdict {
					t.Errorf("workers=%d record=%v: verdict %v, want %v", cb.workers, cb.record, res.Verdict, base.Verdict)
				}
				if res.Stats.VisitedStates != base.Stats.VisitedStates {
					t.Errorf("workers=%d record=%v: states %d, want %d", cb.workers, cb.record, res.Stats.VisitedStates, base.Stats.VisitedStates)
				}
				if res.Stats.FiredTransitions != base.Stats.FiredTransitions {
					t.Errorf("workers=%d record=%v: transitions %d, want %d", cb.workers, cb.record, res.Stats.FiredTransitions, base.Stats.FiredTransitions)
				}
				if res.Stats.MaxDepth != base.Stats.MaxDepth {
					t.Errorf("workers=%d record=%v: depth %d, want %d", cb.workers, cb.record, res.Stats.MaxDepth, base.Stats.MaxDepth)
				}
				if res.Stats.WildcardAborts != base.Stats.WildcardAborts {
					t.Errorf("workers=%d record=%v: aborts %d, want %d", cb.workers, cb.record, res.Stats.WildcardAborts, base.Stats.WildcardAborts)
				}
			}
		})
	}
}

// TestZooEquivalenceVisitedBackends is the invariance check for the
// pluggable visited-set storage: for every registered system, all three
// exact backends (flat open addressing, the original Go maps, and the
// disk-spilling two-level store) under both drivers must report the same
// verdict and exploration statistics — the storage layer decides memory
// layout, never search semantics. Every run must also self-report as
// exact with a positive measured footprint. The spill runs get a RAM
// budget at the floor, so even the zoo's small spaces cross the disk tier
// and the per-level merges.
func TestZooEquivalenceVisitedBackends(t *testing.T) {
	for _, name := range zoo.Names() {
		t.Run(name, func(t *testing.T) {
			type combo struct {
				workers int
				backend visited.Kind
			}
			var base *mc.Result
			for _, cb := range []combo{
				{1, visited.Flat}, {1, visited.Map}, {1, visited.Spill},
				{8, visited.Flat}, {8, visited.Map}, {8, visited.Spill},
			} {
				sys, err := zoo.Get(name, zoo.Params{Caches: 2})
				if err != nil {
					t.Fatal(err)
				}
				res, err := mc.Check(sys, mc.Options{
					Symmetry: true,
					Env:      ts.NewEnv(wildcardChooser{}), // complete models never call Choose
					Workers:  cb.workers,
					Visited:  cb.backend,
					SpillMem: 1, // floor: force flushes on even tiny spaces
					SpillDir: t.TempDir(),
				})
				if err != nil {
					t.Fatalf("workers=%d visited=%v: %v", cb.workers, cb.backend, err)
				}
				if !res.Exact || res.Space.Inexact {
					t.Errorf("workers=%d visited=%v: exact backend reported inexact", cb.workers, cb.backend)
				}
				if res.Space.Backend != cb.backend.String() {
					t.Errorf("workers=%d visited=%v: Space.Backend = %q", cb.workers, cb.backend, res.Space.Backend)
				}
				if res.Space.VisitedBytes <= 0 {
					t.Errorf("workers=%d visited=%v: VisitedBytes = %d", cb.workers, cb.backend, res.Space.VisitedBytes)
				}
				if base == nil {
					base = res
					continue
				}
				if res.Verdict != base.Verdict {
					t.Errorf("workers=%d visited=%v: verdict %v, want %v", cb.workers, cb.backend, res.Verdict, base.Verdict)
				}
				if res.Stats.VisitedStates != base.Stats.VisitedStates {
					t.Errorf("workers=%d visited=%v: states %d, want %d", cb.workers, cb.backend, res.Stats.VisitedStates, base.Stats.VisitedStates)
				}
				if res.Stats.FiredTransitions != base.Stats.FiredTransitions {
					t.Errorf("workers=%d visited=%v: transitions %d, want %d", cb.workers, cb.backend, res.Stats.FiredTransitions, base.Stats.FiredTransitions)
				}
				if res.Stats.MaxDepth != base.Stats.MaxDepth {
					t.Errorf("workers=%d visited=%v: depth %d, want %d", cb.workers, cb.backend, res.Stats.MaxDepth, base.Stats.MaxDepth)
				}
				if res.Stats.WildcardAborts != base.Stats.WildcardAborts {
					t.Errorf("workers=%d visited=%v: aborts %d, want %d", cb.workers, cb.backend, res.Stats.WildcardAborts, base.Stats.WildcardAborts)
				}
			}
		})
	}
}

// TestFlatVisitedBytesReduction pins the tentpole's headline number: on
// msi-complete, the flat backend's measured visited-set footprint must be
// at least 30% below the map backend's under the parallel driver (whose
// sharded maps carry real per-shard overhead), and strictly below it
// sequentially. Verdict/state equality across backends is covered by
// TestZooEquivalenceVisitedBackends; this test is only about bytes.
func TestFlatVisitedBytesReduction(t *testing.T) {
	run := func(kind visited.Kind, workers int) *mc.Result {
		sys, err := zoo.Get("msi-complete", zoo.Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(sys, mc.Options{Symmetry: true, Workers: workers, Visited: kind})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Success {
			t.Fatalf("visited=%v workers=%d: verdict %v", kind, workers, res.Verdict)
		}
		return res
	}
	perState := func(r *mc.Result) float64 {
		return float64(r.Space.VisitedBytes) / float64(r.Space.States)
	}

	mapPar, flatPar := run(visited.Map, 4), run(visited.Flat, 4)
	t.Logf("parallel driver: map %.1f B/state, flat %.1f B/state (%.0f%% reduction)",
		perState(mapPar), perState(flatPar), 100*(1-perState(flatPar)/perState(mapPar)))
	if perState(flatPar) > 0.7*perState(mapPar) {
		t.Errorf("parallel flat = %.1f B/state, want ≥30%% below map's %.1f", perState(flatPar), perState(mapPar))
	}

	mapSeq, flatSeq := run(visited.Map, 1), run(visited.Flat, 1)
	t.Logf("sequential driver: map %.1f B/state, flat %.1f B/state (%.0f%% reduction)",
		perState(mapSeq), perState(flatSeq), 100*(1-perState(flatSeq)/perState(mapSeq)))
	if perState(flatSeq) >= perState(mapSeq) {
		t.Errorf("sequential flat = %.1f B/state, want below map's %.1f", perState(flatSeq), perState(mapSeq))
	}

	// The Robin Hood rework (15/16 load cap + one-cache-line stripes) must
	// measure at least 8% below the linear-probing Flat it replaced. That
	// baseline — 22.6 B/state on this exact msi-complete configuration
	// under the parallel driver, from the PR 3 measurement the experiment
	// log records — is pinned here as a constant: the layout is
	// deterministic (same fingerprints, same stripe split), so regressing
	// the load cap or re-inflating the stripe padding trips this.
	const pr3FlatParallel = 22.6
	t.Logf("robin hood vs PR3 linear probing: %.1f vs %.1f B/state (%.0f%% reduction)",
		perState(flatPar), pr3FlatParallel, 100*(1-perState(flatPar)/pr3FlatParallel))
	if perState(flatPar) > 0.92*pr3FlatParallel {
		t.Errorf("parallel flat = %.1f B/state, want ≥8%% below the pre-Robin-Hood %.1f",
			perState(flatPar), pr3FlatParallel)
	}
}

// TestBitstateStressWithinBudget runs the zoo's large-configuration stress
// entry (msi-complete-4, unreduced: >100k states) under the bitstate tier
// with a deliberately small fixed budget and checks the contract: the
// measured footprint never exceeds the budget, the run self-reports as
// inexact with an omission-probability estimate, and — the budget being
// ample for this fill — the exploration still finds the whole space.
func TestBitstateStressWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("~100k-state exploration; run without -short")
	}
	build := func() ts.System {
		sys, err := zoo.Get("msi-complete-4", zoo.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	exact, err := mc.Check(build(), mc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential on purpose: bitstate admission is order-dependent (an
	// omission depends on which fingerprints set their bits first), and
	// only the sequential driver's insertion order is deterministic, which
	// keeps the count comparison below reproducible. (Duplicate admission
	// under races is gone — see the single-CAS ownership rule — so the
	// parallel driver would merely be order-nondeterministic, not
	// double-counting.)
	const budgetMB = 4
	bs, err := mc.Check(build(), mc.Options{Visited: visited.Bitstate, BitstateMB: budgetMB})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Exact || !bs.Space.Inexact {
		t.Error("bitstate run reported Exact")
	}
	if bs.Space.Backend != "bitstate" {
		t.Errorf("Space.Backend = %q", bs.Space.Backend)
	}
	if bs.Space.VisitedBytes != budgetMB<<20 {
		t.Errorf("VisitedBytes = %d, want the fixed %d budget", bs.Space.VisitedBytes, budgetMB<<20)
	}
	if bs.Space.OmissionProb <= 0 || bs.Space.OmissionProb > 1e-3 {
		t.Errorf("OmissionProb = %g, want small but positive at this fill", bs.Space.OmissionProb)
	}
	t.Logf("bitstate: %d/%d states in %dMiB, p(omit) ~ %.2g",
		bs.Stats.VisitedStates, exact.Stats.VisitedStates, budgetMB, bs.Space.OmissionProb)
	if bs.Stats.VisitedStates > exact.Stats.VisitedStates {
		t.Errorf("bitstate found %d states, more than the exact %d", bs.Stats.VisitedStates, exact.Stats.VisitedStates)
	}
	if bs.Stats.VisitedStates < exact.Stats.VisitedStates*999/1000 {
		t.Errorf("bitstate omitted >0.1%% of states (%d of %d) despite ~0 predicted risk",
			exact.Stats.VisitedStates-bs.Stats.VisitedStates, exact.Stats.VisitedStates)
	}
	if bs.Verdict != mc.Success {
		t.Errorf("bitstate verdict = %v", bs.Verdict)
	}
}

// TestSpillStressBoundedRAM is the acceptance test for the disk-spilling
// tier: the zoo's large-configuration stress entry (msi-complete-4,
// unreduced: 105,752 states, ~846KiB of fingerprints) explored with an
// in-RAM tier budget of 256KiB — far below the fingerprint volume — must
// stay exact and report verdict, state count and transition count
// identical to the Flat backend, under both drivers. This is the
// memory-bounded-but-exact regime bitstate cannot serve: RAM stays near
// the budget while the bulk of the visited set lives in sorted run files.
func TestSpillStressBoundedRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("~100k-state exploration with disk I/O; run without -short")
	}
	build := func() ts.System {
		sys, err := zoo.Get("msi-complete-4", zoo.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	flat, err := mc.Check(build(), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Verdict != mc.Success {
		t.Fatalf("flat verdict = %v", flat.Verdict)
	}
	const budget = 256 << 10
	for _, workers := range []int{1, 8} {
		sp, err := mc.Check(build(), mc.Options{
			Workers:  workers,
			Visited:  visited.Spill,
			SpillMem: budget,
			SpillDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sp.Exact || sp.Space.Inexact {
			t.Errorf("workers=%d: spill run reported inexact", workers)
		}
		if sp.Verdict != flat.Verdict ||
			sp.Stats.VisitedStates != flat.Stats.VisitedStates ||
			sp.Stats.FiredTransitions != flat.Stats.FiredTransitions {
			t.Errorf("workers=%d: spill %v/%d states/%d transitions, flat %v/%d/%d",
				workers, sp.Verdict, sp.Stats.VisitedStates, sp.Stats.FiredTransitions,
				flat.Verdict, flat.Stats.VisitedStates, flat.Stats.FiredTransitions)
		}
		if sp.Space.SpilledBytes == 0 || sp.Space.SpillRuns == 0 {
			t.Errorf("workers=%d: nothing spilled (SpilledBytes=%d runs=%d) — budget not enforced",
				workers, sp.Space.SpilledBytes, sp.Space.SpillRuns)
		}
		// The in-RAM footprint (tier tables + stripe structs + fence
		// index) must stay near the budget; 2× covers the fixed floors.
		if sp.Space.VisitedBytes > 2*budget {
			t.Errorf("workers=%d: in-RAM visited bytes = %d, want near the %d budget",
				workers, sp.Space.VisitedBytes, budget)
		}
		t.Logf("workers=%d: %d states, RAM %d B, spilled %d B in %d run(s)",
			workers, sp.Stats.VisitedStates, sp.Space.VisitedBytes,
			sp.Space.SpilledBytes, sp.Space.SpillRuns)
	}
}

// TestZooEquivalenceFailureReplay checks that a failing system still
// yields a valid, replayable counterexample when traces are on — under
// both drivers — and that with traces off the same failure is reported
// with a nil trace (the memory saving must not change the verdict).
func TestZooEquivalenceFailureReplay(t *testing.T) {
	for _, workers := range []int{1, 8} {
		g := line(6, true)
		res, err := mc.Check(g, mc.Options{RecordTrace: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailInvariant {
			t.Fatalf("workers=%d: got %v / %+v, want invariant failure", workers, res.Verdict, res.Failure)
		}
		last := replayTrace(t, g, res.Failure)
		for _, inv := range g.Invariants() {
			if inv.Name == res.Failure.Name && inv.Holds(last) {
				t.Errorf("workers=%d: final trace state does not violate %q", workers, res.Failure.Name)
			}
		}

		off, err := mc.Check(line(6, true), mc.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if off.Verdict != mc.Failure || off.Failure.Kind != mc.FailInvariant {
			t.Fatalf("workers=%d traces off: got %v / %+v", workers, off.Verdict, off.Failure)
		}
		if off.Failure.Trace != nil {
			t.Errorf("workers=%d: trace recorded with RecordTrace off", workers)
		}
		if off.Space.TraceNodes != 0 {
			t.Errorf("workers=%d: %d trace nodes with RecordTrace off", workers, off.Space.TraceNodes)
		}
	}
}

// TestZooEquivalenceTraceFormatGolden pins the rendered sequential BFS
// counterexample to the exact pre-refactor bytes: the trace-store
// representation must not change what a designer sees.
func TestZooEquivalenceTraceFormatGolden(t *testing.T) {
	//     0 → 1 → 2 → 3(bad)
	//     0 ----------→ 3 (direct)
	g := &toy.Graph{SysName: "twopaths", Init: []int{0}, Nodes: []toy.Node{
		{Plain: []int{1, 3}},
		{Plain: []int{2}},
		{Plain: []int{3}},
		{Bad: true},
	}}
	res, err := mc.Check(g, mc.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	const want = "invariant violation: no-bad-state\n" +
		"  0. (initial state)\n" +
		"     n0\n" +
		"  1. n0→n3\n" +
		"     n3\n"
	if got := trace.Format(res.Failure, trace.Options{ShowStates: true}); got != want {
		t.Errorf("trace rendering changed:\n got: %q\nwant: %q", got, want)
	}
}

// TestNoTraceMemoryReduction pins the PR's acceptance criterion: with
// RecordTrace off, exploring the complete MSI protocol allocates no
// per-state trace/node entries and retains at least 40% fewer bytes per
// state than the trace-recording configuration (which matches what the
// pre-refactor node table always paid, trace or no trace).
func TestNoTraceMemoryReduction(t *testing.T) {
	build := func() ts.System {
		sys, err := zoo.Get("msi-complete", zoo.Params{Caches: 2})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	on, err := mc.Check(build(), mc.Options{Symmetry: true, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := mc.Check(build(), mc.Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Verdict != mc.Success || off.Verdict != mc.Success {
		t.Fatalf("verdicts: on=%v off=%v", on.Verdict, off.Verdict)
	}
	if off.Space.TraceNodes != 0 {
		t.Fatalf("RecordTrace off allocated %d per-state node entries", off.Space.TraceNodes)
	}
	states := float64(on.Space.States)
	perOn := float64(on.Space.BytesRetained) / states
	perOff := float64(off.Space.BytesRetained) / states
	t.Logf("bytes retained per state: trace on %.1f, trace off %.1f (%.0f%% reduction)",
		perOn, perOff, 100*(1-perOff/perOn))
	if perOff > 0.6*perOn {
		t.Errorf("bytes/state with traces off = %.1f, want <= 60%% of trace-on %.1f", perOff, perOn)
	}
}

// TestZooEquivalenceLiveness is the differential harness for the nested-DFS
// liveness driver: for every zoo entry carrying liveness goals, the verdict,
// cycle presence, and the NDFS product-state counts must be identical across
// visited backends (flat/map/spill) × keying paths (binary appender /
// legacy string keys) × symmetry on/off. The symmetry axis is the sharp
// one: the NDFS phase deliberately keys raw product encodings even when the
// safety pass reduces, so its counts must not move when symmetry flips.
// Failing entries must additionally report byte-identical lassos whose
// replay re-fires the recorded transition names and closes the cycle — the
// fingerprint-collision detector, mirroring PR 2's re-verification
// rationale.
func TestZooEquivalenceLiveness(t *testing.T) {
	for _, name := range zoo.Names() {
		if name == "msi-complete-4" {
			// The 4-cache stress entry is pinned for backend benchmarks;
			// its liveness product adds nothing the 2-cache run doesn't.
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			sys, err := zoo.Get(name, zoo.Params{Caches: 2})
			if err != nil {
				t.Fatal(err)
			}
			if lr, ok := sys.(ts.LivenessReporter); !ok || len(lr.LivenessGoals()) == 0 {
				t.Skip("no liveness goals")
			}
			type combo struct {
				backend    visited.Kind
				stringKeys bool
				symmetry   bool
			}
			var combos []combo
			for _, backend := range []visited.Kind{visited.Flat, visited.Map, visited.Spill} {
				for _, stringKeys := range []bool{false, true} {
					for _, symmetry := range []bool{false, true} {
						combos = append(combos, combo{backend, stringKeys, symmetry})
					}
				}
			}
			var base *mc.Result
			for _, cb := range combos {
				tag := fmt.Sprintf("visited=%v stringKeys=%v symmetry=%v", cb.backend, cb.stringKeys, cb.symmetry)
				sys, err := zoo.Get(name, zoo.Params{Caches: 2})
				if err != nil {
					t.Fatal(err)
				}
				res, err := mc.Check(sys, mc.Options{
					Liveness:    true,
					RecordTrace: true,
					Env:         ts.NewEnv(wildcardChooser{}), // complete models never call Choose
					Visited:     cb.backend,
					StringKeys:  cb.stringKeys,
					Symmetry:    cb.symmetry,
					SpillMem:    1, // floor: force flushes on even tiny spaces
					SpillDir:    t.TempDir(),
				})
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if res.Verdict == mc.Failure && res.Failure.Kind == mc.FailLiveness && !zoo.IsSketch(name) {
					replayLasso(t, sys, res.Failure)
				}
				if base == nil {
					base = res
					continue
				}
				if res.Verdict != base.Verdict {
					t.Errorf("%s: verdict %v, want %v", tag, res.Verdict, base.Verdict)
				}
				gotCycle := res.Failure != nil && res.Failure.Kind == mc.FailLiveness
				wantCycle := base.Failure != nil && base.Failure.Kind == mc.FailLiveness
				if gotCycle != wantCycle {
					t.Errorf("%s: cycle presence %v, want %v", tag, gotCycle, wantCycle)
				}
				// The NDFS phase keys unreduced product encodings, so its
				// counts are invariant across every axis — including
				// symmetry, which only reduces the safety pass.
				if res.Space.LiveStates != base.Space.LiveStates || res.Space.RedStates != base.Space.RedStates {
					t.Errorf("%s: ndfs states %d+%dred, want %d+%dred", tag,
						res.Space.LiveStates, res.Space.RedStates, base.Space.LiveStates, base.Space.RedStates)
				}
				if res.Space.CycleLen != base.Space.CycleLen {
					t.Errorf("%s: cycle length %d, want %d", tag, res.Space.CycleLen, base.Space.CycleLen)
				}
				if gotCycle && wantCycle {
					if res.Failure.Name != base.Failure.Name || res.Failure.CycleStart != base.Failure.CycleStart ||
						len(res.Failure.Trace) != len(base.Failure.Trace) {
						t.Errorf("%s: lasso %q start=%d steps=%d, want %q start=%d steps=%d", tag,
							res.Failure.Name, res.Failure.CycleStart, len(res.Failure.Trace),
							base.Failure.Name, base.Failure.CycleStart, len(base.Failure.Trace))
					} else {
						for i, step := range res.Failure.Trace {
							if step.Rule != base.Failure.Trace[i].Rule || step.State.Key() != base.Failure.Trace[i].State.Key() {
								t.Errorf("%s: lasso diverges at step %d: %q/%q vs %q/%q", tag, i,
									step.Rule, step.State.Key(), base.Failure.Trace[i].Rule, base.Failure.Trace[i].State.Key())
								break
							}
						}
					}
				}
			}
		})
	}
}
