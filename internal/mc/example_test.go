package mc_test

import (
	"fmt"

	"verc3/internal/mc"
	"verc3/internal/toy"
)

// ExampleCheck model-checks a four-state chain whose terminal state
// violates the safety invariant. Trace recording is on, so the failure
// carries the minimal BFS counterexample; with mc.Options.RecordTrace left
// false the same run would retain only 8 bytes per state and report
// Failure without a trace.
func ExampleCheck() {
	g := &toy.Graph{SysName: "demo", Init: []int{0}, Nodes: []toy.Node{
		{Plain: []int{1}},
		{Plain: []int{2}},
		{Plain: []int{3}},
		{Bad: true},
	}}
	res, err := mc.Check(g, mc.Options{RecordTrace: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", res.Verdict)
	fmt.Println("states:", res.Stats.VisitedStates)
	fmt.Println("violated:", res.Failure.Name)
	for _, step := range res.Failure.Trace {
		if step.Rule == "" {
			fmt.Println("  start", step.State.Key())
			continue
		}
		fmt.Printf("  %s gives %s\n", step.Rule, step.State.Key())
	}
	// Output:
	// verdict: failure
	// states: 4
	// violated: no-bad-state
	//   start n0
	//   n0→n1 gives n1
	//   n1→n2 gives n2
	//   n2→n3 gives n3
}
