package mc_test

// Differential tests for the binary keying pipeline: the ts.KeyAppender
// appender path and the legacy Key()-string path (Options.StringKeys) must
// explore identical state spaces, and the appender path must hit the PR's
// pinned allocation bar. The CI workflow runs everything matching
// TestZooEquivalence as a dedicated job step.

import (
	"bytes"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/ts"
	"verc3/internal/zoo"
)

// TestZooEquivalenceKeying is the invariance check for the zero-allocation
// keying refactor: for every registered system, every combination of driver
// (1 and 8 workers), symmetry on/off, and keying path (binary appender vs
// legacy formatted strings) must report the same verdict and exploration
// statistics. The two paths hash different bytes — and under symmetry may
// even canonicalize an orbit to different representatives — but the orbit
// partition they induce is identical, so every count must match.
func TestZooEquivalenceKeying(t *testing.T) {
	for _, name := range zoo.Names() {
		t.Run(name, func(t *testing.T) {
			type combo struct {
				workers  int
				symmetry bool
				strings  bool
			}
			base := map[bool]*mc.Result{} // per symmetry setting
			for _, cb := range []combo{
				{1, true, false}, {1, true, true}, {8, true, false}, {8, true, true},
				{1, false, false}, {1, false, true}, {8, false, false}, {8, false, true},
			} {
				sys, err := zoo.Get(name, zoo.Params{Caches: 2})
				if err != nil {
					t.Fatal(err)
				}
				res, err := mc.Check(sys, mc.Options{
					Symmetry:   cb.symmetry,
					StringKeys: cb.strings,
					Env:        ts.NewEnv(wildcardChooser{}), // complete models never call Choose
					Workers:    cb.workers,
				})
				if err != nil {
					t.Fatalf("workers=%d symmetry=%v strings=%v: %v", cb.workers, cb.symmetry, cb.strings, err)
				}
				if base[cb.symmetry] == nil {
					base[cb.symmetry] = res
					continue
				}
				want := base[cb.symmetry]
				if res.Verdict != want.Verdict {
					t.Errorf("workers=%d symmetry=%v strings=%v: verdict %v, want %v",
						cb.workers, cb.symmetry, cb.strings, res.Verdict, want.Verdict)
				}
				if res.Stats.VisitedStates != want.Stats.VisitedStates {
					t.Errorf("workers=%d symmetry=%v strings=%v: states %d, want %d",
						cb.workers, cb.symmetry, cb.strings, res.Stats.VisitedStates, want.Stats.VisitedStates)
				}
				if res.Stats.FiredTransitions != want.Stats.FiredTransitions {
					t.Errorf("workers=%d symmetry=%v strings=%v: transitions %d, want %d",
						cb.workers, cb.symmetry, cb.strings, res.Stats.FiredTransitions, want.Stats.FiredTransitions)
				}
				if res.Stats.MaxDepth != want.Stats.MaxDepth {
					t.Errorf("workers=%d symmetry=%v strings=%v: depth %d, want %d",
						cb.workers, cb.symmetry, cb.strings, res.Stats.MaxDepth, want.Stats.MaxDepth)
				}
				if res.Stats.WildcardAborts != want.Stats.WildcardAborts {
					t.Errorf("workers=%d symmetry=%v strings=%v: aborts %d, want %d",
						cb.workers, cb.symmetry, cb.strings, res.Stats.WildcardAborts, want.Stats.WildcardAborts)
				}
			}
		})
	}
}

// TestZooAppendKeyConsistency walks the reachable states of every
// registered system and checks the binary/string keying agreement the
// pipeline's soundness rests on: every zoo state implements
// ts.KeyAppender, and over the collected population AppendKey-equality
// coincides exactly with Key-equality (same partition in both directions).
// The per-model encoders are hand-written, so this is the test that
// catches a field omitted from one encoding but present in the other.
func TestZooAppendKeyConsistency(t *testing.T) {
	for _, name := range zoo.Names() {
		t.Run(name, func(t *testing.T) {
			sys, err := zoo.Get(name, zoo.Params{Caches: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Resolve every hole to its first action so sketches whose
			// behaviour is entirely behind holes (fig2, token-ring-sketch)
			// still yield a real population to compare.
			env := ts.NewEnv(firstActionChooser{})
			const cap = 2000
			seen := map[string][]byte{}  // Key -> encoding
			byEnc := map[string]string{} // encoding -> Key
			var frontier []ts.State
			note := func(s ts.State) {
				a, ok := s.(ts.KeyAppender)
				if !ok {
					t.Fatalf("state %T does not implement ts.KeyAppender", s)
				}
				k := s.Key()
				enc := a.AppendKey(nil)
				if prev, dup := seen[k]; dup {
					if !bytes.Equal(prev, enc) {
						t.Fatalf("key %q encoded two ways: %x vs %x", k, prev, enc)
					}
					return
				}
				if otherKey, dup := byEnc[string(enc)]; dup && otherKey != k {
					t.Fatalf("keys %q and %q share encoding %x", otherKey, k, enc)
				}
				seen[k] = enc
				byEnc[string(enc)] = k
				frontier = append(frontier, s)
			}
			for _, s := range sys.Initial() {
				note(s)
			}
			for len(frontier) > 0 && len(seen) < cap {
				s := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				for _, tr := range sys.Transitions(s) {
					next, err := tr.Fire(env)
					if err != nil {
						t.Fatalf("fire %q: %v", tr.Name, err)
					}
					note(next)
				}
			}
			if len(seen) < 2 {
				t.Fatalf("walk collected only %d states", len(seen))
			}
			t.Logf("%d states: AppendKey partition matches Key partition", len(seen))
		})
	}
}

// firstActionChooser resolves every hole to its first action, turning a
// sketch into its candidate-0 completion.
type firstActionChooser struct{}

func (firstActionChooser) Choose(string, []string) (int, error) { return 0, nil }

// TestAppenderAllocReduction pins the tentpole's headline number the way
// TestNoTraceMemoryReduction pinned PR 2's: on msi-complete with symmetry
// reduction on (the synthesis configuration, where the canonicalizer used
// to deep-clone and re-format the state N!−1 times per offered successor),
// the binary appender path must allocate at least 60% less per state than
// the legacy string path. Measured with Options.MemStats, so the run is
// sequential and nothing else allocates concurrently.
func TestAppenderAllocReduction(t *testing.T) {
	run := func(strings bool) *mc.Result {
		sys, err := zoo.Get("msi-complete", zoo.Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(sys, mc.Options{Symmetry: true, StringKeys: strings, MemStats: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Success {
			t.Fatalf("strings=%v: verdict %v", strings, res.Verdict)
		}
		return res
	}
	legacy, appender := run(true), run(false)
	if legacy.Stats.VisitedStates != appender.Stats.VisitedStates {
		t.Fatalf("state counts diverge: legacy %d, appender %d",
			legacy.Stats.VisitedStates, appender.Stats.VisitedStates)
	}
	states := float64(legacy.Stats.VisitedStates)
	perLegacy := float64(legacy.Space.Mallocs) / states
	perAppender := float64(appender.Space.Mallocs) / states
	t.Logf("mallocs per state: string keys %.1f, appender %.1f (%.0f%% reduction)",
		perLegacy, perAppender, 100*(1-perAppender/perLegacy))
	if perAppender > 0.4*perLegacy {
		t.Errorf("mallocs/state with appender = %.1f, want <= 40%% of string-key %.1f", perAppender, perLegacy)
	}
}

// TestStringKeysOptionForcesLegacyPath sanity-checks the ablation knob
// itself: with StringKeys set the run must allocate roughly what the
// appender path saves (a formatted key per offered state), so the flag is
// actually measuring the legacy pipeline and not silently ignored. A
// cheap guard: allocations differ by at least 2x between the two paths.
func TestStringKeysOptionForcesLegacyPath(t *testing.T) {
	run := func(strings bool) uint64 {
		sys, err := zoo.Get("msi-complete", zoo.Params{Caches: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(sys, mc.Options{Symmetry: true, StringKeys: strings, MemStats: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Space.Mallocs
	}
	legacy, appender := run(true), run(false)
	if legacy < 2*appender {
		t.Errorf("StringKeys run allocated %d vs appender %d — legacy path not exercised?", legacy, appender)
	}
}
