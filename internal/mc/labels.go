package mc

import (
	"context"
	"runtime/pprof"
)

// phaseLabels attributes the exploration inner loop's time to its four
// phases — enumerate (Transitions/AppendTransitions), fire (successor
// construction), key (canonical encoding + fingerprint) and insert
// (visited-set admission) — via runtime/pprof goroutine labels, so a
// -cpuprofile shows where exploration time actually goes instead of one
// opaque run/expand frame. The label contexts are built once per run; each
// phase switch is a single SetGoroutineLabels call on the current worker
// goroutine. A nil *phaseLabels (Options.ProfileLabels off, the default)
// makes every phase method a no-op nil-check, keeping the cost out of the
// unprofiled hot path.
type phaseLabels struct {
	enumerateCtx context.Context
	fireCtx      context.Context
	keyCtx       context.Context
	insertCtx    context.Context
}

// newPhaseLabels builds the per-run label contexts, or nil when disabled.
func newPhaseLabels(opt Options) *phaseLabels {
	if !opt.ProfileLabels {
		return nil
	}
	mk := func(phase string) context.Context {
		return pprof.WithLabels(context.Background(), pprof.Labels("mc-phase", phase))
	}
	return &phaseLabels{
		enumerateCtx: mk("enumerate"),
		fireCtx:      mk("fire"),
		keyCtx:       mk("key"),
		insertCtx:    mk("insert"),
	}
}

func (l *phaseLabels) enumerate() {
	if l != nil {
		pprof.SetGoroutineLabels(l.enumerateCtx)
	}
}

func (l *phaseLabels) fire() {
	if l != nil {
		pprof.SetGoroutineLabels(l.fireCtx)
	}
}

func (l *phaseLabels) key() {
	if l != nil {
		pprof.SetGoroutineLabels(l.keyCtx)
	}
}

func (l *phaseLabels) insert() {
	if l != nil {
		pprof.SetGoroutineLabels(l.insertCtx)
	}
}

// clear drops the goroutine's labels (end of a worker's run).
func (l *phaseLabels) clear() {
	if l != nil {
		pprof.SetGoroutineLabels(context.Background())
	}
}
