// Liveness checking: a sequential nested-DFS accepting-cycle search over
// the product of the system's state graph with each liveness goal's negated
// Büchi monitor (Courcoubetis–Vardi–Wolper, with the Schwoon–Esparza
// early-detection refinement in the outer search).
//
// # Negated monitors
//
// A goal's violations are the executions satisfying its negation, so each
// goal compiles to a tiny Büchi monitor for ¬goal and the checker looks for
// a reachable cycle through an accepting product state:
//
//   - EventuallyAlways (FG P) negates to GF ¬P. The monitor has a single
//     state; acceptance is a property of the system state (¬P holds), so
//     the product is the plain state graph.
//   - LeadsTo (G(P → F Q)) negates to F(P ∧ G ¬Q). The monitor is the
//     standard nondeterministic two-state automaton: q0 loops on anything
//     and guesses the violation start by branching to q1 on a P∧¬Q state;
//     q1 survives only while ¬Q holds and is accepting. The
//     nondeterminism is essential — a deterministic "pending request" bit
//     is unsound here, because a cycle can satisfy Q and re-raise P, which
//     recurs Q and is not a violation yet would keep a pending bit set.
//
// # Weak fairness (the copies construction)
//
// A Fair goal on a system declaring n weak-fairness requirements runs on
// the product extended with a copy counter c ∈ 0..n (Choueka's flag
// construction): from c=0 a step taken out of an accepting state moves to
// c=1, and from c=i≥1 the counter advances (wrapping n→0) exactly when
// requirement i is discharged at that step — not enabled at the source
// state, or the fired transition is one of its. Acceptance is restricted to
// c=0, so any accepting cycle must wrap the counter through every
// requirement: each is infinitely often disabled-or-taken along it, which
// is precisely weak fairness. With n=0 the construction degenerates to the
// plain product.
//
// # Sharing the exploration substrate
//
// The search stores only 64-bit fingerprints of product states — the
// system state's binary encoding (ts.KeyAppender, same pipeline as the
// safety drivers; Options.StringKeys falls back to hashing Key()) extended
// with the monitor and copy bytes — in two visited.Store instances (the
// blue "done" set and the red "confirmed cycle-free" set), plus a cyan
// map for the states on the outer DFS stack. Lossy backends are rejected
// up front (ErrLivenessInexact): a bitstate omission could both hide a
// real cycle and fabricate a spurious one. Successor states ride the
// PR 6 recycling protocol: rejected product successors and popped stack
// states return to the system's pool.
//
// Symmetry reduction is deliberately NOT applied to product keys even when
// Options.Symmetry is set: liveness predicates are typically per-process
// ("process 0 eventually holds the token") and not permutation-invariant,
// so cycle detection on the quotient graph is unsound — the same
// restriction TLC imposes. The safety pass still reduces; only this phase
// keys raw encodings.
//
// # Lassos
//
// A violation is reported as a lasso: the outer stack provides the stem
// and the cycle prefix, the inner (red) stack provides the cycle suffix
// for cycles detected by the nested search, and the closing transition's
// fired successor — which revisits the state at FailureInfo.CycleStart —
// is appended as the final trace step. Because the search is sequential
// and deterministic, the same lasso is reported across visited backends
// and keying paths, which the zoo-wide differential harness pins.
package mc

import (
	"context"
	"errors"
	"fmt"

	"verc3/internal/obs"
	"verc3/internal/statespace"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

// ErrLivenessInexact is returned (wrapped) by Check when Options.Liveness
// is combined with a lossy visited backend. An omitted product state can
// hide a real accepting cycle or close a spurious one, so the nested-DFS
// phase refuses to run rather than report an unsound verdict — the same
// policy synthesis applies to its dispatch backends.
var ErrLivenessInexact = errors.New("liveness checking (nested DFS) needs an exact visited backend (flat, map, or spill)")

// lsucc is one product successor awaiting processing: a fired system state
// (owned exclusively by this entry) with its monitor state, fairness copy,
// product fingerprint and acceptance.
type lsucc struct {
	state ts.State
	rule  string
	fp    statespace.Fingerprint
	q, c  uint8
	acc   bool
}

// lframe is one frame of the blue or red DFS stack. succs is nil until the
// frame is first expanded; next indexes the successor to process.
type lframe struct {
	state ts.State
	rule  string // transition that led into this frame's state
	fp    statespace.Fingerprint
	q, c  uint8
	acc   bool
	succs []lsucc
	next  int
}

// liveChecker runs the per-goal nested DFS. One instance serves all goals
// of a run; the per-goal color stores are rebuilt in checkGoal (acceptance
// differs per goal, so product fingerprints are not comparable across
// goals).
type liveChecker struct {
	sys ts.System
	opt Options
	ctx context.Context
	lc  lifecycle
	res *Result
	// pollN counts expansions toward the next cooperative cancellation
	// check; cur is the product frame's system state currently being
	// expanded, for panic containment's state-key report.
	pollN int
	cur   ts.State

	goal ts.LivenessGoal
	fair []ts.Fairness // active requirements (nil when goal is not Fair)

	blue  visited.Store
	red   visited.Store
	cyan  map[statespace.Fingerprint]int // product fp → blue stack index
	stack []lframe                       // blue (outer) stack
	rst   []lframe                       // red (inner) stack

	buf      []byte // product-key scratch (appender path)
	trsBuf   []ts.Transition
	admitted int // blue insertions, for the MaxStates cap
	capHit   bool
	// ow stages the phase's telemetry (nil when Options.Obs is unset):
	// CBlue/CRed product admissions, plus CAborts, which mirrors
	// Stats.WildcardAborts and so keeps accumulating here. The phase's
	// firings and recycles are deliberately NOT counted into
	// CTransitions/CRecycled — those mirror the safety pass's
	// statespace.Stats, and this phase reports its exploration separately
	// (LiveStates/RedStates).
	ow *obs.Worker
}

// checkLiveness runs the nested-DFS phase over every liveness goal of sys,
// updating res in place: the first violated goal flips the verdict to
// Failure with a FailLiveness lasso. Called only after a safety pass that
// did not fail; a no-op when the system reports no goals.
func checkLiveness(ctx context.Context, sys ts.System, opt Options, res *Result) error {
	lr, ok := sys.(ts.LivenessReporter)
	if !ok {
		return nil
	}
	goals := lr.LivenessGoals()
	if len(goals) == 0 {
		return nil
	}
	l := &liveChecker{sys: sys, opt: opt, ctx: ctx, lc: newLifecycle(sys, opt), res: res, ow: opt.Obs.NewWorker()}
	if ctx.Err() != nil {
		// The deadline expired between the safety pass and this phase.
		l.abort(cancelAbort(ctx))
		return nil
	}
	for _, g := range goals {
		failed, err := l.checkGoalSafe(g)
		if err != nil {
			return err
		}
		if failed || res.Verdict == Aborted {
			return nil
		}
	}
	if l.capHit {
		res.CapHit = true
	}
	// No cycle found, but branches were dropped (wildcard holes) or the
	// product-state cap cut the search short: the pass is inconclusive,
	// exactly like the safety phase's downgrades.
	if (res.CapHit || res.WildcardHit) && res.Verdict == Success {
		res.Verdict = Unknown
	}
	return nil
}

// abort marks the liveness phase cut short. It only runs on a non-failing
// result (checkLiveness's precondition), so there is no failure to outrank.
func (l *liveChecker) abort(info *AbortInfo) {
	l.res.Abort = info
	l.res.Verdict = Aborted
}

// pollCancel is the nested-DFS cancellation probe, sharing the safety
// drivers' stride; it reports whether the search should stop, having
// recorded the abort.
func (l *liveChecker) pollCancel() bool {
	if l.res.Verdict == Aborted {
		return true
	}
	if l.pollN++; l.pollN < cancelPollStride {
		return false
	}
	l.pollN = 0
	if l.ctx.Err() != nil {
		l.abort(cancelAbort(l.ctx))
		return true
	}
	return false
}

// checkGoalSafe runs one goal's search with panic containment: a panic out
// of the model (or a goal predicate) aborts the run with the offending
// state's key instead of crashing; checkGoal's deferred cleanup — color
// stores, space accounting — still runs during the unwind.
func (l *liveChecker) checkGoalSafe(g ts.LivenessGoal) (failed bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			l.abort(panicAbort(p, l.cur))
			failed, err = false, nil
		}
	}()
	return l.checkGoal(g)
}

// checkGoal runs one goal's accepting-cycle search. It reports whether the
// goal failed (res already updated with the lasso).
func (l *liveChecker) checkGoal(g ts.LivenessGoal) (failed bool, err error) {
	l.goal = g
	l.fair = nil
	if g.Fair {
		if fr, ok := l.sys.(ts.FairnessReporter); ok {
			l.fair = fr.WeakFairness()
		}
	}
	l.blue = visited.New(visitedConfig(l.opt))
	l.red = visited.New(visitedConfig(l.opt))
	defer func() {
		if cerr := closeStore(l.blue); err == nil {
			err = cerr
		}
		if cerr := closeStore(l.red); err == nil {
			err = cerr
		}
		l.res.Space.LiveStates += l.blue.Len()
		l.res.Space.RedStates += l.red.Len()
		l.blue, l.red = nil, nil
		l.ow.Flush()
	}()
	l.cyan = make(map[statespace.Fingerprint]int)
	l.stack = l.stack[:0]
	l.rst = l.rst[:0]

	for _, s0 := range l.sys.Initial() {
		// The negated monitor may start in several states (the LeadsTo
		// automaton can guess the violation begins immediately); each gets
		// its own product root, and extras copy the system state so every
		// entry owns its storage (ownedCopy, not Clone — see below).
		first := true
		for _, q0 := range l.monitorInit(s0) {
			s := s0
			if !first {
				s = ownedCopy(s0)
			}
			first = false
			root := l.product(s, "", q0, l.initCopy(q0, s))
			if lasso, found, err := l.dfsBlue(root); err != nil {
				return false, err
			} else if found {
				l.failLasso(lasso)
				return true, nil
			}
			if l.res.Verdict == Aborted {
				return false, nil
			}
		}
	}
	return false, nil
}

// --- Negated Büchi monitors -------------------------------------------

// Monitor states. For EventuallyAlways only qInit exists; for LeadsTo,
// qInit is the waiting state and qPend the accepting "P seen, ¬Q since"
// state.
const (
	qInit uint8 = 0
	qPend uint8 = 1
)

// monitorInit returns the monitor states consistent with reading the
// initial system state's label.
func (l *liveChecker) monitorInit(s ts.State) []uint8 {
	if l.goal.Kind == ts.LeadsTo && l.goal.P(s) && !l.goal.Q(s) {
		return []uint8{qInit, qPend}
	}
	return []uint8{qInit}
}

// monitorStep appends to dst the monitor successors of q upon reading the
// label of target system state t. An empty result kills the branch (the
// LeadsTo pending state dies when Q is satisfied).
func (l *liveChecker) monitorStep(dst []uint8, q uint8, t ts.State) []uint8 {
	if l.goal.Kind == ts.EventuallyAlways {
		return append(dst, qInit)
	}
	switch q {
	case qInit:
		dst = append(dst, qInit)
		if l.goal.P(t) && !l.goal.Q(t) {
			dst = append(dst, qPend)
		}
	case qPend:
		if !l.goal.Q(t) {
			dst = append(dst, qPend)
		}
	}
	return dst
}

// accepting reports Büchi acceptance of the product state (s, q, c):
// monitor acceptance restricted to fairness copy 0.
func (l *liveChecker) accepting(s ts.State, q, c uint8) bool {
	if c != 0 {
		return false
	}
	if l.goal.Kind == ts.EventuallyAlways {
		return !l.goal.P(s) // negation GF ¬P: accepting where ¬P holds
	}
	return q == qPend
}

// initCopy is the fairness copy of an initial product state: always 0 (the
// counter only starts moving after an accepting state is passed).
func (l *liveChecker) initCopy(uint8, ts.State) uint8 { return 0 }

// nextCopy advances the fairness copy counter across the step src →(rule)→
// target. From copy 0 the counter starts a round iff src is accepting; from
// copy i ∈ 1..n it advances (wrapping n → 0) iff requirement i is
// discharged at this step: not enabled at src, or the fired rule is one of
// its transitions.
func (l *liveChecker) nextCopy(src *lframe, rule string) uint8 {
	n := len(l.fair)
	if n == 0 {
		return 0
	}
	if src.c == 0 {
		if src.acc {
			return 1
		}
		return 0
	}
	req := l.fair[src.c-1]
	if !req.Enabled(src.state) || req.Taken(rule) {
		if int(src.c) == n {
			return 0
		}
		return src.c + 1
	}
	return src.c
}

// --- Product construction ---------------------------------------------

// fingerprint hashes the product state (s, q, c): the system state's
// canonical encoding extended with the monitor and copy bytes. The hot
// path appends the ts.KeyAppender binary encoding plus two bytes into the
// reusable scratch buffer and hashes in place; Options.StringKeys and
// appender-less states fall back to an incremental hash of the Key()
// string. No symmetry canonicalization — see the package comment.
func (l *liveChecker) fingerprint(s ts.State, q, c uint8) statespace.Fingerprint {
	if !l.opt.StringKeys {
		if a, ok := s.(ts.KeyAppender); ok {
			l.buf = a.AppendKey(l.buf[:0])
			l.buf = append(l.buf, q, c)
			return statespace.OfBytes(l.buf)
		}
	}
	h := statespace.NewHasher()
	h.AddString(s.Key())
	h.AddByte(q)
	h.AddByte(c)
	return h.Sum()
}

// product assembles a stack frame for the product state (s, q, c).
func (l *liveChecker) product(s ts.State, rule string, q, c uint8) lframe {
	return lframe{
		state: s,
		rule:  rule,
		fp:    l.fingerprint(s, q, c),
		q:     q,
		c:     c,
		acc:   l.accepting(s, q, c),
	}
}

// expand fires every transition enabled in f.state and returns the product
// successors. One fired system state can back several product states (the
// LeadsTo monitor branches); the first takes ownership of the fired state
// and the rest clone it, so each lsucc owns its storage exclusively. Fired
// states with no product successor (dead monitor branches) are recycled
// immediately.
func (l *liveChecker) expand(f *lframe) ([]lsucc, error) {
	l.cur = f.state // panic containment reports this state's key
	l.ow.Tick()
	if l.lc.appender != nil {
		l.trsBuf = l.lc.appender.AppendTransitions(l.trsBuf[:0], f.state)
	} else {
		l.trsBuf = append(l.trsBuf[:0], l.sys.Transitions(f.state)...)
	}
	var succs []lsucc
	var qs [2]uint8
	for _, tr := range l.trsBuf {
		next, ferr := tr.Fire(l.opt.Env)
		if ferr != nil {
			if errors.Is(ferr, ts.ErrWildcard) {
				l.res.WildcardHit = true
				l.res.Stats.WildcardAborts++
				l.ow.Inc(obs.CAborts)
				continue
			}
			return nil, fmt.Errorf("mc: liveness goal %q: transition %q from state %q: %w",
				l.goal.Name, tr.Name, f.state.Key(), ferr)
		}
		c := l.nextCopy(f, tr.Name)
		qlist := l.monitorStep(qs[:0], f.q, next)
		if len(qlist) == 0 {
			l.recycle(next)
			continue
		}
		for i, q := range qlist {
			s := next
			if i > 0 {
				s = ownedCopy(next)
			}
			succs = append(succs, lsucc{
				state: s,
				rule:  tr.Name,
				fp:    l.fingerprint(s, q, c),
				q:     q,
				c:     c,
				acc:   l.accepting(s, q, c),
			})
		}
	}
	return succs, nil
}

// recycle hands a dead state back to the system's pool (a no-op when the
// system does not pool or Options.NoRecycle is set).
func (l *liveChecker) recycle(s ts.State) {
	if l.lc.recycler != nil {
		l.lc.recycler.Recycle(s)
	}
}

// ownedCopy duplicates s with storage shared with nobody. Clone is not
// strong enough here: it may share structure the model treats as immutable
// (msi's copy-on-write message multiset), and a shared-structure copy that
// is later recycled lets pooled CopyFrom reuse overwrite storage a live
// state — possibly one sitting in the counterexample trace — still points
// into. ts.InPlacePermuter's Scratch gives exactly the no-shared-storage
// guarantee; states without it must have fully private Clones already.
func ownedCopy(s ts.State) ts.State {
	if p, ok := s.(ts.InPlacePermuter); ok {
		return p.Scratch()
	}
	return s.Clone()
}

// --- Nested DFS --------------------------------------------------------

// lasso is a detected accepting cycle, in stack coordinates: the blue
// stack holds the stem and the cycle prefix, rest (the red stack minus its
// seed, which is the blue top) holds the cycle suffix for nested-search
// detections, and closing is the successor that revisited the blue stack
// at index cycleStart.
type lasso struct {
	cycleStart int
	rest       []lframe
	closing    lsucc
}

// dfsBlue is the outer search: an iterative post-order DFS that seeds the
// nested red search at accepting states on pop, with the Schwoon–Esparza
// early check on every edge into the cyan (on-stack) set — if either
// endpoint is accepting, the stack already closes an accepting cycle and
// no nested search is needed.
func (l *liveChecker) dfsBlue(root lframe) (lasso, bool, error) {
	if !l.blue.TryInsert(root.fp) {
		return lasso{}, false, nil // reached by an earlier root
	}
	l.admitted++
	l.ow.Inc(obs.CBlue)
	l.cyan[root.fp] = 0
	l.stack = append(l.stack[:0], root)
	for len(l.stack) > 0 {
		if l.opt.MaxStates > 0 && l.admitted > l.opt.MaxStates {
			l.capHit = true
			return lasso{}, false, nil
		}
		if l.pollCancel() {
			return lasso{}, false, nil
		}
		f := &l.stack[len(l.stack)-1]
		if f.succs == nil && f.next == 0 {
			succs, err := l.expand(f)
			if err != nil {
				return lasso{}, false, err
			}
			f.succs = succs
			if succs == nil {
				f.succs = []lsucc{} // distinguish "expanded, none" from "unexpanded"
			}
		}
		if f.next < len(f.succs) {
			t := f.succs[f.next]
			f.next++
			if at, onStack := l.cyan[t.fp]; onStack {
				if f.acc || t.acc {
					return lasso{cycleStart: at, closing: t}, true, nil
				}
				l.recycle(t.state)
				continue
			}
			if !l.blue.TryInsert(t.fp) {
				l.recycle(t.state) // already fully explored
				continue
			}
			l.admitted++
			l.ow.Inc(obs.CBlue)
			l.cyan[t.fp] = len(l.stack)
			l.stack = append(l.stack, lframe{
				state: t.state, rule: t.rule, fp: t.fp, q: t.q, c: t.c, acc: t.acc,
			})
			continue
		}
		// Post-order: seed the nested search at accepting states while the
		// frame is still cyan, so a cycle back into the stack is caught.
		if f.acc {
			cyc, found, err := l.dfsRed(f)
			if err != nil {
				return lasso{}, false, err
			}
			if found {
				return cyc, true, nil
			}
		}
		delete(l.cyan, f.fp)
		popped := l.stack[len(l.stack)-1]
		l.stack = l.stack[:len(l.stack)-1]
		// Nothing references a popped state: counterexamples are built
		// from live stacks only, so its storage returns to the pool.
		l.recycle(popped.state)
	}
	return lasso{}, false, nil
}

// dfsRed is the nested search, seeded at an accepting state s (the current
// blue top, still cyan): if any state on the blue stack is reachable from
// s, the stack path from it down to s plus the red path back completes an
// accepting cycle. States confirmed cycle-free are marked red and never
// re-searched (the classical CVWY invariant: earlier, deeper seeds have
// already exonerated them).
func (l *liveChecker) dfsRed(seed *lframe) (lasso, bool, error) {
	if l.red.TryInsert(seed.fp) {
		l.ow.Inc(obs.CRed)
	}
	// The seed frame shares its state with the blue stack; the red stack's
	// copy must never be recycled on pop.
	l.rst = append(l.rst[:0], lframe{state: seed.state, fp: seed.fp, q: seed.q, c: seed.c, acc: seed.acc})
	for len(l.rst) > 0 {
		if l.pollCancel() {
			return lasso{}, false, nil
		}
		f := &l.rst[len(l.rst)-1]
		if f.succs == nil && f.next == 0 {
			succs, err := l.expand(f)
			if err != nil {
				return lasso{}, false, err
			}
			f.succs = succs
			if succs == nil {
				f.succs = []lsucc{}
			}
		}
		if f.next < len(f.succs) {
			t := f.succs[f.next]
			f.next++
			if at, onStack := l.cyan[t.fp]; onStack {
				rest := make([]lframe, len(l.rst)-1)
				copy(rest, l.rst[1:])
				return lasso{cycleStart: at, rest: rest, closing: t}, true, nil
			}
			if !l.red.TryInsert(t.fp) {
				l.recycle(t.state)
				continue
			}
			l.ow.Inc(obs.CRed)
			l.rst = append(l.rst, lframe{
				state: t.state, rule: t.rule, fp: t.fp, q: t.q, c: t.c, acc: t.acc,
			})
			continue
		}
		popped := l.rst[len(l.rst)-1]
		l.rst = l.rst[:len(l.rst)-1]
		if len(l.rst) > 0 { // rst[0] is the seed: owned by the blue stack
			l.recycle(popped.state)
		}
	}
	return lasso{}, false, nil
}

// failLasso records the accepting cycle as a FailLiveness verdict. With
// RecordTrace on, the counterexample is assembled from the live stacks:
// blue stack (stem + cycle prefix), red path (cycle suffix), and the
// closing step, whose state revisits Trace[CycleStart].State.
func (l *liveChecker) failLasso(cyc lasso) {
	l.res.Verdict = Failure
	fi := &FailureInfo{
		Kind:       FailLiveness,
		Name:       l.goal.Name,
		UsageMask:  ^uint64(0),
		CycleStart: cyc.cycleStart,
	}
	if l.opt.RecordTrace {
		steps := make([]TraceStep, 0, len(l.stack)+len(cyc.rest)+1)
		for i := range l.stack {
			steps = append(steps, TraceStep{Rule: l.stack[i].rule, State: l.stack[i].state})
		}
		for i := range cyc.rest {
			steps = append(steps, TraceStep{Rule: cyc.rest[i].rule, State: cyc.rest[i].state})
		}
		steps = append(steps, TraceStep{Rule: cyc.closing.rule, State: cyc.closing.state})
		fi.Trace = steps
	}
	l.res.Space.CycleLen = len(l.stack) + len(cyc.rest) + 1 - (cyc.cycleStart + 1)
	l.res.Failure = fi
}
