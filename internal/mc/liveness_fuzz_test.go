package mc_test

import (
	"fmt"
	"testing"

	"verc3/internal/dsl"
	"verc3/internal/mc"
	"verc3/internal/ts"
)

// fgraph is a fuzz-decoded directed graph over at most 6 nodes, with a
// liveness goal read from the same bytes. adj[i] is node i's successor
// bitmask; pMask/qMask are the predicate node sets.
type fgraph struct {
	n          int
	adj        [6]byte
	pMask      byte
	qMask      byte
	leadsTo    bool
	terminalOK bool
}

// decodeFGraph reads a graph from fuzz bytes: node count, adjacency rows,
// predicate masks, goal kind. Returns false when data is too short.
func decodeFGraph(data []byte) (fgraph, bool) {
	var g fgraph
	if len(data) < 1 {
		return g, false
	}
	g.n = 2 + int(data[0]%5) // 2..6 nodes
	if len(data) < g.n+4 {
		return g, false
	}
	mask := byte(1<<g.n - 1)
	for i := 0; i < g.n; i++ {
		g.adj[i] = data[1+i] & mask
	}
	g.pMask = data[1+g.n] & mask
	g.qMask = data[2+g.n] & mask
	g.leadsTo = data[3+g.n]&1 == 1
	return g, true
}

// system compiles the graph onto the DSL: one rule per edge, every state
// quiescent (terminal nodes model finite runs, not deadlocks), and the
// decoded liveness goal. No fairness — the oracle covers raw cycle
// existence.
func (g fgraph) system() ts.System {
	b := dsl.NewBuilder[*lstate]("fuzz-graph", &lstate{})
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if g.adj[i]&(1<<j) == 0 {
				continue
			}
			i, j := i, j
			b.Rule(fmt.Sprintf("e%d-%d", i, j),
				func(s *lstate) bool { return int(s.v) == i },
				func(s *lstate, _ *ts.Env) error { s.v = int8(j); return nil })
		}
	}
	b.Quiescent(func(*lstate) bool { return true })
	p := func(s *lstate) bool { return g.pMask&(1<<s.v) != 0 }
	q := func(s *lstate) bool { return g.qMask&(1<<s.v) != 0 }
	if g.leadsTo {
		b.LeadsTo("goal", false, p, q)
	} else {
		b.EventuallyAlways("goal", false, p)
	}
	return b.System()
}

// reach returns the set of nodes reachable from the given seed set through
// edges whose endpoints all satisfy within (both source and target must be
// in within; pass ^0 for no restriction). Seeds outside within are dropped.
func (g fgraph) reach(seeds byte, within byte) byte {
	frontier := seeds & within
	seen := frontier
	for frontier != 0 {
		var next byte
		for i := 0; i < g.n; i++ {
			if frontier&(1<<i) != 0 {
				next |= g.adj[i] & within
			}
		}
		frontier = next &^ seen
		seen |= next
	}
	return seen
}

// onCycle returns the nodes of within-subgraph cycles: node i is on a cycle
// iff it can reach itself through at least one within-restricted edge.
func (g fgraph) onCycle(within byte) byte {
	var out byte
	for i := 0; i < g.n; i++ {
		if within&(1<<i) == 0 {
			continue
		}
		if g.reach(g.adj[i]&within, within)&(1<<i) != 0 {
			out |= 1 << i
		}
	}
	return out
}

// violated is the naive oracle: does an infinite run from node 0 violate
// the goal?
//
//   - EventuallyAlways (FG P) is violated iff a reachable cycle passes
//     through a ¬P node (the run revisits ¬P forever).
//   - LeadsTo (G(P→FQ)) is violated iff some reachable node t with P∧¬Q
//     can reach — moving only through ¬Q nodes, starting at t itself — a
//     cycle of the ¬Q-subgraph (the request at t is never answered).
func (g fgraph) violated() bool {
	all := byte(1<<g.n - 1)
	reachable := g.reach(1<<0, all)
	if !g.leadsTo {
		return g.onCycle(all)&reachable&^g.pMask != 0
	}
	notQ := all &^ g.qMask
	cycles := g.onCycle(notQ)
	for t := 0; t < g.n; t++ {
		bit := byte(1 << t)
		if reachable&bit == 0 || g.pMask&bit == 0 || g.qMask&bit != 0 {
			continue
		}
		if g.reach(bit, notQ)&cycles != 0 {
			return true
		}
	}
	return false
}

// FuzzLassoReplay cross-checks the nested-DFS driver against a naive
// cycle-existence oracle on randomized small graphs, and validates every
// reported lasso by replaying it (transition names must re-fire and the
// cycle must close — the fingerprint-collision detector). The seed corpus
// covers the degenerate lasso shapes: a pure self-loop, a stem with no
// cycle at all, and a cycle running back through the initial state.
func FuzzLassoReplay(f *testing.F) {
	// Self-loop at node 0, FG P with P={1}: violated by the loop itself.
	f.Add([]byte{0, 0b01, 0b00, 0b10, 0b00, 0})
	// Stem only: 0→1, node 1 terminal. No infinite run, nothing violated.
	f.Add([]byte{0, 0b10, 0b00, 0b01, 0b00, 0})
	// Cycle through the initial state: 0→1→0, FG P with P={0}.
	f.Add([]byte{0, 0b10, 0b01, 0b01, 0b00, 0})
	// Leads-to: 0(P)→1→2↔1 with Q={} — the request at 0 never completes.
	f.Add([]byte{1, 0b010, 0b100, 0b010, 0b001, 0b000, 1})
	// Leads-to answered: 0(P)→1(Q)→1. The pending branch dies at Q.
	f.Add([]byte{0, 0b10, 0b10, 0b01, 0b10, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, ok := decodeFGraph(data)
		if !ok {
			return
		}
		sys := g.system()
		res, err := mc.Check(sys, mc.Options{Liveness: true, RecordTrace: true})
		if err != nil {
			t.Fatalf("graph %+v: %v", g, err)
		}
		want := g.violated()
		got := res.Verdict == mc.Failure
		if got != want {
			t.Fatalf("graph %+v: NDFS verdict %v, oracle violation %v", g, res.Verdict, want)
		}
		if !got {
			if res.Verdict != mc.Success {
				t.Fatalf("graph %+v: verdict %v, want Success", g, res.Verdict)
			}
			return
		}
		replayLasso(t, sys, res.Failure)
		// The cycle itself must witness the violation: for FG P it revisits
		// some ¬P node; for leads-to it stays inside ¬Q (the pending
		// request's monitor would die on a Q state).
		cycle := res.Failure.Trace[res.Failure.CycleStart:]
		witnessed := false
		for _, step := range cycle {
			v := step.State.(*lstate).v
			if !g.leadsTo && g.pMask&(1<<v) == 0 {
				witnessed = true
			}
			if g.leadsTo && g.qMask&(1<<v) != 0 {
				t.Fatalf("graph %+v: leads-to cycle passes through a Q state %d", g, v)
			}
		}
		if !g.leadsTo && !witnessed {
			t.Fatalf("graph %+v: FG-P lasso cycle never visits a ¬P state", g)
		}
	})
}
