package mc_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"verc3/internal/dsl"
	"verc3/internal/mc"
	"verc3/internal/ts"
	"verc3/internal/visited"
	"verc3/internal/zoo"
)

// lstate is a one-byte counter state for the toy liveness systems.
type lstate struct{ v int8 }

func (s *lstate) Key() string               { return fmt.Sprintf("%d", s.v) }
func (s *lstate) Clone() ts.State           { cp := *s; return &cp }
func (s *lstate) CopyFrom(src ts.State)     { *s = *src.(*lstate) }
func (s *lstate) AppendKey(d []byte) []byte { return append(d, byte(s.v)) }

// replayLasso validates a liveness counterexample end to end: the trace
// replays through the system's own transition relation (replayTrace), the
// final state closes the cycle back to Trace[CycleStart], and the cycle is
// non-empty. This is the fingerprint-collision detector: a lasso assembled
// from colliding product fingerprints would fail to re-fire or would close
// on the wrong state.
func replayLasso(t *testing.T, sys ts.System, f *mc.FailureInfo) {
	t.Helper()
	if f.Kind != mc.FailLiveness {
		t.Fatalf("Kind = %v, want FailLiveness", f.Kind)
	}
	if f.CycleStart < 0 || f.CycleStart >= len(f.Trace)-1 {
		t.Fatalf("CycleStart %d out of range for %d-step trace", f.CycleStart, len(f.Trace))
	}
	last := replayTrace(t, sys, f)
	if got, want := last.Key(), f.Trace[f.CycleStart].State.Key(); got != want {
		t.Fatalf("lasso does not close: final state %q, cycle start %q", got, want)
	}
}

// fairToy is a two-state system where state 0 can loop ("stay") or advance
// ("go") to the absorbing state 1 ("idle" loop). The leads-to goal 0⇝1
// fails on the stay-forever lasso — unless the weak-fairness requirement on
// "go" (continuously enabled at state 0) excludes it.
func fairToy(fair bool) ts.System {
	b := dsl.NewBuilder[*lstate]("fair-toy", &lstate{})
	b.Rule("stay", func(s *lstate) bool { return s.v == 0 }, func(*lstate, *ts.Env) error { return nil })
	b.Rule("go", func(s *lstate) bool { return s.v == 0 }, func(s *lstate, _ *ts.Env) error { s.v = 1; return nil })
	b.Rule("idle", func(s *lstate) bool { return s.v == 1 }, func(*lstate, *ts.Env) error { return nil })
	b.LeadsTo("eventually-done", fair,
		func(s *lstate) bool { return s.v == 0 },
		func(s *lstate) bool { return s.v == 1 })
	b.Fair("go-taken",
		func(s *lstate) bool { return s.v == 0 },
		func(rule string) bool { return rule == "go" })
	return b.System()
}

// TestLivenessToy pins the NDFS driver's verdicts on minimal systems with
// known answers for both goal kinds.
func TestLivenessToy(t *testing.T) {
	opt := mc.Options{Liveness: true, RecordTrace: true}

	t.Run("eventually-always-pass", func(t *testing.T) {
		// 0 → 1, then 1 loops: FG(v==1) holds on the only infinite run.
		b := dsl.NewBuilder[*lstate]("fg-pass", &lstate{})
		b.Rule("advance", func(s *lstate) bool { return s.v == 0 }, func(s *lstate, _ *ts.Env) error { s.v = 1; return nil })
		b.Rule("loop", func(s *lstate) bool { return s.v == 1 }, func(*lstate, *ts.Env) error { return nil })
		b.EventuallyAlways("settles", false, func(s *lstate) bool { return s.v == 1 })
		res, err := mc.Check(b.System(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Success {
			t.Fatalf("verdict = %v, want Success", res.Verdict)
		}
	})

	t.Run("eventually-always-fail", func(t *testing.T) {
		// 0 ↔ 1: the run alternates forever, so FG(v==1) is violated by a
		// cycle that keeps revisiting 0.
		b := dsl.NewBuilder[*lstate]("fg-fail", &lstate{})
		b.Rule("up", func(s *lstate) bool { return s.v == 0 }, func(s *lstate, _ *ts.Env) error { s.v = 1; return nil })
		b.Rule("down", func(s *lstate) bool { return s.v == 1 }, func(s *lstate, _ *ts.Env) error { s.v = 0; return nil })
		b.EventuallyAlways("settles", false, func(s *lstate) bool { return s.v == 1 })
		sys := b.System()
		res, err := mc.Check(sys, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailLiveness {
			t.Fatalf("verdict = %v (%+v), want liveness failure", res.Verdict, res.Failure)
		}
		if res.Failure.Name != "settles" {
			t.Fatalf("failed goal %q, want settles", res.Failure.Name)
		}
		replayLasso(t, sys, res.Failure)
		if res.Space.CycleLen == 0 {
			t.Fatal("CycleLen not recorded")
		}
	})

	t.Run("leadsto-unfair-fails", func(t *testing.T) {
		sys := fairToy(false)
		res, err := mc.Check(sys, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailLiveness {
			t.Fatalf("verdict = %v, want liveness failure on the stay-forever lasso", res.Verdict)
		}
		replayLasso(t, sys, res.Failure)
		// The violating cycle is the "stay" self-loop.
		for _, step := range res.Failure.Trace[res.Failure.CycleStart+1:] {
			if step.Rule != "stay" {
				t.Fatalf("cycle fires %q, want only stay", step.Rule)
			}
		}
	})

	t.Run("leadsto-fair-passes", func(t *testing.T) {
		// Same system; the weak-fairness requirement on "go" excludes the
		// stay-forever lasso (go is continuously enabled, never taken).
		res, err := mc.Check(fairToy(true), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Success {
			t.Fatalf("verdict = %v, want Success under weak fairness", res.Verdict)
		}
	})

	t.Run("safety-failure-preempts", func(t *testing.T) {
		// A safety violation short-circuits the liveness phase entirely.
		b := dsl.NewBuilder[*lstate]("bad", &lstate{})
		b.Rule("loop", nil, func(*lstate, *ts.Env) error { return nil })
		b.Invariant("never", func(*lstate) bool { return false })
		b.EventuallyAlways("unchecked", false, func(*lstate) bool { return true })
		res, err := mc.Check(b.System(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailInvariant {
			t.Fatalf("got %v/%v, want the invariant failure", res.Verdict, res.Failure)
		}
	})
}

// TestLivenessZooVerdicts pins the three zoo liveness answers the issue
// names: token-ring and peterson pass (starvation freedom under weak
// fairness), msi-complete fails with a replayable lasso (a write stalls
// forever without delivery fairness — the suite's known-answer negative).
func TestLivenessZooVerdicts(t *testing.T) {
	opt := mc.Options{Liveness: true, RecordTrace: true}

	for _, name := range []string{"token-ring", "peterson"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, err := zoo.Get(name, zoo.Params{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := mc.Check(sys, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != mc.Success {
				t.Fatalf("%s: verdict = %v (%+v), want Success", name, res.Verdict, res.Failure)
			}
			if res.Space.LiveStates == 0 {
				t.Fatal("liveness phase did not run (LiveStates == 0)")
			}
		})
	}

	t.Run("msi-complete", func(t *testing.T) {
		sys, err := zoo.Get("msi-complete", zoo.Params{Caches: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(sys, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailLiveness {
			t.Fatalf("verdict = %v (%+v), want a liveness lasso", res.Verdict, res.Failure)
		}
		if !strings.Contains(res.Failure.Name, "write-completes") {
			t.Fatalf("failed goal %q, want a write-completes goal", res.Failure.Name)
		}
		replayLasso(t, sys, res.Failure)
	})
}

// TestBitstateRejectedForLiveness mirrors TestBitstateRejectedForSynthesis:
// the NDFS phase must refuse lossy visited backends with a typed error
// rather than report an unsound verdict, while every exact backend works.
func TestBitstateRejectedForLiveness(t *testing.T) {
	sys, err := zoo.Get("token-ring", zoo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mc.Check(sys, mc.Options{Liveness: true, Visited: visited.Bitstate})
	if err == nil {
		t.Fatal("bitstate accepted for liveness checking")
	}
	if !errors.Is(err, mc.ErrLivenessInexact) {
		t.Fatalf("error %v does not wrap ErrLivenessInexact", err)
	}
	if !strings.Contains(err.Error(), "lossy") {
		t.Fatalf("error %q should explain the backend is lossy", err)
	}
	for _, kind := range []visited.Kind{visited.Flat, visited.Map, visited.Spill} {
		res, cerr := mc.Check(sys, mc.Options{Liveness: true, Visited: kind})
		if cerr != nil {
			t.Fatalf("%v backend rejected: %v", kind, cerr)
		}
		if res.Verdict != mc.Success {
			t.Fatalf("%v backend: verdict = %v, want Success", kind, res.Verdict)
		}
	}
}
