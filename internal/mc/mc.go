// Package mc implements the embedded explicit-state model checker at the
// heart of VerC3. It performs breadth-first search over the reachable state
// space of a ts.System, deduplicating states by a 64-bit fingerprint of the
// canonical key (with optional scalarset symmetry reduction), checking
// safety invariants on every state, detecting deadlocks, and — after a
// complete exploration — checking reachability goals ("all stable states
// must be visited at least once").
//
// # Keying scheme and visited-set backends
//
// Both exploration drivers share one keying scheme (internal/statespace): a
// state's canonical encoding — its ts.KeyAppender binary encoding appended
// into per-worker scratch (canonicalized over all agent permutations when
// Options.Symmetry is on, see internal/symmetry), falling back to the
// formatted Key() string for states without an appender — is hashed to a
// 64-bit FNV-1a fingerprint, and only the fingerprint is stored. On the
// appender path nothing per-state is allocated to key a state: the
// encoding lands in a reusable buffer and the fingerprint comes straight
// off it (statespace.OfBytes). Because the sequential and parallel drivers
// dedupe through the same fingerprints, complete explorations report
// identical reachable-state counts under both; Options.StringKeys forces
// the legacy string path for differential testing.
//
// Where the fingerprints live is pluggable (Options.Visited, package
// internal/visited): a Robin Hood open-addressing table (the default), Go
// maps (the original backend), a disk-spilling two-level store that keeps
// RAM near Options.SpillMem while sorted fingerprint runs hold the bulk
// on disk (merged at every BFS level boundary by both drivers), or a
// SPIN-style bitstate array with a fixed memory budget
// (Options.BitstateMB). The exact backends are interchangeable
// bit-for-bit; bitstate can omit states, so Result.Exact reports false
// and Result.Space carries its omission-probability estimate. TryInsert
// doubles as the parallel driver's expansion-ownership claim and every
// backend admits exactly one of any set of racing inserts, so state and
// transition counts are exact for the explored space under all backends.
//
// # Trace-optional exploration
//
// The search is trace-optional: the frontier carries (state, depth, usage
// mask) values directly, and states are released as they are expanded. With
// Options.RecordTrace off — the synthesis default, where millions of
// dispatches only need verdicts and usage masks — no per-state bookkeeping
// outlives a state's expansion, so retained memory is the visited set plus
// the frontier high-water mark rather than O(states) node records. With
// RecordTrace on, a statespace.TraceStore allocates one parent-linked node
// per discovered state, and failures carry a replayable counterexample
// rebuilt from the parent chain. Result.Space profiles whichever regime ran
// (states, transitions, peak frontier, trace nodes, bytes retained).
//
// # Drivers, Workers and ShardBits
//
// Options.Workers selects the driver. Workers <= 1 runs the sequential
// driver: deterministic BFS/DFS order and minimal BFS counterexamples — the
// property the paper's candidate pruning relies on, since a minimal trace
// of a faulty protocol rarely exercises every hole, so its failure
// generalizes to every candidate sharing the trace's hole subset. Workers >
// 1 runs the level-synchronous parallel BFS driver: each frontier level is
// spread over the worker pool and successors dedupe through a sharded
// visited set with 2^Options.ShardBits lock-striped shards. DFS order and
// usage tracking force the sequential driver.
//
// # Verdicts
//
// The checker returns a three-valued verdict (see Verdict): during
// synthesis a branch that reaches a hole still assigned the wildcard action
// is aborted, and if no failure is found elsewhere the run is "unknown"
// rather than a success.
//
// # Liveness
//
// Options.Liveness adds a second phase after a non-failing safety pass: a
// sequential nested-DFS cycle search (Courcoubetis–Vardi–Wolper style with
// Schwoon–Esparza early detection) per ts.LivenessGoal, over the product of
// the state graph with the goal's negated Büchi monitor and — for Fair
// goals — the weak-fairness copies construction. Violations are lassos:
// FailLiveness failures carry a stem-plus-cycle trace (FailureInfo.
// CycleStart) whose replay closes a real cycle. The phase shares the
// fingerprint pipeline, visited backends (exact only; see
// ErrLivenessInexact) and successor recycling with the safety drivers, and
// reports its own counters in Result.Space (LiveStates, RedStates,
// CycleLen). See liveness.go.
package mc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"
	"unsafe"

	"verc3/internal/faultfs"
	"verc3/internal/obs"
	"verc3/internal/statespace"
	"verc3/internal/symmetry"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

// Verdict is the outcome of a model-checking run.
type Verdict int

const (
	// Success: the full state space was explored, no property violated, no
	// wildcard encountered.
	Success Verdict = iota
	// Failure: a property violation was found.
	Failure
	// Unknown: no violation found, but at least one execution branch was
	// aborted at a wildcard hole (or the state cap was hit), so success
	// cannot be concluded.
	Unknown
	// Aborted: the run was cut short — cancelled, timed out, or stopped by
	// a contained model-code panic — before the space was fully explored.
	// Result.Abort carries the cause and Result.Stats the partial counts.
	Aborted
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Success:
		return "success"
	case Failure:
		return "failure"
	case Unknown:
		return "unknown"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// FailKind classifies property violations.
type FailKind int

const (
	// FailInvariant: a safety invariant does not hold in a reachable state.
	FailInvariant FailKind = iota
	// FailDeadlock: a non-quiescent reachable state has no successors.
	FailDeadlock
	// FailGoal: exploration completed without wildcards but a reachability
	// goal was never witnessed.
	FailGoal
	// FailLiveness: a liveness goal is violated by a lasso — a reachable
	// cycle along which the goal's negation holds forever (found by the
	// nested-DFS driver under Options.Liveness).
	FailLiveness
)

// String returns the failure-kind name.
func (k FailKind) String() string {
	switch k {
	case FailInvariant:
		return "invariant"
	case FailDeadlock:
		return "deadlock"
	case FailGoal:
		return "goal"
	case FailLiveness:
		return "liveness"
	default:
		return fmt.Sprintf("FailKind(%d)", int(k))
	}
}

// FailureInfo describes a property violation.
type FailureInfo struct {
	Kind FailKind
	// Name of the violated invariant or goal ("deadlock" for deadlocks).
	Name string
	// Trace is the counterexample: the states from an initial state to the
	// violating state, with the transition names taken between them.
	// Trace[i].Rule is the transition that led *into* Trace[i] (empty for
	// the initial state). Populated only when Options.RecordTrace is set;
	// for goal failures there is no single trace and Trace is nil.
	Trace []TraceStep
	// UsageMask is the bitmask of hole indices consulted along the error
	// path (see UsageTracker). For goal failures every bit is set, since
	// the violation is a property of the whole explored space; liveness
	// failures also set every bit — the nested-DFS phase does not track
	// usage, and a lasso found under a partial assignment fires only
	// concretely resolved holes, so it persists under every extension.
	// Zero when no tracker is installed.
	UsageMask uint64
	// CycleStart is meaningful only for FailLiveness with a recorded Trace:
	// the trace is a lasso, and CycleStart is the index of the step the
	// cycle loops back to. Trace[CycleStart:] is the cycle — its final step
	// fires the closing transition and its state revisits
	// Trace[CycleStart].State. Steps before CycleStart are the stem.
	CycleStart int
}

// TraceStep is one state of a counterexample trace.
type TraceStep struct {
	Rule  string
	State ts.State
}

// Stats aggregates exploration statistics.
type Stats struct {
	// VisitedStates is the number of distinct (canonical) states reached.
	VisitedStates int
	// FiredTransitions is the number of successful transition firings.
	FiredTransitions int
	// WildcardAborts counts branches aborted at wildcard holes.
	WildcardAborts int
	// MaxDepth is the largest BFS depth reached (0 for initial states).
	MaxDepth int
}

// Result is the outcome of Check.
type Result struct {
	Verdict     Verdict
	Failure     *FailureInfo // non-nil iff Verdict == Failure
	Stats       Stats
	WildcardHit bool
	// CapHit reports that the MaxStates cap stopped exploration.
	CapHit bool
	// Abort is non-nil iff Verdict == Aborted: the run was cancelled, timed
	// out, or recovered a model-code panic, and Stats/Space hold the
	// partial counts accumulated up to the abort point. A recorded failure
	// outranks an abort (a violation found before the cancel fired is still
	// a violation); an abort outranks the wildcard/cap downgrades.
	Abort *AbortInfo
	// Resumed reports that the run was seeded from a committed checkpoint
	// (Options.Resume) rather than the system's initial states; its Stats
	// include the checkpointed prefix.
	Resumed bool
	// Exact reports that the visited-set backend was lossless (flat, map):
	// every distinct fingerprint offered was admitted, so state counts are
	// exact and a Success verdict covers the full reachable space. False
	// under the bitstate backend, which can silently omit states —
	// Space.OmissionProb estimates the per-state risk. Note goal checking
	// is affected in both directions under an inexact backend: an omitted
	// state can also manifest as a spurious goal failure.
	Exact bool
	// Space is the memory profile of the exploration: visited-set size,
	// frontier high-water mark, trace-store nodes (always 0 with
	// RecordTrace off) and the structural bytes-retained estimate. The
	// allocation counters (Mallocs/AllocBytes) are populated only under
	// Options.MemStats.
	Space statespace.Stats
}

// UsageTracker lets the synthesis layer observe which holes each transition
// firing consulted, so failures can be generalized to the executed hole
// subset (the paper's Ct). The checker brackets every Fire call with
// ResetUsage/Usage and accumulates masks along paths.
type UsageTracker interface {
	// ResetUsage clears the per-firing usage set.
	ResetUsage()
	// Usage returns the bitmask of hole indices consulted since the last
	// ResetUsage. Hole indices >= 64 saturate to bit 63 (conservative).
	Usage() uint64
}

// SearchOrder selects the exploration strategy.
type SearchOrder int

const (
	// BFS yields minimal counterexample traces (the default; required for
	// the pruning optimization to be most effective).
	BFS SearchOrder = iota
	// DFS uses depth-first order. Traces are not minimal; provided for the
	// ablation study.
	DFS
)

// Options configures a model-checking run. The zero value checks a complete
// model with symmetry reduction off, deadlock checking on, no state cap.
type Options struct {
	// Env is the execution environment handed to transitions (nil for
	// complete models).
	Env *ts.Env
	// Usage optionally tracks per-firing hole usage (see UsageTracker).
	Usage UsageTracker
	// Symmetry enables scalarset symmetry reduction for states implementing
	// ts.Permutable.
	Symmetry bool
	// NoDeadlock disables deadlock detection.
	NoDeadlock bool
	// MaxStates caps the number of visited states (0 = unlimited). Hitting
	// the cap downgrades a would-be success to Unknown.
	MaxStates int
	// RecordTrace allocates a parent-linked trace-store node per discovered
	// state so failures carry a replayable counterexample. Costs O(states)
	// memory; with it off (the synthesis default) the checker retains only
	// the 8-byte fingerprint per state plus the transient frontier.
	RecordTrace bool
	// Order selects BFS (default) or DFS.
	Order SearchOrder
	// Workers selects the exploration driver. Values <= 1 run the
	// deterministic sequential driver; values > 1 run the level-synchronous
	// parallel BFS driver (internal/statespace) with that many goroutines
	// over a sharded visited set. Parallel exploration requires the system's
	// Transitions/Fire — and any Chooser behind Env — to be safe for
	// concurrent use (complete models and internal/core's chooser are).
	// Runs that need strictly sequential semantics fall back automatically:
	// DFS order and usage tracking (Options.Usage) both force Workers = 1.
	// Parallel counterexample traces are valid replays but, unlike
	// sequential BFS traces, are not guaranteed minimal; reachable-state
	// counts of complete explorations are identical across drivers because
	// both dedupe by the same canonical-key fingerprint.
	Workers int
	// ShardBits is log2 of the parallel visited set's shard (map backend)
	// or stripe (flat backend) count; 0 selects the backend default
	// (visited.DefaultShardBits / visited.DefaultFlatStripeBits). Ignored
	// by the sequential driver and by the bitstate backend.
	ShardBits int
	// Visited selects the visited-set storage backend (internal/visited).
	// The zero value is visited.Flat, the open-addressing table; Map is
	// the original Go-map backend (exact, interchangeable with Flat);
	// Spill overflows the flat tier to sorted disk runs, keeping RAM
	// bounded by SpillMem while staying exact; Bitstate trades exactness
	// for a fixed memory budget — see Result.Exact.
	Visited visited.Kind
	// BitstateMB is the bitstate backend's bit-array budget in MiB
	// (0 = visited.DefaultBitstateMB). Ignored by exact backends.
	BitstateMB int
	// SpillMem is the spill backend's in-RAM tier budget in bytes
	// (0 = visited.DefaultSpillMem). Ignored by other backends.
	SpillMem int64
	// SpillDir is the parent directory for the spill backend's run files
	// ("" = the OS temp dir); a per-run subdirectory is created lazily and
	// removed when the run finishes. Ignored by other backends.
	SpillDir string
	// CheckpointDir enables level-boundary checkpointing: at every BFS
	// level boundary the visited fingerprints, the frontier states and the
	// run statistics are snapshotted into a versioned subdirectory of this
	// directory, committed atomically by rename (see checkpoint.go). "" —
	// the default — disables checkpointing. Requires a system whose states
	// implement ts.KeyAppender and that itself implements ts.KeyDecoder,
	// BFS order, an exact visited backend, and RecordTrace/Usage off.
	CheckpointDir string
	// CheckpointEvery throttles how often level boundaries actually save.
	// Zero — the default — is the adaptive policy: a boundary saves only
	// when at least max(250ms, 20× the previous save's cost) has elapsed
	// since the last save, which bounds checkpoint overhead at roughly 5%
	// of wall-clock regardless of model size (E18). A positive duration
	// replaces the 250ms floor with a fixed minimum spacing (the 20× cost
	// rule still applies); a negative value saves at every level boundary
	// — the crash-harness setting, not a production one.
	CheckpointEvery time.Duration
	// Resume seeds the run from the newest committed checkpoint under
	// CheckpointDir instead of the system's initial states (a fresh start
	// when none exists). A resumed run reproduces the uninterrupted run's
	// verdict and state/transition/depth counts bit-identically.
	Resume bool
	// FS is the filesystem seam under the spill backend and the checkpoint
	// writer (nil = the real OS). Fault-injection tests plug a
	// faultfs.Injector in here; production code leaves it nil.
	FS faultfs.FS
	// MemStats additionally collects allocation counters
	// (runtime.ReadMemStats deltas) into Result.Space. ReadMemStats stops
	// the world, so leave this off in the synthesis inner loop; the cmd/
	// tools set it for their -stats flag. The deltas are process-global:
	// they attribute cleanly only when nothing else allocates during the
	// run (concurrent synthesis dispatches inflate each other's counts).
	MemStats bool
	// StringKeys routes fingerprinting through the legacy path — a
	// formatted Key() string per offered state (canonicalized over string
	// comparison under Symmetry) hashed with OfString — instead of the
	// allocation-free ts.KeyAppender binary encodings. Exploration results
	// are identical either way (the zoo keying-equivalence test pins this);
	// the flag exists for differential testing and the E14 keying ablation,
	// not for production use.
	StringKeys bool
	// NoRecycle disables the successor-recycling half of the lifecycle
	// protocol: the checker never hands states back to a ts.Recycler
	// system, so every Fire clone is built fresh. Exploration results are
	// identical either way (the zoo recycling-equivalence test pins this);
	// the flag exists for differential testing and the E15 ablation.
	NoRecycle bool
	// FreshTransitions disables the ts.TransitionAppender enumeration path:
	// transitions are enumerated through plain Transitions (a fresh slice
	// per expansion) even when the system can append into the checker's
	// per-worker scratch. For differential testing and the E15 ablation.
	FreshTransitions bool
	// ProfileLabels wraps the drivers' inner-loop phases (enumerate / fire
	// / key / insert) in runtime/pprof goroutine labels so -cpuprofile
	// output attributes hot-path time by phase. Costs one label switch per
	// phase transition; leave it off except when profiling (the cmd/ tools
	// set it alongside -cpuprofile).
	ProfileLabels bool
	// Liveness additionally checks the system's liveness goals
	// (ts.LivenessReporter) after a safety pass that found no violation:
	// a sequential nested-DFS cycle search per goal over the product with
	// the goal's negated Büchi monitor (and, for Fair goals, the weak-
	// fairness copies). Requires an exact visited backend — Check returns
	// ErrLivenessInexact under bitstate, whose omissions could hide a real
	// cycle or fabricate a spurious one. The liveness phase keys product
	// states without symmetry reduction even when Symmetry is set (the
	// safety pass still reduces): per-process predicates like "process i
	// holds the token" are not permutation-invariant, so cycle detection
	// on the quotient graph would be unsound. See internal/mc/liveness.go.
	Liveness bool
	// Obs optionally publishes live telemetry into a collector: states /
	// transitions / duplicates / recycled counters on the hot path (staged
	// per-worker, flushed in batches — see internal/obs), sampled per-phase
	// timings, and depth / frontier / visited-bytes gauges plus a timeline
	// mark at every BFS level boundary. Nil disables all of it at zero
	// cost; after a run every counter equals the corresponding
	// statespace.Stats field (the zoo obs-equivalence test pins this).
	// Synthesis dispatches running concurrently may share one collector.
	Obs *obs.Collector
}

// item is one frontier entry of the sequential driver: the state itself
// with its BFS depth and the accumulated hole-usage mask. This is the
// trace-optional representation — with RecordTrace off the item is
// everything the checker holds for a state (and it is dropped once the
// state is expanded); with it on, node additionally points into the
// parent-linked trace store.
type item struct {
	state ts.State
	node  *statespace.TraceNode[ts.State] // nil unless RecordTrace
	depth int
	mask  uint64
}

type checker struct {
	sys   ts.System
	opt   Options
	ctx   context.Context
	canon *symmetry.Canonicalizer
	key   keyer
	invs  []ts.Invariant
	goals []ts.ReachGoal
	quies ts.QuiescentReporter
	lc    lifecycle
	ckpt  *checkpointer
	// pollN counts expansions toward the next cooperative cancellation
	// check; cur is the state currently being expanded, so a recovered
	// panic can report which state blew up.
	pollN int
	cur   ts.State
	// resumePeak carries a resumed run's checkpointed frontier high-water
	// mark, merged with the live queue's own peak at the end.
	resumePeak int
	// trsBuf is the transition scratch: on the ts.TransitionAppender path it
	// is truncated and refilled per expansion, so steady-state enumeration
	// allocates nothing.
	trsBuf   []ts.Transition
	recycled uint64
	labels   *phaseLabels
	// ow is the telemetry staging worker (nil when Options.Obs is unset;
	// every method no-ops on nil, mirroring the labels idiom).
	ow *obs.Worker

	visited  visited.Store
	traces   *statespace.TraceStore[ts.State]
	frontier statespace.Queue[item]
	goalHit  []bool
	// admitted mirrors visited.Len() as a plain monotonic counter so the
	// MaxStates cap probe never touches the store on the expansion path
	// (Len can be a sweep for some backends).
	admitted int

	res Result
}

// lifecycle is a driver's handle on the successor lifecycle protocol: the
// system's recycler accepting dead states (nil when the system does not pool
// or Options.NoRecycle), the appender enumeration path (nil when absent or
// Options.FreshTransitions forces plain Transitions), and the pool-traffic
// baseline so the run reports its own delta of the system's cumulative
// ts.PoolReporter counters.
type lifecycle struct {
	recycler ts.Recycler
	appender ts.TransitionAppender
	pool     ts.PoolReporter
	hits0    uint64
	misses0  uint64
}

// newLifecycle resolves sys's lifecycle capabilities under opt.
func newLifecycle(sys ts.System, opt Options) lifecycle {
	var lc lifecycle
	if !opt.NoRecycle {
		lc.recycler, _ = sys.(ts.Recycler)
	}
	if !opt.FreshTransitions {
		lc.appender, _ = sys.(ts.TransitionAppender)
	}
	if pr, ok := sys.(ts.PoolReporter); ok {
		lc.pool = pr
		lc.hits0, lc.misses0 = pr.PoolStats()
	}
	return lc
}

// finishPool folds the run's pool traffic into the space profile.
func (lc *lifecycle) finishPool(space *statespace.Stats, recycled uint64) {
	space.Recycled = recycled
	if lc.pool != nil {
		h, m := lc.pool.PoolStats()
		space.PoolHits = h - lc.hits0
		space.PoolMisses = m - lc.misses0
	}
}

// recycle hands a dead state back to the system's pool. The caller must own
// s outright: nothing — trace node, frontier entry, failure info — may still
// reference it (see the ts package's ownership rules).
func (c *checker) recycle(s ts.State) {
	if c.lc.recycler != nil {
		c.lc.recycler.Recycle(s)
		c.recycled++
		c.ow.Inc(obs.CRecycled)
	}
}

// enumerate lists the transitions enabled in s, through the appender path
// into the reusable scratch when the system supports it.
func (c *checker) enumerate(s ts.State) []ts.Transition {
	if c.lc.appender != nil {
		c.trsBuf = c.lc.appender.AppendTransitions(c.trsBuf[:0], s)
		return c.trsBuf
	}
	return c.sys.Transitions(s)
}

// Check explores the reachable state space of sys under opt. It is
// CheckCtx with a background context: never cancelled, no deadline.
//
// The error return is reserved for malformed models (no initial states,
// transition errors other than ts.ErrWildcard) and I/O failures of the
// spill and checkpoint layers; property violations — and aborts — are
// reported in the Result, not as errors.
func Check(sys ts.System, opt Options) (*Result, error) {
	return CheckCtx(context.Background(), sys, opt)
}

// CheckCtx explores the reachable state space of sys under opt, stopping
// cooperatively when ctx is cancelled or its deadline passes. A cancelled
// run is not an error: it returns Verdict == Aborted with a non-nil
// Result.Abort carrying the cancel cause (context.Cause) and whatever
// partial statistics the exploration accumulated.
func CheckCtx(ctx context.Context, sys ts.System, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var before runtime.MemStats
	if opt.MemStats {
		runtime.ReadMemStats(&before)
	}
	res, err := check(ctx, sys, opt)
	if err != nil {
		return nil, err
	}
	if opt.MemStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		res.Space.Mallocs = after.Mallocs - before.Mallocs
		res.Space.AllocBytes = after.TotalAlloc - before.TotalAlloc
	}
	return res, nil
}

// check dispatches to the selected exploration driver, then — under
// Options.Liveness — runs the nested-DFS liveness phase on the safety
// pass's non-failing result. An aborted safety pass skips the liveness
// phase: its product search is rooted in the same (now incomplete) space.
func check(ctx context.Context, sys ts.System, opt Options) (*Result, error) {
	if opt.Liveness && !opt.Visited.Exact() {
		return nil, fmt.Errorf("mc: visited backend %q is lossy; %w", opt.Visited, ErrLivenessInexact)
	}
	var res *Result
	var err error
	if useParallel(opt) {
		res, err = checkParallel(ctx, sys, opt)
	} else {
		res, err = checkSequential(ctx, sys, opt)
	}
	if err != nil || !opt.Liveness || res.Verdict == Failure || res.Verdict == Aborted {
		return res, err
	}
	if lerr := checkLiveness(ctx, sys, opt, res); lerr != nil {
		return nil, lerr
	}
	return res, nil
}

// checkSequential runs the deterministic sequential driver.
func checkSequential(ctx context.Context, sys ts.System, opt Options) (*Result, error) {
	c := &checker{
		sys:     sys,
		opt:     opt,
		ctx:     ctx,
		lc:      newLifecycle(sys, opt),
		labels:  newPhaseLabels(opt),
		visited: visited.New(visitedConfig(opt)),
		traces:  statespace.NewTraceStore[ts.State](opt.RecordTrace),
	}
	c.invs = sys.Invariants()
	if gr, ok := sys.(ts.GoalReporter); ok {
		c.goals = gr.Goals()
		c.goalHit = make([]bool, len(c.goals))
	}
	if qr, ok := sys.(ts.QuiescentReporter); ok {
		c.quies = qr
	}
	c.canon = newCanon(sys, opt)
	c.key = newKeyer(c.canon, opt)
	var err error
	if c.ckpt, err = newCheckpointer(sys, opt, c.visited); err != nil {
		closeStore(c.visited)
		return nil, err
	}
	c.obsStart()
	err = c.runSafe()
	c.labels.clear()
	c.obsFinish(c.res.Stats.MaxDepth)
	if err == nil {
		c.res.Space.Transitions = c.res.Stats.FiredTransitions
		c.res.Space.PeakFrontier = max(c.frontier.Peak(), c.resumePeak)
		c.res.Space.TraceNodes = c.traces.Nodes()
		c.lc.finishPool(&c.res.Space, c.recycled)
		fillSpace(&c.res, c.visited, unsafe.Sizeof(item{}), c.traces.NodeBytes())
	}
	if cerr := closeStore(c.visited); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return &c.res, nil
}

// runSafe is run with panic containment: a panic out of model code is
// converted into an Aborted verdict carrying the offending state's key
// and the panicking stack, instead of crashing the process.
func (c *checker) runSafe() (err error) {
	defer func() {
		if p := recover(); p != nil {
			c.abort(panicAbort(p, c.cur))
			err = nil
		}
	}()
	return c.run()
}

// abort records why the run was cut short and settles the verdict: a
// failure found before the abort still wins; otherwise the verdict is
// Aborted with the partial statistics visible so far.
func (c *checker) abort(info *AbortInfo) {
	if c.res.Verdict == Failure {
		return
	}
	c.res.Abort = info
	c.res.Verdict = Aborted
	c.res.Stats.VisitedStates = c.visited.Len()
}

// pollCancel is the sequential driver's cooperative cancellation probe:
// cheap enough for the expansion loop (one counter increment amortizing a
// ctx.Err() load), unconditional at level boundaries (force). It reports
// whether the run should stop, having recorded the abort.
func (c *checker) pollCancel(force bool) bool {
	if c.res.Abort != nil {
		return true
	}
	if !force {
		if c.pollN++; c.pollN < cancelPollStride {
			return false
		}
		c.pollN = 0
	}
	if c.ctx.Err() != nil {
		c.abort(cancelAbort(c.ctx))
		return true
	}
	return false
}

// visitedConfig maps checker options onto the storage layer's config,
// threading the fault-injection seam and the retry telemetry hook through
// to the spill backend.
func visitedConfig(opt Options) visited.Config {
	return visited.Config{
		Kind:       opt.Visited,
		ShardBits:  opt.ShardBits,
		BitstateMB: opt.BitstateMB,
		SpillMem:   opt.SpillMem,
		SpillDir:   opt.SpillDir,
		FS:         opt.FS,
		OnRetry:    ioRetryHook(opt.Obs),
	}
}

// endLevel notifies level-aware backends (visited.LevelMarker) of a BFS
// level boundary; the spill backend merges its run files here. A non-nil
// error aborts the exploration — the store's answers are no longer
// trustworthy.
func endLevel(store visited.Store) error {
	if lm, ok := store.(visited.LevelMarker); ok {
		return lm.EndLevel()
	}
	return nil
}

// closeStore releases backends that own external resources (the spill
// backend's run files). The returned error is the store's first I/O
// failure, so even drivers that hit no level boundary surface it.
func closeStore(store visited.Store) error {
	if c, ok := store.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// fillSpace folds the visited-set backend's self-report into the result's
// memory profile and computes the retained-bytes figure.
func fillSpace(res *Result, store visited.Store, itemBytes, nodeBytes uintptr) {
	vs := store.Stats()
	res.Space.States = vs.States
	res.Space.VisitedBytes = vs.Bytes
	res.Space.Backend = vs.Backend
	res.Space.Inexact = !vs.Exact
	res.Space.OmissionProb = vs.OmissionProb
	res.Space.SpilledBytes = vs.SpilledBytes
	res.Space.SpillRuns = vs.SpillRuns
	res.Exact = vs.Exact
	res.Space.SetRetained(itemBytes, nodeBytes)
}

// useParallel reports whether opt selects the parallel driver. DFS is
// inherently an ordered traversal and usage tracking brackets each firing
// with ResetUsage/Usage on one tracker, so both force the sequential path.
func useParallel(opt Options) bool {
	return opt.Workers > 1 && opt.Order == BFS && opt.Usage == nil
}

// newCanon builds the symmetry canonicalizer when enabled and applicable.
func newCanon(sys ts.System, opt Options) *symmetry.Canonicalizer {
	if !opt.Symmetry {
		return nil
	}
	if p, ok := anyPermutable(sys); ok {
		return symmetry.NewCanonicalizer(p.NumAgents())
	}
	return nil
}

func anyPermutable(sys ts.System) (ts.Permutable, bool) {
	for _, s := range sys.Initial() {
		if p, ok := s.(ts.Permutable); ok {
			return p, true
		}
	}
	return nil, false
}

// keyer is the per-worker fingerprinting scratch: the canonicalizer handle
// plus a reusable encoding buffer for the no-symmetry appender path. Both
// drivers thread one keyer per worker through enqueue/expand — never
// shared, never locked — so the traceless synthesis regime fingerprints
// without allocating at all. The zero value (nil canon) keys without
// symmetry reduction.
type keyer struct {
	canon  *symmetry.Canonicalizer
	legacy bool   // Options.StringKeys: format and hash Key() strings instead
	buf    []byte // reusable AppendKey buffer (canon == nil path)
}

// fingerprint returns the 64-bit fingerprint of s's canonical encoding —
// the keying scheme shared by both exploration drivers (which is what
// makes their reachable-state counts comparable). The hot path appends s's
// binary encoding into the keyer's reusable buffer (or the canonicalizer's
// pooled scratch under symmetry) and hashes it in place; states without
// ts.KeyAppender, and runs forcing Options.StringKeys, fall back to
// hashing the formatted Key() string.
func (k *keyer) fingerprint(s ts.State) statespace.Fingerprint {
	if k.legacy {
		if k.canon != nil {
			return statespace.OfString(k.canon.Key(s))
		}
		return statespace.OfString(s.Key())
	}
	if k.canon != nil {
		return k.canon.Fingerprint(s)
	}
	if a, ok := s.(ts.KeyAppender); ok {
		k.buf = a.AppendKey(k.buf[:0])
		return statespace.OfBytes(k.buf)
	}
	return statespace.OfString(s.Key())
}

// newKeyer builds a worker's fingerprinting scratch.
func newKeyer(canon *symmetry.Canonicalizer, opt Options) keyer {
	return keyer{canon: canon, legacy: opt.StringKeys}
}

// tracePath converts a trace-store parent chain into initial→violation
// counterexample steps.
func tracePath(n *statespace.TraceNode[ts.State]) []TraceStep {
	chain := n.Path()
	out := make([]TraceStep, len(chain))
	for i, link := range chain {
		out[i] = TraceStep{Rule: link.Rule, State: link.State}
	}
	return out
}

// enqueue registers s if unseen and returns its frontier item and whether
// it was fresh. The trace store allocates a node only under RecordTrace.
// Rejected duplicates are recycled: they were never traced and never
// enqueued, so the system may reuse their storage immediately — the
// unconditionally safe recycle point, valid with traces on or off.
func (c *checker) enqueue(s ts.State, parent *statespace.TraceNode[ts.State], rule string, depth int, mask uint64, sw *obs.Stopwatch) (item, bool) {
	c.labels.key()
	sw.Mark()
	fp := c.key.fingerprint(s)
	sw.Lap(obs.PhaseKey)
	c.labels.insert()
	fresh := c.visited.TryInsert(fp)
	sw.Lap(obs.PhaseInsert)
	if !fresh {
		c.ow.Inc(obs.CDuplicates)
		c.recycle(s)
		return item{}, false
	}
	c.ow.Inc(obs.CStates)
	c.admitted++
	it := item{state: s, node: c.traces.Add(s, rule, parent), depth: depth, mask: mask}
	if depth > c.res.Stats.MaxDepth {
		c.res.Stats.MaxDepth = depth
	}
	return it, true
}

// checkState runs invariants and goal predicates on a freshly discovered
// state; it reports whether exploration should stop (violation found).
func (c *checker) checkState(it item) bool {
	for _, inv := range c.invs {
		if !inv.Holds(it.state) {
			c.fail(FailInvariant, inv.Name, it.node, it.mask)
			return true
		}
	}
	for gi := range c.goals {
		if !c.goalHit[gi] && c.goals[gi].Holds(it.state) {
			c.goalHit[gi] = true
		}
	}
	return false
}

// fail records a property violation; n is the failing state's trace node
// (nil with traces off, or for goal failures, which have no single trace).
func (c *checker) fail(kind FailKind, name string, n *statespace.TraceNode[ts.State], mask uint64) {
	c.res.Verdict = Failure
	c.res.Stats.VisitedStates = c.visited.Len()
	fi := &FailureInfo{Kind: kind, Name: name, UsageMask: mask}
	if n != nil {
		fi.Trace = tracePath(n)
	}
	c.res.Failure = fi
}

func (c *checker) run() error {
	lastDepth := 0
	resumed, err := c.resumeSeq()
	if err != nil {
		return err
	}
	if resumed {
		c.res.Resumed = true
		lastDepth = c.resumeDepth()
	} else {
		inits := c.sys.Initial()
		if len(inits) == 0 {
			return fmt.Errorf("mc: system %q has no initial states", c.sys.Name())
		}
		for _, s := range inits {
			if it, fresh := c.enqueue(s, nil, "", 0, 0, nil); fresh {
				if c.checkState(it) {
					return nil
				}
				c.frontier.PushBack(it)
			}
		}
	}

	// An already-expired context (a deadline shorter than setup, a
	// pre-cancelled run) aborts before any expansion, regardless of stride.
	if c.pollCancel(true) {
		return nil
	}
	for c.frontier.Len() > 0 {
		var it item
		if c.opt.Order == DFS {
			it, _ = c.frontier.PopBack()
		} else {
			it, _ = c.frontier.PopFront()
			// BFS pops in depth order, so a depth increase is a level
			// boundary; level-aware backends reorganize here (DFS has no
			// levels and relies on the backend's own housekeeping). The
			// checkpointer snapshots here too — the popped item is the
			// new level's first state and rejoins the saved frontier —
			// and cancellation is always checked, so a deadline cannot
			// slip past a whole level.
			if it.depth > lastDepth {
				lastDepth = it.depth
				if err := c.endLevelObs(lastDepth); err != nil {
					return err
				}
				if err := c.checkpointSeq(it); err != nil {
					return err
				}
				if c.pollCancel(true) {
					return nil
				}
			}
		}
		if c.pollCancel(false) {
			return nil
		}
		if c.opt.MaxStates > 0 && c.admitted > c.opt.MaxStates {
			c.res.CapHit = true
			break
		}
		if done, err := c.expand(it); done || err != nil {
			return err
		}
	}

	if c.res.Verdict == Failure || c.res.Verdict == Aborted {
		return nil
	}
	c.res.Stats.VisitedStates = c.visited.Len()
	if c.res.WildcardHit || c.res.CapHit {
		c.res.Verdict = Unknown
		return nil
	}
	// Complete exploration: reachability goals are decidable now.
	for gi := range c.goals {
		if !c.goalHit[gi] {
			// A goal failure is a property of the entire explored space;
			// conservatively mark every hole as involved.
			c.fail(FailGoal, c.goals[gi].Name, nil, ^uint64(0))
			return nil
		}
	}
	c.res.Verdict = Success
	return nil
}

// expand fires all transitions of frontier entry it. It reports done=true
// when a violation stops the search.
func (c *checker) expand(it item) (done bool, err error) {
	c.cur = it.state            // panic containment reports this state's key
	sw := c.ow.BeginExpansion() // nil on unsampled expansions; Stopwatch is nil-safe
	defer sw.Done()
	c.labels.enumerate()
	sw.Mark()
	trs := c.enumerate(it.state)
	sw.Lap(obs.PhaseEnumerate)
	succs := 0
	blocked := 0
	for _, tr := range trs {
		if c.opt.Usage != nil {
			c.opt.Usage.ResetUsage()
		}
		c.labels.fire()
		sw.Mark()
		next, ferr := tr.Fire(c.opt.Env)
		sw.Lap(obs.PhaseFire)
		if ferr != nil {
			if errors.Is(ferr, ts.ErrWildcard) {
				c.res.WildcardHit = true
				c.res.Stats.WildcardAborts++
				c.ow.Inc(obs.CAborts)
				blocked++
				continue
			}
			return false, fmt.Errorf("mc: transition %q from state %q: %w", tr.Name, it.state.Key(), ferr)
		}
		c.res.Stats.FiredTransitions++
		c.ow.Inc(obs.CTransitions)
		succs++
		mask := it.mask
		if c.opt.Usage != nil {
			mask |= c.opt.Usage.Usage()
		}
		if child, fresh := c.enqueue(next, it.node, tr.Name, it.depth+1, mask, sw); fresh {
			if c.checkState(child) {
				return true, nil
			}
			c.frontier.PushBack(child)
		}
	}
	if succs == 0 && !c.opt.NoDeadlock && blocked == 0 {
		// With blocked > 0 all outgoing behaviour hides behind wildcards:
		// not provably a deadlock; the Unknown verdict (WildcardHit) covers
		// it, and the expansion completes normally below.
		if c.quies == nil || !c.quies.Quiescent(it.state) {
			c.fail(FailDeadlock, "deadlock", it.node, it.mask)
			return true, nil
		}
	}
	// Normal completion. In traceless mode nothing outlives the expansion —
	// no trace node was ever allocated for it.state, its frontier entry was
	// popped, and the fired closures are dead — so the expanded state itself
	// returns to the pool. With traces on it is retained by its trace node
	// and must escape the pool forever.
	if !c.opt.RecordTrace {
		c.recycle(it.state)
	}
	return false, nil
}

// VisitedStates re-explores sys and returns the number of reachable states;
// convenience for reports and tests on complete models.
func VisitedStates(sys ts.System, symmetryOn bool) (int, error) {
	r, err := Check(sys, Options{Symmetry: symmetryOn})
	if err != nil {
		return 0, err
	}
	if r.Verdict == Failure {
		return r.Stats.VisitedStates, fmt.Errorf("mc: %s: %s %q violated", sys.Name(), r.Failure.Kind, r.Failure.Name)
	}
	return r.Stats.VisitedStates, nil
}
