package mc_test

import (
	"errors"
	"strings"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/ts"
)

// line builds a linear graph 0 → 1 → … → n-1 with optional bad terminal.
func line(n int, badLast bool) *toy.Graph {
	g := &toy.Graph{SysName: "line", Init: []int{0}}
	for i := 0; i < n; i++ {
		node := toy.Node{}
		if i+1 < n {
			node.Plain = []int{i + 1}
		}
		g.Nodes = append(g.Nodes, node)
	}
	if badLast {
		g.Nodes[n-1].Bad = true
	}
	return g
}

// TestSuccessOnSafeSystem checks the plain happy path.
func TestSuccessOnSafeSystem(t *testing.T) {
	res, err := mc.Check(line(5, false), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.Stats.VisitedStates != 5 {
		t.Errorf("states = %d, want 5", res.Stats.VisitedStates)
	}
	if res.Stats.MaxDepth != 4 {
		t.Errorf("depth = %d, want 4", res.Stats.MaxDepth)
	}
}

// TestInvariantFailureWithTrace checks the counterexample trace is complete
// and ordered initial → violation.
func TestInvariantFailureWithTrace(t *testing.T) {
	res, err := mc.Check(line(4, true), mc.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailInvariant {
		t.Fatalf("got %v / %+v", res.Verdict, res.Failure)
	}
	if len(res.Failure.Trace) != 4 {
		t.Fatalf("trace length = %d, want 4", len(res.Failure.Trace))
	}
	if res.Failure.Trace[0].Rule != "" {
		t.Error("first step should be the initial state")
	}
	if res.Failure.Trace[3].State.Key() != "n3" {
		t.Errorf("last state = %s, want n3", res.Failure.Trace[3].State.Key())
	}
}

// TestBFSTraceMinimality: with a short and a long path to the same bad
// state, BFS must report the short one. This property is what makes the
// paper's pruning patterns maximally general.
func TestBFSTraceMinimality(t *testing.T) {
	//     0 → 1 → 2 → 3(bad)
	//     0 ----------→ 3 (direct)
	g := &toy.Graph{SysName: "twopaths", Init: []int{0}, Nodes: []toy.Node{
		{Plain: []int{1, 3}},
		{Plain: []int{2}},
		{Plain: []int{3}},
		{Bad: true},
	}}
	res, err := mc.Check(g, mc.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if got := len(res.Failure.Trace); got != 2 {
		t.Errorf("BFS trace length = %d, want 2 (minimal)", got)
	}
	// DFS explores depth-first and may find the long way round.
	res, err = mc.Check(g, mc.Options{RecordTrace: true, Order: mc.DFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure {
		t.Fatalf("DFS verdict = %v", res.Verdict)
	}
}

// TestDeadlockDetection checks a non-quiescent sink is reported.
func TestDeadlockDetection(t *testing.T) {
	// Node 1 has a hole with zero... use a graph where a node has no edges
	// but is NOT quiescent: toy marks hole-less edge-less nodes quiescent,
	// so build the deadlock via a hole node with a wildcard-free chooser?
	// Simpler: a custom system.
	sys := &sinkSystem{}
	res, err := mc.Check(sys, mc.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailDeadlock {
		t.Fatalf("got %v / %+v, want deadlock", res.Verdict, res.Failure)
	}
}

// sinkSystem: 0 → 1, and 1 has no transitions and is not quiescent.
type sinkSystem struct{}

type intState int

func (s intState) Key() string     { return string(rune('a' + s)) }
func (s intState) Clone() ts.State { return s }

func (*sinkSystem) Name() string        { return "sink" }
func (*sinkSystem) Initial() []ts.State { return []ts.State{intState(0)} }
func (*sinkSystem) Transitions(s ts.State) []ts.Transition {
	if s.(intState) == 0 {
		return []ts.Transition{{Name: "go", Fire: func(*ts.Env) (ts.State, error) { return intState(1), nil }}}
	}
	return nil
}
func (*sinkSystem) Invariants() []ts.Invariant { return nil }

// TestQuiescentSinkIsNotDeadlock checks QuiescentReporter suppresses the
// deadlock report (toy terminal nodes are quiescent).
func TestQuiescentSinkIsNotDeadlock(t *testing.T) {
	res, err := mc.Check(line(3, false), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict = %v, want success", res.Verdict)
	}
}

// TestNoDeadlockOption checks deadlock detection can be disabled.
func TestNoDeadlockOption(t *testing.T) {
	res, err := mc.Check(&sinkSystem{}, mc.Options{NoDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict = %v, want success with NoDeadlock", res.Verdict)
	}
}

// TestGoalFailure checks an unreached goal fails a complete exploration.
func TestGoalFailure(t *testing.T) {
	g := line(3, false)
	g.Nodes = append(g.Nodes, toy.Node{Goal: true}) // unreachable node 3
	res, err := mc.Check(g, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailGoal {
		t.Fatalf("got %v / %+v, want goal failure", res.Verdict, res.Failure)
	}
	if res.Failure.UsageMask != ^uint64(0) {
		t.Error("goal failures must conservatively involve every hole")
	}
}

// TestGoalReached checks a reachable goal passes.
func TestGoalReached(t *testing.T) {
	g := line(3, false)
	g.Nodes[2].Goal = true
	res, err := mc.Check(g, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

// wildcardChooser makes every hole a wildcard.
type wildcardChooser struct{}

func (wildcardChooser) Choose(string, []string) (int, error) { return 0, ts.ErrWildcard }

// TestUnknownOnWildcard checks wildcard aborts downgrade success to unknown
// and suppress both deadlock and goal verdicts.
func TestUnknownOnWildcard(t *testing.T) {
	g := toy.Figure2()
	res, err := mc.Check(g, mc.Options{Env: ts.NewEnv(wildcardChooser{})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Unknown {
		t.Fatalf("verdict = %v, want unknown", res.Verdict)
	}
	if !res.WildcardHit || res.Stats.WildcardAborts == 0 {
		t.Error("wildcard statistics not recorded")
	}
}

// TestMaxStatesCap checks the cap downgrades to unknown.
func TestMaxStatesCap(t *testing.T) {
	res, err := mc.Check(line(100, false), mc.Options{MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Unknown || !res.CapHit {
		t.Fatalf("got %v capHit=%v, want unknown via cap", res.Verdict, res.CapHit)
	}
}

// errChooser returns a non-wildcard error.
type errChooser struct{}

func (errChooser) Choose(string, []string) (int, error) {
	return 0, errors.New("boom")
}

// TestModelErrorPropagates checks non-wildcard Fire errors become Check
// errors, not verdicts.
func TestModelErrorPropagates(t *testing.T) {
	_, err := mc.Check(toy.Figure2(), mc.Options{Env: ts.NewEnv(errChooser{})})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestNoInitialStates checks the malformed-model error.
func TestNoInitialStates(t *testing.T) {
	g := &toy.Graph{SysName: "empty"}
	if _, err := mc.Check(g, mc.Options{}); err == nil {
		t.Fatal("want error for no initial states")
	}
}

// TestVisitedStatesHelper checks the convenience wrapper.
func TestVisitedStatesHelper(t *testing.T) {
	n, err := mc.VisitedStates(line(7, false), false)
	if err != nil || n != 7 {
		t.Fatalf("got %d, %v", n, err)
	}
	if _, err := mc.VisitedStates(line(3, true), false); err == nil {
		t.Fatal("want error for failing system")
	}
}

// TestDFSExploresAll checks DFS visits the same state count on a safe system.
func TestDFSExploresAll(t *testing.T) {
	bfs, err := mc.Check(line(9, false), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := mc.Check(line(9, false), mc.Options{Order: mc.DFS})
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Stats.VisitedStates != dfs.Stats.VisitedStates {
		t.Errorf("BFS %d states vs DFS %d", bfs.Stats.VisitedStates, dfs.Stats.VisitedStates)
	}
}

// TestVerdictStrings pins the display names used in reports.
func TestVerdictStrings(t *testing.T) {
	for v, want := range map[mc.Verdict]string{
		mc.Success: "success", mc.Failure: "failure", mc.Unknown: "unknown",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
	for k, want := range map[mc.FailKind]string{
		mc.FailInvariant: "invariant", mc.FailDeadlock: "deadlock", mc.FailGoal: "goal",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
