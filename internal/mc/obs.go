package mc

import (
	"time"

	"verc3/internal/obs"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

// This file is the drivers' glue onto internal/obs. Counters ride the
// per-worker staging path (obs.Worker) inside the expansion hot loops in
// mc.go / parallel.go / liveness.go; everything coarser — gauges, the
// snapshot timeline, the level-merge phase timing — funnels through the
// level-boundary helpers here so both drivers publish identically.

// obsLevelGauges publishes the BFS-level gauges (depth, frontier size,
// visited-set footprint, spill and pool traffic) and appends a timeline
// mark. Called with all workers freshly flushed so the mark's counters
// are exact at the boundary. store.Stats() is a few loads per backend —
// fine per level, far too hot per state.
func obsLevelGauges(o *obs.Collector, store visited.Store, lc *lifecycle, depth, frontier int) {
	if o == nil {
		return
	}
	o.SetGauge(obs.GDepth, uint64(depth))
	o.SetGauge(obs.GFrontier, uint64(frontier))
	vs := store.Stats()
	o.SetGauge(obs.GVisitedBytes, uint64(vs.Bytes))
	o.SetGauge(obs.GSpilledBytes, uint64(vs.SpilledBytes))
	o.SetGauge(obs.GSpillRuns, uint64(vs.SpillRuns))
	obsPoolGauges(o, &lc.pool, lc.hits0, lc.misses0)
	o.MarkTimeline()
}

// obsPoolGauges publishes the run's successor-pool traffic delta. Gauges,
// not counters: the underlying ts.PoolReporter totals are per-system and
// shared across concurrent synthesis dispatches (see obs.GPoolHits).
func obsPoolGauges(o *obs.Collector, pool *ts.PoolReporter, hits0, misses0 uint64) {
	if o == nil || *pool == nil {
		return
	}
	h, m := (*pool).PoolStats()
	o.SetGauge(obs.GPoolHits, h-hits0)
	o.SetGauge(obs.GPoolMisses, m-misses0)
}

// endLevelObs is the sequential driver's instrumented level boundary:
// flush the staged counters, run the backend's level housekeeping under
// the level_merge phase clock, then publish the level gauges and mark
// the timeline. Collapses to plain endLevel when telemetry is off.
func (c *checker) endLevelObs(depth int) error {
	o := c.opt.Obs
	if o == nil {
		return endLevel(c.visited)
	}
	c.ow.Flush()
	t0 := time.Now()
	err := endLevel(c.visited)
	o.ObservePhase(obs.PhaseLevelMerge, time.Since(t0))
	obsLevelGauges(o, c.visited, &c.lc, depth, c.frontier.Len())
	return err
}

// endLevelObs is the parallel driver's instrumented level boundary. All
// ExpandLevel workers have joined (WaitGroup happens-before), so the main
// goroutine may flush every worker's staged counters before the gauges
// and timeline mark are published.
func (c *pchecker) endLevelObs(nextLen int) error {
	o := c.opt.Obs
	if o == nil {
		return endLevel(c.visited)
	}
	for i := range c.workers {
		c.workers[i].ow.Flush()
	}
	t0 := time.Now()
	err := endLevel(c.visited)
	o.ObservePhase(obs.PhaseLevelMerge, time.Since(t0))
	obsLevelGauges(o, c.visited, &c.lc, int(c.maxDepth.Load()), nextLen)
	return err
}

// obsFinish (parallel) flushes every worker and republishes the final
// gauges; called from finish once all workers have joined.
func (c *pchecker) obsFinish() {
	o := c.opt.Obs
	if o == nil {
		return
	}
	for i := range c.workers {
		c.workers[i].ow.Flush()
	}
	obsLevelGauges(o, c.visited, &c.lc, int(c.maxDepth.Load()), 0)
}

// obsStart binds the sequential checker to the run's collector and
// publishes the run-scoped cap gauge.
func (c *checker) obsStart() {
	c.ow = c.opt.Obs.NewWorker()
	c.opt.Obs.SetGauge(obs.GMaxStates, uint64(c.opt.MaxStates))
}

// obsFinish flushes the staged counters and republishes the end-of-run
// gauges, so the post-run snapshot (and the report's final entry) is
// exact regardless of how the run ended — success, failure, cap, error.
func (c *checker) obsFinish(depth int) {
	if c.opt.Obs == nil {
		return
	}
	c.ow.Flush()
	obsLevelGauges(c.opt.Obs, c.visited, &c.lc, depth, c.frontier.Len())
}
