package mc_test

// Telemetry equivalence tests: the obs counters are a second, live view of
// the exploration statistics, and after a run the two views must agree
// exactly (the drivers flush every staged worker at run end). The CI
// workflow's race-enabled test step exercises the parallel arms.

import (
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"verc3/internal/mc"
	"verc3/internal/obs"
	"verc3/internal/ts"
	"verc3/internal/zoo"
)

// TestZooObsSnapshotMatchesStats pins the zoo-wide counter identity for
// both drivers: after any run, the collector's final snapshot must equal
// the run's statespace.Stats counter for counter — states, transitions,
// duplicates, aborts, recycles — and, because every offered state is
// either admitted or a duplicate under an exact uncapped backend,
// states + duplicates must equal transitions + initial states.
func TestZooObsSnapshotMatchesStats(t *testing.T) {
	for _, name := range zoo.Names() {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				sys, err := zoo.Get(name, zoo.Params{Caches: 2})
				if err != nil {
					t.Fatal(err)
				}
				inits := len(sys.Initial())
				col := obs.New()
				res, err := mc.Check(sys, mc.Options{
					Symmetry: true,
					Env:      ts.NewEnv(wildcardChooser{}), // complete models never call Choose
					Workers:  workers,
					Obs:      col,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				s := col.Snapshot()
				if got, want := s.Counters[obs.CStates], uint64(res.Space.States); got != want {
					t.Errorf("workers=%d: states counter %d, stats %d", workers, got, want)
				}
				if got, want := s.Counters[obs.CTransitions], uint64(res.Stats.FiredTransitions); got != want {
					t.Errorf("workers=%d: transitions counter %d, stats %d", workers, got, want)
				}
				if got, want := s.Counters[obs.CAborts], uint64(res.Stats.WildcardAborts); got != want {
					t.Errorf("workers=%d: aborts counter %d, stats %d", workers, got, want)
				}
				if got, want := s.Counters[obs.CRecycled], res.Space.Recycled; got != want {
					t.Errorf("workers=%d: recycled counter %d, stats %d", workers, got, want)
				}
				if res.Verdict != mc.Failure {
					// A completed exploration offers every initial state and
					// every fired successor to the visited set exactly once.
					// (A failure stops mid-expansion, with the frontier's
					// successors never offered.)
					offered := s.Counters[obs.CTransitions] + uint64(inits)
					if got := s.Counters[obs.CStates] + s.Counters[obs.CDuplicates]; got != offered {
						t.Errorf("workers=%d: states+duplicates = %d, want offered %d", workers, got, offered)
					}
				}
				if got, want := s.Gauges[obs.GDepth], uint64(res.Stats.MaxDepth); got != want {
					t.Errorf("workers=%d: depth gauge %d, stats %d", workers, got, want)
				}
				if s.Gauges[obs.GVisitedBytes] == 0 {
					t.Errorf("workers=%d: visited_bytes gauge is zero", workers)
				}
			}
		})
	}
}

// TestZooObsLivenessCounters pins the NDFS arm of the identity: the blue
// and red product admissions streamed during the liveness phase must equal
// the LiveStates/RedStates totals the phase reports in Stats.
func TestZooObsLivenessCounters(t *testing.T) {
	for _, name := range zoo.Names() {
		if name == "msi-complete-4" {
			continue // pinned for benchmarks; adds nothing over 2 caches
		}
		t.Run(name, func(t *testing.T) {
			sys, err := zoo.Get(name, zoo.Params{Caches: 2})
			if err != nil {
				t.Fatal(err)
			}
			if lr, ok := sys.(ts.LivenessReporter); !ok || len(lr.LivenessGoals()) == 0 {
				t.Skip("no liveness goals")
			}
			col := obs.New()
			res, err := mc.Check(sys, mc.Options{
				Liveness: true,
				Symmetry: true,
				Env:      ts.NewEnv(wildcardChooser{}),
				Obs:      col,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := col.Snapshot()
			if got, want := s.Counters[obs.CBlue], uint64(res.Space.LiveStates); got != want {
				t.Errorf("blue counter %d, stats %d", got, want)
			}
			if got, want := s.Counters[obs.CRed], uint64(res.Space.RedStates); got != want {
				t.Errorf("red counter %d, stats %d", got, want)
			}
			if got, want := s.Counters[obs.CAborts], uint64(res.Stats.WildcardAborts); got != want {
				t.Errorf("aborts counter %d, stats %d", got, want)
			}
		})
	}
}

// TestObsTimelineLevelMarks pins the -report timeline guarantee: on
// msi-complete-4 (depth 37) the level-boundary marks alone must leave well
// over five snapshots, with monotone counters, even when no sampler runs.
func TestObsTimelineLevelMarks(t *testing.T) {
	for _, workers := range []int{1, 8} {
		sys, err := zoo.Get("msi-complete-4", zoo.Params{})
		if err != nil {
			t.Fatal(err)
		}
		col := obs.New()
		res, err := mc.Check(sys, mc.Options{Symmetry: true, Workers: workers, Obs: col})
		if err != nil {
			t.Fatal(err)
		}
		tl := col.Timeline()
		if len(tl) < 5 {
			t.Fatalf("workers=%d: %d timeline entries, want >= 5", workers, len(tl))
		}
		r := obs.NewReport("mc-test", "msi-complete-4")
		r.Verdict = res.Verdict.String()
		r.Exact = res.Exact
		r.Space = res.Space
		r.Finish(col)
		if err := r.Validate(); err != nil {
			t.Errorf("workers=%d: report validation: %v", workers, err)
		}
	}
}

// BenchmarkExploreTelemetryOff/On price the telemetry stack on the
// msi-complete-4 exploration (the E17 ablation): Off is the plain check,
// On runs the full -progress + -metrics-addr stack — collector, 100 ms
// sampler, progress renderer, live HTTP metrics server. The two must
// stay within a few percent of each other; EXPERIMENTS.md E17 quotes
// the measured gap.
func BenchmarkExploreTelemetryOff(b *testing.B) {
	benchExplore(b, false)
}

func BenchmarkExploreTelemetryOn(b *testing.B) {
	benchExplore(b, true)
}

func benchExplore(b *testing.B, telemetry bool) {
	sys, err := zoo.Get("msi-complete-4", zoo.Params{})
	if err != nil {
		b.Fatal(err)
	}
	opt := mc.Options{Symmetry: true}
	if telemetry {
		col := obs.New()
		prog := obs.NewProgress(io.Discard)
		sampler := col.StartSampler(obs.DefaultSampleInterval, prog.Sample)
		defer sampler.Stop()
		srv := httptest.NewServer(obs.MetricsHandler(col))
		defer srv.Close()
		opt.Obs = col
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(sys, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != mc.Success {
			b.Fatalf("verdict %v", res.Verdict)
		}
	}
}

// TestTelemetryAllocRegression re-pins PR 6's ≤10 mallocs/state bar with
// the full telemetry stack live — collector, 2 ms sampler, non-TTY
// progress renderer — on the same msi-complete configuration. The staged
// counters and batched flushes must keep the whole -progress path out of
// the per-state allocation budget.
func TestTelemetryAllocRegression(t *testing.T) {
	sys, err := zoo.Get("msi-complete", zoo.Params{Caches: 3})
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	prog := obs.NewProgress(io.Discard)
	sampler := col.StartSampler(2*time.Millisecond, prog.Sample)
	res, err := mc.Check(sys, mc.Options{
		Symmetry: true,
		MemStats: true,
		Obs:      col,
	})
	sampler.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict %v", res.Verdict)
	}
	perState := float64(res.Space.Mallocs) / float64(res.Stats.VisitedStates)
	t.Logf("telemetry on: %.1f mallocs/state over %d states", perState, res.Stats.VisitedStates)
	if perState > 10 {
		t.Errorf("mallocs/state = %.1f with telemetry enabled, want <= 10", perState)
	}
}
