package mc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"verc3/internal/obs"
	"verc3/internal/statespace"
	"verc3/internal/symmetry"
	"verc3/internal/ts"
	"verc3/internal/visited"
)

// pitem is one frontier entry of the parallel driver: the state with its
// BFS depth. The same trace-optional representation as the sequential
// driver — with RecordTrace off, frontier levels are the only place states
// live and each level becomes garbage once expanded; with it on, node
// points into the shared trace store, whose parent chains keep every
// ancestor alive (the inherent memory cost of counterexamples).
type pitem struct {
	state ts.State
	node  *statespace.TraceNode[ts.State] // nil unless RecordTrace
	depth int
}

// pchecker is the level-synchronous parallel BFS driver. Each frontier
// level is spread over Options.Workers goroutines (statespace.ExpandLevel);
// successors dedupe through the concurrent visited set, whose TryInsert
// doubles as the expansion-ownership claim. Every backend — bitstate
// included, via its single-CAS completion rule — admits at most one of any
// set of racing inserts of a fingerprint, so every admitted state is
// checked and expanded exactly once and States/Transitions are exact
// counts of the explored space (under bitstate that space may still be
// missing omitted states). Statistics are atomic; the first property
// violation wins and stops the search.
type pchecker struct {
	sys   ts.System
	opt   Options
	ctx   context.Context
	ckpt  *checkpointer
	canon *symmetry.Canonicalizer
	// workers is the per-worker scratch, indexed by the ExpandLevel worker
	// index — each worker owns its encoding and transition buffers
	// outright, so the keying and enumeration hot paths are allocation- and
	// lock-free.
	workers []pworker
	lc      lifecycle
	labels  *phaseLabels
	invs    []ts.Invariant
	goals   []ts.ReachGoal
	quies   ts.QuiescentReporter

	visited visited.Store
	traces  *statespace.TraceStore[ts.State]
	goalHit []atomic.Bool

	fired    atomic.Int64
	aborts   atomic.Int64
	maxDepth atomic.Int64 // max enqueued depth (same semantics as sequential)
	// admitted mirrors visited.Len() as a monotonic counter so the
	// MaxStates cap probe is one atomic load instead of a per-expansion
	// sweep of the striped store. Maintained only when a cap is set —
	// uncapped runs (the synthesis default) skip even the shared-counter
	// increment on the admission path.
	admitted atomic.Int64
	wildcard atomic.Bool
	capHit   atomic.Bool
	// peak is the frontier high-water mark: the largest cur-level +
	// emitted-next-level coexistence reached during a level expansion
	// (updated between levels, when both are fully known).
	peak int
	// resumed reports that the run was seeded from a checkpoint.
	resumed bool
	// initCur is the initial state being admitted on the main goroutine, so
	// a panic during initial-state processing can report its key (worker
	// panics carry their own state via expand's recover).
	initCur ts.State

	// abort is the first abort to win (cancellation or a recovered worker
	// panic); later aborts — racing workers observing the same cancel, a
	// second panicking worker — are dropped, mirroring the failure rule.
	abort atomic.Pointer[AbortInfo]

	failMu  sync.Mutex
	failure *FailureInfo
}

// setAbort records the first abort; the CAS makes racing workers converge
// on one consistent cause.
func (c *pchecker) setAbort(info *AbortInfo) {
	c.abort.CompareAndSwap(nil, info)
}

// pworker is one ExpandLevel worker's private scratch: the fingerprinting
// keyer, the transition buffer for the ts.TransitionAppender enumeration
// path, and this worker's recycle count (summed into the space profile by
// finish). The struct is padded to two cache lines so neighbouring workers'
// per-expansion buffer-header and counter writes never false-share.
//
// The recycling side needs no driver-held free-list beyond this: the models
// pool through sync.Pool, whose per-P private caches already give each
// worker goroutine a lock-free local free-list — a successor recycled by a
// worker is overwhelmingly re-issued to a succ() clone on the same P
// without touching the shared pool chain.
type pworker struct {
	key      keyer
	trs      []ts.Transition
	recycled uint64
	// poll counts this worker's expansions toward its next cooperative
	// cancellation check (see cancelPollStride).
	poll int
	// ow stages this worker's telemetry counters (nil when Options.Obs is
	// unset). Each worker gets its own obs slot via NewWorker, so the
	// batched flushes land on distinct cache lines too.
	ow *obs.Worker
	_  [40]byte
}

// checkParallel explores sys with the parallel driver (see Options.Workers).
func checkParallel(ctx context.Context, sys ts.System, opt Options) (*Result, error) {
	c := &pchecker{
		sys:     sys,
		opt:     opt,
		ctx:     ctx,
		canon:   newCanon(sys, opt),
		lc:      newLifecycle(sys, opt),
		labels:  newPhaseLabels(opt),
		invs:    sys.Invariants(),
		visited: visited.NewConcurrent(visitedConfig(opt)),
		traces:  statespace.NewTraceStore[ts.State](opt.RecordTrace),
	}
	if gr, ok := sys.(ts.GoalReporter); ok {
		c.goals = gr.Goals()
		c.goalHit = make([]atomic.Bool, len(c.goals))
	}
	if qr, ok := sys.(ts.QuiescentReporter); ok {
		c.quies = qr
	}
	c.workers = make([]pworker, opt.Workers)
	for i := range c.workers {
		c.workers[i].key = newKeyer(c.canon, opt)
		c.workers[i].ow = opt.Obs.NewWorker()
	}
	var err error
	if c.ckpt, err = newCheckpointer(sys, opt, c.visited); err != nil {
		closeStore(c.visited)
		return nil, err
	}
	opt.Obs.SetGauge(obs.GMaxStates, uint64(opt.MaxStates))
	res, err := c.runSafe()
	c.labels.clear()
	if cerr := closeStore(c.visited); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// tryAdmit claims expansion ownership of s through worker w's keyer
// scratch, bumping the admitted counter on success when a cap needs it.
// Rejected duplicates are recycled on the spot: a loser of an insert race
// was never traced and never emitted, so only the calling worker can still
// reach it (counted per worker; the model's sync.Pool keeps the returned
// storage on this worker's P).
func (c *pchecker) tryAdmit(w int, s ts.State, sw *obs.Stopwatch) bool {
	pw := &c.workers[w]
	c.labels.key()
	sw.Mark()
	fp := pw.key.fingerprint(s)
	sw.Lap(obs.PhaseKey)
	c.labels.insert()
	fresh := c.visited.TryInsert(fp)
	sw.Lap(obs.PhaseInsert)
	if !fresh {
		pw.ow.Inc(obs.CDuplicates)
		if c.lc.recycler != nil {
			c.lc.recycler.Recycle(s)
			pw.recycled++
			pw.ow.Inc(obs.CRecycled)
		}
		return false
	}
	pw.ow.Inc(obs.CStates)
	if c.opt.MaxStates > 0 {
		c.admitted.Add(1)
	}
	return true
}

// noteDepth lifts the max-enqueued-depth watermark to d (racing workers
// each CAS until their depth is covered).
func (c *pchecker) noteDepth(d int) {
	for {
		cur := c.maxDepth.Load()
		if int64(d) <= cur || c.maxDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// checkState runs invariants and goal predicates on a freshly discovered
// state; it reports whether exploration should stop (violation recorded).
func (c *pchecker) checkState(it pitem) bool {
	for _, inv := range c.invs {
		if !inv.Holds(it.state) {
			c.fail(FailInvariant, inv.Name, it.node)
			return true
		}
	}
	for gi := range c.goals {
		if !c.goalHit[gi].Load() && c.goals[gi].Holds(it.state) {
			c.goalHit[gi].Store(true)
		}
	}
	return false
}

// fail records the first property violation; later violations (racing
// workers in the same level) are dropped, so the reported trace is always a
// single consistent parent chain. n is nil with traces off.
func (c *pchecker) fail(kind FailKind, name string, n *statespace.TraceNode[ts.State]) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.failure != nil {
		return
	}
	fi := &FailureInfo{Kind: kind, Name: name}
	if n != nil {
		fi.Trace = tracePath(n)
	}
	c.failure = fi
}

// expand fires all transitions of one frontier entry, emitting fresh
// successors into the next level. It is called concurrently by the level
// workers; w is the ExpandLevel worker index selecting this worker's
// keyer scratch.
func (c *pchecker) expand(w int, it pitem, emit func(pitem)) (stop bool, err error) {
	// Panic containment happens here, per worker goroutine: a panic out of
	// model code (Transitions, Fire, an invariant, Key) cannot cross
	// ExpandLevel's goroutine boundary, so it must be converted to an abort
	// before it unwinds past this frame. The stop flag drains the level.
	defer func() {
		if p := recover(); p != nil {
			c.setAbort(panicAbort(p, it.state))
			stop, err = true, nil
		}
	}()
	pw := &c.workers[w]
	if pw.poll++; pw.poll >= cancelPollStride {
		pw.poll = 0
		if c.ctx.Err() != nil {
			c.setAbort(cancelAbort(c.ctx))
			return true, nil
		}
	}
	if c.opt.MaxStates > 0 && c.admitted.Load() > int64(c.opt.MaxStates) {
		c.capHit.Store(true)
		return true, nil
	}
	sw := pw.ow.BeginExpansion() // nil on unsampled expansions; Stopwatch is nil-safe
	defer sw.Done()
	c.labels.enumerate()
	sw.Mark()
	var trs []ts.Transition
	if c.lc.appender != nil {
		pw.trs = c.lc.appender.AppendTransitions(pw.trs[:0], it.state)
		trs = pw.trs
	} else {
		trs = c.sys.Transitions(it.state)
	}
	sw.Lap(obs.PhaseEnumerate)
	succs, blocked := 0, 0
	for _, tr := range trs {
		c.labels.fire()
		sw.Mark()
		next, ferr := tr.Fire(c.opt.Env)
		sw.Lap(obs.PhaseFire)
		if ferr != nil {
			if errors.Is(ferr, ts.ErrWildcard) {
				c.wildcard.Store(true)
				c.aborts.Add(1)
				pw.ow.Inc(obs.CAborts)
				blocked++
				continue
			}
			return true, fmt.Errorf("mc: transition %q from state %q: %w", tr.Name, it.state.Key(), ferr)
		}
		c.fired.Add(1)
		pw.ow.Inc(obs.CTransitions)
		succs++
		if !c.tryAdmit(w, next, sw) {
			continue
		}
		child := pitem{state: next, node: c.traces.Add(next, tr.Name, it.node), depth: it.depth + 1}
		c.noteDepth(child.depth)
		if c.checkState(child) {
			return true, nil
		}
		emit(child)
	}
	if succs == 0 && !c.opt.NoDeadlock && blocked == 0 {
		// With blocked > 0 all outgoing behaviour hides behind wildcards:
		// not provably a deadlock; the Unknown verdict (WildcardHit) covers
		// it, and the expansion completes normally below.
		if c.quies == nil || !c.quies.Quiescent(it.state) {
			c.fail(FailDeadlock, "deadlock", it.node)
			return true, nil
		}
	}
	// Normal completion. In traceless mode the expanded state is dead: no
	// trace node references it, ExpandLevel reads each level entry exactly
	// once (the frontier slice's copy of the pointer is never dereferenced
	// again), and the fired closures are gone — so its storage returns to
	// the pool from the worker that owned its expansion.
	if !c.opt.RecordTrace && c.lc.recycler != nil {
		c.lc.recycler.Recycle(it.state)
		pw.recycled++
		pw.ow.Inc(obs.CRecycled)
	}
	return false, nil
}

// runSafe wraps run with panic containment for the main goroutine: worker
// panics are recovered inside expand, but initial-state admission (and any
// driver code between levels) runs here, outside any worker.
func (c *pchecker) runSafe() (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			c.setAbort(panicAbort(p, c.initCur))
			res, err = c.finish(), nil
		}
	}()
	return c.run()
}

func (c *pchecker) run() (*Result, error) {
	var frontier []pitem
	stopped := false
	if _, items, err := c.resumePar(); err != nil {
		return nil, err
	} else if items != nil {
		c.resumed = true
		frontier = items
		c.peak = max(c.peak, len(frontier))
	} else {
		inits := c.sys.Initial()
		if len(inits) == 0 {
			return nil, fmt.Errorf("mc: system %q has no initial states", c.sys.Name())
		}
		for _, s := range inits {
			c.initCur = s
			if !c.tryAdmit(0, s, nil) {
				continue
			}
			it := pitem{state: s, node: c.traces.Add(s, "", nil)}
			if c.checkState(it) {
				stopped = true
				break
			}
			frontier = append(frontier, it)
		}
		c.initCur = nil
		c.peak = len(frontier)
	}

	for !stopped && len(frontier) > 0 {
		// An already-expired context aborts before the next level, however
		// small the levels are (the per-worker stride poll handles big ones).
		if c.ctx.Err() != nil {
			c.setAbort(cancelAbort(c.ctx))
			break
		}
		next, stop, err := statespace.ExpandLevel(c.opt.Workers, frontier, c.expand)
		if err != nil {
			return nil, err
		}
		// The true high-water mark is reached *during* the expansion, when
		// the whole current level is still alive and the next level has
		// been fully emitted — not the size of either level alone. A
		// partial next level (stop mid-expansion) coexisted the same way.
		if hw := len(frontier) + len(next); hw > c.peak {
			c.peak = hw
		}
		if stop {
			break
		}
		// Level boundary: level-aware backends reorganize (spill merges
		// its run files) while no worker is inserting, and the checkpointer
		// snapshots the completed level.
		if err := c.endLevelObs(len(next)); err != nil {
			return nil, err
		}
		if len(next) > 0 {
			if err := c.checkpointPar(next[0].depth, next); err != nil {
				return nil, err
			}
		}
		frontier = next
	}
	return c.finish(), nil
}

// finish assembles the Result with the same verdict logic as the
// sequential driver. ExpandLevel has returned (WaitGroup happens-before),
// so flushing the workers' staged telemetry from this goroutine is safe
// even when the run stopped mid-level.
func (c *pchecker) finish() *Result {
	c.obsFinish()
	res := &Result{
		Stats: Stats{
			VisitedStates:    c.visited.Len(),
			FiredTransitions: int(c.fired.Load()),
			WildcardAborts:   int(c.aborts.Load()),
			MaxDepth:         int(c.maxDepth.Load()),
		},
		WildcardHit: c.wildcard.Load(),
		CapHit:      c.capHit.Load(),
		Resumed:     c.resumed,
	}
	res.Space.Transitions = int(c.fired.Load())
	res.Space.PeakFrontier = c.peak
	res.Space.TraceNodes = c.traces.Nodes()
	var recycled uint64
	for i := range c.workers {
		recycled += c.workers[i].recycled
	}
	c.lc.finishPool(&res.Space, recycled)
	fillSpace(res, c.visited, unsafe.Sizeof(pitem{}), c.traces.NodeBytes())
	if c.failure != nil {
		res.Verdict = Failure
		res.Failure = c.failure
		return res
	}
	// A recorded failure outranks an abort (same rule as the sequential
	// driver); an abort outranks the wildcard/cap downgrades.
	if ab := c.abort.Load(); ab != nil {
		res.Verdict = Aborted
		res.Abort = ab
		return res
	}
	if res.WildcardHit || res.CapHit {
		res.Verdict = Unknown
		return res
	}
	for gi := range c.goals {
		if !c.goalHit[gi].Load() {
			res.Verdict = Failure
			// A goal failure is a property of the entire explored space;
			// conservatively mark every hole as involved.
			res.Failure = &FailureInfo{Kind: FailGoal, Name: c.goals[gi].Name, UsageMask: ^uint64(0)}
			return res
		}
	}
	res.Verdict = Success
	return res
}
