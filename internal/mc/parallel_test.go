package mc_test

import (
	"testing"

	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/ts"
	"verc3/internal/visited"
	"verc3/internal/zoo"
)

// checkBoth runs the same system/options through the sequential and the
// parallel driver and returns both results. buildSys is called once per
// driver so the two runs share no mutable state.
func checkBoth(t *testing.T, buildSys func() ts.System, opt mc.Options, workers int) (seq, par *mc.Result) {
	t.Helper()
	seqOpt := opt
	seqOpt.Workers = 1
	seq, err := mc.Check(buildSys(), seqOpt)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	parOpt := opt
	parOpt.Workers = workers
	par, err = mc.Check(buildSys(), parOpt)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	return seq, par
}

// TestParallelMatchesSequentialOnZoo is the headline equivalence check:
// for every registered system, the parallel driver must report the same
// verdict and the same exploration statistics as the sequential one —
// complete explorations visit identical state sets under both drivers
// because they share the canonical-key fingerprint scheme. Sketch systems
// are explored under an all-wildcard environment (every hole aborts its
// branch), which still explores a deterministic sub-space.
func TestParallelMatchesSequentialOnZoo(t *testing.T) {
	for _, name := range zoo.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			build := func() ts.System {
				sys, err := zoo.Get(name, zoo.Params{Caches: 2})
				if err != nil {
					t.Fatal(err)
				}
				return sys
			}
			opt := mc.Options{
				Symmetry: true,
				Env:      ts.NewEnv(wildcardChooser{}), // complete models never call Choose
			}
			seq, par := checkBoth(t, build, opt, 8)
			if seq.Verdict != par.Verdict {
				t.Fatalf("verdict: sequential %v vs parallel %v", seq.Verdict, par.Verdict)
			}
			if seq.Stats.VisitedStates != par.Stats.VisitedStates {
				t.Errorf("states: sequential %d vs parallel %d", seq.Stats.VisitedStates, par.Stats.VisitedStates)
			}
			if seq.Stats.FiredTransitions != par.Stats.FiredTransitions {
				t.Errorf("transitions: sequential %d vs parallel %d", seq.Stats.FiredTransitions, par.Stats.FiredTransitions)
			}
			if seq.Stats.MaxDepth != par.Stats.MaxDepth {
				t.Errorf("max depth: sequential %d vs parallel %d", seq.Stats.MaxDepth, par.Stats.MaxDepth)
			}
			if seq.Stats.WildcardAborts != par.Stats.WildcardAborts {
				t.Errorf("aborts: sequential %d vs parallel %d", seq.Stats.WildcardAborts, par.Stats.WildcardAborts)
			}
			if seq.WildcardHit != par.WildcardHit {
				t.Errorf("wildcardHit: sequential %v vs parallel %v", seq.WildcardHit, par.WildcardHit)
			}
		})
	}
}

// TestParallelMatchesSequentialMSI3 repeats the equivalence check on the
// default three-cache MSI configuration (the biggest complete state space
// in the zoo), with and without symmetry reduction.
func TestParallelMatchesSequentialMSI3(t *testing.T) {
	if testing.Short() {
		t.Skip("larger state space; run without -short")
	}
	for _, symmetry := range []bool{true, false} {
		build := func() ts.System {
			sys, err := zoo.Get("msi-complete", zoo.Params{})
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}
		seq, par := checkBoth(t, build, mc.Options{Symmetry: symmetry}, 8)
		if seq.Verdict != par.Verdict || seq.Stats.VisitedStates != par.Stats.VisitedStates {
			t.Errorf("symmetry=%v: sequential %v/%d vs parallel %v/%d", symmetry,
				seq.Verdict, seq.Stats.VisitedStates, par.Verdict, par.Stats.VisitedStates)
		}
	}
}

// replayTrace replays a counterexample trace against the system's own
// transition relation: every step must name an enabled transition whose
// firing produces the recorded successor. This is the validity contract
// parallel traces must keep even though they are assembled from
// concurrently discovered parent links.
func replayTrace(t *testing.T, sys ts.System, f *mc.FailureInfo) ts.State {
	t.Helper()
	if len(f.Trace) == 0 {
		t.Fatal("empty trace")
	}
	initial := false
	for _, s := range sys.Initial() {
		if s.Key() == f.Trace[0].State.Key() {
			initial = true
			break
		}
	}
	if !initial {
		t.Fatalf("trace does not start in an initial state (got %q)", f.Trace[0].State.Key())
	}
	cur := f.Trace[0].State
	for i, step := range f.Trace[1:] {
		matched := false
		for _, tr := range sys.Transitions(cur) {
			if tr.Name != step.Rule {
				continue
			}
			next, err := tr.Fire(nil)
			if err != nil {
				t.Fatalf("step %d: firing %q: %v", i+1, step.Rule, err)
			}
			if next.Key() == step.State.Key() {
				matched = true
				cur = next
				break
			}
		}
		if !matched {
			t.Fatalf("step %d: no enabled transition %q reproduces state %q from %q",
				i+1, step.Rule, step.State.Key(), cur.Key())
		}
	}
	return cur
}

// TestParallelTraceValidity checks parallel counterexamples replay through
// the system for both invariant violations and deadlocks.
func TestParallelTraceValidity(t *testing.T) {
	t.Run("invariant", func(t *testing.T) {
		// A wide two-layer graph with one bad state buried in the second
		// layer, so many workers race while the violation is found.
		g := &toy.Graph{SysName: "wide", Init: []int{0}}
		g.Nodes = append(g.Nodes, toy.Node{})
		for i := 1; i <= 40; i++ {
			g.Nodes[0].Plain = append(g.Nodes[0].Plain, i)
			g.Nodes = append(g.Nodes, toy.Node{Plain: []int{41}})
		}
		g.Nodes = append(g.Nodes, toy.Node{Plain: []int{42}}, toy.Node{Bad: true})
		res, err := mc.Check(g, mc.Options{RecordTrace: true, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailInvariant {
			t.Fatalf("got %v / %+v, want invariant failure", res.Verdict, res.Failure)
		}
		last := replayTrace(t, g, res.Failure)
		for _, inv := range g.Invariants() {
			if inv.Name == res.Failure.Name && inv.Holds(last) {
				t.Errorf("final trace state does not violate %q", res.Failure.Name)
			}
		}
	})
	t.Run("deadlock", func(t *testing.T) {
		sys := &sinkSystem{}
		res, err := mc.Check(sys, mc.Options{RecordTrace: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailDeadlock {
			t.Fatalf("got %v / %+v, want deadlock", res.Verdict, res.Failure)
		}
		last := replayTrace(t, sys, res.Failure)
		if len(sys.Transitions(last)) != 0 {
			t.Error("deadlock trace does not end in a sink state")
		}
	})
}

// TestParallelGoalVerdicts checks reachability-goal handling in the
// parallel driver: reached goals pass, unreached goals fail with the
// conservative all-holes usage mask.
func TestParallelGoalVerdicts(t *testing.T) {
	reached := line(3, false)
	reached.Nodes[2].Goal = true
	res, err := mc.Check(reached, mc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("reached goal: verdict = %v", res.Verdict)
	}
	unreached := line(3, false)
	unreached.Nodes = append(unreached.Nodes, toy.Node{Goal: true}) // unreachable
	res, err = mc.Check(unreached, mc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailGoal {
		t.Fatalf("unreached goal: got %v / %+v", res.Verdict, res.Failure)
	}
	if res.Failure.UsageMask != ^uint64(0) {
		t.Error("goal failures must conservatively involve every hole")
	}
}

// TestParallelBitstateExactCounts is the driver-level regression test for
// the bitstate duplicate-admission race: a wide diamond graph funnels 40
// concurrently expanded states into one shared successor, so every level
// worker races to claim the same fingerprint. Under the old
// any-of-K-bits-was-clear rule two workers could both win, double-expand
// the shared state and inflate States and Transitions; the single-CAS
// ownership rule admits exactly one, so the parallel bitstate counts must
// equal the sequential exact baseline on every iteration (the budget is
// ample, so no omissions interfere). Run with -race.
func TestParallelBitstateExactCounts(t *testing.T) {
	build := func() *toy.Graph {
		//  0 → 1..40 → 41 → 42: forty racing claims on fp(41).
		g := &toy.Graph{SysName: "funnel", Init: []int{0}}
		g.Nodes = append(g.Nodes, toy.Node{})
		for i := 1; i <= 40; i++ {
			g.Nodes[0].Plain = append(g.Nodes[0].Plain, i)
			g.Nodes = append(g.Nodes, toy.Node{Plain: []int{41}})
		}
		g.Nodes = append(g.Nodes, toy.Node{Plain: []int{42}}, toy.Node{})
		return g
	}
	base, err := mc.Check(build(), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Verdict != mc.Success || base.Stats.VisitedStates != 43 || base.Stats.FiredTransitions != 81 {
		t.Fatalf("baseline: %v / %d states / %d transitions",
			base.Verdict, base.Stats.VisitedStates, base.Stats.FiredTransitions)
	}
	for i := 0; i < 50; i++ {
		res, err := mc.Check(build(), mc.Options{Workers: 8, Visited: visited.Bitstate, BitstateMB: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.VisitedStates != base.Stats.VisitedStates {
			t.Fatalf("iter %d: bitstate parallel States = %d, want exact %d",
				i, res.Stats.VisitedStates, base.Stats.VisitedStates)
		}
		if res.Stats.FiredTransitions != base.Stats.FiredTransitions {
			t.Fatalf("iter %d: bitstate parallel Transitions = %d, want exact %d",
				i, res.Stats.FiredTransitions, base.Stats.FiredTransitions)
		}
	}
}

// TestParallelMaxStatesCap checks the cap downgrades a parallel run to
// unknown, same as the sequential driver.
func TestParallelMaxStatesCap(t *testing.T) {
	res, err := mc.Check(line(100, false), mc.Options{MaxStates: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Unknown || !res.CapHit {
		t.Fatalf("got %v capHit=%v, want unknown via cap", res.Verdict, res.CapHit)
	}
}

// TestParallelModelErrorPropagates checks non-wildcard Fire errors surface
// as Check errors from the parallel driver too.
func TestParallelModelErrorPropagates(t *testing.T) {
	_, err := mc.Check(toy.Figure2(), mc.Options{Workers: 4, Env: ts.NewEnv(errChooser{})})
	if err == nil {
		t.Fatal("want error")
	}
}

// TestParallelDFSFallsBackToSequential pins the documented fallback: DFS
// order ignores Workers and keeps the deterministic sequential driver (its
// non-minimal-trace ablation semantics depend on traversal order).
func TestParallelDFSFallsBackToSequential(t *testing.T) {
	res, err := mc.Check(line(9, false), mc.Options{Order: mc.DFS, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success || res.Stats.VisitedStates != 9 {
		t.Fatalf("got %v / %d states", res.Verdict, res.Stats.VisitedStates)
	}
}

// TestShardBitsOption smoke-tests a non-default shard count.
func TestShardBitsOption(t *testing.T) {
	res, err := mc.Check(line(50, false), mc.Options{Workers: 4, ShardBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VisitedStates != 50 {
		t.Fatalf("states = %d, want 50", res.Stats.VisitedStates)
	}
}

// TestParallelPeakFrontierHighWater is the regression test for the
// parallel driver's frontier accounting: during a level expansion the
// whole current level is still alive while the next level accumulates, so
// the high-water mark is the largest cur+next coexistence — not, as
// previously reported, the largest single level. The graph below has
// levels of sizes 1, 2, 4: the true peak is 2+4 = 6, while the buggy
// largest-level figure was 4.
func TestParallelPeakFrontierHighWater(t *testing.T) {
	//        0
	//      /   \
	//     1     2
	//    / \   / \
	//   3   4 5   6   (terminals; quiescent, so no deadlock)
	g := &toy.Graph{SysName: "tree", Init: []int{0}, Nodes: []toy.Node{
		{Plain: []int{1, 2}},
		{Plain: []int{3, 4}},
		{Plain: []int{5, 6}},
		{}, {}, {}, {},
	}}
	res, err := mc.Check(g, mc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success || res.Stats.VisitedStates != 7 {
		t.Fatalf("got %v / %d states", res.Verdict, res.Stats.VisitedStates)
	}
	if res.Space.PeakFrontier != 6 {
		t.Errorf("parallel PeakFrontier = %d, want 6 (level 2 alive + level 3 emitted)", res.Space.PeakFrontier)
	}

	// The sequential queue releases each entry as it is expanded, so its
	// high-water mark on the same graph is lower (4): the drivers' peaks
	// measure the same thing — frontier entries alive at once — under
	// genuinely different retention behaviour.
	seq, err := mc.Check(g, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Space.PeakFrontier != 4 {
		t.Errorf("sequential PeakFrontier = %d, want 4", seq.Space.PeakFrontier)
	}
}
