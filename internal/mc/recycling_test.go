package mc_test

// Differential and safety tests for the successor lifecycle protocol
// (ts.Recycler / ts.StateCopier / ts.TransitionAppender): recycling and the
// appender enumeration path must be pure optimizations — identical
// exploration results with them on or off — and recycled storage must never
// be reachable from anything the checker hands back (trace nodes,
// counterexample rendering). The CI workflow runs everything matching
// TestZooEquivalence as a dedicated job step with -count=1.

import (
	"fmt"
	"sync"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/msi"
	"verc3/internal/mutex"
	"verc3/internal/ts"
	"verc3/internal/zoo"
)

// TestZooEquivalenceRecycling is the invariance check for the successor
// lifecycle: for every registered system, every combination of driver (1
// and 8 workers), symmetry, trace recording, recycling (Options.NoRecycle)
// and enumeration path (Options.FreshTransitions) must report the same
// verdict and exploration statistics. Recycling changes which storage a
// successor lands in and the appender path changes how transitions are
// listed, but neither may change what is explored.
func TestZooEquivalenceRecycling(t *testing.T) {
	for _, name := range zoo.Names() {
		t.Run(name, func(t *testing.T) {
			type combo struct {
				workers   int
				symmetry  bool
				trace     bool
				noRecycle bool
				freshTrs  bool
			}
			var combos []combo
			for _, w := range []int{1, 8} {
				for _, sym := range []bool{false, true} {
					for _, trace := range []bool{false, true} {
						for _, nr := range []bool{false, true} {
							combos = append(combos, combo{w, sym, trace, nr, false})
						}
						// Enumeration-path axis, folded in once per
						// (worker, symmetry, trace) setting with recycling
						// on — the E15 "fresh enumeration" arm.
						combos = append(combos, combo{w, sym, trace, false, true})
					}
				}
			}
			base := map[bool]*mc.Result{} // per symmetry setting
			for _, cb := range combos {
				sys, err := zoo.Get(name, zoo.Params{Caches: 2})
				if err != nil {
					t.Fatal(err)
				}
				res, err := mc.Check(sys, mc.Options{
					Symmetry:         cb.symmetry,
					RecordTrace:      cb.trace,
					NoRecycle:        cb.noRecycle,
					FreshTransitions: cb.freshTrs,
					Env:              ts.NewEnv(wildcardChooser{}), // complete models never call Choose
					Workers:          cb.workers,
				})
				tag := fmt.Sprintf("workers=%d symmetry=%v trace=%v noRecycle=%v fresh=%v",
					cb.workers, cb.symmetry, cb.trace, cb.noRecycle, cb.freshTrs)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if base[cb.symmetry] == nil {
					base[cb.symmetry] = res
					continue
				}
				want := base[cb.symmetry]
				if res.Verdict != want.Verdict {
					t.Errorf("%s: verdict %v, want %v", tag, res.Verdict, want.Verdict)
				}
				if res.Stats.VisitedStates != want.Stats.VisitedStates {
					t.Errorf("%s: states %d, want %d", tag, res.Stats.VisitedStates, want.Stats.VisitedStates)
				}
				if res.Stats.FiredTransitions != want.Stats.FiredTransitions {
					t.Errorf("%s: transitions %d, want %d", tag, res.Stats.FiredTransitions, want.Stats.FiredTransitions)
				}
				if res.Stats.MaxDepth != want.Stats.MaxDepth {
					t.Errorf("%s: depth %d, want %d", tag, res.Stats.MaxDepth, want.Stats.MaxDepth)
				}
				if res.Stats.WildcardAborts != want.Stats.WildcardAborts {
					t.Errorf("%s: aborts %d, want %d", tag, res.Stats.WildcardAborts, want.Stats.WildcardAborts)
				}
			}
		})
	}
}

// boundedNet wraps the MSI system with an extra invariant that fails once
// the network holds a few messages, forcing a counterexample deep enough
// that its trace spans several pooled allocations. Embedding the concrete
// *msi.System keeps the whole lifecycle method set (Recycler,
// TransitionAppender, PoolReporter) promoted, so recycling stays active
// under the wrapper.
type boundedNet struct{ *msi.System }

func (b boundedNet) Invariants() []ts.Invariant {
	invs := b.System.Invariants()
	return append(invs[:len(invs):len(invs)], ts.Invariant{
		Name:  "bounded-net",
		Holds: func(s ts.State) bool { return s.(*msi.State).Net.Len() < 3 },
	})
}

// TestRecycledStorageNeverAliasesTraces is the aliasing safety net for the
// ownership rules: a recorded counterexample must render identically before
// and after the system's pool has churned through many further
// explorations. If any trace node's state shared storage with a recycled
// successor (e.g. a network message slice reused by CopyFrom), the churn
// would overwrite it and the re-rendered trace would differ.
func TestRecycledStorageNeverAliasesTraces(t *testing.T) {
	render := func(steps []mc.TraceStep) []string {
		out := make([]string, len(steps))
		for i, st := range steps {
			out[i] = st.Rule + " :: " + st.State.Key() + " :: " + fmt.Sprint(st.State)
		}
		return out
	}

	t.Run("msi", func(t *testing.T) {
		sys := boundedNet{msi.New(msi.Config{Caches: 2})}
		res, err := mc.Check(sys, mc.Options{RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure == nil || len(res.Failure.Trace) == 0 {
			t.Fatalf("expected an invariant failure with a trace, got %v", res.Verdict)
		}
		before := render(res.Failure.Trace)
		// Churn the same system's pool hard: traceless, recycle-heavy runs
		// reuse every piece of storage the pool can reach. (The wrapped
		// system fails its bounded-net invariant each time — a Failure
		// verdict, not an error.)
		for i := 0; i < 3; i++ {
			if _, err := mc.Check(sys, mc.Options{Symmetry: i%2 == 0}); err != nil {
				t.Fatal(err)
			}
		}
		after := render(res.Failure.Trace)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("trace step %d changed after pool churn:\n before: %s\n after:  %s", i, before[i], after[i])
			}
		}
	})

	t.Run("mutex-sketch", func(t *testing.T) {
		// Resolve turn-write to the wrong action ("me"): mutual exclusion is
		// violated and the checker records a minimal counterexample.
		sys := mutex.New(true)
		env := ts.NewEnv(wrongTurnChooser{})
		res, err := mc.Check(sys, mc.Options{RecordTrace: true, Env: env})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Failure || res.Failure == nil || len(res.Failure.Trace) == 0 {
			t.Fatalf("expected a mutual-exclusion failure with a trace, got %v", res.Verdict)
		}
		before := render(res.Failure.Trace)
		for i := 0; i < 3; i++ {
			if _, err := mc.Check(sys, mc.Options{Env: env}); err != nil {
				t.Fatal(err)
			}
		}
		after := render(res.Failure.Trace)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("trace step %d changed after pool churn:\n before: %s\n after:  %s", i, before[i], after[i])
			}
		}
	})
}

// wrongTurnChooser picks Peterson's incorrect turn-write action ("me") and
// the correct choice everywhere else.
type wrongTurnChooser struct{}

func (wrongTurnChooser) Choose(hole string, actions []string) (int, error) {
	if hole == "turn-write" {
		return 1, nil
	}
	return 0, nil
}

// TestParallelRecycleStress exercises the parallel driver's per-worker
// recycling under the race detector: several concurrent explorations share
// one system instance — and therefore one successor pool — each spreading a
// frontier over multiple workers that recycle rejected duplicates and
// expanded states from every goroutine. Run with -race in CI; without the
// detector it still cross-checks the state counts.
func TestParallelRecycleStress(t *testing.T) {
	sys, err := zoo.Get("msi-complete", zoo.Params{Caches: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mc.Check(sys, mc.Options{Symmetry: true, NoRecycle: true})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 4
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res, err := mc.Check(sys, mc.Options{Symmetry: true, Workers: 8})
			if err != nil {
				errs[r] = err
				return
			}
			if res.Verdict != want.Verdict || res.Stats.VisitedStates != want.Stats.VisitedStates ||
				res.Stats.FiredTransitions != want.Stats.FiredTransitions {
				errs[r] = fmt.Errorf("run %d: got %v/%d/%d, want %v/%d/%d", r,
					res.Verdict, res.Stats.VisitedStates, res.Stats.FiredTransitions,
					want.Verdict, want.Stats.VisitedStates, want.Stats.FiredTransitions)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestLifecycleAllocRegression pins the tentpole's headline number the way
// TestAppenderAllocReduction pinned PR 5's: on msi-complete (3 caches,
// symmetry on, traceless, flat visited backend — the synthesis
// configuration) the full lifecycle path must stay at or below 10 mallocs
// per visited state. Measured at ~5 when the protocol landed; the bar
// leaves headroom for runtime noise, not for regressions. The ablation
// arms are logged so a local run shows what each half of the protocol
// buys.
func TestLifecycleAllocRegression(t *testing.T) {
	run := func(noRecycle, fresh bool) *mc.Result {
		sys, err := zoo.Get("msi-complete", zoo.Params{Caches: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(sys, mc.Options{
			Symmetry:         true,
			MemStats:         true,
			NoRecycle:        noRecycle,
			FreshTransitions: fresh,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Success {
			t.Fatalf("noRecycle=%v fresh=%v: verdict %v", noRecycle, fresh, res.Verdict)
		}
		return res
	}
	full := run(false, false)
	states := float64(full.Stats.VisitedStates)
	perState := float64(full.Space.Mallocs) / states
	for _, arm := range []struct {
		noRecycle, fresh bool
		label            string
	}{{false, true, "recycle-only"}, {true, false, "append-only"}, {true, true, "neither"}} {
		r := run(arm.noRecycle, arm.fresh)
		t.Logf("%s: %.1f mallocs/state", arm.label, float64(r.Space.Mallocs)/states)
	}
	t.Logf("full lifecycle: %.1f mallocs/state (pool %d hits / %d misses, %d recycled)",
		perState, full.Space.PoolHits, full.Space.PoolMisses, full.Space.Recycled)
	if perState > 10 {
		t.Errorf("mallocs/state = %.1f, want <= 10 (successor lifecycle regression)", perState)
	}
	if full.Space.PoolHits == 0 || full.Space.Recycled == 0 {
		t.Errorf("pool counters empty (hits=%d recycled=%d) — lifecycle not engaged?",
			full.Space.PoolHits, full.Space.Recycled)
	}
}
