package msi_test

// Tests for the binary keying capabilities of the MSI state: AppendKey's
// agreement with Key, and PermuteInto/Scratch's agreement with Permute —
// the two contracts the zero-allocation canonical fingerprinting pipeline
// (internal/symmetry) relies on.

import (
	"bytes"
	"testing"

	"verc3/internal/msi"
	"verc3/internal/network"
	"verc3/internal/symmetry"
	"verc3/internal/ts"
)

// stateFromBytes deterministically decodes an arbitrary byte string into a
// structurally valid 3-cache MSI state: every field is drawn from the next
// input byte (reduced into its range where the model requires it, left
// nearly raw where Key renders any value), and up to four in-flight
// messages are built from a mix of real protocol types and raw short
// strings. The point is coverage of the encoding space, not protocol
// plausibility.
func stateFromBytes(data []byte) *msi.State {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	types := []string{msi.MsgGetS, msi.MsgGetM, msi.MsgFwdGetS, msi.MsgFwdGetM,
		msi.MsgInv, msi.MsgInvAck, msi.MsgData, msi.MsgAck, "X", "", "Y|;,"}
	s := &msi.State{Caches: make([]msi.Cache, 3)}
	for i := range s.Caches {
		s.Caches[i] = msi.Cache{
			St:   msi.CacheState(next() % 7),
			Data: int8(next() % 3),
			Acks: int8(next()%7) - 3,
		}
	}
	s.Dir = msi.Dir{
		St:      msi.DirState(next() % 7),
		Owner:   int8(next()%5) - 1,
		Pending: int8(next()%5) - 1,
		Sharers: next(),
		Mem:     int8(next() % 3),
	}
	s.Ghost = int8(next() % 3)
	if next()%4 == 0 {
		s.Err = string([]byte{next()%26 + 'a', next()%26 + 'a'})
	}
	var msgs []network.Msg
	for n := next() % 5; n > 0; n-- {
		msgs = append(msgs, network.Msg{
			Type: types[int(next())%len(types)],
			Src:  int(next()%6) - 1,
			Dst:  int(next()%6) - 1,
			Req:  int(next()%6) - 1,
			Cnt:  int(next()%5) - 2,
			Val:  int(next() % 3),
		})
	}
	s.Net = network.New(msgs...)
	return s
}

// FuzzAppendKeyInjective fuzzes the injectivity direction the checker's
// soundness needs: two randomized states with distinct Key() strings must
// produce distinct AppendKey encodings (a shared encoding would merge two
// distinct states in the visited set). The converse — equal keys implying
// equal encodings — additionally holds whenever the states' raw fields are
// equal, which the equal-input seed below exercises; it is deliberately
// not asserted for arbitrary pairs, because the binary encoding is
// injective on raw fields even where the delimiter-based Key string can
// collide (e.g. message Type strings containing commas).
func FuzzAppendKeyInjective(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 3})
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte("some longer seed input with message bytes"), []byte{0xff, 0x00, 0x80})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		sa, sb := stateFromBytes(a), stateFromBytes(b)
		ea, eb := sa.AppendKey(nil), sb.AppendKey(nil)
		if sa.Key() != sb.Key() && bytes.Equal(ea, eb) {
			t.Errorf("distinct keys share an encoding:\n key a: %q\n key b: %q\n enc: %x", sa.Key(), sb.Key(), ea)
		}
		if bytes.Equal(a, b) && !bytes.Equal(ea, eb) {
			t.Errorf("equal inputs, distinct encodings: %x vs %x", ea, eb)
		}
	})
}

// TestAppendKeySensitivity flips each field of a baseline state in turn
// and checks the encoding moves — the direct probe for a field omitted
// from AppendKey but present in Key.
func TestAppendKeySensitivity(t *testing.T) {
	base := func() *msi.State {
		return &msi.State{
			Caches: []msi.Cache{{St: msi.CacheM, Data: 1}, {St: msi.CacheS, Data: 1}, {}},
			Dir:    msi.Dir{St: msi.DirM, Owner: 0, Pending: msi.None, Sharers: 0b010, Mem: 1},
			Net:    network.New(network.Msg{Type: msi.MsgData, Src: 0, Dst: 1, Req: -1, Cnt: 2, Val: 1}),
			Ghost:  1,
		}
	}
	ref := base().AppendKey(nil)
	mutations := map[string]func(*msi.State){
		"cache state": func(s *msi.State) { s.Caches[2].St = msi.CacheISD },
		"cache data":  func(s *msi.State) { s.Caches[0].Data = 0 },
		"cache acks":  func(s *msi.State) { s.Caches[1].Acks = 1 },
		"dir state":   func(s *msi.State) { s.Dir.St = msi.DirMS },
		"dir owner":   func(s *msi.State) { s.Dir.Owner = 2 },
		"dir pending": func(s *msi.State) { s.Dir.Pending = 1 },
		"dir sharers": func(s *msi.State) { s.Dir.Sharers = 0b011 },
		"dir mem":     func(s *msi.State) { s.Dir.Mem = 0 },
		"ghost":       func(s *msi.State) { s.Ghost = 0 },
		"err":         func(s *msi.State) { s.Err = "boom" },
		"msg type":    func(s *msi.State) { s.Net = network.New(network.Msg{Type: msi.MsgInv, Src: 0, Dst: 1, Req: -1, Cnt: 2, Val: 1}) },
		"msg cnt":     func(s *msi.State) { s.Net = network.New(network.Msg{Type: msi.MsgData, Src: 0, Dst: 1, Req: -1, Cnt: 1, Val: 1}) },
		"msg extra":   func(s *msi.State) { s.Net = s.Net.Send(network.Msg{Type: msi.MsgAck, Src: 1, Dst: 3, Req: -1}) },
	}
	for name, mutate := range mutations {
		s := base()
		mutate(s)
		if bytes.Equal(s.AppendKey(nil), ref) {
			t.Errorf("%s: mutation not visible in AppendKey", name)
		}
	}
}

// TestPermuteIntoMatchesPermute drives randomized states through every
// permutation twice — once through the allocating Permute, once through
// PermuteInto reusing one scratch state across all calls — and requires
// identical keys and encodings, with the source state untouched.
func TestPermuteIntoMatchesPermute(t *testing.T) {
	perms := symmetry.Permutations(3)
	var scratchState ts.State
	for seed := 0; seed < 64; seed++ {
		s := stateFromBytes([]byte{byte(seed), byte(seed * 7), byte(seed * 131), byte(seed * 29),
			byte(seed * 3), byte(seed * 17), byte(seed * 61), byte(seed * 211), byte(seed * 5)})
		if scratchState == nil {
			scratchState = s.Scratch()
		}
		before := s.Key()
		for _, perm := range perms {
			want := s.Permute(perm)
			s.PermuteInto(scratchState, perm)
			if got, w := scratchState.Key(), want.Key(); got != w {
				t.Fatalf("seed %d perm %v: PermuteInto key %q, Permute key %q", seed, perm, got, w)
			}
			gotEnc := scratchState.(ts.KeyAppender).AppendKey(nil)
			wantEnc := want.(ts.KeyAppender).AppendKey(nil)
			if !bytes.Equal(gotEnc, wantEnc) {
				t.Fatalf("seed %d perm %v: encodings diverge", seed, perm)
			}
		}
		if s.Key() != before {
			t.Fatalf("seed %d: PermuteInto mutated its source (key %q -> %q)", seed, before, s.Key())
		}
	}
}

// TestScratchIsPrivate pins why Scratch exists at all: Clone shares the
// network's message storage (immutable value semantics), so permuting into
// a Clone would corrupt the source; permuting into a Scratch must not.
func TestScratchIsPrivate(t *testing.T) {
	s := stateFromBytes([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 22, 33, 44, 55, 66, 77})
	if s.Net.Len() == 0 {
		t.Fatal("test state needs in-flight messages")
	}
	before := s.Key()
	dst := s.Scratch()
	s.PermuteInto(dst, []int{2, 0, 1})
	s.PermuteInto(dst, []int{1, 2, 0})
	if s.Key() != before {
		t.Fatalf("PermuteInto through Scratch corrupted the source: %q -> %q", before, s.Key())
	}
}
