package msi_test

import (
	"testing"

	"verc3/internal/mc"
	"verc3/internal/msi"
)

// TestCompleteMSIVerifies is experiment E8's foundation: the hand-written
// complete protocol satisfies every invariant and goal, with and without
// symmetry reduction, across cache counts.
func TestCompleteMSIVerifies(t *testing.T) {
	for _, caches := range []int{1, 2, 3} {
		for _, sym := range []bool{false, true} {
			sys := msi.New(msi.Config{Caches: caches, Variant: msi.Complete})
			res, err := mc.Check(sys, mc.Options{Symmetry: sym, RecordTrace: true})
			if err != nil {
				t.Fatalf("caches=%d sym=%v: %v", caches, sym, err)
			}
			if res.Verdict != mc.Success {
				msg := ""
				if res.Failure != nil {
					msg = res.Failure.Kind.String() + " " + res.Failure.Name
					for _, step := range res.Failure.Trace {
						msg += "\n  " + step.Rule + " → " + step.State.(interface{ String() string }).String()
					}
				}
				t.Fatalf("caches=%d sym=%v: verdict %v, want success: %s", caches, sym, res.Verdict, msg)
			}
			t.Logf("caches=%d sym=%v: %d states, %d transitions, depth %d",
				caches, sym, res.Stats.VisitedStates, res.Stats.FiredTransitions, res.Stats.MaxDepth)
		}
	}
}

// TestCompleteMSIVerifiesFourCaches pushes the scalarset one step further
// (4! = 24 permutations per canonicalization); Short-guarded for time.
func TestCompleteMSIVerifiesFourCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("larger state space; run without -short")
	}
	sys := msi.New(msi.Config{Caches: 4, Variant: msi.Complete})
	res, err := mc.Check(sys, mc.Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict %v (failure: %+v)", res.Verdict, res.Failure)
	}
	t.Logf("caches=4 sym: %d states, depth %d", res.Stats.VisitedStates, res.Stats.MaxDepth)
}

// TestSymmetryReducesStates checks symmetry reduction shrinks the state
// space by roughly the scalarset factorial.
func TestSymmetryReducesStates(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 3, Variant: msi.Complete})
	plain, err := mc.Check(sys, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := mc.Check(sys, mc.Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Verdict != mc.Success || sym.Verdict != mc.Success {
		t.Fatalf("verdicts: plain=%v sym=%v", plain.Verdict, sym.Verdict)
	}
	if sym.Stats.VisitedStates >= plain.Stats.VisitedStates {
		t.Errorf("symmetry did not reduce: %d vs %d", sym.Stats.VisitedStates, plain.Stats.VisitedStates)
	}
	ratio := float64(plain.Stats.VisitedStates) / float64(sym.Stats.VisitedStates)
	t.Logf("plain=%d sym=%d ratio=%.2f (3! = 6 is the ceiling)", plain.Stats.VisitedStates, sym.Stats.VisitedStates, ratio)
	if ratio < 2 {
		t.Errorf("reduction ratio %.2f suspiciously low", ratio)
	}
}
