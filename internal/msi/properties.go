package msi

import (
	"fmt"
	"strings"

	"verc3/internal/network"
	"verc3/internal/ts"
)

// Invariants implements ts.System: the safety and well-formedness properties
// of §III.
//
//   - SWMR: the Single-Writer–Multiple-Reader invariant.
//   - Data-value properties: S and M copies match the ghost "last write",
//     and memory is current whenever the directory believes no writer
//     exists.
//   - no-protocol-error: no agent received a message it has no handler for.
//   - Handshake well-formedness ("several additional properties asserting
//     liveness", the paper's reference [16]): every in-progress transaction
//     has evidence of forward progress in flight. These reject candidates
//     that park a transaction forever (e.g. completing a write without
//     unblocking the directory), which deadlock detection alone misses when
//     other caches can still make moves.
func (sys *System) Invariants() []ts.Invariant {
	return []ts.Invariant{
		{Name: "no-protocol-error", Holds: func(s ts.State) bool {
			return s.(*State).Err == ""
		}},
		{Name: "SWMR", Holds: func(s ts.State) bool {
			st := s.(*State)
			writers, readers := 0, 0
			for i := range st.Caches {
				switch st.Caches[i].St {
				case CacheM:
					writers++
				case CacheS:
					readers++
				}
			}
			return writers == 0 || (writers == 1 && readers == 0)
		}},
		{Name: "S-copy-current", Holds: func(s ts.State) bool {
			st := s.(*State)
			for i := range st.Caches {
				if st.Caches[i].St == CacheS && st.Caches[i].Data != st.Ghost {
					return false
				}
			}
			return true
		}},
		{Name: "M-copy-current", Holds: func(s ts.State) bool {
			st := s.(*State)
			for i := range st.Caches {
				if st.Caches[i].St == CacheM && st.Caches[i].Data != st.Ghost {
					return false
				}
			}
			return true
		}},
		{Name: "memory-current-when-unowned", Holds: func(s ts.State) bool {
			st := s.(*State)
			if st.Dir.St == DirI || st.Dir.St == DirS {
				return st.Dir.Mem == st.Ghost
			}
			return true
		}},
		{Name: "dir-handshake", Holds: func(s ts.State) bool {
			st := s.(*State)
			d := st.Dir
			if d.St != DirIM && d.St != DirSM && d.St != DirMM {
				return true
			}
			if d.Pending < 0 || int(d.Pending) >= len(st.Caches) {
				return false
			}
			p := int(d.Pending)
			switch st.Caches[p].St {
			case CacheIMAD, CacheIMA, CacheSMW:
				return true
			}
			return st.Net.Any(func(m network.Msg) bool {
				return m.Type == MsgAck && m.Src == p && m.Dst == sys.dirID
			})
		}},
		{Name: "dir-MS-handshake", Holds: func(s ts.State) bool {
			st := s.(*State)
			if st.Dir.St != DirMS {
				return true
			}
			if st.Dir.Pending < 0 || int(st.Dir.Pending) >= len(st.Caches) {
				return false
			}
			// Either the reader is still waiting (its transaction will push
			// the owner's writeback along) or the writeback is in flight.
			if st.Caches[st.Dir.Pending].St == CacheISD {
				return true
			}
			return st.Net.Any(func(m network.Msg) bool {
				return m.Type == MsgData && m.Dst == sys.dirID
			})
		}},
		{Name: "read-handshake", Holds: func(s ts.State) bool {
			st := s.(*State)
			for i := range st.Caches {
				if st.Caches[i].St != CacheISD {
					continue
				}
				i := i
				ok := st.Net.Any(func(m network.Msg) bool {
					return (m.Type == MsgGetS && m.Src == i) ||
						(m.Type == MsgData && m.Dst == i) ||
						(m.Type == MsgFwdGetS && m.Req == i)
				})
				if !ok {
					return false
				}
			}
			return true
		}},
		{Name: "write-handshake", Holds: func(s ts.State) bool {
			st := s.(*State)
			for i := range st.Caches {
				switch st.Caches[i].St {
				case CacheIMAD, CacheIMA, CacheSMW:
				default:
					continue
				}
				if (st.Dir.St == DirIM || st.Dir.St == DirSM || st.Dir.St == DirMM) && int(st.Dir.Pending) == i {
					continue
				}
				i := i
				ok := st.Net.Any(func(m network.Msg) bool {
					return (m.Type == MsgGetM && m.Src == i) ||
						(m.Type == MsgData && m.Dst == i) ||
						(m.Type == MsgInvAck && m.Dst == i) ||
						(m.Type == MsgInv && m.Req == i)
				})
				if !ok {
					return false
				}
			}
			return true
		}},
	}
}

// Goals implements ts.GoalReporter: the paper's "all stable states must be
// visited at least once" property, added after initial experiments produced
// protocols that were safe but degenerate (e.g. bouncing straight back to
// Invalid, rendering the cache useless). Invalid is the initial state and
// trivially visited; S and M of both controllers are the goals.
func (sys *System) Goals() []ts.ReachGoal {
	return []ts.ReachGoal{
		{Name: "some-cache-reaches-S", Holds: func(s ts.State) bool {
			st := s.(*State)
			for i := range st.Caches {
				if st.Caches[i].St == CacheS {
					return true
				}
			}
			return false
		}},
		{Name: "some-cache-reaches-M", Holds: func(s ts.State) bool {
			st := s.(*State)
			for i := range st.Caches {
				if st.Caches[i].St == CacheM {
					return true
				}
			}
			return false
		}},
		{Name: "dir-reaches-S", Holds: func(s ts.State) bool {
			return s.(*State).Dir.St == DirS
		}},
		{Name: "dir-reaches-M", Holds: func(s ts.State) bool {
			return s.(*State).Dir.St == DirM
		}},
	}
}

// LivenessGoals implements ts.LivenessReporter: a cache with a write in
// flight (the transient IM^AD / IM^A / SM^W states) eventually reaches M.
//
// Without Config.Fair this is a TRUE NEGATIVE by design: with no fairness
// assumption (Fair is false — the plain variants declare no per-message
// delivery fairness), another cache holding M can absorb local stores
// forever while the requester's GetM sits undelivered, so the checker
// reports a lasso. The zoo's differential harness pins that counterexample;
// it is the suite's known-answer liveness failure, exactly as the paper's
// handshake invariants exist because deadlock detection alone misses parked
// transactions.
//
// With Config.Fair the goals demand weakly fair executions only (see
// WeakFairness): the starvation lasso keeps a deliverable message parked on
// its channel forever, is excluded as unfair, and the same goals pass —
// the msi-fair zoo entry.
func (sys *System) LivenessGoals() []ts.LivenessGoal {
	goals := make([]ts.LivenessGoal, 0, sys.cfg.Caches)
	for i := 0; i < sys.cfg.Caches; i++ {
		i := i
		goals = append(goals, ts.LivenessGoal{
			Name: fmt.Sprintf("cache%d-write-completes", i),
			Kind: ts.LeadsTo,
			Fair: sys.cfg.Fair,
			P: func(s ts.State) bool {
				switch s.(*State).Caches[i].St {
				case CacheIMAD, CacheIMA, CacheSMW:
					return true
				}
				return false
			},
			Q: func(s ts.State) bool { return s.(*State).Caches[i].St == CacheM },
		})
	}
	return goals
}

// WeakFairness implements ts.FairnessReporter. With Config.Fair it declares
// one weak-fairness requirement per ordered point-to-point channel — cache
// to directory, directory to cache, and cache to cache: a channel cannot be
// continuously nonempty while none of its deliveries ever fires. Matching
// deliveries by name is why the Fair variant's delivery names carry the
// sender. Two granularity decisions matter:
//
// Per-channel, not per-receiver: in the starvation lasso the directory
// serves the other caches' messages infinitely often, so a per-receiver
// requirement would be discharged by those deliveries and exclude nothing.
//
// Nonempty, not has-deliverable-message: the directory stalls requests
// (GetS/GetM) while transient, so the starved writer's GetM is deliverable
// only intermittently — under weak fairness an intermittently-enabled
// requirement excludes nothing (that is strong fairness's job). Keying
// Enabled on mere channel occupancy closes the gap, and is still a
// realizable assumption in composition: a channel can only stay stalled
// forever if its receiver parks in a transient state forever, which in this
// protocol requires parking another channel's deliverable message — and
// that channel's own requirement already excludes such runs. (A cache in
// IS^D stalling Inv is unstuck by its Data delivery the same way.)
//
// The plain variants return nil; their goals are not Fair, so the liveness
// checker never consults this and their pinned counterexamples are
// untouched.
func (sys *System) WeakFairness() []ts.Fairness {
	if !sys.cfg.Fair {
		return nil
	}
	n := sys.cfg.Caches
	reqs := make([]ts.Fairness, 0, n*n+n)
	channel := func(name string, src, dst int, takenPrefix, takenFrom string) {
		reqs = append(reqs, ts.Fairness{
			Name: name,
			Enabled: func(s ts.State) bool {
				st := s.(*State)
				if st.Err != "" {
					return false // poisoned states offer no transitions at all
				}
				return st.Net.Any(func(m network.Msg) bool {
					return m.Src == src && m.Dst == dst
				})
			},
			Taken: func(rule string) bool {
				return strings.HasPrefix(rule, takenPrefix) && strings.Contains(rule, takenFrom)
			},
		})
	}
	for j := 0; j < n; j++ {
		channel(fmt.Sprintf("net-c%d-to-dir", j), j, sys.dirID,
			"dir: recv ", fmt.Sprintf(" from c%d in ", j))
	}
	for i := 0; i < n; i++ {
		channel(fmt.Sprintf("net-dir-to-c%d", i), sys.dirID, i,
			fmt.Sprintf("c%d: recv ", i), " from dir in ")
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			channel(fmt.Sprintf("net-c%d-to-c%d", j, i), j, i,
				fmt.Sprintf("c%d: recv ", i), fmt.Sprintf(" from c%d in ", j))
		}
	}
	return reqs
}
