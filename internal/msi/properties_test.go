package msi_test

import (
	"testing"

	"verc3/internal/msi"
	"verc3/internal/network"
	"verc3/internal/ts"
)

// stateCount pins the action-library arities to the state counts: 7 cache
// states and 7 directory states, matching the paper's "next state" action
// counts. A drive-by refactor that adds a state would silently change the
// candidate-space arithmetic; fail loudly instead.
func TestSevenStatesEach(t *testing.T) {
	cacheNames := map[string]bool{}
	for s := msi.CacheState(0); int(s) < 7; s++ {
		cacheNames[s.String()] = true
	}
	if len(cacheNames) != 7 {
		t.Errorf("cache states = %d distinct names, want 7", len(cacheNames))
	}
	dirNames := map[string]bool{}
	for s := msi.DirState(0); int(s) < 7; s++ {
		dirNames[s.String()] = true
	}
	if len(dirNames) != 7 {
		t.Errorf("dir states = %d distinct names, want 7", len(dirNames))
	}
}

// invariantByName fetches a named invariant from the system.
func invariantByName(t *testing.T, sys *msi.System, name string) ts.Invariant {
	t.Helper()
	for _, inv := range sys.Invariants() {
		if inv.Name == name {
			return inv
		}
	}
	t.Fatalf("invariant %q not found", name)
	return ts.Invariant{}
}

// mk builds a hand-crafted state for direct invariant probing.
func mk(n int, f func(*msi.State)) *msi.State {
	st := &msi.State{
		Caches: make([]msi.Cache, n),
		Dir:    msi.Dir{Owner: msi.None, Pending: msi.None},
	}
	if f != nil {
		f(st)
	}
	return st
}

// TestSWMRInvariantDirect probes the SWMR predicate on crafted states.
func TestSWMRInvariantDirect(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 3})
	swmr := invariantByName(t, sys, "SWMR")
	ok := func(s *msi.State) bool { return swmr.Holds(s) }

	if !ok(mk(3, nil)) {
		t.Error("all-invalid must satisfy SWMR")
	}
	if !ok(mk(3, func(s *msi.State) { s.Caches[0].St = msi.CacheS; s.Caches[1].St = msi.CacheS })) {
		t.Error("two readers must satisfy SWMR")
	}
	if !ok(mk(3, func(s *msi.State) { s.Caches[2].St = msi.CacheM })) {
		t.Error("single writer must satisfy SWMR")
	}
	if ok(mk(3, func(s *msi.State) { s.Caches[0].St = msi.CacheM; s.Caches[1].St = msi.CacheM })) {
		t.Error("two writers must violate SWMR")
	}
	if ok(mk(3, func(s *msi.State) { s.Caches[0].St = msi.CacheM; s.Caches[1].St = msi.CacheS })) {
		t.Error("writer+reader must violate SWMR")
	}
}

// TestDataInvariantsDirect probes the value-coherence predicates.
func TestDataInvariantsDirect(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2})
	sCur := invariantByName(t, sys, "S-copy-current")
	mCur := invariantByName(t, sys, "M-copy-current")
	mem := invariantByName(t, sys, "memory-current-when-unowned")

	stale := mk(2, func(s *msi.State) {
		s.Caches[0].St = msi.CacheS
		s.Caches[0].Data = 0
		s.Ghost = 1
	})
	if sCur.Holds(stale) {
		t.Error("stale S copy must violate S-copy-current")
	}
	staleM := mk(2, func(s *msi.State) {
		s.Caches[0].St = msi.CacheM
		s.Caches[0].Data = 0
		s.Ghost = 1
	})
	if mCur.Holds(staleM) {
		t.Error("stale M copy must violate M-copy-current")
	}
	staleMem := mk(2, func(s *msi.State) {
		s.Dir.St = msi.DirS
		s.Dir.Mem = 0
		s.Ghost = 1
	})
	if mem.Holds(staleMem) {
		t.Error("stale memory in dir-S must violate memory-current")
	}
	okMem := mk(2, func(s *msi.State) {
		s.Dir.St = msi.DirM // owned: memory may be stale
		s.Dir.Mem = 0
		s.Ghost = 1
	})
	if !mem.Holds(okMem) {
		t.Error("stale memory is fine while owned")
	}
}

// TestHandshakeInvariantsDirect probes the liveness-style predicates.
func TestHandshakeInvariantsDirect(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2})
	dir := invariantByName(t, sys, "dir-handshake")
	read := invariantByName(t, sys, "read-handshake")
	write := invariantByName(t, sys, "write-handshake")

	// Directory waiting on a requester that is already done, with no Ack in
	// flight: wedged.
	wedged := mk(2, func(s *msi.State) {
		s.Dir.St = msi.DirIM
		s.Dir.Pending = 0
		s.Caches[0].St = msi.CacheM
	})
	if dir.Holds(wedged) {
		t.Error("dir-handshake must reject a wedged I_M")
	}
	// Same, but the Ack is in flight: fine.
	acked := mk(2, func(s *msi.State) {
		s.Dir.St = msi.DirIM
		s.Dir.Pending = 0
		s.Caches[0].St = msi.CacheM
		s.Net = s.Net.Send(network.Msg{Type: msi.MsgAck, Src: 0, Dst: 2, Req: msi.None})
	})
	if !dir.Holds(acked) {
		t.Error("dir-handshake must accept an in-flight Ack")
	}
	// A reader with nothing in flight: wedged.
	stuckReader := mk(2, func(s *msi.State) { s.Caches[1].St = msi.CacheISD })
	if read.Holds(stuckReader) {
		t.Error("read-handshake must reject a stuck reader")
	}
	// A writer with nothing in flight and the directory idle: wedged.
	stuckWriter := mk(2, func(s *msi.State) { s.Caches[1].St = msi.CacheIMAD })
	if write.Holds(stuckWriter) {
		t.Error("write-handshake must reject a stuck writer")
	}
	// Writer covered by a pending Inv for its transaction: fine.
	covered := mk(2, func(s *msi.State) {
		s.Caches[1].St = msi.CacheIMA
		s.Caches[1].Acks = 1
		s.Net = s.Net.Send(network.Msg{Type: msi.MsgInv, Src: 2, Dst: 0, Req: 1})
	})
	if !write.Holds(covered) {
		t.Error("write-handshake must accept in-flight Inv evidence")
	}
}

// TestGoalsPredicate sanity-checks the stable-state goals.
func TestGoalsPredicate(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2})
	goals := sys.Goals()
	if len(goals) != 4 {
		t.Fatalf("goals = %d, want 4", len(goals))
	}
	withS := mk(2, func(s *msi.State) { s.Caches[0].St = msi.CacheS })
	hit := 0
	for _, g := range goals {
		if g.Holds(withS) {
			hit++
		}
	}
	if hit != 1 {
		t.Errorf("cache-S state satisfies %d goals, want exactly 1", hit)
	}
}
