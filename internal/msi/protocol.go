package msi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"verc3/internal/network"
	"verc3/internal/ts"
)

// Variant selects how much of the protocol is left as holes.
type Variant int

// Protocol variants.
const (
	// Complete is the full hand-written protocol: no holes; verifies clean.
	Complete Variant = iota
	// Small is the paper's MSI-small problem: 8 holes = 2 directory
	// transient rules (I_M+Ack, S_M+Ack; 3 holes each) + 1 cache transient
	// rule (IS_D+Data; 2 holes).
	Small
	// Large is the paper's MSI-large problem: 12 holes = the Small rules
	// plus 2 more cache rules (SM_W+Inv and IM_A+InvAck-last; 2 holes each).
	Large
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case Complete:
		return "MSI-complete"
	case Small:
		return "MSI-small"
	case Large:
		return "MSI-large"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterizes the MSI system.
type Config struct {
	// Caches is the number of symmetric cache controllers (1..8; the paper
	// does not state its count — see EXPERIMENTS.md).
	Caches int
	// Variant selects Complete / Small / Large.
	Variant Variant
	// Fair declares per-channel network-delivery weak fairness: a deliverable
	// message on an ordered (sender, receiver) channel is eventually
	// delivered. Delivery transition names then carry the sender (so fairness
	// requirements can recognize a channel's deliveries by name), the
	// liveness goals become Fair, and the starvation lasso the plain variant
	// exhibits is excluded as unfair — the same goals pass.
	Fair bool
}

// System implements ts.System for the MSI protocol, plus the successor
// lifecycle extensions (ts.Recycler / ts.TransitionAppender): Fire draws
// its clones from a recycled-state pool and transition names come from
// tables precomputed at construction. The protocol tables are immutable
// after New and the pool is a sync.Pool, so a System remains safe for
// concurrent synthesis workers.
type System struct {
	cfg   Config
	dirID int
	holes map[string]bool // rule IDs synthesized in this variant
	names nameTables

	// pool holds recycled *State storage (see Recycle); hits/misses count
	// successor clones served from it vs built fresh, for ts.PoolReporter.
	pool   sync.Pool
	hits   atomic.Uint64
	misses atomic.Uint64
}

// msgTypes indexes the protocol's message types for the name tables.
var msgTypes = [...]string{MsgGetS, MsgGetM, MsgFwdGetS, MsgFwdGetM, MsgInv, MsgInvAck, MsgData, MsgAck}

// msgIndex maps a message type to its msgTypes slot (-1 if unknown; the
// protocol only ever sends the eight types above, so -1 is a fall-back for
// robustness, not a real path).
func msgIndex(t string) int {
	for i, mt := range msgTypes {
		if mt == t {
			return i
		}
	}
	return -1
}

// nameTables holds every transition name the protocol can offer,
// precomputed at construction: four issue/store names per cache, one
// delivery name per (cache, message type, cache state), and one per
// (message type, directory state). With them, steady-state enumeration
// formats no strings at all.
type nameTables struct {
	issueRead    []string
	issueWrite   []string
	issueUpgrade []string
	store        []string
	cacheRecv    [][len(msgTypes)][numCacheStates]string
	dirRecv      [len(msgTypes)][numDirStates]string
	// The Fair variant's delivery names additionally carry the sender
	// ("c1: recv Data from dir in IS_D"), so per-channel fairness
	// requirements can recognize a channel's deliveries by rule name. Nil
	// unless Config.Fair — the plain variants keep their exact historical
	// names, which the differential suite pins (including the msi-complete
	// starvation lasso).
	cacheRecvFrom [][][len(msgTypes)][numCacheStates]string // [dst][src]; src == caches is the directory
	dirRecvFrom   [][len(msgTypes)][numDirStates]string     // [src]
}

// buildNames precomputes the transition-name tables for a cache count.
func buildNames(caches int, fair bool) nameTables {
	nt := nameTables{
		issueRead:    make([]string, caches),
		issueWrite:   make([]string, caches),
		issueUpgrade: make([]string, caches),
		store:        make([]string, caches),
		cacheRecv:    make([][len(msgTypes)][numCacheStates]string, caches),
	}
	for i := 0; i < caches; i++ {
		nt.issueRead[i] = fmt.Sprintf("c%d: issue read", i)
		nt.issueWrite[i] = fmt.Sprintf("c%d: issue write", i)
		nt.issueUpgrade[i] = fmt.Sprintf("c%d: issue upgrade", i)
		nt.store[i] = fmt.Sprintf("c%d: store", i)
		for t, mt := range msgTypes {
			for cs := CacheState(0); cs < numCacheStates; cs++ {
				nt.cacheRecv[i][t][cs] = fmt.Sprintf("c%d: recv %s in %s", i, mt, cs)
			}
		}
	}
	for t, mt := range msgTypes {
		for ds := DirState(0); ds < numDirStates; ds++ {
			nt.dirRecv[t][ds] = fmt.Sprintf("dir: recv %s in %s", mt, ds)
		}
	}
	if !fair {
		return nt
	}
	from := make([]string, caches+1)
	for j := 0; j < caches; j++ {
		from[j] = fmt.Sprintf("c%d", j)
	}
	from[caches] = "dir"
	nt.cacheRecvFrom = make([][][len(msgTypes)][numCacheStates]string, caches)
	for i := 0; i < caches; i++ {
		nt.cacheRecvFrom[i] = make([][len(msgTypes)][numCacheStates]string, caches+1)
		for j := 0; j <= caches; j++ {
			for t, mt := range msgTypes {
				for cs := CacheState(0); cs < numCacheStates; cs++ {
					nt.cacheRecvFrom[i][j][t][cs] = fmt.Sprintf("c%d: recv %s from %s in %s", i, mt, from[j], cs)
				}
			}
		}
	}
	nt.dirRecvFrom = make([][len(msgTypes)][numDirStates]string, caches)
	for j := 0; j < caches; j++ {
		for t, mt := range msgTypes {
			for ds := DirState(0); ds < numDirStates; ds++ {
				nt.dirRecvFrom[j][t][ds] = fmt.Sprintf("dir: recv %s from c%d in %s", mt, j, ds)
			}
		}
	}
	return nt
}

// Rule identifiers for holed transition rules.
const (
	ruleCacheISDData = "IS_D/Data"
	ruleCacheSMWInv  = "SM_W/Inv"
	ruleCacheIMAAck1 = "IM_A/InvAck-last"
	ruleDirIMAck     = "I_M/Ack"
	ruleDirSMAck     = "S_M/Ack"
)

// New builds an MSI system. Caches defaults to 3.
func New(cfg Config) *System {
	if cfg.Caches == 0 {
		cfg.Caches = 3
	}
	if cfg.Caches < 1 || cfg.Caches > 8 {
		panic("msi: Caches must be in 1..8 (sharer bitset)")
	}
	holes := map[string]bool{}
	switch cfg.Variant {
	case Small:
		holes[ruleCacheISDData] = true
		holes[ruleDirIMAck] = true
		holes[ruleDirSMAck] = true
	case Large:
		holes[ruleCacheISDData] = true
		holes[ruleDirIMAck] = true
		holes[ruleDirSMAck] = true
		holes[ruleCacheSMWInv] = true
		holes[ruleCacheIMAAck1] = true
	}
	return &System{cfg: cfg, dirID: cfg.Caches, holes: holes, names: buildNames(cfg.Caches, cfg.Fair)}
}

// succ returns a successor state equal to st, drawing storage from the
// recycled-state pool when it has any and falling back to a fresh deep
// copy otherwise. Either way the result owns all of its storage (Scratch
// semantics, not Clone's shared network), which is what entitles the
// firing rule to mutate its network in place.
func (sys *System) succ(st *State) *State {
	if v := sys.pool.Get(); v != nil {
		ns := v.(*State)
		ns.CopyFrom(st)
		sys.hits.Add(1)
		return ns
	}
	sys.misses.Add(1)
	return st.Scratch().(*State)
}

// Recycle implements ts.Recycler: s's storage seeds a future Fire clone.
// The caller must own s outright (see the ts package docs for the
// ownership rules); states of foreign types are ignored.
func (sys *System) Recycle(s ts.State) {
	if st, ok := s.(*State); ok {
		sys.pool.Put(st)
	}
}

// PoolStats implements ts.PoolReporter.
func (sys *System) PoolStats() (hits, misses uint64) {
	return sys.hits.Load(), sys.misses.Load()
}

// Name implements ts.System.
func (sys *System) Name() string {
	if sys.cfg.Fair {
		return sys.cfg.Variant.String() + "-fair"
	}
	return sys.cfg.Variant.String()
}

// DirID returns the directory's agent index (== number of caches).
func (sys *System) DirID() int { return sys.dirID }

// DecodeKey implements ts.KeyDecoder: the inverse of State.AppendKey,
// consuming one state from the front of data and returning the remainder.
// It validates the cache count against the system's configuration, so a
// checkpoint taken from a differently-sized instance is rejected instead
// of silently misparsed.
func (sys *System) DecodeKey(data []byte) (ts.State, []byte, error) {
	s, rest, err := decodeState(data, sys.cfg.Caches)
	if err != nil {
		return nil, nil, err
	}
	return s, rest, nil
}

// Initial implements ts.System: all caches Invalid, directory Invalid,
// memory and ghost 0, empty network.
func (sys *System) Initial() []ts.State {
	s := &State{
		Caches: make([]Cache, sys.cfg.Caches),
		Dir:    Dir{St: DirI, Owner: None, Pending: None},
	}
	return []ts.State{s}
}

// Designer action libraries. Their cardinalities (3, 7 / 5, 7, 3) are the
// paper's: they factor Table I's candidate counts exactly.
var (
	cacheRespActions = []string{"none", "ack-dir", "invack-req"}
	cacheNextActions = cacheStateNames[:]
	dirRespActions   = []string{"none", "data-pend", "fwdgets-owner", "fwdgetm-owner", "inv-sharers"}
	dirNextActions   = dirStateNames[:]
	dirTrackActions  = []string{"none", "owner=pend", "sharer+=pend"}
)

// Indices of the correct actions used by the Complete variant's fixed rules.
const (
	cRespNone      = 0
	cRespAckDir    = 1
	cRespInvAckReq = 2
	dRespNone      = 0
	dTrackNone     = 0
	dTrackOwner    = 1
)

// Transitions implements ts.System.
func (sys *System) Transitions(s ts.State) []ts.Transition {
	return sys.AppendTransitions(nil, s)
}

// AppendTransitions implements ts.TransitionAppender: Transitions appended
// into a caller-owned buffer, with every name a table lookup and every
// Fire clone drawn from the recycled-state pool.
func (sys *System) AppendTransitions(dst []ts.Transition, s ts.State) []ts.Transition {
	st := s.(*State)
	if st.Err != "" {
		return dst // poisoned; the no-protocol-error invariant has fired
	}
	for i := range st.Caches {
		i := i
		switch st.Caches[i].St {
		case CacheI:
			dst = append(dst,
				ts.Transition{Name: sys.names.issueRead[i], Fire: func(*ts.Env) (ts.State, error) {
					ns := sys.succ(st)
					ns.Net.SendInPlace(network.Msg{Type: MsgGetS, Src: i, Dst: sys.dirID, Req: None})
					ns.Caches[i].St = CacheISD
					return ns, nil
				}},
				ts.Transition{Name: sys.names.issueWrite[i], Fire: func(*ts.Env) (ts.State, error) {
					ns := sys.succ(st)
					ns.Net.SendInPlace(network.Msg{Type: MsgGetM, Src: i, Dst: sys.dirID, Req: None})
					ns.Caches[i].St = CacheIMAD
					return ns, nil
				}},
			)
		case CacheS:
			dst = append(dst, ts.Transition{Name: sys.names.issueUpgrade[i], Fire: func(*ts.Env) (ts.State, error) {
				ns := sys.succ(st)
				ns.Net.SendInPlace(network.Msg{Type: MsgGetM, Src: i, Dst: sys.dirID, Req: None})
				ns.Caches[i].St = CacheSMW
				return ns, nil
			}})
		case CacheM:
			dst = append(dst, ts.Transition{Name: sys.names.store[i], Fire: func(*ts.Env) (ts.State, error) {
				ns := sys.succ(st)
				sys.store(ns, i)
				return ns, nil
			}})
		}
	}
	for mi, m := range st.Net.Messages() {
		mi, m := mi, m
		if m.Dst == sys.dirID {
			if tr, ok := sys.dirDelivery(st, mi, m); ok {
				dst = append(dst, tr)
			}
		} else if m.Dst >= 0 && m.Dst < len(st.Caches) {
			if tr, ok := sys.cacheDelivery(st, mi, m); ok {
				dst = append(dst, tr)
			}
		}
		// Messages to invalid destinations (a synthesized response picked a
		// target that does not exist) just sit in the network; the
		// handshake invariants flag the stuck transaction.
	}
	return dst
}

// store performs cache i's write: the line takes the next value in the tiny
// data domain and the ghost "last write" variable follows.
func (sys *System) store(ns *State, i int) {
	v := (ns.Ghost + 1) % 2
	ns.Caches[i].Data = v
	ns.Ghost = v
}

// --- Shared action application (used by both fixed rules and holes) ---

// applyCacheResp performs a cache response action for cache i reacting to m.
// ns must own its network storage (every Fire successor does — see succ).
func (sys *System) applyCacheResp(ns *State, i int, m network.Msg, act int) {
	switch act {
	case cRespNone:
	case cRespAckDir:
		ns.Net.SendInPlace(network.Msg{Type: MsgAck, Src: i, Dst: sys.dirID, Req: None})
	case cRespInvAckReq:
		tgt := m.Req
		if tgt < 0 {
			tgt = m.Src // message carries no requester; fall back to sender
		}
		ns.Net.SendInPlace(network.Msg{Type: MsgInvAck, Src: i, Dst: tgt, Req: None})
	default:
		panic("msi: bad cache response action")
	}
}

// applyCacheNext moves cache i to the chosen next state, with the protocol's
// fixed semantics attached: entering M from a write transient performs the
// store (the transaction's purpose); entering I drops the line; entering any
// stable state clears the ack counter.
func (sys *System) applyCacheNext(ns *State, i int, act int) {
	old := ns.Caches[i].St
	next := CacheState(act)
	if next == CacheM && (old == CacheIMAD || old == CacheIMA || old == CacheSMW) {
		sys.store(ns, i)
	}
	if next == CacheI {
		ns.Caches[i].Data = 0
	}
	if next == CacheI || next == CacheS || next == CacheM {
		ns.Caches[i].Acks = 0
	}
	ns.Caches[i].St = next
}

// applyDirResp performs a directory response action reacting to m.
func (sys *System) applyDirResp(ns *State, m network.Msg, act int) {
	switch dirRespActions[act] {
	case "none":
	case "data-pend":
		p := ns.Dir.Pending
		if p < 0 {
			ns.Err = "dir-resp:data-pend-without-pending"
			return
		}
		ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: sys.dirID, Dst: int(p), Req: None, Val: int(ns.Dir.Mem)})
	case "fwdgets-owner":
		if ns.Dir.Owner < 0 || ns.Dir.Pending < 0 {
			ns.Err = "dir-resp:fwdgets-unset"
			return
		}
		ns.Net.SendInPlace(network.Msg{Type: MsgFwdGetS, Src: sys.dirID, Dst: int(ns.Dir.Owner), Req: int(ns.Dir.Pending)})
	case "fwdgetm-owner":
		if ns.Dir.Owner < 0 || ns.Dir.Pending < 0 {
			ns.Err = "dir-resp:fwdgetm-unset"
			return
		}
		ns.Net.SendInPlace(network.Msg{Type: MsgFwdGetM, Src: sys.dirID, Dst: int(ns.Dir.Owner), Req: int(ns.Dir.Pending)})
	case "inv-sharers":
		if ns.Dir.Sharers == 0 {
			return // vacuous: behaviourally identical to "none"
		}
		if ns.Dir.Pending < 0 {
			ns.Err = "dir-resp:inv-without-pending"
			return
		}
		for j := range ns.Caches {
			if ns.Dir.Sharers&(1<<uint(j)) != 0 {
				ns.Net.SendInPlace(network.Msg{Type: MsgInv, Src: sys.dirID, Dst: j, Req: int(ns.Dir.Pending)})
			}
		}
	default:
		panic("msi: bad directory response action")
	}
}

// applyDirTrack performs a directory tracking action.
func (sys *System) applyDirTrack(ns *State, act int) {
	switch dirTrackActions[act] {
	case "none":
	case "owner=pend":
		ns.Dir.Owner = ns.Dir.Pending
		ns.Dir.Pending = None
	case "sharer+=pend":
		if ns.Dir.Pending >= 0 {
			ns.Dir.Sharers |= 1 << uint(ns.Dir.Pending)
		}
		ns.Dir.Pending = None
	default:
		panic("msi: bad directory track action")
	}
}

// applyDirNext moves the directory to the chosen next state; entering a
// stable state clears the pending requester.
func (sys *System) applyDirNext(ns *State, act int) {
	next := DirState(act)
	if next == DirI || next == DirS || next == DirM {
		ns.Dir.Pending = None
	}
	ns.Dir.St = next
}

// --- Cache controller ---

// cacheDelivery builds the delivery transition of message m (at network
// index mi) to cache m.Dst, or ok=false when the cache stalls the message.
func (sys *System) cacheDelivery(st *State, mi int, m network.Msg) (ts.Transition, bool) {
	i := m.Dst
	c := st.Caches[i]
	var name string
	if t := msgIndex(m.Type); t >= 0 {
		if sys.cfg.Fair && m.Src >= 0 && m.Src <= sys.dirID {
			name = sys.names.cacheRecvFrom[i][m.Src][t][c.St]
		} else {
			name = sys.names.cacheRecv[i][t][c.St]
		}
	} else {
		name = fmt.Sprintf("c%d: recv %s in %s", i, m.Type, c.St)
	}

	fire := func(apply func(ns *State, env *ts.Env) error) ts.Transition {
		return ts.Transition{Name: name, Fire: func(env *ts.Env) (ts.State, error) {
			ns := sys.succ(st)
			ns.Net.RemoveInPlace(mi)
			if m.Type == MsgData {
				ns.Caches[i].Data = int8(m.Val) // data delivery plumbing
			}
			if err := apply(ns, env); err != nil {
				// The branch aborted (wildcard hole): ns never escaped, so
				// its storage can seed the next clone immediately.
				sys.Recycle(ns)
				return nil, err
			}
			return ns, nil
		}}
	}
	holeRule := func(rule string, correctResp, correctNext int) ts.Transition {
		return fire(func(ns *State, env *ts.Env) error {
			resp, next := correctResp, correctNext
			if sys.holes[rule] {
				var err error
				if resp, err = env.Choose("c/"+rule+"/resp", cacheRespActions); err != nil {
					return err
				}
				if next, err = env.Choose("c/"+rule+"/next", cacheNextActions); err != nil {
					return err
				}
			}
			sys.applyCacheResp(ns, i, m, resp)
			sys.applyCacheNext(ns, i, next)
			return nil
		})
	}

	switch {
	case c.St == CacheISD && m.Type == MsgData:
		return holeRule(ruleCacheISDData, cRespNone, int(CacheS)), true
	case c.St == CacheISD && m.Type == MsgInv:
		return ts.Transition{}, false // stall until Data arrives
	case c.St == CacheIMAD && m.Type == MsgData:
		return fire(func(ns *State, _ *ts.Env) error {
			if int(c.Acks) == m.Cnt {
				// All Inv-Acks (if any) already arrived: complete the write.
				sys.applyCacheResp(ns, i, m, cRespAckDir)
				sys.applyCacheNext(ns, i, int(CacheM))
			} else {
				ns.Caches[i].Acks = int8(m.Cnt) - c.Acks // still needed
				ns.Caches[i].St = CacheIMA
			}
			return nil
		}), true
	case c.St == CacheIMAD && m.Type == MsgInvAck:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Caches[i].Acks++
			return nil
		}), true
	case c.St == CacheIMA && m.Type == MsgInvAck && c.Acks == 1:
		return holeRule(ruleCacheIMAAck1, cRespAckDir, int(CacheM)), true
	case c.St == CacheIMA && m.Type == MsgInvAck:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Caches[i].Acks--
			return nil
		}), true
	case c.St == CacheSMW && m.Type == MsgData:
		return fire(func(ns *State, _ *ts.Env) error {
			if int(c.Acks) == m.Cnt {
				sys.applyCacheResp(ns, i, m, cRespAckDir)
				sys.applyCacheNext(ns, i, int(CacheM))
			} else {
				ns.Caches[i].Acks = int8(m.Cnt) - c.Acks
				ns.Caches[i].St = CacheIMA
			}
			return nil
		}), true
	case c.St == CacheSMW && m.Type == MsgInvAck:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Caches[i].Acks++
			return nil
		}), true
	case c.St == CacheSMW && m.Type == MsgInv:
		// The race the paper highlights: an upgrading sharer loses to a
		// competing writer; it must surrender its S copy, Inv-Ack the
		// winner, and fall back to the I→M path for its own pending GetM.
		return holeRule(ruleCacheSMWInv, cRespInvAckReq, int(CacheIMAD)), true
	case c.St == CacheS && m.Type == MsgInv:
		return fire(func(ns *State, _ *ts.Env) error {
			sys.applyCacheResp(ns, i, m, cRespInvAckReq)
			sys.applyCacheNext(ns, i, int(CacheI))
			return nil
		}), true
	case c.St == CacheM && m.Type == MsgFwdGetS:
		return fire(func(ns *State, _ *ts.Env) error {
			// Data to the requester and writeback to the directory.
			ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: i, Dst: m.Req, Req: None, Val: int(c.Data)})
			ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: i, Dst: sys.dirID, Req: None, Val: int(c.Data)})
			sys.applyCacheNext(ns, i, int(CacheS))
			return nil
		}), true
	case c.St == CacheM && m.Type == MsgFwdGetM:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: i, Dst: m.Req, Req: None, Val: int(c.Data)})
			sys.applyCacheNext(ns, i, int(CacheI))
			return nil
		}), true
	default:
		// No handler: a protocol error (Murphi's "unhandled message").
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Err = fmt.Sprintf("cache-%s+%s", c.St, m.Type)
			return nil
		}), true
	}
}

// --- Directory controller ---

// dirDelivery builds the delivery transition of message m to the directory,
// or ok=false when the directory stalls the message.
func (sys *System) dirDelivery(st *State, mi int, m network.Msg) (ts.Transition, bool) {
	d := st.Dir
	var name string
	if t := msgIndex(m.Type); t >= 0 {
		if sys.cfg.Fair && m.Src >= 0 && m.Src < sys.dirID {
			name = sys.names.dirRecvFrom[m.Src][t][d.St]
		} else {
			name = sys.names.dirRecv[t][d.St]
		}
	} else {
		name = fmt.Sprintf("dir: recv %s in %s", m.Type, d.St)
	}

	fire := func(apply func(ns *State, env *ts.Env) error) ts.Transition {
		return ts.Transition{Name: name, Fire: func(env *ts.Env) (ts.State, error) {
			ns := sys.succ(st)
			ns.Net.RemoveInPlace(mi)
			if m.Type == MsgData {
				ns.Dir.Mem = int8(m.Val) // writeback plumbing
			}
			if err := apply(ns, env); err != nil {
				// Aborted branch (wildcard hole): ns never escaped.
				sys.Recycle(ns)
				return nil, err
			}
			return ns, nil
		}}
	}
	holeRule := func(rule string, correctResp, correctNext, correctTrack int) ts.Transition {
		return fire(func(ns *State, env *ts.Env) error {
			resp, next, track := correctResp, correctNext, correctTrack
			if sys.holes[rule] {
				var err error
				if resp, err = env.Choose("d/"+rule+"/resp", dirRespActions); err != nil {
					return err
				}
				if next, err = env.Choose("d/"+rule+"/next", dirNextActions); err != nil {
					return err
				}
				if track, err = env.Choose("d/"+rule+"/track", dirTrackActions); err != nil {
					return err
				}
			}
			sys.applyDirResp(ns, m, resp)
			sys.applyDirTrack(ns, track)
			sys.applyDirNext(ns, next)
			return nil
		})
	}

	stable := d.St == DirI || d.St == DirS || d.St == DirM
	switch {
	case !stable && (m.Type == MsgGetS || m.Type == MsgGetM):
		return ts.Transition{}, false // serialize: stall requests in transients

	case d.St == DirI && m.Type == MsgGetS:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: sys.dirID, Dst: m.Src, Req: None, Val: int(d.Mem)})
			ns.Dir.Sharers = 1 << uint(m.Src)
			ns.Dir.St = DirS
			return nil
		}), true
	case d.St == DirI && m.Type == MsgGetM:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: sys.dirID, Dst: m.Src, Req: None, Val: int(d.Mem)})
			ns.Dir.Pending = int8(m.Src)
			ns.Dir.St = DirIM
			return nil
		}), true
	case d.St == DirS && m.Type == MsgGetS:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: sys.dirID, Dst: m.Src, Req: None, Val: int(d.Mem)})
			ns.Dir.Sharers |= 1 << uint(m.Src)
			return nil
		}), true
	case d.St == DirS && m.Type == MsgGetM:
		return fire(func(ns *State, _ *ts.Env) error {
			cnt := 0
			for j := range ns.Caches {
				if ns.Dir.Sharers&(1<<uint(j)) != 0 && j != m.Src {
					ns.Net.SendInPlace(network.Msg{Type: MsgInv, Src: sys.dirID, Dst: j, Req: m.Src})
					cnt++
				}
			}
			ns.Net.SendInPlace(network.Msg{Type: MsgData, Src: sys.dirID, Dst: m.Src, Req: None, Cnt: cnt, Val: int(d.Mem)})
			ns.Dir.Sharers = 0
			ns.Dir.Pending = int8(m.Src)
			ns.Dir.St = DirSM
			return nil
		}), true
	case d.St == DirM && m.Type == MsgGetS:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Dir.Pending = int8(m.Src)
			sys.applyDirResp(ns, m, respIndex("fwdgets-owner"))
			ns.Dir.St = DirMS
			return nil
		}), true
	case d.St == DirM && m.Type == MsgGetM:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Dir.Pending = int8(m.Src)
			sys.applyDirResp(ns, m, respIndex("fwdgetm-owner"))
			ns.Dir.St = DirMM
			return nil
		}), true

	case d.St == DirIM && m.Type == MsgAck:
		return holeRule(ruleDirIMAck, dRespNone, int(DirM), dTrackOwner), true
	case d.St == DirSM && m.Type == MsgAck:
		return holeRule(ruleDirSMAck, dRespNone, int(DirM), dTrackOwner), true
	case d.St == DirMM && m.Type == MsgAck:
		return fire(func(ns *State, _ *ts.Env) error {
			sys.applyDirTrack(ns, dTrackOwner)
			sys.applyDirNext(ns, int(DirM))
			return nil
		}), true
	case d.St == DirMS && m.Type == MsgData:
		return fire(func(ns *State, _ *ts.Env) error {
			// Writeback from the old owner (Mem updated by plumbing): old
			// owner and the reader become the sharers. Synthesized
			// candidates can reach M_S with these unset; flag rather than
			// corrupt the sharer set.
			if d.Owner < 0 || d.Pending < 0 {
				ns.Err = "dir-M_S+Data-unset"
				return nil
			}
			ns.Dir.Sharers = (1 << uint(d.Owner)) | (1 << uint(d.Pending))
			ns.Dir.Owner = None
			ns.Dir.Pending = None
			ns.Dir.St = DirS
			return nil
		}), true

	default:
		return fire(func(ns *State, _ *ts.Env) error {
			ns.Err = fmt.Sprintf("dir-%s+%s", d.St, m.Type)
			return nil
		}), true
	}
}

// respIndex resolves a directory response action name to its index.
func respIndex(name string) int {
	for i, n := range dirRespActions {
		if n == name {
			return i
		}
	}
	panic("msi: unknown dir response action " + name)
}
