// Package msi implements the paper's case study: a directory-based MSI
// cache-coherence protocol over an unordered interconnect (Figure 3), with
// the transient states that the unordered network forces, the safety and
// liveness-style properties of §III, and the synthesis skeletons MSI-small
// (8 holes) and MSI-large (12 holes) with the designer action libraries
// whose cardinalities (3 response × 7 next-state per cache rule; 5 response
// × 7 next-state × 3 track per directory rule) reproduce the paper's
// candidate counts exactly.
//
// The protocol, derived from Figure 3 and the paper's reference [13] (Sorin
// et al., "A Primer on Memory Consistency and Cache Coherence"):
//
//   - N symmetric cache controllers and one directory share a single cache
//     line; the directory holds the backing memory inline. Evictions are
//     omitted, as in the paper's Figure 3.
//   - Reads: I --GetS--> IS_D --Data--> S. The directory answers from I or S
//     directly; from M it forwards (Fwd-GetS) to the owner, which sends Data
//     to both requester and directory (writeback) and downgrades to S.
//   - Writes: I --GetM--> IM_AD --Data(cnt)--> {M | IM_A} --Inv-Ack*--> M,
//     and S --GetM--> SM_W likewise. The directory invalidates sharers
//     (Inv), which Inv-Ack the requester directly; Data carries the number
//     of Inv-Acks to expect. From M the directory forwards (Fwd-GetM) to
//     the owner, which sends Data to the requester and invalidates itself.
//   - Serialization: completing a write transaction sends Ack to the
//     directory; the directory's transient states (I_M, S_M, M_M) stall
//     further requests until that Ack arrives — this is the "transient
//     state (Invalid-to-Modified) that stalls on further read/write
//     requests" discussed in §III. The M_S transient instead awaits the
//     owner's writeback Data.
//
// Data values are modelled over {0,1} with a ghost "last write" variable, so
// the checker verifies not only the SWMR invariant but that readers observe
// the most recent write.
package msi

import (
	"encoding/binary"
	"fmt"
	"strings"

	"verc3/internal/network"
	"verc3/internal/ts"
)

// CacheState enumerates the 7 cache-controller states (3 stable + 4
// transient), which is exactly the arity of the cache "next state" hole
// actions in the paper's action library.
type CacheState int8

// Cache-controller states.
const (
	CacheI    CacheState = iota // Invalid (stable)
	CacheS                      // Shared (stable)
	CacheM                      // Modified (stable)
	CacheISD                    // I→S: GetS sent, awaiting Data
	CacheIMAD                   // I→M: GetM sent, awaiting Data (and Inv-Acks)
	CacheIMA                    // I→M: Data received, awaiting remaining Inv-Acks
	CacheSMW                    // S→M: GetM sent, awaiting Data (and Inv-Acks)
	numCacheStates
)

// cacheStateNames are the designer-visible next-state action names.
var cacheStateNames = [...]string{"I", "S", "M", "IS_D", "IM_AD", "IM_A", "SM_W"}

// String returns the state name.
func (s CacheState) String() string { return cacheStateNames[s] }

// DirState enumerates the 7 directory states (3 stable + 4 transient).
type DirState int8

// Directory states.
const (
	DirI  DirState = iota // Invalid (stable): no copies, memory current
	DirS                  // Shared (stable): sharers hold the line
	DirM                  // Modified (stable): owner holds the line
	DirIM                 // I→M: Data sent, awaiting requester's Ack
	DirSM                 // S→M: Invs+Data sent, awaiting requester's Ack
	DirMS                 // M→S: Fwd-GetS sent, awaiting owner's writeback
	DirMM                 // M→M: Fwd-GetM sent, awaiting requester's Ack
	numDirStates
)

// dirStateNames are the designer-visible next-state action names.
var dirStateNames = [...]string{"I", "S", "M", "I_M", "S_M", "M_S", "M_M"}

// String returns the state name.
func (s DirState) String() string { return dirStateNames[s] }

// Message type names.
const (
	MsgGetS    = "GetS"    // cache→dir read request
	MsgGetM    = "GetM"    // cache→dir write request
	MsgFwdGetS = "FwdGetS" // dir→owner: send Data to Req and write back
	MsgFwdGetM = "FwdGetM" // dir→owner: send Data to Req and invalidate
	MsgInv     = "Inv"     // dir→sharer: invalidate, Inv-Ack the Req
	MsgInvAck  = "InvAck"  // sharer→requester
	MsgData    = "Data"    // data response; Cnt = Inv-Acks to expect
	MsgAck     = "Ack"     // requester→dir: transaction complete (unblock)
)

// None marks an empty agent field (no owner / no pending requester).
const None = -1

// Cache is one cache controller's per-line state.
type Cache struct {
	St CacheState
	// Data is the line's value; meaningful in S and M (kept 0 otherwise so
	// state keys stay canonical).
	Data int8
	// Acks counts Inv-Acks: received-so-far while awaiting Data (IM_AD,
	// SM_W), still-needed in IM_A. Zero elsewhere.
	Acks int8
}

// Dir is the directory's per-line state.
type Dir struct {
	St DirState
	// Owner is the owning cache in M (and the old owner during M_S/M_M).
	Owner int8
	// Pending is the requester being serialized during a transient.
	Pending int8
	// Sharers is a bitset of caches holding the line in S.
	Sharers uint8
	// Mem is the backing memory value.
	Mem int8
}

// State is the global protocol state. It implements ts.State and
// ts.Permutable.
type State struct {
	Caches []Cache
	Dir    Dir
	Net    network.Net
	// Ghost is the specification variable: the most recently written value.
	Ghost int8
	// Err poisons the state when an agent received a message it has no
	// handler for (Murphi's "unhandled message" error); the
	// no-protocol-error invariant then fails, ending the search.
	Err string
}

// Key implements ts.State.
func (s *State) Key() string {
	var b strings.Builder
	b.Grow(64 + 8*len(s.Caches))
	for _, c := range s.Caches {
		fmt.Fprintf(&b, "%d.%d.%d|", c.St, c.Data, c.Acks)
	}
	fmt.Fprintf(&b, "D%d.%d.%d.%d.%d|G%d|", s.Dir.St, s.Dir.Owner, s.Dir.Pending, s.Dir.Sharers, s.Dir.Mem, s.Ghost)
	b.WriteString(s.Net.Key())
	if s.Err != "" {
		b.WriteString("|E:")
		b.WriteString(s.Err)
	}
	return b.String()
}

// AppendKey implements ts.KeyAppender: the binary sibling of Key. Every
// agent-indexed and protocol field is emitted fixed-width (one byte per
// int8-ranged field, cache count prefixed), the network as its
// count-prefixed message encoding, and the error string length-prefixed —
// all self-delimiting, so the encoding is injective on field values
// wherever Key is injective.
func (s *State) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(len(s.Caches)))
	for _, c := range s.Caches {
		dst = append(dst, byte(c.St), byte(c.Data), byte(c.Acks))
	}
	dst = append(dst, byte(s.Dir.St), byte(s.Dir.Owner), byte(s.Dir.Pending), s.Dir.Sharers, byte(s.Dir.Mem), byte(s.Ghost))
	dst = s.Net.AppendKey(dst)
	dst = binary.AppendUvarint(dst, uint64(len(s.Err)))
	dst = append(dst, s.Err...)
	return dst
}

// DecodeKey implements ts.KeyDecoder on the system (see protocol.go for
// the method's receiver): decodeState is the inverse of State.AppendKey,
// consuming exactly one state from the front of data. The byte-for-byte
// round-trip (decode ∘ encode = identity) is what pins checkpointed
// frontiers to bit-identical resumed exploration; FuzzCheckpointRoundTrip
// hammers both directions.
func decodeState(data []byte, wantCaches int) (*State, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("msi: truncated state (no cache count)")
	}
	nc := int(data[0])
	data = data[1:]
	if wantCaches >= 0 && nc != wantCaches {
		return nil, nil, fmt.Errorf("msi: state encodes %d caches, system has %d", nc, wantCaches)
	}
	if len(data) < 3*nc+6 {
		return nil, nil, fmt.Errorf("msi: truncated state (want %d agent bytes, have %d)", 3*nc+6, len(data))
	}
	s := &State{Caches: make([]Cache, nc)}
	for i := range s.Caches {
		st := CacheState(int8(data[0]))
		if st < 0 || st >= numCacheStates {
			return nil, nil, fmt.Errorf("msi: cache %d has invalid state %d", i, st)
		}
		s.Caches[i] = Cache{St: st, Data: int8(data[1]), Acks: int8(data[2])}
		data = data[3:]
	}
	dst := DirState(int8(data[0]))
	if dst < 0 || dst >= numDirStates {
		return nil, nil, fmt.Errorf("msi: invalid directory state %d", dst)
	}
	s.Dir = Dir{St: dst, Owner: int8(data[1]), Pending: int8(data[2]), Sharers: data[3], Mem: int8(data[4])}
	s.Ghost = int8(data[5])
	data = data[6:]
	net, rest, err := network.DecodeNet(data)
	if err != nil {
		return nil, nil, fmt.Errorf("msi: %w", err)
	}
	s.Net = net
	data = rest
	el, n := binary.Uvarint(data)
	if n <= 0 || el > uint64(len(data)-n) {
		return nil, nil, fmt.Errorf("msi: truncated error string")
	}
	data = data[n:]
	s.Err = string(data[:el])
	return s, data[el:], nil
}

// Clone implements ts.State.
func (s *State) Clone() ts.State {
	cp := &State{
		Caches: append([]Cache(nil), s.Caches...),
		Dir:    s.Dir,
		Net:    s.Net, // immutable value semantics
		Ghost:  s.Ghost,
		Err:    s.Err,
	}
	return cp
}

// CopyFrom implements ts.StateCopier: overwrite the receiver with src,
// reusing the receiver's cache array and network message storage. The
// result owns all of its storage like Scratch — not like Clone, which
// shares the network slice — because a recycled successor's network is
// about to be mutated in place by the firing rule (SendInPlace /
// RemoveInPlace). Fire keeps every successor on this owned-storage
// footing, so one cache array and one message buffer recirculate through
// arbitrarily many recycle/CopyFrom cycles.
func (s *State) CopyFrom(src ts.State) {
	o := src.(*State)
	s.Caches = append(s.Caches[:0], o.Caches...)
	s.Dir = o.Dir
	o.Net.CopyInto(&s.Net)
	s.Ghost = o.Ghost
	s.Err = o.Err
}

// NumAgents implements ts.Permutable.
func (s *State) NumAgents() int { return len(s.Caches) }

// Permute implements ts.Permutable: cache i is renamed to perm[i]
// everywhere an agent index occurs (cache array slot, directory owner /
// pending / sharers, message Src/Dst/Req). It is PermuteInto against a
// fresh destination, so the renaming logic lives in exactly one place.
func (s *State) Permute(perm []int) ts.State {
	cp := s.Scratch()
	s.PermuteInto(cp, perm)
	return cp
}

// Scratch implements ts.InPlacePermuter: a fully private deep copy usable
// as a PermuteInto destination. Clone is not enough here — it shares the
// network's message slice under the Net's immutable value semantics, and
// PermuteInto overwrites that slice in place.
func (s *State) Scratch() ts.State {
	return &State{
		Caches: append([]Cache(nil), s.Caches...),
		Dir:    s.Dir,
		Net:    s.Net.Copy(),
		Ghost:  s.Ghost,
		Err:    s.Err,
	}
}

// PermuteInto implements ts.InPlacePermuter: Permute's result written into
// dst — a *State from Scratch — reusing its cache array and network
// message storage, so the symmetry canonicalizer's N!−1 permutations per
// state allocate nothing in steady state.
func (s *State) PermuteInto(dst ts.State, perm []int) {
	d := dst.(*State)
	n := len(s.Caches)
	if len(d.Caches) != n {
		d.Caches = make([]Cache, n)
	}
	for i, c := range s.Caches {
		d.Caches[perm[i]] = c
	}
	d.Dir = s.Dir
	permAgent := func(a int8) int8 {
		if a >= 0 && int(a) < n {
			return int8(perm[a])
		}
		return a
	}
	d.Dir.Owner = permAgent(s.Dir.Owner)
	d.Dir.Pending = permAgent(s.Dir.Pending)
	var sh uint8
	for i := 0; i < n; i++ {
		if s.Dir.Sharers&(1<<uint(i)) != 0 {
			sh |= 1 << uint(perm[i])
		}
	}
	d.Dir.Sharers = sh
	d.Ghost = s.Ghost
	d.Err = s.Err
	s.Net.PermuteInto(&d.Net, perm, n)
}

// String renders the state for traces.
func (s *State) String() string {
	var b strings.Builder
	for i, c := range s.Caches {
		fmt.Fprintf(&b, "c%d:%s(d=%d,a=%d) ", i, c.St, c.Data, c.Acks)
	}
	fmt.Fprintf(&b, "dir:%s(own=%d,pend=%d,shr=%08b,mem=%d) ghost=%d net=[%s]",
		s.Dir.St, s.Dir.Owner, s.Dir.Pending, s.Dir.Sharers, s.Dir.Mem, s.Ghost, s.Net)
	if s.Err != "" {
		fmt.Fprintf(&b, " ERR=%s", s.Err)
	}
	return b.String()
}
