package msi_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"verc3/internal/msi"
	"verc3/internal/network"
	"verc3/internal/symmetry"
	"verc3/internal/ts"
)

// randomState builds a structurally plausible random MSI state.
func randomState(rng *rand.Rand, n int) *msi.State {
	st := &msi.State{
		Caches: make([]msi.Cache, n),
		Dir: msi.Dir{
			St:      msi.DirState(rng.Intn(7)),
			Owner:   int8(rng.Intn(n+1) - 1),
			Pending: int8(rng.Intn(n+1) - 1),
			Sharers: uint8(rng.Intn(1 << n)),
			Mem:     int8(rng.Intn(2)),
		},
		Ghost: int8(rng.Intn(2)),
	}
	for i := range st.Caches {
		st.Caches[i] = msi.Cache{
			St:   msi.CacheState(rng.Intn(7)),
			Data: int8(rng.Intn(2)),
			Acks: int8(rng.Intn(3)),
		}
	}
	types := []string{msi.MsgGetS, msi.MsgGetM, msi.MsgData, msi.MsgInv, msi.MsgInvAck, msi.MsgAck}
	for k := rng.Intn(5); k > 0; k-- {
		st.Net = st.Net.Send(network.Msg{
			Type: types[rng.Intn(len(types))],
			Src:  rng.Intn(n + 1),
			Dst:  rng.Intn(n + 1),
			Req:  rng.Intn(n+1) - 1,
			Cnt:  rng.Intn(2),
			Val:  rng.Intn(2),
		})
	}
	return st
}

// TestStatePermuteGroupAction: identity fixes the key; p then p⁻¹
// round-trips; the canonical key is orbit-invariant.
func TestStatePermuteGroupAction(t *testing.T) {
	const n = 3
	canon := symmetry.NewCanonicalizer(n)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomState(rng, n)
		id := []int{0, 1, 2}
		if st.Permute(id).Key() != st.Key() {
			return false
		}
		p := rng.Perm(n)
		inv := symmetry.Invert(p)
		if st.Permute(p).(*msi.State).Permute(inv).Key() != st.Key() {
			return false
		}
		return canon.Key(st.Permute(p)) == canon.Key(st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStateCloneIndependence: mutating a clone leaves the original intact.
func TestStateCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := randomState(rng, 3)
	key := st.Key()
	cp := st.Clone().(*msi.State)
	cp.Caches[0].St = msi.CacheM
	cp.Dir.Owner = 0
	cp.Net = cp.Net.Send(network.Msg{Type: msi.MsgAck, Src: 0, Dst: 3})
	cp.Ghost ^= 1
	cp.Err = "poked"
	if st.Key() != key {
		t.Error("clone mutation leaked into original")
	}
	if cp.Key() == key {
		t.Error("clone mutations did not change its key")
	}
}

// TestKeyDistinguishesFields: flipping each field alone changes the key
// (injectivity spot checks — a collision here would merge distinct states
// in the visited set and unsoundly prune reachable behaviour).
func TestKeyDistinguishesFields(t *testing.T) {
	base := func() *msi.State {
		return &msi.State{Caches: make([]msi.Cache, 2), Dir: msi.Dir{Owner: msi.None, Pending: msi.None}}
	}
	mutations := map[string]func(*msi.State){
		"cache-state": func(s *msi.State) { s.Caches[1].St = msi.CacheS },
		"cache-data":  func(s *msi.State) { s.Caches[1].Data = 1 },
		"cache-acks":  func(s *msi.State) { s.Caches[1].Acks = 1 },
		"dir-state":   func(s *msi.State) { s.Dir.St = msi.DirM },
		"dir-owner":   func(s *msi.State) { s.Dir.Owner = 1 },
		"dir-pending": func(s *msi.State) { s.Dir.Pending = 0 },
		"dir-sharers": func(s *msi.State) { s.Dir.Sharers = 2 },
		"dir-mem":     func(s *msi.State) { s.Dir.Mem = 1 },
		"ghost":       func(s *msi.State) { s.Ghost = 1 },
		"net":         func(s *msi.State) { s.Net = s.Net.Send(network.Msg{Type: msi.MsgGetS, Src: 0, Dst: 2}) },
		"err":         func(s *msi.State) { s.Err = "x" },
	}
	ref := base().Key()
	for name, mut := range mutations {
		s := base()
		mut(s)
		if s.Key() == ref {
			t.Errorf("%s: key unchanged by mutation", name)
		}
	}
}

// TestConfigValidation: cache-count bounds panic loudly.
func TestConfigValidation(t *testing.T) {
	for _, bad := range []int{-1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("caches=%d: want panic", bad)
				}
			}()
			msi.New(msi.Config{Caches: bad})
		}()
	}
	if sys := msi.New(msi.Config{}); len(sys.Initial()[0].(*msi.State).Caches) != 3 {
		t.Error("default caches != 3")
	}
	if msi.New(msi.Config{Caches: 2}).DirID() != 2 {
		t.Error("DirID != cache count")
	}
}

// TestVariantNames pins the display names used in reports.
func TestVariantNames(t *testing.T) {
	for v, want := range map[msi.Variant]string{
		msi.Complete: "MSI-complete", msi.Small: "MSI-small", msi.Large: "MSI-large",
	} {
		if v.String() != want {
			t.Errorf("%v", v)
		}
	}
}

// TestTransitionsAreStateless fires the same transition twice and checks
// both successors are identical and the source state unchanged — the
// contract that makes parallel synthesis safe.
func TestTransitionsAreStateless(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2, Variant: msi.Complete})
	st := sys.Initial()[0]
	key := st.Key()
	trs := sys.Transitions(st)
	if len(trs) == 0 {
		t.Fatal("no transitions from initial state")
	}
	for _, tr := range trs {
		a, err1 := tr.Fire(nil)
		b, err2 := tr.Fire(nil)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", tr.Name, err1, err2)
		}
		if a.Key() != b.Key() {
			t.Errorf("%s: refiring produced a different successor", tr.Name)
		}
		if st.Key() != key {
			t.Fatalf("%s: firing mutated the source state", tr.Name)
		}
	}
}

// TestErrStatesAreTerminal: poisoned states expand to nothing.
func TestErrStatesAreTerminal(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2, Variant: msi.Complete})
	st := sys.Initial()[0].(*msi.State).Clone().(*msi.State)
	st.Err = "boom"
	if got := sys.Transitions(st); len(got) != 0 {
		t.Errorf("poisoned state has %d transitions", len(got))
	}
}

var _ ts.Permutable = (*msi.State)(nil)
