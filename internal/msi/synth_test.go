package msi_test

import (
	"sort"
	"strings"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/msi"
	"verc3/internal/ts"
)

// TestSynthesizeSmall is experiment E2 at test scale: MSI-small has exactly
// 8 holes, the paper's 1,179,648-candidate space, and exactly 4 solutions —
// the correct protocol times the two vacuous invalidate-empty-sharer-set
// choices.
func TestSynthesizeSmall(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2, Variant: msi.Small})
	res, err := core.Synthesize(sys, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Holes != 8 {
		t.Errorf("holes = %d, want 8", res.Stats.Holes)
	}
	if res.Stats.CandidateSpace != 1179648 {
		t.Errorf("candidate space = %d, want 1179648 (paper Table I)", res.Stats.CandidateSpace)
	}
	if len(res.Solutions) != 4 {
		t.Fatalf("solutions = %d, want 4 (paper §III)", len(res.Solutions))
	}
	// Every solution must agree on the load-bearing actions.
	for i := range res.Solutions {
		desc := res.Describe(i)
		for _, want := range []string{
			"c/IS_D/Data/resp@none", "c/IS_D/Data/next@S",
			"d/I_M/Ack/next@M", "d/I_M/Ack/track@owner=pend",
			"d/S_M/Ack/next@M", "d/S_M/Ack/track@owner=pend",
		} {
			if !strings.Contains(desc, want) {
				t.Errorf("solution %d missing %s: %s", i, want, desc)
			}
		}
	}
	// Pruning must rule out the overwhelming majority of the space.
	if res.Stats.Evaluated > 10000 {
		t.Errorf("evaluated = %d, expected <10k of 1.18M", res.Stats.Evaluated)
	}
	// All solutions behave identically (same reachable state count).
	v := res.Solutions[0].VisitedStates
	for _, sol := range res.Solutions {
		if sol.VisitedStates != v {
			t.Errorf("solution state counts differ: %d vs %d", sol.VisitedStates, v)
		}
	}
}

// TestSynthesizedEqualsHandWritten: the synthesized solutions explore
// exactly as many states as the hand-written complete protocol — they are
// the same protocol.
func TestSynthesizedEqualsHandWritten(t *testing.T) {
	skel := msi.New(msi.Config{Caches: 2, Variant: msi.Small})
	res, err := core.Synthesize(skel, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	complete, err := mc.Check(msi.New(msi.Config{Caches: 2, Variant: msi.Complete}), mc.Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) == 0 {
		t.Fatal("no solutions")
	}
	if res.Solutions[0].VisitedStates != complete.Stats.VisitedStates {
		t.Errorf("solution explores %d states, complete protocol %d",
			res.Solutions[0].VisitedStates, complete.Stats.VisitedStates)
	}
}

// TestSynthesizeSmallParallelAgrees checks 4-worker synthesis finds the same
// solution set (the paper notes evaluated counts may differ slightly; the
// solutions may not).
func TestSynthesizeSmallParallelAgrees(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2, Variant: msi.Small})
	seq, err := core.Synthesize(sys, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Synthesize(sys, core.Config{Mode: core.ModePrune, Workers: 4, MC: mc.Options{Symmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Solutions) != len(par.Solutions) {
		t.Fatalf("solutions: seq=%d par=%d", len(seq.Solutions), len(par.Solutions))
	}
	for i := range seq.Solutions {
		a, b := seq.Solutions[i].Assign, par.Solutions[i].Assign
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("solution %d differs: %v vs %v", i, a, b)
			}
		}
	}
}

// TestSynthesizeLarge is experiment E5 (guarded: ~40s). MSI-large has 12
// holes, the paper's 1,207,959,552-candidate space, and exactly 12
// solutions.
func TestSynthesizeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("MSI-large synthesis takes ~40s; run without -short")
	}
	sys := msi.New(msi.Config{Caches: 2, Variant: msi.Large})
	res, err := core.Synthesize(sys, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Holes != 12 {
		t.Errorf("holes = %d, want 12", res.Stats.Holes)
	}
	if res.Stats.CandidateSpace != 1207959552 {
		t.Errorf("candidate space = %d, want 1207959552 (paper Table I)", res.Stats.CandidateSpace)
	}
	if len(res.Solutions) != 12 {
		t.Errorf("solutions = %d, want 12 (paper §III)", len(res.Solutions))
	}
}

// TestStrategiesAgreeOnSolutions: naive enumeration, full-vector pruning,
// trace-generalized pruning and DFS-order pruning must produce the same
// MSI-small solution set — the pruning optimization and search order are
// performance choices, never correctness choices.
func TestStrategiesAgreeOnSolutions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full 231k-candidate naive baseline (~25s); run without -short")
	}
	sys := msi.New(msi.Config{Caches: 2, Variant: msi.Small})
	ref, err := core.Synthesize(sys, core.Config{Mode: core.ModePrune, MC: mc.Options{Symmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]core.Config{
		"naive": {Mode: core.ModeNaive, MC: mc.Options{Symmetry: true}},
		"trace": {Mode: core.ModePrune, PruneStyle: core.PruneTraceGeneralized, MC: mc.Options{Symmetry: true}},
		"dfs":   {Mode: core.ModePrune, MC: mc.Options{Symmetry: true, Order: mc.DFS}},
	}
	// Hole discovery order differs across strategies (naive explores under
	// defaults, DFS in different order), so solutions are compared as sets
	// of hole-name → action-name maps, not positionally.
	canon := func(r *core.Result) map[string]bool {
		set := map[string]bool{}
		for i := range r.Solutions {
			a := r.Assignment(i)
			keys := make([]string, 0, len(a))
			for h := range a {
				keys = append(keys, h)
			}
			sort.Strings(keys)
			s := ""
			for _, h := range keys {
				s += h + "=" + a[h] + ";"
			}
			set[s] = true
		}
		return set
	}
	refSet := canon(ref)
	for name, cfg := range configs {
		got, err := core.Synthesize(sys, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gotSet := canon(got)
		if len(gotSet) != len(refSet) {
			t.Errorf("%s: %d distinct solutions vs %d reference", name, len(gotSet), len(refSet))
			continue
		}
		for s := range refSet {
			if !gotSet[s] {
				t.Errorf("%s: missing solution %s", name, s)
			}
		}
	}
}

// mapChooser pins holes to named actions for candidate dissection.
type mapChooser map[string]string

func (m mapChooser) Choose(hole string, actions []string) (int, error) {
	want, ok := m[hole]
	if !ok {
		return 0, ts.ErrWildcard
	}
	for i, a := range actions {
		if a == want {
			return i, nil
		}
	}
	return 0, ts.ErrWildcard
}

// correctSmall is the correct MSI-small completion.
var correctSmall = mapChooser{
	"c/IS_D/Data/resp": "none", "c/IS_D/Data/next": "S",
	"d/I_M/Ack/resp": "none", "d/I_M/Ack/next": "M", "d/I_M/Ack/track": "owner=pend",
	"d/S_M/Ack/resp": "none", "d/S_M/Ack/next": "M", "d/S_M/Ack/track": "owner=pend",
}

// with returns a copy of correctSmall with one hole overridden.
func with(hole, action string) mapChooser {
	cp := mapChooser{}
	for k, v := range correctSmall {
		cp[k] = v
	}
	cp[hole] = action
	return cp
}

// TestWrongCandidatesFailForTheRightReasons dissects representative faulty
// completions and checks which property rejects each — the error-detection
// machinery the synthesizer relies on.
func TestWrongCandidatesFailForTheRightReasons(t *testing.T) {
	cases := []struct {
		name     string
		chooser  mapChooser
		wantKind mc.FailKind
		wantName string
	}{
		{
			// The paper's motivating degeneracy: data arrives but the cache
			// bounces straight back to Invalid. In the paper's protocol this
			// is safe-but-useless and only the "all stable states visited"
			// goal rejects it; our directory registers the reader as a
			// sharer on GetS, so the phantom sharer is caught even earlier —
			// a later Inv reaches a cache in I, an unhandled message.
			name: "IS_D-to-I-degenerate", chooser: with("c/IS_D/Data/next", "I"),
			wantKind: mc.FailInvariant, wantName: "no-protocol-error",
		},
		{
			// Spurious ack to the directory in a stable state: unhandled.
			name: "IS_D-spurious-ack", chooser: with("c/IS_D/Data/resp", "ack-dir"),
			wantKind: mc.FailInvariant, wantName: "no-protocol-error",
		},
		{
			// Completing I→M without transferring ownership: the next
			// writer's forward has no owner.
			name: "I_M-no-track", chooser: with("d/I_M/Ack/track", "none"),
			wantKind: mc.FailInvariant, wantName: "no-protocol-error",
		},
		{
			// Directory returns to I instead of M after a write: memory is
			// stale there.
			name: "I_M-to-I", chooser: with("d/I_M/Ack/next", "I"),
			wantKind: mc.FailInvariant, wantName: "",
		},
		{
			// Directory stays in I_M forever: requests stall, the pending
			// requester is long gone.
			name: "I_M-self-loop", chooser: with("d/I_M/Ack/next", "I_M"),
			wantKind: mc.FailInvariant, wantName: "dir-handshake",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := msi.New(msi.Config{Caches: 2, Variant: msi.Small})
			res, err := mc.Check(sys, mc.Options{Symmetry: true, Env: ts.NewEnv(tc.chooser), RecordTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != mc.Failure {
				t.Fatalf("verdict = %v, want failure", res.Verdict)
			}
			if res.Failure.Kind != tc.wantKind {
				t.Errorf("kind = %v (%s), want %v", res.Failure.Kind, res.Failure.Name, tc.wantKind)
			}
			if tc.wantName != "" && res.Failure.Name != tc.wantName {
				t.Errorf("property = %s, want %s", res.Failure.Name, tc.wantName)
			}
		})
	}
}

// TestCorrectCandidateVerifies: the fixed correct completion of the Small
// skeleton is success (sanity for the dissection chooser).
func TestCorrectCandidateVerifies(t *testing.T) {
	sys := msi.New(msi.Config{Caches: 2, Variant: msi.Small})
	res, err := mc.Check(sys, mc.Options{Symmetry: true, Env: ts.NewEnv(correctSmall)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict = %v, want success (failure: %+v)", res.Verdict, res.Failure)
	}
}
