package mutex_test

// Tests for the Peterson state's binary keying and scratch permutation.

import (
	"bytes"
	"testing"

	"verc3/internal/mutex"
	"verc3/internal/symmetry"
	"verc3/internal/ts"
)

// states enumerates a representative population of mutex states (all PC
// pairs × flag pairs × turn values × ghost).
func states() []*mutex.State {
	var out []*mutex.State
	for pc0 := mutex.PC(0); pc0 <= 3; pc0++ {
		for pc1 := mutex.PC(0); pc1 <= 3; pc1++ {
			for f := 0; f < 4; f++ {
				for turn := int8(-1); turn <= 1; turn++ {
					for _, v := range []bool{false, true} {
						out = append(out, &mutex.State{
							PCs:         [2]mutex.PC{pc0, pc1},
							Flag:        [2]bool{f&1 != 0, f&2 != 0},
							Turn:        turn,
							VisitedCrit: v,
						})
					}
				}
			}
		}
	}
	return out
}

// TestAppendKeyMatchesKeyPartition checks binary/string agreement over the
// full state population: AppendKey-equality coincides with Key-equality.
func TestAppendKeyMatchesKeyPartition(t *testing.T) {
	byKey := map[string][]byte{}
	byEnc := map[string]string{}
	for _, s := range states() {
		k, enc := s.Key(), s.AppendKey(nil)
		if prev, ok := byKey[k]; ok && !bytes.Equal(prev, enc) {
			t.Fatalf("key %q encoded two ways", k)
		}
		if prevKey, ok := byEnc[string(enc)]; ok && prevKey != k {
			t.Fatalf("keys %q and %q share encoding %x", prevKey, k, enc)
		}
		byKey[k] = enc
		byEnc[string(enc)] = k
	}
}

// TestPermuteIntoMatchesPermute checks the scratch path agrees with the
// allocating Permute for both permutations over the whole population.
func TestPermuteIntoMatchesPermute(t *testing.T) {
	var scratch ts.State
	for _, s := range states() {
		if scratch == nil {
			scratch = s.Scratch()
		}
		for _, perm := range symmetry.Permutations(2) {
			want := s.Permute(perm).Key()
			s.PermuteInto(scratch, perm)
			if got := scratch.Key(); got != want {
				t.Fatalf("state %q perm %v: PermuteInto %q, Permute %q", s.Key(), perm, got, want)
			}
		}
	}
}
