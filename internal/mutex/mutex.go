// Package mutex is a second, self-contained case study: synthesizing the
// missing actions of Peterson's two-process mutual-exclusion algorithm.
// The paper positions VerC3 as a general library for concurrent-system
// synthesis with distributed protocols as the flagship domain; this package
// demonstrates the same skeleton-plus-action-library workflow on a shared-
// memory concurrent program.
//
// The sketch leaves three actions open:
//
//   - turn-write: on entering the waiting phase, set turn to me or other
//     (Peterson's subtle choice: only "other" preserves mutual exclusion);
//   - exit-flag: on leaving the critical section, clear or keep my flag
//     (keeping it eventually wedges the system: caught by deadlock
//     detection or the returns-to-rest goal);
//   - after-crit: where to go after the critical section, Idle or Crit
//     (hogging the section starves the peer: caught by the
//     returns-to-rest goal).
//
// Exactly one of the 2·2·2 = 8 candidates is correct.
package mutex

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"verc3/internal/ts"
)

// PC is a process's program counter.
type PC int8

// Program counters.
const (
	Idle    PC = iota // not requesting
	SetTurn           // flag raised; about to write turn
	Wait              // spinning on the entry condition
	Crit              // critical section
)

var pcNames = [...]string{"Idle", "SetTurn", "Wait", "Crit"}

// String returns the program-counter name.
func (p PC) String() string { return pcNames[p] }

// State is the global state of the two-process system.
type State struct {
	PCs  [2]PC
	Flag [2]bool
	// Turn is the process index with deference priority; None before the
	// first write.
	Turn int8
	// VisitedCrit is a specification ghost: some process has entered the
	// critical section at least once.
	VisitedCrit bool
}

// None marks an unset Turn.
const None = -1

// Key implements ts.State.
func (s *State) Key() string {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("%d%d%d%d%d%d", s.PCs[0], s.PCs[1], b(s.Flag[0]), b(s.Flag[1]), s.Turn+1, b(s.VisitedCrit))
}

// AppendKey implements ts.KeyAppender: the six key digits as six raw
// bytes (Turn stored as Turn+1 exactly like Key, so None encodes as 0).
func (s *State) AppendKey(dst []byte) []byte {
	b := func(v bool) byte {
		if v {
			return 1
		}
		return 0
	}
	return append(dst, byte(s.PCs[0]), byte(s.PCs[1]), b(s.Flag[0]), b(s.Flag[1]), byte(s.Turn+1), b(s.VisitedCrit))
}

// Clone implements ts.State.
func (s *State) Clone() ts.State {
	cp := *s
	return &cp
}

// CopyFrom implements ts.StateCopier. The state is a flat value, so a plain
// assignment leaves the receiver sharing nothing.
func (s *State) CopyFrom(src ts.State) { *s = *src.(*State) }

// Scratch implements ts.InPlacePermuter. The state is a flat value — Clone
// is already fully private.
func (s *State) Scratch() ts.State { return s.Clone() }

// PermuteInto implements ts.InPlacePermuter: Permute's result written into
// dst without allocating.
func (s *State) PermuteInto(dst ts.State, perm []int) {
	d := dst.(*State)
	d.VisitedCrit = s.VisitedCrit
	for i := 0; i < 2; i++ {
		d.PCs[perm[i]] = s.PCs[i]
		d.Flag[perm[i]] = s.Flag[i]
	}
	d.Turn = s.Turn
	if s.Turn >= 0 {
		d.Turn = int8(perm[s.Turn])
	}
}

// NumAgents implements ts.Permutable.
func (s *State) NumAgents() int { return 2 }

// Permute implements ts.Permutable: PermuteInto against a fresh
// destination, so the renaming logic lives in exactly one place.
func (s *State) Permute(perm []int) ts.State {
	cp := s.Scratch()
	s.PermuteInto(cp, perm)
	return cp
}

// String renders the state.
func (s *State) String() string {
	return fmt.Sprintf("p0:%s(f=%v) p1:%s(f=%v) turn=%d visited=%v",
		s.PCs[0], s.Flag[0], s.PCs[1], s.Flag[1], s.Turn, s.VisitedCrit)
}

// System implements ts.System plus the successor lifecycle extensions
// (ts.Recycler / ts.TransitionAppender). Sketch selects whether the three
// actions are holes (true) or fixed to Peterson's correct choices (false).
type System struct {
	Sketch bool

	pool   sync.Pool
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Transition names, one per (process, rule): computed once instead of a
// fmt.Sprintf per expansion.
var (
	nameRequest = [2]string{"p0: request (flag up)", "p1: request (flag up)"}
	nameTurn    = [2]string{"p0: write turn", "p1: write turn"}
	nameEnter   = [2]string{"p0: enter critical section", "p1: enter critical section"}
	nameLeave   = [2]string{"p0: leave critical section", "p1: leave critical section"}
)

// succ returns a successor equal to st, drawn from the recycled-state pool
// when possible.
func (sys *System) succ(st *State) *State {
	if v := sys.pool.Get(); v != nil {
		ns := v.(*State)
		*ns = *st
		sys.hits.Add(1)
		return ns
	}
	sys.misses.Add(1)
	cp := *st
	return &cp
}

// Recycle implements ts.Recycler.
func (sys *System) Recycle(s ts.State) {
	if st, ok := s.(*State); ok {
		sys.pool.Put(st)
	}
}

// PoolStats implements ts.PoolReporter.
func (sys *System) PoolStats() (hits, misses uint64) {
	return sys.hits.Load(), sys.misses.Load()
}

// New returns the mutex system; sketch leaves the three actions as holes.
func New(sketch bool) *System { return &System{Sketch: sketch} }

// Name implements ts.System.
func (sys *System) Name() string {
	if sys.Sketch {
		return "peterson-sketch"
	}
	return "peterson"
}

// Initial implements ts.System.
func (sys *System) Initial() []ts.State {
	return []ts.State{&State{Turn: None}}
}

// Hole action libraries.
var (
	turnActions  = []string{"other", "me"}
	exitActions  = []string{"clear", "keep"}
	afterActions = []string{"Idle", "Crit"}
)

// choose resolves a hole in sketch mode, or returns the fixed correct index.
func (sys *System) choose(env *ts.Env, hole string, acts []string, correct int) (int, error) {
	if !sys.Sketch {
		return correct, nil
	}
	return env.Choose(hole, acts)
}

// Transitions implements ts.System.
func (sys *System) Transitions(s ts.State) []ts.Transition {
	return sys.AppendTransitions(nil, s)
}

// AppendTransitions implements ts.TransitionAppender: Transitions appended
// into a caller-owned buffer, with precomputed names and pooled Fire clones.
// Holes are resolved before cloning, so an aborted (wildcard) branch never
// touches the pool.
func (sys *System) AppendTransitions(dst []ts.Transition, s ts.State) []ts.Transition {
	st := s.(*State)
	for me := 0; me < 2; me++ {
		me := me
		other := 1 - me
		switch st.PCs[me] {
		case Idle:
			dst = append(dst, ts.Transition{
				Name: nameRequest[me],
				Fire: func(*ts.Env) (ts.State, error) {
					ns := sys.succ(st)
					ns.Flag[me] = true
					ns.PCs[me] = SetTurn
					return ns, nil
				},
			})
		case SetTurn:
			dst = append(dst, ts.Transition{
				Name: nameTurn[me],
				Fire: func(env *ts.Env) (ts.State, error) {
					a, err := sys.choose(env, "turn-write", turnActions, 0)
					if err != nil {
						return nil, err
					}
					ns := sys.succ(st)
					if a == 0 {
						ns.Turn = int8(other)
					} else {
						ns.Turn = int8(me)
					}
					ns.PCs[me] = Wait
					return ns, nil
				},
			})
		case Wait:
			if !st.Flag[other] || st.Turn == int8(me) {
				dst = append(dst, ts.Transition{
					Name: nameEnter[me],
					Fire: func(*ts.Env) (ts.State, error) {
						ns := sys.succ(st)
						ns.PCs[me] = Crit
						ns.VisitedCrit = true
						return ns, nil
					},
				})
			}
		case Crit:
			dst = append(dst, ts.Transition{
				Name: nameLeave[me],
				Fire: func(env *ts.Env) (ts.State, error) {
					ef, err := sys.choose(env, "exit-flag", exitActions, 0)
					if err != nil {
						return nil, err
					}
					ac, err := sys.choose(env, "after-crit", afterActions, 0)
					if err != nil {
						return nil, err
					}
					ns := sys.succ(st)
					if ef == 0 {
						ns.Flag[me] = false
					}
					if ac == 0 {
						ns.PCs[me] = Idle
					} else {
						ns.PCs[me] = Crit
					}
					return ns, nil
				},
			})
		}
	}
	return dst
}

// Invariants implements ts.System: mutual exclusion.
func (sys *System) Invariants() []ts.Invariant {
	return []ts.Invariant{{
		Name: "mutual-exclusion",
		Holds: func(s ts.State) bool {
			st := s.(*State)
			return !(st.PCs[0] == Crit && st.PCs[1] == Crit)
		},
	}}
}

// Goals implements ts.GoalReporter: the critical section is actually used,
// and the system can return to rest afterwards (both Idle, flags down) —
// the analogue of the paper's "all stable states must be visited" property,
// rejecting safe-but-degenerate completions.
func (sys *System) Goals() []ts.ReachGoal {
	return []ts.ReachGoal{
		{Name: "some-process-enters-crit", Holds: func(s ts.State) bool {
			return s.(*State).VisitedCrit
		}},
		{Name: "returns-to-rest", Holds: func(s ts.State) bool {
			st := s.(*State)
			return st.VisitedCrit && st.PCs[0] == Idle && st.PCs[1] == Idle && !st.Flag[0] && !st.Flag[1]
		}},
	}
}

// LivenessGoals implements ts.LivenessReporter: starvation freedom. A
// process that has raised its flag (SetTurn or Wait) eventually enters the
// critical section. Peterson's turn-write makes this hold — a looping
// contender hands the turn to the waiter and then self-blocks — so the
// goals pass under weak fairness (and, for this algorithm, even without
// it: the contender's self-block leaves the waiter's step as the only
// enabled transition, so no infinite run avoids it).
func (sys *System) LivenessGoals() []ts.LivenessGoal {
	goals := make([]ts.LivenessGoal, 0, 2)
	for me := 0; me < 2; me++ {
		me := me
		goals = append(goals, ts.LivenessGoal{
			Name: fmt.Sprintf("p%d-requests-leads-to-crit", me),
			Kind: ts.LeadsTo,
			Fair: true,
			P: func(s ts.State) bool {
				pc := s.(*State).PCs[me]
				return pc == SetTurn || pc == Wait
			},
			Q: func(s ts.State) bool { return s.(*State).PCs[me] == Crit },
		})
	}
	return goals
}

// WeakFairness implements ts.FairnessReporter: per-process scheduling
// fairness — a process with an enabled step is eventually scheduled. A
// process always has an enabled step except at Wait with the entry
// condition false.
func (sys *System) WeakFairness() []ts.Fairness {
	reqs := make([]ts.Fairness, 0, 2)
	for me := 0; me < 2; me++ {
		me := me
		prefix := fmt.Sprintf("p%d:", me)
		reqs = append(reqs, ts.Fairness{
			Name: fmt.Sprintf("p%d-scheduled", me),
			Enabled: func(s ts.State) bool {
				st := s.(*State)
				return st.PCs[me] != Wait || !st.Flag[1-me] || st.Turn == int8(me)
			},
			Taken: func(rule string) bool { return strings.HasPrefix(rule, prefix) },
		})
	}
	return reqs
}
