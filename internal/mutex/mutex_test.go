package mutex_test

import (
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/mutex"
)

// TestPetersonVerifies checks the complete algorithm satisfies mutual
// exclusion, deadlock freedom, and the usage goals.
func TestPetersonVerifies(t *testing.T) {
	for _, sym := range []bool{false, true} {
		res, err := mc.Check(mutex.New(false), mc.Options{Symmetry: sym})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.Success {
			t.Fatalf("sym=%v: verdict %v (failure: %+v)", sym, res.Verdict, res.Failure)
		}
		t.Logf("sym=%v: %d states", sym, res.Stats.VisitedStates)
	}
}

// TestPetersonSynthesis synthesizes the three held-out actions: of the
// 2·2·2 candidates exactly Peterson's choices (turn:=other, clear flag,
// back to Idle) survive.
func TestPetersonSynthesis(t *testing.T) {
	for _, cfg := range []core.Config{
		{Mode: core.ModePrune},
		{Mode: core.ModePrune, PruneStyle: core.PruneTraceGeneralized},
		{Mode: core.ModeNaive},
	} {
		res, err := core.Synthesize(mutex.New(true), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Holes != 3 {
			t.Fatalf("%v: holes = %d, want 3", cfg.Mode, res.Stats.Holes)
		}
		if len(res.Solutions) != 1 {
			t.Fatalf("%v: solutions = %d, want 1", cfg.Mode, len(res.Solutions))
		}
		for i, name := range res.HoleNames {
			correct := map[string]string{
				"turn-write": "other",
				"exit-flag":  "clear",
				"after-crit": "Idle",
			}[name]
			got := res.HoleActions[i][res.Solutions[0].Assign[i]]
			if got != correct {
				t.Errorf("%v: hole %s = %s, want %s", cfg.Mode, name, got, correct)
			}
		}
	}
}

// TestWrongTurnBreaksMutex documents why the sketch is non-trivial: writing
// turn:=me lets both processes enter the critical section.
func TestWrongTurnBreaksMutex(t *testing.T) {
	res, err := core.Synthesize(mutex.New(true), core.Config{Mode: core.ModeNaive})
	if err != nil {
		t.Fatal(err)
	}
	// At least one failing candidate must exist with turn-write=me; since
	// the unique solution has turn-write=other, all 4 turn-write=me
	// candidates failed.
	if res.Stats.Failures == 0 {
		t.Error("expected failing candidates among the 8")
	}
}
