package network_test

// Tests for the network's binary keying and scratch-permutation support.

import (
	"bytes"
	"testing"

	"verc3/internal/network"
)

// TestMsgAppendKeySelfDelimiting checks the property the length-prefixed
// encoding exists for: message field values cannot bleed into each other,
// even where the comma-joined Key() string would collide.
func TestMsgAppendKeySelfDelimiting(t *testing.T) {
	// Classic delimiter collision: both messages Key() to "x,1,2,3,4,5".
	a := network.Msg{Type: "x,1", Src: 2, Dst: 3, Req: 4, Cnt: 5, Val: 6}
	b := network.Msg{Type: "x", Src: 1, Dst: 2, Req: 3, Cnt: 4, Val: 5}
	if a.Key() == b.Key() {
		// Document the string-path weakness the binary path fixes.
		if bytes.Equal(a.AppendKey(nil), b.AppendKey(nil)) {
			t.Fatal("binary encodings collide along with the string keys")
		}
	}
	// Distinct fields must always encode apart.
	base := network.Msg{Type: "Data", Src: 0, Dst: 1, Req: -1, Cnt: 2, Val: 1}
	ref := base.AppendKey(nil)
	for name, m := range map[string]network.Msg{
		"type": {Type: "Inv", Src: 0, Dst: 1, Req: -1, Cnt: 2, Val: 1},
		"src":  {Type: "Data", Src: 2, Dst: 1, Req: -1, Cnt: 2, Val: 1},
		"dst":  {Type: "Data", Src: 0, Dst: 2, Req: -1, Cnt: 2, Val: 1},
		"req":  {Type: "Data", Src: 0, Dst: 1, Req: 0, Cnt: 2, Val: 1},
		"cnt":  {Type: "Data", Src: 0, Dst: 1, Req: -1, Cnt: -2, Val: 1},
		"val":  {Type: "Data", Src: 0, Dst: 1, Req: -1, Cnt: 2, Val: 0},
	} {
		if bytes.Equal(m.AppendKey(nil), ref) {
			t.Errorf("%s: field change invisible in encoding", name)
		}
	}
}

// TestNetAppendKeyCountPrefixed checks multiset-level injectivity: nets
// differing only in message multiplicity or content encode apart, and the
// empty net has a non-empty (count-only) encoding.
func TestNetAppendKeyCountPrefixed(t *testing.T) {
	m := network.Msg{Type: "Ack", Src: 0, Dst: 3, Req: -1}
	empty := network.Net{}
	one := network.New(m)
	two := network.New(m, m)
	if len(empty.AppendKey(nil)) == 0 {
		t.Error("empty net encodes to nothing")
	}
	encs := [][]byte{empty.AppendKey(nil), one.AppendKey(nil), two.AppendKey(nil)}
	for i := 0; i < len(encs); i++ {
		for j := i + 1; j < len(encs); j++ {
			if bytes.Equal(encs[i], encs[j]) {
				t.Errorf("multiplicities %d and %d share an encoding", i, j)
			}
		}
	}
	// Canonical order: construction order must not leak into the encoding.
	x := network.Msg{Type: "GetS", Src: 1, Dst: 3, Req: -1}
	if !bytes.Equal(network.New(m, x).AppendKey(nil), network.New(x, m).AppendKey(nil)) {
		t.Error("encoding depends on construction order")
	}
}

// TestNetPermuteIntoMatchesPermute checks the scratch path returns exactly
// what the allocating Permute returns — same canonical order, same key —
// while reusing the destination's storage and leaving the source intact.
func TestNetPermuteIntoMatchesPermute(t *testing.T) {
	n := network.New(
		network.Msg{Type: "Data", Src: 0, Dst: 2, Req: -1, Cnt: 1, Val: 1},
		network.Msg{Type: "Inv", Src: 3, Dst: 1, Req: 0, Val: 0},
		network.Msg{Type: "GetM", Src: 2, Dst: 3, Req: -1, Val: 0},
		network.Msg{Type: "Ack", Src: 1, Dst: 3, Req: -1, Val: 0},
	)
	before := n.Key()
	dst := n.Copy()
	for _, perm := range [][]int{{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}, {0, 2, 1}} {
		want := n.Permute(perm, 3)
		n.PermuteInto(&dst, perm, 3)
		if dst.Key() != want.Key() {
			t.Fatalf("perm %v: PermuteInto %q, Permute %q", perm, dst.Key(), want.Key())
		}
	}
	if n.Key() != before {
		t.Fatalf("PermuteInto mutated the source: %q -> %q", before, n.Key())
	}
}

// TestNetPermuteIntoGrows checks a smaller scratch net grows to fit a
// larger source (the scratch is reused across states whose in-flight
// message counts differ).
func TestNetPermuteIntoGrows(t *testing.T) {
	small := network.New()
	dst := small.Copy()
	big := network.New(
		network.Msg{Type: "A", Src: 0, Dst: 1, Req: -1},
		network.Msg{Type: "B", Src: 1, Dst: 0, Req: -1},
		network.Msg{Type: "C", Src: 2, Dst: 2, Req: 2},
	)
	big.PermuteInto(&dst, []int{2, 0, 1}, 3)
	if want := big.Permute([]int{2, 0, 1}, 3); dst.Key() != want.Key() {
		t.Fatalf("grown scratch: %q, want %q", dst.Key(), want.Key())
	}
	// And shrink back down on the next reuse.
	small.PermuteInto(&dst, []int{0, 1, 2}, 3)
	if dst.Len() != 0 {
		t.Fatalf("scratch kept %d stale messages", dst.Len())
	}
}

// TestCopyIsPrivate checks Copy's storage independence: permuting into the
// copy never disturbs the original (the reason Scratch paths must Copy
// rather than share under the immutable value semantics).
func TestCopyIsPrivate(t *testing.T) {
	orig := network.New(
		network.Msg{Type: "Data", Src: 0, Dst: 1, Req: -1, Val: 1},
		network.Msg{Type: "Inv", Src: 1, Dst: 0, Req: 0},
	)
	before := orig.Key()
	cp := orig.Copy()
	orig.PermuteInto(&cp, []int{1, 0}, 2)
	if orig.Key() != before {
		t.Fatalf("Copy shared storage with the original: %q -> %q", before, orig.Key())
	}
}
