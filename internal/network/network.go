// Package network models the unordered interconnect the paper's MSI case
// study assumes ("all networks may be unordered"): messages in flight form a
// multiset, and any pending message may be delivered next. The multiset is
// kept canonically sorted so that network contents encode deterministically
// into state keys, and agent-valued message fields can be permuted for
// symmetry reduction.
package network

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Msg is one protocol message.
//
// Src, Dst and Req are agent indices and participate in symmetry permutation
// (caches occupy [0, numAgents); the directory uses an index outside that
// range and is a fixed point). Req names the agent on whose behalf the
// message travels (e.g. the original requester in a forwarded request or
// invalidation); -1 when not applicable. Cnt is a plain count (e.g. how many
// Inv-Acks the receiver must collect) and Val a data value; neither is
// permuted.
type Msg struct {
	Type string
	Src  int
	Dst  int
	Req  int
	Cnt  int
	Val  int
}

// Key returns the canonical encoding of the message.
func (m Msg) Key() string {
	return fmt.Sprintf("%s,%d,%d,%d,%d,%d", m.Type, m.Src, m.Dst, m.Req, m.Cnt, m.Val)
}

// AppendKey appends the message's compact binary encoding to dst: the type
// string length-prefixed (uvarint), then the five integer fields as zigzag
// varints. Every component is self-delimiting, so the encoding is injective
// on the raw field values — strictly stronger than Key, whose comma-joined
// rendering could in principle collide for adversarial Type strings.
func (m Msg) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Type)))
	dst = append(dst, m.Type...)
	dst = binary.AppendVarint(dst, int64(m.Src))
	dst = binary.AppendVarint(dst, int64(m.Dst))
	dst = binary.AppendVarint(dst, int64(m.Req))
	dst = binary.AppendVarint(dst, int64(m.Cnt))
	dst = binary.AppendVarint(dst, int64(m.Val))
	return dst
}

// DecodeMsg decodes one message from the front of data — the inverse of
// AppendKey — returning the unconsumed remainder. Malformed input yields
// an error, never a panic: checkpoint files cross a process boundary.
func DecodeMsg(data []byte) (Msg, []byte, error) {
	var m Msg
	tl, n := binary.Uvarint(data)
	if n <= 0 || tl > uint64(len(data)-n) {
		return m, nil, fmt.Errorf("network: truncated message type")
	}
	data = data[n:]
	m.Type = string(data[:tl])
	data = data[tl:]
	for _, dst := range []*int{&m.Src, &m.Dst, &m.Req, &m.Cnt, &m.Val} {
		v, n := binary.Varint(data)
		if n <= 0 {
			return m, nil, fmt.Errorf("network: truncated message field")
		}
		*dst = int(v)
		data = data[n:]
	}
	return m, data, nil
}

// DecodeNet decodes a network from the front of data — the inverse of
// Net.AppendKey — returning the unconsumed remainder. The decoded Net
// owns its storage. The message order is taken as-is (AppendKey emits
// canonical order, so a round-trip is bit-identical); out-of-order input
// is re-canonicalized rather than rejected.
func DecodeNet(data []byte) (Net, []byte, error) {
	cnt, n := binary.Uvarint(data)
	if n <= 0 || cnt > uint64(len(data)-n) { // each message is ≥ 6 bytes; len bound is a cheap sanity cap
		return Net{}, nil, fmt.Errorf("network: truncated message count")
	}
	data = data[n:]
	msgs := make([]Msg, 0, cnt)
	sorted := true
	for i := uint64(0); i < cnt; i++ {
		m, rest, err := DecodeMsg(data)
		if err != nil {
			return Net{}, nil, err
		}
		if len(msgs) > 0 && less(m, msgs[len(msgs)-1]) {
			sorted = false
		}
		msgs = append(msgs, m)
		data = rest
	}
	if !sorted {
		sort.Slice(msgs, func(i, j int) bool { return less(msgs[i], msgs[j]) })
	}
	return Net{msgs: msgs}, data, nil
}

// String renders the message for traces.
func (m Msg) String() string {
	s := fmt.Sprintf("%s(%d→%d", m.Type, m.Src, m.Dst)
	if m.Req >= 0 {
		s += fmt.Sprintf(" req=%d", m.Req)
	}
	if m.Cnt != 0 {
		s += fmt.Sprintf(" cnt=%d", m.Cnt)
	}
	s += fmt.Sprintf(" val=%d)", m.Val)
	return s
}

// less orders messages canonically.
func less(a, b Msg) bool {
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Req != b.Req {
		return a.Req < b.Req
	}
	if a.Cnt != b.Cnt {
		return a.Cnt < b.Cnt
	}
	return a.Val < b.Val
}

// Net is a canonical multiset of in-flight messages. The zero value is an
// empty network. Net values are immutable once shared: mutating operations
// return a fresh Net.
type Net struct {
	msgs []Msg // kept sorted
}

// New builds a network containing the given messages.
func New(msgs ...Msg) Net {
	n := Net{msgs: append([]Msg(nil), msgs...)}
	sort.Slice(n.msgs, func(i, j int) bool { return less(n.msgs[i], n.msgs[j]) })
	return n
}

// Len returns the number of in-flight messages.
func (n Net) Len() int { return len(n.msgs) }

// Send returns a copy of n with m added.
func (n Net) Send(m Msg) Net {
	out := make([]Msg, 0, len(n.msgs)+1)
	i := 0
	for ; i < len(n.msgs) && less(n.msgs[i], m); i++ {
		out = append(out, n.msgs[i])
	}
	out = append(out, m)
	out = append(out, n.msgs[i:]...)
	return Net{msgs: out}
}

// Remove returns a copy of n with the message at index i (per Messages
// order) removed. It panics on out-of-range i.
func (n Net) Remove(i int) Net {
	if i < 0 || i >= len(n.msgs) {
		panic("network: Remove index out of range")
	}
	out := make([]Msg, 0, len(n.msgs)-1)
	out = append(out, n.msgs[:i]...)
	out = append(out, n.msgs[i+1:]...)
	return Net{msgs: out}
}

// At returns the message at index i.
func (n Net) At(i int) Msg { return n.msgs[i] }

// Messages returns the in-flight messages in canonical order. The returned
// slice must not be mutated.
func (n Net) Messages() []Msg { return n.msgs }

// ForDst returns the indices of messages addressed to dst, in canonical
// order. Unordered delivery means each is a separately deliverable event.
func (n Net) ForDst(dst int) []int {
	var idx []int
	for i, m := range n.msgs {
		if m.Dst == dst {
			idx = append(idx, i)
		}
	}
	return idx
}

// Count returns how many in-flight messages satisfy pred.
func (n Net) Count(pred func(Msg) bool) int {
	c := 0
	for _, m := range n.msgs {
		if pred(m) {
			c++
		}
	}
	return c
}

// Any reports whether some in-flight message satisfies pred.
func (n Net) Any(pred func(Msg) bool) bool {
	for _, m := range n.msgs {
		if pred(m) {
			return true
		}
	}
	return false
}

// Key returns the canonical encoding of the whole network.
func (n Net) Key() string {
	var b strings.Builder
	for i, m := range n.msgs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(m.Key())
	}
	return b.String()
}

// AppendKey appends the network's compact binary encoding to dst: a uvarint
// message count followed by each message's encoding in canonical order.
// The count prefix plus self-delimiting message encodings make the whole
// encoding injective on message multisets.
func (n Net) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(n.msgs)))
	for _, m := range n.msgs {
		dst = m.AppendKey(dst)
	}
	return dst
}

// Copy returns a Net with private message storage. Net values returned by
// Send/Remove/Permute may be shared freely (immutable value semantics), but
// a Net that will be overwritten in place — a PermuteInto destination, or
// an owned network mutated through SendInPlace/RemoveInPlace — must own
// its slice, which is what Copy (and CopyInto) establish.
func (n Net) Copy() Net {
	return Net{msgs: append([]Msg(nil), n.msgs...)}
}

// CopyInto writes a copy of n into dst, reusing dst's message storage
// (growing it only when capacity falls short). dst must own its storage;
// afterwards it still does, so recycled protocol states keep recirculating
// one message buffer through arbitrarily many CopyInto/SendInPlace cycles.
func (n Net) CopyInto(dst *Net) {
	dst.msgs = append(dst.msgs[:0], n.msgs...)
}

// SendInPlace inserts m into n's multiset preserving canonical order,
// mutating n's own storage. n must own its slice (Copy/CopyInto/PermuteInto
// lineage) — calling this on a shared Net value corrupts every state
// holding it. The insertion is a backward shift like PermuteInto's
// insertion sort: protocol networks hold a handful of messages, and unlike
// Send nothing is allocated once capacity has grown to the working size.
func (n *Net) SendInPlace(m Msg) {
	n.msgs = append(n.msgs, m)
	for j := len(n.msgs) - 1; j > 0 && less(n.msgs[j], n.msgs[j-1]); j-- {
		n.msgs[j], n.msgs[j-1] = n.msgs[j-1], n.msgs[j]
	}
}

// RemoveInPlace deletes the message at index i (per Messages order),
// mutating n's own storage under the same ownership contract as
// SendInPlace. It panics on out-of-range i.
func (n *Net) RemoveInPlace(i int) {
	if i < 0 || i >= len(n.msgs) {
		panic("network: RemoveInPlace index out of range")
	}
	n.msgs = append(n.msgs[:i], n.msgs[i+1:]...)
}

// Permute returns a copy of n with every agent index a in [0, numAgents)
// renamed to perm[a] in Src, Dst and Req (indices outside that range, e.g.
// the directory, are fixed points), re-canonicalized. It is PermuteInto
// against a fresh destination, so the renaming logic lives in one place.
func (n Net) Permute(perm []int, numAgents int) Net {
	out := Net{msgs: make([]Msg, 0, len(n.msgs))}
	n.PermuteInto(&out, perm, numAgents)
	return out
}

// PermuteInto writes the same result Permute would return into dst,
// reusing dst's message slice (growing it only when capacity falls short).
// dst must own its storage — it must originate from Copy (or a prior
// PermuteInto chain rooted at one), never from a shared Net value, because
// its backing array is overwritten. The receiver is not modified. Sorting
// is an in-place insertion sort: protocol networks hold a handful of
// in-flight messages, and unlike sort.Slice it does not allocate.
func (n Net) PermuteInto(dst *Net, perm []int, numAgents int) {
	out := dst.msgs[:0]
	for _, m := range n.msgs {
		if m.Src >= 0 && m.Src < numAgents {
			m.Src = perm[m.Src]
		}
		if m.Dst >= 0 && m.Dst < numAgents {
			m.Dst = perm[m.Dst]
		}
		if m.Req >= 0 && m.Req < numAgents {
			m.Req = perm[m.Req]
		}
		out = append(out, m)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dst.msgs = out
}

// String renders the network for traces.
func (n Net) String() string {
	if len(n.msgs) == 0 {
		return "∅"
	}
	parts := make([]string, len(n.msgs))
	for i, m := range n.msgs {
		parts[i] = m.String()
	}
	return strings.Join(parts, " ")
}
