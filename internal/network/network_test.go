package network_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"verc3/internal/network"
)

// genMsg builds a random message over a small agent universe.
func genMsg(rng *rand.Rand, agents int) network.Msg {
	types := []string{"GetS", "GetM", "Data", "Inv", "Ack"}
	return network.Msg{
		Type: types[rng.Intn(len(types))],
		Src:  rng.Intn(agents + 1), // may be the directory (== agents)
		Dst:  rng.Intn(agents + 1),
		Req:  rng.Intn(agents+1) - 1, // may be None
		Cnt:  rng.Intn(3),
		Val:  rng.Intn(2),
	}
}

// TestSendRemoveMultiset checks Send/Remove behave as multiset insert/delete
// regardless of insertion order.
func TestSendRemoveMultiset(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		n := network.Net{}
		var ref []string // multiset of message keys
		for _, op := range opsRaw {
			if op%3 != 0 || n.Len() == 0 {
				m := genMsg(rng, 3)
				n = n.Send(m)
				ref = append(ref, m.Key())
			} else {
				i := rng.Intn(n.Len())
				k := n.At(i).Key()
				n = n.Remove(i)
				for j, rk := range ref {
					if rk == k {
						ref = append(ref[:j], ref[j+1:]...)
						break
					}
				}
			}
			// Compare as sorted multisets.
			var got []string
			for _, m := range n.Messages() {
				got = append(got, m.Key())
			}
			want := append([]string(nil), ref...)
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestKeyOrderIndependence checks the canonical key ignores insertion order.
func TestKeyOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		msgs := make([]network.Msg, 1+rng.Intn(6))
		for i := range msgs {
			msgs[i] = genMsg(rng, 3)
		}
		a := network.New(msgs...)
		perm := rng.Perm(len(msgs))
		b := network.Net{}
		for _, i := range perm {
			b = b.Send(msgs[i])
		}
		return a.Key() == b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPermuteGroupAction checks Permute is a group action: identity is a
// no-op and applying p then p⁻¹ round-trips.
func TestPermuteGroupAction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const agents = 3
		msgs := make([]network.Msg, 1+rng.Intn(6))
		for i := range msgs {
			msgs[i] = genMsg(rng, agents)
		}
		n := network.New(msgs...)
		id := []int{0, 1, 2}
		if n.Permute(id, agents).Key() != n.Key() {
			return false
		}
		p := rng.Perm(agents)
		inv := make([]int, agents)
		for i, v := range p {
			inv[v] = i
		}
		return n.Permute(p, agents).Permute(inv, agents).Key() == n.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPermuteFixesDirectory checks agent indices outside the scalarset (the
// directory) are fixed points.
func TestPermuteFixesDirectory(t *testing.T) {
	n := network.New(network.Msg{Type: "GetS", Src: 0, Dst: 2, Req: -1})
	p := n.Permute([]int{1, 0}, 2) // 2 agents; dst 2 is the directory
	m := p.At(0)
	if m.Src != 1 || m.Dst != 2 {
		t.Errorf("got %+v, want Src=1 Dst=2", m)
	}
}

// TestForDst checks destination filtering.
func TestForDst(t *testing.T) {
	n := network.New(
		network.Msg{Type: "A", Src: 0, Dst: 1},
		network.Msg{Type: "B", Src: 1, Dst: 0},
		network.Msg{Type: "C", Src: 2, Dst: 1},
	)
	idx := n.ForDst(1)
	if len(idx) != 2 {
		t.Fatalf("ForDst(1) = %v, want 2 entries", idx)
	}
	for _, i := range idx {
		if n.At(i).Dst != 1 {
			t.Errorf("message %d has Dst %d", i, n.At(i).Dst)
		}
	}
}

// TestCountAny checks the predicate helpers.
func TestCountAny(t *testing.T) {
	n := network.New(
		network.Msg{Type: "Data", Val: 1},
		network.Msg{Type: "Data", Val: 0},
		network.Msg{Type: "Ack"},
	)
	if got := n.Count(func(m network.Msg) bool { return m.Type == "Data" }); got != 2 {
		t.Errorf("Count(Data) = %d, want 2", got)
	}
	if !n.Any(func(m network.Msg) bool { return m.Type == "Ack" }) {
		t.Error("Any(Ack) = false, want true")
	}
	if n.Any(func(m network.Msg) bool { return m.Type == "Inv" }) {
		t.Error("Any(Inv) = true, want false")
	}
}

// TestRemovePanics checks out-of-range Remove panics (programming error).
func TestRemovePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	network.Net{}.Remove(0)
}

// TestDuplicateMessages checks true multiset semantics: identical messages
// coexist and are removed one at a time.
func TestDuplicateMessages(t *testing.T) {
	m := network.Msg{Type: "Inv", Src: 2, Dst: 0, Req: 1}
	n := network.New(m, m)
	if n.Len() != 2 {
		t.Fatalf("Len = %d, want 2", n.Len())
	}
	n = n.Remove(0)
	if n.Len() != 1 || n.At(0) != m {
		t.Fatalf("after Remove: %v", n.Messages())
	}
}
