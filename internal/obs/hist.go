package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Phase enumerates the timed exploration phases — the same decomposition
// the mc package's pprof labels use, plus the level-boundary merge that
// pprof attributes to the run loop.
type Phase int

const (
	// PhaseEnumerate is transition enumeration (Transitions or
	// AppendTransitions).
	PhaseEnumerate Phase = iota
	// PhaseFire is successor construction (Transition.Fire).
	PhaseFire
	// PhaseKey is canonical encoding plus fingerprinting.
	PhaseKey
	// PhaseInsert is visited-set admission (TryInsert).
	PhaseInsert
	// PhaseLevelMerge is level-boundary backend housekeeping — the spill
	// backend's run-file merge, a near-no-op elsewhere.
	PhaseLevelMerge

	// NumPhases is the number of phases; not itself a phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"enumerate", "fire", "key", "insert", "level_merge",
}

// String returns the phase's wire name.
func (p Phase) String() string {
	if p >= 0 && p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// HistBuckets is the bucket count of the log2 duration histograms: bucket
// i holds observations with bits.Len64(ns) == i, i.e. durations in
// [2^(i-1), 2^i) ns (bucket 0 is exactly 0 ns). 40 buckets reach ~9
// minutes, far past any single batched phase observation.
const HistBuckets = 40

// BucketUpperNS is bucket i's inclusive upper bound in nanoseconds.
func BucketUpperNS(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(i) - 1
}

// Histogram is a coarse log2-bucketed duration histogram with lock-free
// atomic buckets. Coarse is the point: power-of-two resolution is plenty
// to see where time goes, and Observe is two atomic adds plus one
// bits.Len64 — cheap enough for the batched (per-sampled-expansion,
// per-level) call sites, though still far too hot for per-state use.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration (negative durations clamp to 0).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	b := bits.Len64(ns)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// HistogramSnapshot is an immutable reading of a Histogram, JSON-shaped
// for run reports.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNS   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"` // indexed by log2 bucket; zero-trimmed tail
}

// Snapshot reads the histogram. The bucket slice is trimmed to the last
// non-zero bucket; counts are monotone but, like counter snapshots, the
// (count, sum, buckets) triple is only eventually consistent while
// writers are active.
func (h *Histogram) Snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sumNS.Load()}
	var buf [HistBuckets]uint64
	top := 0
	for i := range buf {
		buf[i] = h.buckets[i].Load()
		if buf[i] != 0 {
			top = i + 1
		}
	}
	hs.Buckets = append([]uint64(nil), buf[:top]...)
	return hs
}

// MeanNS is the mean observation in nanoseconds (0 when empty).
func (hs HistogramSnapshot) MeanNS() float64 {
	if hs.Count == 0 {
		return 0
	}
	return float64(hs.SumNS) / float64(hs.Count)
}

// Stopwatch accumulates one sampled expansion's per-phase durations and
// files them into the collector's histograms on Done. The zero value and
// nil receivers are inert, so drivers thread a possibly-nil *Stopwatch
// straight through the hot path:
//
//	sw := worker.BeginExpansion() // nil on unsampled expansions
//	sw.Mark()
//	... enumerate ...
//	sw.Lap(PhaseEnumerate)
//	...
//	sw.Done()
type Stopwatch struct {
	c   *Collector
	t0  time.Time
	acc [NumPhases]time.Duration
}

// Mark starts (or restarts) the phase clock.
func (s *Stopwatch) Mark() {
	if s != nil {
		s.t0 = time.Now()
	}
}

// Lap attributes the time since the last Mark/Lap to phase p and
// restarts the clock.
func (s *Stopwatch) Lap(p Phase) {
	if s == nil {
		return
	}
	now := time.Now()
	s.acc[p] += now.Sub(s.t0)
	s.t0 = now
}

// Done files the accumulated per-phase durations into the collector's
// histograms — one Observe per phase that saw time, so each histogram
// observation is a whole expansion's batch, not a single state.
func (s *Stopwatch) Done() {
	if s == nil || s.c == nil {
		return
	}
	for p, d := range s.acc {
		if d > 0 {
			s.c.phases[p].Observe(d)
		}
	}
}
