package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// MetricsHandler serves a collector read-only over HTTP — the
// -metrics-addr surface, expvar-style: no mutation, no auth, meant for
// localhost scrapes and dashboards while a check is in flight.
//
//	/metrics       Prometheus text exposition (all counter, gauge and
//	               phase-histogram families, zero or not)
//	/metrics.json  the current Snapshot plus phase histograms as JSON
func MetricsHandler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, c)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Snapshot Snapshot                     `json:"snapshot"`
			Phases   map[string]HistogramSnapshot `json:"phases,omitempty"`
		}{Snapshot: c.Snapshot(), Phases: c.Phases()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	return mux
}

// writePrometheus renders the text exposition format. Every family is
// emitted even at zero, so scrapers see a stable schema from the first
// scrape of a run.
func writePrometheus(w http.ResponseWriter, c *Collector) {
	s := c.Snapshot()
	var b strings.Builder
	for i, v := range s.Counters {
		name := "verc3_" + counterNames[i] + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	for i, v := range s.Gauges {
		name := "verc3_" + gaugeNames[i]
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	fmt.Fprintf(&b, "# TYPE verc3_elapsed_seconds gauge\nverc3_elapsed_seconds %g\n",
		float64(s.ElapsedNS)/1e9)
	b.WriteString("# TYPE verc3_phase_seconds histogram\n")
	for p := Phase(0); p < NumPhases; p++ {
		hs := HistogramSnapshot{}
		if c != nil {
			hs = c.phases[p].Snapshot()
		}
		cum := uint64(0)
		for i, n := range hs.Buckets {
			cum += n
			if n == 0 {
				continue
			}
			fmt.Fprintf(&b, "verc3_phase_seconds_bucket{phase=%q,le=%q} %d\n",
				p.String(), fmt.Sprintf("%g", float64(BucketUpperNS(i))/1e9), cum)
		}
		fmt.Fprintf(&b, "verc3_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", p.String(), hs.Count)
		fmt.Fprintf(&b, "verc3_phase_seconds_sum{phase=%q} %g\n", p.String(), float64(hs.SumNS)/1e9)
		fmt.Fprintf(&b, "verc3_phase_seconds_count{phase=%q} %d\n", p.String(), hs.Count)
	}
	w.Write([]byte(b.String()))
}
