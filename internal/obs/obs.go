// Package obs is the live-telemetry layer of VerC3: both exploration
// drivers, the nested-DFS liveness pass and the synthesis engine publish
// counters, gauges, phase timings and progress events into a Collector,
// and readers — the CLIs' -progress renderer, the -metrics-addr HTTP
// endpoint, the -report run report, and (later) the verc3d daemon — pull
// immutable Snapshots back out while the run is still in flight.
//
// # Counter sharding and the hot-path contract
//
// The exploration hot path expands tens of millions of states per second;
// it cannot afford shared atomics, let alone locks, per state. Writers
// therefore stage counts in a private Worker — a plain uint64 array owned
// by exactly one goroutine at a time — and publish the *delta* since the
// last publication into one of the Collector's cache-line-padded slots
// with a single atomic add per counter, every flushEvery expansions
// (Worker.BeginExpansion) or explicitly (Worker.Flush). The per-state
// cost is one plain increment; the racy part is batched, wait-free, and
// tear-free. Because publication is always a non-negative atomic add,
// every per-slot value is monotone, and so is each counter of successive
// Snapshots — the property the -race concurrency test pins.
//
// Slots are handed out round-robin (NewWorker), so concurrent synthesis
// dispatches sharing one Collector may share a slot; delta-adds make that
// merely contended, never incorrect. Gauges (depth, frontier size,
// visited bytes, …) are last-writer-wins atomics set at BFS level
// boundaries, where a stale read is meaningless rather than wrong.
//
// # Snapshot semantics
//
// Collector.Snapshot sums the slots with atomic loads into an immutable
// value. A snapshot is *eventually consistent*: staged counts not yet
// flushed are invisible, and counters flushed by different workers may be
// read a few microseconds apart — but each counter is exact as of some
// recent moment and never decreases across snapshots. Drivers flush all
// workers at level boundaries and at run end, so a post-run snapshot
// equals the run's statespace.Stats exactly (the zoo-wide equivalence
// test pins this).
//
// All methods on a nil *Collector and nil *Worker are no-ops, so
// instrumented code needs no "is telemetry on?" branches — the same idiom
// as the mc package's pprof phase labels.
package obs

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Counter enumerates the monotone event counters. The exploration group
// (CStates … CRed) is published by the mc drivers and equals the run's
// statespace.Stats at every flush point; the synthesis group (CEvaluated
// … CSolutions) is published by the core engine once per dispatch.
type Counter int

const (
	// CStates counts distinct states admitted to the visited set.
	CStates Counter = iota
	// CTransitions counts successful transition firings (safety pass).
	CTransitions
	// CDuplicates counts states rejected by the visited set.
	CDuplicates
	// CAborts counts branches aborted at wildcard holes.
	CAborts
	// CRecycled counts states handed back to the successor pool.
	CRecycled
	// CBlue and CRed count nested-DFS product states admitted to the
	// outer (blue) and inner (red) liveness searches.
	CBlue
	CRed
	// CEvaluated counts synthesis model-checker dispatches.
	CEvaluated
	// CSkipped counts candidates pruned without model checking.
	CSkipped
	// CSolutions counts solutions recorded during the search.
	CSolutions

	// NumCounters is the number of counters; not itself a counter.
	NumCounters
)

// counterNames are the wire names (JSON, Prometheus `verc3_<name>_total`).
var counterNames = [NumCounters]string{
	"states", "transitions", "duplicates", "wildcard_aborts", "recycled",
	"ndfs_blue", "ndfs_red", "evaluated", "skipped", "solutions",
}

// String returns the counter's wire name.
func (c Counter) String() string {
	if c >= 0 && c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", int(c))
}

// Gauge enumerates the last-writer-wins level gauges.
type Gauge int

const (
	// GDepth is the current BFS depth (level being expanded).
	GDepth Gauge = iota
	// GFrontier is the frontier size at the last level boundary.
	GFrontier
	// GVisitedBytes is the visited-set backend's in-RAM footprint.
	GVisitedBytes
	// GSpilledBytes and GSpillRuns mirror the spill backend's on-disk
	// footprint and live run-file count.
	GSpilledBytes
	GSpillRuns
	// GMaxStates is the -max-states cap (0 = unlimited); readers derive
	// "% of cap" from it.
	GMaxStates
	// GPoolHits and GPoolMisses are the successor pool's cumulative
	// traffic delta for the current run. Gauges, not counters: the
	// underlying ts.PoolReporter counts are per-system and shared across
	// concurrent synthesis dispatches, so only last-writer-wins
	// per-run deltas are meaningful.
	GPoolHits
	GPoolMisses
	// GRound, GHoles, GPatterns and GCandidates describe synthesis
	// progress: current prune round, holes discovered, pruning patterns
	// inserted, and the nominal candidate-space size.
	GRound
	GHoles
	GPatterns
	GCandidates

	// NumGauges is the number of gauges; not itself a gauge.
	NumGauges
)

// gaugeNames are the wire names (JSON, Prometheus `verc3_<name>`).
var gaugeNames = [NumGauges]string{
	"depth", "frontier", "visited_bytes", "spilled_bytes", "spill_runs",
	"max_states", "pool_hits", "pool_misses", "round", "holes", "patterns",
	"candidates",
}

// String returns the gauge's wire name.
func (g Gauge) String() string {
	if g >= 0 && g < NumGauges {
		return gaugeNames[g]
	}
	return fmt.Sprintf("Gauge(%d)", int(g))
}

var (
	counterIndex = func() map[string]Counter {
		m := make(map[string]Counter, NumCounters)
		for i, n := range counterNames {
			m[n] = Counter(i)
		}
		return m
	}()
	gaugeIndex = func() map[string]Gauge {
		m := make(map[string]Gauge, NumGauges)
		for i, n := range gaugeNames {
			m[n] = Gauge(i)
		}
		return m
	}()
)

// slot is one padded shard of the shared counters. NumCounters atomics are
// 80 bytes; the padding rounds the struct to two cache lines so
// neighbouring slots' adds never false-share.
type slot struct {
	c [NumCounters]atomic.Uint64
	_ [128 - (NumCounters*8)%128]byte
}

// maxTimeline bounds the timeline ring; older entries are decimated 2:1
// when it fills, so arbitrarily long runs keep a bounded, evenly spaced
// trajectory.
const maxTimeline = 512

// maxEvents bounds the retained event log (oldest dropped first).
const maxEvents = 512

// Collector aggregates one run's (or one synthesis search's) telemetry.
// Writers publish through Workers, Count, SetGauge, ObservePhase and
// Event; readers pull Snapshot, Timeline, Phases and Events. All methods
// are safe for concurrent use, and all are no-ops on a nil receiver.
type Collector struct {
	start  time.Time
	slots  []slot
	next   atomic.Uint64 // round-robin slot cursor for NewWorker
	gauges [NumGauges]atomic.Uint64
	phases [NumPhases]Histogram

	mu       sync.Mutex
	timeline []Snapshot
	tlSeen   uint64 // marks observed since the last stride change
	tlStride uint64 // keep 1 of every tlStride marks
	events   []Event
	dropped  int // events dropped to the maxEvents cap
}

// New builds a Collector. The slot pool is sized to the machine (two per
// processor, at least eight): enough that a parallel driver's workers
// rarely share a slot, small enough that Snapshot's sweep stays cheap.
func New() *Collector {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return &Collector{
		start:    time.Now(),
		slots:    make([]slot, n),
		tlStride: 1,
	}
}

// NewWorker hands out a writer handle bound to one of the padded slots
// (round-robin). Each Worker must be used by at most one goroutine at a
// time; any number of Workers may share a slot. Nil-safe: a nil Collector
// returns a nil Worker, whose methods all no-op.
func (c *Collector) NewWorker() *Worker {
	if c == nil {
		return nil
	}
	i := (c.next.Add(1) - 1) % uint64(len(c.slots))
	return &Worker{c: c, slot: &c.slots[i]}
}

// Count publishes n directly to the shared counters — the convenience
// path for low-frequency writers (the synthesis engine counts once per
// dispatch) that don't warrant Worker staging.
func (c *Collector) Count(ct Counter, n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.slots[0].c[ct].Add(n)
}

// SetGauge publishes a last-writer-wins gauge value.
func (c *Collector) SetGauge(g Gauge, v uint64) {
	if c == nil {
		return
	}
	c.gauges[g].Store(v)
}

// ObservePhase records one batched phase duration into the phase
// histogram (see hist.go). Callers batch: one observation per sampled
// expansion or per level merge, never per state.
func (c *Collector) ObservePhase(p Phase, d time.Duration) {
	if c == nil {
		return
	}
	c.phases[p].Observe(d)
}

// Phases snapshots the per-phase timing histograms.
func (c *Collector) Phases() map[string]HistogramSnapshot {
	if c == nil {
		return nil
	}
	out := make(map[string]HistogramSnapshot, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		hs := c.phases[p].Snapshot()
		if hs.Count > 0 {
			out[p.String()] = hs
		}
	}
	return out
}

// Snapshot sums the slots and loads the gauges into an immutable value.
// Successive snapshots are monotone per counter (see the package comment).
func (c *Collector) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	s.ElapsedNS = time.Since(c.start).Nanoseconds()
	for i := range c.slots {
		for j := Counter(0); j < NumCounters; j++ {
			s.Counters[j] += c.slots[i].c[j].Load()
		}
	}
	for j := range c.gauges {
		s.Gauges[j] = c.gauges[j].Load()
	}
	return s
}

// MarkTimeline appends the current snapshot to the run trajectory. The
// drivers mark every BFS level boundary and the sampler marks every tick;
// when the ring fills, every other entry is dropped and the stride
// doubles, keeping the trajectory bounded and evenly spaced.
func (c *Collector) MarkTimeline() {
	if c == nil {
		return
	}
	s := c.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tlSeen++
	if c.tlSeen%c.tlStride != 0 {
		return
	}
	if len(c.timeline) == maxTimeline {
		keep := c.timeline[:0]
		for i := 1; i < maxTimeline; i += 2 {
			keep = append(keep, c.timeline[i])
		}
		c.timeline = keep
		c.tlStride *= 2
		c.tlSeen = 0
		return // this mark is decimated along with its peers
	}
	c.timeline = append(c.timeline, s)
}

// Timeline copies the trajectory recorded so far.
func (c *Collector) Timeline() []Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Snapshot(nil), c.timeline...)
}

// Event appends a structured progress event (synthesis rounds, solutions)
// to the bounded event log, stamping ElapsedNS when the caller left it
// zero. Oldest events are dropped past maxEvents.
func (c *Collector) Event(e Event) {
	if c == nil {
		return
	}
	if e.ElapsedNS == 0 {
		e.ElapsedNS = time.Since(c.start).Nanoseconds()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == maxEvents {
		copy(c.events, c.events[1:])
		c.events = c.events[:maxEvents-1]
		c.dropped++
	}
	c.events = append(c.events, e)
}

// Events copies the retained event log and reports how many older events
// were dropped to the cap.
func (c *Collector) Events() (events []Event, dropped int) {
	if c == nil {
		return nil, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...), c.dropped
}

// Elapsed is the time since the collector was built.
func (c *Collector) Elapsed() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.start)
}

// flushEvery is the Worker publication cadence: one batched atomic-add
// flush per this many expansions. 64 keeps a progress sampler at most a
// few microseconds stale while amortizing the flush to well under a
// nanosecond per state.
const flushEvery = 64

// sampleEvery is the phase-timing sampling cadence: one timed expansion
// (four time.Now pairs) per this many, bounding timer overhead to ~2% of
// expansions while still collecting thousands of samples per second.
const sampleEvery = 64

// Worker is a writer's private staging area: plain-increment counters
// owned by one goroutine, published to the Collector's shared slots as
// batched deltas. The zero cadence methods (Inc, Add) are the per-state
// hot path; BeginExpansion drives the flush and sampling cadences.
// All methods no-op on a nil receiver.
type Worker struct {
	c    *Collector
	slot *slot
	cur  [NumCounters]uint64 // staged totals (plain writes, single owner)
	last [NumCounters]uint64 // published watermark
	ops  uint64
	sw   Stopwatch
}

// Inc stages one count — the per-state hot-path operation.
func (w *Worker) Inc(ct Counter) {
	if w != nil {
		w.cur[ct]++
	}
}

// Add stages n counts.
func (w *Worker) Add(ct Counter, n uint64) {
	if w != nil {
		w.cur[ct] += n
	}
}

// Flush publishes the staged deltas to the shared slot. Drivers call it
// at level boundaries and at run end so post-run snapshots are exact.
func (w *Worker) Flush() {
	if w == nil {
		return
	}
	for i := range w.cur {
		if d := w.cur[i] - w.last[i]; d != 0 {
			w.slot.c[i].Add(d)
			w.last[i] = w.cur[i]
		}
	}
}

// BeginExpansion advances the expansion cadence: every flushEvery calls
// the staged counters flush, and every sampleEvery calls it arms and
// returns the worker's phase stopwatch (nil otherwise — and Stopwatch
// methods are nil-safe, so the caller threads the result unconditionally).
func (w *Worker) BeginExpansion() *Stopwatch {
	if w == nil {
		return nil
	}
	w.ops++
	if w.ops%flushEvery == 0 {
		w.Flush()
	}
	if w.ops%sampleEvery == 1 {
		w.sw = Stopwatch{c: w.c}
		return &w.sw
	}
	return nil
}

// Tick advances only the flush cadence — the path for writers with no
// phase structure (the liveness pass).
func (w *Worker) Tick() {
	if w == nil {
		return
	}
	w.ops++
	if w.ops%flushEvery == 0 {
		w.Flush()
	}
}

// Snapshot is an immutable reading of the collector: elapsed time, the
// counter sums and the gauge values. Counters are monotone across
// successive snapshots of one collector.
type Snapshot struct {
	ElapsedNS int64
	Counters  [NumCounters]uint64
	Gauges    [NumGauges]uint64
}

// Rate returns the average per-second rate of counter ct between prev and
// s (0 when no time elapsed).
func (s Snapshot) Rate(ct Counter, prev Snapshot) float64 {
	dt := s.ElapsedNS - prev.ElapsedNS
	if dt <= 0 {
		return 0
	}
	return float64(s.Counters[ct]-prev.Counters[ct]) / (float64(dt) / 1e9)
}

// jsonSnapshot is the wire form: named, zero-omitted counter and gauge
// maps instead of positional arrays, so reports stay readable and new
// counters never reshuffle old ones.
type jsonSnapshot struct {
	ElapsedNS int64             `json:"elapsed_ns"`
	Counters  map[string]uint64 `json:"counters,omitempty"`
	Gauges    map[string]uint64 `json:"gauges,omitempty"`
}

// MarshalJSON renders the snapshot with named counters/gauges, omitting
// zero values.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	js := jsonSnapshot{ElapsedNS: s.ElapsedNS}
	for i, v := range s.Counters {
		if v != 0 {
			if js.Counters == nil {
				js.Counters = make(map[string]uint64)
			}
			js.Counters[counterNames[i]] = v
		}
	}
	for i, v := range s.Gauges {
		if v != 0 {
			if js.Gauges == nil {
				js.Gauges = make(map[string]uint64)
			}
			js.Gauges[gaugeNames[i]] = v
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON parses the named wire form back into the positional
// arrays. Unknown names are ignored (forward compatibility with reports
// written by newer builds).
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	var js jsonSnapshot
	if err := json.Unmarshal(b, &js); err != nil {
		return err
	}
	*s = Snapshot{ElapsedNS: js.ElapsedNS}
	for n, v := range js.Counters {
		if i, ok := counterIndex[n]; ok {
			s.Counters[i] = v
		}
	}
	for n, v := range js.Gauges {
		if i, ok := gaugeIndex[n]; ok {
			s.Gauges[i] = v
		}
	}
	return nil
}

// EventKind names the structured progress event types.
type EventKind string

const (
	// EventText is a free-form progress line (the Config.Log adapter).
	EventText EventKind = "text"
	// EventRound marks the start of a synthesis prefix-expansion round.
	EventRound EventKind = "round"
	// EventSolution records a solution found during the search.
	EventSolution EventKind = "solution"
	// EventSolutionDropped records a solution rejected by trace-on
	// re-verification.
	EventSolutionDropped EventKind = "solution-dropped"
	// EventAbort records a run cut short: cancellation, deadline, or a
	// contained model-code panic. Cause carries the cancel cause or panic
	// value; State the offending state's rendered key for panics.
	EventAbort EventKind = "abort"
	// EventCandidatePanic records a synthesis candidate whose evaluation
	// panicked; the candidate is recorded as failed and the search
	// continues.
	EventCandidatePanic EventKind = "candidate-panic"
	// EventCheckpoint marks a committed level-boundary checkpoint (Depth
	// and States describe the snapshot).
	EventCheckpoint EventKind = "checkpoint"
	// EventResume marks a run seeded from a committed checkpoint.
	EventResume EventKind = "resume"
	// EventIORetry records one retried transient I/O failure in the spill
	// or checkpoint writers (Op names the operation, Round the attempt).
	EventIORetry EventKind = "io-retry"
)

// Event is one structured progress event. Numeric fields are populated
// per kind (Round/Holes/Patterns/Candidates for rounds, Solution/States
// for solutions); Text always carries the rendered human-readable line,
// so string-only consumers need no kind switch.
type Event struct {
	Kind       EventKind `json:"kind"`
	ElapsedNS  int64     `json:"elapsed_ns"`
	Round      int       `json:"round,omitempty"`
	Holes      int       `json:"holes,omitempty"`
	Patterns   int       `json:"patterns,omitempty"`
	Candidates uint64    `json:"candidates,omitempty"`
	Solution   string    `json:"solution,omitempty"`
	States     int       `json:"states,omitempty"`
	// Cause carries an abort's cancel cause or panic value; State the
	// offending state's rendered key (abort/candidate-panic); Depth the
	// checkpointed level (checkpoint/resume); Op the retried filesystem
	// operation (io-retry).
	Cause string `json:"cause,omitempty"`
	State string `json:"state,omitempty"`
	Depth int    `json:"depth,omitempty"`
	Op    string `json:"op,omitempty"`
	Text  string `json:"text"`
}
