package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"verc3/internal/statespace"
)

// TestSnapshotMonotonicUnderRace is the tear-freedom pin: worker
// goroutines increment and flush concurrently with a reader snapshotting
// in a tight loop, and every counter of every successive snapshot must be
// non-decreasing. Run under -race this also proves the staging/flush
// protocol is free of data races (plain staged writes are single-owner;
// publication is atomic).
func TestSnapshotMonotonicUnderRace(t *testing.T) {
	c := New()
	const writers = 8
	const perWriter = 50000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			for j := 0; j < perWriter; j++ {
				sw := w.BeginExpansion()
				sw.Mark()
				w.Inc(CStates)
				sw.Lap(PhaseEnumerate)
				w.Inc(CTransitions)
				w.Inc(CTransitions)
				if j%3 == 0 {
					w.Inc(CDuplicates)
				}
				sw.Done()
			}
			w.Flush()
		}()
	}
	readerDone := make(chan error, 1)
	go func() {
		prev := c.Snapshot()
		for {
			cur := c.Snapshot()
			for ct := Counter(0); ct < NumCounters; ct++ {
				if cur.Counters[ct] < prev.Counters[ct] {
					t.Errorf("counter %s decreased: %d -> %d", ct, prev.Counters[ct], cur.Counters[ct])
					readerDone <- nil
					return
				}
			}
			prev = cur
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	s := c.Snapshot()
	if got, want := s.Counters[CStates], uint64(writers*perWriter); got != want {
		t.Errorf("final states = %d, want %d", got, want)
	}
	if got, want := s.Counters[CTransitions], uint64(2*writers*perWriter); got != want {
		t.Errorf("final transitions = %d, want %d", got, want)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	w := c.NewWorker()
	if w != nil {
		t.Fatalf("nil collector returned non-nil worker")
	}
	w.Inc(CStates)
	w.Add(CStates, 3)
	w.Flush()
	w.Tick()
	sw := w.BeginExpansion()
	sw.Mark()
	sw.Lap(PhaseFire)
	sw.Done()
	c.Count(CStates, 1)
	c.SetGauge(GDepth, 1)
	c.ObservePhase(PhaseKey, time.Millisecond)
	c.MarkTimeline()
	c.Event(Event{Kind: EventText, Text: "x"})
	if s := c.Snapshot(); s.Counters[CStates] != 0 {
		t.Fatalf("nil collector snapshot non-zero")
	}
	if tl := c.Timeline(); tl != nil {
		t.Fatalf("nil collector timeline non-nil")
	}
	c.StartSampler(time.Millisecond, nil).Stop()
	var p *Progress
	p.Sample(Snapshot{}, Snapshot{})
	p.Logf("x")
	p.Clear()
}

func TestWorkerFlushCadence(t *testing.T) {
	c := New()
	w := c.NewWorker()
	for i := 0; i < flushEvery-1; i++ {
		w.BeginExpansion()
		w.Inc(CStates)
	}
	// One short of the cadence: nothing published yet beyond the flush at
	// op flushEvery (not reached), so the snapshot lags the staged count.
	if got := c.Snapshot().Counters[CStates]; got != 0 {
		t.Fatalf("pre-flush snapshot = %d, want 0 (staged)", got)
	}
	w.Flush()
	if got := c.Snapshot().Counters[CStates]; got != uint64(flushEvery-1) {
		t.Fatalf("post-flush snapshot = %d, want %d", got, flushEvery-1)
	}
}

func TestTimelineDecimation(t *testing.T) {
	c := New()
	w := c.NewWorker()
	for i := 0; i < 3*maxTimeline; i++ {
		w.Inc(CStates)
		w.Flush()
		c.MarkTimeline()
	}
	tl := c.Timeline()
	if len(tl) == 0 || len(tl) > maxTimeline {
		t.Fatalf("timeline length %d, want (0, %d]", len(tl), maxTimeline)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Counters[CStates] < tl[i-1].Counters[CStates] {
			t.Fatalf("timeline not monotone at %d", i)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)                     // bucket 1
	h.Observe(900 * time.Nanosecond) // 900ns: bits.Len64(900)=10
	h.Observe(time.Millisecond)
	hs := h.Snapshot()
	if hs.Count != 4 {
		t.Fatalf("count = %d, want 4", hs.Count)
	}
	sum := uint64(0)
	for _, n := range hs.Buckets {
		sum += n
	}
	if sum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", sum, hs.Count)
	}
	if hs.Buckets[0] != 1 || hs.Buckets[1] != 1 || hs.Buckets[10] != 1 {
		t.Fatalf("unexpected bucket layout: %v", hs.Buckets)
	}
	if hs.SumNS != 0+1+900+1000000 {
		t.Fatalf("sum_ns = %d", hs.SumNS)
	}
	// Far-out durations clamp into the last bucket instead of indexing
	// out of range.
	h.Observe(200 * time.Hour)
	if got := h.Snapshot().Buckets[HistBuckets-1]; got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var s Snapshot
	s.ElapsedNS = 12345
	s.Counters[CStates] = 7
	s.Counters[CRed] = 2
	s.Gauges[GDepth] = 9
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"states":7`) || !strings.Contains(string(b), `"ndfs_red":2`) {
		t.Fatalf("unexpected JSON: %s", b)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip mismatch: %+v != %+v", back, s)
	}
	// Unknown names are ignored, not errors (forward compatibility).
	var fwd Snapshot
	if err := json.Unmarshal([]byte(`{"elapsed_ns":1,"counters":{"from_the_future":3}}`), &fwd); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerFillsTimeline(t *testing.T) {
	c := New()
	var mu sync.Mutex
	samples := 0
	s := c.StartSampler(time.Millisecond, func(prev, cur Snapshot) {
		mu.Lock()
		samples++
		mu.Unlock()
		if cur.ElapsedNS < prev.ElapsedNS {
			t.Errorf("sampler time went backwards")
		}
	})
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	mu.Lock()
	n := samples
	mu.Unlock()
	if n == 0 {
		t.Fatalf("sampler never fired")
	}
	if len(c.Timeline()) == 0 {
		t.Fatalf("sampler did not mark the timeline")
	}
}

func TestProgressNonTTYPeriodicLines(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(&buf, false)
	var s Snapshot
	for i := 0; i < 2*nonTTYEvery; i++ {
		s.ElapsedNS += int64(100 * time.Millisecond)
		s.Counters[CStates] += 100
		prev := s
		p.Sample(prev, s)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("non-TTY progress printed %d lines over %d samples, want 2", lines, 2*nonTTYEvery)
	}
	if strings.Contains(buf.String(), "\r") {
		t.Fatalf("non-TTY progress used carriage returns")
	}
}

func TestProgressTTYRepaintAndLogf(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(&buf, true)
	var s Snapshot
	s.Counters[CStates] = 10
	s.ElapsedNS = int64(time.Second)
	p.Sample(Snapshot{}, s)
	p.Logf("hello %d", 42)
	p.Clear()
	out := buf.String()
	if !strings.HasPrefix(out, "\r\x1b[K") {
		t.Fatalf("TTY progress did not repaint in place: %q", out)
	}
	if !strings.Contains(out, "hello 42\n") {
		t.Fatalf("Logf line missing: %q", out)
	}
	// The log line must come after an erase, never mid-status-line.
	if i := strings.Index(out, "hello 42"); !strings.HasSuffix(out[:i], "\r\x1b[K") {
		t.Fatalf("Logf did not erase the status line first: %q", out)
	}
}

func TestRenderLineSections(t *testing.T) {
	var s Snapshot
	s.ElapsedNS = int64(2 * time.Second)
	s.Counters[CStates] = 5440
	s.Gauges[GDepth] = 37
	line := renderLine(s, 2720)
	for _, want := range []string{"states 5440", "depth 37"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "ndfs") || strings.Contains(line, "| round") {
		t.Errorf("idle sections rendered: %q", line)
	}
	s.Gauges[GMaxStates] = 10880
	s.Counters[CBlue] = 3
	s.Counters[CEvaluated] = 12
	s.Gauges[GHoles] = 4
	line = renderLine(s, 2720)
	for _, want := range []string{"cap 50%", "ndfs 3+0red", "eval 12", "holes 4"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	c := New()
	w := c.NewWorker()
	w.Add(CStates, 41)
	w.Flush()
	c.SetGauge(GDepth, 7)
	c.ObservePhase(PhaseFire, 3*time.Microsecond)
	srv := httptest.NewServer(MetricsHandler(c))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	// Every counter family must be served, zero or not.
	for _, n := range counterNames {
		if !strings.Contains(text, "verc3_"+n+"_total") {
			t.Errorf("/metrics missing counter family %s", n)
		}
	}
	for _, n := range gaugeNames {
		if !strings.Contains(text, "verc3_"+n) {
			t.Errorf("/metrics missing gauge family %s", n)
		}
	}
	for _, want := range []string{
		"verc3_states_total 41",
		"verc3_depth 7",
		`verc3_phase_seconds_count{phase="fire"} 1`,
		`verc3_phase_seconds_bucket{phase="fire",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Snapshot Snapshot                     `json:"snapshot"`
		Phases   map[string]HistogramSnapshot `json:"phases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Snapshot.Counters[CStates] != 41 {
		t.Errorf("json snapshot states = %d, want 41", doc.Snapshot.Counters[CStates])
	}
	if doc.Phases["fire"].Count != 1 {
		t.Errorf("json phases fire count = %d, want 1", doc.Phases["fire"].Count)
	}
}

func TestReportWriteReadValidate(t *testing.T) {
	c := New()
	w := c.NewWorker()
	for i := 0; i < 5; i++ {
		w.Add(CStates, 10)
		w.Flush()
		c.MarkTimeline()
	}
	c.ObservePhase(PhaseInsert, time.Microsecond)
	c.Event(Event{Kind: EventRound, Round: 1, Text: "round 1"})

	r := NewReport("verc3-test", "msi-complete")
	r.Verdict = "success"
	r.Exact = true
	r.Space = statespace.Stats{States: 50, Transitions: 200}
	r.Options = map[string]string{"symmetry": "true"}
	r.Finish(c)

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "verc3-test" || back.Verdict != "success" || back.Space.States != 50 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if len(back.Timeline) != 5 {
		t.Fatalf("timeline length %d, want 5", len(back.Timeline))
	}
	if back.Final.Counters[CStates] != 50 {
		t.Fatalf("final states = %d, want 50", back.Final.Counters[CStates])
	}
	if len(back.Events) != 1 || back.Events[0].Kind != EventRound {
		t.Fatalf("events = %+v", back.Events)
	}

	// Corrupt variants must be rejected.
	bad := *r
	bad.Version = ReportVersion + 1
	if err := bad.Validate(); err == nil {
		t.Error("version mismatch accepted")
	}
	bad = *r
	bad.Verdict = ""
	if err := bad.Validate(); err == nil {
		t.Error("missing verdict accepted")
	}
	bad = *r
	bad.Timeline = append([]Snapshot(nil), r.Timeline...)
	bad.Timeline[2].Counters[CStates] = 0 // breaks monotonicity
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone timeline accepted")
	}
	bad = *r
	bad.Phases = map[string]HistogramSnapshot{"no-such-phase": {}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown phase accepted")
	}
	bad = *r
	bad.Phases = map[string]HistogramSnapshot{"insert": {Count: 3, Buckets: []uint64{1}}}
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent histogram accepted")
	}
}

func TestEventLogCap(t *testing.T) {
	c := New()
	for i := 0; i < maxEvents+10; i++ {
		c.Event(Event{Kind: EventText, Text: "x"})
	}
	ev, dropped := c.Events()
	if len(ev) != maxEvents {
		t.Fatalf("retained %d events, want %d", len(ev), maxEvents)
	}
	if dropped != 10 {
		t.Fatalf("dropped = %d, want 10", dropped)
	}
}
