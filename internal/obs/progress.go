package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Sampler is the reader goroutine: it snapshots the collector on a fixed
// interval, appends each snapshot to the timeline, and hands (prev, cur)
// pairs to an optional callback (the -progress renderer). Stop is
// synchronous — after it returns no further callback runs — and
// idempotent.
type Sampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// DefaultSampleInterval is the sampler cadence used by the CLIs: ~10 Hz
// keeps a TTY status line lively and bounds the timeline-plus-callback
// cost to a handful of slot sweeps per second.
const DefaultSampleInterval = 100 * time.Millisecond

// StartSampler launches the reader goroutine. interval <= 0 selects
// DefaultSampleInterval; onSample may be nil (timeline-only sampling).
// Nil-safe: a nil Collector returns a nil Sampler, whose Stop no-ops.
func (c *Collector) StartSampler(interval time.Duration, onSample func(prev, cur Snapshot)) *Sampler {
	if c == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		prev := c.Snapshot()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				cur := c.Snapshot()
				c.MarkTimeline()
				if onSample != nil {
					onSample(prev, cur)
				}
				prev = cur
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for the goroutine to exit.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Progress renders a live status line from sampler snapshots. On a TTY it
// rewrites one line in place (carriage return + erase); on anything else
// it degrades to one full line every nonTTYEvery samples, so piped and CI
// output stays readable. Logf interleaves log lines cleanly with the
// status line, and Clear erases it before the final summary prints.
// All methods are safe for concurrent use and no-op on a nil receiver.
type Progress struct {
	mu     sync.Mutex
	w      io.Writer
	tty    bool
	every  int
	n      int
	rate   float64 // EWMA states/sec
	seeded bool
	shown  bool // a TTY status line is currently on screen
}

// nonTTYEvery is the non-TTY line cadence: one line per this many samples
// (2 s at the default interval).
const nonTTYEvery = 20

// ewmaAlpha is the states/sec smoothing factor per sample.
const ewmaAlpha = 0.3

// NewProgress builds a renderer writing to w, detecting whether w is a
// terminal. The CLIs pass os.Stderr so the status line never mixes into
// piped stdout.
func NewProgress(w io.Writer) *Progress {
	return newProgress(w, isTTY(w))
}

// newProgress is the constructor with an explicit TTY mode, for tests.
func newProgress(w io.Writer, tty bool) *Progress {
	return &Progress{w: w, tty: tty, every: nonTTYEvery}
}

// isTTY reports whether w is a character device.
func isTTY(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

// Sample consumes one sampler (prev, cur) pair: it updates the EWMA rate
// and repaints (TTY) or periodically prints (non-TTY) the status line.
func (p *Progress) Sample(prev, cur Snapshot) {
	if p == nil {
		return
	}
	inst := cur.Rate(CStates, prev)
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.seeded {
		p.rate, p.seeded = inst, true
	} else {
		p.rate = ewmaAlpha*inst + (1-ewmaAlpha)*p.rate
	}
	line := renderLine(cur, p.rate)
	if p.tty {
		fmt.Fprintf(p.w, "\r\x1b[K%s", line)
		p.shown = true
		return
	}
	p.n++
	if p.n%p.every == 1 {
		fmt.Fprintln(p.w, line)
	}
}

// Logf writes a log line without tearing the status line: on a TTY the
// status line is erased first and repainted on the next sample.
func (p *Progress) Logf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tty && p.shown {
		fmt.Fprint(p.w, "\r\x1b[K")
		p.shown = false
	}
	fmt.Fprintf(p.w, format+"\n", args...)
}

// Clear erases the TTY status line (a no-op otherwise); the CLIs call it
// before printing the final summary so the two never overlap.
func (p *Progress) Clear() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tty && p.shown {
		fmt.Fprint(p.w, "\r\x1b[K")
		p.shown = false
	}
}

// renderLine formats one status line from a snapshot and the smoothed
// states/sec rate. Exploration figures always print; spill, pool, NDFS,
// cap and synthesis sections appear only when live.
func renderLine(s Snapshot, rate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s  states %s (%s/s) depth %d frontier %s visited %s",
		time.Duration(s.ElapsedNS).Round(100*time.Millisecond),
		humanCount(s.Counters[CStates]), humanCount(uint64(rate)),
		s.Gauges[GDepth], humanCount(s.Gauges[GFrontier]),
		humanBytes(int64(s.Gauges[GVisitedBytes])))
	if max := s.Gauges[GMaxStates]; max > 0 {
		fmt.Fprintf(&b, " cap %.0f%%", 100*float64(s.Counters[CStates])/float64(max))
	}
	if sp := s.Gauges[GSpilledBytes]; sp > 0 {
		fmt.Fprintf(&b, " spilled %s/%d", humanBytes(int64(sp)), s.Gauges[GSpillRuns])
	}
	if h, m := s.Gauges[GPoolHits], s.Gauges[GPoolMisses]; h+m > 0 {
		fmt.Fprintf(&b, " pool %.1f%%", 100*float64(h)/float64(h+m))
	}
	if blue := s.Counters[CBlue]; blue > 0 {
		fmt.Fprintf(&b, " ndfs %s+%sred", humanCount(blue), humanCount(s.Counters[CRed]))
	}
	if ev := s.Counters[CEvaluated]; ev > 0 || s.Gauges[GHoles] > 0 {
		fmt.Fprintf(&b, " | round %d eval %s skip %s pat %d sol %d holes %d",
			s.Gauges[GRound], humanCount(ev), humanCount(s.Counters[CSkipped]),
			s.Gauges[GPatterns], s.Counters[CSolutions], s.Gauges[GHoles])
		if c := s.Gauges[GCandidates]; c > 0 {
			fmt.Fprintf(&b, "/%s", humanCount(c))
		}
	}
	return b.String()
}

// humanCount renders a count with a short magnitude suffix.
func humanCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// humanBytes renders a byte count with a binary unit (statespace has its
// own unexported twin; duplicated to keep obs leaf-light).
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
