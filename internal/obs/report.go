package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"verc3/internal/statespace"
)

// ReportVersion is the run-report schema version. Bump it on any change a
// reader could misparse; Validate rejects versions it does not know so
// downstream tooling (EXPERIMENTS.md regeneration, the CI artifact check,
// the future verc3d job store) fails loudly instead of reading garbage.
// Version 2 added the abort/resume fields (Aborted, AbortCause, Resumed)
// and the failure-model event kinds; version-1 reports — which simply
// lack them — are still accepted by Validate.
const ReportVersion = 2

// minReportVersion is the oldest schema Validate still accepts.
const minReportVersion = 1

// Report is the machine-readable end-of-run record written by the CLIs'
// -report flag: environment, effective options, verdict, the full
// statespace.Stats profile, the final telemetry snapshot, the snapshot
// timeline, the per-phase timing histograms, and the structured event
// log. One report is one run; verc3-report validates and summarizes them.
type Report struct {
	Version    int       `json:"version"`
	Tool       string    `json:"tool"`
	System     string    `json:"system"`
	GoVersion  string    `json:"go"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Start      time.Time `json:"start"`
	ElapsedNS  int64     `json:"elapsed_ns"`
	// Options records every flag's effective value (flag.VisitAll), so a
	// report is reproducible without the invoking command line.
	Options map[string]string `json:"options,omitempty"`
	Verdict string            `json:"verdict"`
	Exact   bool              `json:"exact"`
	// Aborted reports that the run was cut short — cancelled, timed out,
	// or stopped by a contained panic — and its stats are a partial view.
	// AbortCause carries the rendered cancel cause or panic value.
	Aborted    bool   `json:"aborted,omitempty"`
	AbortCause string `json:"abort_cause,omitempty"`
	// Resumed reports that the run was seeded from a committed checkpoint
	// rather than the system's initial states.
	Resumed bool `json:"resumed,omitempty"`
	// Space is the run's full memory/exploration profile — for synthesis
	// runs, the engine's cross-dispatch aggregate.
	Space    statespace.Stats             `json:"space"`
	Final    Snapshot                     `json:"final"`
	Timeline []Snapshot                   `json:"timeline,omitempty"`
	Phases   map[string]HistogramSnapshot `json:"phases,omitempty"`
	Events   []Event                      `json:"events,omitempty"`
	// EventsDropped counts events lost to the retention cap.
	EventsDropped int `json:"events_dropped,omitempty"`
}

// NewReport starts a report for one tool run.
func NewReport(tool, system string) *Report {
	return &Report{
		Version:    ReportVersion,
		Tool:       tool,
		System:     system,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Start:      time.Now(),
	}
}

// Finish folds the collector's end state into the report: elapsed time,
// final snapshot, timeline, phase histograms and events. Callers flush
// all workers first (the drivers do, at run end), so Final is exact.
func (r *Report) Finish(c *Collector) {
	r.ElapsedNS = c.Elapsed().Nanoseconds()
	r.Final = c.Snapshot()
	r.Timeline = c.Timeline()
	r.Phases = c.Phases()
	r.Events, r.EventsDropped = c.Events()
}

// Write validates the report and writes it as indented JSON — a report
// that would not round-trip through Validate never lands on disk.
func (r *Report) Write(path string) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("obs: refusing to write invalid report: %w", err)
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport parses and validates a report file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Validate checks the report against its schema: version match, required
// identity fields, non-negative elapsed time, a timeline whose elapsed
// times and counters are monotone non-decreasing, a final snapshot that
// dominates the last timeline entry, known phase names, and internally
// consistent histograms (count equals the bucket sum).
func (r *Report) Validate() error {
	if r.Version < minReportVersion || r.Version > ReportVersion {
		return fmt.Errorf("report version %d, want %d..%d", r.Version, minReportVersion, ReportVersion)
	}
	if r.Tool == "" {
		return fmt.Errorf("report has no tool")
	}
	if r.Verdict == "" {
		return fmt.Errorf("report has no verdict")
	}
	if r.AbortCause != "" && !r.Aborted {
		return fmt.Errorf("report has abort_cause %q without aborted", r.AbortCause)
	}
	if r.Aborted && r.Verdict == "success" {
		return fmt.Errorf("report is aborted yet claims verdict %q", r.Verdict)
	}
	if r.ElapsedNS < 0 {
		return fmt.Errorf("negative elapsed_ns %d", r.ElapsedNS)
	}
	prev := Snapshot{}
	for i, s := range r.Timeline {
		if s.ElapsedNS < prev.ElapsedNS {
			return fmt.Errorf("timeline[%d]: elapsed_ns %d < previous %d", i, s.ElapsedNS, prev.ElapsedNS)
		}
		for ct := Counter(0); ct < NumCounters; ct++ {
			if s.Counters[ct] < prev.Counters[ct] {
				return fmt.Errorf("timeline[%d]: counter %s decreased (%d < %d)",
					i, ct, s.Counters[ct], prev.Counters[ct])
			}
		}
		prev = s
	}
	for ct := Counter(0); ct < NumCounters; ct++ {
		if r.Final.Counters[ct] < prev.Counters[ct] {
			return fmt.Errorf("final: counter %s below last timeline entry (%d < %d)",
				ct, r.Final.Counters[ct], prev.Counters[ct])
		}
	}
	for name, hs := range r.Phases {
		known := false
		for p := Phase(0); p < NumPhases; p++ {
			if p.String() == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("phases: unknown phase %q", name)
		}
		if len(hs.Buckets) > HistBuckets {
			return fmt.Errorf("phases[%s]: %d buckets, max %d", name, len(hs.Buckets), HistBuckets)
		}
		sum := uint64(0)
		for _, n := range hs.Buckets {
			sum += n
		}
		if sum != hs.Count {
			return fmt.Errorf("phases[%s]: bucket sum %d != count %d", name, sum, hs.Count)
		}
	}
	return nil
}
