package spec

import (
	"fmt"
	"sort"
	"strings"

	"verc3/internal/dsl"
	"verc3/internal/ts"
)

// Model is a compiled spec: the validated layout plus closures for every
// rule and property, ready to instantiate as ts.Systems. A Model is
// immutable and safe for concurrent use; each System() call builds a fresh
// system with its own successor pool.
type Model struct {
	spec *Spec
	path string // source file, when loaded from one ("" otherwise)
	lay  *layout

	rules  []crule
	invs   []cprop
	goals  []cprop
	live   []clive
	fair   []cfair
	quiet  valFn
	sketch bool
	holes  map[string][]string // hole name → candidate names
}

type stmtFn func(e *rtenv, env *ts.Env) error

type crule struct {
	name       string
	perProcess bool
	guard      valFn // nil = always enabled
	action     []stmtFn
}

type cprop struct {
	name       string
	perProcess bool
	fn         valFn
}

type clive struct {
	name       string
	perProcess bool
	kind       ts.LivenessKind
	fair       bool
	p, q       valFn
}

type cfair struct {
	name       string
	perProcess bool
	prefix     string
	enabled    valFn
}

// Name returns the system name.
func (m *Model) Name() string { return m.spec.Name }

// Sketch reports whether the model contains synthesis holes (any choose
// statement) — sketches can only be explored under a synthesis chooser.
func (m *Model) Sketch() bool { return m.sketch }

// Processes returns the declared process count.
func (m *Model) Processes() int { return m.lay.n }

// Path returns the source file the model was loaded from ("" when parsed
// from bytes).
func (m *Model) Path() string { return m.path }

// Holes lists the hole names of a sketch in sorted order.
func (m *Model) Holes() []string {
	out := make([]string, 0, len(m.holes))
	for h := range m.holes {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Spec returns the underlying document (callers must not mutate it).
func (m *Model) Spec() *Spec { return m.spec }

var reserved = map[string]bool{
	"i": true, "N": true, "none": true, "true": true, "false": true,
	"forall": true, "exists": true, "count": true,
}

func isIdentName(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return false
		}
	}
	return true
}

// checkNamePattern validates a display-name pattern: per-process names are
// fmt patterns with exactly one %d, plain names carry no verbs at all.
func checkNamePattern(path, name string, perProcess bool) error {
	if name == "" {
		return specErrf(path, "missing name")
	}
	verbs := strings.Count(name, "%")
	if perProcess {
		if verbs != 1 || !strings.Contains(name, "%d") {
			return specErrf(path, "per-process name %q must contain exactly one %%d", name)
		}
	} else if verbs != 0 {
		return specErrf(path, "name %q must not contain %% (set per_process to parameterize)", name)
	}
	return nil
}

// maxProcesses bounds the declared process count. Explicit-state
// exploration is hopeless orders of magnitude below this; the bound exists
// so a malformed or adversarial spec cannot make the compiler itself
// allocate per-process structures without limit.
const maxProcesses = 1024

// Compile validates a decoded Spec and compiles it to a Model. All errors
// are *SpecError values carrying the path of the offending element.
func Compile(s *Spec) (*Model, error) {
	if s.Format != FormatV1 {
		return nil, specErrf("format", "unsupported format %q (this loader reads %q)", s.Format, FormatV1)
	}
	if s.Name == "" {
		return nil, specErrf("name", "missing system name")
	}
	if s.Processes < 0 {
		return nil, specErrf("processes", "negative process count %d", s.Processes)
	}
	if s.Processes > maxProcesses {
		return nil, specErrf("processes", "process count %d exceeds the format limit %d", s.Processes, maxProcesses)
	}
	if s.Symmetric && s.Processes < 1 {
		return nil, specErrf("symmetric", "a symmetric model needs processes >= 1")
	}

	lay, err := buildLayout(s)
	if err != nil {
		return nil, err
	}
	m := &Model{spec: s, lay: lay, holes: map[string][]string{}}
	c := &compiler{lay: lay}

	if err := compileInits(s, lay, c); err != nil {
		return nil, err
	}

	if len(s.Rules) == 0 {
		return nil, specErrf("rules", "empty (a system needs at least one rule)")
	}
	for ri := range s.Rules {
		r := &s.Rules[ri]
		path := fmt.Sprintf("rules[%d]", ri)
		if err := checkNamePattern(path+".name", r.Name, r.PerProcess); err != nil {
			return nil, err
		}
		if r.PerProcess && lay.n < 1 {
			return nil, specErrf(path, "per-process rule needs processes >= 1")
		}
		c.allowI = r.PerProcess
		cr := crule{name: r.Name, perProcess: r.PerProcess}
		if r.Guard != "" {
			if cr.guard, err = c.compileBool(path+".guard", r.Guard); err != nil {
				return nil, err
			}
		}
		if len(r.Action) == 0 {
			return nil, specErrf(path+".action", "empty (a rule must change something)")
		}
		if cr.action, err = m.compileStmts(c, path+".action", r.Action); err != nil {
			return nil, err
		}
		m.rules = append(m.rules, cr)
	}

	compileProps := func(field string, props []PropSpec) ([]cprop, error) {
		var out []cprop
		for pi := range props {
			p := &props[pi]
			path := fmt.Sprintf("%s[%d]", field, pi)
			if err := checkNamePattern(path+".name", p.Name, p.PerProcess); err != nil {
				return nil, err
			}
			c.allowI = p.PerProcess
			fn, err := c.compileBool(path+".expr", p.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, cprop{name: p.Name, perProcess: p.PerProcess, fn: fn})
		}
		return out, nil
	}
	if m.invs, err = compileProps("invariants", s.Invariants); err != nil {
		return nil, err
	}
	if m.goals, err = compileProps("goals", s.Goals); err != nil {
		return nil, err
	}

	for li := range s.Liveness {
		l := &s.Liveness[li]
		path := fmt.Sprintf("liveness[%d]", li)
		if err := checkNamePattern(path+".name", l.Name, l.PerProcess); err != nil {
			return nil, err
		}
		cl := clive{name: l.Name, perProcess: l.PerProcess, fair: l.Fair}
		switch l.Kind {
		case "eventually_always":
			cl.kind = ts.EventuallyAlways
			if l.Q != "" {
				return nil, specErrf(path+".q", `only "leads_to" goals take a q predicate`)
			}
		case "leads_to":
			cl.kind = ts.LeadsTo
			if l.Q == "" {
				return nil, specErrf(path+".q", `"leads_to" goals need a q predicate`)
			}
		default:
			return nil, specErrf(path+".kind", `unknown kind %q (want "eventually_always" or "leads_to")`, l.Kind)
		}
		c.allowI = l.PerProcess
		if cl.p, err = c.compileBool(path+".p", l.P); err != nil {
			return nil, err
		}
		if l.Q != "" {
			if cl.q, err = c.compileBool(path+".q", l.Q); err != nil {
				return nil, err
			}
		}
		m.live = append(m.live, cl)
	}

	for fi := range s.Fairness {
		f := &s.Fairness[fi]
		path := fmt.Sprintf("fairness[%d]", fi)
		if err := checkNamePattern(path+".name", f.Name, f.PerProcess); err != nil {
			return nil, err
		}
		if f.TakenPrefix == "" {
			return nil, specErrf(path+".taken_prefix", "missing rule-name prefix")
		}
		if verbs := strings.Count(f.TakenPrefix, "%"); verbs > 1 ||
			(verbs == 1 && (!f.PerProcess || !strings.Contains(f.TakenPrefix, "%d"))) {
			return nil, specErrf(path+".taken_prefix", "prefix %q may contain one %%d, and only with per_process", f.TakenPrefix)
		}
		c.allowI = f.PerProcess
		enabled, err := c.compileBool(path+".enabled", f.Enabled)
		if err != nil {
			return nil, err
		}
		m.fair = append(m.fair, cfair{name: f.Name, perProcess: f.PerProcess, prefix: f.TakenPrefix, enabled: enabled})
	}

	if s.Quiescent != "" {
		c.allowI = false
		if m.quiet, err = c.compileBool("quiescent", s.Quiescent); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// buildLayout validates the variable declarations and assigns the slot
// layout and key-encoding tables.
func buildLayout(s *Spec) (*layout, error) {
	if len(s.Vars) == 0 {
		return nil, specErrf("vars", "empty (a system needs state)")
	}
	lay := &layout{name: s.Name, n: s.Processes, symmetric: s.Symmetric, enumVals: map[string]enumVal{}}
	seen := map[string]string{} // identifier → first declaration path
	claim := func(path, name string) error {
		if !isIdentName(name) {
			return specErrf(path, "bad identifier %q", name)
		}
		if reserved[name] {
			return specErrf(path, "%q is a reserved word", name)
		}
		if prev, dup := seen[name]; dup {
			return specErrf(path, "%q already declared at %s", name, prev)
		}
		seen[name] = path
		return nil
	}
	for vi := range s.Vars {
		v := &s.Vars[vi]
		path := fmt.Sprintf("vars[%d]", vi)
		if err := claim(path+".name", v.Name); err != nil {
			return nil, err
		}
		if v.Array && lay.n < 1 {
			return nil, specErrf(path+".array", "a per-process array needs processes >= 1")
		}
		info := varInfo{name: v.Name, array: v.Array}
		checkUnused := func() error {
			switch {
			case v.Min != nil || v.Max != nil:
				return specErrf(path, `min/max are only for type "int"`)
			case len(v.Values) > 0:
				return specErrf(path+".values", `values are only for type "enum"`)
			case v.Nullable:
				return specErrf(path+".nullable", `nullable is only for type "pid"`)
			}
			return nil
		}
		switch v.Type {
		case "bool":
			if err := checkUnused(); err != nil {
				return nil, err
			}
			info.k, info.lo, info.hi = kBool, 0, 1
		case "int":
			if len(v.Values) > 0 || v.Nullable {
				return nil, specErrf(path, `values/nullable are not for type "int"`)
			}
			if v.Min == nil || v.Max == nil {
				return nil, specErrf(path, `type "int" needs min and max`)
			}
			if *v.Min > *v.Max {
				return nil, specErrf(path, "min %d > max %d", *v.Min, *v.Max)
			}
			if *v.Min < -1<<30 || *v.Max > 1<<30 {
				return nil, specErrf(path, "range [%d,%d] too large", *v.Min, *v.Max)
			}
			info.k, info.lo, info.hi = kInt, int32(*v.Min), int32(*v.Max)
		case "enum":
			if v.Min != nil || v.Max != nil || v.Nullable {
				return nil, specErrf(path, `min/max/nullable are not for type "enum"`)
			}
			if len(v.Values) == 0 {
				return nil, specErrf(path+".values", `type "enum" needs values`)
			}
			info.k, info.enum = kEnum, len(lay.enums)
			for oi, val := range v.Values {
				if err := claim(fmt.Sprintf("%s.values[%d]", path, oi), val); err != nil {
					return nil, err
				}
				lay.enumVals[val] = enumVal{enum: info.enum, ordinal: oi}
			}
			lay.enums = append(lay.enums, v.Values)
			info.lo, info.hi = 0, int32(len(v.Values)-1)
		case "pid":
			if v.Min != nil || v.Max != nil || len(v.Values) > 0 {
				return nil, specErrf(path, `min/max/values are not for type "pid"`)
			}
			if lay.n < 1 {
				return nil, specErrf(path, `type "pid" needs processes >= 1`)
			}
			info.k, info.hi = kPid, int32(lay.n-1)
			if v.Nullable {
				info.lo = pidNone
			}
		default:
			return nil, specErrf(path+".type", `unknown type %q (want "bool", "int", "enum" or "pid")`, v.Type)
		}
		lay.vars = append(lay.vars, info)
	}
	lay.finalize()
	return lay, nil
}

// compileInits evaluates each variable's initial-value expression (a
// constant) and records it in the layout.
func compileInits(s *Spec, lay *layout, c *compiler) error {
	c.allowI = false
	for vi := range s.Vars {
		v := &s.Vars[vi]
		info := &lay.vars[vi]
		path := fmt.Sprintf("vars[%d].init", vi)
		if v.Init == "" {
			switch info.k {
			case kInt:
				info.init = info.lo
			case kPid:
				if v.Nullable {
					info.init = pidNone
				}
			}
			continue
		}
		ce, err := c.compileString(path, v.Init)
		if err != nil {
			return err
		}
		if !ce.isConst {
			return specErrf(path, "initial value %q is not a constant expression", v.Init)
		}
		switch info.k {
		case kBool:
			if ce.typ.k != kBool {
				return specErrf(path, "initial value has type %s, want bool", ce.typ.describe(lay))
			}
		case kEnum:
			if ce.typ.k != kEnum || ce.typ.enum != info.enum {
				return specErrf(path, "initial value has type %s, want enum(%s)", ce.typ.describe(lay), strings.Join(lay.enums[info.enum], "|"))
			}
		default:
			if !ce.typ.numeric() {
				return specErrf(path, "initial value has type %s, want %s", ce.typ.describe(lay), info.k)
			}
			if ce.cval < int64(info.lo) || ce.cval > int64(info.hi) {
				return specErrf(path, "initial value %d out of range [%d,%d]", ce.cval, info.lo, info.hi)
			}
		}
		info.init = int32(ce.cval)
	}
	return nil
}

// compileStmts compiles an action statement list, registering choose holes.
func (m *Model) compileStmts(c *compiler, path string, stmts []Stmt) ([]stmtFn, error) {
	fns := make([]stmtFn, 0, len(stmts))
	for si := range stmts {
		fn, err := m.compileStmt(c, fmt.Sprintf("%s[%d]", path, si), &stmts[si])
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	return fns, nil
}

func runStmts(fns []stmtFn, e *rtenv, env *ts.Env) error {
	for _, f := range fns {
		if err := f(e, env); err != nil {
			return err
		}
	}
	return nil
}

func (m *Model) compileStmt(c *compiler, path string, s *Stmt) (stmtFn, error) {
	forms := 0
	if s.Set != "" {
		forms++
	}
	if s.If != nil {
		forms++
	}
	if s.Choose != nil {
		forms++
	}
	if forms != 1 {
		return nil, specErrf(path, "a statement is exactly one of an assignment string, an if, or a choose")
	}
	switch {
	case s.Set != "":
		a, err := c.compileAssign(path, s.Set)
		if err != nil {
			return nil, err
		}
		return func(e *rtenv, _ *ts.Env) error {
			v := a.val(e)
			if a.check != nil {
				if err := a.check(v); err != nil {
					return err
				}
			}
			e.s.vals[a.slot(e)] = int32(v)
			return nil
		}, nil

	case s.If != nil:
		cond, err := c.compileBool(path+".if", s.If.Cond)
		if err != nil {
			return nil, err
		}
		then, err := m.compileStmts(c, path+".then", s.If.Then)
		if err != nil {
			return nil, err
		}
		els, err := m.compileStmts(c, path+".else", s.If.Else)
		if err != nil {
			return nil, err
		}
		return func(e *rtenv, env *ts.Env) error {
			if cond(e) != 0 {
				return runStmts(then, e, env)
			}
			return runStmts(els, e, env)
		}, nil

	default:
		ch := s.Choose
		if ch.Hole == "" {
			return nil, specErrf(path+".choose", "missing hole name")
		}
		if len(ch.Among) < 2 {
			return nil, specErrf(path+".among", "a hole needs at least two candidates")
		}
		names := make([]string, len(ch.Among))
		bodies := make([][]stmtFn, len(ch.Among))
		seen := map[string]bool{}
		for ci := range ch.Among {
			cand := &ch.Among[ci]
			cpath := fmt.Sprintf("%s.among[%d]", path, ci)
			if cand.Name == "" {
				return nil, specErrf(cpath+".name", "missing candidate name")
			}
			if seen[cand.Name] {
				return nil, specErrf(cpath+".name", "duplicate candidate %q", cand.Name)
			}
			seen[cand.Name] = true
			names[ci] = cand.Name
			body, err := m.compileStmts(c, cpath+".do", cand.Do)
			if err != nil {
				return nil, err
			}
			bodies[ci] = body
		}
		if prev, ok := m.holes[ch.Hole]; ok {
			if len(prev) != len(names) || !equalStrings(prev, names) {
				return nil, specErrf(path+".among", "hole %q previously declared candidates {%s}, here {%s} — all sites of a hole must agree",
					ch.Hole, strings.Join(prev, ", "), strings.Join(names, ", "))
			}
		} else {
			m.holes[ch.Hole] = names
		}
		m.sketch = true
		hole := ch.Hole
		return func(e *rtenv, env *ts.Env) error {
			idx, err := env.Choose(hole, names)
			if err != nil {
				return err
			}
			return runStmts(bodies[idx], e, env)
		}, nil
	}
}

func equalStrings(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stateLike is the constraint the generic system builder instantiates over:
// the two concrete state types (plain and symmetric).
type stateLike interface {
	dsl.Mutable
	specCore
}

// System instantiates the model as a fresh ts.System on the dsl Builder.
// Symmetric models are built over symState (which offers ts.Permutable);
// plain models over specState, so the checker's capability probing sees
// exactly what the spec declared.
func (m *Model) System() ts.System {
	if m.lay.symmetric {
		return buildSys[*symState](m, &symState{*m.lay.newState()})
	}
	return buildSys[*specState](m, m.lay.newState())
}

func buildSys[S stateLike](m *Model, init S) ts.System {
	b := dsl.NewBuilder[S](m.lay.name, init)
	for ri := range m.rules {
		r := &m.rules[ri]
		if r.perProcess {
			var guard func(S, int) bool
			if r.guard != nil {
				g := r.guard
				guard = func(s S, i int) bool {
					e := rtenv{s: s.core(), i: int64(i)}
					return g(&e) != 0
				}
			}
			action := r.action
			b.RuleSet(m.lay.n, r.name, guard, func(s S, i int, env *ts.Env) error {
				e := rtenv{s: s.core(), i: int64(i)}
				return runStmts(action, &e, env)
			})
		} else {
			var guard func(S) bool
			if r.guard != nil {
				g := r.guard
				guard = func(s S) bool {
					e := rtenv{s: s.core(), i: -1}
					return g(&e) != 0
				}
			}
			action := r.action
			b.Rule(r.name, guard, func(s S, env *ts.Env) error {
				e := rtenv{s: s.core(), i: -1}
				return runStmts(action, &e, env)
			})
		}
	}

	pred := func(fn valFn, i int64) func(S) bool {
		return func(s S) bool {
			e := rtenv{s: s.core(), i: i}
			return fn(&e) != 0
		}
	}
	expand := func(perProcess bool, emit func(i int64, inst func(string) string)) {
		if perProcess {
			for i := 0; i < m.lay.n; i++ {
				i := int64(i)
				emit(i, func(pat string) string { return fmt.Sprintf(pat, i) })
			}
		} else {
			emit(-1, func(pat string) string { return pat })
		}
	}
	for _, p := range m.invs {
		p := p
		expand(p.perProcess, func(i int64, inst func(string) string) {
			b.Invariant(inst(p.name), pred(p.fn, i))
		})
	}
	for _, p := range m.goals {
		p := p
		expand(p.perProcess, func(i int64, inst func(string) string) {
			b.Goal(inst(p.name), pred(p.fn, i))
		})
	}
	for _, l := range m.live {
		l := l
		expand(l.perProcess, func(i int64, inst func(string) string) {
			if l.kind == ts.EventuallyAlways {
				b.EventuallyAlways(inst(l.name), l.fair, pred(l.p, i))
			} else {
				b.LeadsTo(inst(l.name), l.fair, pred(l.p, i), pred(l.q, i))
			}
		})
	}
	for _, f := range m.fair {
		f := f
		expand(f.perProcess, func(i int64, inst func(string) string) {
			prefix := f.prefix
			if strings.Contains(prefix, "%d") {
				prefix = inst(prefix)
			}
			b.Fair(inst(f.name), pred(f.enabled, i), func(rule string) bool {
				return strings.HasPrefix(rule, prefix)
			})
		})
	}
	if m.quiet != nil {
		b.Quiescent(pred(m.quiet, -1))
	}
	return b.System()
}
