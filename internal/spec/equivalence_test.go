package spec_test

// Differential tests pinning spec-loaded systems to their hand-written zoo
// twins: every committed spec under examples/specs must explore the exact
// same state space — verdict, state count, transition count, depth, wildcard
// aborts, and the NDFS liveness counters — across both drivers and the
// {flat, spill} visited backends. This is the contract that lets the spec
// frontend replace compiled-in models without changing a single reported
// number. The CI workflow runs everything matching TestSpec as a dedicated
// step.

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/spec"
	"verc3/internal/ts"
	"verc3/internal/visited"
	"verc3/internal/zoo"
)

const specDir = "../../examples/specs"

// wildcardChooser makes every hole a wildcard, the same environment the mc
// equivalence harness uses: complete models never call Choose, and sketches
// explore the deterministic hole-free sub-space.
type wildcardChooser struct{}

func (wildcardChooser) Choose(string, []string) (int, error) { return 0, ts.ErrWildcard }

// pairs maps every committed spec to its hand-written zoo twin.
var pairs = []struct {
	file string
	zoo  string
}{
	{"mutex.json", "peterson"},
	{"mutex-sketch.json", "peterson-sketch"},
	{"tokenring.json", "token-ring"},
}

func loadSpec(t *testing.T, file string) *spec.Model {
	t.Helper()
	m, err := spec.LoadFile(filepath.Join(specDir, file))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSpecEquivalence is the acceptance gate for the spec frontend: for
// every committed spec, the compiled system and its zoo twin report
// identical exploration statistics under every driver × backend combination,
// and identical nested-DFS numbers on the liveness axis.
func TestSpecEquivalence(t *testing.T) {
	for _, pair := range pairs {
		pair := pair
		t.Run(pair.file, func(t *testing.T) {
			m := loadSpec(t, pair.file)
			if got, want := m.Sketch(), zoo.IsSketch(pair.zoo); got != want {
				t.Fatalf("Sketch() = %v, zoo.IsSketch(%q) = %v", got, pair.zoo, want)
			}

			type combo struct {
				workers int
				backend visited.Kind
			}
			for _, cb := range []combo{
				{1, visited.Flat}, {1, visited.Spill},
				{8, visited.Flat}, {8, visited.Spill},
			} {
				opt := mc.Options{
					Symmetry: true,
					Env:      ts.NewEnv(wildcardChooser{}),
					Workers:  cb.workers,
					Visited:  cb.backend,
					SpillMem: 1, // floor: force flushes on even tiny spaces
					SpillDir: t.TempDir(),
				}
				hand := check(t, pair.zoo, opt)
				got, err := mc.Check(m.System(), opt)
				if err != nil {
					t.Fatalf("workers=%d visited=%v: %v", cb.workers, cb.backend, err)
				}
				tag := "safety"
				compareRuns(t, tag, cb.workers, cb.backend, got, hand)
			}

			if len(m.Spec().Liveness) == 0 {
				return
			}
			for _, backend := range []visited.Kind{visited.Flat, visited.Spill} {
				opt := mc.Options{
					Liveness:    true,
					RecordTrace: true,
					Symmetry:    true,
					Env:         ts.NewEnv(wildcardChooser{}),
					Visited:     backend,
					SpillMem:    1,
					SpillDir:    t.TempDir(),
				}
				hand := check(t, pair.zoo, opt)
				got, err := mc.Check(m.System(), opt)
				if err != nil {
					t.Fatalf("liveness visited=%v: %v", backend, err)
				}
				compareRuns(t, "liveness", 1, backend, got, hand)
				if got.Space.LiveStates != hand.Space.LiveStates || got.Space.RedStates != hand.Space.RedStates {
					t.Errorf("visited=%v: ndfs states %d+%dred, want %d+%dred", backend,
						got.Space.LiveStates, got.Space.RedStates, hand.Space.LiveStates, hand.Space.RedStates)
				}
				if got.Space.CycleLen != hand.Space.CycleLen {
					t.Errorf("visited=%v: cycle length %d, want %d", backend, got.Space.CycleLen, hand.Space.CycleLen)
				}
				gotCycle := got.Failure != nil && len(got.Failure.Trace) > 0
				handCycle := hand.Failure != nil && len(hand.Failure.Trace) > 0
				if gotCycle != handCycle {
					t.Errorf("visited=%v: cycle presence %v, want %v", backend, gotCycle, handCycle)
				}
				if gotCycle && handCycle {
					if got.Failure.Name != hand.Failure.Name || got.Failure.CycleStart != hand.Failure.CycleStart ||
						len(got.Failure.Trace) != len(hand.Failure.Trace) {
						t.Errorf("visited=%v: lasso %q start=%d steps=%d, want %q start=%d steps=%d", backend,
							got.Failure.Name, got.Failure.CycleStart, len(got.Failure.Trace),
							hand.Failure.Name, hand.Failure.CycleStart, len(hand.Failure.Trace))
					} else {
						for i, step := range got.Failure.Trace {
							if step.Rule != hand.Failure.Trace[i].Rule {
								t.Errorf("visited=%v: lasso diverges at step %d: %q vs %q", backend,
									i, step.Rule, hand.Failure.Trace[i].Rule)
								break
							}
						}
					}
				}
			}
		})
	}
}

func check(t *testing.T, zooName string, opt mc.Options) *mc.Result {
	t.Helper()
	sys, err := zoo.Get(zooName, zoo.Params{Caches: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Check(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func compareRuns(t *testing.T, tag string, workers int, backend visited.Kind, got, want *mc.Result) {
	t.Helper()
	if got.Verdict != want.Verdict {
		t.Errorf("%s workers=%d visited=%v: verdict %v, want %v", tag, workers, backend, got.Verdict, want.Verdict)
	}
	if got.Stats.VisitedStates != want.Stats.VisitedStates {
		t.Errorf("%s workers=%d visited=%v: states %d, want %d", tag, workers, backend, got.Stats.VisitedStates, want.Stats.VisitedStates)
	}
	if got.Stats.FiredTransitions != want.Stats.FiredTransitions {
		t.Errorf("%s workers=%d visited=%v: transitions %d, want %d", tag, workers, backend, got.Stats.FiredTransitions, want.Stats.FiredTransitions)
	}
	if got.Stats.MaxDepth != want.Stats.MaxDepth {
		t.Errorf("%s workers=%d visited=%v: depth %d, want %d", tag, workers, backend, got.Stats.MaxDepth, want.Stats.MaxDepth)
	}
	if got.Stats.WildcardAborts != want.Stats.WildcardAborts {
		t.Errorf("%s workers=%d visited=%v: aborts %d, want %d", tag, workers, backend, got.Stats.WildcardAborts, want.Stats.WildcardAborts)
	}
}

// TestSpecSynthesisEndToEnd runs full synthesis on the committed mutex
// sketch spec and pins the outcome against the hand-written peterson
// sketch: same holes in the same discovery order, the same 2·2·2 = 8
// candidate space, and the single reverified Peterson solution.
func TestSpecSynthesisEndToEnd(t *testing.T) {
	m := loadSpec(t, "mutex-sketch.json")
	if !m.Sketch() {
		t.Fatal("mutex-sketch.json did not load as a sketch")
	}
	run := func(sys ts.System) *core.Result {
		t.Helper()
		res, err := core.Synthesize(sys, core.Config{MC: mc.Options{Symmetry: true}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hand, err := zoo.Get("peterson-sketch", zoo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	want := run(hand)
	got := run(m.System())

	if strings.Join(got.HoleNames, ",") != strings.Join(want.HoleNames, ",") {
		t.Fatalf("holes %v, want %v", got.HoleNames, want.HoleNames)
	}
	space := 1
	for i, acts := range got.HoleActions {
		space *= len(acts)
		if strings.Join(acts, ",") != strings.Join(want.HoleActions[i], ",") {
			t.Errorf("hole %q actions %v, want %v", got.HoleNames[i], acts, want.HoleActions[i])
		}
	}
	if space != 8 {
		t.Errorf("candidate space %d, want 8", space)
	}
	if len(got.Solutions) != 1 || len(want.Solutions) != 1 {
		t.Fatalf("solutions: spec %d, hand-written %d, want 1 each", len(got.Solutions), len(want.Solutions))
	}
	if gotSol, wantSol := solutionString(got, 0), solutionString(want, 0); gotSol != wantSol {
		t.Errorf("solution %s, want %s", gotSol, wantSol)
	}
	if wantSol := "after-crit@Idle,exit-flag@clear,turn-write@other"; solutionString(got, 0) != wantSol {
		t.Errorf("solution %s, want %s", solutionString(got, 0), wantSol)
	}
	if !got.Solutions[0].Reverified {
		t.Error("spec solution not reverified")
	}
	if got.Solutions[0].VisitedStates != want.Solutions[0].VisitedStates {
		t.Errorf("solution verification states %d, want %d",
			got.Solutions[0].VisitedStates, want.Solutions[0].VisitedStates)
	}
}

// solutionString renders solution i hole-name-keyed and order-independent.
func solutionString(res *core.Result, i int) string {
	parts := make([]string, 0, len(res.Solutions[i].Assign))
	for h, a := range res.Solutions[i].Assign {
		if a == core.Wildcard {
			parts = append(parts, res.HoleNames[h]+"@?")
			continue
		}
		parts = append(parts, res.HoleNames[h]+"@"+res.HoleActions[h][a])
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// TestSpecZooRegistration exercises the zoo's dynamic registry: a loaded
// spec model registered at runtime resolves through zoo.Get like a
// compiled-in entry, reports sketchness, and unregisters cleanly.
func TestSpecZooRegistration(t *testing.T) {
	m := loadSpec(t, "tokenring.json")
	name := "spec-tokenring-test"
	if err := zoo.Register(name, func(zoo.Params) ts.System { return m.System() }, m.Sketch()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { zoo.Unregister(name) })

	if err := zoo.Register(name, func(zoo.Params) ts.System { return m.System() }, false); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if err := zoo.Register("token-ring", func(zoo.Params) ts.System { return m.System() }, false); err == nil {
		t.Fatal("Register over a compiled-in entry succeeded")
	}
	sys, err := zoo.Get(name, zoo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "token-ring" {
		t.Errorf("system name %q, want token-ring", sys.Name())
	}
	if zoo.IsSketch(name) {
		t.Error("registered complete model reported as sketch")
	}
	found := false
	for _, n := range zoo.Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Errorf("zoo.Names() misses dynamically registered %q", name)
	}
}
