package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// The expression language of verc3_model_v1 guards, actions and properties.
//
// Grammar (precedence low → high):
//
//	expr  := or
//	or    := and ('||' and)*
//	and   := cmp ('&&' cmp)*
//	cmp   := sum (('=='|'!='|'<'|'<='|'>'|'>=') sum)?
//	sum   := term (('+'|'-') term)*
//	term  := unary (('*'|'%') unary)*
//	unary := '!' unary | '-' unary | post
//	post  := prim ('[' expr ']')?
//	prim  := INT | 'true' | 'false' | 'none' | IDENT
//	       | ('forall'|'exists'|'count') '(' IDENT ',' expr ')'
//	       | '(' expr ')'
//
// Identifiers resolve, in order, to quantifier-bound variables, the ruleset
// parameter `i` (per-process contexts only), the process count `N`, declared
// state variables, and enum constants. Everything compiles to closures over
// a typed int64 value domain; every numeric expression carries static
// interval bounds, which is how array indexing stays provably in range (so
// guards and invariants, which have no error path, can never fault at
// runtime) and how statically-safe assignments skip their range check.

// maxQuantDepth bounds quantifier nesting (forall/exists/count).
const maxQuantDepth = 8

// rtenv is the runtime evaluation environment: the state under inspection,
// the ruleset parameter i (-1 outside per-process contexts), and the
// quantifier binding stack.
type rtenv struct {
	s *specState
	i int64
	b [maxQuantDepth]int64
}

// valFn evaluates one compiled expression. Booleans are 0/1.
type valFn func(e *rtenv) int64

// kind classifies expression and variable types.
type kind uint8

const (
	kBool kind = iota
	kInt
	kPid
	kEnum
)

func (k kind) String() string {
	switch k {
	case kBool:
		return "bool"
	case kInt:
		return "int"
	case kPid:
		return "pid"
	case kEnum:
		return "enum"
	}
	return "?"
}

// vtype is a compiled expression's type: its kind, the enum table for kEnum,
// nullability for kPid (whether the value may be none = -1), and static
// interval bounds for numeric kinds.
type vtype struct {
	k        kind
	enum     int
	nullable bool
	lo, hi   int64
}

func (t vtype) numeric() bool { return t.k == kInt || t.k == kPid }

func (t vtype) describe(lay *layout) string {
	if t.k == kEnum {
		return "enum(" + strings.Join(lay.enums[t.enum], "|") + ")"
	}
	return t.k.String()
}

// cexpr is a compiled expression: its evaluator, type, and constant folding.
type cexpr struct {
	fn      valFn
	typ     vtype
	isConst bool
	cval    int64
}

// --- Lexer ---

type tokKind uint8

const (
	tEOF tokKind = iota
	tInt
	tIdent
	tOp // operators and punctuation, in tok.text
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

// lex tokenizes src fully up front; errors carry the byte offset.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tInt, src[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], i})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{tOp, two, i})
				i += 2
				continue
			}
			switch c {
			case '(', ')', '[', ']', ',', '!', '<', '>', '+', '-', '*', '%', '=':
				toks = append(toks, token{tOp, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("unexpected character %q at offset %d", string(c), i)
			}
		}
	}
	toks = append(toks, token{tEOF, "", len(src)})
	return toks, nil
}

// --- Parser (to a small AST) ---

type node interface{ pos() int }

type nLit struct {
	p   int
	val int64
	k   kind // kInt, kBool, or kPid (the `none` literal)
}

type nIdent struct {
	p    int
	name string
}

type nIndex struct {
	p    int
	name string
	idx  node
}

type nUnary struct {
	p  int
	op string
	x  node
}

type nBinary struct {
	p    int
	op   string
	x, y node
}

type nQuant struct {
	p    int
	fn   string // forall | exists | count
	v    string
	body node
}

func (n *nLit) pos() int    { return n.p }
func (n *nIdent) pos() int  { return n.p }
func (n *nIndex) pos() int  { return n.p }
func (n *nUnary) pos() int  { return n.p }
func (n *nBinary) pos() int { return n.p }
func (n *nQuant) pos() int  { return n.p }

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(op string) bool {
	if t := p.peek(); t.kind == tOp && t.text == op {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(op string) error {
	if !p.accept(op) {
		t := p.peek()
		return fmt.Errorf("expected %q at offset %d, found %q", op, t.pos, tokenText(t))
	}
	return nil
}

func tokenText(t token) string {
	if t.kind == tEOF {
		return "end of expression"
	}
	return t.text
}

// parseExpr parses a full expression and requires it to consume all input.
func parseExpr(src string) (node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.or()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, fmt.Errorf("unexpected %q at offset %d", t.text, t.pos)
	}
	return n, nil
}

func (p *parser) or() (node, error) {
	x, err := p.and()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.peek().pos
		if !p.accept("||") {
			return x, nil
		}
		y, err := p.and()
		if err != nil {
			return nil, err
		}
		x = &nBinary{pos, "||", x, y}
	}
}

func (p *parser) and() (node, error) {
	x, err := p.cmp()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.peek().pos
		if !p.accept("&&") {
			return x, nil
		}
		y, err := p.cmp()
		if err != nil {
			return nil, err
		}
		x = &nBinary{pos, "&&", x, y}
	}
}

func (p *parser) cmp() (node, error) {
	x, err := p.sum()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tOp {
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.i++
			y, err := p.sum()
			if err != nil {
				return nil, err
			}
			return &nBinary{t.pos, t.text, x, y}, nil
		}
	}
	return x, nil
}

func (p *parser) sum() (node, error) {
	x, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tOp || (t.text != "+" && t.text != "-") {
			return x, nil
		}
		p.i++
		y, err := p.term()
		if err != nil {
			return nil, err
		}
		x = &nBinary{t.pos, t.text, x, y}
	}
}

func (p *parser) term() (node, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tOp || (t.text != "*" && t.text != "%") {
			return x, nil
		}
		p.i++
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &nBinary{t.pos, t.text, x, y}
	}
}

func (p *parser) unary() (node, error) {
	t := p.peek()
	if t.kind == tOp && (t.text == "!" || t.text == "-") {
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &nUnary{t.pos, t.text, x}, nil
	}
	return p.post()
}

func (p *parser) post() (node, error) {
	x, err := p.prim()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tOp && t.text == "[" {
		id, ok := x.(*nIdent)
		if !ok {
			return nil, fmt.Errorf("only a variable can be indexed (offset %d)", t.pos)
		}
		p.i++
		idx, err := p.or()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return &nIndex{id.p, id.name, idx}, nil
	}
	return x, nil
}

func (p *parser) prim() (node, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad integer literal %q at offset %d", t.text, t.pos)
		}
		return &nLit{t.pos, v, kInt}, nil
	case tIdent:
		switch t.text {
		case "true":
			return &nLit{t.pos, 1, kBool}, nil
		case "false":
			return &nLit{t.pos, 0, kBool}, nil
		case "none":
			return &nLit{t.pos, pidNone, kPid}, nil
		case "forall", "exists", "count":
			if err := p.expect("("); err != nil {
				return nil, err
			}
			v := p.next()
			if v.kind != tIdent {
				return nil, fmt.Errorf("%s needs a binder name at offset %d", t.text, v.pos)
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			body, err := p.or()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &nQuant{t.pos, t.text, v.text, body}, nil
		default:
			return &nIdent{t.pos, t.text}, nil
		}
	case tOp:
		if t.text == "(" {
			x, err := p.or()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("unexpected %q at offset %d", tokenText(t), t.pos)
}

// --- Compiler ---

// pidNone is the stored value of a null pid.
const pidNone = -1

// compiler compiles parsed expressions against a layout. allowI admits the
// ruleset parameter `i` (per-process rules and properties); bound tracks
// quantifier binders in scope.
type compiler struct {
	lay    *layout
	allowI bool
	bound  []string
}

// compileIn parses and compiles src at path, checking the result against
// want (kBool for guards/properties, or any numeric via wantNumeric).
func (c *compiler) compileBool(path, src string) (valFn, error) {
	ce, err := c.compileString(path, src)
	if err != nil {
		return nil, err
	}
	if ce.typ.k != kBool {
		return nil, specErrf(path, "expression %q has type %s, want bool", src, ce.typ.describe(c.lay))
	}
	return ce.fn, nil
}

func (c *compiler) compileString(path, src string) (*cexpr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, specErrf(path, "empty expression")
	}
	n, err := parseExpr(src)
	if err != nil {
		return nil, specErrf(path, "%v", err)
	}
	ce, err := c.compile(n)
	if err != nil {
		return nil, specErrf(path, "%v", err)
	}
	return ce, nil
}

func (c *compiler) compile(n node) (*cexpr, error) {
	switch n := n.(type) {
	case *nLit:
		t := vtype{k: n.k, lo: n.val, hi: n.val}
		if n.k == kPid {
			t.nullable = true
		}
		v := n.val
		return &cexpr{fn: func(*rtenv) int64 { return v }, typ: t, isConst: true, cval: v}, nil

	case *nIdent:
		return c.ident(n)

	case *nIndex:
		vi, ok := c.lay.byName[n.name]
		if !ok {
			return nil, fmt.Errorf("unknown variable %q", n.name)
		}
		if !vi.array {
			return nil, fmt.Errorf("variable %q is not per-process and cannot be indexed", n.name)
		}
		idx, err := c.compile(n.idx)
		if err != nil {
			return nil, err
		}
		if err := c.checkIndex(idx); err != nil {
			return nil, err
		}
		off := int64(vi.off)
		ifn := idx.fn
		return &cexpr{
			fn:  func(e *rtenv) int64 { return int64(e.s.vals[off+ifn(e)]) },
			typ: c.varType(vi),
		}, nil

	case *nUnary:
		x, err := c.compile(n.x)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "!":
			if x.typ.k != kBool {
				return nil, fmt.Errorf("operator ! needs a bool, got %s", x.typ.describe(c.lay))
			}
			xf := x.fn
			out := &cexpr{fn: func(e *rtenv) int64 { return 1 - xf(e) }, typ: vtype{k: kBool, lo: 0, hi: 1}}
			foldConst(out, x)
			return out, nil
		case "-":
			if !x.typ.numeric() {
				return nil, fmt.Errorf("operator - needs a number, got %s", x.typ.describe(c.lay))
			}
			xf := x.fn
			out := &cexpr{fn: func(e *rtenv) int64 { return -xf(e) }, typ: vtype{k: kInt, lo: -x.typ.hi, hi: -x.typ.lo}}
			foldConst(out, x)
			return out, nil
		}
		return nil, fmt.Errorf("unknown unary operator %q", n.op)

	case *nBinary:
		return c.binary(n)

	case *nQuant:
		return c.quant(n)
	}
	return nil, fmt.Errorf("internal: unknown node %T", n)
}

// ident resolves a bare identifier: quantifier binders, then `i`, then `N`,
// then state variables, then enum constants.
func (c *compiler) ident(n *nIdent) (*cexpr, error) {
	for d := len(c.bound) - 1; d >= 0; d-- {
		if c.bound[d] == n.name {
			d := d
			return &cexpr{
				fn:  func(e *rtenv) int64 { return e.b[d] },
				typ: vtype{k: kPid, lo: 0, hi: int64(c.lay.n) - 1},
			}, nil
		}
	}
	if n.name == "i" {
		if !c.allowI {
			return nil, fmt.Errorf(`"i" is only available in per-process rules and properties`)
		}
		return &cexpr{
			fn:  func(e *rtenv) int64 { return e.i },
			typ: vtype{k: kPid, lo: 0, hi: int64(c.lay.n) - 1},
		}, nil
	}
	if n.name == "N" {
		v := int64(c.lay.n)
		return &cexpr{fn: func(*rtenv) int64 { return v }, typ: vtype{k: kInt, lo: v, hi: v}, isConst: true, cval: v}, nil
	}
	if vi, ok := c.lay.byName[n.name]; ok {
		if vi.array {
			return nil, fmt.Errorf("variable %q is per-process; index it (e.g. %s[i])", n.name, n.name)
		}
		off := vi.off
		return &cexpr{
			fn:  func(e *rtenv) int64 { return int64(e.s.vals[off]) },
			typ: c.varType(vi),
		}, nil
	}
	if ev, ok := c.lay.enumVals[n.name]; ok {
		v := int64(ev.ordinal)
		return &cexpr{
			fn:      func(*rtenv) int64 { return v },
			typ:     vtype{k: kEnum, enum: ev.enum, lo: v, hi: v},
			isConst: true, cval: v,
		}, nil
	}
	return nil, fmt.Errorf("unknown variable %q", n.name)
}

// varType is the expression type of reading variable vi.
func (c *compiler) varType(vi *varInfo) vtype {
	t := vtype{k: vi.k, enum: vi.enum, lo: int64(vi.lo), hi: int64(vi.hi)}
	if vi.k == kPid {
		t.nullable = vi.lo < 0
	}
	return t
}

// checkIndex enforces that an array index is statically within [0, N):
// guards and invariants have no error path, so out-of-range access must be
// impossible by construction, not checked at runtime.
func (c *compiler) checkIndex(idx *cexpr) error {
	if !idx.typ.numeric() {
		return fmt.Errorf("array index has type %s, want a process number", idx.typ.describe(c.lay))
	}
	if idx.typ.lo < 0 || idx.typ.hi >= int64(c.lay.n) {
		if idx.typ.k == kPid && idx.typ.nullable {
			return fmt.Errorf("array index may be none; guard the access with a != none comparison on a concrete process instead")
		}
		return fmt.Errorf("array index bounds [%d,%d] not provably within [0,%d]", idx.typ.lo, idx.typ.hi, c.lay.n-1)
	}
	return nil
}

func foldConst(out *cexpr, in ...*cexpr) {
	for _, x := range in {
		if !x.isConst {
			return
		}
	}
	out.isConst = true
	out.cval = out.fn(&rtenv{i: -1})
}

func (c *compiler) binary(n *nBinary) (*cexpr, error) {
	x, err := c.compile(n.x)
	if err != nil {
		return nil, err
	}
	// && and || short-circuit, so compile y before the type checks but keep
	// evaluation lazy.
	y, err := c.compile(n.y)
	if err != nil {
		return nil, err
	}
	xf, yf := x.fn, y.fn
	boolT := vtype{k: kBool, lo: 0, hi: 1}
	mismatch := func() error {
		return fmt.Errorf("operator %s cannot compare %s with %s", n.op, x.typ.describe(c.lay), y.typ.describe(c.lay))
	}
	var out *cexpr
	switch n.op {
	case "&&", "||":
		if x.typ.k != kBool || y.typ.k != kBool {
			return nil, fmt.Errorf("operator %s needs bool operands, got %s and %s", n.op, x.typ.describe(c.lay), y.typ.describe(c.lay))
		}
		if n.op == "&&" {
			out = &cexpr{fn: func(e *rtenv) int64 {
				if xf(e) == 0 {
					return 0
				}
				return yf(e)
			}, typ: boolT}
		} else {
			out = &cexpr{fn: func(e *rtenv) int64 {
				if xf(e) != 0 {
					return 1
				}
				return yf(e)
			}, typ: boolT}
		}
	case "==", "!=":
		ok := (x.typ.numeric() && y.typ.numeric()) ||
			(x.typ.k == kBool && y.typ.k == kBool) ||
			(x.typ.k == kEnum && y.typ.k == kEnum && x.typ.enum == y.typ.enum)
		if !ok {
			return nil, mismatch()
		}
		eq := n.op == "=="
		out = &cexpr{fn: func(e *rtenv) int64 {
			if (xf(e) == yf(e)) == eq {
				return 1
			}
			return 0
		}, typ: boolT}
	case "<", "<=", ">", ">=":
		if !x.typ.numeric() || !y.typ.numeric() {
			return nil, mismatch()
		}
		op := n.op
		out = &cexpr{fn: func(e *rtenv) int64 {
			a, b := xf(e), yf(e)
			var r bool
			switch op {
			case "<":
				r = a < b
			case "<=":
				r = a <= b
			case ">":
				r = a > b
			default:
				r = a >= b
			}
			if r {
				return 1
			}
			return 0
		}, typ: boolT}
	case "+", "-", "*", "%":
		if !x.typ.numeric() || !y.typ.numeric() {
			return nil, fmt.Errorf("operator %s needs numeric operands, got %s and %s", n.op, x.typ.describe(c.lay), y.typ.describe(c.lay))
		}
		t := vtype{k: kInt}
		switch n.op {
		case "+":
			t.lo, t.hi = x.typ.lo+y.typ.lo, x.typ.hi+y.typ.hi
			out = &cexpr{fn: func(e *rtenv) int64 { return xf(e) + yf(e) }, typ: t}
		case "-":
			t.lo, t.hi = x.typ.lo-y.typ.hi, x.typ.hi-y.typ.lo
			out = &cexpr{fn: func(e *rtenv) int64 { return xf(e) - yf(e) }, typ: t}
		case "*":
			t.lo, t.hi = mulBounds(x.typ, y.typ)
			out = &cexpr{fn: func(e *rtenv) int64 { return xf(e) * yf(e) }, typ: t}
		case "%":
			// The modulus must be a positive constant so evaluation can never
			// divide by zero — guards and invariants have no error path.
			if !y.isConst || y.cval <= 0 {
				return nil, fmt.Errorf("the right operand of %% must be a positive constant (e.g. N)")
			}
			m := y.cval
			t.lo, t.hi = 0, m-1
			if x.typ.lo < 0 {
				t.lo = -(m - 1) // Go's % is truncated division: sign follows the dividend
			}
			out = &cexpr{fn: func(e *rtenv) int64 { return xf(e) % m }, typ: t}
		}
		if out.typ.lo < -1<<30 || out.typ.hi > 1<<30 {
			return nil, fmt.Errorf("arithmetic bounds [%d,%d] too large", out.typ.lo, out.typ.hi)
		}
	default:
		return nil, fmt.Errorf("unknown operator %q", n.op)
	}
	foldConst(out, x, y)
	return out, nil
}

func mulBounds(x, y vtype) (int64, int64) {
	a := []int64{x.lo * y.lo, x.lo * y.hi, x.hi * y.lo, x.hi * y.hi}
	lo, hi := a[0], a[0]
	for _, v := range a[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func (c *compiler) quant(n *nQuant) (*cexpr, error) {
	if c.lay.n == 0 {
		return nil, fmt.Errorf("%s needs processes >= 1", n.fn)
	}
	if len(c.bound) >= maxQuantDepth {
		return nil, fmt.Errorf("quantifiers nested deeper than %d", maxQuantDepth)
	}
	if !isIdentStart(n.v[0]) {
		return nil, fmt.Errorf("bad binder name %q", n.v)
	}
	if _, clash := c.lay.byName[n.v]; clash || n.v == "i" || n.v == "N" {
		return nil, fmt.Errorf("binder %q shadows an existing name", n.v)
	}
	d := len(c.bound)
	c.bound = append(c.bound, n.v)
	body, err := c.compile(n.body)
	c.bound = c.bound[:d]
	if err != nil {
		return nil, err
	}
	if body.typ.k != kBool {
		return nil, fmt.Errorf("%s body has type %s, want bool", n.fn, body.typ.describe(c.lay))
	}
	nProcs := int64(c.lay.n)
	bf := body.fn
	switch n.fn {
	case "forall":
		return &cexpr{fn: func(e *rtenv) int64 {
			for j := int64(0); j < nProcs; j++ {
				e.b[d] = j
				if bf(e) == 0 {
					return 0
				}
			}
			return 1
		}, typ: vtype{k: kBool, lo: 0, hi: 1}}, nil
	case "exists":
		return &cexpr{fn: func(e *rtenv) int64 {
			for j := int64(0); j < nProcs; j++ {
				e.b[d] = j
				if bf(e) != 0 {
					return 1
				}
			}
			return 0
		}, typ: vtype{k: kBool, lo: 0, hi: 1}}, nil
	case "count":
		return &cexpr{fn: func(e *rtenv) int64 {
			var cnt int64
			for j := int64(0); j < nProcs; j++ {
				e.b[d] = j
				if bf(e) != 0 {
					cnt++
				}
			}
			return cnt
		}, typ: vtype{k: kInt, lo: 0, hi: nProcs}}, nil
	}
	return nil, fmt.Errorf("unknown quantifier %q", n.fn)
}

// --- Assignment statements ---

// cassign is a compiled "lhs = rhs" statement.
type cassign struct {
	slot func(e *rtenv) int // resolved destination slot
	val  valFn
	// Runtime range check (nil when the rhs bounds are statically inside the
	// variable's range). Assignments run inside Fire, which has an error
	// path, so dynamic values (e.g. holder = (holder+1) % N into a pid) are
	// checked here rather than rejected at compile time.
	check   func(v int64) error
	varName string
}

// compileAssign parses and compiles an assignment statement
// ("var = expr" or "arr[idx] = expr").
func (c *compiler) compileAssign(path, src string) (*cassign, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, specErrf(path, "%v", err)
	}
	p := &parser{toks: toks}
	t := p.next()
	if t.kind != tIdent {
		return nil, specErrf(path, "assignment must start with a variable name, found %q", tokenText(t))
	}
	vi, ok := c.lay.byName[t.text]
	if !ok {
		return nil, specErrf(path, "unknown variable %q", t.text)
	}
	a := &cassign{varName: t.text}
	if p.peek().kind == tOp && p.peek().text == "[" {
		if !vi.array {
			return nil, specErrf(path, "variable %q is not per-process and cannot be indexed", t.text)
		}
		p.i++
		idxNode, err := p.or()
		if err != nil {
			return nil, specErrf(path, "%v", err)
		}
		if err := p.expect("]"); err != nil {
			return nil, specErrf(path, "%v", err)
		}
		idx, err := c.compile(idxNode)
		if err != nil {
			return nil, specErrf(path, "%v", err)
		}
		if err := c.checkIndex(idx); err != nil {
			return nil, specErrf(path, "%v", err)
		}
		off, ifn := vi.off, idx.fn
		a.slot = func(e *rtenv) int { return off + int(ifn(e)) }
	} else {
		if vi.array {
			return nil, specErrf(path, "variable %q is per-process; index it (e.g. %s[i])", t.text, t.text)
		}
		off := vi.off
		a.slot = func(*rtenv) int { return off }
	}
	if err := p.expect("="); err != nil {
		return nil, specErrf(path, "%v", err)
	}
	rhsNode, err := p.or()
	if err != nil {
		return nil, specErrf(path, "%v", err)
	}
	if tk := p.peek(); tk.kind != tEOF {
		return nil, specErrf(path, "unexpected %q at offset %d", tk.text, tk.pos)
	}
	rhs, err := c.compile(rhsNode)
	if err != nil {
		return nil, specErrf(path, "%v", err)
	}

	vt := c.varType(vi)
	switch vi.k {
	case kBool:
		if rhs.typ.k != kBool {
			return nil, specErrf(path, "cannot assign %s to bool variable %q", rhs.typ.describe(c.lay), a.varName)
		}
	case kEnum:
		if rhs.typ.k != kEnum || rhs.typ.enum != vi.enum {
			return nil, specErrf(path, "cannot assign %s to %s variable %q", rhs.typ.describe(c.lay), vt.describe(c.lay), a.varName)
		}
	case kInt, kPid:
		if !rhs.typ.numeric() {
			return nil, specErrf(path, "cannot assign %s to %s variable %q", rhs.typ.describe(c.lay), vi.k, a.varName)
		}
		lo, hi := int64(vi.lo), int64(vi.hi)
		if rhs.typ.lo < lo || rhs.typ.hi > hi {
			name := a.varName
			a.check = func(v int64) error {
				if v < lo || v > hi {
					return fmt.Errorf("spec %q: assignment %s = %d out of range [%d,%d]", c.lay.name, name, v, lo, hi)
				}
				return nil
			}
		}
	}
	a.val = rhs.fn
	return a, nil
}
