package spec_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"verc3/internal/spec"
)

// FuzzSpecLoader is the loader's robustness contract: arbitrary bytes must
// never panic the parser or compiler — every rejection is a *spec.SpecError
// carrying a non-empty path — and anything accepted must survive the
// canonical marshal→parse→marshal cycle. The committed example specs seed
// the corpus so mutations start from deep valid documents.
func FuzzSpecLoader(f *testing.F) {
	files, err := filepath.Glob(filepath.Join(specDir, "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(minimal))
	f.Add([]byte(`{"format": "verc3_model_v1"`))
	f.Add([]byte(`{"format": "verc3_model_v1", "name": "m", "processes": 2,
		"vars": [{"name": "pc", "type": "enum", "values": ["A", "B"], "array": true}],
		"rules": [{"name": "r%d: go", "per_process": true, "guard": "pc[i] == A",
			"action": [{"if": "forall(j, pc[j] == A)", "then": ["pc[i] = B"],
				"else": [{"choose": "h", "among": [
					{"name": "x", "do": ["pc[i] = A"]},
					{"name": "y", "do": ["pc[i] = B"]}]}]}]}],
		"invariants": [{"name": "inv", "expr": "count(j, pc[j] == B) <= 2"}]}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`"verc3_model_v1"`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := spec.Parse(data)
		if err != nil {
			var se *spec.SpecError
			if !errors.As(err, &se) {
				t.Fatalf("rejection is %T, want *spec.SpecError: %v", err, err)
			}
			if se.Path == "" {
				t.Fatalf("SpecError with empty path: %v", err)
			}
			return
		}
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted spec fails to marshal: %v", err)
		}
		m2, err := spec.Parse(out)
		if err != nil {
			t.Fatalf("canonical form of accepted spec is rejected: %v\n%s", err, out)
		}
		out2, err := m2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(out2) != string(out) {
			t.Fatalf("canonicalization not idempotent:\n%s\nvs\n%s", out, out2)
		}
	})
}
