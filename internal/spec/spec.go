// Package spec loads versioned JSON model specifications — the
// verc3_model_v1 format — and compiles them onto the internal/dsl Builder,
// so guarded-command systems and synthesis sketches are data instead of
// compiled-in Go packages (the input format the future verification
// service needs; ROADMAP "serialized model spec").
//
// A spec declares typed state variables (bools, ranged ints, enums, pids,
// each optionally replicated per process), parameterized rulesets whose
// guards and actions are written in a small validated expression language
// (see expr.go), invariants, reach goals, liveness goals with weak-fairness
// declarations, and synthesis holes as `choose` statements with named
// candidate action sets. Loading validates everything with path-carrying
// errors (`rules[3].guard: unknown variable "pc2"`); compiled systems ride
// the full exploration substrate for free — successor recycling,
// TransitionAppender enumeration, an allocation-free AppendKey over the
// typed variable layout, and scalarset symmetry when the spec declares it.
//
// The format is versioned by the required top-level "format" field; loaders
// reject unknown versions, and any schema change that is not
// backward-compatible must bump the constant.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// FormatV1 is the format tag every v1 spec must carry.
const FormatV1 = "verc3_model_v1"

// SpecError is a validation error annotated with the JSON path of the
// offending element, e.g. `rules[3].guard: unknown variable "pc2"`.
type SpecError struct {
	Path    string
	Message string
}

// Error implements error.
func (e *SpecError) Error() string { return e.Path + ": " + e.Message }

func specErrf(path, format string, args ...any) *SpecError {
	return &SpecError{Path: path, Message: fmt.Sprintf(format, args...)}
}

// Spec is the verc3_model_v1 JSON document.
type Spec struct {
	// Format must be FormatV1.
	Format string `json:"format"`
	// Name is the system name (what ts.System.Name reports).
	Name string `json:"name"`
	// Processes is the process count N replicated variables and rulesets
	// range over (0 when the model has no per-process structure).
	Processes int `json:"processes,omitempty"`
	// Symmetric declares the processes fully interchangeable: the checker
	// may canonicalize states by permuting per-process array cells and
	// renaming pid values. The spec author asserts the semantics are
	// permutation-invariant (exactly as a hand-written model asserts it by
	// implementing ts.Permutable).
	Symmetric bool `json:"symmetric,omitempty"`

	Vars       []VarSpec      `json:"vars"`
	Rules      []RuleSpec     `json:"rules"`
	Invariants []PropSpec     `json:"invariants,omitempty"`
	Goals      []PropSpec     `json:"goals,omitempty"`
	Liveness   []LivenessSpec `json:"liveness,omitempty"`
	Fairness   []FairnessSpec `json:"fairness,omitempty"`
	// Quiescent marks states where having no enabled rule is acceptable
	// rather than a deadlock (a bool expression; empty = never).
	Quiescent string `json:"quiescent,omitempty"`
}

// VarSpec declares one typed state variable.
type VarSpec struct {
	Name string `json:"name"`
	// Type is "bool", "int" (Min..Max inclusive), "enum" (Values), or "pid"
	// (a process number 0..N-1, plus none when Nullable).
	Type     string   `json:"type"`
	Min      *int     `json:"min,omitempty"`
	Max      *int     `json:"max,omitempty"`
	Values   []string `json:"values,omitempty"`
	Nullable bool     `json:"nullable,omitempty"`
	// Array replicates the variable per process (one cell per pid).
	Array bool `json:"array,omitempty"`
	// Init is a constant expression for the initial value (arrays: every
	// cell). Empty defaults to false / Min / the first enum value / none
	// (nullable pid) / 0 (non-nullable pid).
	Init string `json:"init,omitempty"`
}

// RuleSpec declares a guarded command. With PerProcess, the rule is a
// ruleset replicated for i in [0, N): Name must contain one %d (the
// instance names are formatted once at compile time), and the guard/action
// expressions may use i.
type RuleSpec struct {
	Name       string `json:"name"`
	PerProcess bool   `json:"per_process,omitempty"`
	// Guard is a bool expression; empty means always enabled.
	Guard  string `json:"guard,omitempty"`
	Action []Stmt `json:"action"`
}

// Stmt is one action statement: exactly one of Set (an assignment written
// as a plain JSON string "lhs = expr"), If, or Choose is set. The JSON
// encoding is polymorphic — assignments are bare strings, the other forms
// are single-keyed objects — so action lists read like code:
//
//	"action": [
//	  "flag[i] = true",
//	  {"if": "turn == i", "then": ["pc[i] = Crit"], "else": ["pc[i] = Wait"]},
//	  {"choose": "turn-write", "among": [
//	    {"name": "other", "do": ["turn = 1 - i"]},
//	    {"name": "me", "do": ["turn = i"]}]}
//	]
type Stmt struct {
	Set    string
	If     *IfStmt
	Choose *ChooseStmt
}

// IfStmt is a conditional statement.
type IfStmt struct {
	Cond string
	Then []Stmt
	Else []Stmt
}

// ChooseStmt is a synthesis hole: the engine (or a fixed assignment) picks
// one named candidate and its statements run. A spec containing any choose
// is a sketch — plain model checking refuses it, synthesis binds the holes
// through internal/core exactly as with hand-written sketches. The same
// hole name may appear at several sites (e.g. once per process); all sites
// must list identical candidate names and the chosen action is shared.
type ChooseStmt struct {
	Hole  string
	Among []Candidate
}

// Candidate is one named alternative of a choose hole.
type Candidate struct {
	Name string `json:"name"`
	Do   []Stmt `json:"do,omitempty"`
}

// stmtJSON is the object form of Stmt on the wire.
type stmtJSON struct {
	If     *string     `json:"if,omitempty"`
	Then   []Stmt      `json:"then,omitempty"`
	Else   []Stmt      `json:"else,omitempty"`
	Choose *string     `json:"choose,omitempty"`
	Among  []Candidate `json:"among,omitempty"`
}

// UnmarshalJSON implements json.Unmarshaler: a JSON string is an
// assignment, an object is an if or choose statement (unknown keys are
// rejected). Structural validation beyond that (exactly one form, non-empty
// fields) happens in Compile, where errors carry full paths.
func (s *Stmt) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		return json.Unmarshal(data, &s.Set)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var o stmtJSON
	if err := dec.Decode(&o); err != nil {
		return err
	}
	if o.If != nil && o.Choose != nil {
		return fmt.Errorf(`statement object has both "if" and "choose"`)
	}
	switch {
	case o.If != nil:
		s.If = &IfStmt{Cond: *o.If, Then: o.Then, Else: o.Else}
	case o.Choose != nil:
		s.Choose = &ChooseStmt{Hole: *o.Choose, Among: o.Among}
	default:
		return fmt.Errorf(`statement object needs an "if" or "choose" key`)
	}
	return nil
}

// MarshalJSON implements json.Marshaler, inverting UnmarshalJSON. It never
// HTML-escapes: spec expressions are full of && and <=, and committed spec
// files are meant to be read and edited by hand.
func (s Stmt) MarshalJSON() ([]byte, error) {
	switch {
	case s.If != nil:
		return marshalNoEscape(stmtJSON{If: &s.If.Cond, Then: s.If.Then, Else: s.If.Else})
	case s.Choose != nil:
		return marshalNoEscape(stmtJSON{Choose: &s.Choose.Hole, Among: s.Choose.Among})
	default:
		return marshalNoEscape(s.Set)
	}
}

// marshalNoEscape is json.Marshal without HTML escaping.
func marshalNoEscape(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// PropSpec declares an invariant or a reach goal. With PerProcess, the
// property is replicated for i in [0, N) and Name must contain one %d.
type PropSpec struct {
	Name       string `json:"name"`
	PerProcess bool   `json:"per_process,omitempty"`
	Expr       string `json:"expr"`
}

// LivenessSpec declares a liveness goal for the nested-DFS checker:
// "eventually_always" is FG p, "leads_to" is G(p → F q). With Fair, only
// weakly fair executions (see FairnessSpec) count as counterexamples.
type LivenessSpec struct {
	Name       string `json:"name"`
	PerProcess bool   `json:"per_process,omitempty"`
	Kind       string `json:"kind"`
	Fair       bool   `json:"fair,omitempty"`
	P          string `json:"p"`
	Q          string `json:"q,omitempty"`
}

// FairnessSpec declares a weak-fairness requirement: executions that keep
// Enabled continuously true while never firing a rule whose name starts
// with TakenPrefix are excluded from Fair liveness goals.
type FairnessSpec struct {
	Name        string `json:"name"`
	PerProcess  bool   `json:"per_process,omitempty"`
	Enabled     string `json:"enabled"`
	TakenPrefix string `json:"taken_prefix"`
}

// Parse decodes and compiles a verc3_model_v1 document. Every failure —
// malformed JSON, unknown fields, schema violations, expression errors —
// is reported as a *SpecError with the path of the offending element
// (malformed JSON gets path "$").
func Parse(data []byte) (*Model, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, &SpecError{Path: "$", Message: err.Error()}
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(bytes.TrimSpace(trailing)) > 0 {
		return nil, &SpecError{Path: "$", Message: "trailing data after the spec document"}
	}
	return Compile(&s)
}

// LoadFile reads and parses a spec file.
func LoadFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m.path = path
	return m, nil
}

// Marshal renders the model's spec in the canonical two-space-indented
// form. Canonical means idempotent: Parse(Marshal(m)) marshals to the same
// bytes, which the round-trip tests pin for every committed spec.
func (m *Model) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.spec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
