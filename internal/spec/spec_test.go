package spec_test

// Unit tests for the spec loader itself: canonical-form round-trips over
// every committed spec, path-carrying validation errors, and the
// allocation-free AppendKey contract the compiled systems promise the
// exploration substrate.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"verc3/internal/spec"
	"verc3/internal/ts"
)

// TestSpecRoundTrip pins the canonical form of every committed spec:
// the bytes on disk parse, re-marshal to exactly the same bytes
// (committed specs are stored canonically), and the marshal→load→
// re-marshal cycle is idempotent.
func TestSpecRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(specDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("found %d committed specs, want at least 3 (mutex, mutex-sketch, tokenring)", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			disk, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			m, err := spec.Parse(disk)
			if err != nil {
				t.Fatal(err)
			}
			out, err := m.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, disk) {
				t.Errorf("committed file is not in canonical form: re-marshal differs\n(canonicalize by writing Marshal output back to %s)", f)
			}
			m2, err := spec.Parse(out)
			if err != nil {
				t.Fatalf("re-parsing marshaled spec: %v", err)
			}
			out2, err := m2.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out2, out) {
				t.Error("marshal→load→re-marshal is not idempotent")
			}
		})
	}
}

// minimal returns a tiny valid spec document; tests mutate copies of the
// pattern to probe one validation rule at a time.
const minimal = `{
  "format": "verc3_model_v1",
  "name": "m",
  "vars": [{"name": "x", "type": "bool"}],
  "rules": [{"name": "flip", "guard": "!x", "action": ["x = true"]}]
}`

// TestSpecErrorPaths pins the loader's error contract: every rejection is
// a *spec.SpecError whose Path names the offending element, down to the
// ISSUE's canonical example `rules[3].guard: unknown variable "pc2"`.
func TestSpecErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string // expected SpecError.Path
		msg  string // expected full Error() when non-empty
	}{
		{name: "malformed JSON", doc: `{"format":`, path: "$"},
		{name: "trailing data", doc: minimal + `{}`, path: "$",
			msg: "$: trailing data after the spec document"},
		{name: "unknown top-level field", doc: `{"format": "verc3_model_v1", "nam": "typo"}`, path: "$"},
		{name: "bad format", doc: `{"format": "verc3_model_v9", "name": "m", "vars": [], "rules": []}`,
			path: "format",
			msg:  `format: unsupported format "verc3_model_v9" (this loader reads "verc3_model_v1")`},
		{name: "missing name", doc: `{"format": "verc3_model_v1", "vars": [], "rules": []}`, path: "name"},
		{name: "negative processes",
			doc:  `{"format": "verc3_model_v1", "name": "m", "processes": -1, "vars": [], "rules": []}`,
			path: "processes"},
		{name: "huge processes",
			doc:  `{"format": "verc3_model_v1", "name": "m", "processes": 1000000, "vars": [], "rules": []}`,
			path: "processes"},
		{name: "no rules",
			doc:  `{"format": "verc3_model_v1", "name": "m", "vars": [{"name": "x", "type": "bool"}], "rules": []}`,
			path: "rules"},
		{name: "unknown variable in guard",
			doc: `{
				"format": "verc3_model_v1", "name": "m",
				"vars": [{"name": "pc", "type": "bool"}],
				"rules": [
					{"name": "a", "action": ["pc = true"]},
					{"name": "b", "action": ["pc = true"]},
					{"name": "c", "action": ["pc = true"]},
					{"name": "d", "guard": "pc2", "action": ["pc = true"]}
				]
			}`,
			path: "rules[3].guard",
			msg:  `rules[3].guard: unknown variable "pc2"`},
		{name: "unknown variable in action",
			doc: `{
				"format": "verc3_model_v1", "name": "m",
				"vars": [{"name": "x", "type": "bool"}],
				"rules": [{"name": "a", "action": ["y = true"]}]
			}`,
			path: "rules[0].action[0]"},
		{name: "i outside per-process rule",
			doc: `{
				"format": "verc3_model_v1", "name": "m", "processes": 2,
				"vars": [{"name": "x", "type": "bool", "array": true}],
				"rules": [{"name": "a", "action": ["x[i] = true"]}]
			}`,
			path: "rules[0].action[0]"},
		{name: "duplicate variable",
			doc: `{
				"format": "verc3_model_v1", "name": "m",
				"vars": [{"name": "x", "type": "bool"}, {"name": "x", "type": "bool"}],
				"rules": [{"name": "a", "action": ["x = true"]}]
			}`,
			path: "vars[1].name"},
		{name: "one-candidate hole",
			doc: `{
				"format": "verc3_model_v1", "name": "m",
				"vars": [{"name": "x", "type": "bool"}],
				"rules": [{"name": "a", "action": [
					{"choose": "h", "among": [{"name": "only", "do": ["x = true"]}]}
				]}]
			}`,
			path: "rules[0].action[0].among",
			msg:  "rules[0].action[0].among: a hole needs at least two candidates"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := spec.Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("Parse accepted an invalid spec")
			}
			var se *spec.SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *spec.SpecError: %v", err, err)
			}
			if se.Path != tc.path {
				t.Errorf("error path %q, want %q (error: %v)", se.Path, tc.path, err)
			}
			if tc.msg != "" && se.Error() != tc.msg {
				t.Errorf("error %q, want %q", se.Error(), tc.msg)
			}
		})
	}
}

// TestSpecAppendKey checks the compiled state's keying contract: AppendKey
// allocates nothing beyond the caller's buffer, agrees injectively with
// the human-readable Key, and round-trips through Clone/CopyFrom.
func TestSpecAppendKey(t *testing.T) {
	m := loadSpec(t, "mutex.json")
	sys := m.System()
	st := sys.Initial()[0]
	ka, ok := st.(ts.KeyAppender)
	if !ok {
		t.Fatal("spec state does not implement ts.KeyAppender")
	}

	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(100, func() {
		buf = ka.AppendKey(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendKey allocates %.1f times per call, want 0", allocs)
	}

	// Walk a few transition layers and check Key/AppendKey injectivity:
	// distinct Keys must yield distinct binary keys and vice versa.
	byKey := map[string]string{}
	seen := map[string]bool{}
	frontier := []ts.State{st}
	for depth := 0; depth < 4 && len(frontier) > 0; depth++ {
		var next []ts.State
		for _, s := range frontier {
			k := s.Key()
			bk := string(s.(ts.KeyAppender).AppendKey(nil))
			if prev, dup := byKey[k]; dup {
				if prev != bk {
					t.Fatalf("state %q has two binary keys", k)
				}
				continue
			}
			for otherK, otherB := range byKey {
				if otherB == bk {
					t.Fatalf("states %q and %q share a binary key", k, otherK)
				}
			}
			byKey[k] = bk
			if seen[k] {
				continue
			}
			seen[k] = true
			for _, tr := range sys.Transitions(s) {
				succ, err := tr.Fire(ts.NewEnv(nil))
				if err != nil {
					t.Fatal(err)
				}
				next = append(next, succ)
			}
		}
		frontier = next
	}
	if len(byKey) < 4 {
		t.Fatalf("explored only %d distinct states; harness is broken", len(byKey))
	}
}

// TestSpecStateString spot-checks the named rendering counterexample
// traces use: variables appear by name with enum/pid values symbolic.
func TestSpecStateString(t *testing.T) {
	m := loadSpec(t, "mutex.json")
	st := m.System().Initial()[0]
	s := fmt.Sprintf("%v", st)
	for _, want := range []string{"pc", "Idle", "turn", "none"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("initial state rendering %q misses %q", s, want)
		}
	}
}
