package spec

import (
	"strconv"
	"strings"

	"verc3/internal/ts"
)

// layout is the immutable typed-variable layout shared by every state of a
// compiled model: one int32 slot per scalar variable and one per (array
// variable, process) pair, plus the per-slot encoding tables that make
// AppendKey allocation-free and injective.
type layout struct {
	name      string
	n         int // processes
	symmetric bool

	vars   []varInfo
	byName map[string]*varInfo
	enums  [][]string // enum value-name tables
	enumVals map[string]enumVal

	slots int
	// Per-slot key encoding: the stored value minus slotLo fits slotW bytes
	// (1 or 4, little-endian). Fixed per-slot widths keep the encoding
	// injective without separators.
	slotLo []int32
	slotW  []uint8

	// pidSlots lists the slots holding pid values (scalar pid variables and
	// pid array cells) — the values symmetry permutations must rename.
	pidSlots []int
}

type enumVal struct {
	enum    int
	ordinal int
}

// varInfo describes one declared variable.
type varInfo struct {
	name   string
	k      kind
	enum   int   // enum table index when k == kEnum
	lo, hi int32 // inclusive stored-value range (pid: lo is -1 when nullable)
	array  bool
	off    int // first slot
	init   int32
}

// finalize assigns slots and builds the encoding tables after vars are set.
func (l *layout) finalize() {
	l.byName = make(map[string]*varInfo, len(l.vars))
	for vi := range l.vars {
		v := &l.vars[vi]
		v.off = l.slots
		width := 1
		if v.array {
			width = l.n
		}
		l.slots += width
		l.byName[v.name] = v
		w := uint8(1)
		if int64(v.hi)-int64(v.lo) > 0xff {
			w = 4
		}
		for s := 0; s < width; s++ {
			l.slotLo = append(l.slotLo, v.lo)
			l.slotW = append(l.slotW, w)
			if v.k == kPid {
				l.pidSlots = append(l.pidSlots, v.off+s)
			}
		}
	}
}

// specState is a compiled model's state: the shared layout plus one int32
// per slot. It implements ts.State, ts.KeyAppender and ts.StateCopier, so
// dsl-built systems over it get binary fingerprints and successor recycling
// for free. The symmetric wrapper symState adds ts.Permutable.
type specState struct {
	lay  *layout
	vals []int32
}

// specCore extracts the underlying specState from either concrete type.
type specCore interface{ core() *specState }

func (s *specState) core() *specState { return s }

// newState builds the model's initial state.
func (l *layout) newState() *specState {
	s := &specState{lay: l, vals: make([]int32, l.slots)}
	for _, v := range l.vars {
		width := 1
		if v.array {
			width = l.n
		}
		for i := 0; i < width; i++ {
			s.vals[v.off+i] = v.init
		}
	}
	return s
}

// Key implements ts.State: the slot values joined with commas — canonical
// and injective (the layout is fixed per model).
func (s *specState) Key() string {
	var b strings.Builder
	b.Grow(len(s.vals) * 3)
	for i, v := range s.vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	return b.String()
}

// AppendKey implements ts.KeyAppender: each slot value offset by the slot's
// minimum and emitted in its precomputed fixed width (1 or 4 bytes,
// little-endian). Fixed widths keep the encoding injective; the only
// allocation is dst growth.
func (s *specState) AppendKey(dst []byte) []byte {
	lo, w := s.lay.slotLo, s.lay.slotW
	for i, v := range s.vals {
		u := uint32(v - lo[i])
		if w[i] == 1 {
			dst = append(dst, byte(u))
		} else {
			dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
	}
	return dst
}

// Clone implements ts.State.
func (s *specState) Clone() ts.State {
	vals := make([]int32, len(s.vals))
	copy(vals, s.vals)
	return &specState{lay: s.lay, vals: vals}
}

// CopyFrom implements ts.StateCopier, the capability that opts dsl-built
// systems into successor recycling.
func (s *specState) CopyFrom(src ts.State) {
	o := src.(specCore).core()
	s.lay = o.lay
	s.vals = append(s.vals[:0], o.vals...)
}

// String renders the state with variable and enum value names, for traces.
func (s *specState) String() string {
	var b strings.Builder
	for vi := range s.lay.vars {
		v := &s.lay.vars[vi]
		if vi > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.name)
		b.WriteByte('=')
		if v.array {
			b.WriteByte('[')
			for i := 0; i < s.lay.n; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(s.renderVal(v, s.vals[v.off+i]))
			}
			b.WriteByte(']')
		} else {
			b.WriteString(s.renderVal(v, s.vals[v.off]))
		}
	}
	return b.String()
}

func (s *specState) renderVal(v *varInfo, val int32) string {
	switch v.k {
	case kBool:
		if val != 0 {
			return "true"
		}
		return "false"
	case kEnum:
		return s.lay.enums[v.enum][val]
	case kPid:
		if val == pidNone {
			return "none"
		}
	}
	return strconv.FormatInt(int64(val), 10)
}

// symState is the state of a model declared symmetric: it adds the
// ts.Permutable / ts.InPlacePermuter capabilities over the declared
// per-process arrays (slots permuted) and pid-typed variables (values
// renamed). A separate concrete type — rather than a flag on specState —
// because interface satisfaction is static: non-symmetric models must not
// offer Permute at all.
type symState struct{ specState }

// Clone implements ts.State, preserving the concrete type (the dsl builder
// asserts Clone's result back to the state type it was built with).
func (s *symState) Clone() ts.State {
	vals := make([]int32, len(s.vals))
	copy(vals, s.vals)
	return &symState{specState{lay: s.lay, vals: vals}}
}

// NumAgents implements ts.Permutable.
func (s *symState) NumAgents() int { return s.lay.n }

// Scratch implements ts.InPlacePermuter.
func (s *symState) Scratch() ts.State { return s.Clone() }

// PermuteInto implements ts.InPlacePermuter: agent a's array cells move to
// perm[a], and pid values v become perm[v] (none stays none).
func (s *symState) PermuteInto(dst ts.State, perm []int) {
	d := dst.(specCore).core()
	for vi := range s.lay.vars {
		v := &s.lay.vars[vi]
		if v.array {
			for a := 0; a < s.lay.n; a++ {
				d.vals[v.off+perm[a]] = s.vals[v.off+a]
			}
		} else {
			d.vals[v.off] = s.vals[v.off]
		}
	}
	for _, slot := range s.lay.pidSlots {
		if p := d.vals[slot]; p >= 0 {
			d.vals[slot] = int32(perm[p])
		}
	}
}

// Permute implements ts.Permutable.
func (s *symState) Permute(perm []int) ts.State {
	cp := s.Clone()
	s.PermuteInto(cp, perm)
	return cp
}
