package statespace_test

import (
	"fmt"
	"testing"

	"verc3/internal/statespace"
)

// TestOfBytesMatchesOfString pins the contract the keying pipeline rests
// on: the binary appender path (OfBytes over an encoding buffer) and the
// string path (OfString) hash identical content to identical fingerprints,
// so switching a model to ts.KeyAppender can never change dedupe results
// for the same encoded bytes.
func TestOfBytesMatchesOfString(t *testing.T) {
	cases := []string{"", "a", "msi|c0:M.1.0|net=[]", string([]byte{0, 255, 0, 1})}
	for i := 0; i < 100; i++ {
		cases = append(cases, fmt.Sprintf("state-%d|%b", i*7919, i))
	}
	for _, s := range cases {
		if got, want := statespace.OfBytes([]byte(s)), statespace.OfString(s); got != want {
			t.Errorf("OfBytes(%q) = %x, OfString = %x", s, got, want)
		}
	}
}

// TestHasherIncremental checks that any split of the input across
// Add/AddByte/AddString calls yields the one-shot fingerprint.
func TestHasherIncremental(t *testing.T) {
	content := "c0:M dir:{owner=1} net=[Data@2]"
	want := statespace.OfString(content)

	h := statespace.NewHasher()
	h.AddString(content)
	if got := h.Sum(); got != want {
		t.Errorf("AddString whole: %x, want %x", got, want)
	}

	h = statespace.NewHasher()
	for i := 0; i < len(content); i++ {
		h.AddByte(content[i])
	}
	if got := h.Sum(); got != want {
		t.Errorf("AddByte-wise: %x, want %x", got, want)
	}

	for split := 0; split <= len(content); split++ {
		h = statespace.NewHasher()
		h.Add([]byte(content[:split]))
		h.AddString(content[split:])
		if got := h.Sum(); got != want {
			t.Errorf("split at %d: %x, want %x", split, got, want)
		}
	}

	// Sum is a read: feeding more content afterwards keeps accumulating.
	h = statespace.NewHasher()
	h.AddString(content[:3])
	_ = h.Sum()
	h.AddString(content[3:])
	if got := h.Sum(); got != want {
		t.Errorf("Sum mid-stream disturbed the state: %x, want %x", got, want)
	}
}

// TestFingerprintDeterministicAndDistinct checks OfString is stable and
// collision-free over a realistic population of state keys.
func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	seen := make(map[statespace.Fingerprint]string, 100000)
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("cache%d:M dir:{owner=%d,sharers=%b} net=[%d]", i%7, i%5, i, i)
		fp := statespace.OfString(k)
		if fp != statespace.OfString(k) {
			t.Fatalf("OfString(%q) not deterministic", k)
		}
		if prev, dup := seen[fp]; dup && prev != k {
			t.Fatalf("collision: %q and %q -> %x", prev, k, fp)
		}
		seen[fp] = k
	}
}
