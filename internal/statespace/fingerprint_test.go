package statespace_test

import (
	"fmt"
	"testing"

	"verc3/internal/statespace"
)

// TestFingerprintDeterministicAndDistinct checks OfString is stable and
// collision-free over a realistic population of state keys.
func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	seen := make(map[statespace.Fingerprint]string, 100000)
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("cache%d:M dir:{owner=%d,sharers=%b} net=[%d]", i%7, i%5, i, i)
		fp := statespace.OfString(k)
		if fp != statespace.OfString(k) {
			t.Fatalf("OfString(%q) not deterministic", k)
		}
		if prev, dup := seen[fp]; dup && prev != k {
			t.Fatalf("collision: %q and %q -> %x", prev, k, fp)
		}
		seen[fp] = k
	}
}
