package statespace

import (
	"sync"
	"sync/atomic"
)

// ExpandLevel fans one breadth-first level out over a pool of workers.
//
// expand is called once per item; successors belonging to the next level
// are handed to emit, which appends to a worker-local slice (no locking on
// the emission path). worker is the index of the executing worker in
// [0, workers): it is stable for the goroutine making the call, so callers
// hang per-worker scratch (key buffers, canonicalization state) off it
// instead of sharing or locking. expand returns stop=true to end
// exploration early (property violation, state cap) or a non-nil error to
// abort the whole search; either ends the level without processing the
// remaining items.
//
// ExpandLevel returns the concatenated next level, whether a stop was
// requested, and the first error observed. The order of the returned items
// depends on work scheduling and is NOT deterministic across runs — the
// level-synchronous structure guarantees BFS depth semantics regardless.
//
// workers <= 1 (or a single-item level) runs inline on the calling
// goroutine, in item order (worker index 0), with zero scheduling overhead.
func ExpandLevel[T any](workers int, level []T, expand func(worker int, item T, emit func(T)) (stop bool, err error)) (next []T, stopped bool, err error) {
	if workers > len(level) {
		workers = len(level)
	}
	if workers <= 1 {
		emit := func(t T) { next = append(next, t) }
		for _, it := range level {
			stop, err := expand(0, it, emit)
			if err != nil {
				return nil, true, err
			}
			if stop {
				return next, true, nil
			}
		}
		return next, false, nil
	}

	// Workers claim fixed-size chunks of the level via an atomic cursor:
	// cheap, cache-friendly, and self-balancing when some states have far
	// more successors than others.
	chunk := len(level) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}
	var (
		cursor   atomic.Int64
		stopFlag atomic.Bool
		errOnce  atomic.Pointer[errBox]
		locals   = make([][]T, workers)
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Accumulate in a goroutine-local slice and publish it once on
			// exit: appending through locals[w] directly would read-modify-
			// write neighbouring slice headers' cache lines on every emitted
			// state (false sharing on the hottest path).
			var buf []T
			defer func() { locals[w] = buf }()
			emit := func(t T) { buf = append(buf, t) }
			for !stopFlag.Load() {
				hi := cursor.Add(int64(chunk))
				lo := hi - int64(chunk)
				if lo >= int64(len(level)) {
					return
				}
				if hi > int64(len(level)) {
					hi = int64(len(level))
				}
				for i := lo; i < hi; i++ {
					if stopFlag.Load() {
						return
					}
					stop, err := expand(w, level[i], emit)
					if err != nil {
						errOnce.CompareAndSwap(nil, &errBox{err})
						stopFlag.Store(true)
						return
					}
					if stop {
						stopFlag.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if eb := errOnce.Load(); eb != nil {
		return nil, true, eb.err
	}
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	next = make([]T, 0, total)
	for _, l := range locals {
		next = append(next, l...)
	}
	return next, stopFlag.Load(), nil
}

type errBox struct{ err error }
