package statespace_test

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	"verc3/internal/statespace"
)

// expandDoubling is a synthetic successor function: item n emits 2n+1 and
// 2n+2 while below a bound — a binary tree, so every level is exactly the
// tree level and the union of all levels is 0..bound-1.
func expandDoubling(bound int) func(int, int, func(int)) (bool, error) {
	return func(_ int, n int, emit func(int)) (bool, error) {
		for _, c := range []int{2*n + 1, 2*n + 2} {
			if c < bound {
				emit(c)
			}
		}
		return false, nil
	}
}

// TestExpandLevelMatchesSequential checks the parallel expansion of a level
// emits exactly the same multiset as the sequential one, for several worker
// counts.
func TestExpandLevelMatchesSequential(t *testing.T) {
	level := make([]int, 200)
	for i := range level {
		level[i] = i
	}
	want, stopped, err := statespace.ExpandLevel(1, level, expandDoubling(1000))
	if err != nil || stopped {
		t.Fatalf("sequential: stopped=%v err=%v", stopped, err)
	}
	sort.Ints(want)
	for _, workers := range []int{2, 4, 16, 1000} {
		got, stopped, err := statespace.ExpandLevel(workers, level, expandDoubling(1000))
		if err != nil || stopped {
			t.Fatalf("workers=%d: stopped=%v err=%v", workers, stopped, err)
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d items, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestExpandLevelStop checks a stop request ends the level early and is
// reported.
func TestExpandLevelStop(t *testing.T) {
	level := make([]int, 10000)
	var processed atomic.Int64
	_, stopped, err := statespace.ExpandLevel(4, level, func(int, int, func(int)) (bool, error) {
		return processed.Add(1) == 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Error("stop not reported")
	}
	if n := processed.Load(); n == int64(len(level)) {
		t.Error("stop did not cut the level short")
	}
}

// TestExpandLevelError checks an expansion error aborts and propagates.
func TestExpandLevelError(t *testing.T) {
	boom := errors.New("boom")
	level := make([]int, 1000)
	for _, workers := range []int{1, 4} {
		_, stopped, err := statespace.ExpandLevel(workers, level, func(_ int, n int, _ func(int)) (bool, error) {
			return false, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
		if !stopped {
			t.Errorf("workers=%d: error must imply stopped", workers)
		}
	}
}

// TestExpandLevelWorkerIndex checks the per-worker scratch contract: every
// expand call carries a worker index in [0, workers), the index is stable
// for the executing goroutine (two calls with the same index never run
// concurrently), and the inline path always reports index 0.
func TestExpandLevelWorkerIndex(t *testing.T) {
	_, _, err := statespace.ExpandLevel(1, []int{1, 2, 3}, func(w int, _ int, _ func(int)) (bool, error) {
		if w != 0 {
			t.Errorf("inline path: worker index %d, want 0", w)
		}
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	level := make([]int, 5000)
	var busy [workers]atomic.Bool
	_, _, err = statespace.ExpandLevel(workers, level, func(w int, _ int, _ func(int)) (bool, error) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
			return true, nil
		}
		if !busy[w].CompareAndSwap(false, true) {
			t.Errorf("worker index %d used concurrently — per-worker scratch would race", w)
			return true, nil
		}
		busy[w].Store(false)
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExpandLevelEmpty checks the degenerate cases.
func TestExpandLevelEmpty(t *testing.T) {
	next, stopped, err := statespace.ExpandLevel(4, nil, expandDoubling(10))
	if err != nil || stopped || len(next) != 0 {
		t.Fatalf("empty level: next=%v stopped=%v err=%v", next, stopped, err)
	}
}
