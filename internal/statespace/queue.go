package statespace

// Queue is a growable ring buffer used as the sequential exploration
// frontier: PushBack + PopFront is FIFO (breadth-first order), PushBack +
// PopBack is LIFO (depth-first order). Every pop zeroes the vacated slot,
// so popped elements become collectible immediately — with trace recording
// off this is what bounds retained exploration memory to the frontier
// high-water mark instead of the whole state space (the previous
// slice-with-reslicing frontier kept every popped element reachable through
// the backing array). The zero Queue is ready to use.
type Queue[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
	peak int // high-water mark of n
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Peak returns the largest length the queue ever reached.
func (q *Queue[T]) Peak() int { return q.peak }

// PushBack appends v at the back.
func (q *Queue[T]) PushBack(v T) {
	if q.n == len(q.buf) {
		grown := make([]T, max(2*len(q.buf), 16))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	if q.n > q.peak {
		q.peak = q.n
	}
}

// PopFront removes and returns the front element; ok is false when empty.
func (q *Queue[T]) PopFront() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	var zero T
	v = q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.maybeShrink()
	return v, true
}

// PopBack removes and returns the back element; ok is false when empty.
func (q *Queue[T]) PopBack() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	var zero T
	i := (q.head + q.n - 1) % len(q.buf)
	v = q.buf[i]
	q.buf[i] = zero
	q.n--
	q.maybeShrink()
	return v, true
}

// Each calls f on every queued element in FIFO order (front to back)
// without consuming the queue. A non-nil error from f stops the walk and
// is returned. Checkpointing uses it to snapshot the frontier in the exact
// order a resumed run will re-pop it.
func (q *Queue[T]) Each(f func(v T) error) error {
	for i := 0; i < q.n; i++ {
		if err := f(q.buf[(q.head+i)%len(q.buf)]); err != nil {
			return err
		}
	}
	return nil
}

// shrinkMin is the buffer size below which the queue never shrinks: halving
// tiny buffers saves nothing and defeats the growth amortization.
const shrinkMin = 64

// maybeShrink halves the ring buffer when fill drops below a quarter, so
// the memory of a wide exploration level is returned while the run is still
// going rather than held until the queue itself is collected. The quarter
// threshold gives hysteresis against the doubling growth: right after a
// shrink the buffer is at most half full, so neither an immediate re-grow
// nor an immediate re-shrink can occur. Amortization survives: a shrink
// pays one copy of n elements but only after at least n pops since the
// buffer last grew or shrank.
func (q *Queue[T]) maybeShrink() {
	if len(q.buf) < shrinkMin || q.n >= len(q.buf)/4 {
		return
	}
	half := len(q.buf) / 2
	shrunk := make([]T, half)
	for i := 0; i < q.n; i++ {
		shrunk[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = shrunk, 0
}
