package statespace

import "testing"

// TestQueueFIFO checks BFS order and the high-water mark across a
// grow-shrink-grow cycle that wraps the ring.
func TestQueueFIFO(t *testing.T) {
	var q Queue[int]
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < 40; i++ {
		q.PushBack(i)
	}
	for i := 0; i < 30; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d, %v", i, v, ok)
		}
	}
	// Wrap the ring: head is deep into the buffer now.
	for i := 40; i < 100; i++ {
		q.PushBack(i)
	}
	for i := 30; i < 100; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d, %v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
	if q.Peak() != 70 {
		t.Errorf("Peak = %d, want 70 (10 left + 60 pushed)", q.Peak())
	}
}

// TestQueueLIFO checks DFS order: PushBack + PopBack is a stack.
func TestQueueLIFO(t *testing.T) {
	var q Queue[string]
	q.PushBack("a")
	q.PushBack("b")
	q.PushBack("c")
	for _, want := range []string{"c", "b", "a"} {
		v, ok := q.PopBack()
		if !ok || v != want {
			t.Fatalf("PopBack = %q, %v, want %q", v, ok, want)
		}
	}
	if _, ok := q.PopBack(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestQueueReleasesPoppedSlots checks pops zero the vacated slot — the
// property that stops the frontier from retaining popped states.
func TestQueueReleasesPoppedSlots(t *testing.T) {
	var q Queue[*int]
	x, y := new(int), new(int)
	q.PushBack(x)
	q.PushBack(y)
	q.PopFront()
	q.PopBack()
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after pop", i)
		}
	}
}

// TestQueueMixedOps interleaves fronts and backs against a reference deque.
func TestQueueMixedOps(t *testing.T) {
	var q Queue[int]
	var ref []int
	push := func(v int) { q.PushBack(v); ref = append(ref, v) }
	popF := func() {
		v, ok := q.PopFront()
		if len(ref) == 0 {
			if ok {
				t.Fatal("PopFront on empty succeeded")
			}
			return
		}
		if !ok || v != ref[0] {
			t.Fatalf("PopFront = %d, %v, want %d", v, ok, ref[0])
		}
		ref = ref[1:]
	}
	popB := func() {
		v, ok := q.PopBack()
		if len(ref) == 0 {
			if ok {
				t.Fatal("PopBack on empty succeeded")
			}
			return
		}
		if !ok || v != ref[len(ref)-1] {
			t.Fatalf("PopBack = %d, %v, want %d", v, ok, ref[len(ref)-1])
		}
		ref = ref[:len(ref)-1]
	}
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0, 1, 2:
			push(i)
		case 3:
			popF()
		case 4:
			popB()
		}
		if q.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", i, q.Len(), len(ref))
		}
	}
}
