package statespace

import "testing"

// TestQueueFIFO checks BFS order and the high-water mark across a
// grow-shrink-grow cycle that wraps the ring.
func TestQueueFIFO(t *testing.T) {
	var q Queue[int]
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < 40; i++ {
		q.PushBack(i)
	}
	for i := 0; i < 30; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d, %v", i, v, ok)
		}
	}
	// Wrap the ring: head is deep into the buffer now.
	for i := 40; i < 100; i++ {
		q.PushBack(i)
	}
	for i := 30; i < 100; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d, %v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
	if q.Peak() != 70 {
		t.Errorf("Peak = %d, want 70 (10 left + 60 pushed)", q.Peak())
	}
}

// TestQueueLIFO checks DFS order: PushBack + PopBack is a stack.
func TestQueueLIFO(t *testing.T) {
	var q Queue[string]
	q.PushBack("a")
	q.PushBack("b")
	q.PushBack("c")
	for _, want := range []string{"c", "b", "a"} {
		v, ok := q.PopBack()
		if !ok || v != want {
			t.Fatalf("PopBack = %q, %v, want %q", v, ok, want)
		}
	}
	if _, ok := q.PopBack(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestQueueReleasesPoppedSlots checks pops zero the vacated slot — the
// property that stops the frontier from retaining popped states.
func TestQueueReleasesPoppedSlots(t *testing.T) {
	var q Queue[*int]
	x, y := new(int), new(int)
	q.PushBack(x)
	q.PushBack(y)
	q.PopFront()
	q.PopBack()
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after pop", i)
		}
	}
}

// TestQueueMixedOps interleaves fronts and backs against a reference deque.
func TestQueueMixedOps(t *testing.T) {
	var q Queue[int]
	var ref []int
	push := func(v int) { q.PushBack(v); ref = append(ref, v) }
	popF := func() {
		v, ok := q.PopFront()
		if len(ref) == 0 {
			if ok {
				t.Fatal("PopFront on empty succeeded")
			}
			return
		}
		if !ok || v != ref[0] {
			t.Fatalf("PopFront = %d, %v, want %d", v, ok, ref[0])
		}
		ref = ref[1:]
	}
	popB := func() {
		v, ok := q.PopBack()
		if len(ref) == 0 {
			if ok {
				t.Fatal("PopBack on empty succeeded")
			}
			return
		}
		if !ok || v != ref[len(ref)-1] {
			t.Fatalf("PopBack = %d, %v, want %d", v, ok, ref[len(ref)-1])
		}
		ref = ref[:len(ref)-1]
	}
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0, 1, 2:
			push(i)
		case 3:
			popF()
		case 4:
			popB()
		}
		if q.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", i, q.Len(), len(ref))
		}
	}
}

// TestQueueEach checks the non-consuming FIFO walk checkpointing relies
// on: pop order and Each order must agree even when the ring has wrapped,
// the walk must not consume, and an error from the callback stops it.
func TestQueueEach(t *testing.T) {
	var q Queue[int]
	// Wrap the ring so Each has to chase head around the buffer edge.
	for i := 0; i < 20; i++ {
		q.PushBack(i)
	}
	for i := 0; i < 15; i++ {
		q.PopFront()
	}
	for i := 20; i < 40; i++ {
		q.PushBack(i)
	}
	var walked []int
	if err := q.Each(func(v int) error { walked = append(walked, v); return nil }); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 25 {
		t.Fatalf("Each consumed the queue: Len = %d", q.Len())
	}
	for i, v := range walked {
		if want := 15 + i; v != want {
			t.Fatalf("walked[%d] = %d, want %d", i, v, want)
		}
	}
	// The walk order must be exactly the pop order.
	for i, want := range walked {
		v, ok := q.PopFront()
		if !ok || v != want {
			t.Fatalf("pop #%d = %d, %v, want %d (Each/pop order diverged)", i, v, ok, want)
		}
	}
	// An error stops the walk where it happened.
	q.PushBack(1)
	q.PushBack(2)
	calls := 0
	errStop := errTest("stop")
	if err := q.Each(func(int) error { calls++; return errStop }); err != errStop {
		t.Fatalf("Each error = %v, want errStop", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring, want 1", calls)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

// TestQueueShrinksWhenDrained checks the ring returns memory while a run is
// still going: grow wide, drain to below quarter fill, and the buffer must
// halve (repeatedly, down toward shrinkMin) while preserving FIFO contents.
func TestQueueShrinksWhenDrained(t *testing.T) {
	var q Queue[int]
	const wide = 1 << 12
	for i := 0; i < wide; i++ {
		q.PushBack(i)
	}
	grown := len(q.buf)
	if grown < wide {
		t.Fatalf("buffer %d after %d pushes", grown, wide)
	}
	for i := 0; i < wide-8; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d, %v", i, v, ok)
		}
	}
	if len(q.buf) >= grown/4 {
		t.Errorf("buffer still %d (was %d) with %d elements left — never shrank", len(q.buf), grown, q.n)
	}
	// Remaining elements survived the copies, in order.
	for i := wide - 8; i < wide; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("post-shrink PopFront = %d, %v, want %d", v, ok, i)
		}
	}
	if q.Peak() != wide {
		t.Errorf("Peak = %d, want %d", q.Peak(), wide)
	}
}

// TestQueueShrinkFloor: small buffers never shrink (shrinkMin), so the
// empty-after-drain queue keeps a reusable allocation.
func TestQueueShrinkFloor(t *testing.T) {
	var q Queue[int]
	for i := 0; i < shrinkMin; i++ {
		q.PushBack(i)
	}
	for q.Len() > 0 {
		q.PopBack()
	}
	if len(q.buf) < shrinkMin/2 {
		t.Errorf("buffer shrank to %d, below the %d floor's half", len(q.buf), shrinkMin/2)
	}
}

// TestQueueShrinkHysteresis: a shrink must leave the buffer at most half
// full, so push/pop oscillation at the boundary cannot thrash copies.
func TestQueueShrinkHysteresis(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 1024; i++ {
		q.PushBack(i)
	}
	for q.Len() > 1024/4 {
		q.PopFront()
	}
	// Sit at the shrink boundary and oscillate.
	copies := 0
	last := len(q.buf)
	for i := 0; i < 1000; i++ {
		q.PushBack(i)
		q.PopFront()
		if len(q.buf) != last {
			copies++
			last = len(q.buf)
		}
	}
	if copies > 2 {
		t.Errorf("%d buffer reallocations during boundary oscillation — hysteresis broken", copies)
	}
}
