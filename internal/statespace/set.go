package statespace

import (
	"sync"
	"sync/atomic"
)

const (
	// DefaultShardBits is the shard count exponent used when a Set is built
	// with shardBits <= 0: 2⁸ = 256 shards keeps the expected queue depth
	// per shard lock near zero even with dozens of exploration workers.
	DefaultShardBits = 8
	// MaxShardBits caps the shard count at 2¹⁶; beyond that the per-shard
	// map headers dominate memory for no additional concurrency.
	MaxShardBits = 16
)

// shard is one lock-striped slice of the set. It is padded to a cache line
// so neighbouring shard mutexes do not false-share under contention.
type shard struct {
	mu sync.Mutex
	m  map[Fingerprint]struct{}
	_  [64 - 16]byte
}

// Set is a sharded visited set keyed by Fingerprint. All methods are safe
// for concurrent use; Add is the exploration hot path and takes only the
// single shard lock selected by the fingerprint's low bits.
type Set struct {
	shards []shard
	mask   uint64
	count  atomic.Int64
}

// NewSet builds a set with 2^shardBits shards. shardBits <= 0 selects
// DefaultShardBits; values above MaxShardBits are clamped.
func NewSet(shardBits int) *Set {
	if shardBits <= 0 {
		shardBits = DefaultShardBits
	}
	if shardBits > MaxShardBits {
		shardBits = MaxShardBits
	}
	n := 1 << uint(shardBits)
	s := &Set{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[Fingerprint]struct{}, 64)
	}
	return s
}

func (s *Set) shard(fp Fingerprint) *shard {
	return &s.shards[uint64(fp)&s.mask]
}

// Add inserts fp and reports whether it was absent (i.e. the caller is the
// first to visit this state and owns its expansion).
func (s *Set) Add(fp Fingerprint) bool {
	sh := s.shard(fp)
	sh.mu.Lock()
	if _, dup := sh.m[fp]; dup {
		sh.mu.Unlock()
		return false
	}
	sh.m[fp] = struct{}{}
	sh.mu.Unlock()
	s.count.Add(1)
	return true
}

// Contains reports whether fp has been added.
func (s *Set) Contains(fp Fingerprint) bool {
	sh := s.shard(fp)
	sh.mu.Lock()
	_, ok := sh.m[fp]
	sh.mu.Unlock()
	return ok
}

// Len returns the number of distinct fingerprints added. It reads a single
// atomic counter and is cheap enough for per-state cap checks.
func (s *Set) Len() int { return int(s.count.Load()) }

// Shards reports the shard count (a power of two).
func (s *Set) Shards() int { return len(s.shards) }
