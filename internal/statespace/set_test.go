package statespace_test

import (
	"fmt"
	"sync"
	"testing"

	"verc3/internal/statespace"
)

// TestFingerprintDeterministicAndDistinct checks OfString is stable and
// collision-free over a realistic population of state keys.
func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	seen := make(map[statespace.Fingerprint]string, 100000)
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("cache%d:M dir:{owner=%d,sharers=%b} net=[%d]", i%7, i%5, i, i)
		fp := statespace.OfString(k)
		if fp != statespace.OfString(k) {
			t.Fatalf("OfString(%q) not deterministic", k)
		}
		if prev, dup := seen[fp]; dup && prev != k {
			t.Fatalf("collision: %q and %q -> %x", prev, k, fp)
		}
		seen[fp] = k
	}
}

// TestSetAddContainsLen checks the basic set contract: first Add wins,
// duplicates are rejected, Len counts distinct fingerprints.
func TestSetAddContainsLen(t *testing.T) {
	s := statespace.NewSet(3)
	if s.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", s.Shards())
	}
	for i := 0; i < 1000; i++ {
		fp := statespace.OfString(fmt.Sprint(i))
		if !s.Add(fp) {
			t.Fatalf("first Add(%d) returned false", i)
		}
		if s.Add(fp) {
			t.Fatalf("duplicate Add(%d) returned true", i)
		}
		if !s.Contains(fp) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	if s.Contains(statespace.OfString("absent")) {
		t.Error("Contains reported an absent fingerprint")
	}
}

// TestSetShardClamping checks the bits are defaulted and capped.
func TestSetShardClamping(t *testing.T) {
	if got := statespace.NewSet(0).Shards(); got != 1<<statespace.DefaultShardBits {
		t.Errorf("default shards = %d", got)
	}
	if got := statespace.NewSet(-3).Shards(); got != 1<<statespace.DefaultShardBits {
		t.Errorf("negative bits shards = %d", got)
	}
	if got := statespace.NewSet(40).Shards(); got != 1<<statespace.MaxShardBits {
		t.Errorf("oversized bits shards = %d", got)
	}
}

// TestSetConcurrentAdds is the race-detector test for the sharded set:
// overlapping goroutines fight over the same fingerprint population and
// exactly one Add per fingerprint may win.
func TestSetConcurrentAdds(t *testing.T) {
	const (
		workers = 8
		keys    = 20000
	)
	s := statespace.NewSet(4)
	wins := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker attempts every key, in a worker-dependent order.
			for i := 0; i < keys; i++ {
				k := (i*(w+1) + w) % keys
				if s.Add(statespace.OfString(fmt.Sprint(k))) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range wins {
		total += n
	}
	if total != keys {
		t.Errorf("total Add wins = %d, want %d (each fingerprint claimed exactly once)", total, keys)
	}
	if s.Len() != keys {
		t.Errorf("Len = %d, want %d", s.Len(), keys)
	}
}
