// Package statespace provides the exploration substrate of VerC3's
// embedded model checker: 64-bit state fingerprints, a ring-buffer
// frontier queue, a level-synchronous work distributor for parallel
// breadth-first search, an optional parent-linked trace store, and a
// memory profile (Stats) of an exploration run. The visited-set storage
// itself is pluggable and lives in the sibling package internal/visited
// (map, flat open-addressing, and SPIN-style bitstate backends), all keyed
// by this package's Fingerprint.
//
// The package is deliberately independent of the modelling layer (it knows
// nothing about ts.State): the checker canonicalizes a state to its key
// string, fingerprints it with OfString, and stores only the fingerprint.
// Dropping the string keys removes the dominant allocation of the
// exploration hot path and shrinks the visited set to 8 bytes of payload
// per state.
//
// Exploration is trace-optional. The frontier (Queue sequentially, the
// levels of ExpandLevel in parallel) carries states directly and releases
// them as they are expanded, so with counterexample recording off nothing
// per-state outlives its expansion except the 8-byte fingerprint — the
// memory regime of SPIN's and TLC's fingerprint-only modes. Only when the
// caller wants replayable counterexamples does TraceStore allocate one
// parent-linked TraceNode per discovered state, restoring the O(states)
// memory the traces inherently cost. Stats reports both regimes (visited
// set size, frontier high-water mark, trace nodes, a structural
// bytes-retained estimate) so the trade is measurable.
//
// Fingerprinting trades a vanishing probability of unsoundness for this
// speed: two distinct states colliding on all 64 bits would merge in the
// visited set (Murphi's hash compaction makes the same trade). By the
// birthday bound (≈ n²/2⁶⁵) a million-state exploration has a collision
// probability around 3·10⁻⁸. The synthesis engine additionally re-checks
// every reported solution with trace recording on, so a collision during
// the traceless search cannot smuggle a wrong candidate into the results.
package statespace

// Fingerprint is the 64-bit FNV-1a hash of a state's canonical key. Both
// the sequential and the parallel exploration drivers key their visited
// sets by Fingerprint, so they dedupe — and therefore count — states
// identically.
type Fingerprint uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// OfString fingerprints a canonical state key (FNV-1a, 64-bit).
func OfString(s string) Fingerprint {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return Fingerprint(h)
}
