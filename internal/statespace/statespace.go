// Package statespace provides the exploration substrate of VerC3's
// embedded model checker: 64-bit state fingerprints, a ring-buffer
// frontier queue, a level-synchronous work distributor for parallel
// breadth-first search, an optional parent-linked trace store, and a
// memory profile (Stats) of an exploration run. The visited-set storage
// itself is pluggable and lives in the sibling package internal/visited
// (map, flat open-addressing, and SPIN-style bitstate backends), all keyed
// by this package's Fingerprint.
//
// The package is deliberately independent of the modelling layer (it knows
// nothing about ts.State): the checker canonicalizes a state to its
// canonical encoding — a reusable binary buffer when the state implements
// ts.KeyAppender, its Key string otherwise — fingerprints it with OfBytes /
// OfString (the two agree byte-for-byte on the same content), and stores
// only the fingerprint. Dropping per-state key materialization removes the
// dominant allocation of the exploration hot path and shrinks the visited
// set to 8 bytes of payload per state; Hasher additionally supports
// fingerprinting content that arrives in pieces without concatenating it.
//
// Exploration is trace-optional. The frontier (Queue sequentially, the
// levels of ExpandLevel in parallel) carries states directly and releases
// them as they are expanded, so with counterexample recording off nothing
// per-state outlives its expansion except the 8-byte fingerprint — the
// memory regime of SPIN's and TLC's fingerprint-only modes. Only when the
// caller wants replayable counterexamples does TraceStore allocate one
// parent-linked TraceNode per discovered state, restoring the O(states)
// memory the traces inherently cost. Stats reports both regimes (visited
// set size, frontier high-water mark, trace nodes, a structural
// bytes-retained estimate) so the trade is measurable.
//
// Fingerprinting trades a vanishing probability of unsoundness for this
// speed: two distinct states colliding on all 64 bits would merge in the
// visited set (Murphi's hash compaction makes the same trade). By the
// birthday bound (≈ n²/2⁶⁵) a million-state exploration has a collision
// probability around 3·10⁻⁸. The synthesis engine additionally re-checks
// every reported solution with trace recording on, so a collision during
// the traceless search cannot smuggle a wrong candidate into the results.
package statespace

// Fingerprint is the 64-bit FNV-1a hash of a state's canonical key. Both
// the sequential and the parallel exploration drivers key their visited
// sets by Fingerprint, so they dedupe — and therefore count — states
// identically.
type Fingerprint uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// OfString fingerprints a canonical state key (FNV-1a, 64-bit).
func OfString(s string) Fingerprint {
	h := NewHasher()
	h.AddString(s)
	return h.Sum()
}

// OfBytes fingerprints a canonical binary state encoding (FNV-1a, 64-bit).
// It is the allocation-free sibling of OfString: OfBytes(b) ==
// OfString(string(b)) for every b, so the appender keying path and the
// legacy string path hash identical content to identical fingerprints.
func OfBytes(b []byte) Fingerprint {
	h := NewHasher()
	h.Add(b)
	return h.Sum()
}

// Hasher is an incremental 64-bit FNV-1a fingerprint accumulator for
// content that arrives in pieces: feeding it the concatenation of any
// sequence of Add/AddByte/AddString calls yields exactly OfBytes/OfString
// of the concatenated content. (The methods are deliberately not the
// io.Writer family — they return nothing, cannot fail, and must never
// force a caller through an interface.) The zero value is NOT ready; start
// from NewHasher (FNV's offset basis is non-zero).
type Hasher struct{ h uint64 }

// NewHasher returns a Hasher primed with the FNV-1a offset basis.
func NewHasher() Hasher { return Hasher{h: fnvOffset64} }

// Add folds b into the running fingerprint.
func (h *Hasher) Add(b []byte) {
	x := h.h
	for i := 0; i < len(b); i++ {
		x ^= uint64(b[i])
		x *= fnvPrime64
	}
	h.h = x
}

// AddByte folds a single byte into the running fingerprint.
func (h *Hasher) AddByte(b byte) {
	h.h = (h.h ^ uint64(b)) * fnvPrime64
}

// AddString folds s into the running fingerprint.
func (h *Hasher) AddString(s string) {
	x := h.h
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime64
	}
	h.h = x
}

// Sum returns the fingerprint of everything written so far. The hasher
// remains usable (Sum is a read).
func (h *Hasher) Sum() Fingerprint { return Fingerprint(h.h) }
