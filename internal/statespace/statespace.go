// Package statespace provides the state-storage and parallel-exploration
// substrate of VerC3's embedded model checker: 64-bit state fingerprints, a
// sharded concurrent visited set, and a level-synchronous work distributor
// for parallel breadth-first search.
//
// The package is deliberately independent of the modelling layer (it knows
// nothing about ts.State): the checker canonicalizes a state to its key
// string, fingerprints it with OfString, and stores only the fingerprint.
// Dropping the string keys removes the dominant allocation of the
// exploration hot path and shrinks the visited set to 8 bytes per state;
// sharding the set lets exploration workers insert concurrently with
// per-shard mutexes instead of one global lock.
//
// Fingerprinting trades a vanishing probability of unsoundness for this
// speed: two distinct states colliding on all 64 bits would merge in the
// visited set (Murphi's hash compaction makes the same trade). By the
// birthday bound (≈ n²/2⁶⁵) a million-state exploration has a collision
// probability around 3·10⁻⁸.
package statespace

// Fingerprint is the 64-bit FNV-1a hash of a state's canonical key. Both
// the sequential and the parallel exploration drivers key their visited
// sets by Fingerprint, so they dedupe — and therefore count — states
// identically.
type Fingerprint uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// OfString fingerprints a canonical state key (FNV-1a, 64-bit).
func OfString(s string) Fingerprint {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return Fingerprint(h)
}
