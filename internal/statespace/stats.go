package statespace

import "fmt"

// FingerprintBytes is the per-state payload of the visited set: one 64-bit
// fingerprint. The structural retained-bytes estimate falls back to it as
// the per-state floor when no backend measurement (VisitedBytes) is
// available.
const FingerprintBytes = 8

// Stats is the memory-oriented profile of one exploration run, the number
// that the trace-optional representation exists to shrink. It is filled by
// both exploration drivers and aggregated across synthesis dispatches by
// the engine; the cmd/ tools print it behind their -stats flag.
type Stats struct {
	// States is the number of distinct states in the visited set.
	States int `json:"states"`
	// Transitions is the number of successful transition firings.
	Transitions int `json:"transitions"`
	// PeakFrontier is the frontier high-water mark: the largest queue
	// length (sequential driver) or, for the parallel driver, the largest
	// current-level + emitted-next-level coexistence during a level
	// expansion — the true number of frontier entries alive at once, not
	// just the largest single level. With trace recording off it bounds
	// the number of states alive at once.
	PeakFrontier int `json:"peak_frontier"`
	// TraceNodes is the number of parent-linked trace-store nodes retained.
	// Always 0 with trace recording off — the acceptance criterion of the
	// no-trace representation.
	TraceNodes int `json:"trace_nodes"`
	// BytesRetained is the structural estimate of exploration memory at its
	// peak: the visited set (VisitedBytes when the backend measured it,
	// States×FingerprintBytes otherwise), the frontier high-water mark, and
	// the trace store. It deliberately counts only checker-owned structures
	// (not what model states themselves point to), so trace-on versus
	// trace-off runs of the same system are directly comparable.
	BytesRetained int64 `json:"bytes_retained"`
	// VisitedBytes is the visited-set backend's measured storage footprint
	// (internal/visited Store.Bytes): exact array sizes for the flat and
	// bitstate backends, a documented geometry model for the map backend.
	// Unlike the seed's 8-bytes-per-state estimate it includes the ~2×
	// structural overhead of map storage and the slack of power-of-two
	// tables. Zero when no backend reported (hand-built Stats).
	VisitedBytes int64 `json:"visited_bytes"`
	// Backend names the visited-set backend ("flat", "map", "bitstate",
	// "spill"; "mixed" after merging runs with different backends).
	Backend string `json:"backend"`
	// SpilledBytes is the spill backend's on-disk footprint: the summed
	// size of its sorted fingerprint run files at the end of the run.
	// VisitedBytes deliberately excludes it — the split is the backend's
	// whole point (bounded RAM, disk-resident bulk). Zero for RAM-only
	// backends; after Merge, the largest single run (like VisitedBytes).
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	// SpillRuns is the spill backend's live run-file count at the end of
	// the run (1 after a level-boundary merge). Zero for other backends.
	SpillRuns int `json:"spill_runs,omitempty"`
	// Inexact reports that the visited set was lossy (bitstate): states
	// may have been omitted, so States/Transitions are lower bounds and a
	// clean verdict is probabilistic. The zero value (exact) matches every
	// backend except bitstate.
	Inexact bool `json:"inexact,omitempty"`
	// OmissionProb is the lossy backend's end-of-run estimate of the
	// probability that a never-seen state was reported as visited (see
	// visited.Stats.OmissionProb). Zero for exact backends.
	OmissionProb float64 `json:"omission_prob,omitempty"`
	// Mallocs and AllocBytes are runtime.ReadMemStats deltas over the run
	// (heap allocation count and cumulative bytes). Populated only when the
	// caller asked for them (mc.Options.MemStats): ReadMemStats stops the
	// world and has no place in the synthesis inner loop. The counters are
	// process-global, so they are only attributable to this run when
	// nothing else allocates concurrently — with cross-candidate synthesis
	// workers, each dispatch's delta includes its neighbours' allocations.
	Mallocs    uint64 `json:"mallocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// PoolHits and PoolMisses are the successor pool's traffic over the run
	// (ts.PoolReporter delta): Fire clones served from recycled storage vs
	// built fresh. Recycled counts the states the checker handed back
	// (rejected duplicates, and in traceless mode expanded states). All zero
	// when the system does not pool or recycling was disabled
	// (mc.Options.NoRecycle).
	PoolHits   uint64 `json:"pool_hits,omitempty"`
	PoolMisses uint64 `json:"pool_misses,omitempty"`
	Recycled   uint64 `json:"recycled,omitempty"`
	// LiveStates and RedStates are the nested-DFS liveness phase's product
	// state counts: distinct product states admitted to the outer (blue)
	// search and to the nested (red) cycle search, summed over all goals.
	// Product states are (system state, monitor, fairness copy) triples, so
	// LiveStates can exceed the safety pass's States. Both zero when no
	// liveness phase ran.
	LiveStates int `json:"live_states,omitempty"`
	RedStates  int `json:"red_states,omitempty"`
	// CycleLen is the length (in transitions) of the reported accepting
	// cycle when a liveness goal failed; zero otherwise. After Merge, the
	// longest single cycle.
	CycleLen int `json:"cycle_len,omitempty"`
}

// SetRetained computes BytesRetained from the structural counters, given
// the caller's frontier-item and trace-node footprints. The visited set
// contributes its measured backend footprint (VisitedBytes) when one was
// recorded, else the 8-bytes-per-state floor.
func (s *Stats) SetRetained(itemBytes, nodeBytes uintptr) {
	vb := s.VisitedBytes
	if vb == 0 {
		vb = int64(s.States) * FingerprintBytes
	}
	s.BytesRetained = vb +
		int64(s.PeakFrontier)*int64(itemBytes) +
		int64(s.TraceNodes)*int64(nodeBytes)
}

// Merge folds another run's profile into s for cross-run aggregation (the
// synthesis engine merges one Stats per model-checker dispatch): counters
// sum, while PeakFrontier and BytesRetained keep the largest single run.
// The merged peaks are therefore per-dispatch figures, not a process
// high-water mark: when dispatches run concurrently (cross-candidate
// synthesis workers) their footprints coexist, and peak process memory can
// approach the sum over the worker count.
func (s *Stats) Merge(o Stats) {
	s.States += o.States
	s.Transitions += o.Transitions
	if o.PeakFrontier > s.PeakFrontier {
		s.PeakFrontier = o.PeakFrontier
	}
	s.TraceNodes += o.TraceNodes
	if o.BytesRetained > s.BytesRetained {
		s.BytesRetained = o.BytesRetained
	}
	if o.VisitedBytes > s.VisitedBytes {
		s.VisitedBytes = o.VisitedBytes
	}
	if o.SpilledBytes > s.SpilledBytes {
		s.SpilledBytes = o.SpilledBytes
	}
	if o.SpillRuns > s.SpillRuns {
		s.SpillRuns = o.SpillRuns
	}
	switch {
	case s.Backend == "":
		s.Backend = o.Backend
	case o.Backend != "" && o.Backend != s.Backend:
		s.Backend = "mixed"
	}
	s.Inexact = s.Inexact || o.Inexact
	if o.OmissionProb > s.OmissionProb {
		s.OmissionProb = o.OmissionProb
	}
	s.Mallocs += o.Mallocs
	s.AllocBytes += o.AllocBytes
	s.PoolHits += o.PoolHits
	s.PoolMisses += o.PoolMisses
	s.Recycled += o.Recycled
	s.LiveStates += o.LiveStates
	s.RedStates += o.RedStates
	if o.CycleLen > s.CycleLen {
		s.CycleLen = o.CycleLen
	}
}

// String renders the profile on one line, e.g. for -stats outputs.
func (s Stats) String() string {
	out := fmt.Sprintf("states=%d transitions=%d peak-frontier=%d trace-nodes=%d retained~%s",
		s.States, s.Transitions, s.PeakFrontier, s.TraceNodes, humanBytes(s.BytesRetained))
	if s.Backend != "" {
		out += fmt.Sprintf(" visited=%s:%s", s.Backend, humanBytes(s.VisitedBytes))
	}
	if s.SpilledBytes > 0 {
		out += fmt.Sprintf(" spilled=%s/%d-runs", humanBytes(s.SpilledBytes), s.SpillRuns)
	}
	if s.Inexact {
		out += fmt.Sprintf(" INEXACT p(omit)~%.2g", s.OmissionProb)
	}
	if s.Mallocs > 0 {
		out += fmt.Sprintf(" allocs=%d (%s)", s.Mallocs, humanBytes(int64(s.AllocBytes)))
	}
	if s.PoolHits > 0 || s.PoolMisses > 0 || s.Recycled > 0 {
		out += fmt.Sprintf(" pool=%d-hit/%d-miss recycled=%d", s.PoolHits, s.PoolMisses, s.Recycled)
	}
	if s.LiveStates > 0 || s.RedStates > 0 {
		out += fmt.Sprintf(" ndfs=%d+%dred", s.LiveStates, s.RedStates)
	}
	if s.CycleLen > 0 {
		out += fmt.Sprintf(" cycle=%d", s.CycleLen)
	}
	return out
}

// humanBytes renders a byte count with a binary unit.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
