package statespace

import (
	"strings"
	"testing"
)

// TestStatsSetRetained checks the structural estimate arithmetic.
func TestStatsSetRetained(t *testing.T) {
	s := Stats{States: 100, PeakFrontier: 10, TraceNodes: 100}
	s.SetRetained(40, 48)
	want := int64(100*FingerprintBytes + 10*40 + 100*48)
	if s.BytesRetained != want {
		t.Fatalf("BytesRetained = %d, want %d", s.BytesRetained, want)
	}
	s.TraceNodes = 0
	s.SetRetained(40, 48)
	if want := int64(100*FingerprintBytes + 10*40); s.BytesRetained != want {
		t.Fatalf("no-trace BytesRetained = %d, want %d", s.BytesRetained, want)
	}
	// A backend-measured visited set replaces the 8-bytes-per-state floor.
	s.VisitedBytes = 4096
	s.SetRetained(40, 48)
	if want := int64(4096 + 10*40); s.BytesRetained != want {
		t.Fatalf("measured-visited BytesRetained = %d, want %d", s.BytesRetained, want)
	}
}

// TestStatsMerge checks counters sum and high-water fields take the max.
func TestStatsMerge(t *testing.T) {
	a := Stats{States: 10, Transitions: 20, PeakFrontier: 5, TraceNodes: 1, BytesRetained: 100, VisitedBytes: 80, Backend: "flat", Mallocs: 7, AllocBytes: 70}
	a.Merge(Stats{States: 3, Transitions: 4, PeakFrontier: 9, TraceNodes: 2, BytesRetained: 50, VisitedBytes: 90, Backend: "flat", Mallocs: 1, AllocBytes: 10})
	want := Stats{States: 13, Transitions: 24, PeakFrontier: 9, TraceNodes: 3, BytesRetained: 100, VisitedBytes: 90, Backend: "flat", Mallocs: 8, AllocBytes: 80}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
	// Lossiness is sticky and differing backends degrade to "mixed".
	a.Merge(Stats{Backend: "bitstate", Inexact: true, OmissionProb: 0.25})
	if a.Backend != "mixed" || !a.Inexact || a.OmissionProb != 0.25 {
		t.Fatalf("lossy merge = %+v", a)
	}
	a.Merge(Stats{Backend: "map"})
	if a.Backend != "mixed" || !a.Inexact {
		t.Fatalf("second merge = %+v", a)
	}
}

// TestStatsString checks the -stats rendering, including that allocation
// counters only appear when collected.
func TestStatsString(t *testing.T) {
	s := Stats{States: 2, Transitions: 3, PeakFrontier: 1, BytesRetained: 2048}
	got := s.String()
	if !strings.Contains(got, "retained~2.0KiB") || strings.Contains(got, "allocs") {
		t.Errorf("String() = %q", got)
	}
	s.Mallocs, s.AllocBytes = 5, 3<<20
	if got := s.String(); !strings.Contains(got, "allocs=5 (3.0MiB)") {
		t.Errorf("String() with allocs = %q", got)
	}
	s.Backend, s.VisitedBytes = "flat", 1024
	if got := s.String(); !strings.Contains(got, "visited=flat:1.0KiB") || strings.Contains(got, "INEXACT") {
		t.Errorf("String() with backend = %q", got)
	}
	s.Inexact, s.OmissionProb = true, 1.5e-4
	if got := s.String(); !strings.Contains(got, "INEXACT p(omit)~0.00015") {
		t.Errorf("String() inexact = %q", got)
	}
	// Spill figures appear only when something actually spilled.
	if strings.Contains(s.String(), "spilled") {
		t.Errorf("String() shows spill with nothing spilled: %q", s.String())
	}
	s.SpilledBytes, s.SpillRuns = 3<<20, 2
	if got := s.String(); !strings.Contains(got, "spilled=3.0MiB/2-runs") {
		t.Errorf("String() with spill = %q", got)
	}
}

// TestStatsMergeSpill checks the spill figures keep per-dispatch peak
// semantics across Merge, like VisitedBytes.
func TestStatsMergeSpill(t *testing.T) {
	a := Stats{SpilledBytes: 100, SpillRuns: 3}
	a.Merge(Stats{SpilledBytes: 400, SpillRuns: 1})
	if a.SpilledBytes != 400 || a.SpillRuns != 3 {
		t.Fatalf("merged spill = %d bytes / %d runs, want 400 / 3", a.SpilledBytes, a.SpillRuns)
	}
}
