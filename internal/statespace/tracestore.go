package statespace

import (
	"sync/atomic"
	"unsafe"
)

// TraceNode is one discovered state in a parent-linked trace store: the
// state itself, the name of the rule that led into it (empty for roots) and
// a pointer to its predecessor. Nodes are immutable after construction, so
// chains may be extended concurrently by several exploration workers; a
// counterexample is reconstructed by walking Parent links back to a root.
type TraceNode[T any] struct {
	State  T
	Rule   string
	Parent *TraceNode[T]
}

// Path returns the chain from the root to n, in exploration order (root
// first). It is the replay order counterexamples are reported in.
func (n *TraceNode[T]) Path() []*TraceNode[T] {
	depth := 0
	for c := n; c != nil; c = c.Parent {
		depth++
	}
	out := make([]*TraceNode[T], depth)
	for c := n; c != nil; c = c.Parent {
		depth--
		out[depth] = c
	}
	return out
}

// TraceStore is the trace-optional side of exploration: when enabled it
// allocates one parent-linked TraceNode per discovered state (O(states)
// memory, the price of counterexamples), and when disabled Add returns nil
// and the store allocates nothing at all — the exploration frontier then
// carries states directly and nothing per-state outlives its expansion
// except the 8-byte fingerprint in the visited set.
//
// The node count is atomic, so one store may serve concurrent exploration
// workers.
type TraceStore[T any] struct {
	enabled bool
	count   atomic.Int64
}

// NewTraceStore builds a store that records nodes iff enabled.
func NewTraceStore[T any](enabled bool) *TraceStore[T] {
	return &TraceStore[T]{enabled: enabled}
}

// Enabled reports whether Add records nodes.
func (s *TraceStore[T]) Enabled() bool { return s.enabled }

// Add records a discovered state with its incoming rule and predecessor and
// returns the new node, or nil when the store is disabled. A nil parent
// marks a root (initial state).
func (s *TraceStore[T]) Add(state T, rule string, parent *TraceNode[T]) *TraceNode[T] {
	if !s.enabled {
		return nil
	}
	s.count.Add(1)
	return &TraceNode[T]{State: state, Rule: rule, Parent: parent}
}

// Nodes returns the number of nodes retained (0 when disabled).
func (s *TraceStore[T]) Nodes() int { return int(s.count.Load()) }

// NodeBytes reports the per-node struct footprint, used for the structural
// bytes-retained estimate in Stats (it excludes what State itself points
// to, which the store retains but cannot size generically).
func (s *TraceStore[T]) NodeBytes() uintptr { return unsafe.Sizeof(TraceNode[T]{}) }
