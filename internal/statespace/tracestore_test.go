package statespace

import (
	"sync"
	"testing"
)

// TestTraceStoreDisabled checks the no-trace configuration allocates
// nothing: Add returns nil and the node count stays zero.
func TestTraceStoreDisabled(t *testing.T) {
	s := NewTraceStore[string](false)
	if s.Enabled() {
		t.Fatal("store reports enabled")
	}
	if n := s.Add("a", "", nil); n != nil {
		t.Fatal("disabled Add returned a node")
	}
	if s.Nodes() != 0 {
		t.Fatalf("Nodes = %d, want 0", s.Nodes())
	}
}

// TestTraceStorePath checks parent chains replay root-first.
func TestTraceStorePath(t *testing.T) {
	s := NewTraceStore[string](true)
	root := s.Add("init", "", nil)
	mid := s.Add("mid", "step1", root)
	leaf := s.Add("leaf", "step2", mid)
	if s.Nodes() != 3 {
		t.Fatalf("Nodes = %d, want 3", s.Nodes())
	}
	path := leaf.Path()
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	for i, want := range []struct{ state, rule string }{
		{"init", ""}, {"mid", "step1"}, {"leaf", "step2"},
	} {
		if path[i].State != want.state || path[i].Rule != want.rule {
			t.Errorf("path[%d] = %q/%q, want %q/%q", i, path[i].State, path[i].Rule, want.state, want.rule)
		}
	}
	if got := root.Path(); len(got) != 1 || got[0] != root {
		t.Errorf("root.Path() = %v", got)
	}
}

// TestTraceStoreConcurrentAdd checks the node counter under concurrent
// extension of a shared ancestor (the parallel driver's access pattern).
func TestTraceStoreConcurrentAdd(t *testing.T) {
	s := NewTraceStore[int](true)
	root := s.Add(0, "", nil)
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := root
			for i := 0; i < each; i++ {
				parent = s.Add(w*each+i, "r", parent)
			}
			if got := len(parent.Path()); got != each+1 {
				t.Errorf("worker %d: chain length %d, want %d", w, got, each+1)
			}
		}(w)
	}
	wg.Wait()
	if s.Nodes() != workers*each+1 {
		t.Errorf("Nodes = %d, want %d", s.Nodes(), workers*each+1)
	}
}
