//go:build !race

package symmetry_test

// raceEnabled reports whether the race detector is active (this variant:
// no). The zero-allocation assertion is skipped under -race, where
// sync.Pool deliberately discards a fraction of Puts to widen race
// coverage, making pooled scratch look like a steady allocator.
const raceEnabled = false
