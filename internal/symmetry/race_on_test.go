//go:build race

package symmetry_test

// raceEnabled reports whether the race detector is active (this variant:
// yes). See race_off_test.go.
const raceEnabled = true
