// Package symmetry implements scalarset-style symmetry reduction in the
// spirit of Ip & Dill ("Better Verification Through Symmetry", CHDL 1993),
// which the paper's embedded model checker supports.
//
// Symmetric agents (e.g. the replicated cache controllers of the MSI case
// study) are interchangeable: permuting their identities maps reachable
// states to reachable states and preserves all properties. The model checker
// therefore stores only one canonical representative per orbit. For the
// small scalarsets used in protocol verification (2–5 agents) the exact
// canonicalization — minimizing the state key over all |S|! permutations —
// is cheap and gives the full reduction factor.
package symmetry

import "verc3/internal/ts"

// Permutations returns all permutations of [0, n) in a deterministic order.
// n must be small (factorial growth); protocol scalarsets are.
func Permutations(n int) [][]int {
	if n < 0 {
		panic("symmetry: negative scalarset size")
	}
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			p := make([]int, n)
			copy(p, base)
			out = append(out, p)
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// Identity reports whether perm is the identity permutation.
func Identity(perm []int) bool {
	for i, v := range perm {
		if i != v {
			return false
		}
	}
	return true
}

// Compose returns the permutation r where r[i] = a[b[i]].
func Compose(a, b []int) []int {
	r := make([]int, len(a))
	for i := range r {
		r[i] = a[b[i]]
	}
	return r
}

// Invert returns the inverse permutation of perm.
func Invert(perm []int) []int {
	r := make([]int, len(perm))
	for i, v := range perm {
		r[v] = i
	}
	return r
}

// Canonicalizer computes canonical state keys. It caches the permutation
// set for the scalarset size it was built with.
//
// A Canonicalizer is immutable after construction and safe for concurrent
// use: the parallel exploration driver (internal/mc with Options.Workers >
// 1) shares one canonicalizer across all workers. Key keeps no scratch
// state on the receiver — every per-call buffer (the permuted state, its
// key) is allocated on the calling worker's stack/heap, so workers never
// contend.
type Canonicalizer struct {
	perms [][]int // all permutations, identity first (Orbit)
	nonID [][]int // non-identity permutations (Key hot path)
}

// NewCanonicalizer builds a canonicalizer for a scalarset of n agents.
func NewCanonicalizer(n int) *Canonicalizer {
	c := &Canonicalizer{perms: Permutations(n)}
	// Filter the identity once at construction instead of re-testing every
	// permutation on every Key call on the hot path.
	c.nonID = make([][]int, 0, len(c.perms)-1)
	for _, perm := range c.perms {
		if !Identity(perm) {
			c.nonID = append(c.nonID, perm)
		}
	}
	return c
}

// Key returns the canonical key of s: the lexicographically smallest Key()
// over all permutations of s's agents. If s does not implement
// ts.Permutable, its plain key is returned.
func (c *Canonicalizer) Key(s ts.State) string {
	p, ok := s.(ts.Permutable)
	if !ok {
		return s.Key()
	}
	best := s.Key()
	for _, perm := range c.nonID {
		if k := p.Permute(perm).Key(); k < best {
			best = k
		}
	}
	return best
}

// Orbit returns the number of distinct keys in the symmetry orbit of s
// (useful in tests: reduction factor = mean orbit size).
func (c *Canonicalizer) Orbit(s ts.State) int {
	p, ok := s.(ts.Permutable)
	if !ok {
		return 1
	}
	seen := make(map[string]struct{}, len(c.perms))
	for _, perm := range c.perms {
		seen[p.Permute(perm).Key()] = struct{}{}
	}
	return len(seen)
}
