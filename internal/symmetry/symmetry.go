// Package symmetry implements scalarset-style symmetry reduction in the
// spirit of Ip & Dill ("Better Verification Through Symmetry", CHDL 1993),
// which the paper's embedded model checker supports.
//
// Symmetric agents (e.g. the replicated cache controllers of the MSI case
// study) are interchangeable: permuting their identities maps reachable
// states to reachable states and preserves all properties. The model checker
// therefore stores only one canonical representative per orbit. For the
// small scalarsets used in protocol verification (2–5 agents) the exact
// canonicalization — minimizing the state encoding over all |S|!
// permutations — is cheap and gives the full reduction factor.
//
// Canonicalization has two tiers mirroring the keying pipeline. Key
// minimizes formatted Key() strings — the trace/debug path, one clone and
// one string per permutation. Fingerprint minimizes ts.KeyAppender binary
// encodings through pooled per-worker scratch (one reusable clone mutated
// in place by ts.InPlacePermuter, two ping-pong key buffers) and hashes
// the minimum without ever materializing it: the exploration hot path,
// with zero steady-state allocations.
package symmetry

import (
	"bytes"
	"sync"

	"verc3/internal/statespace"
	"verc3/internal/ts"
)

// Permutations returns all permutations of [0, n) in a deterministic order.
// n must be small (factorial growth); protocol scalarsets are.
func Permutations(n int) [][]int {
	if n < 0 {
		panic("symmetry: negative scalarset size")
	}
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			p := make([]int, n)
			copy(p, base)
			out = append(out, p)
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// Identity reports whether perm is the identity permutation.
func Identity(perm []int) bool {
	for i, v := range perm {
		if i != v {
			return false
		}
	}
	return true
}

// Compose returns the permutation r where r[i] = a[b[i]].
func Compose(a, b []int) []int {
	r := make([]int, len(a))
	for i := range r {
		r[i] = a[b[i]]
	}
	return r
}

// Invert returns the inverse permutation of perm.
func Invert(perm []int) []int {
	r := make([]int, len(perm))
	for i, v := range perm {
		r[v] = i
	}
	return r
}

// Canonicalizer computes canonical state keys and fingerprints. It caches
// the permutation set for the scalarset size it was built with.
//
// A Canonicalizer is safe for concurrent use: the parallel exploration
// driver (internal/mc with Options.Workers > 1) shares one canonicalizer
// across all workers. The permutation tables are immutable after
// construction; the only mutable state is a sync.Pool of per-worker
// scratch (one reusable permuted clone plus two key buffers), which
// Fingerprint checks out for the duration of a call, so workers never
// contend and the hot path allocates nothing in steady state.
type Canonicalizer struct {
	perms [][]int // all permutations, identity first (Orbit)
	nonID [][]int // non-identity permutations (Key/Fingerprint hot path)
	pool  sync.Pool
}

// scratch is the reusable per-call canonicalization state: a permuted
// clone mutated in place by ts.InPlacePermuter states, and the two
// encoding buffers Fingerprint ping-pongs between while tracking the
// lexicographic minimum.
type scratch struct {
	dst  ts.State // lazily created from InPlacePermuter.Scratch; nil until then
	cur  []byte
	best []byte
}

// NewCanonicalizer builds a canonicalizer for a scalarset of n agents.
func NewCanonicalizer(n int) *Canonicalizer {
	c := &Canonicalizer{perms: Permutations(n)}
	// Filter the identity once at construction instead of re-testing every
	// permutation on every Key call on the hot path.
	c.nonID = make([][]int, 0, len(c.perms)-1)
	for _, perm := range c.perms {
		if !Identity(perm) {
			c.nonID = append(c.nonID, perm)
		}
	}
	c.pool.New = func() any { return &scratch{} }
	return c
}

// Key returns the canonical key of s: the lexicographically smallest Key()
// over all permutations of s's agents. If s does not implement
// ts.Permutable, its plain key is returned.
//
// This is the string tier of the keying pipeline — the path traces, tools
// and the legacy-keying ablation use. The exploration hot path uses
// Fingerprint instead, which never materializes a string.
func (c *Canonicalizer) Key(s ts.State) string {
	p, ok := s.(ts.Permutable)
	if !ok {
		return s.Key()
	}
	best := s.Key()
	for _, perm := range c.nonID {
		if k := p.Permute(perm).Key(); k < best {
			best = k
		}
	}
	return best
}

// Fingerprint returns the 64-bit fingerprint of s's canonical binary
// encoding: the lexicographically smallest AppendKey output over all
// permutations of s's agents. The minimum is taken over binary encodings,
// not Key strings, so the chosen orbit representative can differ from
// Key's — irrelevant to the checker, which only needs all members of an
// orbit to agree on one fingerprint and distinct orbits to disagree, and
// both follow from AppendKey's injectivity (the encoding multiset of an
// orbit is permutation-invariant).
//
// In steady state the call allocates nothing: per-call scratch — the
// permuted clone reused across the N!−1 non-identity permutations when s
// implements ts.InPlacePermuter, plus the two encoding buffers — is pooled
// on the canonicalizer. States implementing only ts.Permutable still pay
// one clone per permutation but keep the buffer reuse; states without
// ts.KeyAppender fall back to the string path (OfString ∘ Key).
func (c *Canonicalizer) Fingerprint(s ts.State) statespace.Fingerprint {
	a, appends := s.(ts.KeyAppender)
	if !appends {
		return statespace.OfString(c.Key(s))
	}
	sc := c.pool.Get().(*scratch)
	best := a.AppendKey(sc.best[:0])
	if p, ok := s.(ts.Permutable); ok {
		cur := sc.cur
		ip, inPlace := s.(ts.InPlacePermuter)
		var dstAppender ts.KeyAppender // the scratch clone, asserted once
		if inPlace {
			if sc.dst == nil {
				sc.dst = ip.Scratch()
			}
			dstAppender = sc.dst.(ts.KeyAppender)
		}
		for _, perm := range c.nonID {
			pa := dstAppender
			if inPlace {
				ip.PermuteInto(sc.dst, perm)
			} else {
				pa = p.Permute(perm).(ts.KeyAppender)
			}
			cur = pa.AppendKey(cur[:0])
			if bytes.Compare(cur, best) < 0 {
				best, cur = cur, best
			}
		}
		sc.cur = cur
	}
	fp := statespace.OfBytes(best)
	sc.best = best
	c.pool.Put(sc)
	return fp
}

// Orbit returns the number of distinct keys in the symmetry orbit of s
// (useful in tests: reduction factor = mean orbit size).
func (c *Canonicalizer) Orbit(s ts.State) int {
	p, ok := s.(ts.Permutable)
	if !ok {
		return 1
	}
	seen := make(map[string]struct{}, len(c.perms))
	for _, perm := range c.perms {
		seen[p.Permute(perm).Key()] = struct{}{}
	}
	return len(seen)
}
