package symmetry_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"verc3/internal/msi"
	"verc3/internal/network"
	"verc3/internal/statespace"
	"verc3/internal/symmetry"
	"verc3/internal/ts"
)

// TestPermutationsCount checks |Permutations(n)| = n! with all entries
// distinct bijections.
func TestPermutationsCount(t *testing.T) {
	fact := 1
	for n := 0; n <= 5; n++ {
		if n > 0 {
			fact *= n
		}
		ps := symmetry.Permutations(n)
		if len(ps) != fact {
			t.Fatalf("n=%d: %d permutations, want %d", n, len(ps), fact)
		}
		seen := map[string]bool{}
		for _, p := range ps {
			k := fmt.Sprint(p)
			if seen[k] {
				t.Fatalf("n=%d: duplicate permutation %v", n, p)
			}
			seen[k] = true
			hit := make([]bool, n)
			for _, v := range p {
				if v < 0 || v >= n || hit[v] {
					t.Fatalf("n=%d: not a bijection: %v", n, p)
				}
				hit[v] = true
			}
		}
	}
}

// TestComposeInvert checks the group identities p∘p⁻¹ = id and
// (a∘b)⁻¹ = b⁻¹∘a⁻¹.
func TestComposeInvert(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a, b := rng.Perm(n), rng.Perm(n)
		if !symmetry.Identity(symmetry.Compose(a, symmetry.Invert(a))) {
			return false
		}
		lhs := symmetry.Invert(symmetry.Compose(a, b))
		rhs := symmetry.Compose(symmetry.Invert(b), symmetry.Invert(a))
		return fmt.Sprint(lhs) == fmt.Sprint(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// vecState is a tiny permutable state: a vector of agent-local values.
type vecState struct{ vals []int }

func (v *vecState) Key() string {
	return fmt.Sprint(v.vals)
}
func (v *vecState) Clone() ts.State {
	return &vecState{vals: append([]int(nil), v.vals...)}
}
func (v *vecState) NumAgents() int { return len(v.vals) }
func (v *vecState) Permute(perm []int) ts.State {
	out := make([]int, len(v.vals))
	for i, val := range v.vals {
		out[perm[i]] = val
	}
	return &vecState{vals: out}
}

// TestCanonicalKeyInvariance is the crucial soundness property: all states
// in one symmetry orbit share a single canonical key, and states in
// different orbits (different value multisets here) do not.
func TestCanonicalKeyInvariance(t *testing.T) {
	c := symmetry.NewCanonicalizer(4)
	f := func(a, b, cc, d uint8) bool {
		s := &vecState{vals: []int{int(a % 3), int(b % 3), int(cc % 3), int(d % 3)}}
		want := c.Key(s)
		for _, p := range symmetry.Permutations(4) {
			if c.Key(s.Permute(p).(*vecState)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestOrbitSize checks Orbit counts distinct permuted keys: a fully
// symmetric state has orbit 1; an all-distinct state has orbit n!.
func TestOrbitSize(t *testing.T) {
	c := symmetry.NewCanonicalizer(3)
	if got := c.Orbit(&vecState{vals: []int{7, 7, 7}}); got != 1 {
		t.Errorf("uniform orbit = %d, want 1", got)
	}
	if got := c.Orbit(&vecState{vals: []int{1, 2, 3}}); got != 6 {
		t.Errorf("distinct orbit = %d, want 6", got)
	}
}

// plainState does not implement Permutable.
type plainState struct{ k string }

func (p plainState) Key() string     { return p.k }
func (p plainState) Clone() ts.State { return p }

// TestNonPermutableFallsBack checks non-permutable states keep their key.
func TestNonPermutableFallsBack(t *testing.T) {
	c := symmetry.NewCanonicalizer(3)
	if got := c.Key(plainState{k: "zzz"}); got != "zzz" {
		t.Errorf("Key = %q, want zzz", got)
	}
	if got := c.Orbit(plainState{k: "zzz"}); got != 1 {
		t.Errorf("Orbit = %d, want 1", got)
	}
}

// TestNegativePanics documents the contract.
func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	symmetry.Permutations(-1)
}

// appendVecState extends vecState with the binary keying capabilities:
// ts.KeyAppender plus ts.InPlacePermuter.
type appendVecState struct{ vecState }

func (v *appendVecState) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v.vals)))
	for _, val := range v.vals {
		dst = binary.AppendVarint(dst, int64(val))
	}
	return dst
}

func (v *appendVecState) Clone() ts.State {
	return &appendVecState{vecState{vals: append([]int(nil), v.vals...)}}
}

func (v *appendVecState) Permute(perm []int) ts.State {
	return &appendVecState{*v.vecState.Permute(perm).(*vecState)}
}

func (v *appendVecState) Scratch() ts.State { return v.Clone() }

func (v *appendVecState) PermuteInto(dst ts.State, perm []int) {
	d := dst.(*appendVecState)
	if len(d.vals) != len(v.vals) {
		d.vals = make([]int, len(v.vals))
	}
	for i, val := range v.vals {
		d.vals[perm[i]] = val
	}
}

// TestFingerprintOrbitInvariance is the binary-path soundness property:
// every member of a symmetry orbit fingerprints identically, and states
// with different value multisets (distinct orbits) fingerprint apart.
func TestFingerprintOrbitInvariance(t *testing.T) {
	c := symmetry.NewCanonicalizer(4)
	seen := map[statespace.Fingerprint][]int{}
	for _, vals := range [][]int{
		{0, 0, 0, 0}, {1, 0, 0, 0}, {1, 1, 0, 0}, {2, 1, 0, 0},
		{1, 2, 3, 4}, {4, 4, 4, 1}, {0, 2, 0, 2},
	} {
		s := &appendVecState{vecState{vals: vals}}
		want := c.Fingerprint(s)
		for _, p := range symmetry.Permutations(4) {
			if got := c.Fingerprint(s.Permute(p).(*appendVecState)); got != want {
				t.Fatalf("vals=%v perm=%v: fingerprint %x, want %x", vals, p, got, want)
			}
		}
		if prev, dup := seen[want]; dup {
			t.Fatalf("distinct multisets %v and %v share fingerprint %x", prev, vals, want)
		}
		seen[want] = vals
	}
}

// TestFingerprintPermutableWithoutInPlace checks the middle tier: a state
// with AppendKey but only plain Permute still canonicalizes correctly (it
// pays a clone per permutation, but the result is orbit-invariant).
func TestFingerprintPermutableWithoutInPlace(t *testing.T) {
	c := symmetry.NewCanonicalizer(3)
	s := &permOnlyVecState{vecState{vals: []int{2, 0, 1}}}
	want := c.Fingerprint(s)
	for _, p := range symmetry.Permutations(3) {
		if got := c.Fingerprint(s.Permute(p).(*permOnlyVecState)); got != want {
			t.Fatalf("perm %v: fingerprint %x, want %x", p, got, want)
		}
	}
}

// permOnlyVecState has an appender but no InPlacePermuter.
type permOnlyVecState struct{ vecState }

func (v *permOnlyVecState) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v.vals)))
	for _, val := range v.vals {
		dst = binary.AppendVarint(dst, int64(val))
	}
	return dst
}

func (v *permOnlyVecState) Permute(perm []int) ts.State {
	return &permOnlyVecState{*v.vecState.Permute(perm).(*vecState)}
}

// TestFingerprintFallsBackToStringKey checks states without ts.KeyAppender
// hash exactly what the legacy path hashes: OfString of the canonical Key.
func TestFingerprintFallsBackToStringKey(t *testing.T) {
	c := symmetry.NewCanonicalizer(4)
	s := &vecState{vals: []int{3, 1, 2, 1}}
	if got, want := c.Fingerprint(s), statespace.OfString(c.Key(s)); got != want {
		t.Errorf("permutable fallback: %x, want OfString(Key) %x", got, want)
	}
	p := plainState{k: "plain"}
	if got, want := c.Fingerprint(p), statespace.OfString("plain"); got != want {
		t.Errorf("non-permutable fallback: %x, want %x", got, want)
	}
}

// TestFingerprintZeroAlloc pins the tentpole's scratch-state contract on
// the real case study: canonicalizing an MSI state with in-flight network
// messages — the workload that used to deep-clone and re-encode N!−1
// times per offered state — allocates nothing in steady state. A small
// tolerance absorbs the GC occasionally reclaiming the sync.Pool scratch.
func TestFingerprintZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops Puts under -race; steady-state allocs are only meaningful without it")
	}
	st := &msi.State{
		Caches: []msi.Cache{{St: msi.CacheM, Data: 1}, {St: msi.CacheISD}, {St: msi.CacheS, Data: 1}},
		Dir:    msi.Dir{St: msi.DirM, Owner: 0, Pending: msi.None, Sharers: 0b100, Mem: 1},
		Net: network.New(
			network.Msg{Type: msi.MsgGetS, Src: 1, Dst: 3, Req: -1, Val: 0},
			network.Msg{Type: msi.MsgData, Src: 3, Dst: 2, Req: -1, Cnt: 1, Val: 1},
		),
		Ghost: 1,
	}
	c := symmetry.NewCanonicalizer(3)
	want := c.Fingerprint(st) // warm the pooled scratch
	avg := testing.AllocsPerRun(500, func() {
		if c.Fingerprint(st) != want {
			t.Fatal("fingerprint not deterministic")
		}
	})
	if avg > 0.1 {
		t.Errorf("canonical fingerprint allocates %.3f allocs/op in steady state, want ~0", avg)
	}
}

// TestFingerprintConcurrent exercises the pooled scratch under the
// parallel driver's sharing pattern: one canonicalizer, many workers
// fingerprinting members of the same orbit concurrently. Meaningful under
// -race (the per-call scratch must never be visible to two workers).
func TestFingerprintConcurrent(t *testing.T) {
	c := symmetry.NewCanonicalizer(4)
	base := &appendVecState{vecState{vals: []int{0, 1, 2, 1}}}
	want := c.Fingerprint(base)
	perms := symmetry.Permutations(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := perms[(w*7+i)%len(perms)]
				if got := c.Fingerprint(base.Permute(p).(*appendVecState)); got != want {
					t.Errorf("worker %d: fingerprint %x, want %x", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCanonicalizerConcurrent exercises the goroutine-safety contract the
// parallel exploration driver (internal/mc with Options.Workers > 1) relies
// on: one shared Canonicalizer, many workers canonicalizing members of the
// same orbit concurrently. Meaningful under -race.
func TestCanonicalizerConcurrent(t *testing.T) {
	c := symmetry.NewCanonicalizer(4)
	base := &vecState{vals: []int{0, 1, 2, 1}}
	want := c.Key(base)
	perms := symmetry.Permutations(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := perms[(w*7+i)%len(perms)]
				if got := c.Key(base.Permute(p)); got != want {
					t.Errorf("worker %d: Key = %q, want %q", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
