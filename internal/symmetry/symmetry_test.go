package symmetry_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"verc3/internal/symmetry"
	"verc3/internal/ts"
)

// TestPermutationsCount checks |Permutations(n)| = n! with all entries
// distinct bijections.
func TestPermutationsCount(t *testing.T) {
	fact := 1
	for n := 0; n <= 5; n++ {
		if n > 0 {
			fact *= n
		}
		ps := symmetry.Permutations(n)
		if len(ps) != fact {
			t.Fatalf("n=%d: %d permutations, want %d", n, len(ps), fact)
		}
		seen := map[string]bool{}
		for _, p := range ps {
			k := fmt.Sprint(p)
			if seen[k] {
				t.Fatalf("n=%d: duplicate permutation %v", n, p)
			}
			seen[k] = true
			hit := make([]bool, n)
			for _, v := range p {
				if v < 0 || v >= n || hit[v] {
					t.Fatalf("n=%d: not a bijection: %v", n, p)
				}
				hit[v] = true
			}
		}
	}
}

// TestComposeInvert checks the group identities p∘p⁻¹ = id and
// (a∘b)⁻¹ = b⁻¹∘a⁻¹.
func TestComposeInvert(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a, b := rng.Perm(n), rng.Perm(n)
		if !symmetry.Identity(symmetry.Compose(a, symmetry.Invert(a))) {
			return false
		}
		lhs := symmetry.Invert(symmetry.Compose(a, b))
		rhs := symmetry.Compose(symmetry.Invert(b), symmetry.Invert(a))
		return fmt.Sprint(lhs) == fmt.Sprint(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// vecState is a tiny permutable state: a vector of agent-local values.
type vecState struct{ vals []int }

func (v *vecState) Key() string {
	return fmt.Sprint(v.vals)
}
func (v *vecState) Clone() ts.State {
	return &vecState{vals: append([]int(nil), v.vals...)}
}
func (v *vecState) NumAgents() int { return len(v.vals) }
func (v *vecState) Permute(perm []int) ts.State {
	out := make([]int, len(v.vals))
	for i, val := range v.vals {
		out[perm[i]] = val
	}
	return &vecState{vals: out}
}

// TestCanonicalKeyInvariance is the crucial soundness property: all states
// in one symmetry orbit share a single canonical key, and states in
// different orbits (different value multisets here) do not.
func TestCanonicalKeyInvariance(t *testing.T) {
	c := symmetry.NewCanonicalizer(4)
	f := func(a, b, cc, d uint8) bool {
		s := &vecState{vals: []int{int(a % 3), int(b % 3), int(cc % 3), int(d % 3)}}
		want := c.Key(s)
		for _, p := range symmetry.Permutations(4) {
			if c.Key(s.Permute(p).(*vecState)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestOrbitSize checks Orbit counts distinct permuted keys: a fully
// symmetric state has orbit 1; an all-distinct state has orbit n!.
func TestOrbitSize(t *testing.T) {
	c := symmetry.NewCanonicalizer(3)
	if got := c.Orbit(&vecState{vals: []int{7, 7, 7}}); got != 1 {
		t.Errorf("uniform orbit = %d, want 1", got)
	}
	if got := c.Orbit(&vecState{vals: []int{1, 2, 3}}); got != 6 {
		t.Errorf("distinct orbit = %d, want 6", got)
	}
}

// plainState does not implement Permutable.
type plainState struct{ k string }

func (p plainState) Key() string     { return p.k }
func (p plainState) Clone() ts.State { return p }

// TestNonPermutableFallsBack checks non-permutable states keep their key.
func TestNonPermutableFallsBack(t *testing.T) {
	c := symmetry.NewCanonicalizer(3)
	if got := c.Key(plainState{k: "zzz"}); got != "zzz" {
		t.Errorf("Key = %q, want zzz", got)
	}
	if got := c.Orbit(plainState{k: "zzz"}); got != 1 {
		t.Errorf("Orbit = %d, want 1", got)
	}
}

// TestNegativePanics documents the contract.
func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	symmetry.Permutations(-1)
}

// TestCanonicalizerConcurrent exercises the goroutine-safety contract the
// parallel exploration driver (internal/mc with Options.Workers > 1) relies
// on: one shared Canonicalizer, many workers canonicalizing members of the
// same orbit concurrently. Meaningful under -race.
func TestCanonicalizerConcurrent(t *testing.T) {
	c := symmetry.NewCanonicalizer(4)
	base := &vecState{vals: []int{0, 1, 2, 1}}
	want := c.Key(base)
	perms := symmetry.Permutations(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := perms[(w*7+i)%len(perms)]
				if got := c.Key(base.Permute(p)); got != want {
					t.Errorf("worker %d: Key = %q, want %q", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
