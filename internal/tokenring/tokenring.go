// Package tokenring models a three-process token-ring mutual-exclusion
// protocol in the lightweight frontend DSL (internal/dsl) — the third
// synthesis domain next to cache coherence (internal/msi) and Peterson's
// algorithm (internal/mutex).
//
// The processes share a mutual-exclusion token. The skeleton knows that the
// token holder may enter and must leave its critical section, but two
// decisions are holes: whether to release the token after the critical
// section ("pass" vs "keep"), and in which ring direction to pass it
// ("next" vs "prev"). Keeping the token starves the other processes —
// rejected by per-process liveness goals; both ring directions are correct,
// so the synthesizer reports exactly two solutions, a small demonstration
// of the paper's observation that distinct solutions can be behaviourally
// equivalent in quality.
package tokenring

import (
	"fmt"
	"strings"

	"verc3/internal/dsl"
	"verc3/internal/ts"
)

// N is the ring size.
const N = 3

// ring is the global state: who holds the token and who is in its critical
// section (-1 = nobody). EverCrit tracks per-process liveness ghosts.
type ring struct {
	Holder   int8
	InCrit   int8
	EverCrit [N]bool
}

func (r *ring) Key() string {
	return fmt.Sprintf("%d/%d/%v", r.Holder, r.InCrit, r.EverCrit)
}

// AppendKey implements ts.KeyAppender: Holder, InCrit (offset so -1 encodes
// as 0) and the liveness ghosts, one byte each.
func (r *ring) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(r.Holder+1), byte(r.InCrit+1))
	for _, ec := range r.EverCrit {
		b := byte(0)
		if ec {
			b = 1
		}
		dst = append(dst, b)
	}
	return dst
}

func (r *ring) Clone() ts.State { cp := *r; return &cp }

// CopyFrom implements ts.StateCopier, which opts the dsl-built system into
// successor recycling (the builder's pool is keyed on this capability).
func (r *ring) CopyFrom(src ts.State) { *r = *src.(*ring) }

// New assembles the system; sketch leaves the two actions as holes.
func New(sketch bool) ts.System {
	choose := func(env *ts.Env, hole string, acts []string, correct int) (int, error) {
		if !sketch {
			return correct, nil
		}
		return env.Choose(hole, acts)
	}

	b := dsl.NewBuilder[*ring]("token-ring", &ring{})
	b.RuleSet(N, "p%d: enter critical section",
		func(s *ring, i int) bool { return int(s.Holder) == i && s.InCrit == -1 },
		func(s *ring, i int, _ *ts.Env) error {
			s.InCrit = int8(i)
			s.EverCrit[i] = true
			return nil
		})
	b.RuleSet(N, "p%d: leave critical section",
		func(s *ring, i int) bool { return int(s.InCrit) == i },
		func(s *ring, i int, env *ts.Env) error {
			s.InCrit = -1
			release, err := choose(env, "after-crit", []string{"pass", "keep"}, 0)
			if err != nil {
				return err
			}
			if release == 1 {
				return nil // keep the token
			}
			dir, err := choose(env, "pass-direction", []string{"next", "prev"}, 0)
			if err != nil {
				return err
			}
			if dir == 0 {
				s.Holder = (s.Holder + 1) % N
			} else {
				s.Holder = (s.Holder + N - 1) % N
			}
			return nil
		})
	b.Invariant("crit-implies-holder", func(s *ring) bool {
		return s.InCrit == -1 || s.InCrit == s.Holder
	})
	for i := 0; i < N; i++ {
		i := i
		b.Goal(fmt.Sprintf("p%d-eventually-enters", i), func(s *ring) bool { return s.EverCrit[i] })
		// Every process holds the token infinitely often — a leads-to with a
		// trivially true premise. Weak fairness is declared per process (its
		// enter/leave rules must not be continuously enabled yet never
		// taken), which is what rules out the holder idling forever.
		b.LeadsTo(fmt.Sprintf("p%d-holds-token", i), true,
			func(*ring) bool { return true },
			func(s *ring) bool { return int(s.Holder) == i })
		b.Fair(fmt.Sprintf("p%d-progress", i),
			func(s *ring) bool { return (int(s.Holder) == i && s.InCrit == -1) || int(s.InCrit) == i },
			func(rule string) bool { return strings.HasPrefix(rule, fmt.Sprintf("p%d:", i)) })
	}
	return b.System()
}
