package tokenring_test

import (
	"testing"

	"verc3/internal/core"
	"verc3/internal/mc"
	"verc3/internal/tokenring"
)

// TestCompleteRingVerifies pins the complete protocol's verdict and state
// count (12 states: holder × critical-section status × liveness ghosts
// along the canonical rotation).
func TestCompleteRingVerifies(t *testing.T) {
	res, err := mc.Check(tokenring.New(false), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.Stats.VisitedStates != 12 {
		t.Errorf("states = %d, want 12", res.Stats.VisitedStates)
	}
}

// TestSketchSynthesizesBothDirections checks the synthesizer finds exactly
// the two pass directions and rejects the starving "keep" variants.
func TestSketchSynthesizesBothDirections(t *testing.T) {
	res, err := core.Synthesize(tokenring.New(true), core.Config{Mode: core.ModePrune})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Holes != 2 {
		t.Fatalf("holes = %d, want 2", res.Stats.Holes)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %d, want 2 (next and prev)", len(res.Solutions))
	}
}
