// Package toy provides small synthetic synthesis problems: the paper's
// Figure 2 worked example and a seeded random-system generator used by the
// property-based tests to cross-check the pruning search against brute
// force.
//
// A toy system is a finite directed "hole graph": nodes are states, and a
// node may carry a synthesis hole whose chosen action selects the outgoing
// edge. Nodes can also have plain (always-enabled) edges, providing
// nondeterminism. Bad nodes violate the safety invariant; goal nodes feed
// reachability goals; nodes without outgoing edges are quiescent terminals.
package toy

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"verc3/internal/ts"
)

// Node is one state of a hole graph.
type Node struct {
	// Hole names the synthesis hole at this node ("" for none). Reusing a
	// name across nodes models symmetry-aware holes (one decision shared by
	// several contexts); reuses must keep the same Acts.
	Hole string
	// Acts are the designer-provided candidate action names for Hole.
	Acts []string
	// To[i] is the successor node when the hole resolves to action i.
	To []int
	// Plain lists always-enabled successor nodes (nondeterministic edges).
	Plain []int
	// Bad marks the node as violating the safety invariant.
	Bad bool
	// Goal marks the node as a reachability goal ("must be visited").
	Goal bool
}

// Graph is a toy synthesis problem. It implements ts.System (plus quiescence
// and goal reporting) and is safe for concurrent use: all state lives in the
// immutable node table. States are shared immortal values drawn from a table
// built on first use, so the Graph deliberately does not implement
// ts.Recycler — there is no per-successor storage to reclaim; it does
// implement ts.TransitionAppender so enumeration itself allocates nothing.
type Graph struct {
	SysName string
	Nodes   []Node
	Init    []int

	// Lazily built lookup tables (see tables): one boxed ts.State per node
	// so Fire never re-boxes, and every transition name preformatted.
	once      sync.Once
	boxed     []ts.State
	holeNames []string
	edgeNames [][]string
}

// tables builds the boxed-state and name tables once per Graph.
func (g *Graph) tables() {
	g.once.Do(func() {
		g.boxed = make([]ts.State, len(g.Nodes))
		g.holeNames = make([]string, len(g.Nodes))
		g.edgeNames = make([][]string, len(g.Nodes))
		for i := range g.Nodes {
			g.boxed[i] = state{id: i}
			n := &g.Nodes[i]
			if n.Hole != "" {
				g.holeNames[i] = fmt.Sprintf("n%d:hole %s", i, n.Hole)
			}
			if len(n.Plain) > 0 {
				names := make([]string, len(n.Plain))
				for k, succ := range n.Plain {
					names[k] = fmt.Sprintf("n%d→n%d", i, succ)
				}
				g.edgeNames[i] = names
			}
		}
	})
}

// state wraps a node index as a ts.State.
type state struct {
	id int
}

// Key implements ts.State.
func (s state) Key() string { return fmt.Sprintf("n%d", s.id) }

// AppendKey implements ts.KeyAppender: the node index as a varint.
func (s state) AppendKey(dst []byte) []byte {
	return binary.AppendVarint(dst, int64(s.id))
}

// Clone implements ts.State.
func (s state) Clone() ts.State { return s }

// String renders the state.
func (s state) String() string { return s.Key() }

// Name implements ts.System.
func (g *Graph) Name() string {
	if g.SysName == "" {
		return "toy"
	}
	return g.SysName
}

// Initial implements ts.System.
func (g *Graph) Initial() []ts.State {
	g.tables()
	out := make([]ts.State, len(g.Init))
	for i, id := range g.Init {
		out[i] = g.boxed[id]
	}
	return out
}

// Transitions implements ts.System.
func (g *Graph) Transitions(s ts.State) []ts.Transition {
	return g.AppendTransitions(nil, s)
}

// AppendTransitions implements ts.TransitionAppender: Transitions appended
// into a caller-owned buffer, returning pre-boxed states under preformatted
// names.
func (g *Graph) AppendTransitions(dst []ts.Transition, s ts.State) []ts.Transition {
	g.tables()
	id := s.(state).id
	n := &g.Nodes[id]
	if n.Hole != "" {
		hole, acts, to := n.Hole, n.Acts, n.To
		boxed := g.boxed
		dst = append(dst, ts.Transition{
			Name: g.holeNames[id],
			Fire: func(env *ts.Env) (ts.State, error) {
				a, err := env.Choose(hole, acts)
				if err != nil {
					return nil, err
				}
				return boxed[to[a]], nil
			},
		})
	}
	for k, succ := range n.Plain {
		tgt := g.boxed[succ]
		dst = append(dst, ts.Transition{
			Name: g.edgeNames[id][k],
			Fire: func(*ts.Env) (ts.State, error) { return tgt, nil },
		})
	}
	return dst
}

// Invariants implements ts.System.
func (g *Graph) Invariants() []ts.Invariant {
	return []ts.Invariant{{
		Name: "no-bad-state",
		Holds: func(s ts.State) bool {
			return !g.Nodes[s.(state).id].Bad
		},
	}}
}

// Quiescent implements ts.QuiescentReporter: terminal nodes are accepting.
func (g *Graph) Quiescent(s ts.State) bool {
	n := &g.Nodes[s.(state).id]
	return n.Hole == "" && len(n.Plain) == 0
}

// Goals implements ts.GoalReporter.
func (g *Graph) Goals() []ts.ReachGoal {
	var goals []ts.ReachGoal
	for i := range g.Nodes {
		if g.Nodes[i].Goal {
			id := i
			goals = append(goals, ts.ReachGoal{
				Name:  fmt.Sprintf("visit-n%d", id),
				Holds: func(s ts.State) bool { return s.(state).id == id },
			})
		}
	}
	return goals
}

// Validate checks structural consistency (action/edge arity, hole-name
// reuse, index ranges).
func (g *Graph) Validate() error {
	arity := map[string]int{}
	check := func(id int) error {
		if id < 0 || id >= len(g.Nodes) {
			return fmt.Errorf("toy: node index %d out of range", id)
		}
		return nil
	}
	for _, id := range g.Init {
		if err := check(id); err != nil {
			return err
		}
	}
	if len(g.Init) == 0 {
		return fmt.Errorf("toy: no initial nodes")
	}
	for i, n := range g.Nodes {
		if n.Hole != "" {
			if len(n.Acts) == 0 || len(n.Acts) != len(n.To) {
				return fmt.Errorf("toy: node %d: |Acts|=%d, |To|=%d", i, len(n.Acts), len(n.To))
			}
			if a, ok := arity[n.Hole]; ok && a != len(n.Acts) {
				return fmt.Errorf("toy: hole %q reused with arity %d (was %d)", n.Hole, len(n.Acts), a)
			}
			arity[n.Hole] = len(n.Acts)
			for _, t := range n.To {
				if err := check(t); err != nil {
					return err
				}
			}
		} else if len(n.Acts) > 0 || len(n.To) > 0 {
			return fmt.Errorf("toy: node %d has actions but no hole", i)
		}
		for _, t := range n.Plain {
			if err := check(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// Figure2 reconstructs the paper's Figure 2 worked example: four holes in a
// chain, hole 1 with actions {A,B,C}, holes 2–4 with {A,B}; exactly one
// completion is correct (1@B, 2@A, 3@B, 4@B). With candidate pruning the
// synthesis procedure evaluates 10 candidates; naive enumeration evaluates
// all 3·2·2·2 = 24.
func Figure2() *Graph {
	const (
		s0  = iota // initial, hole 1
		s1         // hole 2
		s2         // hole 3
		s3         // hole 4
		ok         // success terminal
		bad        // invariant violation
	)
	return &Graph{
		SysName: "fig2",
		Init:    []int{s0},
		Nodes: []Node{
			s0:  {Hole: "1", Acts: []string{"A", "B", "C"}, To: []int{bad, s1, bad}},
			s1:  {Hole: "2", Acts: []string{"A", "B"}, To: []int{s2, bad}},
			s2:  {Hole: "3", Acts: []string{"A", "B"}, To: []int{bad, s3}},
			s3:  {Hole: "4", Acts: []string{"A", "B"}, To: []int{bad, ok}},
			ok:  {},
			bad: {Bad: true},
		},
	}
}

// Chain builds a Figure-2-style chain of holes holes, each of the given
// arity: at every hole exactly one action (the last) advances towards the
// success terminal and all others reach the bad state. This is the
// failure-heavy regime where candidate pruning shines: naive enumeration
// costs arity^holes runs while pruning costs O(holes·arity).
func Chain(holes, arity int) *Graph {
	if holes < 1 || arity < 2 {
		panic("toy: Chain needs holes >= 1, arity >= 2")
	}
	g := &Graph{SysName: fmt.Sprintf("chain%dx%d", holes, arity)}
	const (
		okNode  = 0
		badNode = 1
	)
	g.Nodes = append(g.Nodes, Node{}, Node{Bad: true})
	acts := make([]string, arity)
	for a := range acts {
		acts[a] = string(rune('A' + a))
	}
	first := len(g.Nodes)
	for i := 0; i < holes; i++ {
		to := make([]int, arity)
		for a := range to {
			to[a] = badNode
		}
		next := okNode
		if i+1 < holes {
			next = first + i + 1
		}
		to[arity-1] = next
		g.Nodes = append(g.Nodes, Node{Hole: fmt.Sprintf("h%d", i), Acts: acts, To: to})
	}
	g.Init = []int{first}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// Random generates a seeded random hole graph with the given number of hole
// nodes. The shape (chain-with-branches, a sprinkling of bad sinks, plain
// edges, occasional hole reuse) is chosen so that problems have a mix of
// failing and succeeding candidates and holes are discovered incrementally,
// which is what exercises lazy discovery and pruning.
func Random(rng *rand.Rand, holes int) *Graph {
	if holes < 1 {
		panic("toy: Random needs >= 1 hole")
	}
	g := &Graph{SysName: fmt.Sprintf("rand%d", holes)}
	const (
		okNode  = 0
		badNode = 1
	)
	g.Nodes = append(g.Nodes, Node{}, Node{Bad: true})
	// Hole nodes form a rough chain; each action goes forward, to ok, or to
	// bad. Extra plain edges add nondeterministic shortcuts.
	holeIDs := make([]int, holes)
	for i := 0; i < holes; i++ {
		holeIDs[i] = len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{})
	}
	actNames := []string{"A", "B", "C", "D"}
	for i := 0; i < holes; i++ {
		arity := 2 + rng.Intn(2)
		n := &g.Nodes[holeIDs[i]]
		n.Hole = fmt.Sprintf("h%d", i)
		if i >= 2 && rng.Intn(4) == 0 {
			// Reuse an earlier hole (same decision in a second context);
			// must keep its arity.
			j := rng.Intn(i - 1)
			n.Hole = fmt.Sprintf("h%d", j)
			arity = len(g.Nodes[holeIDs[j]].Acts)
		}
		n.Acts = actNames[:arity]
		n.To = make([]int, arity)
		for a := 0; a < arity; a++ {
			switch r := rng.Intn(6); {
			case r == 0:
				n.To[a] = badNode
			case r == 1 || i == holes-1:
				n.To[a] = okNode
			default:
				// Forward edge to a later hole node, or off the end to ok.
				if j := i + 1 + rng.Intn(holes-i); j >= holes {
					n.To[a] = okNode
				} else {
					n.To[a] = holeIDs[j]
				}
			}
		}
		if rng.Intn(3) == 0 && i+1 < holes {
			n.Plain = append(n.Plain, holeIDs[i+1])
		}
	}
	g.Init = []int{holeIDs[0]}
	if rng.Intn(4) == 0 {
		g.Nodes[okNode].Goal = true
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}
