package toy_test

import (
	"math/rand"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/ts"
)

// TestFigure2Structure pins the worked example's shape: 4 holes, arities
// 3,2,2,2, one initial node.
func TestFigure2Structure(t *testing.T) {
	g := toy.Figure2()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	arity := map[string]int{}
	for _, n := range g.Nodes {
		if n.Hole != "" {
			arity[n.Hole] = len(n.Acts)
		}
	}
	want := map[string]int{"1": 3, "2": 2, "3": 2, "4": 2}
	for h, a := range want {
		if arity[h] != a {
			t.Errorf("hole %s arity = %d, want %d", h, arity[h], a)
		}
	}
}

// TestChainShape checks Chain's single correct action per hole.
func TestChainShape(t *testing.T) {
	g := toy.Chain(5, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	holes := 0
	for _, n := range g.Nodes {
		if n.Hole != "" {
			holes++
			if len(n.Acts) != 3 {
				t.Errorf("arity = %d, want 3", len(n.Acts))
			}
		}
	}
	if holes != 5 {
		t.Errorf("holes = %d, want 5", holes)
	}
}

// TestRandomGraphsValid checks the generator over many seeds.
func TestRandomGraphsValid(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := toy.Random(rng, 1+rng.Intn(7))
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestValidateRejections covers the structural error paths.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		g    *toy.Graph
	}{
		{"no-init", &toy.Graph{Nodes: []toy.Node{{}}}},
		{"init-out-of-range", &toy.Graph{Init: []int{5}, Nodes: []toy.Node{{}}}},
		{"arity-mismatch", &toy.Graph{Init: []int{0}, Nodes: []toy.Node{
			{Hole: "h", Acts: []string{"A", "B"}, To: []int{0}},
		}}},
		{"edge-out-of-range", &toy.Graph{Init: []int{0}, Nodes: []toy.Node{
			{Hole: "h", Acts: []string{"A"}, To: []int{9}},
		}}},
		{"plain-out-of-range", &toy.Graph{Init: []int{0}, Nodes: []toy.Node{
			{Plain: []int{9}},
		}}},
		{"acts-without-hole", &toy.Graph{Init: []int{0}, Nodes: []toy.Node{
			{Acts: []string{"A"}, To: []int{0}},
		}}},
		{"hole-reuse-arity", &toy.Graph{Init: []int{0}, Nodes: []toy.Node{
			{Hole: "h", Acts: []string{"A", "B"}, To: []int{1, 1}},
			{Hole: "h", Acts: []string{"A"}, To: []int{0}},
		}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

// fixed resolves every hole to the same action index.
type fixed int

func (f fixed) Choose(hole string, actions []string) (int, error) {
	if int(f) >= len(actions) {
		return len(actions) - 1, nil
	}
	return int(f), nil
}

// TestFigure2UniqueCompletion: checking the chain under the correct fixed
// assignment succeeds; a wrong one fails.
func TestFigure2UniqueCompletion(t *testing.T) {
	g := toy.Figure2()
	// Correct: 1@B(1), 2@A(0), 3@B(1), 4@B(1) — not a constant assignment,
	// so use a map chooser.
	correct := mapChooser{"1": 1, "2": 0, "3": 1, "4": 1}
	res, err := mc.Check(g, mc.Options{Env: ts.NewEnv(correct)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Success {
		t.Fatalf("correct completion: verdict %v", res.Verdict)
	}
	res, err = mc.Check(g, mc.Options{Env: ts.NewEnv(fixed(0))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure {
		t.Fatalf("1@A completion: verdict %v, want failure", res.Verdict)
	}
}

type mapChooser map[string]int

func (m mapChooser) Choose(hole string, actions []string) (int, error) {
	return m[hole], nil
}

// TestGraphQuiescence: terminal plain nodes are quiescent; hole nodes are
// not.
func TestGraphQuiescence(t *testing.T) {
	g := toy.Figure2()
	states := g.Initial()
	if g.Quiescent(states[0]) {
		t.Error("hole node must not be quiescent")
	}
}
