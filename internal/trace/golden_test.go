package trace_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"verc3/internal/dsl"
	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/trace"
	"verc3/internal/ts"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden byte for byte,
// rewriting the file under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s: rendering drifted from golden file.\n--- got ---\n%s--- want ---\n%s(re-bless with -update if intentional)",
			name, got, want)
	}
}

// counter is a tiny deterministic state for the golden systems, with a
// stable String rendering so ShowStates output is pinned too.
type counter struct{ v int8 }

func (s *counter) Key() string     { return string(rune('0' + s.v)) }
func (s *counter) Clone() ts.State { cp := *s; return &cp }
func (s *counter) String() string  { return "counter=" + s.Key() }

// TestGoldenSafetyTrace pins the multi-line rendering of an invariant
// violation: header, initial-state line, numbered steps, state lines.
func TestGoldenSafetyTrace(t *testing.T) {
	g := &toy.Graph{SysName: "t", Init: []int{0}, Nodes: []toy.Node{
		{Plain: []int{1}}, {Plain: []int{2}}, {Bad: true},
	}}
	res, err := mc.Check(g, mc.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailInvariant {
		t.Fatalf("unexpected result %v/%+v", res.Verdict, res.Failure)
	}
	golden(t, "safety", trace.Format(res.Failure, trace.Options{ShowStates: true}))
	golden(t, "safety-summary", trace.Summary(res.Failure)+"\n")
}

// TestGoldenDeadlockTrace pins the rendering of a deadlock counterexample:
// a non-quiescent stuck state at the end of a short path (toy graphs treat
// terminals as quiescent, so this one is built on the DSL, which does not).
func TestGoldenDeadlockTrace(t *testing.T) {
	b := dsl.NewBuilder[*counter]("wedge", &counter{})
	b.Rule("step", func(s *counter) bool { return s.v < 2 }, func(s *counter, _ *ts.Env) error { s.v++; return nil })
	res, err := mc.Check(b.System(), mc.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailDeadlock {
		t.Fatalf("unexpected result %v/%+v", res.Verdict, res.Failure)
	}
	golden(t, "deadlock", trace.Format(res.Failure, trace.Options{}))
}

// lassoFailure produces a deterministic liveness lasso with a 2-step stem
// and a 2-step cycle: 0 → 1, then 1 ↔ 2 forever, violating FG(v == 0).
func lassoFailure(t *testing.T) *mc.FailureInfo {
	t.Helper()
	b := dsl.NewBuilder[*counter]("lasso", &counter{})
	b.Rule("warm-up", func(s *counter) bool { return s.v == 0 }, func(s *counter, _ *ts.Env) error { s.v = 1; return nil })
	b.Rule("ping", func(s *counter) bool { return s.v == 1 }, func(s *counter, _ *ts.Env) error { s.v = 2; return nil })
	b.Rule("pong", func(s *counter) bool { return s.v == 2 }, func(s *counter, _ *ts.Env) error { s.v = 1; return nil })
	b.EventuallyAlways("settles-at-zero", false, func(s *counter) bool { return s.v == 0 })
	res, err := mc.Check(b.System(), mc.Options{Liveness: true, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure || res.Failure.Kind != mc.FailLiveness {
		t.Fatalf("unexpected result %v/%+v", res.Verdict, res.Failure)
	}
	return res.Failure
}

// TestGoldenLassoTrace pins the lasso format: the cycle-start marker sits
// between stem and cycle, and the closing line names the loop-back step.
func TestGoldenLassoTrace(t *testing.T) {
	f := lassoFailure(t)
	golden(t, "lasso", trace.Format(f, trace.Options{ShowStates: true}))
	golden(t, "lasso-summary", trace.Summary(f)+"\n")
}

// TestGoldenLassoTruncation pins that MaxSteps elision stops at the cycle:
// even MaxSteps=1 renders the full cycle, eliding only stem steps.
func TestGoldenLassoTruncation(t *testing.T) {
	f := lassoFailure(t)
	golden(t, "lasso-truncated", trace.Format(f, trace.Options{MaxSteps: 1}))
}
