// Package trace renders model-checker counterexamples for humans. The
// paper's workflow surfaces minimal error traces to the protocol designer;
// this package turns mc.FailureInfo values into readable reports.
//
// Safety failures render as a straight numbered path. Liveness failures
// (mc.FailLiveness) are lassos: the steps before FailureInfo.CycleStart are
// the stem, a marker line separates them from the cycle, and a closing line
// after the final step names the step the cycle loops back to. Truncation
// never cuts into the cycle — a lasso report without its cycle would be
// meaningless — so MaxSteps elides stem steps only.
package trace

import (
	"fmt"
	"strings"

	"verc3/internal/mc"
)

// Options controls rendering.
type Options struct {
	// MaxSteps truncates long traces (0 = unlimited). For lassos only the
	// stem is truncatable; the cycle is always rendered whole.
	MaxSteps int
	// ShowStates includes each state's String()/Key() rendering.
	ShowStates bool
}

// Format renders a failure as a numbered trace report.
func Format(f *mc.FailureInfo, opt Options) string {
	if f == nil {
		return "no failure"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s violation: %s\n", f.Kind, f.Name)
	if len(f.Trace) == 0 {
		if f.Kind == mc.FailGoal {
			b.WriteString("(no single counterexample trace: the goal is unreached over the whole explored space)\n")
		} else {
			b.WriteString("(trace not recorded; re-run with RecordTrace)\n")
		}
		return b.String()
	}
	lasso := f.Kind == mc.FailLiveness
	steps := f.Trace
	truncated := 0
	if opt.MaxSteps > 0 && len(steps) > opt.MaxSteps {
		truncated = len(steps) - opt.MaxSteps
		if lasso && truncated > f.CycleStart {
			truncated = f.CycleStart // never elide into the cycle
		}
		steps = steps[truncated:]
	}
	if truncated > 0 {
		fmt.Fprintf(&b, "... %d earlier steps elided ...\n", truncated)
	}
	for i, st := range steps {
		n := i + truncated
		// The cycle's transitions are the steps after CycleStart; the
		// marker sits between the step that arrives at the loop state and
		// the first step that repeats forever.
		if lasso && n == f.CycleStart+1 {
			fmt.Fprintf(&b, "     --- cycle starts here (repeats forever) ---\n")
		}
		rule := st.Rule
		if rule == "" {
			rule = "(initial state)"
		}
		fmt.Fprintf(&b, "%3d. %s\n", n, rule)
		if opt.ShowStates {
			fmt.Fprintf(&b, "     %s\n", stateString(st))
		}
	}
	if lasso {
		fmt.Fprintf(&b, "     --- cycle closes: back to step %d ---\n", f.CycleStart)
	}
	return b.String()
}

// stateString prefers a String method over the raw canonical key.
func stateString(st mc.TraceStep) string {
	if s, ok := st.State.(fmt.Stringer); ok {
		return s.String()
	}
	return st.State.Key()
}

// Summary returns a one-line description of the failure.
func Summary(f *mc.FailureInfo) string {
	if f == nil {
		return "no failure"
	}
	if f.Kind == mc.FailLiveness && len(f.Trace) > 0 {
		return fmt.Sprintf("%s violation of %q: lasso with %d-step stem and %d-step cycle",
			f.Kind, f.Name, f.CycleStart, max(0, len(f.Trace)-1-f.CycleStart))
	}
	return fmt.Sprintf("%s violation of %q after %d steps", f.Kind, f.Name, max(0, len(f.Trace)-1))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
