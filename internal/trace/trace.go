// Package trace renders model-checker counterexamples for humans. The
// paper's workflow surfaces minimal error traces to the protocol designer;
// this package turns mc.FailureInfo values into readable reports.
package trace

import (
	"fmt"
	"strings"

	"verc3/internal/mc"
)

// Options controls rendering.
type Options struct {
	// MaxSteps truncates long traces (0 = unlimited).
	MaxSteps int
	// ShowStates includes each state's String()/Key() rendering.
	ShowStates bool
}

// Format renders a failure as a numbered trace report.
func Format(f *mc.FailureInfo, opt Options) string {
	if f == nil {
		return "no failure"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s violation: %s\n", f.Kind, f.Name)
	if len(f.Trace) == 0 {
		if f.Kind == mc.FailGoal {
			b.WriteString("(no single counterexample trace: the goal is unreached over the whole explored space)\n")
		} else {
			b.WriteString("(trace not recorded; re-run with RecordTrace)\n")
		}
		return b.String()
	}
	steps := f.Trace
	truncated := 0
	if opt.MaxSteps > 0 && len(steps) > opt.MaxSteps {
		truncated = len(steps) - opt.MaxSteps
		steps = steps[len(steps)-opt.MaxSteps:]
	}
	if truncated > 0 {
		fmt.Fprintf(&b, "... %d earlier steps elided ...\n", truncated)
	}
	for i, st := range steps {
		rule := st.Rule
		if rule == "" {
			rule = "(initial state)"
		}
		fmt.Fprintf(&b, "%3d. %s\n", i+truncated, rule)
		if opt.ShowStates {
			fmt.Fprintf(&b, "     %s\n", stateString(st))
		}
	}
	return b.String()
}

// stateString prefers a String method over the raw canonical key.
func stateString(st mc.TraceStep) string {
	if s, ok := st.State.(fmt.Stringer); ok {
		return s.String()
	}
	return st.State.Key()
}

// Summary returns a one-line description of the failure.
func Summary(f *mc.FailureInfo) string {
	if f == nil {
		return "no failure"
	}
	return fmt.Sprintf("%s violation of %q after %d steps", f.Kind, f.Name, max(0, len(f.Trace)-1))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
