package trace_test

import (
	"strings"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/toy"
	"verc3/internal/trace"
)

// failure builds a real FailureInfo by checking a failing toy graph.
func failure(t *testing.T) *mc.FailureInfo {
	t.Helper()
	g := &toy.Graph{SysName: "t", Init: []int{0}, Nodes: []toy.Node{
		{Plain: []int{1}}, {Plain: []int{2}}, {Bad: true},
	}}
	res, err := mc.Check(g, mc.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Failure {
		t.Fatal("expected failure")
	}
	return res.Failure
}

// TestFormatBasics checks the report contains the property name and all
// steps in order.
func TestFormatBasics(t *testing.T) {
	f := failure(t)
	out := trace.Format(f, trace.Options{ShowStates: true})
	for _, want := range []string{"invariant violation: no-bad-state", "(initial state)", "n0→n1", "n1→n2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFormatTruncation checks MaxSteps elides the front of long traces.
func TestFormatTruncation(t *testing.T) {
	f := failure(t)
	out := trace.Format(f, trace.Options{MaxSteps: 1})
	if !strings.Contains(out, "2 earlier steps elided") {
		t.Errorf("missing elision note:\n%s", out)
	}
	if strings.Contains(out, "(initial state)") {
		t.Errorf("initial step should be elided:\n%s", out)
	}
}

// TestFormatNilAndGoal covers the no-trace paths.
func TestFormatNilAndGoal(t *testing.T) {
	if got := trace.Format(nil, trace.Options{}); got != "no failure" {
		t.Errorf("nil: %q", got)
	}
	goal := &mc.FailureInfo{Kind: mc.FailGoal, Name: "g"}
	out := trace.Format(goal, trace.Options{})
	if !strings.Contains(out, "no single counterexample") {
		t.Errorf("goal: %q", out)
	}
	inv := &mc.FailureInfo{Kind: mc.FailInvariant, Name: "x"}
	if !strings.Contains(trace.Format(inv, trace.Options{}), "re-run with RecordTrace") {
		t.Error("missing RecordTrace hint")
	}
}

// TestSummary pins the one-liner.
func TestSummary(t *testing.T) {
	f := failure(t)
	got := trace.Summary(f)
	if !strings.Contains(got, "no-bad-state") || !strings.Contains(got, "2 steps") {
		t.Errorf("Summary = %q", got)
	}
	if trace.Summary(nil) != "no failure" {
		t.Error("nil summary")
	}
}
