// Package ts provides the transition-system modelling layer of VerC3: an
// embedded, Murphi-like guarded-command DSL for describing finite-state
// concurrent systems in plain Go.
//
// A system is described by implementing the System interface: it supplies a
// set of initial states and, for every state, the set of enabled transitions.
// Transitions fire lazily so that the synthesis layer (internal/core) can
// interpose "holes" whose actions are chosen by the synthesizer; firing a
// transition whose hole is still unassigned (a wildcard) aborts just that
// execution branch.
//
// States are explicit: every state must be able to produce a canonical
// encoding of itself (Key) used by the model checker for visited-set
// deduplication, and a deep copy (Clone) so rule actions can mutate freely.
//
// Keying has two tiers. Key() string is the mandatory, human-readable
// canonical encoding — it is what counterexample traces show and what the
// checker falls back to. States that additionally implement KeyAppender
// provide a compact binary encoding appended into a caller-owned buffer,
// which is what the exploration hot path fingerprints: no string is ever
// materialized per visited state. Symmetric states can further implement
// InPlacePermuter so the symmetry canonicalizer permutes into reusable
// scratch instead of deep-cloning once per permutation.
//
// # Successor lifecycle
//
// The remaining per-state garbage of an exploration is the successors
// themselves: Fire deep-copies the source state once per offered
// transition, and in a dense state space most successors are rejected as
// duplicates the moment they are fingerprinted — the copy was pure waste.
// Three optional interfaces let systems and the checker close that loop:
//
//   - Recycler, implemented by the system, accepts a dead state back
//     (Recycle) so its storage can seed the next Fire clone.
//   - StateCopier, implemented by the state, overwrites a recycled state
//     in place with a new source (the CopyFrom reuse path).
//   - TransitionAppender, implemented by the system, enumerates
//     transitions into a caller-owned buffer with names precomputed at
//     construction, killing the per-expansion slice and fmt garbage.
//
// Ownership rules: every State returned by Initial or Fire is owned by the
// caller, and a caller may hand any such state to Recycle once nothing
// else can reach it — the model checker does so for rejected duplicate
// successors (never enqueued, never traced) and, in traceless runs, for
// each expanded state once its transitions have fired. A state escapes the
// pool forever when it is retained anywhere: trace nodes, counterexamples
// and frontier entries are never recycled. Systems that pool must build
// reused clones so they share no mutable storage with live states (see
// StateCopier); symmetry scratch is already private (InPlacePermuter
// Scratch), so pooling never aliases it.
//
// # Properties
//
// Systems carry three property tiers: Invariant (safety, checked on every
// reachable state), ReachGoal ("eventually somewhere" over the reachable
// set, via GoalReporter), and LivenessGoal (temporal properties over
// infinite executions — "eventually always P" and "P leads-to Q" — via
// LivenessReporter, checked by the model checker's nested-DFS cycle
// search). Liveness goals may be restricted to weakly fair executions
// through FairnessReporter, so idle-forever schedules don't count as
// starvation counterexamples.
package ts

import "errors"

// ErrWildcard is returned by a transition's Fire when the execution reached a
// synthesis hole whose current action is the wildcard (default) action. The
// model checker treats the branch as unexplorable and records that a wildcard
// was encountered; the final verdict for such a run can be at best "unknown".
var ErrWildcard = errors.New("ts: wildcard hole encountered")

// State is an explicit protocol state.
//
// Key must be a canonical encoding: two states are identical if and only if
// their keys are equal. Models with symmetric agents additionally implement
// Permutable so the checker can canonicalize keys up to agent permutation.
type State interface {
	// Key returns the canonical encoding of the state. It must be
	// deterministic and injective on the reachable state space.
	Key() string
	// Clone returns a deep copy that shares no mutable structure with the
	// receiver.
	Clone() State
}

// KeyAppender is optionally implemented by states that can encode themselves
// in binary without allocating. AppendKey appends a compact encoding of the
// state to dst and returns the extended buffer, exactly like
// strconv.AppendInt grows its destination: the caller owns the buffer and
// reuses it across states, so the exploration hot path fingerprints states
// with zero per-state allocations (see statespace.OfBytes).
//
// The encoding must satisfy the same contract as Key, restated in binary:
// deterministic, and injective wherever Key is — two states with distinct
// Key() strings must produce distinct appended byte sequences. (Equality
// the other way — equal keys yielding equal encodings — holds for every
// model in this repo; self-delimiting encodings are in fact injective on
// raw field values even where a delimiter-based Key string would collide.)
// The appended bytes need not be printable and need not resemble Key.
type KeyAppender interface {
	// AppendKey appends the state's binary encoding to dst and returns the
	// extended slice. It must not retain dst and must not allocate beyond
	// growing dst.
	AppendKey(dst []byte) []byte
}

// KeyDecoder is optionally implemented by systems whose AppendKey
// encodings can be decoded back into states. It is the inverse the
// checkpoint/resume machinery needs: a BFS frontier is persisted as the
// concatenation of its states' AppendKey encodings, and DecodeKey
// rebuilds the states on resume. Because AppendKey encodings are
// self-delimiting, DecodeKey consumes exactly one state from the front of
// data and returns the remainder.
//
// The round-trip contract: for every reachable state s,
// DecodeKey(s.AppendKey(nil)) yields a state whose AppendKey re-encodes
// to the identical bytes (and whose Key equals s.Key). Malformed input
// must return an error — never panic — since checkpoint files cross a
// process boundary.
type KeyDecoder interface {
	// DecodeKey decodes one state from the front of data and returns the
	// state and the unconsumed remainder.
	DecodeKey(data []byte) (State, []byte, error)
}

// Permutable is implemented by states containing scalarset-like symmetric
// agent identifiers (e.g. cache IDs). Permute returns a copy of the state
// with every agent index i renamed to perm[i]. The model checker uses this
// for symmetry reduction: the canonical representative of a state is the
// permutation with the lexicographically smallest Key.
type Permutable interface {
	State
	// NumAgents reports the size of the symmetric scalarset.
	NumAgents() int
	// Permute returns a fresh state with agent identities renamed by perm,
	// which is a bijection on [0, NumAgents()).
	Permute(perm []int) State
}

// InPlacePermuter is optionally implemented by Permutable states that can
// write a permutation into reusable scratch storage instead of allocating a
// fresh deep copy per permutation. The symmetry canonicalizer visits N!−1
// non-identity permutations per offered state, so with plain Permute the
// clone is the dominant allocation of a symmetry-reduced exploration; with
// PermuteInto the canonicalizer keeps one scratch state per worker and
// mutates it in place.
type InPlacePermuter interface {
	Permutable
	// Scratch returns a fully private deep copy of the receiver for use as
	// a PermuteInto destination. Unlike Clone — which may share structure
	// the model treats as immutable (e.g. a copy-on-write message multiset)
	// — the result must share no storage at all with the receiver, because
	// PermuteInto overwrites it in place.
	Scratch() State
	// PermuteInto writes into dst the same state Permute(perm) would
	// return. dst must come from Scratch of a state of the same system
	// (same scalarset size and shape); its previous contents are fully
	// overwritten. Implementations reuse dst's storage and must not
	// allocate beyond amortized growth of dst's internal slices.
	PermuteInto(dst State, perm []int)
}

// StateCopier is optionally implemented by states that can overwrite
// themselves with another state's contents, reusing their own storage —
// the CopyFrom half of the successor-recycling protocol. src must be a
// state of the same system (same concrete type and shape).
//
// CopyFrom is stronger than Clone: the receiver must end up sharing no
// mutable storage with src or with any other live state, exactly like
// InPlacePermuter.Scratch, because the receiver is about to be mutated by
// a rule action while src may still sit on the frontier. (Immutable
// payloads — strings, never-written shared arrays — may be shared.)
type StateCopier interface {
	State
	// CopyFrom makes the receiver equal to src, reusing the receiver's
	// storage where capacities allow and allocating only to grow.
	CopyFrom(src State)
}

// Recycler is optionally implemented by systems that pool successor
// storage: Recycle accepts a state the caller owns outright and no longer
// needs, and the system's Fire implementations draw their clones from the
// returned storage (via StateCopier.CopyFrom) instead of allocating fresh
// deep copies.
//
// The caller contract: s must have been obtained from this system's
// Initial or Fire, and nothing — trace node, frontier entry, scratch,
// pending transition closure — may still reference it. After Recycle the
// state's storage may be overwritten at any time. Recycle must be safe for
// concurrent use (the parallel driver recycles from every worker; a
// sync.Pool's per-P free-lists give each worker a private list).
type Recycler interface {
	Recycle(s State)
}

// PoolReporter is optionally implemented alongside Recycler to expose the
// successor pool's cumulative traffic for statistics: hits counts Fire
// clones served from recycled storage, misses counts clones built fresh
// (pool empty — exploration start, or storage still checked out). The
// checker reports the per-run delta in statespace.Stats.
type PoolReporter interface {
	PoolStats() (hits, misses uint64)
}

// TransitionAppender is optionally implemented by systems whose transition
// enumeration can append into a caller-owned buffer, exactly like append:
// the checker keeps one buffer per worker and truncates it per expansion,
// so steady-state enumeration allocates nothing. Implementations must
// behave identically to Transitions (same transitions, same order) and
// precompute transition names at system construction — the per-expansion
// fmt.Sprintf in a Transitions implementation is the second-largest
// allocator after the successor clones themselves.
//
// Checkers prefer this path whenever the interface is satisfied, so a
// wrapper that overrides Transitions while embedding a system implementing
// TransitionAppender must override AppendTransitions as well — the promoted
// method would otherwise enumerate the embedded system's transitions and
// silently bypass the override.
type TransitionAppender interface {
	// AppendTransitions appends the transitions enabled in s to dst and
	// returns the extended slice. It must not retain dst.
	AppendTransitions(dst []Transition, s State) []Transition
}

// Env is the execution environment a transition fires in. It is the bridge
// between the model and the synthesis engine: models call Choose at each
// hole. A nil *Env (plain model checking of a complete model) makes Choose
// panic, which turns an accidentally-left hole into a loud failure.
type Env struct {
	// chooser is installed by the synthesis engine.
	chooser Chooser
}

// Chooser resolves synthesis holes. Implementations live in internal/core.
type Chooser interface {
	// Choose resolves the hole with the given name to the index of one of its
	// actions. names lists the human-readable action names; its length fixes
	// the hole's arity on first discovery. Choose returns ErrWildcard when
	// the hole is currently assigned the wildcard action.
	Choose(hole string, actions []string) (int, error)
}

// NewEnv wraps a Chooser for use by firing transitions. A nil chooser yields
// an environment on which Choose panics (complete models never call it).
func NewEnv(c Chooser) *Env { return &Env{chooser: c} }

// Choose resolves the named hole to an action index in [0, len(actions)).
// It returns ErrWildcard when the synthesizer has the hole at its wildcard
// default. Calling Choose on an environment without a chooser panics: a
// complete model must not contain holes.
func (e *Env) Choose(hole string, actions []string) (int, error) {
	if e == nil || e.chooser == nil {
		panic("ts: Choose(" + hole + ") called while model-checking a complete model (no synthesis chooser installed)")
	}
	return e.chooser.Choose(hole, actions)
}

// Transition is a single enabled transition of a state. Fire computes the
// successor; it must not mutate the originating state (models typically
// Clone first). Fire returns ErrWildcard (possibly wrapped) when the branch
// hits an unassigned hole.
type Transition struct {
	// Name identifies the transition for traces, e.g. "cache0: recv Data in IS_D".
	Name string
	// Fire computes the successor state in the given environment.
	Fire func(env *Env) (State, error)
}

// Invariant is a safety property checked on every reachable state.
type Invariant struct {
	Name string
	// Holds reports whether the state satisfies the invariant.
	Holds func(s State) bool
}

// ReachGoal is an "eventually somewhere" property over the reachable state
// space: after exploration finishes without a safety violation, every goal's
// Holds must have been true for at least one visited state. The paper uses
// this for "all stable states must be visited at least once", which weeds
// out degenerate-but-safe protocols.
type ReachGoal struct {
	Name string
	// Holds reports whether the state witnesses the goal.
	Holds func(s State) bool
}

// System is a complete description of a finite-state transition system.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Initial returns the initial states. Must be non-empty.
	Initial() []State
	// Transitions enumerates the transitions enabled in s. Guards are
	// evaluated eagerly (an entry is only returned if its guard holds);
	// actions run lazily in Fire.
	Transitions(s State) []Transition
	// Invariants returns the safety properties of the system.
	Invariants() []Invariant
}

// QuiescentReporter is optionally implemented by systems to refine deadlock
// detection: a state with no successors is a deadlock only if it is not
// quiescent. Systems that always have some enabled transition (e.g. ones
// that can always issue a new request) need not implement this.
type QuiescentReporter interface {
	Quiescent(s State) bool
}

// GoalReporter is optionally implemented by systems that carry reachability
// goals (see ReachGoal).
type GoalReporter interface {
	Goals() []ReachGoal
}

// LivenessKind selects the temporal shape of a LivenessGoal.
type LivenessKind int

const (
	// EventuallyAlways is "FG P": along every (fair) infinite execution the
	// system eventually reaches a suffix on which P holds forever. Its
	// violations are executions where ¬P recurs forever — e.g. a protocol
	// that keeps bouncing out of its stable states.
	EventuallyAlways LivenessKind = iota
	// LeadsTo is "G(P → F Q)": along every (fair) infinite execution, each
	// state satisfying P is eventually followed by a state satisfying Q —
	// "request leads to grant". With P ≡ true this degenerates to "GF Q"
	// (Q recurs forever), the shape of "every process holds the token
	// infinitely often".
	LeadsTo
)

// String returns the kind name.
func (k LivenessKind) String() string {
	switch k {
	case EventuallyAlways:
		return "eventually-always"
	case LeadsTo:
		return "leads-to"
	default:
		return "LivenessKind(?)"
	}
}

// LivenessGoal is a temporal property over infinite executions, checked by
// the model checker's nested-DFS driver (mc.Options.Liveness): a violation
// is a lasso — a reachable cycle along which the property's negation holds
// forever. Unlike ReachGoal (a property of the reachable set), a
// LivenessGoal constrains every execution, so its counterexamples are
// stem-plus-cycle traces rather than simple paths.
type LivenessGoal struct {
	Name string
	// Kind selects the temporal shape; see LivenessKind.
	Kind LivenessKind
	// P is the kind's primary predicate (the P of FG P or G(P → F Q)).
	P func(s State) bool
	// Q is the LeadsTo target predicate; ignored by EventuallyAlways.
	Q func(s State) bool
	// Fair restricts the check to weakly fair executions: cycles on which a
	// declared fairness requirement (see FairnessReporter) is continuously
	// enabled but never taken are not counterexamples. Ignored when the
	// system declares no fairness requirements.
	Fair bool
}

// LivenessReporter is optionally implemented by systems that carry liveness
// goals. The model checker consults it only under mc.Options.Liveness.
type LivenessReporter interface {
	LivenessGoals() []LivenessGoal
}

// Fairness is one weak-fairness requirement: an execution is weakly fair to
// it when, infinitely often, the requirement is either not Enabled or was
// just Taken — equivalently, it cannot stay continuously enabled while
// being ignored forever. A requirement usually stands for one process
// ("process i gets scheduled"), with Enabled true when the process has some
// enabled transition and Taken matching the process's transition names.
type Fairness struct {
	Name string
	// Enabled reports whether the requirement is enabled in s.
	Enabled func(s State) bool
	// Taken reports whether firing the named transition discharges the
	// requirement (transition names are unique per system; see
	// Transition.Name).
	Taken func(rule string) bool
}

// FairnessReporter is optionally implemented by systems that declare weak-
// fairness requirements for their Fair liveness goals (see LivenessGoal).
type FairnessReporter interface {
	WeakFairness() []Fairness
}
