package ts_test

import (
	"errors"
	"testing"

	"verc3/internal/ts"
)

// stubChooser returns a fixed index.
type stubChooser struct {
	idx  int
	err  error
	last string
}

func (s *stubChooser) Choose(hole string, actions []string) (int, error) {
	s.last = hole
	return s.idx, s.err
}

// TestEnvChoosePassthrough checks Env delegates to the installed chooser.
func TestEnvChoosePassthrough(t *testing.T) {
	c := &stubChooser{idx: 2}
	env := ts.NewEnv(c)
	got, err := env.Choose("h", []string{"a", "b", "c"})
	if err != nil || got != 2 {
		t.Fatalf("Choose = %d, %v", got, err)
	}
	if c.last != "h" {
		t.Errorf("hole name %q not forwarded", c.last)
	}
}

// TestEnvChooseWildcard checks ErrWildcard flows through and is detectable
// with errors.Is.
func TestEnvChooseWildcard(t *testing.T) {
	env := ts.NewEnv(&stubChooser{err: ts.ErrWildcard})
	_, err := env.Choose("h", []string{"a"})
	if !errors.Is(err, ts.ErrWildcard) {
		t.Fatalf("err = %v, want ErrWildcard", err)
	}
}

// TestNilEnvPanics: a complete model must not contain holes; calling Choose
// without a chooser is a loud programming error, not a silent default.
func TestNilEnvPanics(t *testing.T) {
	for _, env := range []*ts.Env{nil, ts.NewEnv(nil)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			env.Choose("h", []string{"a"}) //nolint:errcheck
		}()
	}
}
