package visited

import (
	"math"
	"math/bits"
	"sync/atomic"

	"verc3/internal/statespace"
)

// bitstate is the SPIN-style lossy tier: K derived hash positions per
// fingerprint are set in a fixed-size bit array, and a fingerprint whose K
// bits are all already set is reported as visited. Memory never grows past
// the configured budget; the price is that a never-seen state can collide
// on all K bits and be silently omitted from the search (Exact() == false).
//
// All operations are lock-free atomics, so one implementation serves both
// the sequential and the parallel driver. Under concurrency two racing
// inserts of the same fingerprint can, very rarely, both be admitted (each
// sets a disjoint subset of the K bits first); the duplicate expansion is
// harmless — its successors still deduplicate — and only nudges the
// transition counters, which are approximate under this backend anyway.
type bitstate struct {
	words    []uint64 // accessed atomically
	nbits    uint64
	k        int
	admitted atomic.Int64
	ones     atomic.Int64
}

func newBitstate(cfg Config) *bitstate {
	mb := cfg.BitstateMB
	if mb <= 0 {
		mb = DefaultBitstateMB
	}
	k := cfg.BitstateHashes
	if k <= 0 {
		k = DefaultBitstateHashes
	}
	return newBitstateBits(uint64(mb)<<23, k) // 1 MiB = 2²³ bits
}

// newBitstateBits sizes the array directly; tests use it to reach fills
// where the omission probability is measurable.
func newBitstateBits(nbits uint64, k int) *bitstate {
	return &bitstate{words: make([]uint64, (nbits+63)/64), nbits: nbits, k: k}
}

// mix is the splitmix64 finalizer, used to derive independent bit positions
// from the one 64-bit fingerprint.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// position maps a derived hash onto [0, nbits) without requiring a
// power-of-two budget (Lemire's multiply-shift reduction).
func (b *bitstate) position(h uint64) uint64 {
	hi, _ := bits.Mul64(h, b.nbits)
	return hi
}

// setBit sets the bit and reports whether it was previously clear.
func (b *bitstate) setBit(pos uint64) bool {
	word := &b.words[pos>>6]
	mask := uint64(1) << (pos & 63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			b.ones.Add(1)
			return true
		}
	}
}

func (b *bitstate) TryInsert(fp statespace.Fingerprint) bool {
	// Double hashing over the mixed fingerprint: h1 + i·h2 yields K
	// positions that are pairwise independent enough for the Bloom-filter
	// omission analysis (h2 forced odd so the stride never degenerates).
	h1 := mix(uint64(fp))
	h2 := mix(uint64(fp)+fibMix) | 1
	fresh := false
	for i := 0; i < b.k; i++ {
		if b.setBit(b.position(h1 + uint64(i)*h2)) {
			fresh = true
		}
	}
	if fresh {
		b.admitted.Add(1)
	}
	return fresh
}

// Len is the number of fingerprints admitted as new — with omissions, a
// lower bound on the distinct fingerprints offered.
func (b *bitstate) Len() int { return int(b.admitted.Load()) }

func (b *bitstate) Bytes() int64 { return int64(len(b.words)) * 8 }
func (b *bitstate) Exact() bool  { return false }

// OmissionProb estimates the probability that probing a never-seen
// fingerprint reports "already visited" at the current fill: (ones/m)^K,
// the chance all K independent positions land on set bits. This is the
// per-state omission risk at the end of the run; earlier probes faced a
// sparser array, so it upper-bounds the average risk over the run.
func (b *bitstate) OmissionProb() float64 {
	fill := float64(b.ones.Load()) / float64(b.nbits)
	return math.Pow(fill, float64(b.k))
}

func (b *bitstate) Stats() Stats {
	return Stats{
		Backend:      Bitstate.String(),
		States:       b.Len(),
		Bytes:        b.Bytes(),
		Exact:        false,
		BitsSet:      b.ones.Load(),
		OmissionProb: b.OmissionProb(),
	}
}
