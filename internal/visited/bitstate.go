package visited

import (
	"math"
	"math/bits"
	"sync/atomic"

	"verc3/internal/statespace"
)

// bitstate is the SPIN-style lossy tier: K derived bit positions per
// fingerprint are set in a fixed-size bit array, and a fingerprint whose K
// bits are all already set is reported as visited. Memory never grows past
// the configured budget; the price is that a never-seen state can collide
// on all K bits and be silently omitted from the search (Exact() == false).
//
// The layout is a split-block Bloom filter: one word index is derived per
// fingerprint and all K bit positions live inside that single 64-bit word,
// chosen pairwise distinct. That buys two things over scattering the K
// bits across the array. First, one cache line per probe instead of K.
// Second — the reason for the layout — expansion ownership is exact under
// concurrency: a single CAS on the word publishes all K bits at once, and
// freshness is defined as winning the CAS that completes the fingerprint's
// bit set. The word transitions from "not all K set" to "all K set"
// exactly once, and exactly one CAS performs that transition, so of any
// number of racing inserts of one fingerprint precisely one is told it was
// first — the duplicate-admission race of the previous any-bit-was-clear
// rule (which let two workers each set a disjoint subset of the K bits and
// both claim the state) cannot occur. Omission semantics are unchanged: a
// never-seen fingerprint is dropped iff all K of its bits were already set
// by other fingerprints.
//
// All operations are lock-free atomics, so one implementation serves both
// the sequential and the parallel driver.
type bitstate struct {
	words    []uint64 // accessed atomically
	nbits    uint64
	k        int
	admitted atomic.Int64
	ones     atomic.Int64
}

func newBitstate(cfg Config) *bitstate {
	mb := cfg.BitstateMB
	if mb <= 0 {
		mb = DefaultBitstateMB
	}
	k := cfg.BitstateHashes
	if k <= 0 {
		k = DefaultBitstateHashes
	}
	return newBitstateBits(uint64(mb)<<23, k) // 1 MiB = 2²³ bits
}

// newBitstateBits sizes the array directly; tests use it to reach fills
// where the omission probability is measurable. nbits is rounded up to a
// whole word; k is capped at 48 so the in-word positions stay meaningfully
// spread (SPIN-scale K is 2–3 anyway).
func newBitstateBits(nbits uint64, k int) *bitstate {
	if k > 48 {
		k = 48
	}
	words := (nbits + 63) / 64
	return &bitstate{words: make([]uint64, words), nbits: words * 64, k: k}
}

// mix is the splitmix64 finalizer, used to derive independent word and bit
// choices from the one 64-bit fingerprint.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// wordIndex maps a derived hash onto [0, len(words)) without requiring a
// power-of-two budget (Lemire's multiply-shift reduction).
func (b *bitstate) wordIndex(h uint64) uint64 {
	hi, _ := bits.Mul64(h, uint64(len(b.words)))
	return hi
}

// blockMask derives the fingerprint's K in-word bits: independent 6-bit
// draws from the hash, bumped to the next free offset on a repeat so the
// K positions are pairwise distinct and the effective K never degrades.
// Independence matters: an arithmetic-progression pattern (start+stride)
// would shrink the space of possible K-sets from C(64,K) to a few
// thousand, making two fingerprints that share a word collide on their
// whole set often enough to measurably omit states at sparse fills.
func (b *bitstate) blockMask(h uint64) uint64 {
	var mask uint64
	seed, draws := h, h
	for i := 0; i < b.k; i++ {
		if i > 0 && i%10 == 0 {
			// 10 draws consume 60 of the 64 bits; derive the next batch
			// from the full-entropy seed, not the 4 exhausted leftover
			// bits, so high-K masks stay diverse.
			draws = mix(seed + uint64(i))
		}
		off := draws & 63
		draws >>= 6
		for mask>>off&1 == 1 {
			off = (off + 1) & 63
		}
		mask |= 1 << off
	}
	return mask
}

// TryInsert sets the fingerprint's K bits and reports whether this call
// completed them — the exact-ownership rule described on bitstate.
func (b *bitstate) TryInsert(fp statespace.Fingerprint) bool {
	h1 := mix(uint64(fp))
	h2 := mix(uint64(fp) + fibMix)
	word := &b.words[b.wordIndex(h1)]
	mask := b.blockMask(h2)
	for {
		old := atomic.LoadUint64(word)
		if old&mask == mask {
			return false // all K bits set: visited (or omitted)
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			b.ones.Add(int64(bits.OnesCount64(mask &^ old)))
			b.admitted.Add(1)
			return true
		}
	}
}

// Len is the number of fingerprints admitted as new — with omissions, a
// lower bound on the distinct fingerprints offered.
func (b *bitstate) Len() int { return int(b.admitted.Load()) }

func (b *bitstate) Bytes() int64 { return int64(len(b.words)) * 8 }
func (b *bitstate) Exact() bool  { return false }

// OmissionProb estimates the probability that probing a never-seen
// fingerprint reports "already visited" at the current fill: (ones/m)^K,
// the chance all K positions land on set bits. The split-block layout
// makes the true risk marginally higher (block fills vary around the
// global fill, and Jensen's inequality puts the mean of fill^K above
// fill-mean^K), but at 64-bit blocks the correction is a few percent of
// the estimate. This is the per-state omission risk at the end of the
// run; earlier probes faced a sparser array, so it upper-bounds the
// average risk over the run.
func (b *bitstate) OmissionProb() float64 {
	fill := float64(b.ones.Load()) / float64(b.nbits)
	return math.Pow(fill, float64(b.k))
}

func (b *bitstate) Stats() Stats {
	return Stats{
		Backend:      Bitstate.String(),
		States:       b.Len(),
		Bytes:        b.Bytes(),
		Exact:        false,
		BitsSet:      b.ones.Load(),
		OmissionProb: b.OmissionProb(),
	}
}
