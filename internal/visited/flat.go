package visited

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"verc3/internal/statespace"
)

const (
	// flatInitialSlots is a fresh table's capacity: 2KiB, far below the
	// 1024-entry map the sequential checker used to pre-allocate per run,
	// which matters when synthesis makes millions of small dispatches.
	flatInitialSlots = 256
	// flatMinStripeSlots keeps the per-stripe tables of the concurrent
	// variant tiny until they actually fill.
	flatMinStripeSlots = 32
	// fibMix is 2⁶⁴/φ, the Fibonacci-hashing multiplier: slot indices come
	// from the top bits of fp*fibMix, decorrelating the probe sequence
	// from the low fingerprint bits that pick the stripe.
	fibMix = 0x9E3779B97F4A7C15
)

// flatTable is the open-addressing core shared by the sequential and the
// lock-striped Flat variants (and the Spill backend's in-RAM tier): a
// power-of-two slice of raw 8-byte fingerprints with Robin Hood probing —
// an insert displaces any resident whose probe distance is shorter than
// its own, equalizing displacement across occupants. Bounded displacement
// variance is what lets the load cap sit at 15/16 (versus the 7/8 a plain
// linear-probing table needs to keep probe tails short), cutting slot
// bytes per state by up to half at loads that previously forced a
// doubling. Growth doubles and rehashes past 15/16 load. The zero
// fingerprint cannot live in a slot (0 marks "empty") and is tracked in a
// sideband bool.
type flatTable struct {
	slots   []uint64
	used    int // occupied slots (excludes the zero-fingerprint sideband)
	hasZero bool
	grows   int
}

// home returns fp's preferred slot index: bits 32..32+b of fp*fibMix for a
// table of 2^b slots (b <= 32 always holds — 2³² slots would be a 32GiB
// stripe), which are well mixed regardless of the fingerprint's low bits.
func home(fp uint64, mask int) int {
	return int((fp * fibMix) >> 32 & uint64(mask))
}

// dist returns how far the occupant of slot i sits from its home slot.
func dist(fp uint64, i, mask int) int {
	return (i - home(fp, mask)) & mask
}

// tryInsert probes for fp, inserting it if absent. minSlots bounds the
// initial allocation (the striped variant starts smaller).
//
// The Robin Hood invariant — along any probe sequence, displacement never
// decreases — doubles as the absence proof: the moment a resident's
// displacement drops below the probe's own distance, fp cannot occur
// further down the sequence, so the probe claims that slot and bubbles
// the shorter-travelled resident onward (equality checks stop there; all
// residents are distinct by construction).
func (t *flatTable) tryInsert(fp uint64, minSlots int) bool {
	if fp == 0 {
		if t.hasZero {
			return false
		}
		t.hasZero = true
		return true
	}
	if t.slots == nil {
		t.slots = make([]uint64, minSlots)
	} else if 16*(t.used+1) > 15*len(t.slots) {
		t.grow()
	}
	mask := len(t.slots) - 1
	i := home(fp, mask)
	cur, curDist := fp, 0
	searching := true // still probing for fp itself (no displacement yet)
	for {
		s := t.slots[i]
		if s == 0 {
			t.slots[i] = cur
			t.used++
			return true
		}
		if searching && s == fp {
			return false
		}
		if d := dist(s, i, mask); d < curDist {
			if searching {
				searching = false
			}
			t.slots[i], cur, curDist = cur, s, d
		}
		i = (i + 1) & mask
		curDist++
	}
}

// reinsert places a fingerprint known to be absent (growth rehash).
func (t *flatTable) reinsert(fp uint64) {
	mask := len(t.slots) - 1
	i := home(fp, mask)
	cur, curDist := fp, 0
	for {
		s := t.slots[i]
		if s == 0 {
			t.slots[i] = cur
			return
		}
		if d := dist(s, i, mask); d < curDist {
			t.slots[i], cur, curDist = cur, s, d
		}
		i = (i + 1) & mask
		curDist++
	}
}

// grow doubles the table and rehashes every occupant.
func (t *flatTable) grow() {
	old := t.slots
	t.slots = make([]uint64, 2*len(old))
	t.grows++
	for _, fp := range old {
		if fp != 0 {
			t.reinsert(fp)
		}
	}
}

// drain appends every stored fingerprint (sideband zero included) to dst
// and resets the table to empty without releasing its slot array. The
// Spill backend uses it to move the in-RAM tier onto disk.
func (t *flatTable) drain(dst []uint64) []uint64 {
	if t.hasZero {
		dst = append(dst, 0)
		t.hasZero = false
	}
	for i, fp := range t.slots {
		if fp != 0 {
			dst = append(dst, fp)
			t.slots[i] = 0
		}
	}
	t.used = 0
	return dst
}

// each calls yield on every stored fingerprint (sideband zero included)
// without disturbing the table — drain's non-destructive sibling, used by
// the checkpoint writer to snapshot a live visited set. A non-nil error
// from yield stops the walk and is returned.
func (t *flatTable) each(yield func(fp uint64) error) error {
	if t.hasZero {
		if err := yield(0); err != nil {
			return err
		}
	}
	for _, fp := range t.slots {
		if fp != 0 {
			if err := yield(fp); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *flatTable) len() int {
	n := t.used
	if t.hasZero {
		n++
	}
	return n
}

func (t *flatTable) bytes() int64 { return int64(len(t.slots)) * 8 }

// flat is the single-goroutine Flat backend.
type flat struct {
	t flatTable
}

func newFlat() *flat { return &flat{} }

func (f *flat) TryInsert(fp statespace.Fingerprint) bool {
	return f.t.tryInsert(uint64(fp), flatInitialSlots)
}

func (f *flat) Len() int     { return f.t.len() }
func (f *flat) Bytes() int64 { return f.t.bytes() }
func (f *flat) Exact() bool  { return true }

func (f *flat) Stats() Stats {
	return Stats{Backend: Flat.String(), States: f.Len(), Bytes: f.Bytes(), Exact: true, Grows: f.t.grows}
}

// DumpFingerprints implements Dumper: the single-goroutine table is walked
// in place.
func (f *flat) DumpFingerprints(yield func(fp statespace.Fingerprint) error) error {
	return f.t.each(func(fp uint64) error { return yield(statespace.Fingerprint(fp)) })
}

// stripe is one lock-striped sub-table of the concurrent Flat variant,
// padded to exactly one cache line (mutex 8 + flatTable 48 + pad 8 = 64)
// so neighbouring stripes' mutexes and table bookkeeping never share a
// line. One line per stripe (the previous layout burned two) is a real
// chunk of the small-run footprint: 64 stripes of fixed overhead sit next
// to tables of a few hundred entries each. TestStripePadding pins the
// arithmetic.
type stripe struct {
	mu sync.Mutex
	t  flatTable
	_  [64 - 8 - unsafe.Sizeof(flatTable{})]byte
}

// stripedFlat is the concurrent Flat variant for the parallel driver: the
// fingerprint's low bits select an independent flatTable guarded by its own
// mutex, so probing and growth never cross a stripe boundary and the
// critical section is a handful of word comparisons.
type stripedFlat struct {
	stripes []stripe
	mask    uint64
	count   atomic.Int64
}

func newStripedFlat(stripeBits int) *stripedFlat {
	n := 1 << uint(clampBits(stripeBits, DefaultFlatStripeBits))
	return &stripedFlat{stripes: make([]stripe, n), mask: uint64(n - 1)}
}

func (s *stripedFlat) TryInsert(fp statespace.Fingerprint) bool {
	st := &s.stripes[uint64(fp)&s.mask]
	st.mu.Lock()
	fresh := st.t.tryInsert(uint64(fp), flatMinStripeSlots)
	st.mu.Unlock()
	if fresh {
		s.count.Add(1)
	}
	return fresh
}

func (s *stripedFlat) Len() int { return int(s.count.Load()) }

// Bytes locks each stripe in turn; call it between levels or after the
// run, not on the insert path.
func (s *stripedFlat) Bytes() int64 {
	total := int64(len(s.stripes)) * int64(unsafe.Sizeof(stripe{})) // padded stripe structs
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		total += st.t.bytes()
		st.mu.Unlock()
	}
	return total
}

func (s *stripedFlat) Exact() bool { return true }

// Stats snapshots every stripe in a single locked pass, so the reported
// States/Bytes/Grows triple is stripe-consistent: a stripe that grows
// between two separate passes can no longer surface as a torn profile
// (bytes from before the growth, grow count from after).
func (s *stripedFlat) Stats() Stats {
	st := Stats{
		Backend: Flat.String(),
		Exact:   true,
		Bytes:   int64(len(s.stripes)) * int64(unsafe.Sizeof(stripe{})),
	}
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.Lock()
		st.States += sp.t.len()
		st.Bytes += sp.t.bytes()
		st.Grows += sp.t.grows
		sp.mu.Unlock()
	}
	return st
}

// DumpFingerprints implements Dumper: each stripe is walked under its own
// lock. The snapshot is stripe-consistent, which suffices at the quiescent
// points (level boundaries) where checkpoints are taken.
func (s *stripedFlat) DumpFingerprints(yield func(fp statespace.Fingerprint) error) error {
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.Lock()
		err := sp.t.each(func(fp uint64) error { return yield(statespace.Fingerprint(fp)) })
		sp.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stripes reports the stripe count (a power of two).
func (s *stripedFlat) Stripes() int { return len(s.stripes) }
