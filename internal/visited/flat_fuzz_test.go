package visited

import (
	"encoding/binary"
	"testing"

	"verc3/internal/statespace"
)

// FuzzFlatVsMapOracle is the differential fuzz test for the Flat backends:
// an arbitrary byte string is read as a stream of fingerprints (8-byte
// little-endian words, final partial word zero-padded — so the zero-
// fingerprint sideband is exercised too) and fed to the sequential Flat
// table, the striped concurrent variant, and a reference Go map. Every
// TryInsert verdict must agree with the oracle: insert/dedupe semantics of
// the open-addressing code are identical to a map by construction, not by
// accident of the test corpus.
func FuzzFlatVsMapOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(binary.LittleEndian.AppendUint64(nil, 0xDEADBEEFCAFE))
	seed := make([]byte, 0, 128)
	for i := 0; i < 8; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, mix(uint64(i)))
		seed = binary.LittleEndian.AppendUint64(seed, mix(uint64(i))) // immediate duplicate
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		flat := New(Config{Kind: Flat})
		striped := NewConcurrent(Config{Kind: Flat, ShardBits: 1})
		oracle := make(map[statespace.Fingerprint]bool)
		for len(data) > 0 {
			var word [8]byte
			n := copy(word[:], data)
			data = data[n:]
			fp := statespace.Fingerprint(binary.LittleEndian.Uint64(word[:]))
			want := !oracle[fp]
			oracle[fp] = true
			if got := flat.TryInsert(fp); got != want {
				t.Fatalf("flat: fp %x: TryInsert = %v, oracle %v", fp, got, want)
			}
			if got := striped.TryInsert(fp); got != want {
				t.Fatalf("striped: fp %x: TryInsert = %v, oracle %v", fp, got, want)
			}
		}
		if flat.Len() != len(oracle) || striped.Len() != len(oracle) {
			t.Fatalf("Len: flat %d, striped %d, oracle %d", flat.Len(), striped.Len(), len(oracle))
		}
	})
}
