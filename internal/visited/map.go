package visited

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"verc3/internal/statespace"
)

// mapStore is the single-goroutine Map backend: one Go map, no locks.
type mapStore struct {
	m map[statespace.Fingerprint]struct{}
}

func newMapStore() *mapStore {
	return &mapStore{m: make(map[statespace.Fingerprint]struct{})}
}

func (s *mapStore) TryInsert(fp statespace.Fingerprint) bool {
	if _, dup := s.m[fp]; dup {
		return false
	}
	s.m[fp] = struct{}{}
	return true
}

func (s *mapStore) Len() int     { return len(s.m) }
func (s *mapStore) Bytes() int64 { return mapBytes(len(s.m)) }
func (s *mapStore) Exact() bool  { return true }

func (s *mapStore) Stats() Stats {
	return Stats{Backend: Map.String(), States: s.Len(), Bytes: s.Bytes(), Exact: true}
}

// DumpFingerprints implements Dumper. Iteration order is the map's
// (arbitrary); checkpoint readers re-insert, so order never matters.
func (s *mapStore) DumpFingerprints(yield func(fp statespace.Fingerprint) error) error {
	for fp := range s.m {
		if err := yield(fp); err != nil {
			return err
		}
	}
	return nil
}

// mapBytes models the footprint of a Go map[Fingerprint]struct{} with n
// entries. Go offers no way to measure a map's memory, so this is the
// documented geometry of the runtime's swiss-table maps (Go 1.24+): groups
// of 8 slots, 8-byte key + 1 control byte per slot, growth past 7/8 load,
// power-of-two slot counts, plus a fixed header. It deliberately ignores
// the transient doubling copy, so it is a floor on what the map retains —
// conservative in Flat-versus-Map comparisons.
func mapBytes(n int) int64 {
	const (
		header       = 48
		bytesPerSlot = 9
	)
	if n == 0 {
		return header
	}
	slots := 8
	for n > slots*7/8 {
		slots *= 2
	}
	return header + int64(slots)*bytesPerSlot
}

// shard is one lock-striped slice of the concurrent Map backend. It is
// padded to a cache line so neighbouring shard mutexes do not false-share
// under contention.
type shard struct {
	mu sync.Mutex
	m  map[statespace.Fingerprint]struct{}
	_  [64 - 16]byte
}

// shardedMap is the concurrent Map backend: the checker's original sharded
// lock-striped visited set. TryInsert is the exploration hot path and takes
// only the single shard lock selected by the fingerprint's low bits.
type shardedMap struct {
	shards []shard
	mask   uint64
	count  atomic.Int64
}

func newShardedMap(shardBits int) *shardedMap {
	n := 1 << uint(clampBits(shardBits, DefaultShardBits))
	s := &shardedMap{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[statespace.Fingerprint]struct{})
	}
	return s
}

func (s *shardedMap) shard(fp statespace.Fingerprint) *shard {
	return &s.shards[uint64(fp)&s.mask]
}

func (s *shardedMap) TryInsert(fp statespace.Fingerprint) bool {
	sh := s.shard(fp)
	sh.mu.Lock()
	if _, dup := sh.m[fp]; dup {
		sh.mu.Unlock()
		return false
	}
	sh.m[fp] = struct{}{}
	sh.mu.Unlock()
	s.count.Add(1)
	return true
}

// Len reads a single atomic counter and is cheap enough for per-state cap
// checks.
func (s *shardedMap) Len() int { return int(s.count.Load()) }

// Bytes sums the per-shard map model plus the shard array itself. It locks
// each shard in turn; call it between levels or after the run, not on the
// insert path.
func (s *shardedMap) Bytes() int64 {
	total := int64(len(s.shards)) * int64(unsafe.Sizeof(shard{}))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += mapBytes(len(sh.m))
		sh.mu.Unlock()
	}
	return total
}

func (s *shardedMap) Exact() bool { return true }

func (s *shardedMap) Stats() Stats {
	return Stats{Backend: Map.String(), States: s.Len(), Bytes: s.Bytes(), Exact: true}
}

// DumpFingerprints implements Dumper: each shard is walked under its own
// lock, shard-consistent like the striped Flat variant.
func (s *shardedMap) DumpFingerprints(yield func(fp statespace.Fingerprint) error) error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		var err error
		for fp := range sh.m {
			if err = yield(fp); err != nil {
				break
			}
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Shards reports the shard count (a power of two).
func (s *shardedMap) Shards() int { return len(s.shards) }
