package visited

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"verc3/internal/faultfs"
	"verc3/internal/statespace"
)

const (
	// DefaultSpillMem is the Spill backend's in-RAM tier budget when
	// Config.SpillMem <= 0: 64 MiB holds ~8.4M fingerprints before the
	// first run is written.
	DefaultSpillMem = 64 << 20
	// spillStripes is the fixed stripe count of the in-RAM tier. Spill's
	// hot path is bounded by disk probes, not lock contention, so a small
	// fixed count keeps the budget arithmetic simple (Config.ShardBits is
	// ignored).
	spillStripes = 8
	// spillFenceStride is the fingerprint count per indexed run block: one
	// in-RAM fence per 2KiB of run file, so a membership probe costs one
	// fence binary search plus a single 2KiB ReadAt.
	spillFenceStride = 256
	// spillMaxRuns caps the live run count between level boundaries: a
	// budget-triggered flush that would exceed it merges first, bounding
	// the per-probe ReadAt count even for drivers that never report level
	// boundaries (DFS).
	spillMaxRuns = 8
)

// spillBlockPool recycles the per-probe run-block read buffers.
var spillBlockPool = sync.Pool{
	New: func() any {
		b := make([]byte, spillFenceStride*8)
		return &b
	},
}

// spillRun is one immutable sorted run file: 8-byte little-endian
// fingerprints in ascending order. fences holds the first fingerprint of
// every spillFenceStride-sized block, so contains() needs exactly one
// disk read. Once written a run is only ever read (ReadAt is safe for
// concurrent probes) until a merge retires it.
type spillRun struct {
	f      faultfs.File
	name   string
	n      int64
	fences []uint64
}

// contains reports whether fp is in the run. buf must hold at least one
// block (spillFenceStride*8 bytes).
func (r *spillRun) contains(fp uint64, buf []byte) (bool, error) {
	// First block whose fence exceeds fp starts past any possible home.
	b := sort.Search(len(r.fences), func(i int) bool { return r.fences[i] > fp }) - 1
	if b < 0 {
		return false, nil
	}
	lo := int64(b) * spillFenceStride
	n := r.n - lo
	if n > spillFenceStride {
		n = spillFenceStride
	}
	block := buf[:n*8]
	if _, err := r.f.ReadAt(block, lo*8); err != nil {
		return false, fmt.Errorf("visited: spill run %s: %w", r.name, err)
	}
	i := sort.Search(int(n), func(i int) bool {
		return binary.LittleEndian.Uint64(block[i*8:]) >= fp
	})
	return i < int(n) && binary.LittleEndian.Uint64(block[i*8:]) == fp, nil
}

func (r *spillRun) bytes() int64 { return r.n * 8 }

// runWriter streams an ascending fingerprint sequence into a new run file,
// building the fence index as it goes.
type runWriter struct {
	s      *spill
	f      faultfs.File
	name   string
	buf    []byte
	n      int64
	fences []uint64
}

func (s *spill) newRunWriter() (*runWriter, error) {
	if s.dir == "" {
		var dir string
		err := s.retry(faultfs.OpMkdirTemp, func() error {
			var derr error
			dir, derr = s.fs.MkdirTemp(s.parent, "verc3-spill-*")
			return derr
		})
		if err != nil {
			return nil, fmt.Errorf("visited: spill dir: %w", err)
		}
		s.dir = dir
	}
	name := filepath.Join(s.dir, fmt.Sprintf("run-%06d", s.seq))
	s.seq++
	var f faultfs.File
	err := s.retry(faultfs.OpCreate, func() error {
		var cerr error
		f, cerr = s.fs.Create(name)
		return cerr
	})
	if err != nil {
		return nil, fmt.Errorf("visited: spill run: %w", err)
	}
	return &runWriter{s: s, f: f, name: name, buf: make([]byte, 0, 1<<16)}, nil
}

func (w *runWriter) add(fp uint64) error {
	if w.n%spillFenceStride == 0 {
		w.fences = append(w.fences, fp)
	}
	w.n++
	w.buf = binary.LittleEndian.AppendUint64(w.buf, fp)
	if len(w.buf) == cap(w.buf) {
		if err := faultfs.WriteFull(w.f, w.buf, w.s.retryHook(faultfs.OpWrite)); err != nil {
			return fmt.Errorf("visited: spill run %s: %w", w.name, err)
		}
		w.buf = w.buf[:0]
	}
	return nil
}

func (w *runWriter) finish() (*spillRun, error) {
	if len(w.buf) > 0 {
		if err := faultfs.WriteFull(w.f, w.buf, w.s.retryHook(faultfs.OpWrite)); err != nil {
			w.abort()
			return nil, fmt.Errorf("visited: spill run %s: %w", w.name, err)
		}
	}
	return &spillRun{f: w.f, name: w.name, n: w.n, fences: w.fences}, nil
}

func (w *runWriter) abort() {
	w.f.Close()
	w.s.fs.Remove(w.name)
}

// spill is the SWAP-style two-level exact backend: a Robin Hood flat tier
// in RAM (budgeted by Config.SpillMem) overflows to sorted fingerprint
// runs on disk, merged and deduplicated at BFS level boundaries
// (LevelMarker). TryInsert stays exact — a fingerprint admitted once is
// rejected forever, whether it currently lives in RAM or on disk — so the
// backend serves the memory-bounded-but-exact regime the lossy bitstate
// tier cannot: peak RAM is the fixed tier budget plus the fence index
// (8 bytes per 2KiB spilled) while the state count is bounded only by
// disk.
//
// The "bounded RAM" claim is steady-state: during a flush the drained
// fingerprint slice coexists with the (deliberately retained) tier
// tables, so the transient peak is ~1.75× the budget — size SpillMem
// accordingly.
//
// One implementation serves both store flavours. The insert path holds
// the structural read-lock for the whole RAM-probe + disk-probe window,
// which is what makes the answer exact under concurrency: a flush (which
// moves RAM residents onto disk) takes the write lock, so no racing
// insert can observe a fingerprint in neither tier. Within the read-lock
// the striped RAM tier admits exactly one winner per fingerprint; only
// that winner pays disk probes.
type spill struct {
	mu      sync.RWMutex // insert: RLock; flush/merge/Close: Lock
	stripes []stripe
	flushAt int // per-stripe used threshold that triggers a flush

	parent  string     // configured parent dir ("" = OS temp dir)
	dir     string     // created lazily at the first flush, removed by Close
	fs      faultfs.FS // the I/O seam; faultfs.OS in production
	onRetry func(op string, attempt int, err error)
	seq     int
	runs    []*spillRun

	count atomic.Int64
	errv  atomic.Pointer[error] // first I/O failure, sticky
}

// retryHook adapts the configured OnRetry callback to faultfs.Retry's
// signature for one named operation.
func (s *spill) retryHook(op faultfs.Op) func(attempt int, err error) {
	if s.onRetry == nil {
		return nil
	}
	return func(attempt int, err error) { s.onRetry(string(op), attempt, err) }
}

// retry runs op through faultfs.Retry with the backend's retry budget and
// telemetry hook: transient faults (EINTR, injected glitches) are absorbed
// with capped backoff, hard faults surface to the caller and go sticky via
// fail().
func (s *spill) retry(op faultfs.Op, f func() error) error {
	return faultfs.Retry(faultfs.DefaultRetries, s.retryHook(op), f)
}

func newSpill(cfg Config) *spill {
	budget := cfg.SpillMem
	if budget <= 0 {
		budget = DefaultSpillMem
	}
	// Largest power-of-two slot count per stripe that keeps the whole tier
	// within budget; the flush threshold sits at 3/4 so the table reaches
	// its final size (growth stops below 15/16 of half) but never doubles
	// past it.
	slots := budget / 8 / spillStripes
	slotsPow := flatMinStripeSlots
	for int64(slotsPow)*2 <= slots {
		slotsPow *= 2
	}
	return &spill{
		stripes: make([]stripe, spillStripes),
		flushAt: slotsPow * 3 / 4,
		parent:  cfg.SpillDir,
		fs:      faultfs.Or(cfg.FS),
		onRetry: cfg.OnRetry,
	}
}

func (s *spill) fail(err error) {
	if err != nil {
		s.errv.CompareAndSwap(nil, &err)
	}
}

// Err returns the first I/O failure, if any. After a failure the backend
// stops spilling and keeps everything in RAM — still exact, no longer
// budget-bounded — and the exploration drivers surface the error.
func (s *spill) Err() error {
	if p := s.errv.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *spill) TryInsert(fp statespace.Fingerprint) bool {
	s.mu.RLock()
	st := &s.stripes[uint64(fp)&(spillStripes-1)]
	st.mu.Lock()
	fresh := st.t.tryInsert(uint64(fp), flatMinStripeSlots)
	needFlush := fresh && st.t.used >= s.flushAt
	st.mu.Unlock()
	if fresh && len(s.runs) > 0 && s.runsContain(uint64(fp)) {
		// Already spilled: the speculative RAM copy stays (it answers the
		// next probe even faster) and the eventual merge deduplicates it.
		fresh = false
	}
	s.mu.RUnlock()
	if fresh {
		s.count.Add(1)
	}
	if needFlush {
		s.flush()
	}
	return fresh
}

// runsContain probes every live run. Caller holds the read lock.
func (s *spill) runsContain(fp uint64) bool {
	bufp := spillBlockPool.Get().(*[]byte)
	defer spillBlockPool.Put(bufp)
	for _, r := range s.runs {
		var found bool
		err := s.retry(faultfs.OpReadAt, func() error {
			var perr error
			found, perr = r.contains(fp, *bufp)
			return perr
		})
		if err != nil {
			// Treat as absent and record the failure: the run's answer is
			// gone, so the whole exploration is invalidated via Err().
			s.fail(err)
			return false
		}
		if found {
			return true
		}
	}
	return false
}

// flush drains the RAM tier into a new sorted run.
func (s *spill) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Err() != nil {
		return // disk is gone; keep accumulating in RAM, still exact
	}
	over := false
	total := 0
	for i := range s.stripes {
		total += s.stripes[i].t.len()
		over = over || s.stripes[i].t.used >= s.flushAt
	}
	if !over {
		return // a racing flush already drained the tier
	}
	fps := make([]uint64, 0, total)
	for i := range s.stripes {
		fps = s.stripes[i].t.drain(fps)
	}
	slices.Sort(fps)
	run, err := s.writeRun(fps)
	if err != nil {
		// The drained fingerprints must not be lost: put them back (the
		// tables are still allocated) and stop spilling.
		for _, fp := range fps {
			s.stripes[uint64(fp)&(spillStripes-1)].t.tryInsert(fp, flatMinStripeSlots)
		}
		s.fail(err)
		return
	}
	s.runs = append(s.runs, run)
	if len(s.runs) >= spillMaxRuns {
		s.mergeLocked()
	}
}

// writeRun streams an already-sorted fingerprint slice to disk. Caller
// holds the write lock.
func (s *spill) writeRun(fps []uint64) (*spillRun, error) {
	w, err := s.newRunWriter()
	if err != nil {
		return nil, err
	}
	for _, fp := range fps {
		if err := w.add(fp); err != nil {
			w.abort()
			return nil, err
		}
	}
	return w.finish()
}

// mergeLocked replaces all live runs with one merged, deduplicated run.
// Caller holds the write lock.
func (s *spill) mergeLocked() {
	if len(s.runs) < 2 || s.Err() != nil {
		return
	}
	w, err := s.newRunWriter()
	if err != nil {
		s.fail(err)
		return
	}
	heads := make([]runCursor, len(s.runs))
	for i, r := range s.runs {
		heads[i] = runCursor{r: r}
		if err := s.retry(faultfs.OpReadAt, heads[i].advance); err != nil {
			w.abort()
			s.fail(err)
			return
		}
	}
	var last uint64
	havePrev := false
	for {
		// len(runs) <= spillMaxRuns, so a linear min scan beats heap
		// bookkeeping.
		min := -1
		for i := range heads {
			if heads[i].ok && (min < 0 || heads[i].cur < heads[min].cur) {
				min = i
			}
		}
		if min < 0 {
			break
		}
		fp := heads[min].cur
		if err := s.retry(faultfs.OpReadAt, heads[min].advance); err != nil {
			w.abort()
			s.fail(err)
			return
		}
		if havePrev && fp == last {
			continue // duplicate across runs (re-admitted RAM copy)
		}
		last, havePrev = fp, true
		if err := w.add(fp); err != nil {
			w.abort()
			s.fail(err)
			return
		}
	}
	merged, err := w.finish()
	if err != nil {
		s.fail(err)
		return
	}
	for _, r := range s.runs {
		r.f.Close()
		s.fs.Remove(r.name)
	}
	s.runs = []*spillRun{merged}
}

// runCursor streams one run during a merge.
type runCursor struct {
	r   *spillRun
	off int64
	buf []byte
	pos int
	cur uint64
	ok  bool
}

func (c *runCursor) advance() error {
	if c.pos >= len(c.buf) {
		if c.off >= c.r.n*8 {
			c.ok = false
			return nil
		}
		if c.buf == nil {
			c.buf = make([]byte, 1<<16)
		}
		n := c.r.n*8 - c.off
		if n > int64(len(c.buf)) {
			n = int64(len(c.buf))
		}
		if _, err := c.r.f.ReadAt(c.buf[:n], c.off); err != nil {
			c.ok = false
			return fmt.Errorf("visited: spill merge %s: %w", c.r.name, err)
		}
		c.buf = c.buf[:n]
		c.off += n
		c.pos = 0
	}
	c.cur = binary.LittleEndian.Uint64(c.buf[c.pos:])
	c.pos += 8
	c.ok = true
	return nil
}

// DumpFingerprints implements Dumper: the RAM tier's stripes are walked
// under their locks, then every disk run is streamed front to back. The
// structural read lock is held throughout so no flush can move residents
// between tiers mid-dump. A fingerprint that was spilled and speculatively
// re-admitted to RAM (see TryInsert) is yielded from both tiers; consumers
// re-insert through TryInsert, which deduplicates, so the double report is
// harmless.
func (s *spill) DumpFingerprints(yield func(fp statespace.Fingerprint) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.Lock()
		err := sp.t.each(func(fp uint64) error { return yield(statespace.Fingerprint(fp)) })
		sp.mu.Unlock()
		if err != nil {
			return err
		}
	}
	for _, r := range s.runs {
		c := runCursor{r: r}
		for {
			if err := s.retry(faultfs.OpReadAt, c.advance); err != nil {
				s.fail(err)
				return err
			}
			if !c.ok {
				break
			}
			if err := yield(statespace.Fingerprint(c.cur)); err != nil {
				return err
			}
		}
	}
	return nil
}

// EndLevel implements LevelMarker: at a BFS level boundary all live runs
// are merged into one, so the steady-state probe cost is a single ReadAt.
func (s *spill) EndLevel() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked()
	return s.Err()
}

// Close removes every run file and the backend's temp directory. It
// returns the first I/O failure of the run's lifetime, so drivers that
// never hit a level boundary (DFS) still surface spill errors.
func (s *spill) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		r.f.Close()
		s.fs.Remove(r.name)
	}
	s.runs = nil
	if s.dir != "" {
		s.fs.RemoveAll(s.dir)
		s.dir = ""
	}
	return s.Err()
}

func (s *spill) Len() int { return int(s.count.Load()) }

// Bytes is the in-RAM footprint: the striped tier plus the fence index.
// Disk bytes are reported separately (Stats.SpilledBytes) — bounding the
// former is the whole point of the backend. One snapshot pass (Stats)
// serves both accessors so the two self-reports cannot drift.
func (s *spill) Bytes() int64 { return s.Stats().Bytes }

func (s *spill) Exact() bool { return true }

func (s *spill) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Backend: Spill.String(),
		States:  s.Len(),
		Exact:   true,
		Bytes:   int64(len(s.stripes)) * int64(unsafe.Sizeof(stripe{})),
	}
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.Lock()
		st.Bytes += sp.t.bytes()
		st.Grows += sp.t.grows
		sp.mu.Unlock()
	}
	for _, r := range s.runs {
		st.Bytes += int64(len(r.fences)) * 8
		st.SpilledBytes += r.bytes()
	}
	st.SpillRuns = len(s.runs)
	return st
}
