package visited

import (
	"errors"
	"sync/atomic"
	"syscall"
	"testing"

	"verc3/internal/faultfs"
)

// TestSpillFaultTable drives the spill backend through the injected-fault
// matrix: hard faults (ENOSPC, permission-style create failures) must go
// sticky via Err() while the store falls back to RAM and stays exact;
// torn writes must be transparently completed; transient glitches must be
// retried — observed through the OnRetry hook — and only exhaust into a
// sticky error when they outlast the retry budget.
func TestSpillFaultTable(t *testing.T) {
	const n = 30000
	errPerm := errors.New("permission denied")
	cases := []struct {
		name    string
		fault   *faultfs.Fault
		wantErr error // sentinel Err() must wrap; nil = the run must stay clean
		retries bool  // OnRetry must have observed at least one retried failure
	}{
		{"enospc-on-write", &faultfs.Fault{Err: faultfs.ErrNoSpace, Only: faultfs.OpWrite}, syscall.ENOSPC, false},
		{"hard-create", &faultfs.Fault{Err: errPerm, Only: faultfs.OpCreate}, errPerm, false},
		{"short-writes-completed", &faultfs.Fault{ShortWrite: true, Only: faultfs.OpWrite}, nil, false},
		{"transient-create-clears", &faultfs.Fault{Transient: true, Only: faultfs.OpCreate, Repeat: 2}, nil, true},
		{"transient-create-exhausted", &faultfs.Fault{Transient: true, Only: faultfs.OpCreate, Repeat: 100}, faultfs.ErrInjected, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := faultfs.NewInjector(nil)
			inj.Plan(tc.fault)
			var retried atomic.Int64
			s := newSpill(Config{
				Kind: Spill, SpillMem: 8 << 10, SpillDir: t.TempDir(), FS: inj,
				OnRetry: func(op string, attempt int, err error) {
					retried.Add(1)
					if op == "" || err == nil || attempt < 1 {
						t.Errorf("malformed retry observation: op=%q attempt=%d err=%v", op, attempt, err)
					}
				},
			})
			defer s.Close()
			for i := 0; i < n; i++ {
				if !s.TryInsert(fpOf(i)) {
					t.Fatalf("first TryInsert(%d) = false", i)
				}
			}
			err := s.Err()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Err = %v, want clean run", err)
				}
			} else if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Err = %v, want %v", err, tc.wantErr)
			}
			if tc.retries && retried.Load() == 0 {
				t.Error("no OnRetry observations for a transient fault")
			}
			// Whatever the disk did, membership must stay exact: every
			// fingerprint admitted exactly once (hard faults park the
			// drained tier back in RAM rather than losing it).
			for i := 0; i < n; i++ {
				if s.TryInsert(fpOf(i)) {
					t.Fatalf("duplicate TryInsert(%d) = true after fault", i)
				}
			}
			if s.Len() != n {
				t.Errorf("Len = %d, want %d", s.Len(), n)
			}
			// Sticky: clearing the fault plan must not clear the error —
			// the store has already stopped trusting the disk.
			inj.Plan(nil)
			for i := n; i < n+100; i++ {
				s.TryInsert(fpOf(i))
			}
			if tc.wantErr != nil && !errors.Is(s.Err(), tc.wantErr) {
				t.Errorf("Err = %v after disarm, want sticky %v", s.Err(), tc.wantErr)
			}
		})
	}
}

// TestSpillReadFaultInvalidatesRun: a read error while probing a run file
// means the store can no longer answer membership, so the failure must
// surface through Err() (and from there abort the exploration) rather
// than being silently swallowed as "absent".
func TestSpillReadFaultInvalidatesRun(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	s := newSpill(Config{Kind: Spill, SpillMem: 8 << 10, SpillDir: t.TempDir(), FS: inj})
	defer s.Close()
	const n = 30000
	for i := 0; i < n; i++ {
		s.TryInsert(fpOf(i))
	}
	if s.Stats().SpillRuns == 0 {
		t.Fatal("no spilled runs to break")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("clean fill failed: %v", err)
	}
	bad := errors.New("bad sector")
	inj.Plan(&faultfs.Fault{Err: bad, Only: faultfs.OpReadAt})
	// Probe fingerprints that by now live only on disk: the run probe hits
	// the injected read error.
	for i := 0; i < n; i++ {
		s.TryInsert(fpOf(i))
		if s.Err() != nil {
			break
		}
	}
	if !errors.Is(s.Err(), bad) {
		t.Fatalf("Err = %v, want the injected read error", s.Err())
	}
}
