package visited

import (
	"encoding/binary"
	"testing"

	"verc3/internal/statespace"
)

// FuzzSpillVsMapOracle is the differential fuzz test for the Spill
// backend, mirroring FuzzFlatVsMapOracle: an arbitrary byte string is read
// as a stream of fingerprints (8-byte little-endian words, final partial
// word zero-padded, so the zero-fingerprint sideband crosses tiers too)
// and fed to a spill store whose RAM budget is at the floor — every
// corpus beyond a few hundred distinct fingerprints exercises flushes,
// disk probes and merges. Every TryInsert verdict must agree with a
// reference Go map, and a level-boundary merge is forced periodically so
// dedup-across-runs is covered, not just appended runs.
func FuzzSpillVsMapOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(binary.LittleEndian.AppendUint64(nil, 0xDEADBEEFCAFE))
	seed := make([]byte, 0, 4096)
	for i := 0; i < 256; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, mix(uint64(i%193)))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		s := newSpill(Config{Kind: Spill, SpillMem: 1, SpillDir: t.TempDir()})
		defer closeIfCloser(t, s)
		oracle := make(map[statespace.Fingerprint]bool)
		step := 0
		for len(data) > 0 {
			var word [8]byte
			n := copy(word[:], data)
			data = data[n:]
			fp := statespace.Fingerprint(binary.LittleEndian.Uint64(word[:]))
			want := !oracle[fp]
			oracle[fp] = true
			if got := s.TryInsert(fp); got != want {
				t.Fatalf("fp %x: TryInsert = %v, oracle %v", fp, got, want)
			}
			if step++; step%97 == 0 {
				if err := s.EndLevel(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if s.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle has %d", s.Len(), len(oracle))
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
