package visited

import (
	"os"
	"sync"
	"testing"

	"verc3/internal/statespace"
)

// tinySpill builds a spill store with an 8KiB RAM budget rooted in a test
// temp dir — small enough that a few thousand inserts cross the disk tier.
func tinySpill(t *testing.T) *spill {
	t.Helper()
	return newSpill(Config{Kind: Spill, SpillMem: 8 << 10, SpillDir: t.TempDir()})
}

// TestSpillSpillsAndStaysExact drives the store far past its RAM budget
// and checks the headline contract: every fingerprint is admitted exactly
// once whether it currently lives in RAM or in a run file, Len stays
// exact, and the self-report shows real spilled bytes.
func TestSpillSpillsAndStaysExact(t *testing.T) {
	s := tinySpill(t)
	const n = 50000
	for i := 0; i < n; i++ {
		if !s.TryInsert(fpOf(i)) {
			t.Fatalf("first TryInsert(%d) = false", i)
		}
	}
	st := s.Stats()
	if st.SpilledBytes == 0 || st.SpillRuns == 0 {
		t.Fatalf("no spilling at 50k inserts into an 8KiB budget: %+v", st)
	}
	// Every earlier fingerprint — most of them disk-resident by now — must
	// still be rejected as a duplicate.
	for i := 0; i < n; i++ {
		if s.TryInsert(fpOf(i)) {
			t.Fatalf("duplicate TryInsert(%d) = true after spilling", i)
		}
	}
	if s.Len() != n {
		t.Errorf("Len = %d, want %d", s.Len(), n)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("spill error: %v", err)
	}
	// The in-RAM footprint must stay near the budget: tables capped at the
	// budget plus the stripe structs and the fence index (8 bytes per
	// 2KiB spilled).
	if b := s.Bytes(); b > 32<<10 {
		t.Errorf("in-RAM Bytes = %d after 50k inserts, want bounded near the 8KiB budget", b)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestSpillEndLevelMergesToOneRun forces several flushes, then checks the
// level-boundary merge collapses all runs into one deduplicated file with
// the same membership.
func TestSpillEndLevelMergesToOneRun(t *testing.T) {
	s := tinySpill(t)
	const n = 20000
	for i := 0; i < n; i++ {
		s.TryInsert(fpOf(i))
	}
	before := s.Stats()
	if before.SpillRuns < 2 {
		t.Fatalf("want ≥2 runs before the merge, got %d", before.SpillRuns)
	}
	if err := s.EndLevel(); err != nil {
		t.Fatalf("EndLevel: %v", err)
	}
	after := s.Stats()
	if after.SpillRuns != 1 {
		t.Fatalf("runs after merge = %d, want 1", after.SpillRuns)
	}
	if after.SpilledBytes > before.SpilledBytes {
		t.Errorf("merge grew the spill: %d -> %d bytes", before.SpilledBytes, after.SpilledBytes)
	}
	for i := 0; i < n; i++ {
		if s.TryInsert(fpOf(i)) {
			t.Fatalf("duplicate TryInsert(%d) = true after merge", i)
		}
	}
	if s.Len() != n {
		t.Errorf("Len = %d, want %d", s.Len(), n)
	}
	closeIfCloser(t, s)
}

// TestSpillZeroFingerprintAcrossTiers pins the sideband value's journey
// through a flush: admitted once in RAM, found on disk afterwards.
func TestSpillZeroFingerprintAcrossTiers(t *testing.T) {
	s := tinySpill(t)
	if !s.TryInsert(0) {
		t.Fatal("first TryInsert(0) = false")
	}
	for i := 0; i < 20000; i++ { // push 0 out to disk
		s.TryInsert(fpOf(i))
	}
	if s.Stats().SpillRuns == 0 {
		t.Fatal("zero fingerprint never spilled; harness broken")
	}
	if s.TryInsert(0) {
		t.Error("duplicate TryInsert(0) = true after spilling")
	}
	if s.Len() != 20001 {
		t.Errorf("Len = %d, want 20001", s.Len())
	}
	closeIfCloser(t, s)
}

// TestSpillCloseRemovesFiles checks Close deletes the run files and the
// per-run directory it created under the configured parent.
func TestSpillCloseRemovesFiles(t *testing.T) {
	parent := t.TempDir()
	s := newSpill(Config{Kind: Spill, SpillMem: 8 << 10, SpillDir: parent})
	for i := 0; i < 20000; i++ {
		s.TryInsert(fpOf(i))
	}
	if s.Stats().SpillRuns == 0 {
		t.Fatal("nothing spilled; harness broken")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("Close left %d entries under %s", len(entries), parent)
	}
}

// TestSpillConcurrentWithLevelBoundaries races inserters against periodic
// EndLevel merges — the parallel driver's actual access pattern is insert
// storms separated by quiescent merges, but the store must also tolerate
// a merge racing an insert (the structural RWMutex serializes them).
func TestSpillConcurrentWithLevelBoundaries(t *testing.T) {
	const (
		workers = 8
		keys    = 30000
	)
	s := newSpill(Config{Kind: Spill, SpillMem: 8 << 10, SpillDir: t.TempDir()})
	var wg sync.WaitGroup
	wins := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if s.TryInsert(fpOf((i*(w+1) + w) % keys)) {
					wins[w]++
				}
				if w == 0 && i%5000 == 4999 {
					if err := s.EndLevel(); err != nil {
						t.Errorf("EndLevel: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range wins {
		total += n
	}
	if total != keys {
		t.Errorf("wins = %d, want %d (exactly one claim per fingerprint)", total, keys)
	}
	if s.Len() != keys {
		t.Errorf("Len = %d, want %d", s.Len(), keys)
	}
	closeIfCloser(t, s)
}

// TestSpillMatchesMapOracle is the deterministic differential test behind
// FuzzSpillVsMapOracle: a duplicate-heavy stream through a budget small
// enough to spill must report exactly what a reference map reports.
func TestSpillMatchesMapOracle(t *testing.T) {
	s := tinySpill(t)
	oracle := make(map[statespace.Fingerprint]bool)
	for i := 0; i < 30000; i++ {
		fp := fpOf(i % 2500 * (i%3 + 1)) // revisits with gaps
		want := !oracle[fp]
		oracle[fp] = true
		if got := s.TryInsert(fp); got != want {
			t.Fatalf("step %d fp %x: TryInsert = %v, oracle says %v", i, fp, got, want)
		}
		if i%4096 == 4095 {
			if err := s.EndLevel(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle has %d", s.Len(), len(oracle))
	}
	closeIfCloser(t, s)
}
