// Package visited provides the pluggable visited-set storage layer of the
// model checker: every exploration driver deduplicates states through a
// Store keyed by 64-bit statespace.Fingerprints, and the backend behind the
// Store decides the memory/exactness trade of the whole run.
//
// Four backends are provided:
//
//   - Map: Go maps of fingerprints, lock-striped into shards for concurrent
//     insertion (the checker's original visited set). Exact. The runtime's
//     map machinery costs roughly 2× the 8-byte fingerprint per state.
//   - Flat: an open-addressing table of raw 8-byte fingerprints with Robin
//     Hood probing and power-of-two growth — Murphi-style hash compaction
//     without the compaction, since the full fingerprint is kept. Robin
//     Hood displacement keeps probe tails short enough to run the table at
//     15/16 load before growing. Exact, and the default backend: same
//     dedupe semantics as Map at a fraction of the footprint and
//     allocation count.
//   - Spill: a SWAP-style two-level store — the Robin Hood flat tier in
//     RAM, budgeted by Config.SpillMem, overflowing to sorted fingerprint
//     runs on disk that are merged and deduplicated at BFS level
//     boundaries (LevelMarker). Exact, with peak RAM bounded by the tier
//     budget plus a small fence index: the memory-bounded-but-exact
//     regime that bitstate cannot serve.
//   - Bitstate: SPIN-style bitstate hashing. K derived bit positions per
//     fingerprint — all within one 64-bit word, so a single CAS publishes
//     them — are set in a bit array of fixed size (BitstateMB); a state
//     whose bits are all already set is treated as visited. The memory
//     budget never grows, but distinct states can collide on all K bits
//     and be omitted from the search — the backend is inexact and reports
//     an omission-probability estimate (Stats.OmissionProb).
//
// Exactness here is relative to fingerprints: an exact backend admits
// precisely the distinct fingerprints it is offered, so Map, Flat and
// Spill are interchangeable bit-for-bit (the zoo equivalence tests pin
// this), while Bitstate may reject never-seen fingerprints. The separate,
// much smaller risk that two distinct states collide on their 64-bit
// fingerprint is a property of the keying scheme (see package statespace),
// not the store.
//
// Stores come in two flavours: New builds a single-goroutine store for the
// sequential exploration driver (no locks on the insert path), and
// NewConcurrent builds a goroutine-safe store for the parallel driver
// (lock-striped for Map and Flat, lock-free atomics for Bitstate, a
// read-write structural lock over striped tables for Spill). Every
// backend's TryInsert is an exact expansion-ownership claim under its
// concurrent flavour: exactly one of any number of racing inserts of the
// same fingerprint is told it was first (for Bitstate this is the
// single-CAS completion rule; omission of never-seen fingerprints remains
// its documented lossiness).
package visited

import (
	"fmt"

	"verc3/internal/faultfs"
	"verc3/internal/statespace"
)

// Kind selects the visited-set backend. The zero value is Flat, the
// default across the checker.
type Kind int

const (
	// Flat is the open-addressing fingerprint table (exact, default).
	Flat Kind = iota
	// Map is the Go-map backend (exact; the original implementation).
	Map
	// Bitstate is SPIN-style bitstate hashing (fixed memory, inexact).
	Bitstate
	// Spill is the two-level RAM+disk store (exact, RAM-bounded).
	Spill
)

// String returns the backend name as accepted by ParseKind.
func (k Kind) String() string {
	switch k {
	case Flat:
		return "flat"
	case Map:
		return "map"
	case Bitstate:
		return "bitstate"
	case Spill:
		return "spill"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Exact reports whether the backend admits exactly the distinct
// fingerprints offered to it. Inexact backends (Bitstate) can omit states,
// so exploration results over them are lower bounds.
func (k Kind) Exact() bool { return k != Bitstate }

// ParseKind parses a backend name as used by the cmd/ -visited flags.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "flat":
		return Flat, nil
	case "map":
		return Map, nil
	case "bitstate":
		return Bitstate, nil
	case "spill":
		return Spill, nil
	default:
		return 0, fmt.Errorf("visited: unknown backend %q (have flat, map, bitstate, spill)", s)
	}
}

const (
	// DefaultShardBits is the shard-count exponent of the concurrent Map
	// backend when Config.ShardBits <= 0: 2⁸ = 256 shards keeps the
	// expected queue depth per shard lock near zero even with dozens of
	// exploration workers.
	DefaultShardBits = 8
	// DefaultFlatStripeBits is the stripe-count exponent of the concurrent
	// Flat backend: its critical sections are a handful of probes, so 2⁶ =
	// 64 stripes suffice and keep the small-run footprint low.
	DefaultFlatStripeBits = 6
	// MaxShardBits caps shard/stripe counts at 2¹⁶; beyond that the fixed
	// per-shard overhead dominates memory for no additional concurrency.
	MaxShardBits = 16
	// DefaultBitstateMB is the Bitstate bit-array budget when
	// Config.BitstateMB <= 0.
	DefaultBitstateMB = 64
	// DefaultBitstateHashes is the number of derived bit positions (K)
	// set per fingerprint when Config.BitstateHashes <= 0. SPIN's classic
	// choice is 2–3; 3 keeps the omission probability lower for the same
	// budget until the array passes ~25% fill. All K positions live in one
	// 64-bit word (see bitstate), so K must stay well below 64.
	DefaultBitstateHashes = 3
)

// Config selects and sizes a backend.
type Config struct {
	// Kind is the backend (zero value = Flat).
	Kind Kind
	// ShardBits is log2 of the shard (Map) or stripe (Flat) count of the
	// concurrent variants; <= 0 selects the backend default, values above
	// MaxShardBits are clamped. Ignored by New, by Bitstate, and by Spill
	// (whose stripe count is fixed — see spillStripes).
	ShardBits int
	// BitstateMB is the Bitstate bit-array budget in MiB (<= 0 =
	// DefaultBitstateMB). The array is allocated once and never grows.
	BitstateMB int
	// BitstateHashes is Bitstate's K (<= 0 = DefaultBitstateHashes).
	BitstateHashes int
	// SpillMem is the Spill backend's in-RAM tier budget in bytes (<= 0 =
	// DefaultSpillMem). The tier flushes to a sorted on-disk run when it
	// approaches the budget; a floor of a few KiB applies (the striped
	// tables never shrink below their minimum slot counts).
	SpillMem int64
	// SpillDir is the parent directory for the Spill backend's run files
	// ("" = the OS temp dir). A fresh subdirectory is created lazily at
	// the first flush and removed by Close.
	SpillDir string
	// FS is the filesystem seam the Spill backend's run I/O goes through
	// (nil = the real OS). Tests inject faults here; production code never
	// sets it.
	FS faultfs.FS
	// OnRetry, when non-nil, observes every transient I/O failure the
	// Spill backend retries (telemetry hook; op names the operation).
	OnRetry func(op string, attempt int, err error)
}

// Stats is a backend's self-report, surfaced through statespace.Stats so
// -stats outputs and experiments can compare storage layers.
type Stats struct {
	// Backend is the Kind name.
	Backend string
	// States is Len(): distinct fingerprints admitted (for Bitstate, the
	// number of TryInsert calls that were treated as new).
	States int
	// Bytes is the measured in-RAM storage footprint: exact array sizes
	// for Flat and Bitstate, tier tables plus fence index for Spill, a
	// documented geometry model for Map (Go maps cannot be introspected
	// portably; see mapBytes).
	Bytes int64
	// Exact mirrors Kind.Exact.
	Exact bool
	// Grows counts table growths (Flat, Spill's RAM tier) — each one is a
	// full rehash.
	Grows int
	// BitsSet is the number of one-bits in the Bitstate array.
	BitsSet int64
	// OmissionProb is Bitstate's estimate of the probability that a probe
	// of a never-seen fingerprint reports "already visited" — the
	// per-state omission risk at the current fill, (BitsSet/m)^K. Zero for
	// exact backends.
	OmissionProb float64
	// SpilledBytes is the Spill backend's on-disk footprint: the summed
	// size of its live run files. Zero for RAM-only backends.
	SpilledBytes int64
	// SpillRuns is the number of live run files (1 after a level-boundary
	// merge; up to spillMaxRuns between boundaries).
	SpillRuns int
}

// Store is the visited-set contract shared by both exploration drivers.
// TryInsert is the only hot-path method; the rest are end-of-run hooks.
type Store interface {
	// TryInsert admits fp and reports whether it was absent — i.e. the
	// caller is the first to visit this state and owns its expansion. At
	// most one of any set of racing inserts of the same fingerprint is
	// told it was first, for every backend. For Bitstate, "absent" is
	// additionally probabilistic: a false report omits the state.
	TryInsert(fp statespace.Fingerprint) bool
	// Len returns the number of fingerprints admitted.
	Len() int
	// Bytes returns the measured in-RAM storage footprint (see
	// Stats.Bytes).
	Bytes() int64
	// Exact mirrors Kind.Exact for the backing backend.
	Exact() bool
	// Stats returns the full self-report.
	Stats() Stats
}

// LevelMarker is implemented by backends that reorganize storage at BFS
// level boundaries: the exploration drivers call EndLevel between levels,
// and Spill uses it to merge its run files down to one. A non-nil error
// aborts the exploration (the store's answers can no longer be trusted).
// Backends without level-boundary work simply don't implement it.
type LevelMarker interface {
	EndLevel() error
}

// Dumper is implemented by exact backends that can enumerate every admitted
// fingerprint without disturbing the store — the checkpoint writer's
// snapshot hook. yield is called once per fingerprint in unspecified order;
// a non-nil error from yield (or from the backend's own I/O, for Spill)
// stops the walk and is returned. Bitstate cannot implement it: bit
// positions are not invertible to fingerprints.
type Dumper interface {
	DumpFingerprints(yield func(fp statespace.Fingerprint) error) error
}

// New builds a single-goroutine store: the sequential driver's insert path
// stays lock-free. The returned store must not be used concurrently
// (except Bitstate and Spill, which are always goroutine-safe).
func New(cfg Config) Store {
	switch cfg.Kind {
	case Map:
		return newMapStore()
	case Bitstate:
		return newBitstate(cfg)
	case Spill:
		return newSpill(cfg)
	default:
		return newFlat()
	}
}

// NewConcurrent builds a goroutine-safe store for the parallel driver.
func NewConcurrent(cfg Config) Store {
	switch cfg.Kind {
	case Map:
		return newShardedMap(cfg.ShardBits)
	case Bitstate:
		return newBitstate(cfg)
	case Spill:
		return newSpill(cfg)
	default:
		return newStripedFlat(cfg.ShardBits)
	}
}

// clampBits normalizes a shard/stripe exponent.
func clampBits(bits, def int) int {
	if bits <= 0 {
		bits = def
	}
	if bits > MaxShardBits {
		bits = MaxShardBits
	}
	return bits
}
