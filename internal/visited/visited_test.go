package visited

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"verc3/internal/statespace"
)

// fpOf derives the i-th test fingerprint. mix is a bijection (splitmix64's
// finalizer), so distinct i yield distinct fingerprints by construction.
func fpOf(i int) statespace.Fingerprint {
	return statespace.Fingerprint(mix(uint64(i) + 1))
}

// TestKindStringParse round-trips every backend name through ParseKind.
func TestKindStringParse(t *testing.T) {
	for _, k := range []Kind{Flat, Map, Bitstate, Spill} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("disk"); err == nil {
		t.Error("ParseKind accepted an unknown backend")
	}
	if Bitstate.Exact() || !Flat.Exact() || !Map.Exact() || !Spill.Exact() {
		t.Error("Exact() flags wrong")
	}
}

// TestStoreContract checks the Store contract on every backend in both
// flavours: first TryInsert of a fingerprint reports true, duplicates
// report false, Len counts admissions, and the self-report is coherent.
// The bitstate budget is large enough here that omissions are (for this
// deterministic fingerprint population) absent, so even the inexact
// backend must behave exactly.
func TestStoreContract(t *testing.T) {
	const n = 5000
	build := map[string]func(Config) Store{
		"sequential": New,
		"concurrent": NewConcurrent,
	}
	for flavour, mk := range build {
		for _, kind := range []Kind{Flat, Map, Bitstate, Spill} {
			t.Run(flavour+"/"+kind.String(), func(t *testing.T) {
				// The spill budget is tiny so this test exercises the disk
				// tier too (n×8 bytes is far beyond 8KiB of RAM).
				s := mk(Config{Kind: kind, BitstateMB: 1, SpillMem: 8 << 10, SpillDir: t.TempDir()})
				defer closeIfCloser(t, s)
				if s.Exact() != kind.Exact() {
					t.Fatalf("Exact() = %v, want %v", s.Exact(), kind.Exact())
				}
				for i := 0; i < n; i++ {
					if !s.TryInsert(fpOf(i)) {
						t.Fatalf("first TryInsert(%d) returned false", i)
					}
					if s.TryInsert(fpOf(i)) {
						t.Fatalf("duplicate TryInsert(%d) returned true", i)
					}
				}
				if s.Len() != n {
					t.Fatalf("Len = %d, want %d", s.Len(), n)
				}
				if s.Bytes() <= 0 {
					t.Errorf("Bytes = %d", s.Bytes())
				}
				st := s.Stats()
				if st.Backend != kind.String() || st.States != n || st.Bytes != s.Bytes() || st.Exact != kind.Exact() {
					t.Errorf("Stats = %+v", st)
				}
			})
		}
	}
}

// closeIfCloser closes stores that own external resources (spill).
func closeIfCloser(t *testing.T, s Store) {
	t.Helper()
	if c, ok := s.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

// TestFlatZeroFingerprint pins the sideband handling of the one value the
// open-addressing slots cannot hold.
func TestFlatZeroFingerprint(t *testing.T) {
	for name, s := range map[string]Store{
		"flat":    New(Config{Kind: Flat}),
		"striped": NewConcurrent(Config{Kind: Flat}),
	} {
		if !s.TryInsert(0) {
			t.Errorf("%s: first TryInsert(0) returned false", name)
		}
		if s.TryInsert(0) {
			t.Errorf("%s: duplicate TryInsert(0) returned true", name)
		}
		if s.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", name, s.Len())
		}
	}
}

// TestFlatMatchesMapOracle is the deterministic differential test behind
// FuzzFlatVsMapOracle: over a duplicate-heavy fingerprint stream, both
// Flat variants must report exactly what a reference Go map reports, call
// by call.
func TestFlatMatchesMapOracle(t *testing.T) {
	stores := map[string]Store{
		"flat":    New(Config{Kind: Flat}),
		"striped": NewConcurrent(Config{Kind: Flat, ShardBits: 2}),
	}
	for name, s := range stores {
		oracle := make(map[statespace.Fingerprint]bool)
		for i := 0; i < 30000; i++ {
			fp := fpOf(i % 2500 * (i%3 + 1)) // revisits with gaps
			want := !oracle[fp]
			oracle[fp] = true
			if got := s.TryInsert(fp); got != want {
				t.Fatalf("%s: step %d fp %x: TryInsert = %v, oracle says %v", name, i, fp, got, want)
			}
		}
		if s.Len() != len(oracle) {
			t.Errorf("%s: Len = %d, oracle has %d", name, s.Len(), len(oracle))
		}
	}
}

// TestFlatGrowth forces multiple doublings and checks no occupant is
// forgotten or duplicated across rehashes, and that the Robin Hood table
// actually runs at the raised 15/16 load cap.
func TestFlatGrowth(t *testing.T) {
	f := newFlat()
	const n = 100000
	for i := 0; i < n; i++ {
		if !f.TryInsert(fpOf(i)) {
			t.Fatalf("lost insert %d", i)
		}
	}
	if f.t.grows == 0 {
		t.Fatal("no growth over 100k inserts")
	}
	if got := len(f.t.slots); got&(got-1) != 0 {
		t.Errorf("slot count %d not a power of two", got)
	}
	if 16*f.t.used > 15*len(f.t.slots) {
		t.Errorf("load %d/%d above the 15/16 cap", f.t.used, len(f.t.slots))
	}
	// 100000 entries fit in 2¹⁷ slots at 15/16 (122880); the old 7/8 cap
	// allowed only 114688, which also happens to fit — the cap is instead
	// pinned by a count in the band (7/8, 15/16]·2¹⁷ below.
	for i := 0; i < n; i++ {
		if f.TryInsert(fpOf(i)) {
			t.Fatalf("occupant %d lost across growth", i)
		}
	}
	if f.Len() != n {
		t.Errorf("Len = %d, want %d", f.Len(), n)
	}

	// 120000 entries sit between 7/8 (114688) and 15/16 (122880) of 2¹⁷
	// slots: the Robin Hood table must hold them without the doubling the
	// old cap would have forced.
	g := newFlat()
	for i := 0; i < 120000; i++ {
		g.TryInsert(fpOf(i))
	}
	if got := len(g.t.slots); got != 1<<17 {
		t.Errorf("slots for 120k entries = %d, want %d (15/16 cap not in effect)", got, 1<<17)
	}
}

// TestFlatRobinHoodInvariant checks the displacement ordering Robin Hood
// insertion maintains: along any occupied probe run, an occupant's
// displacement exceeds its predecessor's by at most one (a fresh home
// resets it to zero). The absence proof in tryInsert — stop when a
// resident travels shorter than the probe — is sound only under this
// invariant.
func TestFlatRobinHoodInvariant(t *testing.T) {
	f := newFlat()
	const n = 50000
	for i := 0; i < n; i++ {
		f.TryInsert(fpOf(i))
	}
	slots := f.t.slots
	mask := len(slots) - 1
	for i, fp := range slots {
		if fp == 0 {
			continue
		}
		prev := slots[(i-1)&mask]
		if prev == 0 {
			continue
		}
		d, dp := dist(fp, i, mask), dist(prev, (i-1)&mask, mask)
		if d > dp+1 {
			t.Fatalf("slot %d: displacement %d after predecessor's %d", i, d, dp)
		}
	}
}

// TestStripePadding pins the cache-line layout of the concurrent
// variants' striped structs: both must be a whole number of 64-byte lines
// so neighbouring locks never false-share, and Bytes() must account the
// full padded struct.
func TestStripePadding(t *testing.T) {
	if sz := unsafe.Sizeof(stripe{}); sz%64 != 0 {
		t.Errorf("stripe size %d is not a multiple of a cache line", sz)
	}
	if sz := unsafe.Sizeof(shard{}); sz%64 != 0 {
		t.Errorf("shard size %d is not a multiple of a cache line", sz)
	}
	// An empty striped store's footprint is exactly its stripe array.
	s := newStripedFlat(3)
	if want := int64(8 * unsafe.Sizeof(stripe{})); s.Bytes() != want {
		t.Errorf("empty stripedFlat Bytes = %d, want %d", s.Bytes(), want)
	}
}

// TestShardStripeClamping checks the defaulting/clamping of the concurrent
// variants' shard and stripe exponents.
func TestShardStripeClamping(t *testing.T) {
	if got := newShardedMap(0).Shards(); got != 1<<DefaultShardBits {
		t.Errorf("default map shards = %d", got)
	}
	if got := newShardedMap(40).Shards(); got != 1<<MaxShardBits {
		t.Errorf("oversized map shards = %d", got)
	}
	if got := newStripedFlat(-1).Stripes(); got != 1<<DefaultFlatStripeBits {
		t.Errorf("default flat stripes = %d", got)
	}
	if got := newStripedFlat(3).Stripes(); got != 8 {
		t.Errorf("flat stripes(3) = %d", got)
	}
}

// TestStripedFlatStatsSinglePass is the regression test for the torn
// mid-run self-report: Stats used to lock each stripe twice — once inside
// Bytes(), once for the grow counters — so a reader racing a growth could
// see a Bytes figure from before the rehash paired with a Grows count
// from after. The single-pass snapshot makes every stripe's contribution
// internally consistent, which this test checks via an invariant that the
// torn read could violate: each growth doubles a table that starts at 32
// slots, so within one coherent snapshot Bytes must cover at least the
// slots implied by the observed growth count (a table that has grown g
// times holds 32·2^g slots). Run with -race while inserts hammer the
// table.
func TestStripedFlatStatsSinglePass(t *testing.T) {
	s := newStripedFlat(2) // 4 stripes: every stripe grows repeatedly
	const n = 1 << 16
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			s.TryInsert(fpOf(i))
		}
	}()
	stripeOverhead := int64(len(s.stripes)) * int64(unsafe.Sizeof(stripe{}))
	for {
		st := s.Stats()
		// Growth count g spread over k stripes implies at least
		// k·32·2^ceil(g/k) slots in the snapshot... conservatively: every
		// recorded growth at minimum doubled one 32-slot table once, so
		// bytes must be at least 32·8 per growth beyond the base tables.
		minBytes := stripeOverhead + int64(st.Grows)*32*8
		if st.Bytes < minBytes {
			t.Fatalf("torn snapshot: Bytes=%d below the %d implied by Grows=%d", st.Bytes, minBytes, st.Grows)
		}
		if st.States < 0 || st.States > n {
			t.Fatalf("snapshot States = %d", st.States)
		}
		select {
		case <-done:
			if got := s.Stats(); got.States != n {
				t.Fatalf("final States = %d, want %d", got.States, n)
			}
			return
		default:
		}
	}
}

// TestBitstateBudget pins the fixed-memory contract: the array is sized by
// BitstateMB and never grows, whatever is inserted.
func TestBitstateBudget(t *testing.T) {
	b := newBitstate(Config{Kind: Bitstate, BitstateMB: 1})
	want := int64(1 << 20) // 1 MiB of bits = 2²³ bits = 2²⁰ bytes
	if b.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", b.Bytes(), want)
	}
	for i := 0; i < 200000; i++ {
		b.TryInsert(fpOf(i))
	}
	if b.Bytes() != want {
		t.Errorf("Bytes grew to %d", b.Bytes())
	}
	if b.Len() > 200000 {
		t.Errorf("Len = %d exceeds inserts", b.Len())
	}
}

// TestBitstateOmissionRate drives a deliberately small bit array to a fill
// where omissions are plentiful and checks the reported estimate brackets
// the measured rate: OmissionProb is the end-of-run risk, so it must upper-
// bound the measured (run-averaged) rate without being wildly above it.
func TestBitstateOmissionRate(t *testing.T) {
	const n = 20000
	b := newBitstateBits(1<<16, 3)
	for i := 0; i < n; i++ {
		b.TryInsert(fpOf(i))
	}
	omitted := n - b.Len()
	measured := float64(omitted) / n
	est := b.OmissionProb()
	t.Logf("omitted %d/%d (rate %.4f), estimate %.4f, bits set %d/%d",
		omitted, n, measured, est, b.ones.Load(), b.nbits)
	if omitted == 0 {
		t.Fatal("no omissions at 3×20000 hashes into 65536 bits; harness broken")
	}
	if measured > est {
		t.Errorf("measured rate %.4f above the end-of-run estimate %.4f", measured, est)
	}
	if measured < est/8 {
		t.Errorf("measured rate %.4f implausibly far below estimate %.4f", measured, est)
	}
	st := b.Stats()
	if st.OmissionProb != est || st.BitsSet != b.ones.Load() || st.Exact {
		t.Errorf("Stats = %+v", st)
	}
}

// concurrentWins races workers over a shared key population and returns
// the total number of TryInsert wins (the -race test for the concurrent
// variants: exactly one winner per fingerprint for exact backends).
func concurrentWins(s Store, workers, keys int) int {
	wins := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if s.TryInsert(fpOf((i*(w+1) + w) % keys)) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range wins {
		total += n
	}
	return total
}

// TestConcurrentExactBackends: under racing insertion of the same
// population, the exact concurrent backends admit each fingerprint exactly
// once.
func TestConcurrentExactBackends(t *testing.T) {
	const (
		workers = 8
		keys    = 20000
	)
	for name, s := range map[string]Store{
		"striped-flat": NewConcurrent(Config{Kind: Flat, ShardBits: 4}),
		"sharded-map":  NewConcurrent(Config{Kind: Map, ShardBits: 4}),
		// The tiny budget forces the spill backend through flushes and
		// merges mid-race, so the claim also covers disk-resident lookups.
		"spill": NewConcurrent(Config{Kind: Spill, SpillMem: 8 << 10, SpillDir: t.TempDir()}),
	} {
		if total := concurrentWins(s, workers, keys); total != keys {
			t.Errorf("%s: %d wins, want %d (each fingerprint claimed exactly once)", name, total, keys)
		}
		if s.Len() != keys {
			t.Errorf("%s: Len = %d, want %d", name, s.Len(), keys)
		}
		closeIfCloser(t, s)
	}
}

// TestConcurrentBitstate: the lossy backend under the same race. Since
// freshness became the single-CAS completion rule, racing inserts of one
// fingerprint have exactly one winner, so the win total is exact unless a
// fingerprint is omitted outright — and at this fill (~0.07% of the
// budget) this deterministic population has no omissions.
func TestConcurrentBitstate(t *testing.T) {
	const (
		workers = 8
		keys    = 20000
	)
	s := NewConcurrent(Config{Kind: Bitstate, BitstateMB: 1})
	total := concurrentWins(s, workers, keys)
	if total != keys {
		t.Errorf("bitstate wins = %d, want exactly %d", total, keys)
	}
	if s.Len() != total {
		t.Errorf("Len = %d, wins = %d", s.Len(), total)
	}
}

// TestBitstateExactOwnershipOneFingerprint is the -race regression test
// for the duplicate-admission bug: many goroutines hammer a single
// fingerprint on a fresh store, over many rounds, and every round must
// produce exactly one winner. Under the old any-of-K-bits-was-clear rule
// two racers could each set a disjoint subset of the K bits and both be
// admitted; the single-CAS completion rule makes that impossible.
func TestBitstateExactOwnershipOneFingerprint(t *testing.T) {
	const (
		workers = 16
		rounds  = 300
	)
	for r := 0; r < rounds; r++ {
		b := newBitstate(Config{Kind: Bitstate, BitstateMB: 1})
		fp := fpOf(r)
		var (
			start sync.WaitGroup
			done  sync.WaitGroup
			wins  atomic.Int64
		)
		start.Add(1)
		for w := 0; w < workers; w++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait() // maximize the simultaneous first-insert race
				if b.TryInsert(fp) {
					wins.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if n := wins.Load(); n != 1 {
			t.Fatalf("round %d: %d winners for one fingerprint, want exactly 1", r, n)
		}
	}
}

// BenchmarkTryInsert isolates the insert hot path per backend (sequential
// flavours; a fresh store per iteration, 64k distinct fingerprints).
func BenchmarkTryInsert(b *testing.B) {
	const n = 1 << 16
	fps := make([]statespace.Fingerprint, n)
	for i := range fps {
		fps[i] = fpOf(i)
	}
	for _, kind := range []Kind{Flat, Map, Bitstate} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New(Config{Kind: kind, BitstateMB: 1})
				for _, fp := range fps {
					s.TryInsert(fp)
				}
			}
			b.ReportMetric(float64(n), "inserts/op")
		})
	}
}
