// Package zoo registers the built-in systems so the command-line tools can
// select them by name. Beyond the compiled-in table, Register adds entries
// at runtime — the hook the spec frontend uses to make loaded model files
// (internal/spec) sit beside compiled-in systems.
package zoo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"verc3/internal/msi"
	"verc3/internal/mutex"
	"verc3/internal/tokenring"
	"verc3/internal/toy"
	"verc3/internal/ts"
)

// Params carries the knobs a named system may consume.
type Params struct {
	// Caches is the MSI cache count (0 = default 3).
	Caches int
}

// entry is one registered system: its constructor, and whether it is a
// synthesis sketch (its transitions contain holes, so it can only be
// explored under a synthesis chooser — plain model checking must refuse it
// rather than let ts.Env.Choose panic).
type entry struct {
	build  func(Params) ts.System
	sketch bool
}

// mu guards builders: the compiled-in table is fixed, but Register and
// Unregister mutate it at runtime.
var mu sync.RWMutex

// builders maps system names to their registry entries.
var builders = map[string]entry{
	"msi-complete": {build: func(p Params) ts.System {
		return msi.New(msi.Config{Caches: p.Caches, Variant: msi.Complete})
	}},
	// msi-complete-4 is the large-configuration stress entry: the complete
	// protocol pinned at 4 caches (ignoring Params.Caches), the workload
	// the pluggable visited-set backends are benchmarked on. Without
	// symmetry reduction it is the biggest state space in the zoo.
	"msi-complete-4": {build: func(Params) ts.System {
		return msi.New(msi.Config{Caches: 4, Variant: msi.Complete})
	}},
	// msi-fair is the complete protocol plus per-channel network-delivery
	// weak fairness: the starvation lasso msi-complete exhibits (the
	// directory serving the readers forever while a writer's request sits
	// in flight) is excluded as unfair, so the same liveness goals pass.
	"msi-fair": {build: func(p Params) ts.System {
		return msi.New(msi.Config{Caches: p.Caches, Variant: msi.Complete, Fair: true})
	}},
	"msi-small": {sketch: true, build: func(p Params) ts.System {
		return msi.New(msi.Config{Caches: p.Caches, Variant: msi.Small})
	}},
	"msi-large": {sketch: true, build: func(p Params) ts.System {
		return msi.New(msi.Config{Caches: p.Caches, Variant: msi.Large})
	}},
	"peterson":          {build: func(Params) ts.System { return mutex.New(false) }},
	"peterson-sketch":   {sketch: true, build: func(Params) ts.System { return mutex.New(true) }},
	"fig2":              {sketch: true, build: func(Params) ts.System { return toy.Figure2() }},
	"token-ring":        {build: func(Params) ts.System { return tokenring.New(false) }},
	"token-ring-sketch": {sketch: true, build: func(Params) ts.System { return tokenring.New(true) }},
}

// Register adds a system at runtime (e.g. one loaded from a spec file).
// Names must not collide with an existing entry, compiled-in or dynamic.
func Register(name string, build func(Params) ts.System, sketch bool) error {
	if name == "" || build == nil {
		return fmt.Errorf("zoo: Register needs a name and a constructor")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := builders[name]; dup {
		return fmt.Errorf("zoo: system %q is already registered", name)
	}
	builders[name] = entry{build: build, sketch: sketch}
	return nil
}

// Unregister removes a dynamically registered system. Removing a name that
// is not registered is a no-op.
func Unregister(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(builders, name)
}

// Get builds the named system.
func Get(name string, p Params) (ts.System, error) {
	mu.RLock()
	e, ok := builders[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown system %q (available: %s)", name, strings.Join(Names(), ", "))
	}
	return e.build(p), nil
}

// IsSketch reports whether the named system is a synthesis sketch — a
// skeleton with unassigned holes that only the synthesis engine can
// resolve. Unknown names report false (Get is where names are validated).
func IsSketch(name string) bool {
	mu.RLock()
	defer mu.RUnlock()
	return builders[name].sketch
}

// SketchNames lists the registered sketch systems in sorted order.
func SketchNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(builders))
	for n, e := range builders {
		if e.sketch {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Names lists the registered system names in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
