// Package zoo registers the built-in systems so the command-line tools can
// select them by name.
package zoo

import (
	"fmt"
	"sort"
	"strings"

	"verc3/internal/msi"
	"verc3/internal/mutex"
	"verc3/internal/tokenring"
	"verc3/internal/toy"
	"verc3/internal/ts"
)

// Params carries the knobs a named system may consume.
type Params struct {
	// Caches is the MSI cache count (0 = default 3).
	Caches int
}

// builders maps system names to constructors.
var builders = map[string]func(Params) ts.System{
	"msi-complete": func(p Params) ts.System {
		return msi.New(msi.Config{Caches: p.Caches, Variant: msi.Complete})
	},
	"msi-small": func(p Params) ts.System {
		return msi.New(msi.Config{Caches: p.Caches, Variant: msi.Small})
	},
	"msi-large": func(p Params) ts.System {
		return msi.New(msi.Config{Caches: p.Caches, Variant: msi.Large})
	},
	"peterson":          func(Params) ts.System { return mutex.New(false) },
	"peterson-sketch":   func(Params) ts.System { return mutex.New(true) },
	"fig2":              func(Params) ts.System { return toy.Figure2() },
	"token-ring":        func(Params) ts.System { return tokenring.New(false) },
	"token-ring-sketch": func(Params) ts.System { return tokenring.New(true) },
}

// Get builds the named system.
func Get(name string, p Params) (ts.System, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("unknown system %q (available: %s)", name, strings.Join(Names(), ", "))
	}
	return b(p), nil
}

// Names lists the registered system names in sorted order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
