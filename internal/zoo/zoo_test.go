package zoo_test

import (
	"slices"
	"testing"

	"verc3/internal/mc"
	"verc3/internal/ts"
	"verc3/internal/zoo"
)

// TestAllSystemsBuild checks every registered name constructs a system with
// at least one initial state.
func TestAllSystemsBuild(t *testing.T) {
	names := zoo.Names()
	if len(names) < 6 {
		t.Fatalf("only %d systems registered", len(names))
	}
	for _, n := range names {
		sys, err := zoo.Get(n, zoo.Params{Caches: 2})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(sys.Initial()) == 0 {
			t.Errorf("%s: no initial states", n)
		}
		if sys.Name() == "" {
			t.Errorf("%s: empty name", n)
		}
	}
}

// TestUnknownName checks the error lists the available systems.
func TestUnknownName(t *testing.T) {
	_, err := zoo.Get("nope", zoo.Params{})
	if err == nil {
		t.Fatal("want error")
	}
}

// TestSketchMetadata cross-checks the registry's sketch flags against the
// systems themselves: a sketch hits a wildcard under an all-wildcard
// environment, a complete model never calls Choose at all. This is the
// metadata verc3-verify relies on to refuse sketches with a friendly error
// instead of panicking in ts.Env.Choose.
func TestSketchMetadata(t *testing.T) {
	for _, n := range zoo.Names() {
		sys, err := zoo.Get(n, zoo.Params{Caches: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(sys, mc.Options{
			Symmetry: true,
			Env:      ts.NewEnv(wildcardChooser{}),
		})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if got, want := zoo.IsSketch(n), res.WildcardHit; got != want {
			t.Errorf("IsSketch(%q) = %v, but exploration reports wildcard hit = %v", n, got, want)
		}
	}
	if zoo.IsSketch("nope") {
		t.Error("unknown names must not report as sketches")
	}
	want := []string{"fig2", "msi-large", "msi-small", "peterson-sketch", "token-ring-sketch"}
	if got := zoo.SketchNames(); !slices.Equal(got, want) {
		t.Errorf("SketchNames() = %v, want %v", got, want)
	}
}

// wildcardChooser makes every hole a wildcard; complete models never
// call Choose.
type wildcardChooser struct{}

func (wildcardChooser) Choose(string, []string) (int, error) { return 0, ts.ErrWildcard }

// TestStressEntryPinsFourCaches checks the msi-complete-4 stress entry is
// the 4-cache protocol regardless of Params (it exists to give benchmarks
// and the bitstate budget test a fixed large configuration).
func TestStressEntryPinsFourCaches(t *testing.T) {
	stress, err := zoo.Get("msi-complete-4", zoo.Params{Caches: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := zoo.Get("msi-complete", zoo.Params{Caches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, w := stress.Initial()[0].Key(), want.Initial()[0].Key(); got != w {
		t.Errorf("stress initial state = %q, want the 4-cache %q", got, w)
	}
	if zoo.IsSketch("msi-complete-4") {
		t.Error("stress entry must not be a sketch")
	}
}
