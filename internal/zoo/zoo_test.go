package zoo_test

import (
	"testing"

	"verc3/internal/zoo"
)

// TestAllSystemsBuild checks every registered name constructs a system with
// at least one initial state.
func TestAllSystemsBuild(t *testing.T) {
	names := zoo.Names()
	if len(names) < 6 {
		t.Fatalf("only %d systems registered", len(names))
	}
	for _, n := range names {
		sys, err := zoo.Get(n, zoo.Params{Caches: 2})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(sys.Initial()) == 0 {
			t.Errorf("%s: no initial states", n)
		}
		if sys.Name() == "" {
			t.Errorf("%s: empty name", n)
		}
	}
}

// TestUnknownName checks the error lists the available systems.
func TestUnknownName(t *testing.T) {
	_, err := zoo.Get("nope", zoo.Params{})
	if err == nil {
		t.Fatal("want error")
	}
}
